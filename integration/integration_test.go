package integration

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/evict"
	"repro/internal/longbench"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pml"
	"repro/internal/promptlang"
	"repro/internal/server"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

const vocab = tokenizer.WordBase + 2048

func newModel(t *testing.T, seed uint64) *model.Model {
	t.Helper()
	m, err := model.New(model.LlamaStyle(vocab, seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPromptProgramToGeneration runs the full §3.2.4 path: a Python-like
// prompt program compiles to PML, registers, serves with parameters and
// unions, and generates.
func TestPromptProgramToGeneration(t *testing.T) {
	program := `
schema kiosk:
  system "You are a museum kiosk."
  def visit_plan(hours: 3):
    emit "Plan a visit lasting"
    arg hours
    emit "with short breaks."
  choose:
    when paintings:
      emit "The paintings wing shows portraits and landscapes."
    when fossils:
      emit "The fossils wing shows dinosaurs and ammonites."
`
	pmlSrc, err := promptlang.CompileToPML(program)
	if err != nil {
		t.Fatal(err)
	}
	client := promptcache.New(newModel(t, 1))
	info, err := client.RegisterSchema(pmlSrc)
	if err != nil {
		t.Fatalf("compiled schema rejected: %v\n%s", err, pmlSrc)
	}
	if info.Name != "kiosk" {
		t.Fatalf("schema name %q", info.Name)
	}
	res, err := client.Infer(context.Background(), promptcache.Request{
		Prompt: `<prompt schema="kiosk">
	  <visit_plan hours="two hours"/>
	  <fossils/>
	  <user>What should I see first?</user>
	</prompt>`,
		Gen: promptcache.GenConfig{MaxTokens: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedTokens == 0 || res.NewTokens == 0 {
		t.Fatalf("reuse accounting: %+v", res)
	}
	if strings.TrimSpace(res.Text) == "" {
		t.Fatal("empty generation")
	}
	// Union exclusivity holds for compiled schemas too.
	if _, err := client.Infer(context.Background(), promptcache.Request{
		Prompt: `<prompt schema="kiosk"><paintings/><fossils/>x</prompt>`,
	}); err == nil {
		t.Fatal("union clash should fail")
	}
}

// TestLongBenchPipeline: workload generation → schema registration →
// paired cached/baseline inference → metric scoring, for one dataset of
// each category.
func TestLongBenchPipeline(t *testing.T) {
	client := promptcache.New(newModel(t, 2))
	ctx := context.Background()
	picks := []string{"NarrativeQA", "GovReport", "TriviaQA", "Passage Retrieval", "LCC", "HotpotQA"}
	for _, name := range picks {
		d, ok := longbench.ByName(name)
		if !ok {
			t.Fatalf("dataset %q missing", name)
		}
		w := longbench.Generate(d, longbench.GenConfig{Seed: 3, NumSamples: 2, PoolDocs: 3, DocSentences: 5})
		if _, err := client.RegisterSchema(w.Schema); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, s := range w.Samples {
			cres, err := client.Infer(ctx, promptcache.Request{Prompt: s.Prompt, MaxTokens: 8})
			if err != nil {
				t.Fatalf("%s serve: %v", name, err)
			}
			bres, err := client.Infer(ctx, promptcache.Request{Prompt: s.Prompt, Baseline: true, PrefillOnly: true})
			if err != nil {
				t.Fatalf("%s baseline: %v", name, err)
			}
			if cres.CachedTokens == 0 {
				t.Fatalf("%s: nothing reused", name)
			}
			if cos := tensor.CosineSimilarity(cres.Logits, bres.Logits); cos < 0.3 {
				t.Fatalf("%s: cached/baseline cosine %v implausibly low", name, cos)
			}
			// Metrics accept arbitrary generations.
			_ = metrics.F1(cres.Text, s.Reference)
			_ = metrics.RougeL(cres.Text, s.Reference)
		}
	}
}

// TestServerWithQuantizedEvictingCache drives the HTTP API over a cache
// configured with int8 storage, a tight HBM pool and a GDSF policy — the
// full §6 feature set composed.
func TestServerWithQuantizedEvictingCache(t *testing.T) {
	m := newModel(t, 4)
	// Probe footprint with an unconstrained quantized cache first.
	probe := core.NewCache(m, core.WithInt8Modules())
	w := longbench.Generate(mustDataset(t, "MultiNews"), longbench.GenConfig{Seed: 9, PoolDocs: 4, DocSentences: 6})
	if _, err := probe.RegisterSchema(w.Schema); err != nil {
		t.Fatal(err)
	}
	tight := promptcache.New(m,
		core.WithInt8Modules(),
		core.WithEvictionPolicy(evict.NewGDSF()),
		core.WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: probe.PoolUsed()/2 + 1})),
	)
	srv := httptest.NewServer(server.New(tight))
	defer srv.Close()

	post := func(path string, body any) map[string]any {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if e, ok := out["error"]; ok {
			t.Fatalf("server error: %v", e)
		}
		return out
	}
	post("/schemas", server.SchemaRequest{PML: w.Schema})
	for _, s := range w.Samples[:4] {
		out := post("/v1/complete", server.CompleteRequest{Prompt: s.Prompt, GenConfig: promptcache.GenConfig{MaxTokens: 6}})
		if out["cached_tokens"].(float64) <= 0 {
			t.Fatalf("no reuse through server: %v", out)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["modules_evicted"].(float64) == 0 {
		t.Fatalf("tight pool should evict: %v", stats)
	}
	if stats["modules_reloaded"].(float64) == 0 {
		t.Fatalf("reuse after eviction should reload: %v", stats)
	}
}

func mustDataset(t *testing.T, name string) longbench.Dataset {
	t.Helper()
	d, ok := longbench.ByName(name)
	if !ok {
		t.Fatalf("dataset %q missing", name)
	}
	return d
}

// TestBatchEndpointSharing: HTTP batch completion over a LongBench
// workload where samples share pool documents.
func TestBatchEndpointSharing(t *testing.T) {
	srv := httptest.NewServer(server.New(promptcache.New(newModel(t, 5))))
	defer srv.Close()

	d := mustDataset(t, "HotpotQA")
	w := longbench.Generate(d, longbench.GenConfig{Seed: 11, PoolDocs: 3, DocsPerSample: 2, NumSamples: 6, DocSentences: 5})
	body, _ := json.Marshal(server.SchemaRequest{PML: w.Schema})
	if _, err := srv.Client().Post(srv.URL+"/schemas", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	var prompts []string
	for _, s := range w.Samples {
		prompts = append(prompts, s.Prompt)
	}
	breq, _ := json.Marshal(server.BatchRequest{Prompts: prompts, GenConfig: promptcache.GenConfig{MaxTokens: 4}})
	resp, err := srv.Client().Post(srv.URL+"/v1/complete_batch", "application/json", bytes.NewReader(breq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out server.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(prompts) {
		t.Fatalf("results = %d", len(out.Results))
	}
	// 6 samples drawing 2 docs each from a pool of 3 must share.
	if out.SharedModules == 0 || out.SavingsPct <= 0 {
		t.Fatalf("no sharing over shared pool: %+v", out)
	}
}

// TestCrossSchemaIsolation: same module name in two schemas must resolve
// independently.
func TestCrossSchemaIsolation(t *testing.T) {
	client := promptcache.New(newModel(t, 6))
	ctx := context.Background()
	for i, body := range []string{"first corpus of words here", "totally different other corpus"} {
		src := fmt.Sprintf(`<schema name="s%d"><module name="doc">%s</module></schema>`, i, body)
		if _, err := client.RegisterSchema(src); err != nil {
			t.Fatal(err)
		}
	}
	a, err := client.Infer(ctx, promptcache.Request{Prompt: `<prompt schema="s0"><doc/>question</prompt>`, PrefillOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Infer(ctx, promptcache.Request{Prompt: `<prompt schema="s1"><doc/>question</prompt>`, PrefillOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(a.Logits, b.Logits) < 1e-6 {
		t.Fatal("different schemas' docs produced identical logits — cross-schema leakage")
	}
}

// TestSessionsOverHTTP drives the full multi-turn path end to end:
// create a session over /v1/sessions, advance it two turns, verify the
// server-held KV state grows, then delete it.
func TestSessionsOverHTTP(t *testing.T) {
	srv := httptest.NewServer(server.New(promptcache.New(newModel(t, 7))))
	defer srv.Close()

	schema := `<schema name="chat"><module name="doc">The lighthouse keeper logs every passing ship and storm in a leather journal.</module></schema>`
	body, _ := json.Marshal(server.SchemaRequest{PML: schema})
	if _, err := srv.Client().Post(srv.URL+"/schemas", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	}

	post := func(path string, payload any) (int, map[string]any) {
		t.Helper()
		b, _ := json.Marshal(payload)
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, created := post("/v1/sessions", server.SessionRequest{
		Prompt:    `<prompt schema="chat"><doc/><user>What does the keeper log?</user></prompt>`,
		GenConfig: promptcache.GenConfig{MaxTokens: 6},
	})
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, created)
	}
	id := created["session_id"].(string)
	if created["text"] == "" || created["cached_tokens"].(float64) <= 0 {
		t.Fatalf("create response %v", created)
	}

	var prev float64
	for i, text := range []string{"How often do storms pass?", "And the ships?"} {
		code, out := post("/v1/sessions/"+id+"/send", server.SendRequest{Text: text})
		if code != http.StatusOK {
			t.Fatalf("send %d = %d %v", i, code, out)
		}
		st := out["session_tokens"].(float64)
		if st <= prev {
			t.Fatalf("session KV should grow across turns: %v -> %v", prev, st)
		}
		prev = st
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/sessions/"+id, nil)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	code, _ = post("/v1/sessions/"+id+"/send", server.SendRequest{Text: "still there?"})
	if code != http.StatusNotFound {
		t.Fatalf("send after delete = %d", code)
	}
}

// TestSerializeParseFixpointOnGeneratedSchemas: every LongBench-generated
// schema survives a serialize→parse→serialize round trip unchanged.
func TestSerializeParseFixpointOnGeneratedSchemas(t *testing.T) {
	for _, d := range longbench.Figure8()[:4] {
		w := longbench.Generate(d, longbench.GenConfig{Seed: 13, PoolDocs: 2, DocSentences: 4})
		s1, err := pml.ParseSchema(w.Schema)
		if err != nil {
			t.Fatal(err)
		}
		out1 := pml.Serialize(s1)
		s2, err := pml.ParseSchema(out1)
		if err != nil {
			t.Fatalf("%s: serialized schema does not parse: %v", d.Name, err)
		}
		if out2 := pml.Serialize(s2); out2 != out1 {
			t.Fatalf("%s: serialize/parse not a fixpoint", d.Name)
		}
	}
}
