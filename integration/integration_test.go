package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/evict"
	"repro/internal/longbench"
	"repro/internal/memory"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pml"
	"repro/internal/promptlang"
	"repro/internal/server"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

const vocab = tokenizer.WordBase + 2048

func newModel(t *testing.T, seed uint64) *model.Model {
	t.Helper()
	m, err := model.New(model.LlamaStyle(vocab, seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPromptProgramToGeneration runs the full §3.2.4 path: a Python-like
// prompt program compiles to PML, registers, serves with parameters and
// unions, and generates.
func TestPromptProgramToGeneration(t *testing.T) {
	program := `
schema kiosk:
  system "You are a museum kiosk."
  def visit_plan(hours: 3):
    emit "Plan a visit lasting"
    arg hours
    emit "with short breaks."
  choose:
    when paintings:
      emit "The paintings wing shows portraits and landscapes."
    when fossils:
      emit "The fossils wing shows dinosaurs and ammonites."
`
	pmlSrc, err := promptlang.CompileToPML(program)
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewCache(newModel(t, 1))
	layout, err := cache.RegisterSchema(pmlSrc)
	if err != nil {
		t.Fatalf("compiled schema rejected: %v\n%s", err, pmlSrc)
	}
	if layout.Schema.Name != "kiosk" {
		t.Fatalf("schema name %q", layout.Schema.Name)
	}
	res, err := cache.Serve(`<prompt schema="kiosk">
	  <visit_plan hours="two hours"/>
	  <fossils/>
	  <user>What should I see first?</user>
	</prompt>`, core.ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedTokens == 0 || res.NewTokens == 0 {
		t.Fatalf("reuse accounting: %+v", res)
	}
	text, err := cache.GenerateText(res, model.GenerateOpts{MaxTokens: 8})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(text) == "" {
		t.Fatal("empty generation")
	}
	// Union exclusivity holds for compiled schemas too.
	if _, err := cache.Serve(`<prompt schema="kiosk"><paintings/><fossils/>x</prompt>`, core.ServeOpts{}); err == nil {
		t.Fatal("union clash should fail")
	}
}

// TestLongBenchPipeline: workload generation → schema registration →
// paired cached/baseline inference → metric scoring, for one dataset of
// each category.
func TestLongBenchPipeline(t *testing.T) {
	cache := core.NewCache(newModel(t, 2))
	picks := []string{"NarrativeQA", "GovReport", "TriviaQA", "Passage Retrieval", "LCC", "HotpotQA"}
	for _, name := range picks {
		d, ok := longbench.ByName(name)
		if !ok {
			t.Fatalf("dataset %q missing", name)
		}
		w := longbench.Generate(d, longbench.GenConfig{Seed: 3, NumSamples: 2, PoolDocs: 3, DocSentences: 5})
		if _, err := cache.RegisterSchema(w.Schema); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, s := range w.Samples {
			cres, err := cache.Serve(s.Prompt, core.ServeOpts{})
			if err != nil {
				t.Fatalf("%s serve: %v", name, err)
			}
			bres, err := cache.BaselineServe(s.Prompt)
			if err != nil {
				t.Fatalf("%s baseline: %v", name, err)
			}
			if cres.CachedTokens == 0 {
				t.Fatalf("%s: nothing reused", name)
			}
			if cos := tensor.CosineSimilarity(cres.Logits, bres.Logits); cos < 0.3 {
				t.Fatalf("%s: cached/baseline cosine %v implausibly low", name, cos)
			}
			gen, err := cache.GenerateText(cres, model.GenerateOpts{MaxTokens: 8})
			if err != nil {
				t.Fatal(err)
			}
			// Metrics accept arbitrary generations.
			_ = metrics.F1(gen, s.Reference)
			_ = metrics.RougeL(gen, s.Reference)
		}
	}
}

// TestServerWithQuantizedEvictingCache drives the HTTP API over a cache
// configured with int8 storage, a tight HBM pool and a GDSF policy — the
// full §6 feature set composed.
func TestServerWithQuantizedEvictingCache(t *testing.T) {
	m := newModel(t, 4)
	// Probe footprint with an unconstrained quantized cache first.
	probe := core.NewCache(m, core.WithInt8Modules())
	w := longbench.Generate(mustDataset(t, "MultiNews"), longbench.GenConfig{Seed: 9, PoolDocs: 4, DocSentences: 6})
	if _, err := probe.RegisterSchema(w.Schema); err != nil {
		t.Fatal(err)
	}
	tight := core.NewCache(m,
		core.WithInt8Modules(),
		core.WithEvictionPolicy(evict.NewGDSF()),
		core.WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: probe.PoolUsed()/2 + 1})),
	)
	srv := httptest.NewServer(server.New(tight))
	defer srv.Close()

	post := func(path string, body any) map[string]any {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if e, ok := out["error"]; ok {
			t.Fatalf("server error: %v", e)
		}
		return out
	}
	post("/schemas", server.SchemaRequest{PML: w.Schema})
	for _, s := range w.Samples[:4] {
		out := post("/v1/complete", server.CompleteRequest{Prompt: s.Prompt, MaxTokens: 6})
		if out["cached_tokens"].(float64) <= 0 {
			t.Fatalf("no reuse through server: %v", out)
		}
	}
	stats := post("/stats", nil)
	if stats["modules_evicted"].(float64) == 0 {
		t.Fatalf("tight pool should evict: %v", stats)
	}
	if stats["modules_reloaded"].(float64) == 0 {
		t.Fatalf("reuse after eviction should reload: %v", stats)
	}
}

func mustDataset(t *testing.T, name string) longbench.Dataset {
	t.Helper()
	d, ok := longbench.ByName(name)
	if !ok {
		t.Fatalf("dataset %q missing", name)
	}
	return d
}

// TestBatchEndpointSharing: HTTP batch completion over a LongBench
// workload where samples share pool documents.
func TestBatchEndpointSharing(t *testing.T) {
	cache := core.NewCache(newModel(t, 5))
	srv := httptest.NewServer(server.New(cache))
	defer srv.Close()

	d := mustDataset(t, "HotpotQA")
	w := longbench.Generate(d, longbench.GenConfig{Seed: 11, PoolDocs: 3, DocsPerSample: 2, NumSamples: 6, DocSentences: 5})
	body, _ := json.Marshal(server.SchemaRequest{PML: w.Schema})
	if _, err := srv.Client().Post(srv.URL+"/schemas", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	var prompts []string
	for _, s := range w.Samples {
		prompts = append(prompts, s.Prompt)
	}
	breq, _ := json.Marshal(server.BatchRequest{Prompts: prompts, MaxTokens: 4})
	resp, err := srv.Client().Post(srv.URL+"/v1/complete_batch", "application/json", bytes.NewReader(breq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out server.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(prompts) {
		t.Fatalf("results = %d", len(out.Results))
	}
	// 6 samples drawing 2 docs each from a pool of 3 must share.
	if out.SharedModules == 0 || out.SavingsPct <= 0 {
		t.Fatalf("no sharing over shared pool: %+v", out)
	}
}

// TestCrossSchemaIsolation: same module name in two schemas must resolve
// independently.
func TestCrossSchemaIsolation(t *testing.T) {
	cache := core.NewCache(newModel(t, 6))
	for i, body := range []string{"first corpus of words here", "totally different other corpus"} {
		src := fmt.Sprintf(`<schema name="s%d"><module name="doc">%s</module></schema>`, i, body)
		if _, err := cache.RegisterSchema(src); err != nil {
			t.Fatal(err)
		}
	}
	a, err := cache.Serve(`<prompt schema="s0"><doc/>question</prompt>`, core.ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Serve(`<prompt schema="s1"><doc/>question</prompt>`, core.ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(a.Logits, b.Logits) < 1e-6 {
		t.Fatal("different schemas' docs produced identical logits — cross-schema leakage")
	}
}

// TestSerializeParseFixpointOnGeneratedSchemas: every LongBench-generated
// schema survives a serialize→parse→serialize round trip unchanged.
func TestSerializeParseFixpointOnGeneratedSchemas(t *testing.T) {
	for _, d := range longbench.Figure8()[:4] {
		w := longbench.Generate(d, longbench.GenConfig{Seed: 13, PoolDocs: 2, DocSentences: 4})
		s1, err := pml.ParseSchema(w.Schema)
		if err != nil {
			t.Fatal(err)
		}
		out1 := pml.Serialize(s1)
		s2, err := pml.ParseSchema(out1)
		if err != nil {
			t.Fatalf("%s: serialized schema does not parse: %v", d.Name, err)
		}
		if out2 := pml.Serialize(s2); out2 != out1 {
			t.Fatalf("%s: serialize/parse not a fixpoint", d.Name)
		}
	}
}
