// Package integration hosts cross-module end-to-end tests: prompt
// programs compiled to PML and served through the cache, LongBench
// workloads scored through the metrics stack, and the HTTP server driven
// over quantized, capacity-limited caches. These tests exercise the same
// paths a downstream adopter of the library would compose.
package integration
