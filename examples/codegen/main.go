// Codegen reproduces the Figure-6 scenario: each source file of a game
// project is a prompt module, and prompts "import" whichever files the
// request needs, paying prefill cost only for the request itself.
//
//	go run ./examples/codegen
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

func main() {
	ctx := context.Background()
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+4096, 7))
	if err != nil {
		log.Fatal(err)
	}
	client := promptcache.New(m)
	if _, err := client.RegisterSchema(bench.CodeGenSchema); err != nil {
		log.Fatal(err)
	}

	requests := []struct {
		label, prompt string
	}{
		{"entry point (map+player+game)", bench.CodeGenPrompt},
		{"persistence (game+database)", `
<prompt schema="game-codegen">
  <game-py/><database-py/>
  <user>Add save and load commands to the game loop.</user>
</prompt>`},
		{"unit movement (unit+map)", `
<prompt schema="game-codegen">
  <unit-py/><map-py/>
  <user>Write a helper that moves a unit along map neighbors.</user>
</prompt>`},
	}

	for _, r := range requests {
		t0 := time.Now()
		resp, err := client.Infer(ctx, promptcache.Request{Prompt: r.prompt, MaxTokens: 20})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s reused %3d tokens, computed %2d, total %v\n",
			r.label, resp.CachedTokens, resp.NewTokens, time.Since(t0))
		fmt.Printf("  -> %s\n", resp.Text)
	}
	st := client.Stats()
	fmt.Printf("\ncache: %d modules encoded once, %d reuses across requests\n",
		st.ModulesEncoded, st.ModulesReused)
}
