// Quickstart: register a PML schema, serve a prompt with cached attention
// states through the promptcache API, and compare against the
// full-prefill baseline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

const schema = `
<schema name="assistant">
  <system>You are a concise assistant. Answer from the provided context.</system>
  <module name="company-facts">
    The company was founded in the harbor district. The founder of the
    company is laurel. The motto of the company is indigo tides. The
    company ships cedar furniture to three markets.
  </module>
  <module name="returns-policy">
    Returns are accepted within thirty days with a receipt. Refunds are
    issued to the original payment method within one week.
  </module>
</schema>`

const prompt = `
<prompt schema="assistant">
  <company-facts/>
  <user>What is the motto of the company?</user>
</prompt>`

func main() {
	ctx := context.Background()

	// 1. Build a model (seeded weights; any architecture family works).
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+4096, 42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Wrap it in a prompt-cache client and register the schema.
	//    Registration precomputes attention states for every module (§3.3).
	client := promptcache.New(m)
	info, err := client.RegisterSchema(schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema %q registered: %d modules, %d position IDs\n",
		info.Name, len(info.Modules), info.Positions)

	// 3. Serve the prompt with attention reuse: cached modules are spliced
	//    in, only new text is computed (§3.4). PrefillOnly isolates TTFT.
	t0 := time.Now()
	res, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, PrefillOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	cachedTTFT := time.Since(t0)
	fmt.Printf("cached serve:   %4d reused + %2d new tokens, TTFT %v\n",
		res.CachedTokens, res.NewTokens, cachedTTFT)

	// 4. The baseline recomputes everything.
	t0 = time.Now()
	base, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, Baseline: true, PrefillOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	baseTTFT := time.Since(t0)
	fmt.Printf("baseline serve: %4d tokens recomputed, TTFT %v (%.1fx slower)\n",
		base.NewTokens, baseTTFT, float64(baseTTFT)/float64(cachedTTFT))

	// 5. Generate from both. With more than one independently encoded
	//    module (here: the anonymous system message plus company-facts),
	//    Prompt Cache applies the paper's §3.3 attention-mask
	//    approximation, so outputs may differ slightly; declare the
	//    modules as a <scaffold> to make them match exactly.
	cached, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, MaxTokens: 16})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, Baseline: true, MaxTokens: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached   output: %s\n", cached.Text)
	fmt.Printf("baseline output: %s\n", baseline.Text)
}
