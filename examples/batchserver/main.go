// Batchserver demonstrates §3.4's batch optimization on the real engine:
// a burst of prompts importing the same documents is served as one batch,
// with each distinct module's attention states stored once in a shared
// paged pool instead of per prompt.
//
//	go run ./examples/batchserver
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/longbench"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

func main() {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+4096, 66))
	if err != nil {
		log.Fatal(err)
	}
	cache := core.NewCache(m)

	// A multi-doc QA workload whose samples draw from a shared pool.
	d, _ := longbench.ByName("HotpotQA")
	w := longbench.Generate(d, longbench.GenConfig{
		Seed: 9, PoolDocs: 3, DocsPerSample: 2, NumSamples: 8, DocSentences: 8,
	})
	if _, err := cache.RegisterSchema(w.Schema); err != nil {
		log.Fatal(err)
	}
	prompts := make([]string, len(w.Samples))
	for i, s := range w.Samples {
		prompts[i] = s.Prompt
	}

	results, stats, err := cache.ServeBatch(prompts, core.ServeOpts{})
	if err != nil {
		log.Fatal(err)
	}
	gens, err := cache.GenerateBatch(results, model.GenerateOpts{MaxTokens: 10})
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		fmt.Printf("prompt %d: docs %v, %3d reused + %2d new -> %s\n",
			i, w.Samples[i].Docs, res.CachedTokens, res.NewTokens,
			cache.Tokenizer().Decode(gens[i]))
	}
	fmt.Printf("\nbatch of %d: %d module references shared\n", stats.Prompts, stats.SharedModules)
	fmt.Printf("logical KV bytes %8d (if every prompt duplicated modules)\n", stats.LogicalBytes)
	fmt.Printf("physical KV bytes %7d (shared paged pool)\n", stats.PhysicalBytes)
	fmt.Printf("memory saved: %.0f%% — the §3.4 batch effect\n", 100*stats.Savings())
}
