// Batchserver demonstrates §3.4's batch optimization on the real engine:
// a burst of prompts importing the same documents is served as one
// InferBatch call, with each distinct module's attention states stored
// once in a shared paged pool instead of per prompt.
//
//	go run ./examples/batchserver
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/longbench"
	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

func main() {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+4096, 66))
	if err != nil {
		log.Fatal(err)
	}
	client := promptcache.New(m)

	// A multi-doc QA workload whose samples draw from a shared pool.
	d, _ := longbench.ByName("HotpotQA")
	w := longbench.Generate(d, longbench.GenConfig{
		Seed: 9, PoolDocs: 3, DocsPerSample: 2, NumSamples: 8, DocSentences: 8,
	})
	if _, err := client.RegisterSchema(w.Schema); err != nil {
		log.Fatal(err)
	}
	prompts := make([]string, len(w.Samples))
	for i, s := range w.Samples {
		prompts[i] = s.Prompt
	}

	resp, err := client.InferBatch(context.Background(), promptcache.BatchRequest{
		Prompts:   prompts,
		MaxTokens: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range resp.Results {
		fmt.Printf("prompt %d: docs %v, %3d reused + %2d new -> %s\n",
			i, w.Samples[i].Docs, r.CachedTokens, r.NewTokens, r.Text)
	}
	stats := resp.Stats
	fmt.Printf("\nbatch of %d: %d module references shared\n", stats.Prompts, stats.SharedModules)
	fmt.Printf("logical KV bytes %8d (if every prompt duplicated modules)\n", stats.LogicalBytes)
	fmt.Printf("physical KV bytes %7d (shared paged pool)\n", stats.PhysicalBytes)
	fmt.Printf("memory saved: %.0f%% — the §3.4 batch effect\n", 100*stats.Savings())
}
