// Personalization reproduces the Figure-7 scenario: learner traits are
// organized as six unions of five mutually exclusive modules each; every
// profile is one pick per union, and all 30 trait modules are cached once.
//
//	go run ./examples/personalization
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

func main() {
	m, err := model.New(model.MPTStyle(tokenizer.WordBase+4096, 9))
	if err != nil {
		log.Fatal(err)
	}
	cache := core.NewCache(m)
	if _, err := cache.RegisterSchema(bench.PersonalizationSchema); err != nil {
		log.Fatal(err)
	}

	profiles := []struct {
		label  string
		traits string
	}{
		{"middle-school beginner", "<middle-school/><beginner/><studied-a-year-before/><auditory/><essay/><high-intrinsic-motivation/>"},
		{"graduate expert", "<graduate/><expert/><reviewing-for-exam/><reading-writing/><project/><career-driven/>"},
		{"undergrad visual learner", "<undergraduate/><intermediate/><self-taught-basics/><visual/><multiple-choice/><curiosity-driven/>"},
	}
	for _, p := range profiles {
		prompt := fmt.Sprintf(`<prompt schema="learner-profile">%s<user>Concisely describe the learner's profile.</user></prompt>`, p.traits)
		t0 := time.Now()
		res, err := cache.Serve(prompt, core.ServeOpts{})
		if err != nil {
			log.Fatal(err)
		}
		ttft := time.Since(t0)
		text, err := cache.GenerateText(res, model.GenerateOpts{MaxTokens: 18})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s reused %3d tokens, TTFT %v\n  -> %s\n", p.label, res.CachedTokens, ttft, text)
	}

	// Union exclusivity is enforced: two grades cannot coexist.
	_, err = cache.Serve(`<prompt schema="learner-profile"><middle-school/><high-school/><user>x</user></prompt>`, core.ServeOpts{})
	fmt.Printf("\nimporting two grade traits fails as expected: %v\n", err)
}
