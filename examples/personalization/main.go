// Personalization reproduces the Figure-7 scenario: learner traits are
// organized as six unions of five mutually exclusive modules each; every
// profile is one pick per union, and all 30 trait modules are cached once.
//
//	go run ./examples/personalization
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

func main() {
	ctx := context.Background()
	m, err := model.New(model.MPTStyle(tokenizer.WordBase+4096, 9))
	if err != nil {
		log.Fatal(err)
	}
	client := promptcache.New(m)
	if _, err := client.RegisterSchema(bench.PersonalizationSchema); err != nil {
		log.Fatal(err)
	}

	profiles := []struct {
		label  string
		traits string
	}{
		{"middle-school beginner", "<middle-school/><beginner/><studied-a-year-before/><auditory/><essay/><high-intrinsic-motivation/>"},
		{"graduate expert", "<graduate/><expert/><reviewing-for-exam/><reading-writing/><project/><career-driven/>"},
		{"undergrad visual learner", "<undergraduate/><intermediate/><self-taught-basics/><visual/><multiple-choice/><curiosity-driven/>"},
	}
	for _, p := range profiles {
		prompt := fmt.Sprintf(`<prompt schema="learner-profile">%s<user>Concisely describe the learner's profile.</user></prompt>`, p.traits)
		t0 := time.Now()
		resp, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, MaxTokens: 18})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s reused %3d tokens, total %v\n  -> %s\n", p.label, resp.CachedTokens, time.Since(t0), resp.Text)
	}

	// Union exclusivity is enforced and surfaces as a typed error.
	_, err = client.Infer(ctx, promptcache.Request{
		Prompt: `<prompt schema="learner-profile"><middle-school/><high-school/><user>x</user></prompt>`,
	})
	fmt.Printf("\nimporting two grade traits fails as expected (ErrBadPrompt=%v): %v\n",
		errors.Is(err, promptcache.ErrBadPrompt), err)
}
