// Ragserver demonstrates the paper's §6 outlook: Prompt Cache as the
// storage layer of a retrieval-augmented-generation service. A document
// pool is registered once as a schema; each query "retrieves" documents
// (keyword match here), imports only those modules, and completes with
// cached attention states over an in-process HTTP server. A final
// multi-turn exchange rides the /v1/sessions API, whose KV state lives
// server-side.
//
//	go run ./examples/ragserver
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// corpus is the retrievable document pool.
var corpus = map[string]string{
	"doc-harbor":  "The harbor hosts the spring festival. The keeper of the harbor is garnet. Ships arrive with cedar and amber cargo.",
	"doc-archive": "The archive stores council records. The founder of the archive is meridian. Visitors consult maps of the old railway.",
	"doc-garden":  "The garden grows juniper and heather. The patron of the garden is ochre. The season of bloom is early spring.",
	"doc-bridge":  "The bridge connects the market to the castle. The age of the bridge is basalt era. Lanterns line it during the festival.",
}

func buildSchema() string {
	var sb strings.Builder
	sb.WriteString("<schema name=\"rag\">\n  <system>Answer strictly from the retrieved documents.</system>\n")
	for name, text := range corpus {
		fmt.Fprintf(&sb, "  <module name=%q>%s</module>\n", name, text)
	}
	sb.WriteString("</schema>\n")
	return sb.String()
}

// retrieve returns the modules whose text shares words with the query —
// a stand-in for the paper's "information retrieval system serving as a
// database of prompt modules".
func retrieve(query string) []string {
	qwords := map[string]bool{}
	for _, w := range strings.Fields(strings.ToLower(query)) {
		qwords[w] = true
	}
	var hits []string
	for name, text := range corpus {
		for _, w := range strings.Fields(strings.ToLower(text)) {
			if qwords[strings.Trim(w, ".,")] {
				hits = append(hits, name)
				break
			}
		}
	}
	if len(hits) == 0 {
		hits = []string{"doc-archive"}
	}
	if len(hits) > 2 {
		hits = hits[:2]
	}
	return hits
}

func main() {
	m, err := model.New(model.FalconStyle(tokenizer.WordBase+4096, 33))
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.New(promptcache.New(m)))
	defer ts.Close()
	fmt.Printf("rag server on %s\n", ts.URL)

	do := func(method, path string, body any) map[string]any {
		b, _ := json.Marshal(body)
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(b))
		if err != nil {
			log.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := ts.Client().Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		if e, ok := out["error"]; ok {
			log.Fatalf("server error (%s): %v", resp.Status, e)
		}
		return out
	}
	post := func(path string, body any) map[string]any { return do(http.MethodPost, path, body) }

	reg := post("/schemas", server.SchemaRequest{PML: buildSchema()})
	fmt.Printf("registered schema %v with %v modules (encoded once)\n", reg["name"], reg["modules"])

	queries := []string{
		"who is the keeper of the harbor",
		"what does the garden grow in spring",
		"when do lanterns line the bridge",
	}
	for _, q := range queries {
		docs := retrieve(q)
		var imports strings.Builder
		for _, d := range docs {
			fmt.Fprintf(&imports, "<%s/>", d)
		}
		prompt := fmt.Sprintf("<prompt schema=\"rag\">%s<user>%s</user></prompt>", imports.String(), q)
		out := post("/v1/complete", server.CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 14}})
		fmt.Printf("q: %-38s retrieved %v, reused %v tokens\n  -> %v\n",
			q, docs, out["cached_tokens"], out["text"])
	}

	// Multi-turn over /v1/sessions: the server holds the KV state, follow-up
	// turns pay prefill only for their own text.
	sess := post("/v1/sessions", server.SessionRequest{
		Prompt:    `<prompt schema="rag"><doc-harbor/><user>Describe the harbor festival.</user></prompt>`,
		GenConfig: promptcache.GenConfig{MaxTokens: 12},
	})
	id := sess["session_id"].(string)
	fmt.Printf("\nsession %s opened, reused %v tokens\n  -> %v\n", id, sess["cached_tokens"], sess["text"])
	turn := post("/v1/sessions/"+id+"/send", server.SendRequest{Text: "And what cargo arrives by ship?"})
	fmt.Printf("follow-up (session now %v tokens)\n  -> %v\n", turn["session_tokens"], turn["text"])
	closed := do(http.MethodDelete, "/v1/sessions/"+id, nil)
	fmt.Printf("session %v %v\n", closed["session_id"], closed["status"])
}
