// Retryclient demonstrates the overload contract from the client side.
// The server runs with a deliberately tiny admission window (one slot,
// one queue seat), a burst of concurrent requests slams into it, and
// most of the burst is shed with HTTP 429 plus a computed Retry-After.
// The client treats that as the protocol it is: honor Retry-After when
// present, fall back to capped exponential backoff with jitter when
// not, and give up after a bounded number of attempts. Every request
// in the burst eventually completes — overload delays work, it does
// not lose it.
//
//	go run ./examples/retryclient
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

const schema = `<schema name="town">
  <module name="records">The archive stores council records. Visitors consult maps of the old railway and the harbor ledgers.</module>
</schema>`

// completeWithRetry POSTs one completion, retrying sheds the way a
// well-behaved client should: the server's Retry-After is authoritative
// when present; otherwise exponential backoff from 50ms. Both are
// capped, and jitter (+0–50%) keeps a burst of shed clients from
// re-arriving as the same thundering herd that was just shed.
func completeWithRetry(client *http.Client, url string, body []byte) (attempts, sheds int, err error) {
	const (
		maxAttempts = 8
		baseBackoff = 50 * time.Millisecond
		maxBackoff  = 2 * time.Second
	)
	backoff := baseBackoff
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		resp, err := client.Post(url+"/v1/complete", "application/json", bytes.NewReader(body))
		if err != nil {
			return attempt, sheds, err
		}
		if resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			return attempt, sheds, nil
		}
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			return attempt, sheds, fmt.Errorf("unexpected status %d", resp.StatusCode)
		}
		sheds++
		wait := backoff
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
			wait = time.Duration(secs) * time.Second
		}
		if wait > maxBackoff {
			wait = maxBackoff
		}
		wait += time.Duration(rand.Int64N(int64(wait / 2)))
		time.Sleep(wait)
		backoff *= 2
	}
	return maxAttempts, sheds, fmt.Errorf("gave up after %d attempts", maxAttempts)
}

func main() {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 21))
	if err != nil {
		log.Fatal(err)
	}
	// One slot, one queue seat: a 10-wide burst must shed ~80% of its
	// first wave, so the retry protocol actually gets exercised.
	pc := promptcache.New(m, promptcache.WithAdmission(promptcache.AdmissionConfig{
		MaxConcurrent: 1, MaxQueue: 1,
	}))
	ts := httptest.NewServer(server.New(pc))
	defer ts.Close()
	fmt.Printf("server on %s (admission: 1 slot, 1 queue seat)\n", ts.URL)

	reg, _ := json.Marshal(server.SchemaRequest{PML: schema})
	if resp, err := ts.Client().Post(ts.URL+"/schemas", "application/json", bytes.NewReader(reg)); err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("registering schema: %v (%v)", err, resp)
	}

	// Long enough generations that the slot is visibly occupied when
	// the rest of the burst arrives.
	body, _ := json.Marshal(server.CompleteRequest{
		Prompt:    `<prompt schema="town"><records/><user>Summarize the records.</user></prompt>`,
		GenConfig: promptcache.GenConfig{MaxTokens: 300},
	})

	const burst = 10
	fmt.Printf("firing a burst of %d concurrent completions...\n", burst)
	var wg sync.WaitGroup
	results := make([]struct {
		attempts, sheds int
		err             error
	}, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].attempts, results[i].sheds, results[i].err = completeWithRetry(ts.Client(), ts.URL, body)
		}(i)
	}
	wg.Wait()

	completed, totalSheds := 0, 0
	for i, r := range results {
		if r.err != nil {
			fmt.Printf("  request %2d: FAILED after %d attempts: %v\n", i, r.attempts, r.err)
			continue
		}
		completed++
		totalSheds += r.sheds
		fmt.Printf("  request %2d: completed on attempt %d (%d sheds honored)\n", i, r.attempts, r.sheds)
	}
	fmt.Printf("\n%d/%d completed; %d sheds retried per the server's Retry-After\n", completed, burst, totalSheds)

	// The server's books reconcile exactly: every arrival was admitted,
	// shed, or canceled — nothing hangs, nothing is lost.
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	adm := stats["admission"].(map[string]any)
	fmt.Printf("admission ledger: inflight=%v queue=%v interactive=%v\n",
		adm["inflight"], adm["queue_depth"], adm["interactive"])
}
