// Tripplanner reproduces the Figure-8 scenario: a parameterized
// travel-plan module (trip duration) with nested destination unions,
// reconfigured at runtime while reusing cached states.
//
//	go run ./examples/tripplanner
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

func main() {
	ctx := context.Background()
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+4096, 21))
	if err != nil {
		log.Fatal(err)
	}
	client := promptcache.New(m)
	if _, err := client.RegisterSchema(bench.TripPlanSchema); err != nil {
		log.Fatal(err)
	}

	trips := []struct {
		label, prompt string
	}{
		{"a week in Tokyo", bench.TripPlanPrompt},
		{"three days in Paris", `
<prompt schema="travel-planner">
  <travel-plan for="three days"><overseas><paris/></overseas></travel-plan>
  <user>Create a travel plan</user>
</prompt>`},
		{"a weekend in the mountains", `
<prompt schema="travel-planner">
  <travel-plan for="a weekend"><domestic><mountains/></domestic></travel-plan>
  <user>Create a travel plan</user>
</prompt>`},
	}
	for _, tr := range trips {
		t0 := time.Now()
		resp, err := client.Infer(ctx, promptcache.Request{Prompt: tr.prompt, MaxTokens: 18})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s reused %3d + computed %2d tokens, total %v\n  -> %s\n",
			tr.label, resp.CachedTokens, resp.NewTokens, time.Since(t0), resp.Text)
	}

	// Oversized arguments are rejected against the parameter's len, with a
	// typed error the caller can branch on.
	_, err = client.Infer(ctx, promptcache.Request{Prompt: `<prompt schema="travel-planner">
	  <travel-plan for="an extremely long duration that cannot possibly fit the parameter buffer"/>
	  <user>plan</user></prompt>`})
	fmt.Printf("\noversized argument fails as expected (ErrArgTooLong=%v): %v\n",
		errors.Is(err, promptcache.ErrArgTooLong), err)
}
