// Tripplanner reproduces the Figure-8 scenario: a parameterized
// travel-plan module (trip duration) with nested destination unions,
// reconfigured at runtime while reusing cached states.
//
//	go run ./examples/tripplanner
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

func main() {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+4096, 21))
	if err != nil {
		log.Fatal(err)
	}
	cache := core.NewCache(m)
	if _, err := cache.RegisterSchema(bench.TripPlanSchema); err != nil {
		log.Fatal(err)
	}

	trips := []struct {
		label, prompt string
	}{
		{"a week in Tokyo", bench.TripPlanPrompt},
		{"three days in Paris", `
<prompt schema="travel-planner">
  <travel-plan for="three days"><overseas><paris/></overseas></travel-plan>
  <user>Create a travel plan</user>
</prompt>`},
		{"a weekend in the mountains", `
<prompt schema="travel-planner">
  <travel-plan for="a weekend"><domestic><mountains/></domestic></travel-plan>
  <user>Create a travel plan</user>
</prompt>`},
	}
	for _, tr := range trips {
		t0 := time.Now()
		res, err := cache.Serve(tr.prompt, core.ServeOpts{})
		if err != nil {
			log.Fatal(err)
		}
		ttft := time.Since(t0)
		text, err := cache.GenerateText(res, model.GenerateOpts{MaxTokens: 18})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s reused %3d + computed %2d tokens, TTFT %v\n  -> %s\n",
			tr.label, res.CachedTokens, res.NewTokens, ttft, text)
	}

	// Oversized arguments are rejected against the parameter's len.
	_, err = cache.Serve(`<prompt schema="travel-planner">
	  <travel-plan for="an extremely long duration that cannot possibly fit the parameter buffer"/>
	  <user>plan</user></prompt>`, core.ServeOpts{})
	fmt.Printf("\noversized argument fails as expected: %v\n", err)
}
