// Streaming demonstrates token-by-token generation with Prompt Cache:
// the time-to-first-token the paper optimizes is exactly the delay before
// the first streamed token arrives. The example serves the same prompt
// with and without attention reuse through one Infer call each, using
// the request's Stream sink for per-token delivery.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

func main() {
	ctx := context.Background()
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+4096, 55))
	if err != nil {
		log.Fatal(err)
	}
	client := promptcache.New(m)
	// A sizeable document so prefill dominates TTFT.
	if _, err := client.RegisterSchema(bench.EngineSchema("news", 512, 7)); err != nil {
		log.Fatal(err)
	}
	prompt := `<prompt schema="news"><doc/><user>Summarize the document.</user></prompt>`

	stream := func(label string, baseline bool) {
		start := time.Now()
		first := time.Duration(0)
		_, err := client.Infer(ctx, promptcache.Request{
			Prompt:    prompt,
			Baseline:  baseline,
			MaxTokens: 8,
			Sampler:   &promptcache.RepetitionPenalty{Penalty: 1.5, Window: 16},
			Stream: func(text string) bool {
				if first == 0 {
					first = time.Since(start)
					fmt.Printf("%-22s TTFT %8.1f ms | ", label, first.Seconds()*1e3)
				}
				fmt.Printf("%s ", text)
				return true
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	stream("baseline (no reuse)", true)
	stream("prompt cache", false)
}
