// Streaming demonstrates token-by-token generation with Prompt Cache:
// the time-to-first-token the paper optimizes is exactly the delay before
// the first streamed token arrives. The example serves the same prompt
// with and without attention reuse and prints per-token arrival times.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tokenizer"
)

func main() {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+4096, 55))
	if err != nil {
		log.Fatal(err)
	}
	cache := core.NewCache(m)
	// A sizeable document so prefill dominates TTFT.
	if _, err := cache.RegisterSchema(bench.EngineSchema("news", 512, 7)); err != nil {
		log.Fatal(err)
	}
	prompt := `<prompt schema="news"><doc/><user>Summarize the document.</user></prompt>`

	stream := func(label string, serve func() (*core.ServeResult, error)) {
		start := time.Now()
		res, err := serve()
		if err != nil {
			log.Fatal(err)
		}
		ttft := time.Since(start)
		fmt.Printf("%-22s TTFT %8.1f ms | ", label, ttft.Seconds()*1e3)
		opts := model.GenerateOpts{
			MaxTokens: 8,
			Sampler:   &model.RepetitionPenalty{Penalty: 1.5, Window: 16},
		}
		_, err = cache.GenerateStream(res, opts, func(text string) bool {
			fmt.Printf("%s ", text)
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	stream("baseline (no reuse)", func() (*core.ServeResult, error) {
		return cache.BaselineServe(prompt)
	})
	stream("prompt cache", func() (*core.ServeResult, error) {
		return cache.Serve(prompt, core.ServeOpts{})
	})
}
