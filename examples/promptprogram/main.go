// Promptprogram demonstrates §3.2.4: writing a Python-like prompt program
// instead of PML, compiling it, and serving prompts against the compiled
// schema — including a multi-turn conversation over a promptcache.Session,
// which owns the growing KV state across turns.
//
//	go run ./examples/promptprogram
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/model"
	"repro/internal/promptlang"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

const program = `
# A support-desk schema as a prompt program.
schema helpdesk:
  system "You are a patient support agent."
  if warranty:
    emit "The warranty covers parts and labor for two years from purchase."
  if shipping:
    emit "Orders ship within three business days with tracking provided."
  def ticket(product: 3, issue: 6):
    emit "The customer owns a"
    arg product
    emit "and reports the following issue:"
    arg issue
  choose:
    when tier_free:
      emit "Free tier customers receive community support responses."
    when tier_pro:
      emit "Pro tier customers receive priority responses within one day."
`

func main() {
	ctx := context.Background()
	pmlSrc, err := promptlang.CompileToPML(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled PML:")
	fmt.Println(pmlSrc)

	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+4096, 77))
	if err != nil {
		log.Fatal(err)
	}
	client := promptcache.New(m)
	if _, err := client.RegisterSchema(pmlSrc); err != nil {
		log.Fatal(err)
	}

	// Multi-turn: the session owns the conversation's KV cache; each Send
	// pays prefill only for its own text.
	sess, first, err := client.NewSession(ctx, promptcache.Request{
		Prompt: `<prompt schema="helpdesk">
		  <warranty/>
		  <ticket product="coffee grinder" issue="burrs jam every morning"/>
		  <tier_pro/>
		  <user>Draft a first reply.</user>
		</prompt>`,
		MaxTokens: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("turn 1 (%d cached + %d new tokens): %s\n", first.CachedTokens, first.NewTokens, first.Text)

	second, err := sess.Send(ctx, "The customer replies that cleaning did not help.")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("turn 2 (session cache %d tokens): %s\n", sess.CachedTokens(), second.Text)
}
