package promptcache

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/tokenizer"
)

const testVocab = tokenizer.WordBase + 2048

const testSchema = `
<schema name="travel">
  You are a helpful travel planner.
  <module name="trip-plan">
    Plan a trip of duration <param name="duration" len="4"/> at a relaxed pace.
  </module>
  <union>
    <module name="tokyo">Tokyo is the capital of Japan with superb food and temples.</module>
    <module name="miami">Miami is a coastal city in Florida with beaches and surf.</module>
  </union>
</schema>`

func newClient(t *testing.T) *Client {
	t.Helper()
	m, err := model.New(model.LlamaStyle(testVocab, 77))
	if err != nil {
		t.Fatal(err)
	}
	c := New(m)
	if _, err := c.RegisterSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInferCachedCompletion(t *testing.T) {
	c := newClient(t)
	resp, err := c.Infer(context.Background(), Request{
		Prompt:    `<prompt schema="travel"><miami/><user>Plan a beach day.</user></prompt>`,
		MaxTokens: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CachedTokens == 0 || resp.NewTokens == 0 {
		t.Fatalf("reuse accounting: %+v", resp)
	}
	if strings.TrimSpace(resp.Text) == "" || len(resp.Tokens) == 0 {
		t.Fatalf("empty generation: %+v", resp)
	}
	if len(resp.Modules) == 0 {
		t.Fatalf("no modules reported: %+v", resp)
	}
}

func TestInferBaselineMatchesCachedSingleModule(t *testing.T) {
	m, err := model.New(model.LlamaStyle(testVocab, 5))
	if err != nil {
		t.Fatal(err)
	}
	c := New(m)
	schema := `<schema name="doc">
	  <module name="contract">The tenant shall pay rent monthly and keep the garden tidy.</module>
	</schema>`
	if _, err := c.RegisterSchema(schema); err != nil {
		t.Fatal(err)
	}
	prompt := `<prompt schema="doc"><contract/>Summarize the obligations.</prompt>`
	cached, err := c.Infer(context.Background(), Request{Prompt: prompt, MaxTokens: 8})
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.Infer(context.Background(), Request{Prompt: prompt, MaxTokens: 8, Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.CachedTokens != 0 {
		t.Fatalf("baseline must not reuse: %+v", base)
	}
	// Single module from position 0: cached inference degenerates to
	// prefix sharing and outputs match exactly.
	if cached.Text != base.Text {
		t.Fatalf("cached %q != baseline %q", cached.Text, base.Text)
	}
}

func TestInferPrefillOnly(t *testing.T) {
	c := newClient(t)
	resp, err := c.Infer(context.Background(), Request{
		Prompt:      `<prompt schema="travel"><tokyo/>Plan.</prompt>`,
		PrefillOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "" || len(resp.Tokens) != 0 {
		t.Fatalf("prefill-only must not decode: %+v", resp)
	}
	if resp.CachedTokens == 0 || len(resp.Logits) != testVocab {
		t.Fatalf("prefill-only must still serve: cached=%d logits=%d", resp.CachedTokens, len(resp.Logits))
	}
}

func TestInferStreaming(t *testing.T) {
	c := newClient(t)
	var streamed []string
	resp, err := c.Infer(context.Background(), Request{
		Prompt:    `<prompt schema="travel"><miami/>Recommend food.</prompt>`,
		MaxTokens: 6,
		Stream:    func(text string) bool { streamed = append(streamed, text); return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(resp.Tokens) {
		t.Fatalf("streamed %d tokens, response has %d", len(streamed), len(resp.Tokens))
	}
}

// TestInferCancelMidDecode: cancelling the context from inside the
// stream sink aborts generation at the next decode step.
func TestInferCancelMidDecode(t *testing.T) {
	c := newClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	_, err := c.Infer(ctx, Request{
		Prompt:    `<prompt schema="travel"><miami/>Recommend food.</prompt>`,
		MaxTokens: 1 << 20, // would decode forever without cancellation
		Stream: func(string) bool {
			emitted++
			if emitted == 2 {
				cancel()
			}
			return true
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if emitted > 3 {
		t.Fatalf("decode kept running after cancel: %d tokens emitted", emitted)
	}
}

// TestInferCancelBeforePrefill: an already-cancelled context aborts
// inside the serve path, before any decode.
func TestInferCancelBeforePrefill(t *testing.T) {
	c := newClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Infer(ctx, Request{
		Prompt: `<prompt schema="travel"><tokyo/>Plan a long trip now.</prompt>`,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	c := newClient(t)
	cases := []struct {
		name   string
		prompt string
		want   error
	}{
		{"unknown schema", `<prompt schema="ghost">x</prompt>`, ErrUnknownSchema},
		{"unparsable", `<prompt schema=`, ErrBadPrompt},
		{"unknown module", `<prompt schema="travel"><atlantis/>x</prompt>`, ErrBadPrompt},
		{"union clash", `<prompt schema="travel"><tokyo/><miami/>go</prompt>`, ErrBadPrompt},
		{"no new tokens", `<prompt schema="travel"><miami/></prompt>`, ErrBadPrompt},
		{"arg too long", `<prompt schema="travel"><trip-plan duration="one two three four five six seven"/>ok</prompt>`, ErrArgTooLong},
	}
	for _, tc := range cases {
		_, err := c.Infer(context.Background(), Request{Prompt: tc.prompt})
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
	}
	if _, err := c.Infer(context.Background(), Request{}); !errors.Is(err, ErrBadPrompt) {
		t.Errorf("empty request: got %v", err)
	}
	if _, err := c.RegisterSchema("<bogus/>"); !errors.Is(err, ErrBadSchema) {
		t.Errorf("bad schema: got %v", err)
	}
}

func TestSessionMultiTurn(t *testing.T) {
	c := newClient(t)
	sess, first, err := c.NewSession(context.Background(), Request{
		Prompt:    `<prompt schema="travel"><miami/><user>Plan a beach day.</user></prompt>`,
		MaxTokens: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(first.Text) == "" {
		t.Fatal("empty first reply")
	}
	before := sess.CachedTokens()
	r2, err := sess.Send(context.Background(), "Now add an evening plan.")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(r2.Text) == "" {
		t.Fatal("empty second reply")
	}
	r3, err := sess.Send(context.Background(), "And where should we eat?")
	if err != nil {
		t.Fatal(err)
	}
	_ = r3
	if sess.Turns() != 2 {
		t.Fatalf("turns = %d", sess.Turns())
	}
	if sess.CachedTokens() <= before {
		t.Fatalf("session KV did not grow: %d -> %d", before, sess.CachedTokens())
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Send(context.Background(), "more"); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := sess.Close(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("double close: %v", err)
	}
}

// TestSessionDefaultsDropPerTurnFields: the first turn's Stream sink
// must not replay on later Sends — only generation settings persist.
func TestSessionDefaultsDropPerTurnFields(t *testing.T) {
	c := newClient(t)
	firstTurnSink := 0
	sess, _, err := c.NewSession(context.Background(), Request{
		Prompt:    `<prompt schema="travel"><miami/><user>Plan a beach day.</user></prompt>`,
		MaxTokens: 4,
		Stream:    func(string) bool { firstTurnSink++; return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := firstTurnSink
	if afterFirst == 0 {
		t.Fatal("first turn should stream")
	}
	resp, err := sess.Send(context.Background(), "Now add an evening plan.")
	if err != nil {
		t.Fatal(err)
	}
	if firstTurnSink != afterFirst {
		t.Fatalf("turn-1 stream sink replayed on turn 2 (%d -> %d calls)", afterFirst, firstTurnSink)
	}
	if len(resp.Tokens) == 0 {
		t.Fatal("turn 2 generated nothing")
	}
}

// TestSessionRollsBackCancelledDecode: a turn cancelled mid-decode must
// not leave the user text or a partial reply in the session history.
func TestSessionRollsBackCancelledDecode(t *testing.T) {
	c := newClient(t)
	sess, _, err := c.NewSession(context.Background(), Request{
		Prompt:    `<prompt schema="travel"><miami/><user>Plan a beach day.</user></prompt>`,
		MaxTokens: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := sess.CachedTokens()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	_, err = sess.SendOpts(ctx, "a follow-up that will be cancelled mid-decode", Request{
		MaxTokens: 1 << 20,
		Stream: func(string) bool {
			emitted++
			if emitted == 2 {
				cancel()
			}
			return true
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := sess.CachedTokens(); got != before {
		t.Fatalf("cancelled decode left tokens in session KV: %d -> %d", before, got)
	}
	if sess.Turns() != 0 {
		t.Fatalf("cancelled turn counted: %d", sess.Turns())
	}
	if _, err := sess.Send(context.Background(), "a real follow-up"); err != nil {
		t.Fatalf("session unusable after cancelled decode: %v", err)
	}
}

// TestSessionSurvivesCancelledTurn: a turn cancelled mid-prefill rolls
// the session's KV state back; the next Send succeeds.
func TestSessionSurvivesCancelledTurn(t *testing.T) {
	c := newClient(t)
	sess, _, err := c.NewSession(context.Background(), Request{
		Prompt:    `<prompt schema="travel"><miami/><user>Plan a beach day.</user></prompt>`,
		MaxTokens: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := sess.CachedTokens()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Send(ctx, "a cancelled follow-up turn with plenty of words to prefill"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := sess.CachedTokens(); got != before {
		t.Fatalf("KV not rolled back after cancel: %d -> %d", before, got)
	}
	if _, err := sess.Send(context.Background(), "a real follow-up"); err != nil {
		t.Fatalf("session unusable after cancelled turn: %v", err)
	}
}

func TestInferBatchSharing(t *testing.T) {
	c := newClient(t)
	resp, err := c.InferBatch(context.Background(), BatchRequest{
		Prompts: []string{
			`<prompt schema="travel"><miami/>First question.</prompt>`,
			`<prompt schema="travel"><miami/>Second question.</prompt>`,
			`<prompt schema="travel"><tokyo/>Third question.</prompt>`,
		},
		MaxTokens: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	if resp.Stats.SharedModules == 0 {
		t.Fatalf("no sharing: %+v", resp.Stats)
	}
	for i, r := range resp.Results {
		if strings.TrimSpace(r.Text) == "" {
			t.Fatalf("result %d empty", i)
		}
	}
	if _, err := c.InferBatch(context.Background(), BatchRequest{}); !errors.Is(err, ErrBadPrompt) {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestSchedulerRoutesAllPaths: with WithDecodeScheduler every decode —
// Infer, streaming, session turns — runs as a lane of the shared fused
// batch and must produce exactly the text of an unscheduled client.
func TestSchedulerRoutesAllPaths(t *testing.T) {
	m, err := model.New(model.LlamaStyle(testVocab, 77))
	if err != nil {
		t.Fatal(err)
	}
	plain := New(m)
	m2, err := model.New(model.LlamaStyle(testVocab, 77))
	if err != nil {
		t.Fatal(err)
	}
	fused := New(m2, WithDecodeScheduler(4))
	for _, c := range []*Client{plain, fused} {
		if _, err := c.RegisterSchema(testSchema); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	prompt := `<prompt schema="travel"><miami/><user>Plan a beach day.</user></prompt>`

	run := func(c *Client) (infer, streamed, turn string) {
		t.Helper()
		resp, err := c.Infer(ctx, Request{Prompt: prompt, MaxTokens: 8})
		if err != nil {
			t.Fatal(err)
		}
		infer = resp.Text
		var sb strings.Builder
		if _, err = c.Infer(ctx, Request{Prompt: prompt, MaxTokens: 8, Stream: func(text string) bool {
			sb.WriteString(text)
			return true
		}}); err != nil {
			t.Fatal(err)
		}
		streamed = sb.String()
		sess, _, err := c.NewSession(ctx, Request{Prompt: prompt, MaxTokens: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		reply, err := sess.Send(ctx, "tell me more")
		if err != nil {
			t.Fatal(err)
		}
		return infer, streamed, reply.Text
	}

	wantInfer, wantStream, wantTurn := run(plain)
	gotInfer, gotStream, gotTurn := run(fused)
	if gotInfer != wantInfer || gotStream != wantStream || gotTurn != wantTurn {
		t.Fatalf("scheduled output diverged:\ninfer  %q vs %q\nstream %q vs %q\nturn   %q vs %q",
			gotInfer, wantInfer, gotStream, wantStream, gotTurn, wantTurn)
	}
	st := fused.SchedulerStats()
	if !st.Enabled || st.LanesJoined < 4 || st.LanesJoined != st.LanesRetired {
		t.Fatalf("scheduler did not carry the decodes: %+v", st)
	}
	if plainStats := plain.SchedulerStats(); plainStats.Enabled {
		t.Fatalf("unscheduled client reports a scheduler: %+v", plainStats)
	}
}

// TestSchedulerBatchDecodeFuses: InferBatch under a scheduler decodes
// its members as concurrent lanes, with results identical to the
// sequential (unscheduled) batch.
func TestSchedulerBatchDecodeFuses(t *testing.T) {
	m, err := model.New(model.LlamaStyle(testVocab, 77))
	if err != nil {
		t.Fatal(err)
	}
	plain := New(m)
	m2, err := model.New(model.LlamaStyle(testVocab, 77))
	if err != nil {
		t.Fatal(err)
	}
	fused := New(m2, WithDecodeScheduler(4))
	for _, c := range []*Client{plain, fused} {
		if _, err := c.RegisterSchema(testSchema); err != nil {
			t.Fatal(err)
		}
	}
	req := BatchRequest{
		Prompts: []string{
			`<prompt schema="travel"><miami/>One.</prompt>`,
			`<prompt schema="travel"><tokyo/>Two.</prompt>`,
			`<prompt schema="travel"><trip-plan duration="two days"/><miami/>Three.</prompt>`,
		},
		MaxTokens: 8,
	}
	ctx := context.Background()
	want, err := plain.InferBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fused.InferBatch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		if got.Results[i].Text != want.Results[i].Text {
			t.Fatalf("batch member %d diverged: %q vs %q", i, got.Results[i].Text, want.Results[i].Text)
		}
	}
	if st := fused.SchedulerStats(); st.LanesJoined < int64(len(req.Prompts)) {
		t.Fatalf("batch members did not decode through the scheduler: %+v", st)
	}
}

// TestWarmRestartViaOpen: SaveAll then Open restores a client that
// serves its first cached request without re-encoding, matching the
// pre-restart response exactly under the default fp32 snapshot codec.
func TestWarmRestartViaOpen(t *testing.T) {
	m, err := model.New(model.LlamaStyle(testVocab, 909))
	if err != nil {
		t.Fatal(err)
	}
	orig := New(m)
	if _, err := orig.RegisterSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	req := Request{
		Prompt:    `<prompt schema="travel"><tokyo/><user>Plan a temple walk.</user></prompt>`,
		MaxTokens: 8,
	}
	want, err := orig.Infer(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if HasSnapshot(dir) {
		t.Fatal("empty dir should have no snapshot")
	}
	if err := orig.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	if !HasSnapshot(dir) {
		t.Fatal("snapshot should be visible after SaveAll")
	}

	restored, err := Open(m, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Schemas(), orig.Schemas(); len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("schemas = %v, want %v", got, want)
	}
	got, err := restored.Infer(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st := restored.Stats()
	if st.ModulesEncoded != 0 {
		t.Fatalf("restart re-encoded: %+v", st)
	}
	if st.DiskHits == 0 {
		t.Fatal("first request should hit the disk tier")
	}
	if got.Text != want.Text || got.CachedTokens != want.CachedTokens || got.NewTokens != want.NewTokens {
		t.Fatalf("restart response differs: got %q (%d/%d), want %q (%d/%d)",
			got.Text, got.CachedTokens, got.NewTokens, want.Text, want.CachedTokens, want.NewTokens)
	}
}

// TestDiskTierCodecFlagShapes: the codec round-trips through its flag
// form, the shape configuration arrives in.
func TestDiskTierCodecFlagShapes(t *testing.T) {
	for _, name := range []string{"fp32", "int8", "int4"} {
		c, err := ParseCodec(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.String() != name {
			t.Fatalf("codec %q round-tripped to %q", name, c.String())
		}
	}
	if _, err := ParseCodec("bf16"); err == nil {
		t.Fatal("unknown codec should fail")
	}
}
