package promptcache

import (
	"fmt"

	"repro/internal/pml"
)

// Request consolidates everything one inference call can ask for. The
// zero value plus a Prompt is a valid cached completion with default
// generation settings.
type Request struct {
	// Prompt is the PML prompt source, referencing a registered schema.
	Prompt string
	// Parsed short-circuits parsing for callers that already hold a
	// *pml.Prompt; it takes precedence over Prompt.
	Parsed *pml.Prompt

	// Baseline disables attention reuse and runs a full prefill — the
	// paper's KV-Cache baseline, for comparisons.
	Baseline bool
	// DisableScaffolds skips scaffold override even when every member of
	// a scaffold is imported (the §3.3 masking-effect ablation).
	DisableScaffolds bool
	// PrefillOnly stops after assembling attention states: no decode.
	// The Response then carries reuse statistics and logits but no text.
	// This is the TTFT-measurement mode.
	PrefillOnly bool

	// Gen carries the generation options: token budget, sampler, stop
	// condition, SLO class, and speculation. The zero value means "all
	// defaults"; explicit Gen fields win over the deprecated flat aliases
	// below, which back-fill only fields Gen leaves zero.
	Gen GenConfig

	// SLO classifies the request's latency objective.
	//
	// Deprecated: set Gen.SLO instead. Kept as an alias so pre-GenConfig
	// callers compile and behave identically; it applies only when
	// Gen.SLO is the zero class.
	SLO SLOClass

	// MaxTokens bounds generation (default 32).
	//
	// Deprecated: set Gen.MaxTokens instead. Applies only when
	// Gen.MaxTokens is zero.
	MaxTokens int
	// Sampler selects next tokens (default greedy, as in the paper §5.3).
	//
	// Deprecated: set Gen.Sampler instead. Applies only when Gen.Sampler
	// is nil.
	Sampler Sampler
	// StopToken ends generation when sampled (default EOS).
	//
	// Deprecated: set Gen.StopToken instead. Applies only when
	// Gen.StopToken is zero.
	StopToken int
	// Stream, when set, receives each generated token's text as soon as
	// it is sampled; returning false stops generation early. The full
	// Response is still returned at the end.
	Stream func(text string) bool
}

func (r *Request) validate() error {
	if r.Prompt == "" && r.Parsed == nil {
		return fmt.Errorf("%w: request has neither Prompt nor Parsed", ErrBadPrompt)
	}
	return nil
}

// genConfig merges the request's GenConfig with its deprecated flat
// aliases: Gen wins, flat fields back-fill what Gen leaves zero. All
// consumers (admission, decode, the servers) read this merged view.
func (r *Request) genConfig() GenConfig {
	return r.Gen.withFallback(r.MaxTokens, r.Sampler, r.StopToken, r.SLO)
}

// Response carries a completed inference: the generation (unless the
// request was prefill-only) plus the reuse accounting that is the
// paper's headline metric.
type Response struct {
	// Text is the detokenized generation; empty for prefill-only runs.
	Text string
	// Tokens are the generated token ids.
	Tokens []int
	// CachedTokens counts tokens whose attention states were reused from
	// the cache; NewTokens counts tokens computed at serve time. The
	// TTFT saving is the story of this ratio (§3.4).
	CachedTokens, NewTokens int
	// Modules lists imported modules in position order; Scaffolds lists
	// scaffold overrides applied.
	Modules, Scaffolds []string
	// Logits are the serve-time final-token logits, kept for accuracy
	// comparisons between cached and baseline runs.
	Logits []float32
}
