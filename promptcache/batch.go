package promptcache

import (
	"context"
	"sync"

	"repro/internal/core"
)

// BatchRequest completes several prompts in one call with each distinct
// module's attention states shared across the batch through a paged pool
// (§3.4's batch-memory optimization).
type BatchRequest struct {
	Prompts []string
	// DisableScaffolds applies to every prompt in the batch.
	DisableScaffolds bool
	// PrefillOnly skips the decode phase for the whole batch.
	PrefillOnly bool
	// Workers bounds the worker pool the batch's prefills fan out over
	// (0 = GOMAXPROCS).
	Workers int
	// Gen carries the generation settings shared by all prompts. Note
	// the batch always admits as SLOBatch regardless of Gen.SLO — a bulk
	// request is batch traffic by definition.
	Gen GenConfig
	// MaxTokens bounds generation per prompt.
	//
	// Deprecated: set Gen.MaxTokens instead. Applies only when
	// Gen.MaxTokens is zero.
	MaxTokens int
	// Sampler selects next tokens for every prompt.
	//
	// Deprecated: set Gen.Sampler instead. Applies only when Gen.Sampler
	// is nil.
	Sampler Sampler
	// StopToken ends each prompt's generation when sampled.
	//
	// Deprecated: set Gen.StopToken instead. Applies only when
	// Gen.StopToken is zero.
	StopToken int
}

// BatchResponse carries per-prompt results (positionally parallel to the
// request's prompts) plus the sharing effect.
type BatchResponse struct {
	Results []*Response
	Stats   core.BatchStats
}

// InferBatch serves and generates a batch of prompts with module states
// shared across the batch; prefills run concurrently over the request's
// worker bound. Cancelling ctx aborts between (and inside) per-prompt
// prefills and decode steps.
func (c *Client) InferBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	// A batch occupies one admission slot as a unit — it is one caller's
	// bulk request, not N independent arrivals — and it always rides the
	// batch lane: interactive traffic is admitted and decoded ahead of it.
	ctx, done, err := c.admit(ctx, SLOBatch)
	if err != nil {
		return nil, err
	}
	defer done()
	results, stats, err := c.cache.ServeBatch(ctx, req.Prompts, core.ServeOpts{
		DisableScaffolds: req.DisableScaffolds,
		BatchWorkers:     req.Workers,
	})
	if err != nil {
		return nil, err
	}
	out := &BatchResponse{Stats: stats, Results: make([]*Response, len(results))}
	gen := req.Gen.withFallback(req.MaxTokens, req.Sampler, req.StopToken, SLOBatch)
	one := Request{PrefillOnly: req.PrefillOnly, Gen: gen}
	// Under a decode scheduler, generate every member concurrently so the
	// whole batch decodes as simultaneous lanes of the fused steps — but
	// only with the stateless default sampler: the request's one Sampler
	// is shared across members, and concurrent lanes would consume its
	// state in nondeterministic member order.
	if c.cache.SchedEnabled() && !req.PrefillOnly && gen.Sampler == nil && len(results) > 1 {
		errs := make([]error, len(results))
		var wg sync.WaitGroup
		for i, res := range results {
			wg.Add(1)
			go func(i int, res *core.ServeResult) {
				defer wg.Done()
				out.Results[i], errs[i] = c.generate(ctx, res, one, gen)
			}(i, res)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	for i, res := range results {
		resp, err := c.generate(ctx, res, one, gen)
		if err != nil {
			return nil, err
		}
		out.Results[i] = resp
	}
	return out, nil
}
