package promptcache

import (
	"context"

	"repro/internal/core"
)

// BatchRequest completes several prompts in one call with each distinct
// module's attention states shared across the batch through a paged pool
// (§3.4's batch-memory optimization).
type BatchRequest struct {
	Prompts []string
	// DisableScaffolds applies to every prompt in the batch.
	DisableScaffolds bool
	// PrefillOnly skips the decode phase for the whole batch.
	PrefillOnly bool
	// Workers bounds the worker pool the batch's prefills fan out over
	// (0 = GOMAXPROCS).
	Workers int
	// Generation settings shared by all prompts.
	MaxTokens int
	Sampler   Sampler
	StopToken int
}

// BatchResponse carries per-prompt results (positionally parallel to the
// request's prompts) plus the sharing effect.
type BatchResponse struct {
	Results []*Response
	Stats   core.BatchStats
}

// InferBatch serves and generates a batch of prompts with module states
// shared across the batch; prefills run concurrently over the request's
// worker bound. Cancelling ctx aborts between (and inside) per-prompt
// prefills and decode steps.
func (c *Client) InferBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	results, stats, err := c.cache.ServeBatch(ctx, req.Prompts, core.ServeOpts{
		DisableScaffolds: req.DisableScaffolds,
		BatchWorkers:     req.Workers,
	})
	if err != nil {
		return nil, err
	}
	out := &BatchResponse{Stats: stats, Results: make([]*Response, len(results))}
	one := Request{
		PrefillOnly: req.PrefillOnly,
		MaxTokens:   req.MaxTokens,
		Sampler:     req.Sampler,
		StopToken:   req.StopToken,
	}
	for i, res := range results {
		resp, err := c.generate(ctx, res, one)
		if err != nil {
			return nil, err
		}
		out.Results[i] = resp
	}
	return out, nil
}
