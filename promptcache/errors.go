package promptcache

import (
	"errors"

	"repro/internal/core"
)

// The error taxonomy. Each sentinel is aliased from the engine so
// errors.Is works whether a caller compares against promptcache or core;
// transports map these to protocol statuses.
var (
	// ErrUnknownSchema: the prompt names a schema that is not registered.
	ErrUnknownSchema = core.ErrUnknownSchema
	// ErrBadSchema: a schema failed to parse or compile.
	ErrBadSchema = core.ErrBadSchema
	// ErrBadPrompt: the prompt failed to parse or violates its schema.
	ErrBadPrompt = core.ErrBadPrompt
	// ErrArgTooLong: a parameter argument exceeds its declared len.
	ErrArgTooLong = core.ErrArgTooLong
	// ErrPromptTooLong: prompt, schema, or session exceeds the model's
	// maximum position IDs.
	ErrPromptTooLong = core.ErrPromptTooLong
	// ErrCapacity: module states cannot fit the memory pool even after
	// eviction.
	ErrCapacity = core.ErrCapacity
	// ErrBadSnapshot: a warm-restart snapshot or disk manifest is
	// malformed or does not match the live model/schema.
	ErrBadSnapshot = core.ErrBadSnapshot
	// ErrOverloaded: admission control shed the request — the server is
	// at capacity with a full queue. The chain carries an *OverloadError
	// whose Retry-After estimate RetryAfterHint recovers; transports map
	// this to 429.
	ErrOverloaded = core.ErrOverloaded
	// ErrDeadline: the request's deadline expired while queued or
	// mid-flight; also satisfies errors.Is(err,
	// context.DeadlineExceeded). Transports map this to 504.
	ErrDeadline = core.ErrDeadline
	// ErrSessionClosed: a Send or Close on an already-closed Session.
	ErrSessionClosed = errors.New("promptcache: session closed")
)
