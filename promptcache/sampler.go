package promptcache

import (
	"repro/internal/model"
	"repro/internal/rng"
)

// Sampler selects the next token from logits. It aliases the engine's
// sampler interface, so any engine sampler satisfies it and custom
// implementations need only this package.
type Sampler = model.Sampler

// The engine's samplers, re-exported so Request.Sampler can be populated
// without importing internal packages.
type (
	// GreedySampler picks the argmax token — the paper's deterministic
	// default (§5.3), and the default when Request.Sampler is nil.
	GreedySampler = model.GreedySampler
	// TemperatureSampler draws from the softmax distribution at a
	// temperature; construct with NewTemperatureSampler for a seeded RNG.
	TemperatureSampler = model.TemperatureSampler
	// TopKSampler samples among the k highest logits; construct with
	// NewTopKSampler for a seeded RNG.
	TopKSampler = model.TopKSampler
	// RepetitionPenalty wraps a sampler, penalizing recently generated
	// tokens.
	RepetitionPenalty = model.RepetitionPenalty
)

// NewTemperatureSampler returns a seeded temperature sampler.
func NewTemperatureSampler(temperature float32, seed uint64) *TemperatureSampler {
	return &TemperatureSampler{Temperature: temperature, RNG: rng.New(seed)}
}

// NewTopKSampler returns a seeded top-k sampler.
func NewTopKSampler(k int, temperature float32, seed uint64) *TopKSampler {
	return &TopKSampler{K: k, Temperature: temperature, RNG: rng.New(seed)}
}
