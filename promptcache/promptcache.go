// Package promptcache is the public serving API of the Prompt Cache
// reproduction (Gim et al., MLSys 2024). It wraps the engine in
// internal/core behind a small, context-aware surface:
//
//   - Client.Infer(ctx, Request) is the single inference entrypoint:
//     cached or baseline serving, optional streaming, prefill-only runs
//     for TTFT measurement, and sampling control, all in one request.
//   - Client.NewSession / Session.Send own the multi-turn KV state that
//     callers previously threaded by hand through core.Continue.
//   - Every failure wraps a sentinel from the error taxonomy
//     (ErrUnknownSchema, ErrBadPrompt, ErrArgTooLong, ...), so
//     transports classify with errors.Is instead of string matching.
//
// Cancelling the context aborts work mid-flight: between prefill chunks
// during serving and between decode steps during generation.
//
// # Concurrency
//
// A Client is safe for concurrent use, and serving is genuinely
// parallel: the engine's lock guards only metadata (schema registry,
// module residency, eviction bookkeeping). Each Infer pins the modules
// it needs during a short planning phase, then serves zero-copy: the
// request's KV is a segmented view into the pinned modules' buffers
// (no per-request copy of cached rows), and the suffix prefill runs
// outside the lock. Pinned modules cannot be evicted while a view reads
// them — Infer releases its pins after generation, Sessions hold theirs
// until Close (Session.Materialize releases them early by copying the
// state into owned storage). InferBatch fans its prompts
// out over a bounded worker pool sharing one paged block pool.
//
// With WithDecodeScheduler the decode phase is continuous-batched:
// concurrent generations join a shared token scheduler after their
// prefills and advance together, one fused model step per token for the
// whole batch. Requests join mid-flight, retire independently (stop
// token, MaxTokens, context cancellation), and each produces exactly the
// token stream it would have produced decoding alone — the scheduler
// changes throughput, never output. SchedulerStats exposes queue depth,
// active lanes and the batch-size histogram.
//
// With WithSpeculation (which requires the decode scheduler) decode
// speculates: accepted token streams train a per-serving-class n-gram
// draft source, and each lane verifies the draft's proposals in one
// widened fused step, emitting several tokens per step when the draft is
// right. Output stays bit-identical to solo decode — a wrong draft costs
// verify width, never a token — and requests opt in or out per call via
// GenConfig.Speculation. SpecStats exposes acceptance counters.
//
// # Generation options
//
// GenConfig is the single generation-options surface: Request.Gen,
// Session defaults, BatchRequest.Gen and the HTTP request shapes all
// take the same struct (max tokens, sampler, stop token, SLO class,
// speculation). The flat Request fields (MaxTokens, Sampler, StopToken,
// SLO) predate it and remain as deprecated aliases: they apply only when
// the corresponding GenConfig field is zero, so existing callers behave
// identically.
//
// # Options convention
//
// Option constructors that cannot fail return Option directly
// (WithDecodeScheduler, WithSpeculation, ...). Constructors that
// validate a name return (Option, error) — WithBackend,
// WithEvictionPolicy — for runtime-supplied names (flags, config files);
// their Must* variants (MustBackend, MustEvictionPolicy) panic on a bad
// name and exist for compile-time-constant names in tests and examples.
//
// WithBackend selects the tensor kernel backend by name ("scalar",
// "parallel", or "auto" for the hardware-based default). Backends are
// bit-identical by contract: the parallel backend tiles the same
// arithmetic across cores without ever reordering a reduction, so the
// choice moves latency and core utilization, never tokens or logits —
// cached modules, snapshots and golden outputs are portable across
// backends and machines.
//
// With WithModuleMining the cache grows itself: alongside the explicit
// PML modules a schema declares, the engine watches the uncached token
// streams requests actually send and promotes hot shared prefixes
// (undeclared system prompts, RAG boilerplate, few-shot headers) to
// anonymous mined modules. Mined and explicit modules coexist in one
// inventory — same pinning, eviction, disk spill and warm-restart
// machinery — and a request whose suffix starts with a mined prefix
// splices its states bit-exactly, like a schema hit. MiningStatsSnapshot
// exposes the observer tree and hit counters.
//
// Schema
// registration and prefetch encode module states under the engine lock
// (encoding is the deliberate one-time cost): requests already past
// planning are unaffected, but a request that starts while a
// registration runs waits for it to finish — keep registrations off
// latency-critical paths. Sessions serialize their own turns; use one
// Session per conversation.
//
// The option constructors (WithDeviceCapacity, WithHostTier, ...), the
// Sampler aliases, and SchemaInfo keep the public surface free of
// internal types; New's model argument is the one deliberate exception,
// since constructing a model is inherently an engine-level act.
package promptcache

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// Client is the serving handle around one model + prompt cache. It is
// safe for concurrent use.
type Client struct {
	cache *core.Cache
}

// New builds a Client around a model. Options (memory pools, eviction
// policy, int8 storage, chat template) pass through to the engine.
func New(m *model.Model, opts ...Option) *Client {
	return &Client{cache: core.NewCache(m, opts...)}
}

// Wrap adopts an existing engine cache — for callers that configured or
// snapshot-restored a core.Cache directly.
func Wrap(cache *core.Cache) *Client { return &Client{cache: cache} }

// Open builds a Client from a SaveAll warm-restart snapshot in dir:
// every schema the snapshot holds is registered with its module states
// left on disk, so opening performs no prompt encoding and the first
// request per module is a disk hit, not a re-encode. The client keeps
// dir as its disk tier for future evictions and snapshots. HasSnapshot
// reports whether dir holds something Open can restore.
func Open(m *model.Model, dir string, opts ...Option) (*Client, error) {
	cache, err := core.OpenDir(m, dir, opts...)
	if err != nil {
		return nil, err
	}
	return &Client{cache: cache}, nil
}

// HasSnapshot reports whether dir holds a SaveAll snapshot.
func HasSnapshot(dir string) bool { return core.HasSnapshot(dir) }

// SaveAll persists every registered schema — layout plus all module and
// scaffold states, quantized per the disk tier's codec when one is
// configured — into dir as a warm-restart snapshot for Open.
func (c *Client) SaveAll(dir string) error { return c.cache.SaveAll(dir) }

// Engine exposes the underlying core.Cache for advanced uses the public
// API does not cover (snapshots, prefetching, direct inspection).
func (c *Client) Engine() *core.Cache { return c.cache }

// Model returns the underlying model.
func (c *Client) Model() *model.Model { return c.cache.Model() }

// SchemaInfo summarizes a registered schema without exposing the
// internal layout type. Advanced callers needing the compiled layout can
// reach it through Engine().Layout(name).
type SchemaInfo struct {
	// Name is the schema's declared name.
	Name string
	// Modules lists the schema's prompt modules in layout order.
	Modules []string
	// Scaffolds lists the schema's co-encoded scaffolds.
	Scaffolds []string
	// Positions is the number of position IDs the layout occupies.
	Positions int
}

// RegisterSchema parses a PML schema, compiles its layout, and eagerly
// encodes every prompt module and scaffold. Registration failures wrap
// ErrBadSchema (parse/compile), ErrPromptTooLong (layout exceeds the
// model's positions), or ErrCapacity (states do not fit the pool).
// Registering is safe while other goroutines serve: in-flight requests
// keep the states they already pinned; later requests see the new entry.
func (c *Client) RegisterSchema(src string) (*SchemaInfo, error) {
	layout, err := c.cache.RegisterSchema(src)
	if err != nil {
		return nil, err
	}
	info := &SchemaInfo{
		Name:      layout.Schema.Name,
		Modules:   append([]string(nil), layout.Order...),
		Positions: layout.TotalLen,
	}
	for _, sc := range layout.Schema.Scaffolds {
		info.Scaffolds = append(info.Scaffolds, sc.Name)
	}
	return info, nil
}

// Schemas returns the names of all registered schemas, sorted.
func (c *Client) Schemas() []string { return c.cache.SchemaNames() }

// Stats returns a snapshot of cache activity counters.
//
// Deprecated: Snapshot returns the same counters plus every subsystem
// block in one versioned document; this remains as a thin per-subsystem
// view.
func (c *Client) Stats() core.Stats { return c.cache.Stats() }

// SchedStats is a snapshot of decode-scheduler activity: queue depth,
// active lanes, fused-step counters and the batch-size histogram. It is
// an alias of the engine's type, like Option and Sampler.
type SchedStats = core.SchedStats

// SchedulerStats returns a snapshot of the decode scheduler's activity.
// Without WithDecodeScheduler it returns the zero snapshot
// (Enabled false).
//
// Deprecated: Snapshot carries the same data in its Scheduler block;
// this remains as a thin per-subsystem view.
func (c *Client) SchedulerStats() SchedStats { return c.cache.SchedStats() }

// SchedulerEnabled reports whether this client decodes through a
// continuous-batching scheduler (WithDecodeScheduler), without the
// locking and copying of a full SchedulerStats snapshot.
func (c *Client) SchedulerEnabled() bool { return c.cache.SchedEnabled() }

// MiningStats is a snapshot of automatic module mining activity: the
// observer tree's size, promotion/demotion counters, and the tokens
// saved by mined-prefix hits. An alias of the engine's type, like
// SchedStats.
type MiningStats = core.MiningStats

// MiningStatsSnapshot returns a snapshot of module-mining activity.
// Without WithModuleMining it returns the zero snapshot (Enabled false).
//
// Deprecated: Snapshot carries the same data in its Mining block; this
// remains as a thin per-subsystem view.
func (c *Client) MiningStatsSnapshot() MiningStats { return c.cache.MiningStats() }

// MiningEnabled reports whether this client mines modules from traffic
// (WithModuleMining).
func (c *Client) MiningEnabled() bool { return c.cache.MiningEnabled() }

// AdmissionStats is a snapshot of admission-control activity: inflight
// and queue gauges, per-class admit/shed/cancel histograms, and the
// current Retry-After estimate. An alias of the engine's type, like
// SchedStats.
type AdmissionStats = core.AdmissionStats

// AdmissionClassStats is one SLO class's slice of admission activity.
type AdmissionClassStats = core.AdmissionClassStats

// OverloadError is the typed payload of a shed request, carrying the
// computed Retry-After estimate; recover it with errors.As or
// RetryAfterHint.
type OverloadError = core.OverloadError

// AdmissionStats returns a snapshot of admission-control activity.
// Without WithAdmission it returns the zero snapshot (Enabled false).
//
// Deprecated: Snapshot carries the same data in its Admission block;
// this remains as a thin per-subsystem view.
func (c *Client) AdmissionStats() AdmissionStats { return c.cache.AdmissionStats() }

// AdmissionEnabled reports whether this client admission-controls its
// requests (WithAdmission).
func (c *Client) AdmissionEnabled() bool { return c.cache.AdmissionEnabled() }

// SpecStats is a snapshot of speculative-decoding activity: the draft
// source's table statistics plus the scheduler's verify/accept counters.
// An alias of the engine's type, like SchedStats.
type SpecStats = core.SpecStats

// SpecStats returns a snapshot of speculative-decoding activity. Without
// WithSpeculation it returns the zero snapshot (Enabled false).
func (c *Client) SpecStats() SpecStats { return c.cache.SpecStats() }

// SpeculationEnabled reports whether this client speculates its decodes:
// a draft source (WithSpeculation) together with a decode scheduler
// (WithDecodeScheduler) to run the verify steps in.
func (c *Client) SpeculationEnabled() bool { return c.cache.SpecEnabled() }

// RetryAfterHint recovers the Retry-After estimate from a shed
// request's error chain: how long the caller should back off before
// retrying. ok is false when err is not an overload.
func RetryAfterHint(err error) (d time.Duration, ok bool) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	return 0, false
}

// admit acquires an admission slot (and the class deadline) for one
// request, returning the possibly-deadline-bound, SLO-tagged context
// plus the cleanup that releases both. The slot spans the whole request
// — queueing, prefill and decode — so MaxConcurrent bounds true
// end-to-end concurrency. On error nothing is held and done must not
// be called.
func (c *Client) admit(ctx context.Context, class SLOClass) (context.Context, func(), error) {
	ctx, cancel := c.cache.AdmissionContext(ctx, class)
	if err := c.cache.Admit(ctx, class); err != nil {
		cancel()
		return nil, nil, err
	}
	done := func() {
		c.cache.AdmitRelease(class)
		cancel()
	}
	return core.WithSLOClass(ctx, class), done, nil
}

// Infer runs one inference request end to end: admission (under
// WithAdmission: a slot, the class deadline, possibly a shed), then
// serve the prompt (cached reuse or full-prefill baseline), then
// generate unless the request is prefill-only. Cancelling ctx aborts
// mid-prefill or between decode steps; the error then satisfies
// errors.Is(err, context.Canceled) (or DeadlineExceeded, which also
// carries ErrDeadline when a configured per-request deadline expired).
func (c *Client) Infer(ctx context.Context, req Request) (*Response, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	gen := req.genConfig()
	ctx, done, err := c.admit(ctx, gen.SLO)
	if err != nil {
		return nil, err
	}
	defer done()
	res, err := c.serve(ctx, req)
	if err != nil {
		return nil, err
	}
	// The result's KV is a zero-copy view pinning the modules it reads;
	// the pins must outlive generation, then release promptly so the
	// modules become evictable again. Sessions keep their result (and
	// pins) open instead — see NewSession.
	defer res.Close()
	return c.generate(ctx, res, req, gen)
}

// serve assembles the prompt's attention states per the request mode.
func (c *Client) serve(ctx context.Context, req Request) (*core.ServeResult, error) {
	opts := core.ServeOpts{DisableScaffolds: req.DisableScaffolds}
	switch {
	case req.Baseline && req.Parsed != nil:
		return c.cache.BaselineServeParsed(ctx, req.Parsed)
	case req.Baseline:
		return c.cache.BaselineServe(ctx, req.Prompt)
	case req.Parsed != nil:
		return c.cache.ServeParsed(ctx, req.Parsed, opts)
	default:
		return c.cache.Serve(ctx, req.Prompt, opts)
	}
}

// generate runs the decode phase of a request over a served result and
// assembles the Response. gen is the request's merged GenConfig (from
// Request.genConfig), already used for admission.
func (c *Client) generate(ctx context.Context, res *core.ServeResult, req Request, gen GenConfig) (*Response, error) {
	resp := &Response{
		CachedTokens: res.CachedTokens,
		NewTokens:    res.NewTokens,
		Modules:      res.Modules,
		Scaffolds:    res.Scaffolds,
		Logits:       res.Logits,
	}
	if req.PrefillOnly {
		return resp, nil
	}
	opts := gen.generateOpts()
	var (
		ids []int
		err error
	)
	if req.Stream != nil {
		ids, err = c.cache.GenerateStream(ctx, res, opts, req.Stream)
	} else {
		ids, err = c.cache.Generate(ctx, res, opts)
	}
	if err != nil {
		return nil, err
	}
	resp.Tokens = ids
	resp.Text = c.cache.Tokenizer().Decode(ids)
	return resp, nil
}
