package promptcache

import (
	"repro/internal/core"
	"repro/internal/evict"
	"repro/internal/memory"
	"repro/internal/tensor"
)

// Option configures the engine behind a Client. It is an alias of the
// engine's option type, so the constructors below compose freely with
// advanced core options for callers inside this module, while external
// callers never need to import internal packages.
type Option = core.Option

// WithInt8Modules stores module states quantized to int8 with per-row
// scales: ~3.8× less storage and copy volume, at a bounded
// reconstruction error paid on each use.
func WithInt8Modules() Option { return core.WithInt8Modules() }

// Codec selects the disk tier's storage precision: CodecFP32 is the
// bit-exact passthrough for deployments that cannot tolerate
// quantization error, CodecInt8 (~3.9× smaller) and CodecInt4 (~7×)
// trade bounded reconstruction error for blob size.
type Codec = core.Codec

// The available disk-tier codecs.
const (
	CodecFP32 = core.CodecFP32
	CodecInt8 = core.CodecInt8
	CodecInt4 = core.CodecInt4
)

// ParseCodec maps a codec name ("fp32", "int8", "int4") to its Codec —
// the form configuration flags arrive in.
func ParseCodec(s string) (Codec, error) { return core.ParseCodec(s) }

// WithDiskTier adds a durable disk tier below the memory tiers: a module
// whose eviction would otherwise drop its states spills them to a
// content-addressed file under dir, quantized per codec, and the next
// request that needs it reads the file back and promotes it — a disk hit
// instead of a re-encode. The same dir holds SaveAll/Open warm-restart
// snapshots.
func WithDiskTier(dir string, codec Codec) Option { return core.WithDiskTier(dir, codec) }

// WithDeviceCapacity caps the primary (GPU-modelled) module pool at
// capacity bytes, enabling eviction when schemas outgrow it.
func WithDeviceCapacity(capacity int64) Option {
	return core.WithPool(memory.NewPool(memory.Device{Name: "device", Kind: memory.HBM, Capacity: capacity}))
}

// WithHostTier enables two-tier storage (§4.1): modules evicted from the
// primary pool demote into a host pool with their states intact and
// promote back on reuse without re-encoding. capacity 0 models unbounded
// host DRAM.
func WithHostTier(capacity int64) Option {
	return core.WithHostPool(memory.NewPool(memory.Device{Name: "host", Kind: memory.DRAM, Capacity: capacity}))
}

// WithEvictionPolicy selects the cache-replacement policy by name:
// "lru", "fifo", "lfu" or "gdsf".
func WithEvictionPolicy(name string) (Option, error) {
	p, err := evict.New(name)
	if err != nil {
		return nil, err
	}
	return core.WithEvictionPolicy(p), nil
}

// MustEvictionPolicy is WithEvictionPolicy for compile-time-constant
// names: it panics on an unknown name instead of returning an error, so
// option lists stay literal. Use the (Option, error) form for names that
// arrive at runtime (flags, config files).
func MustEvictionPolicy(name string) Option {
	opt, err := WithEvictionPolicy(name)
	if err != nil {
		panic(err)
	}
	return opt
}

// WithBackend selects the tensor kernel backend by name: "scalar" (the
// single-threaded reference), "parallel" (goroutine-tiled across cores),
// or ""/"auto" to re-run the hardware-based default (which also honors
// the PC_BACKEND environment variable). All backends are bit-identical —
// the choice affects latency and core utilization, never outputs — so it
// is safe to vary per deployment without invalidating cached modules.
func WithBackend(name string) (Option, error) {
	b, err := tensor.Select(name)
	if err != nil {
		return nil, err
	}
	return core.WithBackend(b), nil
}

// MustBackend is WithBackend for compile-time-constant names: it panics
// on an unknown name instead of returning an error. Use the
// (Option, error) form for names that arrive at runtime.
func MustBackend(name string) Option {
	opt, err := WithBackend(name)
	if err != nil {
		panic(err)
	}
	return opt
}

// Backends lists the selectable backend names for WithBackend.
func Backends() []string { return tensor.Backends() }

// DefaultMaxDecodeBatch is the fused-step width used when
// WithDecodeScheduler is given a non-positive bound.
const DefaultMaxDecodeBatch = core.DefaultMaxDecodeBatch

// MiningOpts configures automatic module mining (WithModuleMining). The
// zero value of each field selects a sensible default; the knobs are the
// promotion threshold (MinHits), the minimum prefix worth caching
// (MinTokens), the mined-module budget (MaxModules) and the reuse-score
// decay rate (HalfLife, in observed serves).
type MiningOpts = core.MiningOpts

// WithModuleMining enables automatic module mining: the engine observes
// the uncached token stream of every cached request in a radix tree, and
// prefixes hot enough to clear the thresholds are promoted to anonymous
// modules — cached, pinned, evicted, disk-spilled and warm-restarted
// exactly like explicit PML modules — so later requests sharing the
// prefix splice its states instead of re-prefilling. Splices are
// bit-exact: a mined hit changes latency, never output.
func WithModuleMining(opts MiningOpts) Option { return core.WithModuleMining(opts) }

// SLOClass classifies a request's latency objective — SLOInteractive
// (the default) or SLOBatch — steering both admission-queue and
// decode-scheduler priority. An alias of the engine's type, like Option.
type SLOClass = core.SLOClass

// The SLO classes: interactive traffic is admitted and scheduled ahead
// of batch backfill.
const (
	SLOInteractive = core.SLOInteractive
	SLOBatch       = core.SLOBatch
)

// ParseSLOClass maps a wire name ("interactive", "batch", or "" for the
// interactive default) to its SLOClass.
func ParseSLOClass(s string) (SLOClass, error) { return core.ParseSLOClass(s) }

// AdmissionConfig bounds concurrent serving for WithAdmission: slot
// count, queue depth, and optional per-class deadlines.
type AdmissionConfig = core.AdmissionConfig

// Default admission bounds used when AdmissionConfig fields are
// non-positive.
const (
	DefaultAdmitConcurrent = core.DefaultAdmitConcurrent
	DefaultAdmitQueue      = core.DefaultAdmitQueue
)

// WithAdmission enables SLO-aware admission control: at most
// cfg.MaxConcurrent requests serve at once, cfg.MaxQueue more wait
// (interactive ahead of batch), and arrivals beyond both are shed
// immediately with ErrOverloaded carrying a Retry-After estimate —
// graceful load shedding instead of collapse. Per-class deadlines, when
// set, bound each request end to end; expiry surfaces as ErrDeadline.
func WithAdmission(cfg AdmissionConfig) Option { return core.WithAdmission(cfg) }

// WithDecodeScheduler enables continuous-batching decode: concurrent
// generations through this Client — Infer, Session.Send, streaming
// requests, batch members — fuse into shared model steps, so N active
// replies cost one layer walk per token instead of N. maxBatch bounds
// how many sequences one fused step carries (non-positive selects
// DefaultMaxDecodeBatch); excess requests queue and join as lanes
// retire. Each request's token stream is bit-identical to what it would
// produce decoding solo: same sampler state, same logits.
func WithDecodeScheduler(maxBatch int) Option { return core.WithDecodeScheduler(maxBatch) }

// DraftOpts configures the speculative-decoding draft source
// (WithSpeculation): n-gram context length, draft budget per step, the
// hit threshold a transition must clear before being proposed, and the
// decay half-life that ages stale transitions out. The zero value of
// each field selects a sensible default. An alias of the engine's type,
// like MiningOpts.
type DraftOpts = core.DraftOpts

// WithSpeculation enables draft-and-verify speculative decoding through
// the module cache: retired generations train a per-serving-class n-gram
// draft source (the same radix-flavored machinery module mining uses),
// and each decode lane verifies the draft's proposed tokens in one
// widened fused step, accepting exactly the prefix solo decode would
// have produced. Output is bit-identical with or without it — same
// tokens, same logits — only tokens-per-step changes. Takes effect
// together with WithDecodeScheduler; per-request policy rides
// GenConfig.Speculation.
func WithSpeculation(opts DraftOpts) Option { return core.WithSpeculation(opts) }
