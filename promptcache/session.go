package promptcache

import (
	"context"
	"sync"

	"repro/internal/core"
)

// Session owns the KV state of one multi-turn conversation: the served
// prompt's attention states plus every later turn's and reply's. It
// composes Prompt Cache's prefill reuse with the standard decode-phase
// reuse (§2.2) — follow-up turns pay prefill only for their own text.
// A Session serializes its own turns; use one Session per conversation.
type Session struct {
	client *Client
	// defaults carry the merged GenConfig turns inherit from the
	// creating request.
	defaults Request

	mu     sync.Mutex
	res    *core.ServeResult
	turns  int
	closed bool
}

// NewSession serves req's prompt, generates the first reply, and returns
// the session holding the conversation's KV state alongside that first
// Response. The request's generation settings (MaxTokens, Sampler,
// StopToken) become the session's defaults for later Send calls;
// per-turn fields — the prompt itself, Stream, PrefillOnly — do not
// carry over. PrefillOnly is honored for the first reply: the session
// starts with served state but no generated text.
func (c *Client) NewSession(ctx context.Context, req Request) (*Session, *Response, error) {
	if err := req.validate(); err != nil {
		return nil, nil, err
	}
	// The admission slot covers serve plus the first reply; each later
	// Send admits its own turn. An idle session holds KV state but no
	// slot, so parked conversations don't starve admission.
	gen := req.genConfig()
	ctx, done, err := c.admit(ctx, gen.SLO)
	if err != nil {
		return nil, nil, err
	}
	defer done()
	res, err := c.serve(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.generate(ctx, res, req, gen)
	if err != nil {
		res.Close()
		return nil, nil, err
	}
	// Only generation settings persist: a Stream sink belongs to the
	// turn that supplied it, not to every future turn. The SLO class
	// persists too — a batch conversation stays batch. The merged
	// GenConfig is stored, so deprecated flat fields on the creating
	// request carry over exactly as explicit Gen fields would.
	return &Session{client: c, defaults: Request{Gen: gen}, res: res}, resp, nil
}

// Send appends a user turn to the session and generates the reply with
// the session's default settings. A failed turn — including ctx
// cancellation mid-prefill or mid-decode — leaves no trace: the
// session's KV state is rolled back to the start of the call, so the
// session stays usable and the failed turn never conditions later ones.
func (s *Session) Send(ctx context.Context, text string) (*Response, error) {
	return s.SendOpts(ctx, text, s.defaults)
}

// SendOpts is Send with per-turn generation settings (MaxTokens,
// Sampler, StopToken, Stream, SLO); prompt-selection fields of req are
// ignored — the session already owns its served state. Each turn
// admits independently: under overload a turn can shed with
// ErrOverloaded, leaving the session state untouched and retryable.
func (s *Session) SendOpts(ctx context.Context, text string, req Request) (*Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	gen := req.genConfig()
	ctx, done, err := s.client.admit(ctx, gen.SLO)
	if err != nil {
		return nil, err
	}
	defer done()
	prev := s.res
	mark := prev.KV.Len()
	res, err := s.client.cache.Continue(ctx, s.res, text)
	if err != nil {
		// Continue already rolled the KV back to mark.
		return nil, err
	}
	// Continue extends s.res.KV in place; adopt the new logits/counters.
	s.res = res
	req.PrefillOnly = false
	resp, err := s.client.generate(ctx, res, req, gen)
	if err != nil {
		// Drop the prefilled user text and any partially decoded reply:
		// an aborted turn must not leave invisible tokens in the history.
		res.KV.Truncate(mark)
		s.res = prev
		return nil, err
	}
	s.turns++
	return resp, nil
}

// Turns reports how many Send calls completed successfully.
func (s *Session) Turns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.turns
}

// CachedTokens reports the KV rows currently held by the session.
func (s *Session) CachedTokens() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.res == nil || s.res.KV == nil {
		return 0
	}
	return s.res.KV.Len()
}

// Materialize copies the session's KV state into flat, owned storage and
// releases the module pins the session's views held. The session keeps
// working — Sends append to the owned copy — but the modules it was
// serving from become evictable immediately instead of at Close. Call it
// on sessions expected to idle for a long time under memory pressure;
// it costs the O(prefix) copy zero-copy serving avoided.
func (s *Session) Materialize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.res.Materialize()
	return nil
}

// Close releases the session's KV state and the module pins backing its
// views, making those modules evictable again. Further Sends fail with
// ErrSessionClosed. Closing twice is an error.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.closed = true
	s.res.Close()
	s.res = nil
	return nil
}
