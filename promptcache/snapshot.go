package promptcache

import (
	"time"

	"repro/internal/core"
	"repro/internal/hw"
)

// StatsAPIVersion is the schema version of the Snapshot document.
// Dashboards check it before keying on field names; it bumps only on a
// breaking change (rename, removal, type change), never for additive
// fields.
const StatsAPIVersion = 1

// Snapshot is the one consolidated observability document: cache
// counters, tier occupancy, backend identity, and — when the matching
// subsystem is enabled — mining, admission, scheduler and speculation
// blocks. Client.Snapshot assembles it and /v1/stats serializes it
// directly, so its JSON tags ARE the monitoring contract (pinned by the
// server's stats-contract golden test). The per-subsystem accessors
// (Stats, SchedulerStats, MiningStatsSnapshot, AdmissionStats,
// SpecStats) remain as thin views for callers that want one slice.
type Snapshot struct {
	APIVersion int `json:"api_version"`

	ModulesEncoded  int `json:"modules_encoded"`
	ModulesReused   int `json:"modules_reused"`
	ModulesEvicted  int `json:"modules_evicted"`
	ModulesReloaded int `json:"modules_reloaded"`
	TokensEncoded   int `json:"tokens_encoded"`
	TokensReused    int `json:"tokens_reused"`

	PoolBytes int64 `json:"pool_bytes"`
	// OpenSessions is transport state: a Client has no sessions registry,
	// so it is always 0 in Client.Snapshot and filled in by the serving
	// layer (internal/server) before serialization.
	OpenSessions int `json:"open_sessions"`

	Tiers   TierSnapshot    `json:"tiers"`
	Backend BackendSnapshot `json:"backend"`

	// Optional blocks, present exactly when their subsystem is enabled.
	Mining      *MiningSnapshot    `json:"mining,omitempty"`
	Admission   *AdmissionSnapshot `json:"admission,omitempty"`
	Scheduler   *SchedulerSnapshot `json:"scheduler,omitempty"`
	Speculation *SpecStats         `json:"speculation,omitempty"`
}

// TierSnapshot is storage-tier accounting: occupancy per tier plus the
// traffic between tiers (demotion/promotion for host, spill/hit for
// disk). TierAccountErrors nonzero means a pool release failed and an
// occupancy number can no longer be trusted.
type TierSnapshot struct {
	DeviceBytes       int64 `json:"device_bytes"`
	HostBytes         int64 `json:"host_bytes"`
	DiskBytes         int64 `json:"disk_bytes"`
	DiskModules       int   `json:"disk_modules"`
	ModulesDemoted    int   `json:"modules_demoted"`
	ModulesPromoted   int   `json:"modules_promoted"`
	ModulesSpilled    int   `json:"modules_spilled"`
	DiskHits          int   `json:"disk_hits"`
	DiskLoadErrors    int   `json:"disk_load_errors"`
	DiskRetries       int   `json:"disk_retries"`
	TierAccountErrors int   `json:"tier_account_errors"`
}

// BackendSnapshot identifies the kernel backend forward passes run on
// and what the runtime detected about the host. Backends are
// bit-identical, so this block explains latency numbers, never outputs.
type BackendSnapshot struct {
	Name     string `json:"name"`
	Workers  int    `json:"workers"`
	CPUArch  string `json:"cpu_arch"`
	CPUCores int    `json:"cpu_cores"`
	MaxProcs int    `json:"max_procs"`
	Vector   string `json:"vector"`
}

// MiningSnapshot is the module-mining block: the observer tree's size,
// prefixes past threshold but unpromoted, the mined-module inventory,
// and the prefill tokens mined hits actually saved.
type MiningSnapshot struct {
	Observed        uint64 `json:"observed"`
	Classes         int    `json:"classes"`
	Nodes           int    `json:"nodes"`
	Candidates      int    `json:"candidates"`
	LiveModules     int    `json:"live_modules"`
	Promotions      int    `json:"promotions"`
	Demotions       int    `json:"demotions"`
	Hits            int    `json:"hits"`
	HitTokensSaved  int    `json:"hit_tokens_saved"`
	SnapshotSkipped int    `json:"snapshot_skipped"`
}

// AdmissionSnapshot is the admission-control block: configured bounds,
// live occupancy, per-class admit/shed/cancel accounting, and the
// Retry-After a shed request would be told right now.
type AdmissionSnapshot struct {
	MaxConcurrent int                    `json:"max_concurrent"`
	MaxQueue      int                    `json:"max_queue"`
	Inflight      int                    `json:"inflight"`
	QueueDepth    int                    `json:"queue_depth"`
	RetryAfterMs  float64                `json:"retry_after_ms"`
	Interactive   AdmissionClassSnapshot `json:"interactive"`
	Batch         AdmissionClassSnapshot `json:"batch"`
}

// AdmissionClassSnapshot is one SLO class's slice of admission activity.
type AdmissionClassSnapshot struct {
	Admitted   int64 `json:"admitted"`
	Shed       int64 `json:"shed"`
	Canceled   int64 `json:"canceled"`
	Completed  int64 `json:"completed"`
	QueueDepth int   `json:"queue_depth"`
}

// SchedulerSnapshot is the decode-scheduler block: whether mixed traffic
// is actually fusing (BatchHist beyond index 0), how deep the join queue
// runs, and decode-phase throughput.
type SchedulerSnapshot struct {
	MaxBatch       int     `json:"max_batch"`
	QueueDepth     int     `json:"queue_depth"`
	ActiveLanes    int     `json:"active_lanes"`
	LanesJoined    int64   `json:"lanes_joined"`
	LanesRetired   int64   `json:"lanes_retired"`
	LanesCancelled int64   `json:"lanes_cancelled"`
	FusedSteps     int64   `json:"fused_steps"`
	TokensDecoded  int64   `json:"tokens_decoded"`
	BatchHist      []int64 `json:"batch_hist"`
	TokensPerSec   float64 `json:"tokens_per_sec"`
}

// Snapshot assembles the consolidated stats document from every
// subsystem in one call. OpenSessions is left 0 for the transport to
// fill (a Client holds no sessions registry).
func (c *Client) Snapshot() Snapshot {
	st := c.cache.Stats()
	eng := c.cache
	cpu := hw.DetectCPU()
	bk := c.Model().Backend()
	snap := Snapshot{
		APIVersion:      StatsAPIVersion,
		ModulesEncoded:  st.ModulesEncoded,
		ModulesReused:   st.ModulesReused,
		ModulesEvicted:  st.ModulesEvicted,
		ModulesReloaded: st.ModulesReloaded,
		TokensEncoded:   st.TokensEncoded,
		TokensReused:    st.TokensReused,
		PoolBytes:       eng.PoolUsed(),
		Tiers: TierSnapshot{
			DeviceBytes:       eng.PoolUsed(),
			HostBytes:         eng.HostUsed(),
			DiskBytes:         eng.DiskUsed(),
			DiskModules:       eng.DiskModules(),
			ModulesDemoted:    st.ModulesDemoted,
			ModulesPromoted:   st.ModulesPromoted,
			ModulesSpilled:    st.ModulesSpilled,
			DiskHits:          st.DiskHits,
			DiskLoadErrors:    st.DiskLoadErrors,
			DiskRetries:       st.DiskRetries,
			TierAccountErrors: st.TierAccountErrors,
		},
		Backend: BackendSnapshot{
			Name:     bk.Name(),
			Workers:  bk.Workers(),
			CPUArch:  cpu.Arch,
			CPUCores: cpu.Cores,
			MaxProcs: cpu.MaxProcs,
			Vector:   cpu.Vector,
		},
	}
	if ms := c.cache.MiningStats(); ms.Enabled {
		snap.Mining = &MiningSnapshot{
			Observed:        ms.Observed,
			Classes:         ms.Classes,
			Nodes:           ms.Nodes,
			Candidates:      ms.Candidates,
			LiveModules:     ms.LiveModules,
			Promotions:      ms.Promotions,
			Demotions:       ms.Demotions,
			Hits:            ms.Hits,
			HitTokensSaved:  ms.HitTokens,
			SnapshotSkipped: ms.SnapshotSkipped,
		}
	}
	if as := c.cache.AdmissionStats(); as.Enabled {
		snap.Admission = &AdmissionSnapshot{
			MaxConcurrent: as.MaxConcurrent,
			MaxQueue:      as.MaxQueue,
			Inflight:      as.Inflight,
			QueueDepth:    as.QueueDepth,
			RetryAfterMs:  float64(as.RetryAfterEstimate) / float64(time.Millisecond),
			Interactive:   admissionClassSnapshot(as.Interactive),
			Batch:         admissionClassSnapshot(as.Batch),
		}
	}
	if ss := c.cache.SchedStats(); ss.Enabled {
		snap.Scheduler = &SchedulerSnapshot{
			MaxBatch:       ss.MaxBatch,
			QueueDepth:     ss.QueueDepth,
			ActiveLanes:    ss.ActiveLanes,
			LanesJoined:    ss.LanesJoined,
			LanesRetired:   ss.LanesRetired,
			LanesCancelled: ss.LanesCancelled,
			FusedSteps:     ss.Steps,
			TokensDecoded:  ss.TokensDecoded,
			BatchHist:      ss.BatchHist,
			TokensPerSec:   ss.TokensPerSec(),
		}
	}
	if c.cache.SpecEnabled() {
		sp := c.cache.SpecStats()
		snap.Speculation = &sp
	}
	return snap
}

func admissionClassSnapshot(cs core.AdmissionClassStats) AdmissionClassSnapshot {
	return AdmissionClassSnapshot{
		Admitted:   cs.Admitted,
		Shed:       cs.Shed,
		Canceled:   cs.Canceled,
		Completed:  cs.Completed,
		QueueDepth: cs.QueueDepth,
	}
}
