package promptcache

import "repro/internal/model"

// SpecConfig is the per-request speculative-decoding surface inside
// GenConfig.
type SpecConfig struct {
	// Enabled is tri-state: nil defers to the serving side (speculate
	// exactly when the engine was built WithSpeculation), false opts this
	// generation out, true requests speculation (still inert without a
	// draft source). The pointer keeps "unset" distinct from "off" across
	// JSON round trips.
	Enabled *bool `json:"enabled,omitempty"`
	// MaxDraft bounds draft tokens verified per fused step (default 4).
	// Output never depends on it — larger drafts trade wasted verify
	// width for more tokens per step when the draft source is right.
	MaxDraft int `json:"max_draft,omitempty"`
}

// GenConfig is the single generation-options surface: every entry point
// that decodes — Request (Client.Infer), Session.Send, BatchRequest, and
// all three server JSON shapes — accepts the same knobs through this one
// struct, so a setting like speculation lands once and flows everywhere.
// The zero value means "all defaults": 32 tokens, greedy sampling, EOS
// stop, interactive SLO, speculation deferred to the engine.
//
// JSON tags make GenConfig directly embeddable in wire shapes; Sampler
// is process-local state and never crosses the wire.
type GenConfig struct {
	// MaxTokens bounds generation (default 32).
	MaxTokens int `json:"max_tokens,omitempty"`
	// Sampler selects next tokens (default greedy, as in the paper §5.3).
	Sampler Sampler `json:"-"`
	// StopToken ends generation when sampled (default EOS).
	StopToken int `json:"stop_token,omitempty"`
	// SLO classifies the request's latency objective: SLOInteractive
	// (the zero value) is admitted and decode-scheduled ahead of
	// SLOBatch backfill. On the wire it is the class name ("interactive",
	// "batch"; "" means interactive).
	SLO SLOClass `json:"slo,omitempty"`
	// Speculation carries the draft-and-verify controls.
	Speculation SpecConfig `json:"speculation,omitzero"`
}

// generateOpts is the one conversion from the public generation surface
// to the model's decode options — the single place request knobs map to
// engine knobs.
func (g GenConfig) generateOpts() model.GenerateOpts {
	o := model.GenerateOpts{
		MaxTokens: g.MaxTokens,
		Sampler:   g.Sampler,
		StopToken: g.StopToken,
	}
	switch {
	case g.Speculation.Enabled == nil:
		o.Speculation.Policy = model.SpecAuto
	case *g.Speculation.Enabled:
		o.Speculation.Policy = model.SpecOn
	default:
		o.Speculation.Policy = model.SpecOff
	}
	o.Speculation.MaxDraft = g.Speculation.MaxDraft
	return o
}

// withFallback back-fills zero fields of g from the deprecated flat
// aliases, so pre-GenConfig callers behave exactly as before. Explicit
// Gen fields win.
func (g GenConfig) withFallback(maxTokens int, sampler Sampler, stopToken int, slo SLOClass) GenConfig {
	if g.MaxTokens == 0 {
		g.MaxTokens = maxTokens
	}
	if g.Sampler == nil {
		g.Sampler = sampler
	}
	if g.StopToken == 0 {
		g.StopToken = stopToken
	}
	if g.SLO == SLOInteractive {
		g.SLO = slo
	}
	return g
}
