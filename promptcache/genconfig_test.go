package promptcache

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// TestDeprecatedFlatFieldsEquivalent is the migration contract: a
// Request using the deprecated flat fields and one using Gen must
// produce identical responses, and when both are set Gen wins.
func TestDeprecatedFlatFieldsEquivalent(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	prompt := `<prompt schema="travel"><miami/><user>Plan a beach day.</user></prompt>`

	flat, err := c.Infer(ctx, Request{Prompt: prompt, MaxTokens: 8, StopToken: -1})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := c.Infer(ctx, Request{Prompt: prompt, Gen: GenConfig{MaxTokens: 8, StopToken: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Text != gen.Text || !reflect.DeepEqual(flat.Tokens, gen.Tokens) {
		t.Fatalf("flat fields and Gen diverge:\nflat %v %q\ngen  %v %q", flat.Tokens, flat.Text, gen.Tokens, gen.Text)
	}

	// Gen wins over a conflicting flat field.
	short, err := c.Infer(ctx, Request{
		Prompt:    prompt,
		MaxTokens: 8, // ignored: Gen.MaxTokens is set
		StopToken: -1,
		Gen:       GenConfig{MaxTokens: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Tokens) != 3 {
		t.Fatalf("Gen.MaxTokens did not win: %d tokens, want 3", len(short.Tokens))
	}

	// Gen zero fields fall back to the flat alias: StopToken -1 above
	// came from the flat field while MaxTokens came from Gen.
	if short.Tokens[len(short.Tokens)-1] == 0 {
		t.Fatalf("flat StopToken=-1 fallback lost: %v", short.Tokens)
	}
}

// TestDeprecatedBatchFlatFieldsEquivalent covers the same contract on
// the batch entry point.
func TestDeprecatedBatchFlatFieldsEquivalent(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	prompts := []string{
		`<prompt schema="travel"><miami/><user>Beach day.</user></prompt>`,
		`<prompt schema="travel"><tokyo/><user>Temple walk.</user></prompt>`,
	}
	flat, err := c.InferBatch(ctx, BatchRequest{Prompts: prompts, MaxTokens: 6})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := c.InferBatch(ctx, BatchRequest{Prompts: prompts, Gen: GenConfig{MaxTokens: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Results) != len(gen.Results) {
		t.Fatalf("response counts diverge: %d vs %d", len(flat.Results), len(gen.Results))
	}
	for i := range flat.Results {
		if flat.Results[i].Text != gen.Results[i].Text {
			t.Fatalf("batch %d diverges: %q vs %q", i, flat.Results[i].Text, gen.Results[i].Text)
		}
	}
}

// TestSessionGenConfig: sessions built from a Gen-style request keep the
// config as their per-turn default.
func TestSessionGenConfig(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	s, _, err := c.NewSession(ctx, Request{
		Prompt: `<prompt schema="travel"><tokyo/><user>hello</user></prompt>`,
		Gen:    GenConfig{MaxTokens: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := s.Send(ctx, "tell me more")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tokens) > 5 {
		t.Fatalf("session default MaxTokens ignored: %d tokens", len(resp.Tokens))
	}
}

func TestGenConfigJSONRoundTrip(t *testing.T) {
	on := true
	in := GenConfig{
		MaxTokens: 12,
		StopToken: -1,
		SLO:       SLOBatch,
		Speculation: SpecConfig{
			Enabled:  &on,
			MaxDraft: 6,
		},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out GenConfig
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.MaxTokens != 12 || out.StopToken != -1 || out.SLO != SLOBatch {
		t.Fatalf("round trip lost fields: %+v", out)
	}
	if out.Speculation.Enabled == nil || !*out.Speculation.Enabled || out.Speculation.MaxDraft != 6 {
		t.Fatalf("speculation lost: %+v", out.Speculation)
	}

	// Tri-state: absent "enabled" stays nil, explicit false stays false.
	var unset GenConfig
	if err := json.Unmarshal([]byte(`{"speculation":{"max_draft":2}}`), &unset); err != nil {
		t.Fatal(err)
	}
	if unset.Speculation.Enabled != nil {
		t.Fatalf("absent enabled decoded as %v, want nil", *unset.Speculation.Enabled)
	}
	var off GenConfig
	if err := json.Unmarshal([]byte(`{"speculation":{"enabled":false}}`), &off); err != nil {
		t.Fatal(err)
	}
	if off.Speculation.Enabled == nil || *off.Speculation.Enabled {
		t.Fatal("explicit enabled:false did not survive")
	}

	// The zero config marshals to an empty object: nothing spurious ever
	// reaches the wire from defaulted requests.
	zero, err := json.Marshal(GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if string(zero) != "{}" {
		t.Fatalf("zero GenConfig marshals to %s", zero)
	}

	// SLO wire names round-trip through the SLOClass JSON methods.
	raw, err = json.Marshal(GenConfig{SLO: SLOBatch})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"slo":"batch"}` {
		t.Fatalf("SLO marshals to %s", raw)
	}
	var slo GenConfig
	if err := json.Unmarshal([]byte(`{"slo":"interactive"}`), &slo); err != nil {
		t.Fatal(err)
	}
	if slo.SLO != SLOInteractive {
		t.Fatalf("slo round trip: %v", slo.SLO)
	}
	if err := json.Unmarshal([]byte(`{"slo":"bulk"}`), &slo); err == nil {
		t.Fatal("invalid SLO name decoded silently")
	}
}

// TestSnapshotShape: the consolidated Snapshot carries the version tag
// and the per-subsystem blocks exactly when their subsystem is on.
func TestSnapshotShape(t *testing.T) {
	c := newClient(t)
	snap := c.Snapshot()
	if snap.APIVersion != StatsAPIVersion {
		t.Fatalf("APIVersion = %d, want %d", snap.APIVersion, StatsAPIVersion)
	}
	if snap.Mining != nil || snap.Speculation != nil || snap.Admission != nil || snap.Scheduler != nil {
		t.Fatalf("optional blocks present without their subsystems: %+v", snap)
	}
	if _, err := c.Infer(context.Background(), Request{
		Prompt: `<prompt schema="travel"><miami/><user>hi</user></prompt>`,
		Gen:    GenConfig{MaxTokens: 2},
	}); err != nil {
		t.Fatal(err)
	}
	snap = c.Snapshot()
	if snap.ModulesReused == 0 || snap.TokensReused == 0 {
		t.Fatalf("counters did not move: %+v", snap)
	}
	// Deprecated accessors remain thin views over the same counters.
	if st := c.Stats(); st.ModulesReused != snap.ModulesReused || st.TokensReused != snap.TokensReused {
		t.Fatalf("Stats() diverges from Snapshot(): %+v vs %+v", st, snap)
	}
}
