// Package repro is a from-scratch Go reproduction of "Prompt Cache:
// Modular Attention Reuse for Low-Latency Inference" (Gim et al., MLSys
// 2024).
//
// The public serving API is the promptcache package: a context-aware
// Client with one inference entrypoint (Infer), multi-turn Sessions,
// batching, streaming, and a typed error taxonomy. Everything else is
// internal machinery behind it.
//
// # Zero-copy serving
//
// Cached serves never copy module K/V rows. A serve stitches a
// kvcache.Seq — immutable segment views into the pinned modules' own
// buffers (excluded parameter slots become segment splits) plus a
// private tail for the request's prefill and decode tokens — and the
// model's attention loops walk those segments in place. Per-request
// cached-prefix assembly is O(#segments) stitching instead of an
// O(prefix × layers × width) memcpy: what remains is the suffix's own
// attention over the cached rows (linear in prefix, tiny constant, vs
// the baseline's quadratic full prefill), and allocations per cached
// serve are suffix-sized, independent of prefix length
// (BenchmarkServeCachedPrefix asserts both; `pcbench -json
// BENCH_serve.json serve` tracks the trajectory).
//
// Views change pin lifetimes: a module stays pinned — immune to
// eviction — until every result viewing it closes. Infer closes its
// result after generation; a Session holds its pins until Close;
// Materialize converts a result or session to owned flat storage and
// releases the pins early (do this before snapshotting a result or
// parking a session long-term under memory pressure).
//
// # Continuous-batching decode
//
// With promptcache.WithDecodeScheduler, the decode phase is fused
// across requests: every concurrent generation joins a token scheduler
// as a lane after its prefill, and each scheduler iteration samples all
// lanes (per-request samplers and stop conditions), retires finished or
// cancelled lanes, admits waiting ones, and runs ONE batched model step
// (model.DecodeStepBatch) for the survivors — a single layer walk and a
// batched output head per token for the whole batch, instead of one per
// request. A request's token and logit streams are bit-identical to
// solo decoding; the scheduler changes throughput, never output.
// /v1/stats (and core.Cache.SchedStats) expose queue depth, active
// lanes, the batch-size histogram and decode tokens/sec;
// BenchmarkDecodeContinuous and `pcbench -json BENCH_decode.json
// decode` track fused-vs-sequential throughput.
//
// # Speculative decoding
//
// With promptcache.WithSpeculation (requires the decode scheduler), the
// fused decode step widens: a back-off n-gram draft source — the same
// radix-structure family as module mining, trained on the token streams
// decode actually produced per serving class, no second model — proposes
// up to MaxDraft tokens per lane, and ONE batched verify step
// (model.DecodeStepBatchMulti) scores every proposed position. Each lane
// accepts exactly the longest proposal prefix matching what solo decode
// would have sampled, falls back to the verified next token on
// rejection, and truncates unverified KV rows — so output is
// bit-identical to non-speculative decode by construction, and a cold or
// wrong draft costs verify width, never a token. Requests opt in or out
// per call via promptcache.GenConfig.Speculation; `pcserve -speculate`
// wires it into the server (the /v1/stats "speculation" block tracks
// acceptance), and `pcbench -json BENCH_spec.json speculate` tracks
// tokens-per-step and throughput against solo decode on LongBench
// replays.
//
// # Generation options
//
// promptcache.GenConfig is the single generation-options surface —
// max tokens, sampler, stop conditions, SLO class, speculation — shared
// by Request, Session defaults, BatchRequest and the HTTP request
// shapes, which embed it so the wire keys (max_tokens, slo, speculation)
// are the same everywhere. The older flat Request fields survive as
// deprecated aliases that apply only when the GenConfig field is zero.
//
// # Storage tiers & persistence
//
// Module states live in a three-level hierarchy — device pool
// (WithDeviceCapacity), host pool (WithHostTier), and a durable disk
// tier (WithDiskTier) — each larger, slower and cheaper than the one
// above, and every level cheaper than re-encoding. Eviction demotes
// device→host; when the host tier is absent or full the module spills
// to a content-addressed file instead of dropping, quantized per the
// tier's codec (CodecFP32 bit-exact, CodecInt8 ~3.9× smaller, CodecInt4
// ~7×). The next serve reads the blob back outside the engine lock and
// promotes it like any host-tier hit: no capacity error, no re-encode.
// /v1/stats exposes per-tier occupancy and movement counters.
//
// The same blob store backs warm restarts: Client.SaveAll(dir) persists
// every registered schema (PML source, module and scaffold states, the
// tokenizer's learned vocabulary) and promptcache.Open(m, dir) restores
// it all with zero prompt encoding — modules come back disk-resident
// and promote lazily, so a restarted server's first cached request is a
// cache hit. `pcserve -cache-dir` wires the loop end to end (SIGTERM
// snapshots, next boot warm-restores). Snapshots validate model shape,
// module rosters and token counts before restoring, and corrupt blobs
// degrade to a transparent re-encode, never a crash.
//
// # Automatic module mining
//
// With promptcache.WithModuleMining the module inventory grows beyond
// what schemas declare: a radix tree observes the uncached token stream
// of every cached serve and promotes hot shared prefixes (undeclared
// system prompts, RAG boilerplate, few-shot headers) to anonymous mined
// modules. Mined and explicit modules coexist in one inventory — the
// same pinning, eviction, host demotion, disk spill and warm-restart
// paths — and a request whose suffix opens with a mined prefix splices
// its states zero-copy, bit-identically to serving cold: prefixes are
// scoped to a serving class (schema + imports + exclusions, i.e. one
// attention context) and mined states stay fp32 end to end. `pcserve
// -mine` wires it into the server (the /v1/stats "mining" block tracks
// promotions, demotions and tokens saved); `pctrace -mine` replays
// recorded traces offline to size the win first.
//
// # Static analysis
//
// The invariants above are machine-checked: cmd/pclint (driver in
// internal/lint, stdlib go/types only) runs five repo-specific
// analyzers as a hard CI gate — lockscope (nothing heavy under an
// engine mutex), pinbalance (pins released on every error path),
// maporder (no map-iteration nondeterminism on token/snapshot paths),
// ctxplumb (entry points accept and forward context), and errtaxonomy
// (engine errors wrap the typed taxonomy the HTTP layer maps with
// errors.Is). Deliberate exceptions carry an inline
// "//pclint:ignore <analyzer> <reason>" directive; the reason is
// mandatory and malformed directives are themselves diagnostics. See
// the "Static analysis" section of README.md.
//
// # Concurrency
//
// Serving is parallel: the engine lock guards only metadata (schema
// registry, module residency, eviction, stats), while prefills,
// view stitching and decoding run outside it. A serve pins the encoded
// modules it reads, making them immune to eviction while their states
// are viewed; batch requests fan out over a bounded worker pool sharing
// one paged block pool, and their results view the pool's blocks rather
// than module memory. Schema registration and prefetch encode under the
// lock — the deliberate one-time cost — so serves that start
// mid-registration wait for it, while serves already prefilling are
// unaffected. See the "Concurrency" section of README.md for the full
// contract.
//
// The library implements the paper's full stack: a transformer inference
// engine with explicit position IDs (internal/model, internal/tensor,
// internal/kvcache), the Prompt Markup Language and its position-layout
// compiler (internal/pml), a prompt-program front end (internal/
// promptlang), the prompt cache itself — schema encoding, scaffolding,
// cached inference, LRU eviction, tiered storage and warm-restart
// snapshots (internal/core) — simulated GPU/CPU/disk memory tiers
// (internal/memory), calibrated hardware latency models
// (internal/hw), synthetic LongBench workloads (internal/longbench),
// evaluation metrics (internal/metrics), an HTTP serving layer over the
// public API (internal/server) and the experiment harness that
// regenerates every table and figure in the paper (internal/bench).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root-level benchmarks in bench_test.go regenerate each table and
// figure via `go test -bench=.`.
package repro
