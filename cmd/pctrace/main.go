// Command pctrace runs the two-tier serving simulator (§6 outlook):
// a Zipf request stream over a prompt-module universe, with a
// capacity-limited HBM tier in front of host DRAM and a pluggable
// replacement policy.
//
// With -mine the trace is also replayed through a module-mining
// observer to report the would-be win of automatic prefix promotion:
// how many requests would have spliced a mined prefix, and what token
// volume that saves. Mining needs suffix token streams in the trace —
// generate them with -shared-prefixes, or replay a recorded trace that
// carries suffix_toks.
//
// Usage:
//
//	pctrace -requests 5000 -modules 80 -hbm-gib 4 -policy gdsf
//	pctrace -compare            # all policies + reference points
//	pctrace -shared-prefixes 4 -mine   # offline mining report
//	pctrace -record t.jsonl -arrival bursty -arrival-rate 200
//	                            # trace with a replayable load schedule
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/evict"
	"repro/internal/hw"
	"repro/internal/mining"
	"repro/internal/serving"
)

func main() {
	var (
		requests = flag.Int("requests", 2000, "requests to simulate")
		modules  = flag.Int("modules", 60, "modules in the universe")
		perReq   = flag.Int("per-request", 2, "modules imported per request")
		suffix   = flag.Int("suffix", 100, "uncached suffix tokens per request")
		zipf     = flag.Float64("zipf", 1.1, "Zipf skew of module popularity")
		hbmGiB   = flag.Float64("hbm-gib", 2, "HBM capacity for module states (GiB; 0 = host-only)")
		policy   = flag.String("policy", "lru", "replacement policy: lru, fifo, lfu, gdsf")
		device   = flag.String("device", "4090", "device: 4090, a40, a100, intel, amd")
		seed     = flag.Uint64("seed", 42, "stream seed")
		compare  = flag.Bool("compare", false, "compare all policies plus reference points")
		record   = flag.String("record", "", "write the generated request trace to this JSONL file")
		replay   = flag.String("replay", "", "replay a JSONL trace instead of generating a stream")

		arrival     = flag.String("arrival", "", "stamp the recorded trace with arrival offsets: uniform, poisson or bursty (empty = none; the analytic replay ignores them, the real-server load harness paces by them)")
		arrivalRate = flag.Float64("arrival-rate", 100, "mean offered arrivals per second for -arrival")

		sharedPrefixes = flag.Int("shared-prefixes", 0, "pooled undeclared suffix prefixes in generated traces (0 = no suffix streams)")
		sharedTokens   = flag.Int("shared-prefix-tokens", 0, "tokens per pooled prefix (0 = half the suffix)")
		mine           = flag.Bool("mine", false, "replay the trace through a module-mining observer and report the would-be hit rate")
		mineMinHits    = flag.Float64("mine-min-hits", 0, "mining: observations before a prefix is promoted (0 = default)")
		mineMinTokens  = flag.Int("mine-min-tokens", 0, "mining: shortest prefix worth promoting (0 = default)")
		mineMaxMods    = flag.Int("mine-max-modules", 0, "mining: live mined-module budget (0 = default)")
		mineHalfLife   = flag.Float64("mine-half-life", 0, "mining: reuse-score half-life in observed serves (0 = default)")
	)
	flag.Parse()

	var dev *hw.Device
	switch *device {
	case "4090":
		dev = hw.RTX4090()
	case "a40":
		dev = hw.A40()
	case "a100":
		dev = hw.A100()
	case "intel":
		dev = hw.IntelI9()
	case "amd":
		dev = hw.AMDRyzen9()
	default:
		log.Fatalf("pctrace: unknown device %q", *device)
	}
	base := serving.Config{
		Device:            dev,
		Model:             hw.Llama7B(),
		Modules:           serving.DefaultUniverse(*modules, 200, 4000, *seed+1),
		Requests:          *requests,
		ModulesPerRequest: *perReq,
		SuffixTokens:      *suffix,
		ZipfS:             *zipf,
		Seed:              *seed,

		SharedPrefixes:     *sharedPrefixes,
		SharedPrefixTokens: *sharedTokens,
	}
	capacity := int64(*hbmGiB * (1 << 30))

	printStats := func(label string, st serving.Stats) {
		fmt.Printf("%-14s hit=%.3f mean=%8.1fms p50=%8.1fms p99=%8.1fms speedup=%5.1fx uploads=%.1fGiB\n",
			label, st.HitRate(),
			st.MeanTTFT.Seconds()*1e3, st.P50TTFT.Seconds()*1e3, st.P99TTFT.Seconds()*1e3,
			st.Speedup(), float64(st.BytesUploaded)/(1<<30))
	}

	if *compare {
		results, err := serving.ComparePolicies(base, capacity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device=%s hbm=%.1fGiB requests=%d zipf=%.2f\n", dev.Name, *hbmGiB, *requests, *zipf)
		for _, name := range append([]string{"unbounded-hbm"}, append(evict.Names(), "host-only")...) {
			printStats(name, results[name])
		}
		return
	}

	p, err := evict.New(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	base.GPUCapacity = capacity
	base.Policy = p

	if *record != "" {
		trace, err := serving.GenerateTrace(base)
		if err != nil {
			log.Fatal(err)
		}
		if *arrival != "" {
			arr, err := serving.GenerateArrivals(*arrival, len(trace), *arrivalRate, *seed+2)
			if err != nil {
				log.Fatal(err)
			}
			if err := serving.AssignArrivals(trace, arr); err != nil {
				log.Fatal(err)
			}
		}
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := serving.WriteTrace(f, trace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d requests to %s\n", len(trace), *record)
	}

	// -mine and -replay both want the stream as an explicit trace;
	// otherwise the generator-backed Run avoids materializing one.
	var trace []serving.Request
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		trace, err = serving.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else if *mine {
		trace, err = serving.GenerateTrace(base)
		if err != nil {
			log.Fatal(err)
		}
	}

	var st serving.Stats
	if trace != nil {
		st, err = serving.RunTrace(base, trace)
	} else {
		st, err = serving.Run(base)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device=%s policy=%s hbm=%.1fGiB\n", dev.Name, *policy, *hbmGiB)
	printStats(*policy, st)
	fmt.Printf("baseline (no reuse) mean TTFT: %.1f ms\n", st.BaselineMeanTTFT.Seconds()*1e3)

	if *mine {
		ms, err := serving.MineTrace(mining.Config{
			MinHits:    *mineMinHits,
			MinTokens:  *mineMinTokens,
			MaxModules: *mineMaxMods,
			HalfLife:   *mineHalfLife,
		}, trace)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mining: streams=%d/%d promotions=%d demotions=%d live=%d\n",
			ms.Streams, ms.Requests, ms.Promotions, ms.Demotions, ms.LiveModules)
		fmt.Printf("mining: hits=%d (%.1f%% of streams) tokens saved=%d/%d (%.1f%%)\n",
			ms.Hits, 100*ms.HitRate(), ms.HitTokens, ms.SuffixTokens, 100*ms.TokensSavedFrac())
		if ms.Streams == 0 {
			fmt.Println("mining: trace carries no suffix token streams; generate with -shared-prefixes or record suffix_toks")
		}
	}
}
