// Command pcencode precomputes a schema's prompt-module attention states
// (§3.3) and persists them, so serving processes can restore instead of
// re-encoding (core snapshots).
//
// Usage:
//
//	pcencode -schema cities.pml -out cities.pcss           # encode + save
//	pcencode -schema cities.pml -in cities.pcss -verify    # restore + check
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "PML schema file (required)")
		outPath    = flag.String("out", "", "write snapshot to this file")
		inPath     = flag.String("in", "", "restore snapshot from this file")
		verify     = flag.Bool("verify", false, "with -in: verify the snapshot serves")
		arch       = flag.String("arch", "llama", "architecture: llama, llama-large, mpt, falcon, gpt2")
		seed       = flag.Uint64("seed", 1, "weight seed")
		vocab      = flag.Int("vocab", tokenizer.WordBase+8192, "vocabulary size")
	)
	flag.Parse()
	if *schemaPath == "" || (*outPath == "") == (*inPath == "") {
		fmt.Fprintln(os.Stderr, "usage: pcencode -schema s.pml (-out snap.pcss | -in snap.pcss [-verify])")
		os.Exit(2)
	}
	src, err := os.ReadFile(*schemaPath)
	if err != nil {
		log.Fatalf("pcencode: %v", err)
	}
	var cfg model.Config
	switch *arch {
	case "llama":
		cfg = model.LlamaStyle(*vocab, *seed)
	case "llama-large":
		cfg = model.LlamaStyleLarge(*vocab, *seed)
	case "mpt":
		cfg = model.MPTStyle(*vocab, *seed)
	case "falcon":
		cfg = model.FalconStyle(*vocab, *seed)
	case "gpt2":
		cfg = model.GPT2Style(*vocab, *seed)
	default:
		log.Fatalf("pcencode: unknown architecture %q", *arch)
	}
	m, err := model.New(cfg)
	if err != nil {
		log.Fatalf("pcencode: %v", err)
	}
	client := promptcache.New(m)

	if *outPath != "" {
		info, err := client.RegisterSchema(string(src))
		if err != nil {
			log.Fatalf("pcencode: %v", err)
		}
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatalf("pcencode: %v", err)
		}
		defer f.Close()
		if err := client.Engine().SaveSchemaStates(info.Name, f); err != nil {
			log.Fatalf("pcencode: %v", err)
		}
		st, _ := f.Stat()
		fmt.Printf("encoded schema %q: %d modules, %d position IDs, snapshot %d bytes -> %s\n",
			info.Name, len(info.Modules), info.Positions, st.Size(), *outPath)
		return
	}

	f, err := os.Open(*inPath)
	if err != nil {
		log.Fatalf("pcencode: %v", err)
	}
	defer f.Close()
	layout, err := client.Engine().RegisterSchemaFromSnapshot(string(src), f)
	if err != nil {
		log.Fatalf("pcencode: restore failed: %v", err)
	}
	fmt.Printf("restored schema %q: %d modules without re-encoding\n", layout.Schema.Name, len(layout.Order))
	if *verify {
		stats := client.Stats()
		if stats.ModulesEncoded > len(layout.Schema.Scaffolds) {
			log.Fatalf("pcencode: verify failed: %d modules were re-encoded", stats.ModulesEncoded)
		}
		fmt.Printf("verify ok: %d modules restored, %d encoded (scaffolds only)\n",
			stats.ModulesRestored, stats.ModulesEncoded)
	}
}
