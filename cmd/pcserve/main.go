// Command pcserve runs a Prompt Cache HTTP inference server.
//
// Endpoints:
//
//	POST /schemas      {"pml": "<schema ...>"}          register a schema
//	GET  /schemas                                       list schemas
//	POST /v1/complete  {"prompt": "<prompt ...>", ...}  cached completion
//	GET  /stats                                         cache statistics
//	GET  /healthz                                       liveness
//
// Example:
//
//	pcserve -addr :8080 -arch llama &
//	curl -d '{"pml":"<schema name=\"s\"><module name=\"m\">hi</module></schema>"}' localhost:8080/schemas
//	curl -d '{"prompt":"<prompt schema=\"s\"><m/>go</prompt>","max_tokens":16}' localhost:8080/v1/complete
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/tokenizer"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	arch := flag.String("arch", "llama", "architecture family: llama, llama-large, mpt, falcon, gpt2")
	seed := flag.Uint64("seed", 1, "weight seed")
	vocab := flag.Int("vocab", tokenizer.WordBase+8192, "vocabulary size")
	flag.Parse()

	var cfg model.Config
	switch *arch {
	case "llama":
		cfg = model.LlamaStyle(*vocab, *seed)
	case "llama-large":
		cfg = model.LlamaStyleLarge(*vocab, *seed)
	case "mpt":
		cfg = model.MPTStyle(*vocab, *seed)
	case "falcon":
		cfg = model.FalconStyle(*vocab, *seed)
	case "gpt2":
		cfg = model.GPT2Style(*vocab, *seed)
	default:
		log.Fatalf("pcserve: unknown architecture %q", *arch)
	}
	m, err := model.New(cfg)
	if err != nil {
		log.Fatalf("pcserve: %v", err)
	}
	srv := server.New(core.NewCache(m))
	fmt.Printf("pcserve: %s model on %s\n", cfg.Name, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
