// Command pcserve runs a Prompt Cache HTTP inference server.
//
// Endpoints:
//
//	POST   /schemas                 {"pml": "<schema ...>"}          register a schema
//	GET    /schemas                                                  list schemas
//	POST   /v1/complete             {"prompt": "<prompt ...>", ...}  cached completion
//	POST   /v1/complete_batch       {"prompts": [...], ...}          batch with shared modules
//	POST   /v1/stream               {"prompt": ...}                  SSE token stream
//	POST   /v1/sessions             {"prompt": ..., "max_tokens":N}  open a multi-turn session
//	POST   /v1/sessions/{id}/send   {"text": "..."}                  advance a session one turn
//	DELETE /v1/sessions/{id}                                         close a session
//	GET    /stats                                                    cache statistics
//	GET    /healthz                                                  liveness
//
// Example:
//
//	pcserve -addr :8080 -arch llama &
//	curl -d '{"pml":"<schema name=\"s\"><module name=\"m\">hi</module></schema>"}' localhost:8080/schemas
//	curl -d '{"prompt":"<prompt schema=\"s\"><m/>go</prompt>","max_tokens":16}' localhost:8080/v1/complete
//	curl -d '{"prompt":"<prompt schema=\"s\"><m/><user>hi</user></prompt>"}' localhost:8080/v1/sessions
//	curl -d '{"text":"tell me more"}' localhost:8080/v1/sessions/s1/send
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	arch := flag.String("arch", "llama", "architecture family: llama, llama-large, mpt, falcon, gpt2")
	seed := flag.Uint64("seed", 1, "weight seed")
	vocab := flag.Int("vocab", tokenizer.WordBase+8192, "vocabulary size")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "maximum concurrently open sessions")
	sessionIdle := flag.Duration("session-idle", server.DefaultSessionIdleTimeout, "idle age after which abandoned sessions are reaped")
	decodeBatch := flag.Int("decode-batch", promptcache.DefaultMaxDecodeBatch, "continuous-batching decode width: concurrent generations fuse into shared model steps (0 disables the scheduler)")
	flag.Parse()

	var cfg model.Config
	switch *arch {
	case "llama":
		cfg = model.LlamaStyle(*vocab, *seed)
	case "llama-large":
		cfg = model.LlamaStyleLarge(*vocab, *seed)
	case "mpt":
		cfg = model.MPTStyle(*vocab, *seed)
	case "falcon":
		cfg = model.FalconStyle(*vocab, *seed)
	case "gpt2":
		cfg = model.GPT2Style(*vocab, *seed)
	default:
		log.Fatalf("pcserve: unknown architecture %q", *arch)
	}
	m, err := model.New(cfg)
	if err != nil {
		log.Fatalf("pcserve: %v", err)
	}
	// One client — and so one decode scheduler — behind every endpoint:
	// completions, streams and session turns arriving together fuse into
	// the same batched decode steps.
	var opts []promptcache.Option
	if *decodeBatch > 0 {
		opts = append(opts, promptcache.WithDecodeScheduler(*decodeBatch))
	}
	srv := server.New(promptcache.New(m, opts...))
	srv.MaxSessions = *maxSessions
	srv.SessionIdleTimeout = *sessionIdle
	fmt.Printf("pcserve: %s model on %s\n", cfg.Name, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
