// Command pcserve runs a Prompt Cache HTTP inference server.
//
// Endpoints:
//
//	POST   /schemas                 {"pml": "<schema ...>"}          register a schema
//	GET    /schemas                                                  list schemas
//	POST   /v1/complete             {"prompt": "<prompt ...>", ...}  cached completion
//	POST   /v1/complete_batch       {"prompts": [...], ...}          batch with shared modules
//	POST   /v1/stream               {"prompt": ...}                  SSE token stream
//	POST   /v1/sessions             {"prompt": ..., "max_tokens":N}  open a multi-turn session
//	POST   /v1/sessions/{id}/send   {"text": "..."}                  advance a session one turn
//	DELETE /v1/sessions/{id}                                         close a session
//	GET    /stats                                                    cache statistics
//	GET    /healthz                                                  liveness
//
// Example:
//
//	pcserve -addr :8080 -arch llama &
//
// With -cache-dir the server is restart-durable: evicted modules spill
// to disk (quantized per -cache-codec) instead of dropping, SIGINT/
// SIGTERM snapshots every registered schema's states, and the next boot
// warm-restores them — the first cached request after a restart pays no
// re-encoding:
//
// With -mine the cache grows itself: the engine watches the uncached
// token streams requests send, promotes hot shared prefixes to
// anonymous cached modules, and splices them bit-exactly into later
// requests — the "mining" block of GET /stats tracks the win.
//
// With -speculate the decode phase speculates: generated token streams
// train a per-serving-class n-gram draft source, and each decode lane
// verifies the draft's proposals in one widened fused step, emitting
// several tokens per step when the draft is right. Output is
// bit-identical to non-speculative decode — requests can opt out per
// call via {"speculation": {"enabled": false}} — and the "speculation"
// block of GET /stats reports acceptance. Requires the decode scheduler
// (-decode-batch > 0).
//
// With -admit N the server survives overload instead of collapsing
// under it: N requests serve concurrently, -admit-queue more wait, and
// further arrivals are shed immediately with HTTP 429 plus a computed
// Retry-After. Requests may carry "slo": "interactive" (default) or
// "batch" — interactive requests are admitted and decode-scheduled
// ahead of batch backfill, and -admit-deadline / -admit-batch-deadline
// bound each class's total latency (expiry is HTTP 504). The
// "admission" block of GET /stats keeps the ledger.
//
// With -backend the tensor kernel backend is pinned ("scalar" or
// "parallel"); the default "auto" picks per the host's core count (and
// honors PC_BACKEND). Backends are bit-identical — outputs never depend
// on the choice. Startup logs the selection with the detected CPU, and
// the "backend" block of GET /stats reports it.
//
//	pcserve -cache-dir /var/lib/pcserve -cache-codec int8
//	curl -d '{"pml":"<schema name=\"s\"><module name=\"m\">hi</module></schema>"}' localhost:8080/schemas
//	curl -d '{"prompt":"<prompt schema=\"s\"><m/>go</prompt>","max_tokens":16}' localhost:8080/v1/complete
//	curl -d '{"prompt":"<prompt schema=\"s\"><m/><user>hi</user></prompt>"}' localhost:8080/v1/sessions
//	curl -d '{"text":"tell me more"}' localhost:8080/v1/sessions/s1/send
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/server"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	arch := flag.String("arch", "llama", "architecture family: llama, llama-large, mpt, falcon, gpt2")
	backend := flag.String("backend", "auto", "tensor kernel backend: auto (hardware-based, honors PC_BACKEND), scalar, or parallel; all backends are bit-identical")
	seed := flag.Uint64("seed", 1, "weight seed")
	vocab := flag.Int("vocab", tokenizer.WordBase+8192, "vocabulary size")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "maximum concurrently open sessions")
	sessionIdle := flag.Duration("session-idle", server.DefaultSessionIdleTimeout, "idle age after which abandoned sessions are reaped")
	decodeBatch := flag.Int("decode-batch", promptcache.DefaultMaxDecodeBatch, "continuous-batching decode width: concurrent generations fuse into shared model steps (0 disables the scheduler)")
	cacheDir := flag.String("cache-dir", "", "durable cache directory: evicted modules spill here instead of dropping, and registered schemas persist across restarts (SIGINT/SIGTERM snapshots, next boot warm-restores)")
	cacheCodec := flag.String("cache-codec", "int8", "disk-tier codec: fp32 (bit-exact), int8 or int4")
	speculate := flag.Bool("speculate", false, "speculative decoding: train an n-gram draft source on served traffic and verify its proposals in widened fused steps; output is bit-identical, only tokens-per-step changes (requires the decode scheduler)")
	specDraft := flag.Int("speculate-draft", 0, "speculation: max draft tokens verified per fused step (0 = default)")
	specContext := flag.Int("speculate-context", 0, "speculation: n-gram context length of the draft source (0 = default)")
	specHalfLife := flag.Float64("speculate-half-life", 0, "speculation: draft-transition decay half-life in observed streams (0 = default)")
	mine := flag.Bool("mine", false, "automatic module mining: observe uncached token streams and promote hot shared prefixes to anonymous cached modules")
	mineMinHits := flag.Float64("mine-min-hits", 0, "mining: observations before a prefix is promoted (0 = default)")
	mineMinTokens := flag.Int("mine-min-tokens", 0, "mining: shortest prefix worth promoting (0 = default)")
	mineMaxMods := flag.Int("mine-max-modules", 0, "mining: live mined-module budget (0 = default)")
	mineHalfLife := flag.Float64("mine-half-life", 0, "mining: reuse-score half-life in observed serves (0 = default)")
	admit := flag.Int("admit", 0, "admission control: concurrent-request slots; overflow queues, a full queue sheds HTTP 429 + Retry-After (0 disables admission)")
	admitQueue := flag.Int("admit-queue", 0, "admission: waiting requests beyond the slots before shedding (0 = default when -admit is set)")
	admitDeadline := flag.Duration("admit-deadline", 0, "admission: per-request deadline for interactive requests, queueing included; expiry is HTTP 504 (0 = none)")
	admitBatchDeadline := flag.Duration("admit-batch-deadline", 0, "admission: per-request deadline for batch-class requests (0 = none)")
	flag.Parse()

	var cfg model.Config
	switch *arch {
	case "llama":
		cfg = model.LlamaStyle(*vocab, *seed)
	case "llama-large":
		cfg = model.LlamaStyleLarge(*vocab, *seed)
	case "mpt":
		cfg = model.MPTStyle(*vocab, *seed)
	case "falcon":
		cfg = model.FalconStyle(*vocab, *seed)
	case "gpt2":
		cfg = model.GPT2Style(*vocab, *seed)
	default:
		log.Fatalf("pcserve: unknown architecture %q", *arch)
	}
	m, err := model.New(cfg)
	if err != nil {
		log.Fatalf("pcserve: %v", err)
	}
	// One client — and so one decode scheduler — behind every endpoint:
	// completions, streams and session turns arriving together fuse into
	// the same batched decode steps.
	var opts []promptcache.Option
	bkOpt, err := promptcache.WithBackend(*backend)
	if err != nil {
		log.Fatalf("pcserve: %v", err)
	}
	opts = append(opts, bkOpt)
	if *decodeBatch > 0 {
		opts = append(opts, promptcache.WithDecodeScheduler(*decodeBatch))
	}
	if *speculate {
		if *decodeBatch <= 0 {
			log.Fatalf("pcserve: -speculate requires the decode scheduler (-decode-batch > 0)")
		}
		opts = append(opts, promptcache.WithSpeculation(promptcache.DraftOpts{
			MaxDraft: *specDraft,
			Context:  *specContext,
			HalfLife: *specHalfLife,
		}))
	}
	if *mine {
		opts = append(opts, promptcache.WithModuleMining(promptcache.MiningOpts{
			MinHits:    *mineMinHits,
			MinTokens:  *mineMinTokens,
			MaxModules: *mineMaxMods,
			HalfLife:   *mineHalfLife,
		}))
	}
	if *admit > 0 || *admitQueue > 0 || *admitDeadline > 0 || *admitBatchDeadline > 0 {
		opts = append(opts, promptcache.WithAdmission(promptcache.AdmissionConfig{
			MaxConcurrent:       *admit,
			MaxQueue:            *admitQueue,
			InteractiveDeadline: *admitDeadline,
			BatchDeadline:       *admitBatchDeadline,
		}))
	}
	var codec promptcache.Codec
	if *cacheDir != "" {
		var err error
		if codec, err = promptcache.ParseCodec(*cacheCodec); err != nil {
			log.Fatalf("pcserve: %v", err)
		}
		opts = append(opts, promptcache.WithDiskTier(*cacheDir, codec))
	}

	// With a cache dir, a previous run's snapshot warm-restores: every
	// schema it held serves its first cached request without re-encoding.
	var client *promptcache.Client
	if *cacheDir != "" && promptcache.HasSnapshot(*cacheDir) {
		var err error
		if client, err = promptcache.Open(m, *cacheDir, opts...); err != nil {
			// A damaged or mismatched snapshot must not crash-loop the
			// server under a supervisor: degrade to a cold start (schemas
			// re-register and re-encode as they arrive) and keep the dir
			// for spills and the next snapshot.
			log.Printf("pcserve: restoring %s failed (%v); starting cold", *cacheDir, err)
		}
	}
	if client != nil {
		fmt.Printf("pcserve: warm restart from %s (%d schemas)\n", *cacheDir, len(client.Schemas()))
	} else {
		client = promptcache.New(m, opts...)
	}

	srv := server.New(client)
	srv.MaxSessions = *maxSessions
	srv.SessionIdleTimeout = *sessionIdle
	fmt.Printf("pcserve: %s model on %s\n", cfg.Name, *addr)
	bk := client.Model().Backend()
	fmt.Printf("pcserve: tensor backend %s (%d workers; %s)\n", bk.Name(), bk.Workers(), hw.DetectCPU())

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	if *cacheDir == "" {
		log.Fatal(httpSrv.ListenAndServe())
		return
	}
	// SIGINT/SIGTERM: stop accepting traffic, snapshot the cache, exit —
	// the write half of the warm-restart loop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("pcserve: drain timed out after 10s; snapshotting with requests still in flight")
		} else {
			log.Printf("pcserve: shutdown: %v", err)
		}
	}
	if err := client.SaveAll(*cacheDir); err != nil {
		log.Fatalf("pcserve: saving %s: %v", *cacheDir, err)
	}
	fmt.Printf("pcserve: cache saved to %s (%s codec)\n", *cacheDir, codec)
}
