// Command pmlc validates PML documents and compiles promptlang programs
// (§3.2.4) into PML.
//
// Usage:
//
//	pmlc check schema.pml        # parse + validate a PML schema
//	pmlc check-prompt p.pml      # parse + validate a PML prompt
//	pmlc compile program.plp     # compile promptlang -> PML on stdout
//	pmlc fmt schema.pml          # canonical re-formatting on stdout
//	pmlc layout schema.pml       # print the position-ID layout
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pml"
	"repro/internal/promptlang"
	"repro/internal/tokenizer"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pmlc <check|check-prompt|compile|fmt|layout> <file>")
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	cmd, path := flag.Arg(0), flag.Arg(1)
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	src := string(data)
	switch cmd {
	case "check":
		s, err := pml.ParseSchema(src)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("schema %q ok: %d top-level nodes, %d scaffolds\n", s.Name, len(s.Nodes), len(s.Scaffolds))
	case "check-prompt":
		p, err := pml.ParsePrompt(src)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("prompt ok: derives from schema %q, %d items\n", p.SchemaName, len(p.Items))
	case "compile":
		out, err := promptlang.CompileToPML(src)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "fmt":
		s, err := pml.ParseSchema(src)
		if err != nil {
			fatal(err)
		}
		fmt.Print(pml.Serialize(s))
	case "layout":
		s, err := pml.ParseSchema(src)
		if err != nil {
			fatal(err)
		}
		tk := tokenizer.New(tokenizer.WordBase + 65536)
		ly, err := pml.Compile(s, tk, pml.PlainTemplate())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("schema %q: %d position IDs total\n", s.Name, ly.TotalLen)
		for _, name := range ly.Order {
			m := ly.Modules[name]
			kind := "module"
			if m.Anonymous {
				kind = "anon"
			}
			union := ""
			if m.UnionID >= 0 {
				union = fmt.Sprintf(" union=%d", m.UnionID)
			}
			fmt.Printf("  %-24s %-6s pos=[%d,%d) own=%d params=%d%s\n",
				name, kind, m.Start, m.Start+m.Len, m.OwnTokens(), len(m.Params), union)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pmlc: %v\n", err)
	os.Exit(1)
}
