// Command pcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	pcbench list                 # show available experiments
//	pcbench all                  # run everything
//	pcbench fig3 table2 ...      # run specific experiments
//	pcbench -csv fig5            # emit CSV instead of a table
//	pcbench -json BENCH_serve.json serve
//	pcbench -json BENCH_decode.json decode
//	pcbench -json BENCH_spec.json speculate
//	pcbench -json BENCH_load.json load
//	pcbench -json BENCH_kernels.json kernels
//	                             # serve/decode/load/kernels experiment +
//	                             # machine-readable points for cross-PR
//	                             # perf tracking
//	pcbench -count 5 -json BENCH_serve.json serve
//	                             # run 5 times, emit the per-metric
//	                             # median point — de-noised numbers for
//	                             # the CI perf gate
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"

	"repro/internal/bench"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.String("json", "", "write the serve experiment's measured points to this file (e.g. BENCH_serve.json)")
	count := flag.Int("count", 1, "run the serve/decode measurement this many times and report per-metric medians")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pcbench [-csv] [-json file] [-count n] <experiment>... | all | list\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *count < 1 {
		fmt.Fprintf(os.Stderr, "pcbench: -count must be >= 1 (got %d)\n", *count)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e[0], e[1])
		}
		return
	}
	if args[0] == "all" {
		args = nil
		for _, e := range bench.Experiments() {
			if e[0] == "table1-quick" || e[0] == "fig3-all" || e[0] == "fig4-all" {
				continue
			}
			args = append(args, e[0])
		}
	}
	// -json emits machine-readable perf points; only the serve, decode,
	// load and kernels experiments produce them, so refuse to no-op
	// silently — and refuse the ambiguous case where several would
	// overwrite one output file.
	if *jsonOut != "" {
		jsonable := 0
		for _, id := range []string{"serve", "decode", "speculate", "load", "kernels"} {
			if slices.Contains(args, id) {
				jsonable++
			}
		}
		switch {
		case jsonable == 0:
			fmt.Fprintf(os.Stderr, "pcbench: -json requires the serve, decode, speculate, load or kernels experiment (got %v)\n", args)
			os.Exit(2)
		case jsonable > 1:
			fmt.Fprintf(os.Stderr, "pcbench: -json with several point-emitting experiments would overwrite %s; run them separately\n", *jsonOut)
			os.Exit(2)
		}
	}
	failed := false
	for _, id := range args {
		var rep *bench.Report
		var err error
		switch {
		case id == "serve" && (*jsonOut != "" || *count > 1):
			// Measure -count times, collapse to per-metric medians, and
			// emit both the table and (with -json) the JSON trajectory.
			var points []bench.ServePoint
			runs := make([][]bench.ServePoint, 0, *count)
			for i := 0; i < *count && err == nil; i++ {
				points, err = bench.ServeCachedPrefixPoints(bench.DefaultServeSizes)
				runs = append(runs, points)
			}
			if err == nil && *count > 1 {
				points, err = bench.MedianServePoints(runs)
			}
			if err == nil {
				rep = bench.ServeReport(points)
				if *jsonOut != "" {
					var data []byte
					if data, err = bench.ServePointsJSON(points); err == nil {
						err = os.WriteFile(*jsonOut, data, 0o644)
					}
				}
			}
			if err != nil {
				rep = nil
			}
		case id == "load" && (*jsonOut != "" || *count > 1):
			var points []bench.LoadPoint
			runs := make([][]bench.LoadPoint, 0, *count)
			for i := 0; i < *count && err == nil; i++ {
				points, err = bench.LoadOverloadPoints(bench.DefaultLoadMults, bench.DefaultLoadRequests)
				runs = append(runs, points)
			}
			if err == nil && *count > 1 {
				points, err = bench.MedianLoadPoints(runs)
			}
			if err == nil {
				rep = bench.LoadReport(points)
				if *jsonOut != "" {
					var data []byte
					if data, err = bench.LoadPointsJSON(points); err == nil {
						err = os.WriteFile(*jsonOut, data, 0o644)
					}
				}
			}
			if err != nil {
				rep = nil
			}
		case id == "kernels" && (*jsonOut != "" || *count > 1):
			var points []bench.KernelPoint
			runs := make([][]bench.KernelPoint, 0, *count)
			for i := 0; i < *count && err == nil; i++ {
				points, err = bench.KernelPoints()
				runs = append(runs, points)
			}
			if err == nil && *count > 1 {
				points, err = bench.MedianKernelPoints(runs)
			}
			if err == nil {
				rep = bench.KernelReport(points)
				if *jsonOut != "" {
					var data []byte
					if data, err = bench.KernelPointsJSON(points); err == nil {
						err = os.WriteFile(*jsonOut, data, 0o644)
					}
				}
			}
			if err != nil {
				rep = nil
			}
		case id == "speculate" && (*jsonOut != "" || *count > 1):
			var points []bench.SpecPoint
			runs := make([][]bench.SpecPoint, 0, *count)
			for i := 0; i < *count && err == nil; i++ {
				points, err = bench.SpeculatePoints(bench.DefaultSpecScenarios)
				runs = append(runs, points)
			}
			if err == nil && *count > 1 {
				points, err = bench.MedianSpecPoints(runs)
			}
			if err == nil {
				rep = bench.SpecReport(points)
				if *jsonOut != "" {
					var data []byte
					if data, err = bench.SpecPointsJSON(points); err == nil {
						err = os.WriteFile(*jsonOut, data, 0o644)
					}
				}
			}
			if err != nil {
				rep = nil
			}
		case id == "decode" && (*jsonOut != "" || *count > 1):
			var points []bench.DecodePoint
			runs := make([][]bench.DecodePoint, 0, *count)
			for i := 0; i < *count && err == nil; i++ {
				points, err = bench.DecodeContinuousPoints(bench.DefaultDecodeStreams)
				runs = append(runs, points)
			}
			if err == nil && *count > 1 {
				points, err = bench.MedianDecodePoints(runs)
			}
			if err == nil {
				rep = bench.DecodeReport(points)
				if *jsonOut != "" {
					var data []byte
					if data, err = bench.DecodePointsJSON(points); err == nil {
						err = os.WriteFile(*jsonOut, data, 0o644)
					}
				}
			}
			if err != nil {
				rep = nil
			}
		default:
			rep, err = bench.Run(id)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			failed = true
			continue
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			rep.Print(os.Stdout)
		}
	}
	if failed {
		os.Exit(1)
	}
}
