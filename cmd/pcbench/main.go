// Command pcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	pcbench list                 # show available experiments
//	pcbench all                  # run everything
//	pcbench fig3 table2 ...      # run specific experiments
//	pcbench -csv fig5            # emit CSV instead of a table
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pcbench [-csv] <experiment>... | all | list\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e[0], e[1])
		}
		return
	}
	if args[0] == "all" {
		args = nil
		for _, e := range bench.Experiments() {
			if e[0] == "table1-quick" || e[0] == "fig3-all" || e[0] == "fig4-all" {
				continue
			}
			args = append(args, e[0])
		}
	}
	failed := false
	for _, id := range args {
		rep, err := bench.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcbench: %v\n", err)
			failed = true
			continue
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			rep.Print(os.Stdout)
		}
	}
	if failed {
		os.Exit(1)
	}
}
