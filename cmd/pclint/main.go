// Command pclint runs the repo's invariant analyzers (internal/lint)
// over the module and exits nonzero on any unsuppressed diagnostic. It
// is wired into CI as a hard gate after staticcheck.
//
// The five analyzers and the invariants they machine-check — lockscope,
// pinbalance, maporder, ctxplumb, errtaxonomy — are documented in
// internal/lint and the README's "Static analysis" section. A false
// positive is silenced at the site with
//
//	//pclint:ignore <analyzer> <reason>
//
// on, or on the line above, the reported line; the reason is mandatory.
//
// Usage:
//
//	pclint [-only analyzer[,analyzer]] [-show-suppressed] [packages]
//
// Packages default to ./... and are passed to `go list` verbatim.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	showSuppressed := flag.Bool("show-suppressed", false, "also print suppressed diagnostics with their reasons")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pclint [-only a,b] [-show-suppressed] [packages]\nanalyzers: %s\n",
			strings.Join(lint.AnalyzerNames, ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		os.Exit(2)
	}
	prog, err := lint.Load(dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		os.Exit(2)
	}
	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	diags, err := prog.Run(lint.DefaultConfig(), names...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		os.Exit(2)
	}

	failing := 0
	for _, d := range diags {
		if d.Suppressed && !*showSuppressed {
			continue
		}
		if !d.Suppressed {
			failing++
		}
		fmt.Println(d)
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "pclint: %d unsuppressed diagnostic(s)\n", failing)
		os.Exit(1)
	}
}
