// Command benchdiff compares two machine-readable benchmark files
// (BENCH_serve.json / BENCH_decode.json / BENCH_spec.json /
// BENCH_load.json / BENCH_kernels.json, as written by `pcbench -json`)
// and reports metric regressions beyond a threshold.
//
// It is the warn-only half of a CI perf-regression gate: run the bench
// on a PR, diff against the checked-in baseline, and annotate the run
// (GitHub `::warning::` lines) when a point regressed more than the
// threshold. By default it always exits 0 — perf noise on shared CI
// runners should flag, not block; -strict turns regressions into a
// nonzero exit for when the gate hardens.
//
// Metrics differ in noise: allocation counts are deterministic while
// wall-clock throughput jitters on shared runners. -tolerances points at
// a JSON file of per-metric overrides ({"ns_per_op": 0.30,
// "allocs_per_op": 0.02, ...}); metrics it does not name fall back to
// -threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.20] [-tolerances tol.json] [-strict] baseline.json current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// metricDirection: +1 means higher is worse (latency, allocations),
// -1 means lower is worse (throughput). Unknown numeric fields are
// ignored rather than guessed.
var metricDirection = map[string]int{
	"ns_per_op":      +1,
	"ms_per_op":      +1,
	"bytes_per_op":   +1,
	"allocs_per_op":  +1,
	"tokens_per_sec": -1,
	// Speculation gate (BENCH_spec.json): tokens produced per fused step.
	// Dropping toward 1 means the draft source stopped earning its keep.
	"accepted_per_step": -1,
	// Load-gate metrics (BENCH_load.json): TTFT tails and shed rate
	// under offered load. max_queue_depth and offered_rps are reported
	// in the file but deliberately not diffed — the former is bounded
	// by configuration, the latter is per-machine calibration.
	"p50_ttft_ms": +1,
	"p95_ttft_ms": +1,
	"p99_ttft_ms": +1,
	"shed_rate":   +1,
}

// identityKeys name a point within a file; everything else numeric is a
// candidate metric. kernel/backend identify BENCH_kernels.json points;
// backend also distinguishes decode points should the pinned backend
// ever change (old and new rows then diff as distinct points rather
// than as a phantom regression).
var identityKeys = []string{"mode", "prefix_tokens", "streams", "load_mult", "arrival", "kernel", "backend", "scenario"}

type point = map[string]any

func load(path string) ([]point, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pts []point
	if err := json.Unmarshal(data, &pts); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return pts, nil
}

// identity renders a point's identity fields as a stable key/label.
func identity(p point) string {
	var parts []string
	for _, k := range identityKeys {
		if v, ok := p[k]; ok {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// loadTolerances reads per-metric threshold overrides: a JSON object
// mapping metric name to allowed relative regression. Unknown metric
// names are rejected — a typo would otherwise silently re-enable the
// default threshold. Non-positive tolerances are rejected for the same
// reason.
func loadTolerances(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tol := map[string]float64{}
	if err := json.Unmarshal(data, &tol); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for name, v := range tol {
		if _, ok := metricDirection[name]; !ok {
			return nil, fmt.Errorf("%s: unknown metric %q", path, name)
		}
		if v <= 0 {
			return nil, fmt.Errorf("%s: tolerance for %q must be > 0 (got %v)", path, name, v)
		}
	}
	return tol, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.20, "relative regression that triggers a warning (0.20 = 20%)")
	tolerances := flag.String("tolerances", "", "JSON file of per-metric tolerance overrides; unnamed metrics use -threshold")
	strict := flag.Bool("strict", false, "exit nonzero when any metric regresses past its tolerance (hard gate)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold f] [-tolerances file] [-strict] baseline.json current.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	tol := map[string]float64{}
	if *tolerances != "" {
		if tol, err = loadTolerances(*tolerances); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}
	limitFor := func(metric string) float64 {
		if v, ok := tol[metric]; ok {
			return v
		}
		return *threshold
	}

	baseline := map[string]point{}
	for _, p := range base {
		baseline[identity(p)] = p
	}
	regressions := 0
	compared := 0
	for _, p := range cur {
		id := identity(p)
		b, ok := baseline[id]
		if !ok {
			fmt.Printf("benchdiff: %s: new point, no baseline\n", id)
			continue
		}
		for metric, dir := range metricDirection {
			curV, okC := asFloat(p[metric])
			baseV, okB := asFloat(b[metric])
			if !okC || !okB || baseV == 0 {
				continue
			}
			compared++
			limit := limitFor(metric)
			// delta > 0 means worse, regardless of direction.
			delta := (curV - baseV) / baseV * float64(dir)
			if delta > limit {
				regressions++
				fmt.Printf("::warning title=bench regression::%s %s regressed %.1f%% (%.4g -> %.4g, tolerance %.0f%%)\n",
					id, metric, delta*100, baseV, curV, limit*100)
			} else if delta < -limit {
				fmt.Printf("benchdiff: %s %s improved %.1f%% (%.4g -> %.4g)\n",
					id, metric, -delta*100, baseV, curV)
			}
		}
	}
	fmt.Printf("benchdiff: %d metrics compared, %d regressed beyond tolerance\n",
		compared, regressions)
	if *strict && regressions > 0 {
		os.Exit(1)
	}
}

func asFloat(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}
