package repro

// One benchmark per table and figure in the paper's evaluation (§5).
// Analytic experiments (Figs. 3–5, Table 2, §5.4) regenerate the paper's
// numbers through the calibrated hardware model; engine experiments
// (Table 1, Figs. 6–8, the TTFT benches) run the real Go inference
// engine, so their ns/op directly exhibit the paper's baseline-vs-cached
// shape on this machine.
//
// Run: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// report runs a bench-package experiment once per iteration, discarding
// the rendered output.
func report(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		rep.Print(io.Discard)
	}
}

// BenchmarkFig3GPULatency regenerates Figure 3 (GPU TTFT, 8 datasets × 3
// GPUs × 3 configurations).
func BenchmarkFig3GPULatency(b *testing.B) { report(b, "fig3") }

// BenchmarkFig4CPULatency regenerates Figure 4 (CPU TTFT, 8 datasets × 2
// CPUs).
func BenchmarkFig4CPULatency(b *testing.B) { report(b, "fig4") }

// BenchmarkFig5CacheAdvantage regenerates Figure 5 (quadratic baseline vs
// linear memcpy across sequence lengths).
func BenchmarkFig5CacheAdvantage(b *testing.B) { report(b, "fig5") }

// BenchmarkTable2MemoryOverhead regenerates Table 2 (MB per cached token
// for eight published models).
func BenchmarkTable2MemoryOverhead(b *testing.B) { report(b, "table2") }

// BenchmarkSec54ModelSize regenerates §5.4's model-size and end-to-end
// analysis.
func BenchmarkSec54ModelSize(b *testing.B) { report(b, "sec54") }

// BenchmarkTable1Accuracy regenerates a reduced Table 1 grid (real
// engine inference: 8 datasets × 4 architectures, cached vs baseline).
func BenchmarkTable1Accuracy(b *testing.B) { report(b, "table1-quick") }

// useCaseBench measures real engine serving for a §5.6 use case, cached
// vs baseline: the cached/baseline ns/op ratio is the figure's claim.
func useCaseBench(b *testing.B, schema, prompt string) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 555))
	if err != nil {
		b.Fatal(err)
	}
	client := promptcache.New(m)
	if _, err := client.RegisterSchema(schema); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, Baseline: true, PrefillOnly: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, PrefillOnly: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6CodeGen measures the Figure-6 code-generation scenario on
// the real engine.
func BenchmarkFig6CodeGen(b *testing.B) {
	useCaseBench(b, bench.CodeGenSchema, bench.CodeGenPrompt)
}

// BenchmarkFig7Personalization measures the Figure-7 personalization
// scenario on the real engine.
func BenchmarkFig7Personalization(b *testing.B) {
	useCaseBench(b, bench.PersonalizationSchema, bench.PersonalizationPrompt)
}

// BenchmarkFig8Parameterized measures the Figure-8 parameterized-prompt
// scenario on the real engine.
func BenchmarkFig8Parameterized(b *testing.B) {
	useCaseBench(b, bench.TripPlanSchema, bench.TripPlanPrompt)
}

// BenchmarkEngineTTFT is the measured Fig-5 analogue on the Go engine:
// per document length, baseline prefill vs cached serve.
func BenchmarkEngineTTFT(b *testing.B) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 777))
	if err != nil {
		b.Fatal(err)
	}
	client := promptcache.New(m)
	ctx := context.Background()
	for _, n := range []int{128, 256, 512} {
		name := fmt.Sprintf("bench-%d", n)
		if _, err := client.RegisterSchema(bench.EngineSchema(name, n, uint64(n))); err != nil {
			b.Fatal(err)
		}
		prompt := fmt.Sprintf("<prompt schema=%q><doc/><user>summarize the document</user></prompt>", name)
		b.Run(fmt.Sprintf("baseline-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, Baseline: true, PrefillOnly: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("cached-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, PrefillOnly: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeCachedPrefix is the zero-copy headline: TTFT of serving
// a tiny user suffix over a cached prefix of 512/2K/8K tokens, cached
// (segment views, no per-request copy of module rows) vs baseline (full
// prefill). Run with -benchmem: cached B/op and allocs/op are
// independent of prefix length — the serve allocates for its suffix
// only — while cached time grows just with the suffix's linear attention
// span and the baseline grows quadratically.
func BenchmarkServeCachedPrefix(b *testing.B) {
	cfg := model.LlamaStyle(tokenizer.WordBase+2048, 1234)
	cfg.MaxSeq = 10240 // room for the 8K prefix plus suffix and decode
	m, err := model.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := promptcache.New(m)
	ctx := context.Background()
	for _, n := range []int{512, 2048, 8192} {
		name := fmt.Sprintf("prefix-%d", n)
		// One-time module encoding (≈18s at 8K on one CPU): the cost the
		// paper trades for per-request reuse; excluded from timed loops.
		if _, err := client.RegisterSchema(bench.EngineSchema(name, n, uint64(n))); err != nil {
			b.Fatal(err)
		}
		prompt := fmt.Sprintf("<prompt schema=%q><doc/><user>summarize the document</user></prompt>", name)
		b.Run(fmt.Sprintf("cached-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, PrefillOnly: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("baseline-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, Baseline: true, PrefillOnly: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeParallel measures cached-serve throughput through one
// client at increasing worker counts. Before the lock refactor every
// prefill serialized on the cache mutex and workers-8 matched workers-1;
// the speedup now visible is the payoff of prefilling outside the lock.
func BenchmarkServeParallel(b *testing.B) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 999))
	if err != nil {
		b.Fatal(err)
	}
	client := promptcache.New(m)
	if _, err := client.RegisterSchema(bench.EngineSchema("par", 256, 3)); err != nil {
		b.Fatal(err)
	}
	prompt := `<prompt schema="par"><doc/><user>summarize the document</user></prompt>`
	ctx := context.Background()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			work := make(chan struct{})
			fail := make(chan error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range work {
						if _, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, PrefillOnly: true}); err != nil {
							select {
							case fail <- err:
							default:
							}
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work <- struct{}{}
			}
			close(work)
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-fail:
				b.Fatal(err)
			default:
			}
		})
	}
}

// BenchmarkDecodeContinuous measures decode-phase throughput for
// concurrent generations, fused (continuous-batching scheduler: one
// shared model step per token for the whole batch) vs sequential (each
// request drives its own per-token loop). One op = N concurrent requests
// each decoding 24 tokens over a 256-token cached prefix; both modes
// emit bit-identical token streams, so the delta is pure scheduling.
// `pcbench -json BENCH_decode.json decode` tracks the same grid across
// PRs.
func BenchmarkDecodeContinuous(b *testing.B) {
	build := func(fused bool) *promptcache.Client {
		b.Helper()
		m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 444))
		if err != nil {
			b.Fatal(err)
		}
		var opts []promptcache.Option
		if fused {
			opts = append(opts, promptcache.WithDecodeScheduler(16))
		}
		client := promptcache.New(m, opts...)
		if _, err := client.RegisterSchema(bench.EngineSchema("cont", 256, 4)); err != nil {
			b.Fatal(err)
		}
		return client
	}
	clients := map[string]*promptcache.Client{"fused": build(true), "sequential": build(false)}
	const prompt = `<prompt schema="cont"><doc/><user>summarize the document</user></prompt>`
	const maxTok = 24
	ctx := context.Background()
	for _, streams := range []int{1, 4, 8, 16} {
		for _, mode := range []string{"fused", "sequential"} {
			client := clients[mode]
			b.Run(fmt.Sprintf("%s-%d", mode, streams), func(b *testing.B) {
				fail := make(chan error, 1)
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for s := 0; s < streams; s++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							// StopToken -1 keeps untrained-model EOS from
							// shortening replies, so every stream decodes the
							// full 24 tokens and modes stay comparable.
							if _, err := client.Infer(ctx, promptcache.Request{
								Prompt: prompt, MaxTokens: maxTok, StopToken: -1,
							}); err != nil {
								select {
								case fail <- err:
								default:
								}
							}
						}()
					}
					wg.Wait()
				}
				b.StopTimer()
				select {
				case err := <-fail:
					b.Fatal(err)
				default:
				}
				b.ReportMetric(float64(streams*maxTok*b.N)/b.Elapsed().Seconds(), "tok/s")
			})
		}
	}
}

// BenchmarkSchemaEncoding measures prompt-module encoding cost (§3.3),
// the one-time price a schema registration pays.
func BenchmarkSchemaEncoding(b *testing.B) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 888))
	if err != nil {
		b.Fatal(err)
	}
	schema := bench.EngineSchema("enc", 256, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client := promptcache.New(m)
		if _, err := client.RegisterSchema(schema); err != nil {
			b.Fatal(err)
		}
	}
}
