// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository for weight
// initialization and synthetic workload generation.
//
// Determinism matters here: every experiment in the paper reproduction is
// seeded, so that baseline and Prompt Cache runs see exactly the same
// model weights and the same workloads, and so that results in
// EXPERIMENTS.md can be regenerated bit-for-bit. The generator is
// SplitMix64 (Steele et al., "Fast Splittable Pseudorandom Number
// Generators"), which is tiny, fast, and passes BigCrush when used as a
// 64-bit stream.
package rng

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator.
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// NewString returns a generator seeded from a string label, so that
// independent subsystems (e.g. per-layer weight init) can derive
// independent streams from human-readable names.
func NewString(label string) *RNG {
	// FNV-1a 64-bit.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return New(h)
}

// Split derives an independent child generator. The parent advances by one
// step; the child is seeded with a decorrelated function of that step.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in [lo, hi). It panics if hi <= lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi <= lo {
		panic("rng: IntRange with hi <= lo")
	}
	return lo + r.Intn(hi-lo)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform. Two uniforms are consumed per call; no state is cached so the
// stream stays splittable.
func (r *RNG) NormFloat64() float64 {
	// Avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormFloat32 returns a standard normal variate as float32.
func (r *RNG) NormFloat32() float32 {
	return float32(r.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly chosen element of items. It panics on an
// empty slice.
func Choice[T any](r *RNG, items []T) T {
	if len(items) == 0 {
		panic("rng: Choice on empty slice")
	}
	return items[r.Intn(len(items))]
}

// Sample returns k distinct elements of items in random order. If
// k >= len(items), a shuffled copy of all items is returned.
func Sample[T any](r *RNG, items []T, k int) []T {
	cp := make([]T, len(items))
	copy(cp, items)
	r.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	if k > len(cp) {
		k = len(cp)
	}
	return cp[:k]
}

// FillNormal fills dst with normal(0, std) float32 variates.
func (r *RNG) FillNormal(dst []float32, std float32) {
	for i := range dst {
		dst[i] = r.NormFloat32() * std
	}
}

// FillUniform fills dst with uniform [lo, hi) float32 variates.
func (r *RNG) FillUniform(dst []float32, lo, hi float32) {
	for i := range dst {
		dst[i] = lo + r.Float32()*(hi-lo)
	}
}
