package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestNewStringDeterministic(t *testing.T) {
	if NewString("layer0").Uint64() != NewString("layer0").Uint64() {
		t.Fatal("NewString not deterministic")
	}
	if NewString("layer0").Uint64() == NewString("layer1").Uint64() {
		t.Fatal("distinct labels produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first values")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	check := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(23)
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	s := Sample(r, items, 5)
	if len(s) != 5 {
		t.Fatalf("Sample returned %d items, want 5", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate %d in sample", v)
		}
		seen[v] = true
	}
	// Over-ask returns everything.
	if got := Sample(r, items, 100); len(got) != len(items) {
		t.Fatalf("over-sample returned %d items", len(got))
	}
}

func TestChoiceCoversAll(t *testing.T) {
	r := New(29)
	items := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[Choice(r, items)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Choice only hit %d/3 items", len(seen))
	}
}

func TestFillNormalStd(t *testing.T) {
	r := New(31)
	buf := make([]float32, 50000)
	r.FillNormal(buf, 0.02)
	var sumsq float64
	for _, v := range buf {
		sumsq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumsq / float64(len(buf)))
	if math.Abs(std-0.02) > 0.002 {
		t.Fatalf("FillNormal std %v, want ~0.02", std)
	}
}

func TestFillUniformBounds(t *testing.T) {
	r := New(37)
	buf := make([]float32, 10000)
	r.FillUniform(buf, -1, 1)
	for _, v := range buf {
		if v < -1 || v >= 1 {
			t.Fatalf("FillUniform out of bounds: %v", v)
		}
	}
}

func TestShuffleDeterministic(t *testing.T) {
	run := func() []int {
		r := New(41)
		a := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		r.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
		return a
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Shuffle not deterministic for identical seed")
		}
	}
}
