package bench

import (
	"encoding/json"
	"testing"
)

func TestMedianSpecPoints(t *testing.T) {
	mk := func(ns int64, tps, ac float64) []SpecPoint {
		return []SpecPoint{
			{Scenario: "TriviaQA", Mode: "solo", Backend: "parallel", NsPerOp: ns, TokensPerSec: tps, AcceptedPerStep: 1},
			{Scenario: "TriviaQA", Mode: "speculative", Backend: "parallel", NsPerOp: ns, TokensPerSec: tps * 1.1, AcceptedPerStep: ac},
		}
	}
	got, err := MedianSpecPoints([][]SpecPoint{
		mk(90, 100, 5), // one outlier run must not drag the median
		mk(10, 300, 2),
		mk(20, 200, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].NsPerOp != 20 || got[0].TokensPerSec != 200 {
		t.Fatalf("solo median = %+v", got[0])
	}
	if got[1].AcceptedPerStep != 3 {
		t.Fatalf("speculative median = %+v", got[1])
	}
	if _, err := MedianSpecPoints(nil); err == nil {
		t.Fatal("no runs should fail")
	}
	a, b := mk(1, 1, 1), mk(1, 1, 1)
	b[1].Scenario = "other"
	if _, err := MedianSpecPoints([][]SpecPoint{a, b}); err == nil {
		t.Fatal("mismatched runs should fail")
	}
}

// TestSpeculatePoints runs the real experiment on one scenario: the
// speculative cell must accept more than one token per lane-step, the
// solo and cold-draft cells exactly one, and the JSON payload must carry
// the gate's identity and metric fields under their wire names.
func TestSpeculatePoints(t *testing.T) {
	if testing.Short() {
		t.Skip("measured benchmark")
	}
	points, err := SpeculatePoints(DefaultSpecScenarios[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 { // scenario × {solo, speculative} + cold-draft pair
		t.Fatalf("got %d points", len(points))
	}
	byKey := map[string]SpecPoint{}
	for _, p := range points {
		byKey[p.Scenario+"/"+p.Mode] = p
		if p.TokensPerSec <= 0 || p.NsPerOp <= 0 {
			t.Errorf("unmeasured point: %+v", p)
		}
	}
	warm := byKey[DefaultSpecScenarios[0]+"/speculative"]
	if warm.AcceptedPerStep <= 1 {
		t.Errorf("warm draft accepted %.2f per step, want > 1", warm.AcceptedPerStep)
	}
	for _, key := range []string{DefaultSpecScenarios[0] + "/solo", coldDraftScenario + "/solo", coldDraftScenario + "/speculative"} {
		if p := byKey[key]; p.AcceptedPerStep != 1 {
			t.Errorf("%s accepted %.2f per step, want exactly 1", key, p.AcceptedPerStep)
		}
	}

	data, err := SpecPointsJSON(points)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scenario", "mode", "backend", "ns_per_op",
		"ms_per_op", "tokens_per_sec", "accepted_per_step"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("BENCH_spec.json point missing %q: %v", key, decoded[0])
		}
	}
}
