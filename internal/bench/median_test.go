package bench

import "testing"

func TestMedianServePoints(t *testing.T) {
	mk := func(ns, bs, as int64, ms float64) []ServePoint {
		return []ServePoint{
			{PrefixTokens: 64, Mode: "cached", NsPerOp: ns, BytesPerOp: bs, AllocsPerOp: as, MsPerOp: ms},
			{PrefixTokens: 64, Mode: "baseline", NsPerOp: ns * 10, BytesPerOp: bs, AllocsPerOp: as, MsPerOp: ms * 10},
		}
	}
	got, err := MedianServePoints([][]ServePoint{
		mk(300, 30, 3, 0.3), // one slow outlier run...
		mk(100, 10, 1, 0.1),
		mk(120, 12, 2, 0.12),
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...must not drag the result: the median picks the middle sample.
	if got[0].NsPerOp != 120 || got[0].BytesPerOp != 12 || got[0].AllocsPerOp != 2 || got[0].MsPerOp != 0.12 {
		t.Fatalf("cached median = %+v", got[0])
	}
	if got[1].NsPerOp != 1200 || got[1].Mode != "baseline" {
		t.Fatalf("baseline median = %+v", got[1])
	}
}

func TestMedianServePointsMismatch(t *testing.T) {
	a := []ServePoint{{PrefixTokens: 64, Mode: "cached"}}
	b := []ServePoint{{PrefixTokens: 128, Mode: "cached"}}
	if _, err := MedianServePoints([][]ServePoint{a, b}); err == nil {
		t.Fatal("mismatched runs should fail")
	}
	if _, err := MedianServePoints(nil); err == nil {
		t.Fatal("no runs should fail")
	}
}

func TestMedianDecodePoints(t *testing.T) {
	mk := func(ns int64, ts float64) []DecodePoint {
		return []DecodePoint{{Streams: 4, Mode: "fused", NsPerOp: ns, MsPerOp: float64(ns) / 1e6, TokensPerSec: ts}}
	}
	got, err := MedianDecodePoints([][]DecodePoint{mk(500, 50), mk(100, 900), mk(200, 200)})
	if err != nil {
		t.Fatal(err)
	}
	// Metrics take medians independently: ns and tokens/sec need not
	// come from the same run.
	if got[0].NsPerOp != 200 || got[0].TokensPerSec != 200 {
		t.Fatalf("median = %+v", got[0])
	}
	if _, err := MedianDecodePoints([][]DecodePoint{mk(1, 1), {}}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}
