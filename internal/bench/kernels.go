package bench

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// KernelPoint is one measured (kernel × backend) cell of the kernel
// microbenchmark experiment, shaped for machine-readable tracking of the
// perf trajectory across PRs (BENCH_kernels.json). Both backends run the
// same shapes on the same deterministic data, so backend-to-backend and
// PR-to-PR deltas are pure kernel scheduling.
type KernelPoint struct {
	Kernel  string  `json:"kernel"` // "matmul" | "matvect" | "output_head" | "attend"
	Backend string  `json:"backend"`
	NsPerOp int64   `json:"ns_per_op"`
	MsPerOp float64 `json:"ms_per_op"`
}

// Kernel microbenchmark shapes: sized like one layer of the test-scale
// models under a chunked prefill (matmul), a decode-step weight
// application (matvect), a four-lane fused output head (output_head) and
// a chunk attention block over a warm cache (attend) — big enough that
// the parallel backend's sharding engages on multicore hosts, small
// enough for CI.
const (
	kbMatRows, kbMatK, kbMatCols = 128, 256, 256
	kbVecIn, kbVecOut            = 2048, 512
	kbVocab, kbDim, kbLanes      = 8192, 64, 4
	kbAttN, kbAttPast            = 32, 256
	kbAttHeads, kbAttHeadDim     = 4, 16
)

// kernelData bundles the deterministic inputs every kernel run reuses.
type kernelData struct {
	a, b, dst *tensor.Matrix
	w         *tensor.Matrix
	vin, vout []float32
	emb       *tensor.Matrix
	hs, dsts  [][]float32
	att       tensor.AttendArgs
	q, out    *tensor.Matrix
	span      tensor.Span
	positions []int
	scores    []float32
}

func newKernelData() *kernelData {
	d := &kernelData{}
	fill := func(label string, m *tensor.Matrix) *tensor.Matrix {
		rng.NewString("bench/kernels/"+label).FillNormal(m.Data, 0.06)
		return m
	}
	d.a = fill("a", tensor.NewMatrix(kbMatRows, kbMatK))
	d.b = fill("b", tensor.NewMatrix(kbMatK, kbMatCols))
	d.dst = tensor.NewMatrix(kbMatRows, kbMatCols)

	d.w = fill("w", tensor.NewMatrix(kbVecIn, kbVecOut))
	d.vin = make([]float32, kbVecIn)
	rng.NewString("bench/kernels/vin").FillNormal(d.vin, 0.06)
	d.vout = make([]float32, kbVecOut)

	d.emb = fill("emb", tensor.NewMatrix(kbVocab, kbDim))
	for k := 0; k < kbLanes; k++ {
		h := make([]float32, kbDim)
		rng.NewString(fmt.Sprintf("bench/kernels/h%d", k)).FillNormal(h, 0.06)
		d.hs = append(d.hs, h)
		d.dsts = append(d.dsts, make([]float32, kbVocab))
	}

	width := kbAttHeads * kbAttHeadDim
	rows := kbAttPast + kbAttN
	d.q = fill("q", tensor.NewMatrix(kbAttN, width))
	d.out = tensor.NewMatrix(kbAttN, width)
	kv := tensor.NewMatrix(rows, 2*width)
	fill("kv", kv)
	d.span = tensor.Span{K: kv.Data[:rows*width], V: kv.Data[rows*width:], Pos: make([]int, rows)}
	for i := range d.span.Pos {
		d.span.Pos[i] = i
	}
	d.positions = make([]int, kbAttN)
	for i := range d.positions {
		d.positions[i] = kbAttPast + i
	}
	d.scores = make([]float32, rows)
	d.att = tensor.AttendArgs{
		Q: d.q, Out: d.out, Spans: []tensor.Span{d.span},
		Past: kbAttPast, Positions: d.positions,
		NHeads: kbAttHeads, Group: 1, HeadDim: kbAttHeadDim, Width: width,
		InvSqrt: 0.25, Scores: d.scores,
	}
	return d
}

// kernelRunners maps kernel ids to one-op closures over shared data.
func kernelRunners(bk tensor.Backend, d *kernelData) []struct {
	id string
	fn func()
} {
	return []struct {
		id string
		fn func()
	}{
		{"matmul", func() { bk.MatMul(d.dst, d.a, d.b) }},
		{"matvect", func() { bk.MatVecT(d.vout, d.w, d.vin) }},
		{"output_head", func() { bk.OutputHead(d.dsts, d.emb, d.hs) }},
		{"attend", func() { bk.AttendRowBlock(&d.att) }},
	}
}

// KernelPoints measures every kernel under every selectable backend —
// both pinned by name so point identities are stable across machines
// (on a single-core host "parallel" degrades to the scalar schedule and
// the two rows simply converge).
func KernelPoints() ([]KernelPoint, error) {
	d := newKernelData()
	var out []KernelPoint
	for _, name := range tensor.Backends() {
		bk, err := tensor.Select(name)
		if err != nil {
			return nil, err
		}
		for _, k := range kernelRunners(bk, d) {
			fn := k.fn
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fn()
				}
			})
			out = append(out, KernelPoint{
				Kernel:  k.id,
				Backend: name,
				NsPerOp: r.NsPerOp(),
				MsPerOp: float64(r.NsPerOp()) / 1e6,
			})
		}
	}
	return out, nil
}

// Kernels renders the kernel microbenchmarks as a Report. The same
// points serialize to BENCH_kernels.json via
// `pcbench -json BENCH_kernels.json kernels`.
func Kernels() (*Report, error) {
	rep, _, err := KernelsRun()
	return rep, err
}

// KernelsRun measures the experiment once and returns both the printable
// report and the machine-readable points.
func KernelsRun() (*Report, []KernelPoint, error) {
	points, err := KernelPoints()
	if err != nil {
		return nil, nil, err
	}
	return KernelReport(points), points, nil
}

// KernelReport renders measured kernel points as a printable Report.
func KernelReport(points []KernelPoint) *Report {
	rep := &Report{
		ID:     "kernels",
		Title:  "Tensor kernel microbenchmarks per backend",
		Header: []string{"Kernel", "Backend", "ms/op"},
		Notes: []string{
			fmt.Sprintf("matmul %d×%d·%d×%d, matvect %d→%d, output_head %d vocab × %d lanes, attend n=%d past=%d heads=%d.",
				kbMatRows, kbMatK, kbMatK, kbMatCols, kbVecIn, kbVecOut, kbVocab, kbLanes, kbAttN, kbAttPast, kbAttHeads),
			"Backends are bit-identical; deltas between them are pure scheduling.",
		},
	}
	for _, p := range points {
		rep.Rows = append(rep.Rows, []string{
			p.Kernel, p.Backend, fmt.Sprintf("%.3f", p.MsPerOp),
		})
	}
	return rep
}

// KernelPointsJSON serializes measured points as indented JSON, the
// payload of BENCH_kernels.json.
func KernelPointsJSON(points []KernelPoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}
