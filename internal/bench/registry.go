package bench

import "fmt"

// Run executes an experiment by id. Known ids: fig3, fig3-all, fig4,
// fig4-all, fig5, fig6, fig7, fig8, table1, table1-quick, table2, sec54,
// ablation-scaffold, ablation-paged, ablation-concat, serve, decode,
// speculate, kernels, load, engine, engine-serving, serving, quant,
// throughput, breakdown.
func Run(id string) (*Report, error) {
	switch id {
	case "fig3":
		return Fig3(false), nil
	case "fig3-all":
		return Fig3(true), nil
	case "fig4":
		return Fig4(false), nil
	case "fig4-all":
		return Fig4(true), nil
	case "fig5":
		return Fig5(), nil
	case "fig6":
		return Fig6()
	case "fig7":
		return Fig7()
	case "fig8":
		return Fig8()
	case "table1":
		return Table1(AccuracyConfig{Seed: 7})
	case "table1-quick":
		return Table1(AccuracyConfig{Seed: 7, Samples: 2, DocSentences: 5, MaxNewTokens: 10})
	case "table1-all21":
		return Table1Appendix(AccuracyConfig{Seed: 7, Samples: 2, DocSentences: 6, MaxNewTokens: 12})
	case "table2":
		return Table2(), nil
	case "sec54":
		return Sec54(), nil
	case "ablation-scaffold":
		return AblationScaffold()
	case "ablation-paged":
		return AblationPagedSharing(), nil
	case "ablation-concat":
		return AblationConcat(), nil
	case "ablation-masking":
		return AblationMasking()
	case "serve":
		return ServeCachedPrefix()
	case "decode":
		return DecodeContinuous()
	case "speculate":
		return Speculate()
	case "kernels":
		return Kernels()
	case "load":
		return LoadOverload()
	case "engine":
		return EngineLatency()
	case "engine-serving":
		return EngineServing()
	case "serving":
		return Serving()
	case "quant":
		return Quant()
	case "throughput":
		return Throughput(), nil
	case "breakdown":
		return Breakdown(), nil
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (see `pcbench list`)", id)
	}
}

// Experiments lists all runnable experiment ids with one-line summaries.
func Experiments() [][2]string {
	return [][2]string{
		{"fig3", "GPU TTFT across 8 LongBench datasets × 3 GPUs (Figure 3)"},
		{"fig3-all", "Figure 3 over all 21 LongBench datasets (appendix)"},
		{"fig4", "CPU TTFT across 8 LongBench datasets × 2 CPUs (Figure 4)"},
		{"fig4-all", "Figure 4 over all 21 LongBench datasets (appendix)"},
		{"fig5", "Cache advantage vs sequence length (Figure 5)"},
		{"fig6", "Code generation use case (Figure 6)"},
		{"fig7", "Personalization use case (Figure 7)"},
		{"fig8", "Parameterized prompts use case (Figure 8)"},
		{"table1", "Accuracy baseline-vs-cached over 8 datasets × 4 models (Table 1)"},
		{"table1-quick", "Table 1 at reduced sample count"},
		{"table1-all21", "Appendix accuracy over all 21 datasets, one model"},
		{"table2", "Memory overhead per cached token (Table 2)"},
		{"sec54", "Model-size and end-to-end latency analysis (§5.4)"},
		{"ablation-scaffold", "Masking effect vs scaffolding (§3.3)"},
		{"ablation-paged", "Batch memory with paged module sharing (§3.4)"},
		{"ablation-concat", "Buffered vs naive KV concatenation (§4.2)"},
		{"ablation-masking", "Masking severity vs module granularity (§3.3)"},
		{"serve", "Cached-prefix TTFT + allocs, zero-copy views vs baseline (-json for BENCH_serve.json)"},
		{"decode", "Continuous-batching decode throughput, fused vs sequential (-json for BENCH_decode.json)"},
		{"speculate", "Speculative decoding on LongBench replays, draft-and-verify vs solo (-json for BENCH_spec.json)"},
		{"kernels", "Tensor kernel microbenchmarks per backend (-json for BENCH_kernels.json)"},
		{"load", "Overload behavior at 1× and 4× capacity: TTFT tails, shed rate, queue depth (-json for BENCH_load.json)"},
		{"engine", "Measured wall-clock TTFT on the Go engine (Fig. 5 shape)"},
		{"engine-serving", "Measured Zipf trace replay with tiered cache on the engine"},
		{"serving", "Two-tier serving simulation with replacement policies (§6)"},
		{"quant", "int8 module-state compression vs fp32 (§6)"},
		{"throughput", "Batch throughput vs module sharing (§3.4/§5.4)"},
		{"breakdown", "Cached TTFT cost decomposition (model inspection)"},
	}
}
