// Package bench is the experiment harness: one entry point per table and
// figure in the paper's evaluation (§5), each returning a Report that
// prints the same rows/series the paper shows. Latency experiments at
// paper scale (Figs. 3–5, §5.4, Figs. 6–8 timings) use the calibrated
// analytic hardware model in internal/hw; output-quality experiments
// (Table 1, Figs. 6–8 outputs) run the real Go engine end to end.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report is one experiment's printable result.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the report as comma-separated values (quotes escaped
// minimally; our cells contain no commas or quotes).
func (r *Report) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Header, ","))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func ms(d float64) string {
	return fmt.Sprintf("%.1f", d*1e3)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func f1x(v float64) string { return fmt.Sprintf("%.1fx", v) }
