package bench

import (
	"context"
	"fmt"

	"repro/internal/longbench"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// AccuracyConfig scales the Table-1 run. Defaults keep the full 4-model ×
// 8-dataset grid at engine-friendly document sizes.
type AccuracyConfig struct {
	Seed         uint64
	Samples      int // prompts per dataset (default 4)
	DocSentences int // sentences per document (default 9)
	MaxNewTokens int // generation length (default 20)
}

func (c *AccuracyConfig) defaults() {
	if c.Samples <= 0 {
		c.Samples = 4
	}
	if c.DocSentences <= 0 {
		c.DocSentences = 9
	}
	if c.MaxNewTokens <= 0 {
		c.MaxNewTokens = 20
	}
}

// table1Vocab sizes the engine vocabulary for accuracy runs.
const table1Vocab = tokenizer.WordBase + 2048

// Table1Models returns the four architecture stand-ins of Table 1, in
// paper column order: Llama2 7B, Llama2 13B, MPT 7B, Falcon 7B.
func Table1Models(seed uint64) []model.Config {
	return []model.Config{
		model.LlamaStyle(table1Vocab, seed),
		model.LlamaStyleLarge(table1Vocab, seed+1),
		model.MPTStyle(table1Vocab, seed+2),
		model.FalconStyle(table1Vocab, seed+3),
	}
}

// scoreFor applies the dataset's Table-1 metric.
func scoreFor(d longbench.Dataset, prediction, reference string) float64 {
	switch d.Metric {
	case "Rouge L":
		return metrics.RougeL(prediction, reference)
	case "Acc":
		return metrics.Contains(prediction, reference)
	case "EditSim":
		return metrics.EditSim(prediction, reference)
	default:
		return metrics.F1(prediction, reference)
	}
}

// Table1Appendix runs the accuracy comparison over the full 21-dataset
// LongBench roster (the appendix scope) with one architecture, at
// engine-friendly document sizes.
func Table1Appendix(cfg AccuracyConfig) (*Report, error) {
	cfg.defaults()
	rep := &Report{
		ID:     "table1-all21",
		Title:  "Appendix accuracy: all 21 LongBench datasets (llama-style)",
		Header: []string{"Dataset", "Category", "Metric", "Baseline", "Cached", "LogitCos"},
	}
	m, err := model.New(model.LlamaStyle(table1Vocab, cfg.Seed+500))
	if err != nil {
		return nil, err
	}
	client := promptcache.New(m)
	ctx := context.Background()
	for _, d := range longbench.All21() {
		w := longbench.Generate(d, longbench.GenConfig{
			Seed: cfg.Seed, NumSamples: cfg.Samples,
			PoolDocs: 3, DocsPerSample: 2, DocSentences: cfg.DocSentences,
		})
		if _, err := client.RegisterSchema(w.Schema); err != nil {
			return nil, fmt.Errorf("appendix %s: %w", d.Name, err)
		}
		var baseScores, cachedScores, cosines []float64
		for _, s := range w.Samples {
			cres, err := client.Infer(ctx, promptcache.Request{Prompt: s.Prompt, MaxTokens: cfg.MaxNewTokens})
			if err != nil {
				return nil, err
			}
			bres, err := client.Infer(ctx, promptcache.Request{Prompt: s.Prompt, Baseline: true, MaxTokens: cfg.MaxNewTokens})
			if err != nil {
				return nil, err
			}
			cachedScores = append(cachedScores, scoreFor(d, cres.Text, s.Reference))
			baseScores = append(baseScores, scoreFor(d, bres.Text, s.Reference))
			cosines = append(cosines, tensor.CosineSimilarity(cres.Logits, bres.Logits))
		}
		rep.Rows = append(rep.Rows, []string{
			d.Name, d.Category.String(), d.Metric,
			f3(metrics.Mean(baseScores)), f3(metrics.Mean(cachedScores)), f3(metrics.Mean(cosines)),
		})
	}
	return rep, nil
}

// Table1 regenerates Table 1 (§5.3): for each of the eight LongBench
// datasets and four transformer architectures, score greedy generations
// with and without Prompt Cache against the workload references. A
// fidelity column (token overlap between the cached and baseline
// generations of the *same* model) directly quantifies the §3.3 masking
// approximation, which is the table's real claim.
func Table1(cfg AccuracyConfig) (*Report, error) {
	cfg.defaults()
	rep := &Report{
		ID:     "table1",
		Title:  "Accuracy on LongBench (baseline vs Prompt Cache, greedy sampling)",
		Header: []string{"Dataset", "Metric", "Model", "Baseline", "Cached", "LogitCos", "GenOverlap"},
		Notes: []string{
			"Models are seeded architecture stand-ins (see DESIGN.md): absolute reference scores need trained weights and sit near zero for both columns; the paired Baseline≈Cached equality is the reproduced claim.",
			"LogitCos = cosine of first-token logits cached-vs-baseline (the direct §3.3 masking measurement); GenOverlap = token overlap of the greedy generations, which amplifies any divergence.",
		},
	}
	for _, mcfg := range Table1Models(cfg.Seed + 100) {
		m, err := model.New(mcfg)
		if err != nil {
			return nil, err
		}
		client := promptcache.New(m)
		ctx := context.Background()
		for _, d := range longbench.Figure8() {
			w := longbench.Generate(d, longbench.GenConfig{
				Seed:          cfg.Seed,
				NumSamples:    cfg.Samples,
				PoolDocs:      4,
				DocsPerSample: 2,
				DocSentences:  cfg.DocSentences,
			})
			if _, err := client.RegisterSchema(w.Schema); err != nil {
				return nil, fmt.Errorf("table1 %s/%s: %w", mcfg.Name, d.Name, err)
			}
			var baseScores, cachedScores, fidelities, cosines []float64
			for _, s := range w.Samples {
				cres, err := client.Infer(ctx, promptcache.Request{Prompt: s.Prompt, MaxTokens: cfg.MaxNewTokens})
				if err != nil {
					return nil, fmt.Errorf("table1 serve %s/%s: %w", mcfg.Name, d.Name, err)
				}
				bres, err := client.Infer(ctx, promptcache.Request{Prompt: s.Prompt, Baseline: true, MaxTokens: cfg.MaxNewTokens})
				if err != nil {
					return nil, err
				}
				cachedScores = append(cachedScores, scoreFor(d, cres.Text, s.Reference))
				baseScores = append(baseScores, scoreFor(d, bres.Text, s.Reference))
				fidelities = append(fidelities, metrics.TokenOverlap(cres.Tokens, bres.Tokens))
				cosines = append(cosines, tensor.CosineSimilarity(cres.Logits, bres.Logits))
			}
			rep.Rows = append(rep.Rows, []string{
				d.Name, d.Metric, mcfg.Name,
				f3(metrics.Mean(baseScores)),
				f3(metrics.Mean(cachedScores)),
				f3(metrics.Mean(cosines)),
				f3(metrics.Mean(fidelities)),
			})
		}
	}
	return rep, nil
}
