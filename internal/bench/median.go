package bench

import (
	"fmt"
	"sort"
)

// Single benchmark runs on shared CI machines are noisy; the perf gate
// wants a stable point, not a lucky or unlucky sample. MedianServePoints
// and MedianDecodePoints collapse N runs of the same experiment into one
// point list: per identity (mode + size), each metric independently
// takes its median across runs — the usual way to de-noise benchmark
// repetitions without letting one stalled run drag the mean.

func medianInt64(v []int64) int64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[len(v)/2]
}

func medianFloat64(v []float64) float64 {
	sort.Float64s(v)
	return v[len(v)/2]
}

// MedianServePoints merges N runs of the serve experiment. Every run
// must report the same points (same modes and prefix sizes) in the same
// order — they come from the same config, so a mismatch is a bug.
func MedianServePoints(runs [][]ServePoint) ([]ServePoint, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("bench: no runs to merge")
	}
	out := append([]ServePoint(nil), runs[0]...)
	for i := range out {
		ns := make([]int64, 0, len(runs))
		bs := make([]int64, 0, len(runs))
		as := make([]int64, 0, len(runs))
		ms := make([]float64, 0, len(runs))
		for _, run := range runs {
			if len(run) != len(out) || run[i].Mode != out[i].Mode || run[i].PrefixTokens != out[i].PrefixTokens {
				return nil, fmt.Errorf("bench: serve runs disagree on point %d", i)
			}
			ns = append(ns, run[i].NsPerOp)
			bs = append(bs, run[i].BytesPerOp)
			as = append(as, run[i].AllocsPerOp)
			ms = append(ms, run[i].MsPerOp)
		}
		out[i].NsPerOp = medianInt64(ns)
		out[i].BytesPerOp = medianInt64(bs)
		out[i].AllocsPerOp = medianInt64(as)
		out[i].MsPerOp = medianFloat64(ms)
	}
	return out, nil
}

// MedianLoadPoints merges N runs of the load experiment. OfferedRPS is
// calibrated per run, so it takes the median like the measured metrics.
func MedianLoadPoints(runs [][]LoadPoint) ([]LoadPoint, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("bench: no runs to merge")
	}
	out := append([]LoadPoint(nil), runs[0]...)
	for i := range out {
		var rps, p50, p95, p99, tps, shed []float64
		var depth []int64
		for _, run := range runs {
			if len(run) != len(out) || run[i].Arrival != out[i].Arrival || run[i].LoadMult != out[i].LoadMult {
				return nil, fmt.Errorf("bench: load runs disagree on point %d", i)
			}
			rps = append(rps, run[i].OfferedRPS)
			p50 = append(p50, run[i].P50TTFTMs)
			p95 = append(p95, run[i].P95TTFTMs)
			p99 = append(p99, run[i].P99TTFTMs)
			tps = append(tps, run[i].TokensPerSec)
			shed = append(shed, run[i].ShedRate)
			depth = append(depth, run[i].MaxQueueDepth)
		}
		out[i].OfferedRPS = medianFloat64(rps)
		out[i].P50TTFTMs = medianFloat64(p50)
		out[i].P95TTFTMs = medianFloat64(p95)
		out[i].P99TTFTMs = medianFloat64(p99)
		out[i].TokensPerSec = medianFloat64(tps)
		out[i].ShedRate = medianFloat64(shed)
		out[i].MaxQueueDepth = medianInt64(depth)
	}
	return out, nil
}

// MedianDecodePoints merges N runs of the decode experiment.
func MedianDecodePoints(runs [][]DecodePoint) ([]DecodePoint, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("bench: no runs to merge")
	}
	out := append([]DecodePoint(nil), runs[0]...)
	for i := range out {
		ns := make([]int64, 0, len(runs))
		ms := make([]float64, 0, len(runs))
		ts := make([]float64, 0, len(runs))
		for _, run := range runs {
			if len(run) != len(out) || run[i].Mode != out[i].Mode || run[i].Streams != out[i].Streams ||
				run[i].Backend != out[i].Backend {
				return nil, fmt.Errorf("bench: decode runs disagree on point %d", i)
			}
			ns = append(ns, run[i].NsPerOp)
			ms = append(ms, run[i].MsPerOp)
			ts = append(ts, run[i].TokensPerSec)
		}
		out[i].NsPerOp = medianInt64(ns)
		out[i].MsPerOp = medianFloat64(ms)
		out[i].TokensPerSec = medianFloat64(ts)
	}
	return out, nil
}

// MedianKernelPoints merges N runs of the kernel microbenchmarks.
func MedianKernelPoints(runs [][]KernelPoint) ([]KernelPoint, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("bench: no runs to merge")
	}
	out := append([]KernelPoint(nil), runs[0]...)
	for i := range out {
		ns := make([]int64, 0, len(runs))
		ms := make([]float64, 0, len(runs))
		for _, run := range runs {
			if len(run) != len(out) || run[i].Kernel != out[i].Kernel || run[i].Backend != out[i].Backend {
				return nil, fmt.Errorf("bench: kernel runs disagree on point %d", i)
			}
			ns = append(ns, run[i].NsPerOp)
			ms = append(ms, run[i].MsPerOp)
		}
		out[i].NsPerOp = medianInt64(ns)
		out[i].MsPerOp = medianFloat64(ms)
	}
	return out, nil
}
