package bench

import (
	"encoding/json"
	"testing"
)

func TestMedianLoadPoints(t *testing.T) {
	mk := func(p99 float64, shed float64, depth int64) []LoadPoint {
		return []LoadPoint{
			{Mode: "load", Arrival: "poisson", LoadMult: 1, P99TTFTMs: p99, ShedRate: shed / 10, MaxQueueDepth: depth},
			{Mode: "load", Arrival: "poisson", LoadMult: 4, P99TTFTMs: p99 * 2, ShedRate: shed, MaxQueueDepth: depth},
		}
	}
	got, err := MedianLoadPoints([][]LoadPoint{
		mk(90, 0.9, 8), // one bad run must not drag the median
		mk(10, 0.1, 2),
		mk(20, 0.5, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].P99TTFTMs != 20 || got[0].ShedRate != 0.05 || got[0].MaxQueueDepth != 4 {
		t.Fatalf("1× median = %+v", got[0])
	}
	if got[1].LoadMult != 4 || got[1].P99TTFTMs != 40 || got[1].ShedRate != 0.5 {
		t.Fatalf("4× median = %+v", got[1])
	}
	if _, err := MedianLoadPoints(nil); err == nil {
		t.Fatal("no runs should fail")
	}
	a := mk(1, 0.1, 1)
	b := mk(1, 0.1, 1)
	b[1].LoadMult = 8
	if _, err := MedianLoadPoints([][]LoadPoint{a, b}); err == nil {
		t.Fatal("mismatched runs should fail")
	}
}

// TestLoadOverloadPoints runs the real load experiment small: the 4×
// point must shed more and tail no better than the 1× point, nothing
// may hard-fail, and the JSON payload must carry the gate's identity
// and metric fields under their wire names.
func TestLoadOverloadPoints(t *testing.T) {
	points, err := LoadOverloadPoints([]int{1, 4}, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	p1, p4 := points[0], points[1]
	if p1.LoadMult != 1 || p4.LoadMult != 4 || p1.Arrival != "poisson" || p1.Mode != "load" {
		t.Fatalf("identities wrong: %+v %+v", p1, p4)
	}
	if p4.ShedRate <= p1.ShedRate {
		t.Errorf("4× load should shed more than 1×: %v vs %v", p4.ShedRate, p1.ShedRate)
	}
	if p4.ShedRate == 0 {
		t.Error("4× overload never shed — admission gate not engaged")
	}
	for _, p := range points {
		if p.P50TTFTMs <= 0 || p.P99TTFTMs < p.P95TTFTMs || p.P95TTFTMs < p.P50TTFTMs {
			t.Errorf("TTFT percentiles inconsistent: %+v", p)
		}
		if p.TokensPerSec <= 0 {
			t.Errorf("no throughput under load: %+v", p)
		}
	}

	data, err := LoadPointsJSON(points)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mode", "arrival", "load_mult", "offered_rps",
		"p50_ttft_ms", "p95_ttft_ms", "p99_ttft_ms", "tokens_per_sec", "shed_rate", "max_queue_depth"} {
		if _, ok := decoded[0][key]; !ok {
			t.Errorf("BENCH_load.json point missing %q: %v", key, decoded[0])
		}
	}
}
