package bench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// AblationScaffold quantifies the §3.3 attention-masking approximation and
// its scaffolding antidote: logit distance and generation overlap versus
// the full-attention baseline, with modules encoded independently versus
// co-encoded as a scaffold.
func AblationScaffold() (*Report, error) {
	schema := `<schema name="ablation">
	  <module name="clause-a">The first clause sets the payment schedule to monthly installments of fixed size.</module>
	  <module name="clause-b">The second clause voids the first clause whenever payments lapse for two periods.</module>
	  <scaffold name="pair" modules="clause-a clause-b"/>
	</schema>`
	prompt := `<prompt schema="ablation"><clause-a/><clause-b/><user>Explain how the clauses interact.</user></prompt>`

	rep := &Report{
		ID:     "ablation-scaffold",
		Title:  "Masking effect vs scaffolding (§3.3 ablation)",
		Header: []string{"Model", "Encoding", "LogitCosine", "GenOverlap"},
		Notes: []string{
			"Co-encoded scaffolds share the attention span and must match the baseline exactly (cosine 1.0).",
		},
	}
	for _, cfg := range []model.Config{
		model.LlamaStyle(tokenizer.WordBase+2048, 31),
		model.MPTStyle(tokenizer.WordBase+2048, 32),
	} {
		m, err := model.New(cfg)
		if err != nil {
			return nil, err
		}
		client := promptcache.New(m)
		if _, err := client.RegisterSchema(schema); err != nil {
			return nil, err
		}
		ctx := context.Background()
		base, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, Baseline: true, MaxTokens: 16})
		if err != nil {
			return nil, err
		}
		for _, mode := range []struct {
			label    string
			disabled bool
		}{{"scaffold", false}, {"independent", true}} {
			res, err := client.Infer(ctx, promptcache.Request{
				Prompt: prompt, DisableScaffolds: mode.disabled, MaxTokens: 16,
			})
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{
				cfg.Name, mode.label,
				f3(tensor.CosineSimilarity(res.Logits, base.Logits)),
				f3(metrics.TokenOverlap(res.Tokens, base.Tokens)),
			})
		}
	}
	return rep, nil
}

// AblationMasking measures how the §3.3 attention-mask approximation
// grows with module granularity: the same ~160-token context split into
// 1, 2, 4 or 8 independently encoded modules, compared against the
// full-attention baseline. One module is exact; more modules mask more
// cross-attention.
func AblationMasking() (*Report, error) {
	words := []string{"harbor", "archive", "council", "garden", "bridge",
		"records", "railway", "festival", "market", "castle"}
	const totalWords = 160
	rep := &Report{
		ID:     "ablation-masking",
		Title:  "Masking severity vs module granularity (same context, more modules)",
		Header: []string{"Modules", "LogitCosine vs baseline"},
		Notes: []string{
			"1 module degenerates to prefix sharing (exact); finer splits mask more cross-module attention.",
		},
	}
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 929))
	if err != nil {
		return nil, err
	}
	r := rng.New(929)
	body := make([]string, totalWords)
	for i := range body {
		body[i] = rng.Choice(r, words)
	}
	prevCos := 2.0
	for _, parts := range []int{1, 2, 4, 8} {
		client := promptcache.New(m)
		var sb strings.Builder
		fmt.Fprintf(&sb, `<schema name="mask%d">`, parts)
		per := totalWords / parts
		var imports strings.Builder
		for p := 0; p < parts; p++ {
			fmt.Fprintf(&sb, `<module name="part%d">%s</module>`, p,
				strings.Join(body[p*per:(p+1)*per], " "))
			fmt.Fprintf(&imports, "<part%d/>", p)
		}
		sb.WriteString(`</schema>`)
		if _, err := client.RegisterSchema(sb.String()); err != nil {
			return nil, err
		}
		prompt := fmt.Sprintf(`<prompt schema="mask%d">%s summarize everything</prompt>`, parts, imports.String())
		ctx := context.Background()
		cres, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, PrefillOnly: true})
		if err != nil {
			return nil, err
		}
		bres, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, Baseline: true, PrefillOnly: true})
		if err != nil {
			return nil, err
		}
		cos := tensor.CosineSimilarity(cres.Logits, bres.Logits)
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%d", parts), f3(cos)})
		_ = prevCos
		prevCos = cos
	}
	return rep, nil
}

// AblationPagedSharing reproduces the §3.4/§5.4 batch-memory argument:
// 100 requests sharing a 1K-token module out of 2K-token prompts halve
// the KV footprint when module blocks are shared via the paged pool.
func AblationPagedSharing() *Report {
	m := hw.Llama7B()
	const (
		requests     = 100
		moduleTokens = 1000
		uniqueTokens = 1000
		blockTokens  = 16
	)
	pool := kvcache.NewPagedPool(blockTokens, m.BytesPerToken())
	// Engine-shape payloads are irrelevant for accounting; use a minimal
	// cache shaped 1 layer × 1 dim and count bytes via the pool's rate.
	mkKV := func(tokens, posBase int) *kvcache.Cache {
		kv := kvcache.New(1, 1, tokens)
		for i := 0; i < tokens; i++ {
			kv.AppendToken(0, []float32{0}, []float32{0})
			kv.AppendPos(posBase + i)
		}
		return kv
	}
	shared := pool.Store(mkKV(moduleTokens, 0))
	for r := 1; r < requests; r++ {
		_ = pool.Retain(shared)
	}
	for r := 0; r < requests; r++ {
		_ = pool.Store(mkKV(uniqueTokens, moduleTokens))
	}
	phys := pool.PhysicalBytes()
	logical := pool.LogicalBytes()
	rep := &Report{
		ID:     "ablation-paged",
		Title:  "Batch memory with shared prompt modules (100 × 2K-token prompts, 1K shared)",
		Header: []string{"Accounting", "GiB"},
		Notes: []string{
			"Paper §3.4: sharing the 1K module halves the batch KV footprint.",
		},
	}
	gib := func(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<30)) }
	rep.Rows = append(rep.Rows,
		[]string{"Without sharing (logical)", gib(logical)},
		[]string{"With paged sharing (physical)", gib(phys)},
		[]string{"Savings", fmt.Sprintf("%.0f%%", 100*(1-float64(phys)/float64(logical)))},
	)
	return rep
}

// AblationConcat measures the buffered concatenation operator (§4.2)
// against naive concat-into-fresh-buffers, in bytes allocated to
// assemble a 32-module prompt.
func AblationConcat() *Report {
	const (
		modules = 32
		tokens  = 64
		nLayers = 4
		kvDim   = 64
	)
	parts := make([]*kvcache.Cache, modules)
	for i := range parts {
		kv := kvcache.New(nLayers, kvDim, tokens)
		row := make([]float32, kvDim)
		for t := 0; t < tokens; t++ {
			for l := 0; l < nLayers; l++ {
				kv.AppendToken(l, row, row)
			}
			kv.AppendPos(i*tokens + t)
		}
		parts[i] = kv
	}
	// Naive: each append creates a fresh exact-size buffer (PyTorch cat
	// semantics) — total allocation is quadratic in module count.
	naive := 0
	acc := kvcache.New(nLayers, kvDim, 0)
	for _, p := range parts {
		fresh := kvcache.New(nLayers, kvDim, acc.Len()+p.Len())
		fresh.AppendCache(acc)
		fresh.AppendCache(p)
		naive += fresh.Len() * nLayers * kvDim * 2 * 4
		acc = fresh
	}
	// Buffered: one pre-sized buffer (kvcache.Concat).
	buffered := modules * tokens * nLayers * kvDim * 2 * 4
	rep := &Report{
		ID:     "ablation-concat",
		Title:  "Buffered vs naive concatenation (32 modules × 64 tokens)",
		Header: []string{"Strategy", "Bytes allocated", "Relative"},
	}
	rep.Rows = append(rep.Rows,
		[]string{"Naive (fresh tensor per concat)", fmt.Sprintf("%d", naive), fmt.Sprintf("%.1fx", float64(naive)/float64(buffered))},
		[]string{"Buffered (§4.2)", fmt.Sprintf("%d", buffered), "1.0x"},
	)
	return rep
}
