package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// The load experiment is the overload acceptance turned into a tracked
// number: a seeded Poisson arrival stream replayed open-loop against an
// in-process server with admission control, once at the measured
// capacity (1×) and once far past it (4×). At 1× the server should
// barely shed; at 4× it must shed heavily while keeping tail TTFT
// bounded for the requests it admits — graceful degradation, not
// collapse. BENCH_load.json pins both points across PRs.

// Admission bounds for the load experiment. Queue = 2× slots keeps the
// retry-after estimate meaningful without hiding overload in queueing.
const (
	loadSlots = 4
	loadQueue = 8
)

// LoadPoint is one measured load cell (arrival distribution × offered
// load multiple), shaped for BENCH_load.json.
type LoadPoint struct {
	Mode     string `json:"mode"` // always "load"
	Arrival  string `json:"arrival"`
	LoadMult int    `json:"load_mult"` // offered load as a multiple of capacity
	// OfferedRPS is this run's calibrated offered rate — informational
	// (machine-dependent), not a gated metric.
	OfferedRPS    float64 `json:"offered_rps"`
	P50TTFTMs     float64 `json:"p50_ttft_ms"`
	P95TTFTMs     float64 `json:"p95_ttft_ms"`
	P99TTFTMs     float64 `json:"p99_ttft_ms"`
	TokensPerSec  float64 `json:"tokens_per_sec"`
	ShedRate      float64 `json:"shed_rate"`
	MaxQueueDepth int64   `json:"max_queue_depth"`
}

// DefaultLoadMults are the offered-load multiples the experiment runs:
// at capacity, and the ISSUE's ≥4× overload acceptance point.
var DefaultLoadMults = []int{1, 4}

// DefaultLoadRequests sizes each replay; ~1s of offered traffic at 1×.
const DefaultLoadRequests = 160

// LoadOverloadPoints calibrates the server's serve capacity, then
// replays seeded Poisson arrivals at the given multiples of it.
func LoadOverloadPoints(mults []int, requests int) ([]LoadPoint, error) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 1234))
	if err != nil {
		return nil, err
	}
	client := promptcache.New(m,
		promptcache.WithDecodeScheduler(loadSlots),
		promptcache.WithAdmission(promptcache.AdmissionConfig{
			MaxConcurrent: loadSlots, MaxQueue: loadQueue,
		}),
	)
	if _, err := client.RegisterSchema(EngineSchema("load", 512, 512)); err != nil {
		return nil, err
	}
	prompt := `<prompt schema="load"><doc/>summarize the document</prompt>`
	ctx := context.Background()
	const maxTokens = 4

	// Calibrate capacity closed-loop at the admission concurrency:
	// loadSlots workers each serving back to back measure the true
	// sustainable turnover rate, contention included. (Sequential
	// service time × slots overestimates badly — concurrent serves
	// share cores and locks.)
	const calPerWorker = 8
	warm := func() error { // warm the cache and the scheduler first
		_, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, MaxTokens: maxTokens})
		return err
	}
	if err := warm(); err != nil {
		return nil, fmt.Errorf("bench: load calibration: %w", err)
	}
	calErrs := make(chan error, loadSlots)
	t0 := time.Now()
	for w := 0; w < loadSlots; w++ {
		go func() {
			for i := 0; i < calPerWorker; i++ {
				if err := warm(); err != nil {
					calErrs <- err
					return
				}
			}
			calErrs <- nil
		}()
	}
	for w := 0; w < loadSlots; w++ {
		if err := <-calErrs; err != nil {
			return nil, fmt.Errorf("bench: load calibration: %w", err)
		}
	}
	elapsed := time.Since(t0)
	if elapsed <= 0 {
		elapsed = time.Millisecond
	}
	capacityRPS := float64(loadSlots*calPerWorker) / elapsed.Seconds()

	var out []LoadPoint
	for _, mult := range mults {
		rate := capacityRPS * float64(mult)
		arrivals, err := serving.GenerateArrivals(serving.ArrivalPoisson, requests, rate, uint64(1000+mult))
		if err != nil {
			return nil, err
		}
		prompts := make([]string, requests)
		for i := range prompts {
			prompts[i] = prompt
		}
		st, err := serving.ReplayLoad(ctx, client, prompts, arrivals, serving.LoadOpts{MaxTokens: maxTokens})
		if err != nil {
			return nil, err
		}
		if st.Failed > 0 {
			return nil, fmt.Errorf("bench: load at %d×: %d requests failed (want shed or completed only)", mult, st.Failed)
		}
		out = append(out, LoadPoint{
			Mode:          "load",
			Arrival:       serving.ArrivalPoisson,
			LoadMult:      mult,
			OfferedRPS:    rate,
			P50TTFTMs:     float64(st.P50TTFT) / float64(time.Millisecond),
			P95TTFTMs:     float64(st.P95TTFT) / float64(time.Millisecond),
			P99TTFTMs:     float64(st.P99TTFT) / float64(time.Millisecond),
			TokensPerSec:  st.TokensPerSec,
			ShedRate:      st.ShedRate,
			MaxQueueDepth: int64(st.MaxQueueDepth),
		})
	}
	return out, nil
}

// LoadOverload renders the load experiment as a Report; the same points
// serialize to BENCH_load.json via `pcbench -json BENCH_load.json load`.
func LoadOverload() (*Report, error) {
	rep, _, err := LoadOverloadRun()
	return rep, err
}

// LoadOverloadRun measures once and returns both the printable report
// and the machine-readable points.
func LoadOverloadRun() (*Report, []LoadPoint, error) {
	points, err := LoadOverloadPoints(DefaultLoadMults, DefaultLoadRequests)
	if err != nil {
		return nil, nil, err
	}
	return LoadReport(points), points, nil
}

// LoadReport renders measured load points as a printable Report.
func LoadReport(points []LoadPoint) *Report {
	rep := &Report{
		ID:     "load",
		Title:  "Overload behavior: Poisson arrivals at 1× and 4× capacity",
		Header: []string{"Arrival", "Load", "p50 TTFT ms", "p95 TTFT ms", "p99 TTFT ms", "tok/s", "shed", "max queue"},
		Notes: []string{
			"Open-loop replay against an in-process server with admission control (slots=4, queue=8).",
			"At 4× capacity the server sheds with 429/Retry-After instead of collapsing: admitted-request TTFT stays bounded by the queue, not the backlog.",
		},
	}
	for _, p := range points {
		rep.Rows = append(rep.Rows, []string{
			p.Arrival, fmt.Sprintf("%d×", p.LoadMult),
			fmt.Sprintf("%.2f", p.P50TTFTMs),
			fmt.Sprintf("%.2f", p.P95TTFTMs),
			fmt.Sprintf("%.2f", p.P99TTFTMs),
			fmt.Sprintf("%.0f", p.TokensPerSec),
			fmt.Sprintf("%.0f%%", p.ShedRate*100),
			fmt.Sprintf("%d", p.MaxQueueDepth),
		})
	}
	return rep
}

// LoadPointsJSON serializes measured points as indented JSON, the
// payload of BENCH_load.json.
func LoadPointsJSON(points []LoadPoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}
