package bench

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/longbench"
)

// Fig3 regenerates Figure 3: GPU TTFT across LongBench datasets on the
// RTX 4090, A40 and A100, comparing the KV-cache baseline against Prompt
// Cache with modules in CPU memory and in GPU memory. Set all21 to cover
// the full appendix roster instead of the eight headline datasets.
func Fig3(all21 bool) *Report {
	datasets := longbench.Figure8()
	if all21 {
		datasets = longbench.All21()
	}
	m := hw.Llama7B()
	rep := &Report{
		ID:     "fig3",
		Title:  "GPU TTFT (ms), Llama2-7B, LongBench",
		Header: []string{"Dataset", "Device", "Baseline", "PC (CPU mem)", "PC (GPU mem)", "Speedup(CPU)", "Speedup(GPU)"},
		Notes: []string{
			"Prompt modules hold the documents; task directives stay uncached.",
			"Latencies from the calibrated analytic model (see internal/hw).",
		},
	}
	for _, d := range datasets {
		for _, dev := range hw.AllGPUs() {
			n := d.ContextTokens + d.TaskTokens
			base := hw.BaselineTTFT(dev, m, n)
			host := hw.CachedTTFT(dev, m, d.ContextTokens, d.TaskTokens, hw.FromHost)
			local := hw.CachedTTFT(dev, m, d.ContextTokens, d.TaskTokens, hw.FromLocal)
			rep.Rows = append(rep.Rows, []string{
				d.Name, dev.Name,
				ms(base.Seconds()), ms(host.Seconds()), ms(local.Seconds()),
				f1x(hw.Speedup(base, host)), f1x(hw.Speedup(base, local)),
			})
		}
	}
	return rep
}

// Fig4 regenerates Figure 4: CPU TTFT across LongBench datasets on the
// Intel i9-13900K (DDR5) and AMD Ryzen 9 7950X (DDR4).
func Fig4(all21 bool) *Report {
	datasets := longbench.Figure8()
	if all21 {
		datasets = longbench.All21()
	}
	m := hw.Llama7B()
	rep := &Report{
		ID:     "fig4",
		Title:  "CPU TTFT (ms), Llama2-7B, LongBench",
		Header: []string{"Dataset", "Device", "Baseline", "Prompt Cache", "Speedup"},
		Notes: []string{
			"CPU inference gains the most: attention compute dwarfs the host-to-host copy (§5.2.2).",
		},
	}
	for _, d := range datasets {
		for _, dev := range hw.AllCPUs() {
			n := d.ContextTokens + d.TaskTokens
			base := hw.BaselineTTFT(dev, m, n)
			cached := hw.CachedTTFT(dev, m, d.ContextTokens, d.TaskTokens, hw.FromLocal)
			rep.Rows = append(rep.Rows, []string{
				d.Name, dev.Name,
				ms(base.Seconds()), ms(cached.Seconds()),
				f1x(hw.Speedup(base, cached)),
			})
		}
	}
	return rep
}

// Fig5 regenerates Figure 5: cache advantage versus sequence length on a
// fully cached synthetic prompt — baseline attention grows quadratically
// while Prompt Cache's memory copy grows linearly, so the gap widens
// quadratically (§5.4).
func Fig5() *Report {
	m := hw.Llama7B()
	devices := []*hw.Device{hw.IntelI9(), hw.A40(), hw.RTX4090()}
	rep := &Report{
		ID:     "fig5",
		Title:  "Cache advantage vs sequence length (fully cached prompt, modules in CPU memory)",
		Header: []string{"Device", "SeqLen", "Baseline (ms)", "Prompt Cache (ms)", "Advantage"},
		Notes: []string{
			"GPUs load modules from CPU memory here, as in the paper's Fig. 5 setup.",
			"Memcpy anchors (5K tok, per layer): host-to-host 3.79 ms, host-to-device 5.34 ms, device-to-device 0.23 ms.",
		},
	}
	for _, dev := range devices {
		for _, n := range []int{512, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192} {
			base := hw.BaselineTTFT(dev, m, n)
			cached := hw.CachedTTFT(dev, m, n, 0, hw.FromHost)
			rep.Rows = append(rep.Rows, []string{
				dev.Name, fmt.Sprintf("%d", n),
				ms(base.Seconds()), ms(cached.Seconds()),
				f1x(hw.Speedup(base, cached)),
			})
		}
	}
	return rep
}

// Table2 regenerates Table 2: per-token memory overhead of cached
// attention states for eight published models at fp16.
func Table2() *Report {
	rep := &Report{
		ID:     "table2",
		Title:  "Memory overhead of caching a single token (fp16)",
		Header: []string{"LLM", "MB/token", "Paper"},
	}
	paper := []string{"0.03", "0.18", "0.50", "0.78", "1.31", "1.87", "2.5", "4.53"}
	for i, m := range hw.Table2Models() {
		rep.Rows = append(rep.Rows, []string{m.Name, fmt.Sprintf("%.2f", m.MBPerToken()), paper[i]})
	}
	return rep
}

// Breakdown decomposes a representative cached TTFT (RTX 4090, Llama2-7B,
// 5K cached + 300 uncached tokens) into its cost components, making the
// model behind Figs. 3–5 inspectable.
func Breakdown() *Report {
	d := hw.RTX4090()
	m := hw.Llama7B()
	const cached, uncached = 5000, 300
	rep := &Report{
		ID:     "breakdown",
		Title:  "Cached TTFT decomposition (RTX 4090, Llama2-7B, 5K cached + 300 new tokens)",
		Header: []string{"Component", "ms"},
	}
	copyLocal := d.Local.TransferTime(int64(cached) * m.BytesPerToken())
	copyHost := d.Upload.TransferTime(int64(cached) * m.BytesPerToken())
	suffix := m.SuffixFLOPs(uncached, cached+uncached) / d.EffFLOPs()
	base := hw.BaselineTTFT(d, m, cached+uncached)
	rep.Rows = append(rep.Rows,
		[]string{"Software overhead", ms(d.Overhead.Seconds())},
		[]string{"State copy (modules in GPU memory)", ms(copyLocal.Seconds())},
		[]string{"State copy (modules in CPU memory)", ms(copyHost.Seconds())},
		[]string{"Uncached suffix compute", ms(suffix)},
		[]string{"Total cached TTFT (GPU memory)", ms(hw.CachedTTFT(d, m, cached, uncached, hw.FromLocal).Seconds())},
		[]string{"Total cached TTFT (CPU memory)", ms(hw.CachedTTFT(d, m, cached, uncached, hw.FromHost).Seconds())},
		[]string{"Baseline full prefill", ms(base.Seconds())},
	)
	rep.Notes = append(rep.Notes,
		"The CPU-memory configuration is copy-dominated; the GPU-memory one is overhead+compute-dominated — exactly the Fig. 3 gap.",
	)
	return rep
}

// Sec54 regenerates §5.4's model-size and end-to-end analyses: the
// 7B→13B latency delta at 3K tokens, and TTFT vs per-token decode time.
func Sec54() *Report {
	d := hw.RTX4090()
	m7, m13 := hw.Llama7B(), hw.Llama13B()
	rep := &Report{
		ID:     "sec54",
		Title:  "Understanding latency improvements (RTX 4090)",
		Header: []string{"Quantity", "Value"},
	}
	b7 := hw.BaselineTTFT(d, m7, 3000)
	b13 := hw.BaselineTTFT(d, m13, 3000)
	c7 := hw.CachedTTFT(d, m7, 3000, 0, hw.FromLocal)
	c13 := hw.CachedTTFT(d, m13, 3000, 0, hw.FromLocal)
	rep.Rows = append(rep.Rows,
		[]string{"Baseline TTFT 7B @3K (ms)", ms(b7.Seconds())},
		[]string{"Baseline TTFT 13B @3K (ms)", ms(b13.Seconds())},
		[]string{"Baseline delta 7B→13B (ms, paper ~220)", ms((b13 - b7).Seconds())},
		[]string{"Cached delta 7B→13B (ms, paper ~30)", ms((c13 - c7).Seconds())},
		[]string{"Cached TTFT 7B @3K (ms, paper ~90)", ms(c7.Seconds())},
		[]string{"Decode TTST @3K (ms/token, paper ~32)", ms(hw.DecodeTime(d, m7, 3000).Seconds())},
	)
	rep.Notes = append(rep.Notes,
		"The paper's +220 ms baseline delta is below any fixed-MFU projection of its own 900 ms anchor; see EXPERIMENTS.md.",
	)
	return rep
}
