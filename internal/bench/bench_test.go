package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "x")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestFig3ShapeAndBands(t *testing.T) {
	rep := Fig3(false)
	if len(rep.Rows) != 8*3 {
		t.Fatalf("rows = %d, want 24", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		base := parseCell(t, row[2])
		host := parseCell(t, row[3])
		local := parseCell(t, row[4])
		if !(local < host && host < base) {
			t.Fatalf("%s/%s: want local < host < baseline, got %v %v %v",
				row[0], row[1], local, host, base)
		}
		sHost := parseCell(t, row[5])
		sLocal := parseCell(t, row[6])
		// Paper bands (§5.2.1) with headroom: CPU-memory 1.5–3×,
		// GPU-memory 5–10×; TriviaQA's large uncached share sits lower.
		if sHost < 1.2 || sHost > 6 {
			t.Errorf("%s/%s: host speedup %.1f outside band", row[0], row[1], sHost)
		}
		if sLocal < 2.5 || sLocal > 35 {
			t.Errorf("%s/%s: local speedup %.1f outside band", row[0], row[1], sLocal)
		}
	}
}

func TestFig3AllCovers21(t *testing.T) {
	rep := Fig3(true)
	if len(rep.Rows) != 21*3 {
		t.Fatalf("rows = %d, want 63", len(rep.Rows))
	}
}

func TestFig4ShapeAndBands(t *testing.T) {
	rep := Fig4(false)
	if len(rep.Rows) != 8*2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	var bestIntel, bestAMD float64
	for _, row := range rep.Rows {
		s := parseCell(t, row[4])
		if s <= 1 {
			t.Fatalf("%s/%s: speedup %.1f <= 1", row[0], row[1], s)
		}
		if strings.Contains(row[1], "Intel") && s > bestIntel {
			bestIntel = s
		}
		if strings.Contains(row[1], "AMD") && s > bestAMD {
			bestAMD = s
		}
	}
	// §5.2.2: up to ~70× (Intel) and ~20× (AMD).
	if bestIntel < 40 || bestIntel > 100 {
		t.Errorf("best Intel speedup %.0f, paper up to ~70", bestIntel)
	}
	if bestAMD < 10 || bestAMD > 35 {
		t.Errorf("best AMD speedup %.0f, paper up to ~20", bestAMD)
	}
	if bestAMD >= bestIntel {
		t.Error("Intel should outgain AMD")
	}
}

func TestFig4TriviaQAHighestLatency(t *testing.T) {
	// §5.2.2: cached latency is highest for datasets with more uncached
	// prompt (TriviaQA).
	rep := Fig4(false)
	var trivia, maxOther float64
	for _, row := range rep.Rows {
		if !strings.Contains(row[1], "Intel") {
			continue
		}
		v := parseCell(t, row[3])
		if row[0] == "TriviaQA" {
			trivia = v
		} else if v > maxOther {
			maxOther = v
		}
	}
	if trivia <= maxOther {
		t.Fatalf("TriviaQA cached %.0f ms should exceed other datasets' max %.0f ms", trivia, maxOther)
	}
}

func TestFig5AdvantageWidens(t *testing.T) {
	rep := Fig5()
	// Per device, the advantage column must be monotone increasing in n.
	prev := map[string]float64{}
	prevN := map[string]int{}
	for _, row := range rep.Rows {
		dev := row[0]
		n, _ := strconv.Atoi(row[1])
		adv := parseCell(t, row[4])
		if pn, ok := prevN[dev]; ok {
			if n <= pn {
				t.Fatalf("rows out of order for %s", dev)
			}
			if adv <= prev[dev] {
				t.Fatalf("%s: advantage shrank %f -> %f at n=%d", dev, prev[dev], adv, n)
			}
		}
		prev[dev] = adv
		prevN[dev] = n
	}
	// CPU advantage dominates GPU advantage at the top end (§5.4).
	var cpuTop, gpuTop float64
	for _, row := range rep.Rows {
		if row[1] != "8192" {
			continue
		}
		adv := parseCell(t, row[4])
		if strings.Contains(row[0], "Intel") {
			cpuTop = adv
		}
		if strings.Contains(row[0], "4090") {
			gpuTop = adv
		}
	}
	if cpuTop <= gpuTop {
		t.Fatalf("CPU top advantage %.0f should exceed GPU's %.0f", cpuTop, gpuTop)
	}
}

func TestTable2MatchesPaperColumn(t *testing.T) {
	rep := Table2()
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		got := parseCell(t, row[1])
		want := parseCell(t, row[2])
		if want == 0 {
			continue
		}
		// Relative band plus the paper's two-decimal rounding grain
		// (BERT prints 0.04 vs the paper's 0.03).
		if d := (got - want) / want; (d > 0.18 || d < -0.18) && got-want > 0.015 {
			t.Errorf("%s: %.2f vs paper %.2f", row[0], got, want)
		}
	}
}

func TestSec54Rows(t *testing.T) {
	rep := Sec54()
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	vals := map[string]float64{}
	for _, row := range rep.Rows {
		vals[row[0]] = parseCell(t, row[1])
	}
	if vals["Cached delta 7B→13B (ms, paper ~30)"] >= vals["Baseline delta 7B→13B (ms, paper ~220)"] {
		t.Fatal("cached delta should be far below baseline delta")
	}
	dec := vals["Decode TTST @3K (ms/token, paper ~32)"]
	if dec < 20 || dec > 45 {
		t.Errorf("decode %.1f ms, paper ~32", dec)
	}
}

func TestTable1QuickPairedScores(t *testing.T) {
	rep, err := Table1(AccuracyConfig{Seed: 5, Samples: 2, DocSentences: 4, MaxNewTokens: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8*4 {
		t.Fatalf("rows = %d, want 32", len(rep.Rows))
	}
	var diffs, cosines []float64
	for _, row := range rep.Rows {
		base := parseCell(t, row[3])
		cached := parseCell(t, row[4])
		cos := parseCell(t, row[5])
		if base < 0 || base > 1 || cached < 0 || cached > 1 {
			t.Fatalf("%s/%s: scores out of range", row[0], row[2])
		}
		d := base - cached
		if d < 0 {
			d = -d
		}
		diffs = append(diffs, d)
		cosines = append(cosines, cos)
	}
	// Table 1's claim: cached ≈ baseline. Averaged over the grid, the
	// paired gap must be small and the logit agreement high.
	var meanDiff, meanCos float64
	for i := range diffs {
		meanDiff += diffs[i]
		meanCos += cosines[i]
	}
	meanDiff /= float64(len(diffs))
	meanCos /= float64(len(cosines))
	t.Logf("mean |baseline-cached| = %.3f, mean logit cosine = %.3f", meanDiff, meanCos)
	if meanDiff > 0.25 {
		t.Errorf("mean paired score gap %.3f too large", meanDiff)
	}
	if meanCos < 0.6 {
		t.Errorf("mean logit cosine %.3f too low", meanCos)
	}
}

func TestUseCaseReports(t *testing.T) {
	for _, run := range []func() (*Report, error){Fig6, Fig7, Fig8} {
		rep, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Rows) != 2 {
			t.Fatalf("%s rows = %d", rep.ID, len(rep.Rows))
		}
		for _, row := range rep.Rows {
			base := parseCell(t, row[1])
			cached := parseCell(t, row[2])
			if cached >= base {
				t.Errorf("%s %s: cached %.0f >= baseline %.0f", rep.ID, row[0], cached, base)
			}
			paperBase := parseCell(t, row[3])
			paperCached := parseCell(t, row[4])
			// Within ~3x of the paper's absolute numbers, and the win
			// direction must match.
			if base < paperBase/3 || base > paperBase*3 {
				t.Errorf("%s %s: baseline %.0f vs paper %.0f (out of 3x)", rep.ID, row[0], base, paperBase)
			}
			if cached < paperCached/4 || cached > paperCached*4 {
				t.Errorf("%s %s: cached %.0f vs paper %.0f (out of 4x)", rep.ID, row[0], cached, paperCached)
			}
		}
		if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[len(rep.Notes)-1], "overlap") {
			t.Errorf("%s: missing engine fidelity note", rep.ID)
		}
	}
}

func TestAblationScaffold(t *testing.T) {
	rep, err := AblationScaffold()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for i := 0; i < len(rep.Rows); i += 2 {
		scaff := parseCell(t, rep.Rows[i][2])
		indep := parseCell(t, rep.Rows[i+1][2])
		if scaff < 0.999 {
			t.Errorf("%s: scaffold cosine %.4f, want ~1", rep.Rows[i][0], scaff)
		}
		if indep >= scaff {
			t.Errorf("%s: independent cosine %.4f should be below scaffold's", rep.Rows[i+1][0], indep)
		}
	}
}

func TestAblationMaskingMonotone(t *testing.T) {
	rep, err := AblationMasking()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// 1 module is exact; cosine decreases (weakly) as granularity grows.
	first := parseCell(t, rep.Rows[0][1])
	if first < 0.999 {
		t.Fatalf("single module cosine %v, want ~1", first)
	}
	prev := first + 1e-9
	for _, row := range rep.Rows {
		cos := parseCell(t, row[1])
		if cos > prev+0.02 {
			t.Fatalf("masking severity not monotone: %v after %v", cos, prev)
		}
		prev = cos
	}
}

func TestAblationPagedSavesHalf(t *testing.T) {
	rep := AblationPagedSharing()
	savings := parseCell(t, rep.Rows[2][1])
	if savings < 45 || savings > 55 {
		t.Fatalf("savings %.0f%%, paper says ~50%%", savings)
	}
}

func TestAblationConcatQuadraticBlowup(t *testing.T) {
	rep := AblationConcat()
	rel := parseCell(t, rep.Rows[0][2])
	if rel < 8 {
		t.Fatalf("naive concat only %.1fx worse; expected quadratic blowup", rel)
	}
}

func TestTable1AppendixCovers21(t *testing.T) {
	rep, err := Table1Appendix(AccuracyConfig{Seed: 3, Samples: 1, DocSentences: 4, MaxNewTokens: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 21 {
		t.Fatalf("rows = %d, want 21", len(rep.Rows))
	}
	cats := map[string]bool{}
	for _, row := range rep.Rows {
		cats[row[1]] = true
		if cos := parseCell(t, row[5]); cos < 0.2 || cos > 1.0 {
			t.Errorf("%s: cosine %v out of range", row[0], cos)
		}
	}
	if len(cats) != 6 {
		t.Fatalf("categories = %d", len(cats))
	}
}

func TestBreakdownComponentsSum(t *testing.T) {
	rep := Breakdown()
	vals := map[string]float64{}
	for _, row := range rep.Rows {
		vals[row[0]] = parseCell(t, row[1])
	}
	sumGPU := vals["Software overhead"] + vals["State copy (modules in GPU memory)"] + vals["Uncached suffix compute"]
	if tot := vals["Total cached TTFT (GPU memory)"]; absf(sumGPU-tot) > 0.5 {
		t.Fatalf("GPU components %.1f != total %.1f", sumGPU, tot)
	}
	sumCPU := vals["Software overhead"] + vals["State copy (modules in CPU memory)"] + vals["Uncached suffix compute"]
	if tot := vals["Total cached TTFT (CPU memory)"]; absf(sumCPU-tot) > 0.5 {
		t.Fatalf("CPU components %.1f != total %.1f", sumCPU, tot)
	}
	if vals["Baseline full prefill"] <= vals["Total cached TTFT (CPU memory)"] {
		t.Fatal("baseline should exceed every cached total")
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestThroughputExperimentMonotone(t *testing.T) {
	rep := Throughput()
	prev := 0.0
	for _, row := range rep.Rows {
		tps := parseCell(t, row[2])
		if tps < prev {
			t.Fatalf("throughput fell at %s", row[0])
		}
		prev = tps
	}
	first := parseCell(t, rep.Rows[0][1])
	last := parseCell(t, rep.Rows[len(rep.Rows)-1][1])
	if last < 2*first {
		t.Fatalf("batch should grow substantially with sharing: %v -> %v", first, last)
	}
}

func TestServingExperiment(t *testing.T) {
	rep, err := Serving()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 { // unbounded + 4 policies + host-only
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// First row is the unbounded lower bound, last is host-only; every
	// policy must land between them on mean TTFT.
	lower := parseCell(t, rep.Rows[0][2])
	upper := parseCell(t, rep.Rows[len(rep.Rows)-1][2])
	if lower >= upper {
		t.Fatalf("lower bound %v >= host-only %v", lower, upper)
	}
	for _, row := range rep.Rows[1 : len(rep.Rows)-1] {
		mean := parseCell(t, row[2])
		if mean < lower-0.5 || mean > upper+0.5 {
			t.Errorf("%s: mean %v outside [%v, %v]", row[0], mean, lower, upper)
		}
	}
	// Everything beats the no-reuse baseline.
	for _, row := range rep.Rows {
		if parseCell(t, row[4]) <= 1 {
			t.Errorf("%s: speedup <= 1", row[0])
		}
	}
}

func TestQuantExperiment(t *testing.T) {
	rep, err := Quant()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]string{}
	for _, row := range rep.Rows {
		vals[row[0]] = row[1]
	}
	ratio := parseCell(t, vals["Compression ratio int8"])
	if ratio < 3.0 || ratio > 4.2 {
		t.Fatalf("int8 compression ratio %v, want ~3.8", ratio)
	}
	ratio4 := parseCell(t, vals["Compression ratio int4"])
	if ratio4 <= ratio || ratio4 > 7.5 {
		t.Fatalf("int4 ratio %v should exceed int8's %v (and stay <= 7.5)", ratio4, ratio)
	}
	if cos := parseCell(t, vals["Logit cosine int8 vs fp32"]); cos < 0.98 {
		t.Fatalf("int8 logit cosine %v too low", cos)
	}
}

func TestRunRegistry(t *testing.T) {
	for _, e := range Experiments() {
		if e[0] == "table1" || strings.HasPrefix(e[0], "fig3-all") || strings.HasPrefix(e[0], "fig4-all") {
			continue // covered elsewhere; table1 full grid is slow
		}
		rep, err := Run(e[0])
		if err != nil {
			t.Fatalf("%s: %v", e[0], err)
		}
		if rep.ID == "" || len(rep.Rows) == 0 {
			t.Fatalf("%s: empty report", e[0])
		}
	}
	if _, err := Run("bogus"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestReportPrintAndCSV(t *testing.T) {
	rep := Table2()
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "table2") || !strings.Contains(out, "Llama 7B") {
		t.Fatalf("print output missing content:\n%s", out)
	}
	csv := rep.CSV()
	if !strings.HasPrefix(csv, "LLM,MB/token,Paper") {
		t.Fatalf("csv header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if strings.Count(csv, "\n") != 9 { // header + 8 rows
		t.Fatalf("csv lines = %d", strings.Count(csv, "\n"))
	}
}
