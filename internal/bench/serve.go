package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// ServePoint is one measured (prefix length × mode) cell of the
// cached-prefix serve experiment, shaped for machine-readable tracking
// of the perf trajectory across PRs (BENCH_serve.json).
type ServePoint struct {
	PrefixTokens int     `json:"prefix_tokens"`
	Mode         string  `json:"mode"` // "cached" | "baseline"
	NsPerOp      int64   `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	MsPerOp      float64 `json:"ms_per_op"`
}

// ServeCachedPrefixPoints measures TTFT and per-serve allocations for
// cached vs baseline serving across cached-prefix lengths. Cached serves
// go through the zero-copy view path: time grows only with the
// linear-in-prefix attention of the tiny suffix, and bytes/op stay
// independent of prefix length because no module row is copied. The
// baseline pays the full prefill. Sizes are capped below the bench_test
// benchmark's 8K point to keep pcbench interactive.
func ServeCachedPrefixPoints(sizes []int) ([]ServePoint, error) {
	cfg := model.LlamaStyle(tokenizer.WordBase+2048, 1234)
	cfg.MaxSeq = 10240
	m, err := model.New(cfg)
	if err != nil {
		return nil, err
	}
	client := promptcache.New(m)
	ctx := context.Background()
	var out []ServePoint
	for _, n := range sizes {
		name := fmt.Sprintf("serve-%d", n)
		if _, err := client.RegisterSchema(EngineSchema(name, n, uint64(n))); err != nil {
			return nil, err
		}
		prompt := fmt.Sprintf("<prompt schema=%q><doc/><user>summarize the document</user></prompt>", name)
		for _, mode := range []string{"cached", "baseline"} {
			baseline := mode == "baseline"
			// testing.Benchmark discards b.Fatal logs and returns a zero
			// result; capture Infer errors ourselves so a broken serve
			// fails the experiment instead of emitting zero metrics.
			var inferErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := client.Infer(ctx, promptcache.Request{Prompt: prompt, Baseline: baseline, PrefillOnly: true}); err != nil {
						inferErr = err
						b.FailNow()
					}
				}
			})
			if inferErr != nil {
				return nil, fmt.Errorf("bench: serve %s-%d: %w", mode, n, inferErr)
			}
			out = append(out, ServePoint{
				PrefixTokens: n,
				Mode:         mode,
				NsPerOp:      r.NsPerOp(),
				BytesPerOp:   r.AllocedBytesPerOp(),
				AllocsPerOp:  r.AllocsPerOp(),
				MsPerOp:      float64(r.NsPerOp()) / 1e6,
			})
		}
	}
	return out, nil
}

// DefaultServeSizes keeps the interactive experiment to a few seconds
// per point; the bench_test benchmark covers the 8K headline point.
var DefaultServeSizes = []int{512, 1024, 2048}

// ServeCachedPrefix renders the cached-prefix serve experiment as a
// Report. The same points serialize to BENCH_serve.json via
// `pcbench -json BENCH_serve.json serve`.
func ServeCachedPrefix() (*Report, error) {
	rep, _, err := ServeCachedPrefixRun()
	return rep, err
}

// ServeCachedPrefixRun measures the experiment once and returns both the
// printable report and the machine-readable points, so callers emitting
// BENCH_serve.json do not pay for (or drift from) a second run.
func ServeCachedPrefixRun() (*Report, []ServePoint, error) {
	points, err := ServeCachedPrefixPoints(DefaultServeSizes)
	if err != nil {
		return nil, nil, err
	}
	return ServeReport(points), points, nil
}

// ServeReport renders measured serve points as a printable Report.
func ServeReport(points []ServePoint) *Report {
	rep := &Report{
		ID:     "serve",
		Title:  "Cached-prefix serve: zero-copy views vs full prefill",
		Header: []string{"PrefixTokens", "Mode", "ms/op", "B/op", "allocs/op"},
		Notes: []string{
			"Cached serves splice module states as segment views: bytes/op is suffix-sized, independent of prefix length.",
			"Cached time grows only with the suffix's attention over the prefix (linear, tiny constant); baseline pays the quadratic full prefill.",
		},
	}
	for _, p := range points {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", p.PrefixTokens), p.Mode,
			fmt.Sprintf("%.2f", p.MsPerOp),
			fmt.Sprintf("%d", p.BytesPerOp),
			fmt.Sprintf("%d", p.AllocsPerOp),
		})
	}
	return rep
}

// ServePointsJSON serializes measured points as indented JSON, the
// payload of BENCH_serve.json.
func ServePointsJSON(points []ServePoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}
