package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/longbench"
	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// SpecPoint is one measured (scenario × mode) cell of the speculative-
// decoding experiment, shaped for machine-readable tracking of the perf
// trajectory across PRs (BENCH_spec.json).
type SpecPoint struct {
	// Scenario is the LongBench workload the streams decode over, or
	// "cold-draft" for the structural never-worse check (a draft source
	// that never qualifies a proposal, so every step takes the plain
	// fused path).
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"` // "speculative" | "solo"
	// Backend is pinned by name (see DecodePoint.Backend).
	Backend string  `json:"backend"`
	NsPerOp int64   `json:"ns_per_op"`
	MsPerOp float64 `json:"ms_per_op"`
	// TokensPerSec is end-to-end decode throughput across all streams.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// AcceptedPerStep is tokens a lane produces per fused step it
	// participates in, over the measured interval — exactly 1 without
	// speculation, > 1 when the draft source earns its keep. Token
	// streams are bit-identical across modes, so this is the entire
	// speculation effect.
	AcceptedPerStep float64 `json:"accepted_per_step"`
}

// specBenchTokens is the reply length each stream decodes per op.
const specBenchTokens = 24

// DefaultSpecScenarios are the LongBench workloads the experiment
// replays; "cold-draft" is always appended as the structural floor.
var DefaultSpecScenarios = []string{"TriviaQA", "MultiNews"}

// coldDraftScenario names the never-proposes cell.
const coldDraftScenario = "cold-draft"

// SpeculatePoints measures end-to-end decode throughput for LongBench
// scenario replays, speculative vs solo. Both modes run the fused decode
// scheduler on the pinned parallel backend and produce bit-identical
// token streams; the speculative client additionally trains a per-class
// n-gram draft source during warmup and verifies its proposals in
// widened fused steps, so the measured difference is tokens-per-step
// against verify overhead. The cold-draft cell runs the speculative
// machinery with a draft threshold no transition can meet — the
// structural "never worse when the draft is cold" floor.
func SpeculatePoints(scenarios []string) ([]SpecPoint, error) {
	ctx := context.Background()
	var out []SpecPoint
	for _, name := range scenarios {
		d, ok := longbench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown LongBench dataset %q", name)
		}
		w := longbench.Generate(d, longbench.GenConfig{
			Seed: 99, NumSamples: 4, DocSentences: 6,
		})
		for _, mode := range []string{"solo", "speculative"} {
			p, err := specCell(ctx, name, mode, w.Schema, samplePrompts(w), promptcache.DraftOpts{MinHits: 1})
			if err != nil {
				return nil, err
			}
			out = append(out, *p)
		}
	}
	// Cold floor: same workload shape, draft threshold unreachable.
	d, _ := longbench.ByName(DefaultSpecScenarios[0])
	w := longbench.Generate(d, longbench.GenConfig{Seed: 99, NumSamples: 4, DocSentences: 6})
	for _, mode := range []string{"solo", "speculative"} {
		p, err := specCell(ctx, coldDraftScenario, mode, w.Schema, samplePrompts(w), promptcache.DraftOpts{MinHits: 1e9})
		if err != nil {
			return nil, err
		}
		out = append(out, *p)
	}
	return out, nil
}

func samplePrompts(w *longbench.Workload) []string {
	prompts := make([]string, len(w.Samples))
	for i, s := range w.Samples {
		prompts[i] = s.Prompt
	}
	return prompts
}

// specCell measures one (scenario, mode) point: N concurrent streams
// each decoding specBenchTokens tokens over a cached LongBench prompt.
func specCell(ctx context.Context, scenario, mode, schema string, prompts []string, draft promptcache.DraftOpts) (*SpecPoint, error) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 444))
	if err != nil {
		return nil, err
	}
	bkOpt, err := promptcache.WithBackend("parallel")
	if err != nil {
		return nil, err
	}
	opts := []promptcache.Option{bkOpt, promptcache.WithDecodeScheduler(16)}
	if mode == "speculative" {
		opts = append(opts, promptcache.WithSpeculation(draft))
	}
	client := promptcache.New(m, opts...)
	if _, err := client.RegisterSchema(schema); err != nil {
		return nil, err
	}
	run := func() error {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var inferErr error
		for _, prompt := range prompts {
			wg.Add(1)
			go func(prompt string) {
				defer wg.Done()
				// StopToken -1: untrained-model EOS must not shorten
				// replies, so modes and scenarios stay comparable.
				if _, err := client.Infer(ctx, promptcache.Request{
					Prompt: prompt,
					Gen:    promptcache.GenConfig{MaxTokens: specBenchTokens, StopToken: -1},
				}); err != nil {
					mu.Lock()
					inferErr = err
					mu.Unlock()
				}
			}(prompt)
		}
		wg.Wait()
		return inferErr
	}
	// Warmup: encodes modules on first serve and — in speculative mode —
	// trains the draft source on the streams the measurement will replay.
	for i := 0; i < 2; i++ {
		if err := run(); err != nil {
			return nil, fmt.Errorf("bench: speculate %s-%s warmup: %w", scenario, mode, err)
		}
	}
	before := client.SchedulerStats()
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := run(); err != nil {
				runErr = err
			}
		}
	})
	if runErr != nil {
		return nil, fmt.Errorf("bench: speculate %s-%s: %w", scenario, mode, runErr)
	}
	after := client.SchedulerStats()
	// Per-lane-step acceptance over the measured interval: each lane
	// samples one token per fused step it joins, so the weighted batch
	// histogram is the lane-step count and the ratio isolates speculation
	// from batch width.
	var laneSteps int64
	for i, n := range after.BatchHist {
		laneSteps += (n - before.BatchHist[i]) * int64(i+1)
	}
	accepted := 1.0
	if laneSteps > 0 {
		accepted = float64(after.TokensDecoded-before.TokensDecoded) / float64(laneSteps)
	}
	sec := float64(r.NsPerOp()) / 1e9
	return &SpecPoint{
		Scenario:        scenario,
		Mode:            mode,
		Backend:         client.Model().Backend().Name(),
		NsPerOp:         r.NsPerOp(),
		MsPerOp:         float64(r.NsPerOp()) / 1e6,
		TokensPerSec:    float64(len(prompts)*specBenchTokens) / sec,
		AcceptedPerStep: accepted,
	}, nil
}

// Speculate renders the speculative-decoding experiment as a Report. The
// same points serialize to BENCH_spec.json via
// `pcbench -json BENCH_spec.json speculate`.
func Speculate() (*Report, error) {
	points, err := SpeculatePoints(DefaultSpecScenarios)
	if err != nil {
		return nil, err
	}
	return SpecReport(points), nil
}

// SpecReport renders measured speculation points as a printable Report.
func SpecReport(points []SpecPoint) *Report {
	rep := &Report{
		ID:     "speculate",
		Title:  "Speculative decoding: draft-and-verify vs solo fused decode",
		Header: []string{"Scenario", "Mode", "ms/op", "tokens/sec", "accepted/step"},
		Notes: []string{
			fmt.Sprintf("One op = concurrent LongBench streams each decoding %d tokens over cached documents.", specBenchTokens),
			"Token streams are bit-identical across modes; accepted/step > 1 is the speculation win, cold-draft is the never-worse floor.",
		},
	}
	for _, p := range points {
		rep.Rows = append(rep.Rows, []string{
			p.Scenario, p.Mode,
			fmt.Sprintf("%.2f", p.MsPerOp),
			fmt.Sprintf("%.0f", p.TokensPerSec),
			fmt.Sprintf("%.2f", p.AcceptedPerStep),
		})
	}
	return rep
}

// MedianSpecPoints merges N runs of the speculation experiment (see
// MedianServePoints for the de-noising rationale).
func MedianSpecPoints(runs [][]SpecPoint) ([]SpecPoint, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("bench: no runs to merge")
	}
	out := append([]SpecPoint(nil), runs[0]...)
	for i := range out {
		ns := make([]int64, 0, len(runs))
		var ms, ts, ac []float64
		for _, run := range runs {
			if len(run) != len(out) || run[i].Scenario != out[i].Scenario ||
				run[i].Mode != out[i].Mode || run[i].Backend != out[i].Backend {
				return nil, fmt.Errorf("bench: speculate runs disagree on point %d", i)
			}
			ns = append(ns, run[i].NsPerOp)
			ms = append(ms, run[i].MsPerOp)
			ts = append(ts, run[i].TokensPerSec)
			ac = append(ac, run[i].AcceptedPerStep)
		}
		out[i].NsPerOp = medianInt64(ns)
		out[i].MsPerOp = medianFloat64(ms)
		out[i].TokensPerSec = medianFloat64(ts)
		out[i].AcceptedPerStep = medianFloat64(ac)
	}
	return out, nil
}

// SpecPointsJSON serializes measured points as indented JSON, the
// payload of BENCH_spec.json.
func SpecPointsJSON(points []SpecPoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}
