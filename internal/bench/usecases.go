package bench

import (
	"context"
	"fmt"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// The §5.6 use-case schemas, shared by the benches and the runnable
// examples. Contents are condensed stand-ins with the same modular
// structure as the paper's appendix schemas.

// CodeGenSchema is Fig. 6's multi-file code-generation schema: each
// source file is a prompt module.
const CodeGenSchema = `
<schema name="game-codegen">
  <system>You are an expert Python engineer. Use only the provided files.</system>
  <module name="unit-py">class Unit: def init takes unit id and position. def move updates position on the grid. def health returns remaining points.</module>
  <module name="map-py">class Map: def init takes grid size. def place puts a unit at coordinates. def neighbors lists adjacent cells for pathing.</module>
  <module name="player-py">class Player: def init takes player id and name. def units returns owned units. def score tallies captured cells.</module>
  <module name="game-py">class Game: def init takes players and map. def start game begins the loop. def turn advances one round and checks victory.</module>
  <module name="database-py">class Database: def init opens the store. def save writes game state. def load restores a session by id.</module>
</schema>`

// CodeGenPrompt is Fig. 6's user prompt importing four of the five files.
const CodeGenPrompt = `
<prompt schema="game-codegen">
  <unit-py/><map-py/><player-py/><game-py/>
  <user>Create a main entry point for the game, using Map, Player, and Game classes.</user>
</prompt>`

// PersonalizationSchema is Fig. 7's feature-based personalization schema:
// six trait categories, each a union of five mutually exclusive traits.
var PersonalizationSchema = buildPersonalizationSchema()

func buildPersonalizationSchema() string {
	cats := []struct {
		name   string
		traits [5]string
	}{
		{"grade", [5]string{"elementary-school", "middle-school", "high-school", "undergraduate", "graduate"}},
		{"proficiency", [5]string{"beginner", "novice", "intermediate", "advanced", "expert"}},
		{"history", [5]string{"studied-a-year-before", "studied-a-month-before", "first-exposure", "reviewing-for-exam", "self-taught-basics"}},
		{"style", [5]string{"auditory", "visual", "kinesthetic", "reading-writing", "collaborative"}},
		{"assessment", [5]string{"essay", "multiple-choice", "oral-exam", "project", "portfolio"}},
		{"motivation", [5]string{"high-intrinsic-motivation", "grade-driven", "career-driven", "curiosity-driven", "parent-encouraged"}},
	}
	s := "<schema name=\"learner-profile\">\n  <system>You are an education assistant describing learner profiles.</system>\n"
	for _, c := range cats {
		s += "  <union>\n"
		for _, t := range c.traits {
			s += fmt.Sprintf("    <module name=%q>the learner %s trait within %s shapes lesson pacing and feedback.</module>\n", t, t, c.name)
		}
		s += "  </union>\n"
	}
	s += "</schema>\n"
	return s
}

// PersonalizationPrompt is Fig. 7's prompt: one trait per category.
const PersonalizationPrompt = `
<prompt schema="learner-profile">
  <middle-school/><beginner/><studied-a-year-before/><auditory/><essay/><high-intrinsic-motivation/>
  <user>Concisely describe the learner's profile.</user>
</prompt>`

// TripPlanSchema is Fig. 8's parameterized travel schema: a duration
// parameter plus nested destination unions.
const TripPlanSchema = `
<schema name="travel-planner">
  <module name="travel-plan">
    Create a travel plan lasting <param name="for" len="4"/> with daily highlights.
    <union>
      <module name="overseas">
        international travel with flights and visas considered.
        <union>
          <module name="tokyo">destination tokyo japan with temples food and trains.</module>
          <module name="paris">destination paris france with museums cafes and walks.</module>
        </union>
      </module>
      <module name="domestic">
        regional travel by car or rail with flexible stops.
        <union>
          <module name="coast">destination the coast with beaches and seafood.</module>
          <module name="mountains">destination the mountains with trails and lodges.</module>
        </union>
      </module>
    </union>
  </module>
</schema>`

// TripPlanPrompt is Fig. 8's prompt: parameter value plus nested unions.
const TripPlanPrompt = `
<prompt schema="travel-planner">
  <travel-plan for="a week"><overseas><tokyo/></overseas></travel-plan>
  <user>Create a travel plan</user>
</prompt>`

// useCase bundles one §5.6 scenario.
type useCase struct {
	id, title      string
	schema, prompt string
	hwModel        hw.Model
	// paper-scale token counts inferred from the figure's latencies.
	cachedTokens, newTokens int
	// paper-reported milliseconds for the caption row.
	paperGPUBase, paperGPUCached float64
	paperCPUBase, paperCPUCached float64
}

func fig6Case() useCase {
	return useCase{
		id: "fig6", title: "Code generation with per-file prompt modules (CodeLlama-7B scale)",
		schema: CodeGenSchema, prompt: CodeGenPrompt,
		hwModel: hw.CodeLlama7B(), cachedTokens: 3000, newTokens: 40,
		paperGPUBase: 924, paperGPUCached: 93, paperCPUBase: 75976, paperCPUCached: 861,
	}
}

func fig7Case() useCase {
	return useCase{
		id: "fig7", title: "Personalization via trait unions (Llama2-7B scale)",
		schema: PersonalizationSchema, prompt: PersonalizationPrompt,
		hwModel: hw.Llama7B(), cachedTokens: 700, newTokens: 15,
		paperGPUBase: 216, paperGPUCached: 65, paperCPUBase: 22449, paperCPUCached: 686,
	}
}

func fig8Case() useCase {
	return useCase{
		id: "fig8", title: "Parameterized prompts (Llama2-7B scale)",
		schema: TripPlanSchema, prompt: TripPlanPrompt,
		hwModel: hw.Llama7B(), cachedTokens: 150, newTokens: 20,
		paperGPUBase: 75, paperGPUCached: 54, paperCPUBase: 4725, paperCPUCached: 479,
	}
}

// runUseCase produces the latency table at paper scale plus a real-engine
// output-fidelity check.
func runUseCase(uc useCase) (*Report, error) {
	rep := &Report{
		ID:     uc.id,
		Title:  uc.title,
		Header: []string{"Platform", "Baseline (ms)", "Prompt Cache (ms)", "Paper baseline", "Paper cached"},
	}
	gpu, cpu := hw.RTX4090(), hw.IntelI9()
	n := uc.cachedTokens + uc.newTokens
	gb := hw.BaselineTTFT(gpu, uc.hwModel, n)
	gc := hw.CachedTTFT(gpu, uc.hwModel, uc.cachedTokens, uc.newTokens, hw.FromLocal)
	cb := hw.BaselineTTFT(cpu, uc.hwModel, n)
	cc := hw.CachedTTFT(cpu, uc.hwModel, uc.cachedTokens, uc.newTokens, hw.FromLocal)
	rep.Rows = append(rep.Rows,
		[]string{"GPU (RTX 4090)", ms(gb.Seconds()), ms(gc.Seconds()),
			fmt.Sprintf("%.0f", uc.paperGPUBase), fmt.Sprintf("%.0f", uc.paperGPUCached)},
		[]string{"CPU (i9-13900K)", ms(cb.Seconds()), ms(cc.Seconds()),
			fmt.Sprintf("%.0f", uc.paperCPUBase), fmt.Sprintf("%.0f", uc.paperCPUCached)},
	)

	// Real-engine demo: serve the actual schema/prompt on the small
	// engine and compare cached vs baseline generations.
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 4242))
	if err != nil {
		return nil, err
	}
	client := promptcache.New(m)
	if _, err := client.RegisterSchema(uc.schema); err != nil {
		return nil, fmt.Errorf("%s schema: %w", uc.id, err)
	}
	ctx := context.Background()
	cres, err := client.Infer(ctx, promptcache.Request{Prompt: uc.prompt, MaxTokens: 24})
	if err != nil {
		return nil, fmt.Errorf("%s serve: %w", uc.id, err)
	}
	bres, err := client.Infer(ctx, promptcache.Request{Prompt: uc.prompt, Baseline: true, MaxTokens: 24})
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("engine demo: %d cached + %d new tokens; cached/baseline logit cosine %.2f, generation overlap %.2f",
			cres.CachedTokens, cres.NewTokens,
			tensor.CosineSimilarity(cres.Logits, bres.Logits),
			metrics.TokenOverlap(cres.Tokens, bres.Tokens)),
	)
	return rep, nil
}

// Fig6 regenerates Figure 6 (multi-file code generation).
func Fig6() (*Report, error) { return runUseCase(fig6Case()) }

// Fig7 regenerates Figure 7 (feature-based personalization).
func Fig7() (*Report, error) { return runUseCase(fig7Case()) }

// Fig8 regenerates Figure 8 (parameterized prompts).
func Fig8() (*Report, error) { return runUseCase(fig8Case()) }
