package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// DecodePoint is one measured (concurrency × mode) cell of the
// continuous-batching decode experiment, shaped for machine-readable
// tracking of the perf trajectory across PRs (BENCH_decode.json).
type DecodePoint struct {
	Streams int    `json:"streams"`
	Mode    string `json:"mode"` // "fused" | "sequential"
	// Backend is the tensor kernel backend the run executed on. The
	// experiment pins "parallel" by name rather than letting the
	// hardware-based default decide, so point identities (and therefore
	// benchdiff comparisons) are stable between single-core and
	// multi-core machines — on one core the parallel backend degrades to
	// the scalar schedule, and outputs are bit-identical either way.
	Backend      string  `json:"backend"`
	NsPerOp      int64   `json:"ns_per_op"`
	MsPerOp      float64 `json:"ms_per_op"`
	TokensPerSec float64 `json:"tokens_per_sec"`
}

// decodeBenchTokens is the reply length each stream decodes per op.
const decodeBenchTokens = 24

// DefaultDecodeStreams are the concurrency levels the interactive
// experiment measures; bench_test's BenchmarkDecodeContinuous covers the
// same grid under `go test -bench`.
var DefaultDecodeStreams = []int{1, 4, 8, 16}

// DecodeContinuousPoints measures end-to-end decode throughput for N
// concurrent generations, fused (continuous-batching scheduler: one
// shared model step per token for the whole batch) vs sequential (each
// request runs its own per-token decode loop). One op = N concurrent
// requests each serving a cached prompt and decoding decodeBenchTokens
// tokens; both modes produce identical token streams, so the ratio is
// pure scheduling.
func DecodeContinuousPoints(streams []int) ([]DecodePoint, error) {
	build := func(fused bool) (*promptcache.Client, error) {
		m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 444))
		if err != nil {
			return nil, err
		}
		bkOpt, err := promptcache.WithBackend("parallel")
		if err != nil {
			return nil, err
		}
		opts := []promptcache.Option{bkOpt}
		if fused {
			opts = append(opts, promptcache.WithDecodeScheduler(16))
		}
		client := promptcache.New(m, opts...)
		if _, err := client.RegisterSchema(EngineSchema("decode", 256, 4)); err != nil {
			return nil, err
		}
		return client, nil
	}
	clients := map[string]*promptcache.Client{}
	for _, mode := range []string{"fused", "sequential"} {
		c, err := build(mode == "fused")
		if err != nil {
			return nil, err
		}
		clients[mode] = c
	}
	const prompt = `<prompt schema="decode"><doc/><user>summarize the document</user></prompt>`
	ctx := context.Background()
	var out []DecodePoint
	for _, n := range streams {
		for _, mode := range []string{"fused", "sequential"} {
			client := clients[mode]
			var errMu sync.Mutex
			var inferErr error
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for s := 0; s < n; s++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							// StopToken -1: untrained-model EOS must not
							// shorten replies, so every stream decodes the
							// full count and modes stay comparable.
							if _, err := client.Infer(ctx, promptcache.Request{
								Prompt: prompt, MaxTokens: decodeBenchTokens, StopToken: -1,
							}); err != nil {
								errMu.Lock()
								inferErr = err
								errMu.Unlock()
							}
						}()
					}
					wg.Wait()
				}
			})
			if inferErr != nil {
				return nil, fmt.Errorf("bench: decode %s-%d: %w", mode, n, inferErr)
			}
			sec := float64(r.NsPerOp()) / 1e9
			out = append(out, DecodePoint{
				Streams:      n,
				Mode:         mode,
				Backend:      client.Model().Backend().Name(),
				NsPerOp:      r.NsPerOp(),
				MsPerOp:      float64(r.NsPerOp()) / 1e6,
				TokensPerSec: float64(n*decodeBenchTokens) / sec,
			})
		}
	}
	return out, nil
}

// DecodeContinuous renders the continuous-batching decode experiment as
// a Report. The same points serialize to BENCH_decode.json via
// `pcbench -json BENCH_decode.json decode`.
func DecodeContinuous() (*Report, error) {
	rep, _, err := DecodeContinuousRun()
	return rep, err
}

// DecodeContinuousRun measures the experiment once and returns both the
// printable report and the machine-readable points.
func DecodeContinuousRun() (*Report, []DecodePoint, error) {
	points, err := DecodeContinuousPoints(DefaultDecodeStreams)
	if err != nil {
		return nil, nil, err
	}
	return DecodeReport(points), points, nil
}

// DecodeReport renders measured decode points as a printable Report.
func DecodeReport(points []DecodePoint) *Report {
	rep := &Report{
		ID:     "decode",
		Title:  "Continuous-batching decode: fused scheduler vs per-request loops",
		Header: []string{"Streams", "Mode", "ms/op", "tokens/sec"},
		Notes: []string{
			fmt.Sprintf("One op = N concurrent requests each decoding %d tokens over a 256-token cached prefix.", decodeBenchTokens),
			"Fused mode advances all requests one shared model step per token; token streams are bit-identical to sequential.",
		},
	}
	for _, p := range points {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", p.Streams), p.Mode,
			fmt.Sprintf("%.2f", p.MsPerOp),
			fmt.Sprintf("%.0f", p.TokensPerSec),
		})
	}
	return rep
}

// DecodePointsJSON serializes measured points as indented JSON, the
// payload of BENCH_decode.json.
func DecodePointsJSON(points []DecodePoint) ([]byte, error) {
	return json.MarshalIndent(points, "", "  ")
}
