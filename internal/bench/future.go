package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/evict"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/serving"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// Serving runs the §6 serving-system experiment: a Zipf request stream
// over a 60-module universe on the RTX 4090, comparing replacement
// policies at a tight HBM budget against the host-only and unbounded-HBM
// reference points.
func Serving() (*Report, error) {
	base := serving.Config{
		Device:            hw.RTX4090(),
		Model:             hw.Llama7B(),
		Modules:           serving.DefaultUniverse(60, 200, 4000, 5),
		Requests:          2000,
		ModulesPerRequest: 2,
		SuffixTokens:      100,
		ZipfS:             1.1,
		Seed:              42,
	}
	results, err := serving.ComparePolicies(base, 2<<30)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "serving",
		Title:  "Two-tier serving simulation (§6): 2000 requests, 2 GiB HBM for modules, Zipf(1.1)",
		Header: []string{"Configuration", "HBM hit rate", "Mean TTFT (ms)", "P99 (ms)", "Speedup vs no-reuse", "Uploads (GiB)"},
		Notes: []string{
			"unbounded-hbm is the latency lower bound; host-only is the paper's CPU-memory setup.",
		},
	}
	order := append([]string{"unbounded-hbm"}, evict.Names()...)
	order = append(order, "host-only")
	for _, name := range order {
		st := results[name]
		rep.Rows = append(rep.Rows, []string{
			name,
			f3(st.HitRate()),
			ms(st.MeanTTFT.Seconds()),
			ms(st.P99TTFT.Seconds()),
			f1x(st.Speedup()),
			fmt.Sprintf("%.1f", float64(st.BytesUploaded)/(1<<30)),
		})
	}
	return rep, nil
}

// Throughput runs §3.4/§5.4's batch-size argument through the analytic
// model: sharing module states across a batch admits more requests per
// HBM budget and lifts decode throughput.
func Throughput() *Report {
	d := hw.A100()
	m := hw.Llama7B()
	budget := int64(20) << 30
	rep := &Report{
		ID:     "throughput",
		Title:  "Batch decode throughput vs module sharing (A100, Llama2-7B, 2K-token prompts, 20 GiB KV budget)",
		Header: []string{"Shared fraction", "Batch size", "Tokens/s"},
		Notes: []string{
			"§3.4: 100 2K-token prompts sharing a 1K module halve the footprint and admit a ~2x batch.",
		},
	}
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		p := hw.ThroughputModel(d, m, 2000, f, budget)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.0f%%", f*100),
			fmt.Sprintf("%d", p.BatchSize),
			fmt.Sprintf("%.0f", p.TokensPerSec),
		})
	}
	return rep
}

// Quant runs the §6 compression experiment on the real engine: int8
// module storage versus full precision — memory saved, output agreement.
func Quant() (*Report, error) {
	cfg := model.LlamaStyle(tokenizer.WordBase+2048, 616)
	m, err := model.New(cfg)
	if err != nil {
		return nil, err
	}
	full := promptcache.New(m)
	int8c := promptcache.New(m, core.WithInt8Modules())
	schema := EngineSchema("quant-doc", 384, 31)
	if _, err := full.RegisterSchema(schema); err != nil {
		return nil, err
	}
	if _, err := int8c.RegisterSchema(schema); err != nil {
		return nil, err
	}
	prompt := `<prompt schema="quant-doc"><doc/><user>summarize the document briefly</user></prompt>`
	ctx := context.Background()
	fres, err := full.Infer(ctx, promptcache.Request{Prompt: prompt, MaxTokens: 24})
	if err != nil {
		return nil, err
	}
	qres, err := int8c.Infer(ctx, promptcache.Request{Prompt: prompt, MaxTokens: 24})
	if err != nil {
		return nil, err
	}
	fGen, qGen := fres.Tokens, qres.Tokens
	rep := &Report{
		ID:     "quant",
		Title:  "int8 module storage vs fp32 (§6 compression direction, real engine)",
		Header: []string{"Quantity", "Value"},
	}
	// int4 point on the same module states, via the library API.
	layout, err := full.Engine().Layout("quant-doc")
	if err != nil {
		return nil, err
	}
	docTokens := layout.Modules["doc"].OwnTokens()
	probe := m.NewCache(docTokens)
	docToks, docPos := make([]int, 0, docTokens), make([]int, 0, docTokens)
	for _, seg := range layout.Modules["doc"].Segments {
		docToks = append(docToks, seg.Tokens...)
		docPos = append(docPos, seg.Pos...)
	}
	if _, err := m.Prefill(docToks, docPos, probe); err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows,
		[]string{"Module pool bytes (fp32)", fmt.Sprintf("%d", full.Engine().PoolUsed())},
		[]string{"Module pool bytes (int8)", fmt.Sprintf("%d", int8c.Engine().PoolUsed())},
		[]string{"Compression ratio int8", fmt.Sprintf("%.2fx", float64(full.Engine().PoolUsed())/float64(int8c.Engine().PoolUsed()))},
		[]string{"Compression ratio int4", fmt.Sprintf("%.2fx", quant.RatioInt4(probe))},
		[]string{"Logit cosine int8 vs fp32", f3(tensor.CosineSimilarity(fres.Logits, qres.Logits))},
		[]string{"Generation overlap int8 vs fp32", f3(metrics.TokenOverlap(fGen, qGen))},
	)
	rep.Notes = append(rep.Notes,
		"Against the paper's fp16 accounting the ratio is ~1.9x; Table 2's Llama-70B row (2.5 MB/token) would drop to ~1.3 MB/token.",
	)
	return rep, nil
}
