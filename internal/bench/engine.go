package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/serving"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// EngineSchema builds a schema whose single document module is roughly
// docTokens tokens long, for measured engine-scale latency runs.
func EngineSchema(name string, docTokens int, seed uint64) string {
	r := rng.New(seed)
	words := make([]string, docTokens)
	pool := []string{"harbor", "archive", "council", "garden", "bridge",
		"records", "visitors", "seasonal", "trade", "history", "detail",
		"lantern", "market", "castle", "railway", "festival"}
	for i := range words {
		words[i] = rng.Choice(r, pool)
	}
	return fmt.Sprintf("<schema name=%q><module name=\"doc\">%s</module></schema>",
		name, strings.Join(words, " "))
}

// EngineLatency measures real (wall-clock) TTFT on the Go engine itself —
// no analytic model — reproducing Fig. 5's shape at engine scale:
// baseline prefill grows quadratically with the cached document's length
// while cached serving cost stays nearly flat (only the suffix is
// computed), so the advantage widens with sequence length.
func EngineLatency() (*Report, error) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 123))
	if err != nil {
		return nil, err
	}
	client := promptcache.New(m)
	ctx := context.Background()
	rep := &Report{
		ID:     "engine",
		Title:  "Measured TTFT on the Go engine (llama-style test model)",
		Header: []string{"DocTokens", "Baseline (ms)", "Cached (ms)", "Advantage"},
		Notes: []string{
			"Wall-clock medians of 3 runs on this machine; shape (quadratic vs flat) is the reproduced claim.",
		},
	}
	for _, n := range []int{128, 256, 512, 1024} {
		name := fmt.Sprintf("engine-%d", n)
		if _, err := client.RegisterSchema(EngineSchema(name, n, uint64(n))); err != nil {
			return nil, err
		}
		prompt := fmt.Sprintf("<prompt schema=%q><doc/><user>summarize the document</user></prompt>", name)
		baseMs, err := medianServe(3, func() error {
			_, e := client.Infer(ctx, promptcache.Request{Prompt: prompt, Baseline: true, PrefillOnly: true})
			return e
		})
		if err != nil {
			return nil, err
		}
		cachedMs, err := medianServe(3, func() error {
			_, e := client.Infer(ctx, promptcache.Request{Prompt: prompt, PrefillOnly: true})
			return e
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", baseMs),
			fmt.Sprintf("%.2f", cachedMs), f1x(baseMs / cachedMs),
		})
	}
	return rep, nil
}

// EngineServing bridges the serving simulator and the real engine: a
// Zipf trace over a 12-module schema replayed with actual inference,
// comparing an unconstrained module cache against a tiered one (tight
// primary pool + host pool) and against no reuse at all. Every TTFT is
// wall-clock measured, not modelled.
func EngineServing() (*Report, error) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 321))
	if err != nil {
		return nil, err
	}
	// One schema whose modules form the universe.
	const nMods = 12
	var sb strings.Builder
	sb.WriteString(`<schema name="esrv">`)
	specs := make([]serving.ModuleSpec, nMods)
	r := rng.New(321)
	for i := 0; i < nMods; i++ {
		tokens := 40 + r.Intn(120)
		specs[i] = serving.ModuleSpec{Name: fmt.Sprintf("m%d", i), Tokens: tokens}
		words := make([]string, tokens)
		pool := []string{"harbor", "archive", "council", "garden", "bridge", "records", "railway", "festival"}
		for w := range words {
			words[w] = rng.Choice(r, pool)
		}
		fmt.Fprintf(&sb, `<module name=%q>%s</module>`, specs[i].Name, strings.Join(words, " "))
	}
	sb.WriteString(`</schema>`)
	schema := sb.String()

	trace, err := serving.GenerateTrace(serving.Config{
		Modules: specs, Requests: 40, ModulesPerRequest: 2, SuffixTokens: 8, ZipfS: 1.1, Seed: 11,
	})
	if err != nil {
		return nil, err
	}
	promptFor := func(req serving.Request) string {
		var b strings.Builder
		fmt.Fprintf(&b, `<prompt schema="esrv">`)
		for _, name := range req.Modules {
			fmt.Fprintf(&b, "<%s/>", name)
		}
		b.WriteString(`<user>answer briefly from the documents</user></prompt>`)
		return b.String()
	}

	run := func(c *promptcache.Client, baseline bool) (float64, error) {
		ctx := context.Background()
		var total time.Duration
		for _, req := range trace {
			p := promptFor(req)
			t0 := time.Now()
			_, err = c.Infer(ctx, promptcache.Request{Prompt: p, Baseline: baseline, PrefillOnly: true})
			if err != nil {
				return 0, err
			}
			total += time.Since(t0)
		}
		return total.Seconds() * 1e3 / float64(len(trace)), nil
	}

	unconstrained := promptcache.New(m)
	if _, err := unconstrained.RegisterSchema(schema); err != nil {
		return nil, err
	}
	need := unconstrained.Engine().PoolUsed()
	tiered := promptcache.New(m,
		core.WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/3 + 1})),
		core.WithHostPool(memory.NewPool(memory.Device{Name: "dram", Kind: memory.DRAM})),
	)
	if _, err := tiered.RegisterSchema(schema); err != nil {
		return nil, err
	}

	baseMs, err := run(unconstrained, true)
	if err != nil {
		return nil, err
	}
	fullMs, err := run(unconstrained, false)
	if err != nil {
		return nil, err
	}
	tieredMs, err := run(tiered, false)
	if err != nil {
		return nil, err
	}
	st := tiered.Stats()
	rep := &Report{
		ID:     "engine-serving",
		Title:  "Measured trace replay on the Go engine (40 Zipf requests, 12 modules)",
		Header: []string{"Configuration", "Mean TTFT (ms)", "Speedup"},
		Notes: []string{
			fmt.Sprintf("tiered cache (1/3 capacity): %d demotions, %d promotions, %d re-encodes",
				st.ModulesDemoted, st.ModulesPromoted, st.ModulesReloaded),
		},
	}
	rep.Rows = append(rep.Rows,
		[]string{"No reuse (baseline)", fmt.Sprintf("%.2f", baseMs), "1.0x"},
		[]string{"Prompt Cache, unconstrained", fmt.Sprintf("%.2f", fullMs), f1x(baseMs / fullMs)},
		[]string{"Prompt Cache, tiered (1/3 HBM)", fmt.Sprintf("%.2f", tieredMs), f1x(baseMs / tieredMs)},
	)
	return rep, nil
}

func medianServe(runs int, f func() error) (float64, error) {
	times := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(t0).Seconds()*1e3)
	}
	// insertion sort; runs is tiny
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2], nil
}
