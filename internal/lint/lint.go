// Package lint is pclint's engine: a stdlib-only static analysis driver
// (go/parser, go/types, go/ast — no golang.org/x/tools) plus five
// repo-specific analyzers that machine-check the serving engine's
// correctness invariants:
//
//   - lockscope: nothing heavy — prefill/decode/generate, disk blob I/O,
//     the quant codec — may run while an engine mutex is held.
//   - pinbalance: module pin acquisitions must be released on every
//     error return.
//   - maporder: no map iteration in functions reachable from
//     ordering-sensitive token paths, unless gathered-then-sorted.
//   - ctxplumb: exported serve/generate entry points must accept and
//     forward context.Context.
//   - errtaxonomy: errors born in the engine must wrap the typed
//     taxonomy the HTTP layer maps to statuses.
//
// A diagnostic is suppressed by a directive on the same line or the
// line above:
//
//	//pclint:ignore <analyzer> <reason>
//
// The reason is mandatory — an ignore without one is itself reported.
// All analysis is a deliberate approximation: call graphs follow only
// statically-resolved callees (no interface dispatch), and lock regions
// are lexical. Both under-approximate, so a clean run is evidence, not
// proof; neither ever blocks a legal program without a suppressible
// site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is a loaded, type-checked module ready for analysis.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	checked map[string]*types.Package
	exports map[string]string
	gc      types.Importer

	graph *callGraph
}

// Package is one type-checked module package.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks findings matched by a //pclint:ignore directive;
	// Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	if d.Suppressed {
		s += fmt.Sprintf(" (suppressed: %s)", d.Reason)
	}
	return s
}

// An analyzerFunc inspects the program and reports findings. Suppression
// is applied by the driver afterwards.
type analyzerFunc func(prog *Program, cfg *Config) []Diagnostic

// AnalyzerNames lists every analyzer in the order they run.
var AnalyzerNames = []string{"lockscope", "pinbalance", "maporder", "ctxplumb", "errtaxonomy"}

var analyzers = map[string]analyzerFunc{
	"lockscope":   lockscope,
	"pinbalance":  pinbalance,
	"maporder":    maporder,
	"ctxplumb":    ctxplumb,
	"errtaxonomy": errtaxonomy,
}

// Run executes the named analyzers (all of them when names is empty)
// and returns diagnostics sorted by position, with suppression
// directives applied.
func (prog *Program) Run(cfg *Config, names ...string) ([]Diagnostic, error) {
	if len(names) == 0 {
		names = AnalyzerNames
	}
	var diags []Diagnostic
	for _, name := range names {
		fn, ok := analyzers[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		diags = append(diags, fn(prog, cfg)...)
	}
	sup, bad := prog.suppressions()
	diags = append(diags, bad...)
	for i := range diags {
		if dir, ok := sup[supKey{diags[i].Pos.Filename, diags[i].Pos.Line, diags[i].Analyzer}]; ok {
			diags[i].Suppressed = true
			diags[i].Reason = dir
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// Unsuppressed filters diagnostics down to the ones that fail a run.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

type supKey struct {
	file     string
	line     int
	analyzer string
}

const ignorePrefix = "//pclint:ignore"

// suppressions scans every file for //pclint:ignore directives. A
// directive suppresses matching diagnostics on its own line (trailing
// comment) and on the line immediately below (own-line comment).
// Malformed directives — unknown analyzer, missing reason — are
// reported as pclint's own diagnostics so a typo cannot silently turn a
// gate off.
func (prog *Program) suppressions() (map[supKey]string, []Diagnostic) {
	sup := map[supKey]string{}
	var bad []Diagnostic
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
					name, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					if _, known := analyzers[name]; !known {
						bad = append(bad, Diagnostic{Pos: pos, Analyzer: "pclint",
							Message: fmt.Sprintf("malformed ignore directive: unknown analyzer %q (want one of %s)", name, strings.Join(AnalyzerNames, ", "))})
						continue
					}
					if reason == "" {
						bad = append(bad, Diagnostic{Pos: pos, Analyzer: "pclint",
							Message: fmt.Sprintf("ignore directive for %q needs a reason: //pclint:ignore %s <why this is safe>", name, name)})
						continue
					}
					sup[supKey{pos.Filename, pos.Line, name}] = reason
					sup[supKey{pos.Filename, pos.Line + 1, name}] = reason
				}
			}
		}
	}
	return sup, bad
}

// funcKey names a function or method the way Config fields reference
// it: "pkg/path.Func" or "pkg/path.Type.Method" (pointer receivers are
// not distinguished from value receivers).
func funcKey(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + f.Name()
		}
	}
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	return f.Name()
}

// callee resolves a call expression to the *types.Func it statically
// invokes, or nil for indirect calls (function values, interface
// methods) and conversions.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				// Interface dispatch has no static callee.
				if types.IsInterface(sel.Recv().Underlying()) {
					return nil
				}
				return f
			}
			return nil
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// stringSet builds a membership set from a slice.
func stringSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}
