package lint

import (
	"go/ast"
	"go/types"
)

// declInfo ties a function's declaration to the package it lives in.
type declInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
	key  string
}

// callSite is one static call made by a declared function.
type callSite struct {
	caller *declInfo
	call   *ast.CallExpr
	key    string // callee funcKey
	// viaGo marks `go f(...)` launches: the callee runs concurrently,
	// so it does not inherit the caller's lock context.
	viaGo bool
}

// callGraph is a static over-the-source call-graph approximation keyed
// by funcKey. Only statically-resolved callees appear: calls through
// function values and interface methods are invisible, and calls inside
// function literals are attributed to the enclosing declaration (a
// closure usually runs on behalf of its creator — and for lock analysis
// a deferred closure literally runs inside the caller's frame). This
// under-approximates reachability; the curated root/heavy sets in
// Config are chosen so the edges that matter are direct.
type callGraph struct {
	decls map[string]*declInfo   // funcKey -> declaration
	calls map[string][]*callSite // caller funcKey -> every static call it makes
}

// callgraph builds (once) and returns the program's call graph.
func (prog *Program) callgraph() *callGraph {
	if prog.graph != nil {
		return prog.graph
	}
	g := &callGraph{
		decls: map[string]*declInfo{},
		calls: map[string][]*callSite{},
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				di := &declInfo{pkg: pkg, decl: fd, key: funcKey(fn)}
				g.decls[di.key] = di
				goCalls := map[*ast.CallExpr]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if gs, ok := n.(*ast.GoStmt); ok {
						goCalls[gs.Call] = true
						return true
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if f := callee(pkg.Info, call); f != nil {
						g.calls[di.key] = append(g.calls[di.key],
							&callSite{caller: di, call: call, key: funcKey(f), viaGo: goCalls[call]})
					}
					return true
				})
			}
		}
	}
	prog.graph = g
	return g
}

// reachable returns every funcKey reachable from roots over the static
// call graph, roots included. Traversal does not descend through stop
// keys (it records them but not their callees).
func (g *callGraph) reachable(roots []string, stop map[string]bool) map[string]bool {
	seen := map[string]bool{}
	work := append([]string(nil), roots...)
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[k] {
			continue
		}
		seen[k] = true
		if stop[k] {
			continue
		}
		for _, cs := range g.calls[k] {
			if !seen[cs.key] {
				work = append(work, cs.key)
			}
		}
	}
	return seen
}
