package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockscope reports calls that may reach a heavy function — prefill,
// decode/generate, disk-blob I/O, the quant codec — while one of the
// guarded engine mutexes is held. Holding Cache.mu across a prefill
// serializes every concurrent serve behind one model walk; the PR 2
// plan/execute split exists precisely so this never happens.
//
// Lock regions are lexical: mu.Lock() opens a region that the next
// plain mu.Unlock() closes (defer mu.Unlock() holds to function end),
// and a function named *Locked in a package owning a guarded mutex is
// treated as entirely locked. The locked-context set then propagates
// down the static call graph, stopping at heavy functions so each
// violation is reported exactly once — at the deepest call site that
// names a heavy function, where a single //pclint:ignore covers every
// lock path into it.
func lockscope(prog *Program, cfg *Config) []Diagnostic {
	g := prog.callgraph()
	heavy := stringSet(cfg.HeavyFuncs)
	guarded := stringSet(cfg.GuardedMutexes)

	// Packages that own a guarded mutex: the *Locked naming convention
	// only applies there.
	lockedPkgs := map[string]bool{}
	for m := range guarded {
		if i := strings.LastIndex(m, "."); i >= 0 {
			if j := strings.LastIndex(m[:i], "."); j >= 0 {
				lockedPkgs[m[:j]] = true
			}
		}
	}

	// Seed the locked-context worklist: whole *Locked functions, plus
	// callees invoked from within an explicit Lock..Unlock region.
	fullyLocked := map[string]bool{}
	var work []string
	mark := func(key string) {
		if !fullyLocked[key] && !heavy[key] {
			if _, ok := g.decls[key]; ok {
				fullyLocked[key] = true
				work = append(work, key)
			}
		}
	}
	lockedCalls := map[string][]*callSite{} // caller -> calls made under an explicit region
	for key, di := range g.decls {
		if strings.HasSuffix(di.decl.Name.Name, cfg.LockedSuffix) && lockedPkgs[di.pkg.Path] {
			mark(key)
			continue
		}
		regions := lockRegions(di, guarded)
		if len(regions) == 0 {
			continue
		}
		for _, cs := range g.calls[key] {
			if inRegions(regions, cs.call.Pos()) {
				lockedCalls[key] = append(lockedCalls[key], cs)
			}
		}
	}

	var diags []Diagnostic
	report := func(cs *callSite, via string) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(cs.call.Pos()),
			Analyzer: "lockscope",
			Message: fmt.Sprintf("%s may run while %s is held (%s): move it outside the critical section (plan/execute split) or justify with //pclint:ignore",
				cs.key, via, describeLockPath(cs.caller.decl.Name.Name, cfg.LockedSuffix)),
		})
	}

	// Calls made directly inside an explicit lock region.
	for _, calls := range lockedCalls {
		for _, cs := range calls {
			if cs.viaGo {
				continue // a spawned goroutine does not hold the caller's lock
			}
			if heavy[cs.key] {
				report(cs, "a guarded mutex")
			} else {
				mark(cs.key)
			}
		}
	}
	// Propagate: everything a locked-context function calls is itself
	// locked-context, until a heavy callee is reported.
	for len(work) > 0 {
		key := work[len(work)-1]
		work = work[:len(work)-1]
		for _, cs := range g.calls[key] {
			if cs.viaGo {
				continue
			}
			if heavy[cs.key] {
				report(cs, "a guarded mutex")
			} else {
				mark(cs.key)
			}
		}
	}
	return diags
}

func describeLockPath(caller, lockedSuffix string) string {
	if strings.HasSuffix(caller, lockedSuffix) {
		return "reached from " + caller + ", named *" + lockedSuffix
	}
	return "reached from a locked region in " + caller
}

// lockRegion is a lexical [from,to) span of positions where a guarded
// mutex is held.
type lockRegion struct {
	from, to token.Pos
}

// lockRegions scans a function body for Lock/Unlock calls on guarded
// mutexes and returns the lexical spans between them. A deferred
// Unlock, matching the language, holds the lock to the end of the
// function, not the end of the block.
func lockRegions(di *declInfo, guarded map[string]bool) []lockRegion {
	type event struct {
		pos   token.Pos
		mutex string
		kind  int // 0 lock, 1 unlock, 2 deferred unlock
	}
	var events []event
	ast.Inspect(di.decl.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		kindShift := 0
		switch s := n.(type) {
		case *ast.DeferStmt:
			call = s.Call
			kindShift = 1
		case *ast.CallExpr:
			call = s
		default:
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var kind int
		switch sel.Sel.Name {
		case "Lock":
			kind = 0
		case "Unlock":
			kind = 1 + kindShift
		default:
			return true
		}
		m := mutexRef(di.pkg.Info, sel.X, guarded)
		if m == "" {
			return true
		}
		events = append(events, event{pos: call.Pos(), mutex: m, kind: kind})
		return kindShift == 0 // a deferred Unlock has no nested events worth visiting
	})

	end := di.decl.Body.End()
	var regions []lockRegion
	open := map[string]token.Pos{} // mutex -> Lock position
	for _, ev := range events {
		switch ev.kind {
		case 0:
			if _, ok := open[ev.mutex]; !ok {
				open[ev.mutex] = ev.pos
			}
		case 1:
			if from, ok := open[ev.mutex]; ok {
				regions = append(regions, lockRegion{from: from, to: ev.pos})
				delete(open, ev.mutex)
			}
		case 2:
			from, ok := open[ev.mutex]
			if !ok {
				// defer mu.Unlock() with no visible Lock: assume held
				// from here on (e.g. lock taken by a helper).
				from = ev.pos
			}
			regions = append(regions, lockRegion{from: from, to: end})
			delete(open, ev.mutex)
		}
	}
	// A Lock never released in this function (handed to a callee or a
	// *Locked helper chain) holds to the end.
	for _, from := range open {
		regions = append(regions, lockRegion{from: from, to: end})
	}
	return regions
}

func inRegions(regions []lockRegion, pos token.Pos) bool {
	for _, r := range regions {
		if r.from <= pos && pos < r.to {
			return true
		}
	}
	return false
}

// mutexRef resolves the receiver expression of a Lock/Unlock call to a
// guarded-mutex field key ("pkg.Type.field"), or "" when it is not one.
func mutexRef(info *types.Info, x ast.Expr, guarded map[string]bool) string {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return ""
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
	if guarded[key] {
		return key
	}
	return ""
}
