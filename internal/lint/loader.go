package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Export     string
	Dir        string
	GoFiles    []string
	Module     *struct{ Path string }
}

// Load type-checks the module packages matched by patterns (plus every
// module package they depend on) and returns them in dependency order.
//
// The loader is stdlib-only: `go list -export -deps -json` resolves the
// build list and hands back compiled export data for every non-module
// dependency (stdlib included), so only the module's own packages are
// type-checked from source. dir must be inside the module; patterns
// default to ./... .
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.Bytes())
	}

	exports := map[string]string{}
	var modPkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		// `go list -deps` emits dependencies before dependents, so
		// module packages accumulate in type-check order.
		if p.Module != nil {
			modPkgs = append(modPkgs, p)
		} else if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	prog := &Program{
		Fset:    token.NewFileSet(),
		checked: map[string]*types.Package{},
		exports: exports,
	}
	for _, p := range modPkgs {
		pkg, err := prog.checkSource(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// checkSource parses and type-checks one package from source, resolving
// imports against already-checked module packages or export data.
func (prog *Program) checkSource(importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: prog.importer()}
	tpkg, err := conf.Check(importPath, prog.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	prog.checked[importPath] = tpkg
	return &Package{Path: importPath, Files: files, Types: tpkg, Info: info}, nil
}

// importer resolves an import path to an already-checked module package
// or, failing that, to compiled export data from the go build cache.
func (prog *Program) importer() types.Importer {
	if prog.gc == nil {
		prog.gc = importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
			exp, ok := prog.exports[path]
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(exp)
		})
	}
	return importerFunc(func(path string) (*types.Package, error) {
		if p, ok := prog.checked[path]; ok {
			return p, nil
		}
		return prog.gc.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
