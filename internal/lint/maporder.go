package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// maporder reports `range` over a map in any function reachable from an
// ordering-sensitive root: token emission (gatherNewTokens — the exact
// PR 2 bug class, where map-walk order leaked into argument token
// order), scheduler lane processing, and manifest/snapshot writing.
// Go randomizes map iteration per run, so any of these paths touching
// it produces nondeterministic tokens or unstable bytes on disk.
//
// The gather-then-sort idiom is recognized and allowed: a loop whose
// body only accumulates order-independently — appending to slices that
// are later sorted in the same function, writing map entries, counting
// — is deterministic once the sort lands. Anything else in the body
// (calls, sends, returns) could observe the random order and is
// reported.
func maporder(prog *Program, cfg *Config) []Diagnostic {
	g := prog.callgraph()
	reach := g.reachable(cfg.OrderRoots, nil)

	var diags []Diagnostic
	for key := range reach {
		di, ok := g.decls[key]
		if !ok {
			continue
		}
		ast.Inspect(di.decl.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := di.pkg.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if gatherThenSort(di, rng) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      prog.Fset.Position(rng.Pos()),
				Analyzer: "maporder",
				Message: fmt.Sprintf("map iteration order is random and %s is reachable from an ordering-sensitive root (%s): collect keys and sort first, or gather-then-sort",
					shortName(key), rootList(cfg.OrderRoots)),
			})
			return true
		})
	}
	return diags
}

func rootList(roots []string) string {
	s := ""
	for i, r := range roots {
		if i > 0 {
			s += ", "
		}
		s += shortName(r)
	}
	return s
}

// gatherThenSort reports whether a map-range loop only accumulates
// order-independent state: every statement in its body is an
// order-independent accumulation (append to a slice, map write,
// counter update, continue — possibly inside an if), and every slice
// it appends to is passed to a sort call later in the same function.
func gatherThenSort(di *declInfo, rng *ast.RangeStmt) bool {
	var appended []types.Object
	var ok func(stmt ast.Stmt) bool
	ok = func(stmt ast.Stmt) bool {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			return orderIndependentAssign(di, s, &appended)
		case *ast.IncDecStmt:
			return true
		case *ast.BranchStmt:
			return true // continue/break do not observe order
		case *ast.IfStmt:
			if s.Init != nil && !ok(s.Init) {
				return false
			}
			for _, b := range s.Body.List {
				if !ok(b) {
					return false
				}
			}
			if s.Else != nil {
				if blk, isBlk := s.Else.(*ast.BlockStmt); isBlk {
					for _, b := range blk.List {
						if !ok(b) {
							return false
						}
					}
					return true
				}
				return ok(s.Else)
			}
			return true
		default:
			return false
		}
	}
	for _, stmt := range rng.Body.List {
		if !ok(stmt) {
			return false
		}
	}
	// Every appended-to slice must be sorted after the loop.
	for _, obj := range appended {
		if !sortedAfter(di, obj, rng.End()) {
			return false
		}
	}
	return true
}

// orderIndependentAssign accepts `x = append(x, ...)` (recording x),
// map writes `m[k] = v`, and commutative updates `n += v` / `n |= v`.
func orderIndependentAssign(di *declInfo, as *ast.AssignStmt, appended *[]types.Object) bool {
	switch as.Tok.String() {
	case "+=", "|=", "&=", "*=":
		return true
	}
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, lhs := range as.Lhs {
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			tv, ok := di.pkg.Info.Types[l.X]
			if !ok {
				return false
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return false
			}
		case *ast.Ident:
			call, isCall := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !isCall {
				return false
			}
			fid, isIdent := call.Fun.(*ast.Ident)
			if !isIdent || fid.Name != "append" {
				return false
			}
			obj := di.pkg.Info.ObjectOf(l)
			if obj == nil {
				return false
			}
			*appended = append(*appended, obj)
		default:
			return false
		}
	}
	return true
}

// sortedAfter reports whether obj appears as an argument to a call in
// the sort or slices package after pos in the same function.
func sortedAfter(di *declInfo, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(di.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, isPkg := di.pkg.Info.Uses[pkgID].(*types.PkgName); !isPkg ||
			(pkgName.Imported().Path() != "sort" && pkgName.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && di.pkg.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
