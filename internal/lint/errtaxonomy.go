package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"strings"
)

// errtaxonomy checks that errors born inside the engine wrap the typed
// taxonomy. The HTTP layer's status mapping is a chain of errors.Is
// tests against the sentinels in core/errors.go; an error built with a
// bare errors.New or a %v-style fmt.Errorf is invisible to that chain
// and falls through to 500, so the taxonomy→status mapping silently
// stops being total.
//
// Flagged: function-scope errors.New, and fmt.Errorf whose constant
// format string has no %w verb. Package-level var declarations are
// exempt — that is where sentinels themselves are born.
func errtaxonomy(prog *Program, cfg *Config) []Diagnostic {
	pkgs := stringSet(cfg.ErrPackages)
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !pkgs[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if d, bad := checkErrCall(prog, pkg, call); bad {
						diags = append(diags, d)
					}
					return true
				})
			}
		}
	}
	return diags
}

func checkErrCall(prog *Program, pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	f := callee(pkg.Info, call)
	if f == nil || f.Pkg() == nil {
		return Diagnostic{}, false
	}
	switch f.Pkg().Path() + "." + f.Name() {
	case "errors.New":
		return Diagnostic{
			Pos:      prog.Fset.Position(call.Pos()),
			Analyzer: "errtaxonomy",
			Message:  "error created with errors.New inside a function is invisible to the errors.Is→HTTP status mapping: wrap a sentinel with fmt.Errorf(\"...: %w\", Err...)",
		}, true
	case "fmt.Errorf":
		if len(call.Args) == 0 {
			return Diagnostic{}, false
		}
		tv, ok := pkg.Info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return Diagnostic{}, false // dynamic format: nothing to prove
		}
		format := constant.StringVal(tv.Value)
		if hasWrapVerb(format) {
			return Diagnostic{}, false
		}
		return Diagnostic{
			Pos:      prog.Fset.Position(call.Pos()),
			Analyzer: "errtaxonomy",
			Message:  fmt.Sprintf("fmt.Errorf(%q) does not wrap the typed taxonomy (no %%w): the server maps unrecognized errors to 500", truncate(format, 40)),
		}, true
	}
	return Diagnostic{}, false
}

// hasWrapVerb reports whether a format string contains a %w verb
// (ignoring %%-escapes).
func hasWrapVerb(format string) bool {
	for i := 0; i+1 < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if format[i+1] == '%' {
			i++
			continue
		}
		// Scan past flags/width to the verb.
		j := i + 1
		for j < len(format) && strings.ContainsRune("+-# 0123456789.[]*", rune(format[j])) {
			j++
		}
		if j < len(format) && format[j] == 'w' {
			return true
		}
	}
	return false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
