package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pinbalance checks that every module-pin acquisition is matched by a
// release on every error return. A leaked pin makes a module immune to
// eviction forever — the cache slowly wedges under memory pressure with
// no crash to point at the culprit.
//
// An obligation starts at a call to a configured acquire function or at
// a `x.pins++` on the pin refcount field. Any error return lexically
// after it must be preceded by a release — a call to a configured
// release function (directly, or inside an earlier defer), or a
// `x.pins--` — unless the acquire is own-error-exempt and the return
// hands back that acquire's own untouched err. Success returns are
// deliberately not checked — on success, pin ownership transfers to
// the returned plan/result, whose Close is the release (runtime-
// tested) — and a success return also *discharges* every obligation
// opened before it: `em.pins++; return part, nil` is the transfer
// idiom, and an error return lexically after it sits on a disjoint
// branch.
func pinbalance(prog *Program, cfg *Config) []Diagnostic {
	g := prog.callgraph()
	acquires := map[string]AcquireSpec{}
	for _, a := range cfg.Acquires {
		acquires[a.Func] = a
	}
	releases := stringSet(cfg.Releases)

	var diags []Diagnostic
	for _, di := range g.decls {
		diags = append(diags, checkPinBalance(prog, di, g, acquires, releases, cfg.PinField)...)
	}
	return diags
}

// obligation is one live acquisition within a function body.
type obligation struct {
	pos  token.Pos
	what string
	// errObj, when non-nil, is the err variable the acquire assigned;
	// returning it untouched is exempt (own-error-exempt acquires only).
	errObj types.Object
}

func checkPinBalance(prog *Program, di *declInfo, g *callGraph, acquires map[string]AcquireSpec, releases map[string]bool, pinField string) []Diagnostic {
	body := di.decl.Body

	// Does this function even return an error? If not, there are no
	// error returns to audit (ownership transfers via struct fields).
	fn, _ := di.pkg.Info.Defs[di.decl.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	errIdx := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return nil
	}

	// One lexical sweep: record acquisitions, releases (including
	// deferred ones), err reassignments, and returns, in source order.
	var obls []obligation
	var releasePos []token.Pos
	var deferPos []token.Pos
	reassigned := map[types.Object][]token.Pos{}
	var diags []Diagnostic

	isRelease := func(call *ast.CallExpr) bool {
		f := callee(di.pkg.Info, call)
		return f != nil && releases[funcKey(f)]
	}
	// containsRelease reports whether any release call or pins--
	// appears under n (used for defer statements and closures).
	var containsRelease func(n ast.Node) bool
	containsRelease = func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.CallExpr:
				if isRelease(s) {
					found = true
				}
			case *ast.IncDecStmt:
				if s.Tok == token.DEC && isPinField(di.pkg.Info, s.X, pinField) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			if containsRelease(s) {
				// A defer runs on every return after it, even for
				// obligations acquired later in the body.
				deferPos = append(deferPos, s.Pos())
			}
			return false
		case *ast.IncDecStmt:
			if isPinField(di.pkg.Info, s.X, pinField) {
				if s.Tok == token.INC {
					obls = append(obls, obligation{pos: s.Pos(), what: "pin refcount increment"})
				} else {
					releasePos = append(releasePos, s.Pos())
				}
			}
		case *ast.CallExpr:
			if isRelease(s) {
				releasePos = append(releasePos, s.Pos())
				return true
			}
			if f := callee(di.pkg.Info, s); f != nil {
				if spec, ok := acquires[funcKey(f)]; ok && funcKey(f) != funcKey(fn) {
					obls = append(obls, obligation{pos: s.Pos(), what: "call to " + shortName(spec.Func)})
					if spec.OwnErrorExempt {
						obls[len(obls)-1].errObj = assignedErr(di.pkg.Info, body, s)
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := di.pkg.Info.ObjectOf(id); obj != nil {
						reassigned[obj] = append(reassigned[obj], s.Pos())
					}
				}
			}
		case *ast.ReturnStmt:
			if returnedErr(di.pkg.Info, s, errIdx, sig) == nil {
				// Success return: ownership of everything acquired so
				// far transfers to the returned value.
				obls = obls[:0]
				return true
			}
			diags = append(diags, checkReturn(prog, di, s, errIdx, sig, obls, releasePos, deferPos, reassigned, acquires)...)
		}
		return true
	})
	return diags
}

// checkReturn audits one return statement against the obligations
// opened before it.
func checkReturn(prog *Program, di *declInfo, ret *ast.ReturnStmt, errIdx int, sig *types.Signature, obls []obligation, releasePos, deferPos []token.Pos, reassigned map[types.Object][]token.Pos, acquires map[string]AcquireSpec) []Diagnostic {
	errExpr := returnedErr(di.pkg.Info, ret, errIdx, sig)
	if errExpr == nil {
		return nil // success return (nil error, or bare return of zero err)
	}
	// A tail call `return c.acquire(...)` passes the obligation to the
	// caller of *this* function; the acquire list covers it there.
	if call, ok := ast.Unparen(errExpr).(*ast.CallExpr); ok {
		if f := callee(di.pkg.Info, call); f != nil {
			if _, isAcq := acquires[funcKey(f)]; isAcq {
				return nil
			}
		}
	}
	errObj := errObjOf(di.pkg.Info, errExpr)

	var diags []Diagnostic
	for _, o := range obls {
		if o.pos >= ret.Pos() {
			continue
		}
		// Own-error exemption: returning the acquire's own err, not
		// reassigned since the acquire.
		if o.errObj != nil && errObj == o.errObj && !reassignedBetween(reassigned[errObj], o.pos, ret.Pos()) {
			continue
		}
		if releasedBetween(releasePos, o.pos, ret.Pos()) || deferCovers(deferPos, ret.Pos()) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(ret.Pos()),
			Analyzer: "pinbalance",
			Message: fmt.Sprintf("error return may leak pins from %s at line %d: release them (unpinModules / release / pins--) before returning",
				o.what, prog.Fset.Position(o.pos).Line),
		})
	}
	return diags
}

// returnedErr extracts the expression returned in the error slot, or
// nil when this return cannot carry a non-nil error (nil literal, or a
// bare return whose named err result was never visibly set — bare
// returns with a live obligation are rare enough to leave to review).
func returnedErr(info *types.Info, ret *ast.ReturnStmt, errIdx int, sig *types.Signature) ast.Expr {
	if len(ret.Results) == 0 {
		return nil
	}
	var e ast.Expr
	if len(ret.Results) == sig.Results().Len() {
		e = ret.Results[errIdx]
	} else if len(ret.Results) == 1 {
		// `return f()` forwarding a multi-result call: treat the call
		// itself as the error expression.
		e = ret.Results[0]
	} else {
		return nil
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return nil
	}
	return e
}

// errObjOf resolves a returned error expression to its variable, when
// it is one.
func errObjOf(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

// assignedErr finds the err variable an acquire call's enclosing
// `x, err := acquire(...)` assigns, if any.
func assignedErr(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr) types.Object {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || as.Rhs[0] != call {
			return true
		}
		last := as.Lhs[len(as.Lhs)-1]
		if id, ok := last.(*ast.Ident); ok {
			obj = info.ObjectOf(id)
		}
		return false
	})
	return obj
}

func isPinField(info *types.Info, x ast.Expr, pinField string) bool {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	t := s.Recv()
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path()+"."+named.Obj().Name()+"."+sel.Sel.Name == pinField
}

func releasedBetween(releasePos []token.Pos, from, to token.Pos) bool {
	for _, p := range releasePos {
		if from <= p && p < to {
			return true
		}
	}
	return false
}

// deferCovers reports whether a release-bearing defer precedes the
// return (it then fires on that return, whenever its obligation began).
func deferCovers(deferPos []token.Pos, ret token.Pos) bool {
	for _, p := range deferPos {
		if p < ret {
			return true
		}
	}
	return false
}

func reassignedBetween(positions []token.Pos, from, to token.Pos) bool {
	for _, p := range positions {
		if from < p && p < to {
			return true
		}
	}
	return false
}

func shortName(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
