package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// ctxplumb checks that exported serve/generate entry points in the
// configured packages accept a context.Context and actually forward it.
// Cancellation is part of the serving contract — the HTTP layer maps
// ctx.Err() to 499/504 — and an entry point that drops its context
// silently turns client disconnects into wasted prefill work.
func ctxplumb(prog *Program, cfg *Config) []Diagnostic {
	pkgs := stringSet(cfg.CtxPackages)
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		if !pkgs[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				if !hasPrefix(fd.Name.Name, cfg.CtxPrefixes) {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || !exportedReceiver(fn) {
					continue
				}
				diags = append(diags, checkCtx(prog, pkg, fd, fn)...)
			}
		}
	}
	return diags
}

func hasPrefix(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// exportedReceiver is true for plain functions and for methods whose
// receiver type is exported (unexported types are not API surface).
func exportedReceiver(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Exported()
}

func checkCtx(prog *Program, pkg *Package, fd *ast.FuncDecl, fn *types.Func) []Diagnostic {
	sig := fn.Type().(*types.Signature)
	var ctxParam *types.Var
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContext(p.Type()) {
			ctxParam = p
			break
		}
	}
	if ctxParam == nil {
		return []Diagnostic{{
			Pos:      prog.Fset.Position(fd.Name.Pos()),
			Analyzer: "ctxplumb",
			Message:  fmt.Sprintf("exported entry point %s must accept a context.Context (cancellation is part of the serving contract)", fd.Name.Name),
		}}
	}
	// Forwarded = the parameter object is referenced anywhere in the
	// body (as a call argument, struct field, or rebinding).
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == ctxParam {
			used = true
		}
		return !used
	})
	if !used {
		return []Diagnostic{{
			Pos:      prog.Fset.Position(fd.Name.Pos()),
			Analyzer: "ctxplumb",
			Message:  fmt.Sprintf("%s accepts a context.Context but never forwards it — cancellation stops working below this frame", fd.Name.Name),
		}}
	}
	return nil
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
