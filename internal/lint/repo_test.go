package lint

import "testing"

// TestRepoCleanUnderDefaultConfig is the in-process version of the CI
// gate: all five analyzers over every package of this module, under the
// curated DefaultConfig, must produce zero unsuppressed diagnostics —
// and every suppression in the tree must carry its reason.
func TestRepoCleanUnderDefaultConfig(t *testing.T) {
	prog := loadRepo(t)
	diags, err := prog.Run(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Unsuppressed(diags) {
		t.Errorf("unsuppressed: %s", d)
	}
	suppressed := 0
	for _, d := range diags {
		if !d.Suppressed {
			continue
		}
		suppressed++
		if d.Reason == "" {
			t.Errorf("suppression with empty reason: %s", d)
		}
	}
	// The tree carries documented suppressions (deliberate under-lock
	// encodes, internal invariant guards, an existence scan); if this
	// ever drops to zero the analyzers have likely stopped seeing the
	// engine at all.
	if suppressed == 0 {
		t.Error("no suppressed diagnostics found in the repo: analyzers appear to be running against nothing")
	}
}
