// Package errfix seeds errtaxonomy violations: function-scope
// errors.New and a %v-style fmt.Errorf — plus the allowed shapes
// (package-level sentinels, %w wrapping, suppression).
package errfix

import (
	"errors"
	"fmt"
)

// ErrBad is a sentinel: package-level errors.New is where the taxonomy
// itself is born, so it is exempt.
var ErrBad = errors.New("bad")

func validate(n int) error {
	if n < 0 {
		return errors.New("negative") // want errtaxonomy
	}
	if n > 10 {
		return fmt.Errorf("too big: %d", n) // want errtaxonomy
	}
	if n == 7 {
		return fmt.Errorf("%w: unlucky %d", ErrBad, n)
	}
	//pclint:ignore errtaxonomy fixture: internal invariant guard, 500 is the honest status
	return fmt.Errorf("odd state %d", n)
}

// ErrOverloaded models the admission sentinel: sheds must be born
// wrapping it, or transports cannot map them to 429 via errors.Is.
var ErrOverloaded = errors.New("overloaded")

func shed(depth int) error {
	if depth > 8 {
		return errors.New("queue full") // want errtaxonomy
	}
	if depth > 4 {
		//pclint:ignore errtaxonomy fixture: operator log line, never crosses the API boundary
		return fmt.Errorf("queue filling at depth %d", depth)
	}
	return fmt.Errorf("%w: queue full at depth %d", ErrOverloaded, depth)
}
