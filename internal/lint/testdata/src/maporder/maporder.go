// Package mapfix seeds maporder violations: a map range on a
// token-emitting path whose order escapes — plus the allowed shapes
// (gather-then-sort, order-independent counting, suppression).
package mapfix

import "sort"

type Engine struct{ vocab map[string]int }

// Emit is the configured ordering-sensitive root.
func (e *Engine) Emit() []int {
	_ = count(e.vocab)
	_ = e.EmitAny()
	out := e.EmitSorted()
	for _, id := range e.vocab { // want maporder
		out = append(out, id)
	}
	return out
}

// EmitSorted gathers then sorts: deterministic, not flagged.
func (e *Engine) EmitSorted() []int {
	var ids []int
	for _, id := range e.vocab {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// count only accumulates a commutative counter: not flagged.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// EmitAny returns an arbitrary element on purpose.
func (e *Engine) EmitAny() int {
	//pclint:ignore maporder fixture: any element is acceptable here by contract
	for _, id := range e.vocab {
		return id
	}
	return 0
}
