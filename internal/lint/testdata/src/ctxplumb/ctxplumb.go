// Package ctxfix seeds ctxplumb violations: an exported entry point
// with no context parameter and one that accepts but drops it — plus a
// compliant entry point and a suppressed legacy shim.
package ctxfix

import "context"

type Client struct{}

func (c *Client) do(ctx context.Context) error { return ctx.Err() }

func (c *Client) ServeNaked() error { return nil } // want ctxplumb

func (c *Client) GenerateDropped(ctx context.Context) error { return nil } // want ctxplumb

func (c *Client) InferGood(ctx context.Context) error { return c.do(ctx) }

// SendLegacy wraps a callback API that predates context plumbing.
//
//pclint:ignore ctxplumb fixture: legacy shim, callers cancel via Close instead
func (c *Client) SendLegacy() error { return nil }
