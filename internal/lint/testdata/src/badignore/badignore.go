// Package badfix seeds malformed //pclint:ignore directives: an
// unknown analyzer name and a missing reason. Both must be reported as
// diagnostics, so a typo cannot silently turn a gate off.
package badfix

//pclint:ignore lockscop heavy call is fine here
var a = 1

//pclint:ignore maporder
var b = 2

var _ = a + b
