// Package admitfix seeds pinbalance violations in admission-control
// shape: an admitted slot (Admit/AdmitRelease) is a pin on serving
// capacity — an error return between admit and release leaks the slot
// and permanently shrinks MaxConcurrent. The acquire's own error
// (a shed or an expired deadline) holds no slot and is exempt.
package admitfix

import "errors"

type Gate struct{ inflight int }

var errOverloaded = errors.New("overloaded: queue full")

func (g *Gate) admit() error {
	if g.inflight >= 4 {
		return errOverloaded
	}
	g.inflight++
	return nil
}

func (g *Gate) admitRelease() { g.inflight-- }

func (g *Gate) leakySlot(work func() error) error {
	if err := g.admit(); err != nil {
		return err // admit's own shed: no slot held, exempt
	}
	if err := work(); err != nil {
		return err // want pinbalance
	}
	g.admitRelease()
	return nil
}

func (g *Gate) balancedSlot(work func() error) error {
	if err := g.admit(); err != nil {
		return err
	}
	defer g.admitRelease()
	return work()
}

func (g *Gate) inlineRelease(work func() error) error {
	if err := g.admit(); err != nil {
		return err
	}
	if err := work(); err != nil {
		g.admitRelease()
		return err
	}
	g.admitRelease()
	return nil
}

func (g *Gate) suppressedSlot(work func() error) error {
	if err := g.admit(); err != nil {
		return err
	}
	if err := work(); err != nil {
		//pclint:ignore pinbalance fixture: the caller's done() closure owns this slot and releases it
		return err
	}
	g.admitRelease()
	return nil
}
