// Package pinfix seeds pinbalance violations: error returns that leak
// a pin taken by an acquire call or a pins++ — plus the balanced
// patterns (own-error exemption, inline release, deferred release,
// ownership transfer on success, suppression).
package pinfix

import "errors"

type Module struct{ pins int }

type Cache struct{ mods []*Module }

var errBoom = errors.New("boom")

func (c *Cache) acquire() (*Module, error) {
	if len(c.mods) == 0 {
		return nil, errBoom
	}
	m := c.mods[0]
	m.pins++
	return m, nil
}

func (c *Cache) unpin(ms ...*Module) {
	for _, m := range ms {
		m.pins--
	}
}

func (c *Cache) leaky() error {
	m, err := c.acquire()
	if err != nil {
		return err // the acquire's own error: exempt
	}
	if m.pins > 3 {
		return errBoom // want pinbalance
	}
	c.unpin(m)
	return nil
}

func (c *Cache) balanced() error {
	m, err := c.acquire()
	if err != nil {
		return err
	}
	if m.pins > 3 {
		c.unpin(m)
		return errBoom
	}
	return nil // success: ownership transfers to the caller
}

func (c *Cache) deferredRelease() error {
	m, err := c.acquire()
	if err != nil {
		return err
	}
	defer c.unpin(m)
	if m.pins > 3 {
		return errBoom
	}
	return nil
}

func (c *Cache) incLeak(m *Module) error {
	m.pins++
	if m.pins > 5 {
		return errBoom // want pinbalance
	}
	m.pins--
	return nil
}

func (c *Cache) suppressedLeak() error {
	m, err := c.acquire()
	if err != nil {
		return err
	}
	if m.pins > 3 {
		//pclint:ignore pinbalance fixture: a registry owns this pin; its janitor unpins
		return errBoom
	}
	c.unpin(m)
	return nil
}
