// Package lockfix seeds lockscope violations: heavy calls reached from
// explicit Lock/Unlock regions, from *Locked-named functions, and
// transitively through helpers — plus the patterns that must NOT flag
// (off-lock calls, goroutine launches, suppressed sites).
package lockfix

import "sync"

type Cache struct{ mu sync.Mutex }

type Model struct{}

func (m *Model) Prefill() {}

func (m *Model) Decode() {}

func (c *Cache) badDirect(m *Model) {
	c.mu.Lock()
	m.Prefill() // want lockscope
	c.mu.Unlock()
	m.Prefill() // off-lock: fine
}

func (c *Cache) encodeLocked(m *Model) {
	m.Decode() // want lockscope
}

func (c *Cache) deferred(m *Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	helper(m)
}

func helper(m *Model) {
	m.Prefill() // want lockscope
}

func (c *Cache) suppressed(m *Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//pclint:ignore lockscope fixture: deliberate one-time cost under the lock
	m.Prefill()
}

func (c *Cache) spawned(m *Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go m.Prefill() // the goroutine does not hold c.mu: fine
}

// MatMulKernel stands in for a package-level tensor kernel entry point
// (tensor.MatMul and the backend methods in the real config).
func MatMulKernel() {}

func (c *Cache) badKernel() {
	c.mu.Lock()
	defer c.mu.Unlock()
	MatMulKernel() // want lockscope
}
