package lint

// Fixture tests: each analyzer runs over a seeded package under
// testdata/src/<analyzer>/ with a config naming the fixture's own
// types, proving the analyzers are configuration-driven rather than
// hard-wired to this repo. Expectations live in the fixtures
// themselves: a "// want <analyzer>" comment marks a line that must
// produce an unsuppressed diagnostic, and every //pclint:ignore
// directive must actually suppress something (counted per fixture).
//
// Fixtures type-check against the same export data as the real repo,
// so they may import anything in the repo's dependency closure (sync,
// context, fmt, errors, sort, ...).

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var repoOnce = sync.OnceValues(func() (*Program, error) {
	dir, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		return nil, err
	}
	return Load(dir)
})

// loadRepo loads and type-checks the enclosing module once per test
// binary; fixtures reuse its export data, the meta-test analyzes it.
func loadRepo(t *testing.T) *Program {
	t.Helper()
	prog, err := repoOnce()
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	return prog
}

// fixtureProgram type-checks testdata/src/<name> as import path
// "fix/<name>", the path fixture configs use to name their objects.
func fixtureProgram(t *testing.T, name string) *Program {
	t.Helper()
	base := loadRepo(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	prog := &Program{
		Fset:    token.NewFileSet(),
		checked: map[string]*types.Package{},
		exports: base.exports,
	}
	pkg, err := prog.checkSource("fix/"+name, dir, goFiles)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	prog.Packages = append(prog.Packages, pkg)
	return prog
}

type marker struct {
	file     string
	line     int
	analyzer string
}

// wantMarkers collects the "// want <analyzer>" expectations from a
// fixture's comments.
func wantMarkers(prog *Program) map[marker]bool {
	m := map[marker]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					m[marker{pos.Filename, pos.Line, strings.Fields(text)[1]}] = true
				}
			}
		}
	}
	return m
}

// checkFixture runs one analyzer over its fixture and asserts the
// diagnostics match the fixture's want markers exactly, plus that the
// expected number of findings were suppressed by ignore directives.
func checkFixture(t *testing.T, name string, cfg *Config, analyzer string, wantSuppressed int) {
	t.Helper()
	prog := fixtureProgram(t, name)
	diags, err := prog.Run(cfg, analyzer)
	if err != nil {
		t.Fatal(err)
	}
	want := wantMarkers(prog)
	seen := map[marker]bool{}
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			if d.Reason == "" {
				t.Errorf("suppressed diagnostic with no reason: %s", d)
			}
			suppressed++
			continue
		}
		mk := marker{d.Pos.Filename, d.Pos.Line, d.Analyzer}
		if !want[mk] {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if seen[mk] {
			t.Errorf("duplicate diagnostic: %s", d)
		}
		seen[mk] = true
	}
	for mk := range want {
		if !seen[mk] {
			t.Errorf("missing diagnostic: %s:%d: %s reported nothing here", mk.file, mk.line, mk.analyzer)
		}
	}
	if suppressed != wantSuppressed {
		t.Errorf("got %d suppressed diagnostics, want %d", suppressed, wantSuppressed)
	}
}

func TestLockscopeFixture(t *testing.T) {
	checkFixture(t, "lockscope", &Config{
		GuardedMutexes: []string{"fix/lockscope.Cache.mu"},
		LockedSuffix:   "Locked",
		HeavyFuncs: []string{
			"fix/lockscope.Model.Prefill",
			"fix/lockscope.Model.Decode",
			"fix/lockscope.MatMulKernel",
		},
	}, "lockscope", 1)
}

func TestPinbalanceFixture(t *testing.T) {
	checkFixture(t, "pinbalance", &Config{
		Acquires: []AcquireSpec{{Func: "fix/pinbalance.Cache.acquire", OwnErrorExempt: true}},
		Releases: []string{"fix/pinbalance.Cache.unpin"},
		PinField: "fix/pinbalance.Module.pins",
	}, "pinbalance", 1)
}

// TestAdmissionFixture proves pinbalance generalizes to admission
// slots: Admit/AdmitRelease are an acquire/release pair like module
// pins, with the shed/deadline error own-error-exempt.
func TestAdmissionFixture(t *testing.T) {
	checkFixture(t, "admission", &Config{
		Acquires: []AcquireSpec{{Func: "fix/admission.Gate.admit", OwnErrorExempt: true}},
		Releases: []string{"fix/admission.Gate.admitRelease"},
		PinField: "fix/admission.Gate.inflight",
	}, "pinbalance", 1)
}

func TestMaporderFixture(t *testing.T) {
	checkFixture(t, "maporder", &Config{
		OrderRoots: []string{"fix/maporder.Engine.Emit"},
	}, "maporder", 1)
}

func TestCtxplumbFixture(t *testing.T) {
	checkFixture(t, "ctxplumb", &Config{
		CtxPackages: []string{"fix/ctxplumb"},
		CtxPrefixes: []string{"Serve", "Generate", "Infer", "Send"},
	}, "ctxplumb", 1)
}

func TestErrtaxonomyFixture(t *testing.T) {
	checkFixture(t, "errtaxonomy", &Config{
		ErrPackages: []string{"fix/errtaxonomy"},
	}, "errtaxonomy", 2)
}

// TestMalformedIgnoreDirectives: an ignore naming an unknown analyzer
// or lacking a reason is itself an unsuppressable diagnostic.
func TestMalformedIgnoreDirectives(t *testing.T) {
	prog := fixtureProgram(t, "badignore")
	diags, err := prog.Run(&Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := Unsuppressed(diags)
	if len(bad) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%v", len(bad), bad)
	}
	if !strings.Contains(bad[0].Message, `unknown analyzer "lockscop"`) {
		t.Errorf("first diagnostic should flag the unknown analyzer, got: %s", bad[0])
	}
	if !strings.Contains(bad[1].Message, "needs a reason") {
		t.Errorf("second diagnostic should flag the missing reason, got: %s", bad[1])
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	prog := fixtureProgram(t, "badignore")
	if _, err := prog.Run(&Config{}, "nonesuch"); err == nil {
		t.Fatal("Run with an unknown analyzer name should error")
	}
}
