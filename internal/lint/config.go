package lint

// Config names the repo-specific objects each analyzer cares about.
// Functions are named as funcKey renders them: "pkg/path.Func" or
// "pkg/path.Type.Method" (no pointer-receiver distinction); struct
// fields as "pkg/path.Type.field". Fixture tests swap in configs
// naming their own types, so nothing here is hard-wired into the
// analyzers themselves.
type Config struct {
	// GuardedMutexes are the engine mutexes lockscope tracks.
	GuardedMutexes []string
	// LockedSuffix: a function whose name ends with this suffix (in a
	// package owning a guarded mutex) is assumed to run entirely with
	// that mutex held — the repo's *Locked naming convention.
	LockedSuffix string
	// HeavyFuncs must never be reached while a guarded mutex is held:
	// prefill/decode/generate, blob I/O, the quant codec.
	HeavyFuncs []string

	// Acquires are the functions that take module pins. Calls to them,
	// and PinField "++" statements, start a pinbalance obligation.
	Acquires []AcquireSpec
	// Releases discharge the obligation, as do PinField "--" statements.
	Releases []string
	// PinField is the refcount field itself ("pkg.Type.field").
	PinField string

	// OrderRoots are the ordering-sensitive entry points: every map
	// range in a function reachable from one must gather-then-sort.
	OrderRoots []string

	// CtxPackages/CtxPrefixes: exported functions in these packages
	// whose names start with one of these prefixes must accept and
	// forward a context.Context.
	CtxPackages []string
	CtxPrefixes []string

	// ErrPackages: function-scope errors.New / fmt.Errorf without %w in
	// these packages break the errors.Is taxonomy and are reported.
	ErrPackages []string
}

// AcquireSpec is one pin-taking function.
type AcquireSpec struct {
	Func string
	// OwnErrorExempt marks acquires documented to retain nothing when
	// they themselves fail (planServeLocked: "On error no pins are
	// retained") — returning that same error unreleased is fine.
	OwnErrorExempt bool
}

// DefaultConfig is the curated configuration for this repository.
func DefaultConfig() *Config {
	const core = "repro/internal/core"
	const model = "repro/internal/model"
	const tensor = "repro/internal/tensor"
	return &Config{
		GuardedMutexes: []string{
			core + ".Cache.mu",
			core + ".blockRegistry.mu",
			core + ".Scheduler.mu",
			// The draft source's table lock: Propose runs on the scheduler's
			// decode path between fused steps, so nothing heavy may ever run
			// under it.
			"repro/internal/mining.Draft.mu",
		},
		LockedSuffix: "Locked",
		HeavyFuncs: []string{
			model + ".Model.Prefill",
			model + ".Model.PrefillCtx",
			model + ".Model.Decode",
			model + ".Model.DecodeStepBatch",
			// The speculative verify step: a widened fused step, as heavy as
			// DecodeStepBatch times the draft depth.
			model + ".Model.DecodeStepBatchMulti",
			model + ".Model.Generate",
			model + ".Model.GenerateStream",
			model + ".Model.generate",
			model + ".Model.Complete",
			core + ".diskTier.writeBlob",
			core + ".diskTier.readBlob",
			"repro/internal/quant.EncodeKV",
			"repro/internal/quant.DecodeKV",
			// Backend kernel entry points: the heaviest compute in the
			// repo. The callgraph is static, so calls through the Backend
			// interface are invisible — listing both concrete backends
			// catches direct kernel calls and keeps any future
			// lock-then-compute shortcut from slipping in.
			tensor + ".scalarBackend.MatMul",
			tensor + ".scalarBackend.AttendRowBlock",
			tensor + ".scalarBackend.OutputHead",
			tensor + ".parallelBackend.MatMul",
			tensor + ".parallelBackend.AttendRowBlock",
			tensor + ".parallelBackend.OutputHead",
			tensor + ".MatMul",
		},

		Acquires: []AcquireSpec{
			// "On error no pins are retained" (engine.go).
			{Func: core + ".Cache.planServeLocked", OwnErrorExempt: true},
			{Func: core + ".Cache.acquireModuleLocked", OwnErrorExempt: true},
			// Pins recorded in plan.pinned; the caller unpins on error.
			{Func: core + ".Cache.resolveDiskParts"},
			// An admission slot is a pin on serving capacity: leaking one
			// on an error path shrinks MaxConcurrent forever. Admit's own
			// shed/deadline error holds no slot.
			{Func: core + ".Cache.Admit", OwnErrorExempt: true},
		},
		Releases: []string{
			core + ".Cache.unpinModules",
			core + ".pinSet.release",
			core + ".ServeResult.Close",
			core + ".Cache.AdmitRelease",
		},
		PinField: core + ".EncodedModule.pins",

		OrderRoots: []string{
			// Token emission: the PR 2 argument-ordering bug class.
			core + ".Cache.gatherNewTokens",
			core + ".Cache.BaselineServeParsed",
			// Scheduler lane joins and retirement order.
			core + ".Scheduler.run",
			core + ".Scheduler.advance",
			// Speculative verify and settle: token emission across lanes
			// (already reachable from run; listed so the root survives a
			// future refactor that severs that path).
			core + ".Scheduler.stepSpec",
			// Manifest writing: warm restarts replay this byte stream.
			core + ".Cache.SaveAll",
			core + ".Cache.SaveSchemaStates",
		},

		CtxPackages: []string{core, "repro/promptcache"},
		CtxPrefixes: []string{"Serve", "Baseline", "Generate", "Infer", "Continue", "Send", "NewSession"},

		ErrPackages: []string{core, "repro/promptcache"},
	}
}
