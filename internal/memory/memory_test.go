package memory

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestPoolAllocFree(t *testing.T) {
	p := NewPool(Device{Name: "gpu", Kind: HBM, Capacity: 100})
	if err := p.Alloc("a", 60); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 60 || p.Available() != 40 {
		t.Fatalf("used=%d avail=%d", p.Used(), p.Available())
	}
	if !p.Has("a") || p.Has("b") {
		t.Fatal("Has broken")
	}
	if err := p.Free("a"); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 0 {
		t.Fatalf("used=%d after free", p.Used())
	}
}

func TestPoolOOM(t *testing.T) {
	p := NewPool(Device{Name: "gpu", Kind: HBM, Capacity: 100})
	if err := p.Alloc("a", 80); err != nil {
		t.Fatal(err)
	}
	err := p.Alloc("b", 30)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	// Failed alloc must not consume capacity.
	if p.Used() != 80 {
		t.Fatalf("used=%d", p.Used())
	}
}

func TestPoolUnlimitedCapacity(t *testing.T) {
	p := NewPool(Device{Name: "host", Kind: DRAM, Capacity: 0})
	if err := p.Alloc("big", 1<<50); err != nil {
		t.Fatal(err)
	}
	if p.Available() <= 0 {
		t.Fatal("unlimited pool should have space")
	}
}

func TestPoolDuplicateKey(t *testing.T) {
	p := NewPool(Device{Capacity: 100})
	if err := p.Alloc("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Alloc("a", 1); err == nil {
		t.Fatal("duplicate key should fail")
	}
}

func TestPoolFreeUnknown(t *testing.T) {
	p := NewPool(Device{Capacity: 100})
	if err := p.Free("ghost"); err == nil {
		t.Fatal("free of unknown key should fail")
	}
}

func TestPoolNegativeAlloc(t *testing.T) {
	p := NewPool(Device{Capacity: 100})
	if err := p.Alloc("a", -5); err == nil {
		t.Fatal("negative alloc should fail")
	}
}

func TestPoolPeak(t *testing.T) {
	p := NewPool(Device{Capacity: 1000})
	_ = p.Alloc("a", 400)
	_ = p.Alloc("b", 500)
	_ = p.Free("a")
	if p.Peak() != 900 {
		t.Fatalf("peak=%d", p.Peak())
	}
	if p.Used() != 500 {
		t.Fatalf("used=%d", p.Used())
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool(Device{Capacity: 1 << 40})
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				key := string(rune('a'+w)) + string(rune(i))
				if err := p.Alloc(key, 10); err != nil {
					done <- err
					return
				}
				if err := p.Free(key); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if p.Used() != 0 {
		t.Fatalf("used=%d after balanced ops", p.Used())
	}
}

// TestPaperCopyAnchors pins the transfer model to §5.4's measured values:
// one layer-slice of 5K tokens of Llama2-7B attention states (78.1 MiB)
// copies in ~3.79 ms host-to-host, ~5.34 ms host-to-device and ~0.23 ms
// device-to-device (see the anchorBytes comment for why per-layer is the
// physically consistent reading).
func TestPaperCopyAnchors(t *testing.T) {
	const bytes5K = 5000 * 16 * 1024
	cases := []struct {
		link Link
		want float64 // ms
	}{
		{HostToHost(), 3.79},
		{HostToDevice(), 5.34},
		{DeviceToDevice(), 0.23},
	}
	for _, c := range cases {
		got := c.link.TransferTime(bytes5K).Seconds() * 1e3
		if math.Abs(got-c.want)/c.want > 0.05 {
			t.Errorf("%s: %0.3f ms, want ~%0.2f ms", c.link.Name, got, c.want)
		}
	}
}

func TestTransferTimeLinearInSize(t *testing.T) {
	l := HostToDevice()
	t1 := l.TransferTime(1 << 20).Seconds()
	t2 := l.TransferTime(1 << 21).Seconds()
	lat := l.Latency.Seconds()
	ratio := (t2 - lat) / (t1 - lat)
	if math.Abs(ratio-2) > 0.01 {
		t.Fatalf("transfer not linear: ratio=%v", ratio)
	}
}

func TestTransferZeroBytes(t *testing.T) {
	l := HostToHost()
	if got := l.TransferTime(0); got != l.Latency {
		t.Fatalf("zero transfer = %v", got)
	}
}

func TestScaledLink(t *testing.T) {
	base := HostToHost()
	slow := ScaledLink(base, 0.5)
	b := int64(1 << 30)
	fastT := base.TransferTime(b) - base.Latency
	slowT := slow.TransferTime(b) - slow.Latency
	if math.Abs(float64(slowT)/float64(fastT)-2) > 0.01 {
		t.Fatalf("scaled link wrong: %v vs %v", slowT, fastT)
	}
}

func TestKindString(t *testing.T) {
	if HBM.String() != "HBM" || DRAM.String() != "DRAM" {
		t.Fatal("Kind strings")
	}
}

func TestLatencyDominatesSmallCopies(t *testing.T) {
	l := DeviceToDevice()
	small := l.TransferTime(64)
	if small < l.Latency || small > l.Latency+time.Millisecond {
		t.Fatalf("small copy = %v", small)
	}
}

// TestDiskKindAndLink: the disk tier's device kind and its NVMe read
// link — slower than every DRAM path, faster than re-encoding.
func TestDiskKindAndLink(t *testing.T) {
	if Disk.String() != "Disk" {
		t.Fatalf("Disk kind prints %q", Disk.String())
	}
	p := NewPool(Device{Name: "nvme", Kind: Disk})
	if err := p.Alloc("m", 1<<20); err != nil {
		t.Fatal(err)
	}
	if p.Used() != 1<<20 {
		t.Fatalf("used = %d", p.Used())
	}
	const size = 64 << 20
	disk := DiskToHost().TransferTime(size)
	host := HostToHost().TransferTime(size)
	if disk <= host {
		t.Fatalf("disk read %v should be slower than host memcpy %v", disk, host)
	}
	if disk <= 0 {
		t.Fatal("transfer time must be positive")
	}
}
