// Package memory simulates the two storage tiers the paper stores prompt
// modules in (§4.1): GPU HBM (fast, scarce) and host DRAM (abundant,
// behind a host-to-device copy). It provides capacity-tracked pools with
// peak accounting and a transfer-cost model calibrated to the paper's
// measured copy latencies (§5.4: for 5K tokens of Llama2-7B attention
// states, host-to-host 3.79 ms, host-to-device 5.34 ms, device-to-device
// 0.23 ms).
package memory

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Kind distinguishes memory technologies.
type Kind int

const (
	// DRAM is host memory (scales to terabytes, §4.1).
	DRAM Kind = iota
	// HBM is GPU device memory (fast but capacity-limited).
	HBM
	// Disk is durable block storage (NVMe/SSD): effectively unbounded,
	// behind a read that is slower than any memcpy but far cheaper than
	// re-running prompt module encoding. The third tier below §4.1's two.
	Disk
)

func (k Kind) String() string {
	switch k {
	case HBM:
		return "HBM"
	case Disk:
		return "Disk"
	}
	return "DRAM"
}

// ErrOutOfMemory is returned when an allocation exceeds pool capacity.
var ErrOutOfMemory = errors.New("memory: out of capacity")

// Device describes one memory device.
type Device struct {
	Name     string
	Kind     Kind
	Capacity int64 // bytes
}

// Pool tracks allocations against a device's capacity. It is a
// bookkeeping simulator: callers own the real buffers; the pool answers
// "would this fit on the A40?" and records peaks for the memory-overhead
// experiments (Table 2, §5.5).
type Pool struct {
	dev Device

	mu     sync.Mutex
	used   int64
	peak   int64
	allocs map[string]int64
}

// NewPool returns an empty pool for the device.
func NewPool(dev Device) *Pool {
	return &Pool{dev: dev, allocs: make(map[string]int64)}
}

// Device returns the pool's device description.
func (p *Pool) Device() Device { return p.dev }

// Alloc reserves size bytes under the given key. It fails with
// ErrOutOfMemory if the reservation would exceed capacity, and rejects
// duplicate keys.
func (p *Pool) Alloc(key string, size int64) error {
	if size < 0 {
		return fmt.Errorf("memory: negative allocation %d for %q", size, key)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.allocs[key]; dup {
		return fmt.Errorf("memory: duplicate allocation key %q", key)
	}
	if p.dev.Capacity > 0 && p.used+size > p.dev.Capacity {
		return fmt.Errorf("%w: %s used %d + %d > %d", ErrOutOfMemory, p.dev.Name, p.used, size, p.dev.Capacity)
	}
	p.allocs[key] = size
	p.used += size
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

// Free releases the reservation under key.
func (p *Pool) Free(key string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	size, ok := p.allocs[key]
	if !ok {
		return fmt.Errorf("memory: free of unknown key %q", key)
	}
	delete(p.allocs, key)
	p.used -= size
	return nil
}

// Has reports whether key is currently allocated.
func (p *Pool) Has(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.allocs[key]
	return ok
}

// Used returns the bytes currently reserved.
func (p *Pool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Peak returns the reservation high-water mark.
func (p *Pool) Peak() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Free bytes remaining (capacity 0 means unlimited → returns a large number).
func (p *Pool) Available() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dev.Capacity <= 0 {
		return 1 << 62
	}
	return p.dev.Capacity - p.used
}

// Link models a copy path between two memories with an effective
// bandwidth and a fixed setup latency. "Effective" means calibrated to
// end-to-end measured copies (pinned buffers, parallel channels), not the
// theoretical pin rate; the paper's three §5.4 anchors are reproduced by
// the stock links below.
type Link struct {
	Name    string
	BW      float64       // bytes per second
	Latency time.Duration // fixed per-transfer setup cost
}

// TransferTime returns the modelled duration of copying size bytes.
func (l Link) TransferTime(size int64) time.Duration {
	if size <= 0 {
		return l.Latency
	}
	sec := float64(size) / l.BW
	return l.Latency + time.Duration(sec*float64(time.Second))
}

// Anchor: the §5.4 copy latencies (3.79 / 5.34 / 0.23 ms for "attention
// states with 5K tokens") are only physically consistent as one layer's
// slice of Llama2-7B states: 5000 tokens × 16 KiB/layer-token = 78.1 MiB,
// giving ~21.6 GB/s host-to-host (DDR5 memcpy), ~15.3 GB/s host-to-device
// (pinned PCIe Gen4) and ~356 GB/s device-to-device — all plausible
// hardware rates, whereas the full-model 2.5 GiB in 3.79 ms would require
// an impossible 660 GB/s DDR5 copy. We therefore calibrate links to the
// per-layer reading; a full-model module copy costs Layers× one slice.
const anchorBytes = 5000 * 16 * 1024 // 78.1 MiB

// Stock links reproducing the paper's measured copy costs.
func HostToHost() Link {
	return Link{Name: "host-to-host", BW: float64(anchorBytes) / 3.79e-3, Latency: 30 * time.Microsecond}
}

// HostToDevice returns the PCIe upload path (DRAM → HBM).
func HostToDevice() Link {
	return Link{Name: "host-to-device", BW: float64(anchorBytes) / 5.34e-3, Latency: 50 * time.Microsecond}
}

// DeviceToDevice returns the on-GPU copy path (HBM → HBM).
func DeviceToDevice() Link {
	return Link{Name: "device-to-device", BW: float64(anchorBytes) / 0.23e-3, Latency: 10 * time.Microsecond}
}

// DiskToHost returns the durable-tier read path (NVMe → DRAM): ~3.5 GB/s
// sequential read with ~80 µs submission latency, a mid-range datacenter
// NVMe drive. Slower than any DRAM path, but loading a spilled module
// still beats re-encoding it by orders of magnitude — the trade the disk
// tier exists to make.
func DiskToHost() Link {
	return Link{Name: "disk-to-host", BW: 3.5e9, Latency: 80 * time.Microsecond}
}

// ScaledLink returns a link with bandwidth scaled by factor (e.g. a
// DDR4 host at ~0.64× the DDR5 anchor machine).
func ScaledLink(l Link, factor float64) Link {
	l.BW *= factor
	return l
}
