// Package metrics implements the evaluation metrics of the paper's
// Table 1 (§5.3): token-level F1 (the LongBench QA metric), Rouge-L (the
// summarization metric, longest-common-subsequence based), and exact-match
// accuracy (passage retrieval), plus small aggregation helpers.
package metrics

import (
	"math"
	"strings"
)

// normalize lowercases and splits text into comparison tokens.
func normalize(s string) []string {
	var out []string
	for _, w := range strings.Fields(strings.ToLower(s)) {
		w = strings.Trim(w, ".,;:!?\"'()[]{}")
		if w != "" {
			out = append(out, w)
		}
	}
	return out
}

// F1 returns the token-level F1 overlap between a prediction and a
// reference, in [0, 1].
func F1(prediction, reference string) float64 {
	p := normalize(prediction)
	r := normalize(reference)
	if len(p) == 0 || len(r) == 0 {
		if len(p) == 0 && len(r) == 0 {
			return 1
		}
		return 0
	}
	counts := map[string]int{}
	for _, w := range r {
		counts[w]++
	}
	common := 0
	for _, w := range p {
		if counts[w] > 0 {
			counts[w]--
			common++
		}
	}
	if common == 0 {
		return 0
	}
	precision := float64(common) / float64(len(p))
	recall := float64(common) / float64(len(r))
	return 2 * precision * recall / (precision + recall)
}

// RougeL returns the Rouge-L F-measure (LCS-based) between a prediction
// and a reference, in [0, 1].
func RougeL(prediction, reference string) float64 {
	p := normalize(prediction)
	r := normalize(reference)
	if len(p) == 0 || len(r) == 0 {
		if len(p) == 0 && len(r) == 0 {
			return 1
		}
		return 0
	}
	l := lcs(p, r)
	if l == 0 {
		return 0
	}
	precision := float64(l) / float64(len(p))
	recall := float64(l) / float64(len(r))
	beta := 1.2
	return (1 + beta*beta) * precision * recall / (recall + beta*beta*precision)
}

// lcs returns the longest-common-subsequence length with O(min) memory.
func lcs(a, b []string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// ExactMatch returns 1 if the normalized prediction equals the normalized
// reference, else 0.
func ExactMatch(prediction, reference string) float64 {
	p := normalize(prediction)
	r := normalize(reference)
	if len(p) != len(r) {
		return 0
	}
	for i := range p {
		if p[i] != r[i] {
			return 0
		}
	}
	return 1
}

// Contains returns 1 if the normalized reference appears as a contiguous
// subsequence of the normalized prediction (retrieval-style accuracy).
func Contains(prediction, reference string) float64 {
	p := normalize(prediction)
	r := normalize(reference)
	if len(r) == 0 {
		return 1
	}
	if len(p) < len(r) {
		return 0
	}
outer:
	for i := 0; i+len(r) <= len(p); i++ {
		for j := range r {
			if p[i+j] != r[j] {
				continue outer
			}
		}
		return 1
	}
	return 0
}

// EditSim returns the normalized character-level edit similarity
// 1 - levenshtein(a,b)/max(|a|,|b|), the metric LongBench uses for its
// code-completion datasets (LCC, RepoBench-P).
func EditSim(prediction, reference string) float64 {
	a, b := []rune(prediction), []rune(reference)
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	return 1 - float64(levenshtein(a, b))/float64(maxLen)
}

// levenshtein computes edit distance with O(min) memory.
func levenshtein(a, b []rune) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// TokenOverlap returns |intersection| / |union| over token id multisets;
// a weight-free way to compare two generations of the same model.
func TokenOverlap(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	ca := map[int]int{}
	for _, t := range a {
		ca[t]++
	}
	inter := 0
	for _, t := range b {
		if ca[t] > 0 {
			ca[t]--
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
