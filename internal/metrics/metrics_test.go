package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func eq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestF1Identical(t *testing.T) {
	if !eq(F1("the cat sat", "the cat sat"), 1) {
		t.Fatal("identical strings should score 1")
	}
}

func TestF1Disjoint(t *testing.T) {
	if !eq(F1("alpha beta", "gamma delta"), 0) {
		t.Fatal("disjoint strings should score 0")
	}
}

func TestF1Partial(t *testing.T) {
	// prediction: 2 tokens, 1 common; reference: 2 tokens.
	// precision=0.5, recall=0.5 → F1=0.5
	if got := F1("the cat", "the dog"); !eq(got, 0.5) {
		t.Fatalf("F1 = %v, want 0.5", got)
	}
}

func TestF1CaseAndPunctuation(t *testing.T) {
	if !eq(F1("The CAT!", "the cat"), 1) {
		t.Fatal("normalization should ignore case/punct")
	}
}

func TestF1Empty(t *testing.T) {
	if !eq(F1("", ""), 1) {
		t.Fatal("both empty = 1")
	}
	if !eq(F1("", "ref"), 0) || !eq(F1("pred", ""), 0) {
		t.Fatal("one empty = 0")
	}
}

func TestF1MultisetClipping(t *testing.T) {
	// "a a a" vs "a": common clipped to 1.
	// precision=1/3, recall=1 → F1 = 0.5
	if got := F1("a a a", "a"); !eq(got, 0.5) {
		t.Fatalf("F1 = %v, want 0.5", got)
	}
}

func TestF1Range(t *testing.T) {
	check := func(a, b string) bool {
		f := F1(a, b)
		return f >= 0 && f <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestF1Symmetry(t *testing.T) {
	// F1 is symmetric under swapping prediction/reference.
	check := func(a, b string) bool {
		return eq(F1(a, b), F1(b, a))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRougeLIdentical(t *testing.T) {
	if !eq(RougeL("one two three", "one two three"), 1) {
		t.Fatal("identical = 1")
	}
}

func TestRougeLSubsequence(t *testing.T) {
	got := RougeL("one two three four", "one three")
	if got <= 0 || got >= 1 {
		t.Fatalf("RougeL = %v, want in (0,1)", got)
	}
}

func TestRougeLOrderSensitive(t *testing.T) {
	// LCS rewards order preservation: scrambled prediction scores lower.
	inOrder := RougeL("alpha beta gamma delta", "alpha beta gamma delta")
	scrambled := RougeL("delta gamma beta alpha", "alpha beta gamma delta")
	if scrambled >= inOrder {
		t.Fatalf("scrambled %v should score below in-order %v", scrambled, inOrder)
	}
}

func TestRougeLEmpty(t *testing.T) {
	if !eq(RougeL("", ""), 1) || !eq(RougeL("x", ""), 0) || !eq(RougeL("", "x"), 0) {
		t.Fatal("empty handling")
	}
}

func TestLCS(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{[]string{"a", "b", "c"}, []string{"a", "c"}, 2},
		{[]string{"a"}, []string{"b"}, 0},
		{[]string{"x", "y", "z"}, []string{"x", "y", "z"}, 3},
		{[]string{"a", "b", "a", "b"}, []string{"b", "a", "b", "a"}, 3},
	}
	for _, c := range cases {
		if got := lcs(c.a, c.b); got != c.want {
			t.Fatalf("lcs(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExactMatch(t *testing.T) {
	if !eq(ExactMatch("Passage 7.", "passage 7"), 1) {
		t.Fatal("EM should normalize")
	}
	if !eq(ExactMatch("passage 7", "passage 8"), 0) {
		t.Fatal("EM mismatch")
	}
	if !eq(ExactMatch("passage 7 extra", "passage 7"), 0) {
		t.Fatal("EM length mismatch")
	}
}

func TestContains(t *testing.T) {
	if !eq(Contains("the answer is passage four here", "passage four"), 1) {
		t.Fatal("Contains should find subsequence")
	}
	if !eq(Contains("the answer is passage five", "passage four"), 0) {
		t.Fatal("Contains false positive")
	}
	if !eq(Contains("short", "a much longer reference"), 0) {
		t.Fatal("Contains length")
	}
	if !eq(Contains("anything", ""), 1) {
		t.Fatal("empty reference contained trivially")
	}
}

func TestEditSim(t *testing.T) {
	if !eq(EditSim("abc", "abc"), 1) {
		t.Fatal("identical = 1")
	}
	if !eq(EditSim("", ""), 1) {
		t.Fatal("both empty = 1")
	}
	if !eq(EditSim("abc", ""), 0) {
		t.Fatal("vs empty = 0")
	}
	// One substitution in three chars → 1 - 1/3.
	if got := EditSim("abc", "axc"); !eq(got, 1-1.0/3) {
		t.Fatalf("EditSim = %v", got)
	}
	// Insertion: kitten→sitting classic distance 3, max len 7.
	if got := EditSim("kitten", "sitting"); !eq(got, 1-3.0/7) {
		t.Fatalf("EditSim kitten/sitting = %v", got)
	}
}

func TestEditSimRangeAndSymmetry(t *testing.T) {
	check := func(a, b string) bool {
		v := EditSim(a, b)
		return v >= 0 && v <= 1 && eq(v, EditSim(b, a))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"abc", "abc", 0},
		{"flaw", "lawn", 2}, {"gumbo", "gambol", 2},
	}
	for _, c := range cases {
		if got := levenshtein([]rune(c.a), []rune(c.b)); got != c.want {
			t.Fatalf("lev(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !eq(Mean(xs), 5) {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if !eq(Std(xs), 2) {
		t.Fatalf("std = %v", Std(xs))
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty aggregates")
	}
}

func TestTokenOverlap(t *testing.T) {
	if !eq(TokenOverlap([]int{1, 2, 3}, []int{1, 2, 3}), 1) {
		t.Fatal("identical = 1")
	}
	if !eq(TokenOverlap([]int{1, 2}, []int{3, 4}), 0) {
		t.Fatal("disjoint = 0")
	}
	// {1,2} vs {2,3}: inter=1, union=3.
	if got := TokenOverlap([]int{1, 2}, []int{2, 3}); !eq(got, 1.0/3) {
		t.Fatalf("overlap = %v", got)
	}
	if !eq(TokenOverlap(nil, nil), 1) {
		t.Fatal("both empty = 1")
	}
}

func TestTokenOverlapRange(t *testing.T) {
	check := func(a, b []int) bool {
		v := TokenOverlap(a, b)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
