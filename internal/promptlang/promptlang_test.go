package promptlang

import (
	"strings"
	"testing"

	"repro/internal/pml"
)

const travelProgram = `
schema travel:
  emit "You are a travel planner."
  def trip_plan(duration: 4):
    emit "Plan a trip of"
    arg duration
    emit "days at a relaxed pace."
  choose:
    when tokyo:
      emit "Tokyo is the capital of Japan."
    when miami:
      emit "Miami has beaches and surf."
`

func TestParseBasicProgram(t *testing.T) {
	s, err := Parse(travelProgram)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "travel" {
		t.Fatalf("name = %q", s.Name)
	}
	if len(s.Nodes) != 3 { // text, def module, union
		t.Fatalf("nodes = %d", len(s.Nodes))
	}
	mod, ok := s.Nodes[1].(*pml.Module)
	if !ok || mod.Name != "trip_plan" {
		t.Fatalf("node 1 = %#v", s.Nodes[1])
	}
	// def body: text, param, text
	if len(mod.Nodes) != 3 {
		t.Fatalf("def body = %d nodes", len(mod.Nodes))
	}
	p, ok := mod.Nodes[1].(*pml.Param)
	if !ok || p.Name != "duration" || p.Len != 4 {
		t.Fatalf("param = %#v", mod.Nodes[1])
	}
	u, ok := s.Nodes[2].(*pml.Union)
	if !ok || len(u.Members) != 2 {
		t.Fatalf("union = %#v", s.Nodes[2])
	}
	if u.Members[0].Name != "tokyo" || u.Members[1].Name != "miami" {
		t.Fatalf("union members = %v %v", u.Members[0].Name, u.Members[1].Name)
	}
}

func TestCompileToPMLRoundTrip(t *testing.T) {
	out, err := CompileToPML(travelProgram)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := pml.ParseSchema(out)
	if err != nil {
		t.Fatalf("compiled PML does not parse: %v\n%s", err, out)
	}
	if schema.Name != "travel" {
		t.Fatalf("round-trip name = %q", schema.Name)
	}
	// Fixpoint: serialize→parse→serialize is stable.
	again := pml.Serialize(schema)
	schema2, err := pml.ParseSchema(again)
	if err != nil {
		t.Fatal(err)
	}
	if pml.Serialize(schema2) != again {
		t.Fatal("serialize/parse not a fixpoint")
	}
}

func TestIfBecomesModule(t *testing.T) {
	s, err := Parse("schema s:\n  if ctx:\n    emit \"context text\"\n")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := s.Nodes[0].(*pml.Module)
	if !ok || m.Name != "ctx" {
		t.Fatalf("if did not become module: %#v", s.Nodes[0])
	}
}

func TestNestedIfBecomesNestedModule(t *testing.T) {
	src := `
schema s:
  if outer:
    emit "outer text"
    if inner:
      emit "inner text"
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := s.Nodes[0].(*pml.Module)
	if len(outer.Nodes) != 2 {
		t.Fatalf("outer nodes = %d", len(outer.Nodes))
	}
	inner, ok := outer.Nodes[1].(*pml.Module)
	if !ok || inner.Name != "inner" {
		t.Fatalf("inner = %#v", outer.Nodes[1])
	}
}

func TestRoleStatements(t *testing.T) {
	src := "schema s:\n  system \"be safe\"\n  user \"hi\"\n  assistant \"hello\"\n"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	roles := []pml.Role{pml.RoleSystem, pml.RoleUser, pml.RoleAssistant}
	for i, want := range roles {
		txt := s.Nodes[i].(*pml.Text)
		if txt.Role != want {
			t.Fatalf("node %d role = %v", i, txt.Role)
		}
	}
}

func TestScaffoldStatement(t *testing.T) {
	src := `
schema s:
  if a:
    emit "one"
  if b:
    emit "two"
  scaffold pair: a b
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Scaffolds) != 1 || s.Scaffolds[0].Name != "pair" || len(s.Scaffolds[0].Modules) != 2 {
		t.Fatalf("scaffolds = %+v", s.Scaffolds)
	}
}

func TestMultipleParams(t *testing.T) {
	src := `
schema s:
  def greet(name: 2, title: 3):
    emit "Dear"
    arg title
    arg name
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Nodes[0].(*pml.Module)
	p1 := m.Nodes[1].(*pml.Param)
	p2 := m.Nodes[2].(*pml.Param)
	if p1.Name != "title" || p1.Len != 3 || p2.Name != "name" || p2.Len != 2 {
		t.Fatalf("params = %#v %#v", p1, p2)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"no schema":           "emit \"hi\"\n",
		"schema no colon":     "schema s\n  emit \"x\"\n",
		"bad statement":       "schema s:\n  frobnicate\n",
		"if no colon":         "schema s:\n  if x\n    emit \"a\"\n",
		"if empty body":       "schema s:\n  if x:\n",
		"arg outside def":     "schema s:\n  if m:\n    arg q\n",
		"arg unknown":         "schema s:\n  def f(a: 2):\n    arg b\n",
		"def bad maxlen":      "schema s:\n  def f(a: zero):\n    emit \"x\"\n",
		"def unterminated":    "schema s:\n  def f(a: 2:\n    emit \"x\"\n",
		"choose without when": "schema s:\n  choose:\n    emit \"x\"\n",
		"choose empty":        "schema s:\n  choose:\n",
		"unquoted emit":       "schema s:\n  emit hello\n",
		"scaffold no colon":   "schema s:\n  if a:\n    emit \"x\"\n  scaffold broken a\n",
		"scaffold unknown":    "schema s:\n  if a:\n    emit \"x\"\n  scaffold sc: ghost\n",
		"duplicate modules":   "schema s:\n  if a:\n    emit \"x\"\n  if a:\n    emit \"y\"\n",
		"bad indent jump":     "schema s:\n  if a:\n      emit \"x\"\n    emit \"y\"\n",
	}
	for label, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	src := `
# a travel schema
schema s:

  # the context
  emit "hello"
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(s.Nodes))
	}
}

func TestTabsAsIndent(t *testing.T) {
	src := "schema s:\n\temit \"tabbed\"\n"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestCompiledSchemaServesEndToEnd(t *testing.T) {
	// The compiled PML must be loadable and layout-compilable.
	out, err := CompileToPML(travelProgram)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := pml.ParseSchema(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(schema.Nodes))
	}
}

func TestErrorMessageHasLine(t *testing.T) {
	_, err := Parse("schema s:\n  emit \"ok\"\n  bogus\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error lacks line info: %v", err)
	}
}
