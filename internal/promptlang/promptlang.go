// Package promptlang implements §3.2.4's prompt-program front end: a
// small Python-like language that compiles into PML schemas, so users
// never hand-write markup. The mapping follows the paper exactly:
//
//   - `if NAME:` blocks become <module> constructs (the module is
//     "activated" when a prompt imports it);
//   - choose-one constructs (`choose:` with `when NAME:` arms, the
//     analogue of if/elif/switch) map to <union> tags;
//   - function definitions (`def NAME(p: maxlen, ...):`) become modules
//     whose parameters carry the decorator-style max token length, with
//     `arg p` placing the slot;
//   - nested blocks become nested prompt modules;
//   - `emit`, `system`, `user`, `assistant` statements contribute text;
//   - `scaffold NAME: m1 m2` declares a scaffold set (§3.3).
//
// Example:
//
//	schema travel:
//	  emit "You are a travel planner."
//	  def trip_plan(duration: 4):
//	    emit "Plan a trip of"
//	    arg duration
//	    emit "days at a relaxed pace."
//	  choose:
//	    when tokyo:
//	      emit "Tokyo facts ..."
//	    when miami:
//	      emit "Miami facts ..."
package promptlang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/pml"
)

// CompileError reports a promptlang syntax error.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("promptlang: line %d: %s", e.Line, e.Msg)
}

func errLine(line int, format string, args ...any) *CompileError {
	return &CompileError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// line is one significant source line.
type line struct {
	num    int
	indent int
	text   string
}

// Parse compiles promptlang source into a PML schema AST.
func Parse(src string) (*pml.Schema, error) {
	lines, err := scan(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, errLine(0, "empty program")
	}
	head := lines[0]
	name, ok := strings.CutPrefix(head.text, "schema ")
	if !ok || !strings.HasSuffix(name, ":") {
		return nil, errLine(head.num, "program must start with `schema NAME:`")
	}
	name = strings.TrimSuffix(strings.TrimSpace(name), ":")
	if name == "" {
		return nil, errLine(head.num, "schema needs a name")
	}
	p := &parser{lines: lines, pos: 1}
	nodes, scaffolds, err := p.parseBlock(head.indent, nil)
	if err != nil {
		return nil, err
	}
	if p.pos != len(lines) {
		return nil, errLine(p.lines[p.pos].num, "unexpected dedent structure")
	}
	s := &pml.Schema{Name: name, Nodes: nodes, Scaffolds: scaffolds}
	// Reuse PML's serializer+parser as the validator: it enforces name
	// uniqueness, reserved words and structural rules in one place.
	if _, err := pml.ParseSchema(pml.Serialize(s)); err != nil {
		return nil, fmt.Errorf("promptlang: compiled schema invalid: %w", err)
	}
	return s, nil
}

// CompileToPML compiles promptlang source to PML text.
func CompileToPML(src string) (string, error) {
	s, err := Parse(src)
	if err != nil {
		return "", err
	}
	return pml.Serialize(s), nil
}

// scan splits source into significant lines with indentation depth.
// Tabs count as 4 spaces; blank lines and `#` comments are dropped.
func scan(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		expanded := strings.ReplaceAll(raw, "\t", "    ")
		trimmed := strings.TrimLeft(expanded, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		out = append(out, line{num: i + 1, indent: len(expanded) - len(trimmed), text: strings.TrimRight(trimmed, " ")})
	}
	return out, nil
}

type parser struct {
	lines []line
	pos   int
}

// parseBlock consumes lines strictly more indented than parentIndent.
// scaffoldSink, when non-nil, receives scaffold declarations (only legal
// at schema top level).
func (p *parser) parseBlock(parentIndent int, parentParams map[string]int) ([]pml.Node, []pml.Scaffold, error) {
	var nodes []pml.Node
	var scaffolds []pml.Scaffold
	if p.pos >= len(p.lines) {
		return nil, nil, errLine(0, "expected an indented block")
	}
	blockIndent := p.lines[p.pos].indent
	if blockIndent <= parentIndent {
		return nil, nil, errLine(p.lines[p.pos].num, "expected an indented block")
	}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < blockIndent {
			break
		}
		if l.indent > blockIndent {
			return nil, nil, errLine(l.num, "unexpected indent")
		}
		p.pos++
		switch {
		case strings.HasPrefix(l.text, "emit "):
			txt, err := parseString(l, strings.TrimPrefix(l.text, "emit "))
			if err != nil {
				return nil, nil, err
			}
			nodes = append(nodes, &pml.Text{Content: txt})

		case strings.HasPrefix(l.text, "system "), strings.HasPrefix(l.text, "user "), strings.HasPrefix(l.text, "assistant "):
			role, rest, _ := strings.Cut(l.text, " ")
			txt, err := parseString(l, rest)
			if err != nil {
				return nil, nil, err
			}
			nodes = append(nodes, &pml.Text{Content: txt, Role: roleOf(role)})

		case strings.HasPrefix(l.text, "arg "):
			pname := strings.TrimSpace(strings.TrimPrefix(l.text, "arg "))
			if parentParams == nil {
				return nil, nil, errLine(l.num, "`arg` only valid inside a def block")
			}
			maxlen, ok := parentParams[pname]
			if !ok {
				return nil, nil, errLine(l.num, "unknown parameter %q", pname)
			}
			nodes = append(nodes, &pml.Param{Name: pname, Len: maxlen})

		case strings.HasPrefix(l.text, "if "):
			mname, ok := strings.CutSuffix(strings.TrimSpace(strings.TrimPrefix(l.text, "if ")), ":")
			if !ok {
				return nil, nil, errLine(l.num, "if block must end with `:`")
			}
			body, _, err := p.parseBlock(blockIndent, parentParams)
			if err != nil {
				return nil, nil, err
			}
			nodes = append(nodes, &pml.Module{Name: strings.TrimSpace(mname), Nodes: body})

		case strings.HasPrefix(l.text, "def "):
			mod, err := p.parseDef(l, blockIndent)
			if err != nil {
				return nil, nil, err
			}
			nodes = append(nodes, mod)

		case l.text == "choose:" || strings.HasPrefix(l.text, "choose "):
			u, err := p.parseChoose(l, blockIndent, parentParams)
			if err != nil {
				return nil, nil, err
			}
			nodes = append(nodes, u)

		case strings.HasPrefix(l.text, "scaffold "):
			rest := strings.TrimPrefix(l.text, "scaffold ")
			namePart, modsPart, ok := strings.Cut(rest, ":")
			if !ok {
				return nil, nil, errLine(l.num, "scaffold syntax: scaffold NAME: m1 m2")
			}
			mods := strings.Fields(modsPart)
			if len(mods) == 0 {
				return nil, nil, errLine(l.num, "scaffold needs member modules")
			}
			scaffolds = append(scaffolds, pml.Scaffold{Name: strings.TrimSpace(namePart), Modules: mods})

		default:
			return nil, nil, errLine(l.num, "unrecognized statement %q", l.text)
		}
	}
	return nodes, scaffolds, nil
}

// parseDef handles `def NAME(p1: len1, p2: len2):`.
func (p *parser) parseDef(l line, blockIndent int) (*pml.Module, error) {
	sig, ok := strings.CutSuffix(strings.TrimSpace(strings.TrimPrefix(l.text, "def ")), ":")
	if !ok {
		return nil, errLine(l.num, "def block must end with `:`")
	}
	name := sig
	params := map[string]int{}
	if open := strings.IndexByte(sig, '('); open >= 0 {
		if !strings.HasSuffix(sig, ")") {
			return nil, errLine(l.num, "unterminated parameter list")
		}
		name = strings.TrimSpace(sig[:open])
		list := strings.TrimSpace(sig[open+1 : len(sig)-1])
		if list != "" {
			for _, part := range strings.Split(list, ",") {
				pn, ln, ok := strings.Cut(part, ":")
				if !ok {
					return nil, errLine(l.num, "parameter syntax is `name: maxlen`")
				}
				n, err := strconv.Atoi(strings.TrimSpace(ln))
				if err != nil || n <= 0 {
					return nil, errLine(l.num, "parameter %q needs a positive maxlen", strings.TrimSpace(pn))
				}
				params[strings.TrimSpace(pn)] = n
			}
		}
	}
	if name == "" {
		return nil, errLine(l.num, "def needs a name")
	}
	body, _, err := p.parseBlock(blockIndent, params)
	if err != nil {
		return nil, err
	}
	return &pml.Module{Name: name, Nodes: body}, nil
}

// parseChoose handles `choose:` blocks of `when NAME:` arms.
func (p *parser) parseChoose(l line, blockIndent int, parentParams map[string]int) (*pml.Union, error) {
	if p.pos >= len(p.lines) || p.lines[p.pos].indent <= blockIndent {
		return nil, errLine(l.num, "choose needs at least one `when` arm")
	}
	armIndent := p.lines[p.pos].indent
	u := &pml.Union{}
	for p.pos < len(p.lines) {
		al := p.lines[p.pos]
		if al.indent < armIndent {
			break
		}
		if al.indent > armIndent {
			return nil, errLine(al.num, "unexpected indent in choose block")
		}
		mname, ok := strings.CutSuffix(strings.TrimSpace(strings.TrimPrefix(al.text, "when ")), ":")
		if !strings.HasPrefix(al.text, "when ") || !ok {
			return nil, errLine(al.num, "choose arms must be `when NAME:`")
		}
		p.pos++
		body, _, err := p.parseBlock(armIndent, parentParams)
		if err != nil {
			return nil, err
		}
		u.Members = append(u.Members, &pml.Module{Name: strings.TrimSpace(mname), Nodes: body})
	}
	if len(u.Members) == 0 {
		return nil, errLine(l.num, "choose needs at least one `when` arm")
	}
	return u, nil
}

func parseString(l line, s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", errLine(l.num, "expected a double-quoted string, got %q", s)
	}
	return s[1 : len(s)-1], nil
}

func roleOf(word string) pml.Role {
	switch word {
	case "system":
		return pml.RoleSystem
	case "user":
		return pml.RoleUser
	case "assistant":
		return pml.RoleAssistant
	}
	return pml.RoleNone
}
