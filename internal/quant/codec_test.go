package quant

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/kvcache"
)

func randomKV(t testing.TB, layers, dim, tokens int, seed int64) *kvcache.Cache {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	kv := kvcache.New(layers, dim, tokens)
	k := make([]float32, dim)
	v := make([]float32, dim)
	for i := 0; i < tokens; i++ {
		for l := 0; l < layers; l++ {
			for j := 0; j < dim; j++ {
				k[j] = float32(rng.NormFloat64())
				v[j] = float32(rng.NormFloat64() * 3)
			}
			kv.AppendToken(l, k, v)
		}
		kv.AppendPos(i*3 + 1) // discontinuous positions, as modules have
	}
	return kv
}

// TestCodecRoundTripFP32: the fp32 codec is bit-lossless.
func TestCodecRoundTripFP32(t *testing.T) {
	kv := randomKV(t, 3, 8, 17, 1)
	var buf bytes.Buffer
	n, err := EncodeKV(&buf, kv, CodecFP32)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, codec, err := DecodeKV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if codec != CodecFP32 {
		t.Fatalf("codec = %v", codec)
	}
	if got.Len() != kv.Len() || got.NLayers != kv.NLayers || got.KVDim != kv.KVDim {
		t.Fatalf("shape mismatch: %d/%d/%d", got.Len(), got.NLayers, got.KVDim)
	}
	for l := 0; l < kv.NLayers; l++ {
		for i := range kv.K[l] {
			if got.K[l][i] != kv.K[l][i] || got.V[l][i] != kv.V[l][i] {
				t.Fatalf("layer %d element %d differs", l, i)
			}
		}
	}
	for i, p := range kv.Pos {
		if got.Pos[i] != p {
			t.Fatalf("pos[%d] = %d, want %d", i, got.Pos[i], p)
		}
	}
}

// TestCodecRoundTripQuantized: int8/int4 decode reproduces exactly the
// in-memory compress→decompress result (serialization adds no error),
// and the total error against the original stays within the codec's own
// measured bound (MaxError / MaxErrorInt4).
func TestCodecRoundTripQuantized(t *testing.T) {
	kv := randomKV(t, 2, 6, 23, 2)
	for _, codec := range []Codec{CodecInt8, CodecInt4} {
		t.Run(codec.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if _, err := EncodeKV(&buf, kv, codec); err != nil {
				t.Fatal(err)
			}
			got, c, err := DecodeKV(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if c != codec {
				t.Fatalf("codec = %v, want %v", c, codec)
			}
			var want *kvcache.Cache
			var bound float32
			if codec == CodecInt8 {
				want = Compress(kv).Decompress()
				bound, err = MaxError(kv)
			} else {
				want = CompressInt4(kv).Decompress()
				bound, err = MaxErrorInt4(kv)
			}
			if err != nil {
				t.Fatal(err)
			}
			for l := 0; l < kv.NLayers; l++ {
				for i := range kv.K[l] {
					if got.K[l][i] != want.K[l][i] || got.V[l][i] != want.V[l][i] {
						t.Fatalf("%v: serialization added error at layer %d elem %d", codec, l, i)
					}
					if d := absDiff(got.K[l][i], kv.K[l][i]); d > bound {
						t.Fatalf("%v: K error %v exceeds bound %v", codec, d, bound)
					}
					if d := absDiff(got.V[l][i], kv.V[l][i]); d > bound {
						t.Fatalf("%v: V error %v exceeds bound %v", codec, d, bound)
					}
				}
			}
		})
	}
}

// TestCodecSizeOrdering: int4 < int8 < fp32 on real payloads.
func TestCodecSizeOrdering(t *testing.T) {
	kv := randomKV(t, 4, 16, 64, 3)
	sizes := map[Codec]int{}
	for _, codec := range []Codec{CodecFP32, CodecInt8, CodecInt4} {
		var buf bytes.Buffer
		if _, err := EncodeKV(&buf, kv, codec); err != nil {
			t.Fatal(err)
		}
		sizes[codec] = buf.Len()
	}
	if !(sizes[CodecInt4] < sizes[CodecInt8] && sizes[CodecInt8] < sizes[CodecFP32]) {
		t.Fatalf("size ordering violated: %v", sizes)
	}
}

// TestCodecCorruptInput: corrupt and truncated payloads return errors,
// never panic, for every codec and at every truncation point.
func TestCodecCorruptInput(t *testing.T) {
	kv := randomKV(t, 2, 4, 9, 4)
	for _, codec := range []Codec{CodecFP32, CodecInt8, CodecInt4} {
		var buf bytes.Buffer
		if _, err := EncodeKV(&buf, kv, codec); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		// Truncations at a spread of points, including mid-header.
		for _, n := range []int{0, 1, 4, 8, 11, 12, 20, len(full) / 2, len(full) - 1} {
			if n > len(full) {
				continue
			}
			if _, _, err := DecodeKV(bytes.NewReader(full[:n])); err == nil {
				t.Fatalf("%v: truncation at %d decoded successfully", codec, n)
			}
		}
		// Flipped magic, version, codec and shape fields.
		for _, off := range []int{0, 4, 8, 12, 16, 20} {
			if off+4 > len(full) {
				continue
			}
			bad := append([]byte(nil), full...)
			bad[off] ^= 0xff
			bad[off+3] ^= 0x7f
			// A bit flip may still decode (e.g. in float payloads); it
			// must simply never panic.
			_, _, _ = DecodeKV(bytes.NewReader(bad))
		}
	}
}

// TestParseCodec: names round-trip and junk is rejected.
func TestParseCodec(t *testing.T) {
	for _, codec := range []Codec{CodecFP32, CodecInt8, CodecInt4} {
		got, err := ParseCodec(codec.String())
		if err != nil || got != codec {
			t.Fatalf("ParseCodec(%q) = %v, %v", codec.String(), got, err)
		}
	}
	if _, err := ParseCodec("fp16"); err == nil {
		t.Fatal("unknown codec should fail")
	}
}

// FuzzDecodeKV: arbitrary bytes must never panic the decoder — they
// either fail with an error or decode to a structurally valid cache.
func FuzzDecodeKV(f *testing.F) {
	for _, codec := range []Codec{CodecFP32, CodecInt8, CodecInt4} {
		kv := randomKV(f, 2, 4, 5, int64(codec))
		var buf bytes.Buffer
		if _, err := EncodeKV(&buf, kv, codec); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("SQCP garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		kv, _, err := DecodeKV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if kv == nil {
			t.Fatal("nil cache without error")
		}
		if kv.Len() != len(kv.Pos) {
			t.Fatalf("inconsistent decoded cache: len %d, pos %d", kv.Len(), len(kv.Pos))
		}
		for l := 0; l < kv.NLayers; l++ {
			if len(kv.K[l]) != kv.Len()*kv.KVDim || len(kv.V[l]) != kv.Len()*kv.KVDim {
				t.Fatalf("layer %d buffers inconsistent with token count", l)
			}
		}
	})
}
