package quant

import (
	"testing"
	"testing/quick"

	"repro/internal/kvcache"
	"repro/internal/rng"
)

func TestInt4RoundTripErrorBounded(t *testing.T) {
	kv := randKV(4, 32, 50, 21)
	rec := CompressInt4(kv).Decompress()
	var maxErr, maxScale float32
	for l := 0; l < kv.NLayers; l++ {
		for i := 0; i < kv.Len(); i++ {
			row := kv.KeyRow(l, i)
			var rowMax float32
			for _, v := range row {
				if v < 0 {
					v = -v
				}
				if v > rowMax {
					rowMax = v
				}
			}
			scale := rowMax / 7
			if scale > maxScale {
				maxScale = scale
			}
			got := rec.KeyRow(l, i)
			for j := range row {
				d := row[j] - got[j]
				if d < 0 {
					d = -d
				}
				if d > maxErr {
					maxErr = d
				}
				if d > scale/2+1e-5 {
					t.Fatalf("layer %d token %d: error %v exceeds half-scale %v", l, i, d, scale/2)
				}
			}
		}
	}
	if maxErr == 0 {
		t.Fatal("suspiciously exact int4 round trip")
	}
}

func TestInt4ErrorBoundProperty(t *testing.T) {
	check := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 99)
		row := make([]float32, 23) // odd width exercises the last nibble
		r.FillUniform(row, -8, 8)
		packed := make([]byte, 12)
		scale := quantizeRow4(packed, row)
		out := make([]float32, 23)
		unpackRow4(out, packed, scale)
		for i := range row {
			d := row[i] - out[i]
			if d < 0 {
				d = -d
			}
			if d > scale/2+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInt4CompressionRatio(t *testing.T) {
	kv := randKV(4, 64, 100, 23)
	ratio := RatioInt4(kv)
	// fp32 4B/elem → 0.5B/elem + scale overhead: 8/(1+8·4/64)≈5.3…
	// exact: per row 64 elems: orig 256B; packed 32B + 4B scale → 7.1x
	if ratio < 6.5 || ratio > 7.5 {
		t.Fatalf("int4 ratio %.2f, want ~7.1", ratio)
	}
	// int4 strictly beats int8 on size.
	if ratio <= Ratio(kv) {
		t.Fatalf("int4 ratio %.2f should exceed int8's %.2f", ratio, Ratio(kv))
	}
}

func TestInt4PositionsAndZeros(t *testing.T) {
	kv := kvcache.New(1, 4, 2)
	kv.AppendToken(0, []float32{0, 0, 0, 0}, []float32{1, -1, 0.5, 0})
	kv.AppendPos(7)
	kv.AppendToken(0, []float32{2, -2, 0, 1}, []float32{0, 0, 0, 0})
	kv.AppendPos(19)
	rec := CompressInt4(kv).Decompress()
	if rec.Pos[0] != 7 || rec.Pos[1] != 19 {
		t.Fatal("positions corrupted")
	}
	for _, v := range rec.KeyRow(0, 0) {
		if v != 0 {
			t.Fatal("zero row must survive exactly")
		}
	}
}

func TestInt4Int8FidelityOrdering(t *testing.T) {
	// int8 reconstructs strictly better (not worse) than int4 on the
	// same data.
	kv := randKV(2, 16, 30, 29)
	err8, err := MaxError(kv)
	if err != nil {
		t.Fatal(err)
	}
	rec4 := CompressInt4(kv).Decompress()
	var err4 float32
	for l := 0; l < kv.NLayers; l++ {
		for i := range kv.K[l] {
			d := kv.K[l][i] - rec4.K[l][i]
			if d < 0 {
				d = -d
			}
			if d > err4 {
				err4 = d
			}
		}
	}
	if err4 <= err8 {
		t.Fatalf("int4 error %v should exceed int8's %v", err4, err8)
	}
}
