package quant

import (
	"repro/internal/kvcache"
)

// Compressed4 holds int4-quantized attention states: two values per byte
// with a per-row fp32 scale, for a ~7x reduction versus the engine's fp32
// (≈3.5x versus fp16). The coarser grid costs more reconstruction error
// than int8; both points let users pick their spot on the §6
// memory/fidelity curve.
type Compressed4 struct {
	NLayers int
	KVDim   int
	Pos     []int

	kq, vq         [][]byte // packed nibbles, ceil(KVDim/2) bytes per row
	kScale, vScale [][]float32
}

// Len returns the number of cached tokens.
func (c *Compressed4) Len() int { return len(c.Pos) }

// rowBytes returns the packed row width.
func (c *Compressed4) rowBytes() int { return (c.KVDim + 1) / 2 }

// Bytes returns the compressed footprint.
func (c *Compressed4) Bytes() int64 {
	if c.Len() == 0 {
		return 0
	}
	payload := int64(c.Len()) * int64(c.NLayers) * int64(c.rowBytes()) * 2
	scales := int64(c.Len()) * int64(c.NLayers) * 2 * 4
	return payload + scales
}

// CompressInt4 quantizes a KV cache to packed int4 with per-row scales.
func CompressInt4(kv *kvcache.Cache) *Compressed4 {
	n := kv.Len()
	c := &Compressed4{
		NLayers: kv.NLayers,
		KVDim:   kv.KVDim,
		Pos:     append([]int(nil), kv.Pos...),
		kq:      make([][]byte, kv.NLayers),
		vq:      make([][]byte, kv.NLayers),
		kScale:  make([][]float32, kv.NLayers),
		vScale:  make([][]float32, kv.NLayers),
	}
	rb := c.rowBytes()
	for l := 0; l < kv.NLayers; l++ {
		c.kq[l] = make([]byte, n*rb)
		c.vq[l] = make([]byte, n*rb)
		c.kScale[l] = make([]float32, n)
		c.vScale[l] = make([]float32, n)
		for i := 0; i < n; i++ {
			c.kScale[l][i] = quantizeRow4(c.kq[l][i*rb:(i+1)*rb], kv.KeyRow(l, i))
			c.vScale[l][i] = quantizeRow4(c.vq[l][i*rb:(i+1)*rb], kv.ValueRow(l, i))
		}
	}
	return c
}

// quantizeRow4 packs round(x/scale) ∈ [-7, 7] into nibbles (biased by 8)
// and returns the scale.
func quantizeRow4(dst []byte, src []float32) float32 {
	var maxAbs float32
	for _, v := range src {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0x88 // two biased zeros
		}
		return 0
	}
	scale := maxAbs / 7
	inv := 1 / scale
	for i := range dst {
		dst[i] = 0
	}
	for i, v := range src {
		q := int(roundHalfEven(v * inv))
		if q > 7 {
			q = 7
		} else if q < -7 {
			q = -7
		}
		nib := byte(q + 8)
		if i%2 == 0 {
			dst[i/2] |= nib << 4
		} else {
			dst[i/2] |= nib
		}
	}
	return scale
}

func roundHalfEven(x float32) float32 {
	f := float64(x)
	floor := float64(int64(f))
	if f < 0 {
		floor = float64(int64(f - 0.9999999))
	}
	diff := f - floor
	switch {
	case diff > 0.5:
		floor++
	case diff == 0.5:
		if int64(floor)%2 != 0 {
			floor++
		}
	}
	return float32(floor)
}

// Decompress reconstructs a KV cache from int4 states.
func (c *Compressed4) Decompress() *kvcache.Cache {
	kv := kvcache.New(c.NLayers, c.KVDim, c.Len())
	rb := c.rowBytes()
	krow := make([]float32, c.KVDim)
	vrow := make([]float32, c.KVDim)
	for i := 0; i < c.Len(); i++ {
		for l := 0; l < c.NLayers; l++ {
			unpackRow4(krow, c.kq[l][i*rb:(i+1)*rb], c.kScale[l][i])
			unpackRow4(vrow, c.vq[l][i*rb:(i+1)*rb], c.vScale[l][i])
			kv.AppendToken(l, krow, vrow)
		}
		kv.AppendPos(c.Pos[i])
	}
	return kv
}

func unpackRow4(dst []float32, src []byte, scale float32) {
	for i := range dst {
		var nib byte
		if i%2 == 0 {
			nib = src[i/2] >> 4
		} else {
			nib = src[i/2] & 0x0f
		}
		dst[i] = float32(int(nib)-8) * scale
	}
}

// RatioInt4 returns original fp32 bytes / int4 bytes.
func RatioInt4(orig *kvcache.Cache) float64 {
	c := CompressInt4(orig)
	if c.Bytes() == 0 {
		return 0
	}
	return float64(orig.Bytes(4)) / float64(c.Bytes())
}
