// Package quant implements attention-state compression for cached prompt
// modules, the §6 future-work direction ("integration of compression
// techniques in the KV cache" to cut Table 2's per-token footprint and
// the host-to-device copy volume).
//
// The scheme is symmetric per-row int8 quantization: each cached token's
// K row and V row (per layer) gets one fp32 scale = max|x|/127, and the
// elements are stored as int8. That is a 3.9× size reduction versus the
// engine's fp32 states (1.95× versus the paper's fp16 accounting), with
// reconstruction error bounded by scale/2 per element. Per-row (rather
// than per-tensor) scales keep outlier tokens from poisoning the whole
// module — the same granularity KV-quantization systems use in practice.
package quant

import (
	"fmt"
	"math"

	"repro/internal/kvcache"
)

// Compressed holds one module's quantized attention states.
type Compressed struct {
	NLayers int
	KVDim   int
	Pos     []int

	// kq[l] and vq[l] are [len × KVDim] int8 payloads; kScale[l][i] is
	// the scale of token i's K row in layer l.
	kq, vq         [][]int8
	kScale, vScale [][]float32
}

// Len returns the number of cached tokens.
func (c *Compressed) Len() int { return len(c.Pos) }

// Bytes returns the compressed storage footprint: int8 payloads plus one
// fp32 scale per row, plus positions.
func (c *Compressed) Bytes() int64 {
	if c.Len() == 0 {
		return 0
	}
	payload := int64(c.Len()) * int64(c.NLayers) * int64(c.KVDim) * 2 // K and V, 1 byte each
	scales := int64(c.Len()) * int64(c.NLayers) * 2 * 4
	return payload + scales
}

// Compress quantizes a KV cache to int8 with per-row scales.
func Compress(kv *kvcache.Cache) *Compressed {
	n := kv.Len()
	c := &Compressed{
		NLayers: kv.NLayers,
		KVDim:   kv.KVDim,
		Pos:     append([]int(nil), kv.Pos...),
		kq:      make([][]int8, kv.NLayers),
		vq:      make([][]int8, kv.NLayers),
		kScale:  make([][]float32, kv.NLayers),
		vScale:  make([][]float32, kv.NLayers),
	}
	for l := 0; l < kv.NLayers; l++ {
		c.kq[l] = make([]int8, n*kv.KVDim)
		c.vq[l] = make([]int8, n*kv.KVDim)
		c.kScale[l] = make([]float32, n)
		c.vScale[l] = make([]float32, n)
		for i := 0; i < n; i++ {
			c.kScale[l][i] = quantizeRow(c.kq[l][i*kv.KVDim:(i+1)*kv.KVDim], kv.KeyRow(l, i))
			c.vScale[l][i] = quantizeRow(c.vq[l][i*kv.KVDim:(i+1)*kv.KVDim], kv.ValueRow(l, i))
		}
	}
	return c
}

// quantizeRow writes round(x/scale) into dst and returns the scale.
func quantizeRow(dst []int8, src []float32) float32 {
	var maxAbs float32
	for _, v := range src {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, v := range src {
		q := math.RoundToEven(float64(v * inv))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// Decompress reconstructs a KV cache from the quantized states.
func (c *Compressed) Decompress() *kvcache.Cache {
	kv := kvcache.New(c.NLayers, c.KVDim, c.Len())
	krow := make([]float32, c.KVDim)
	vrow := make([]float32, c.KVDim)
	for i := 0; i < c.Len(); i++ {
		for l := 0; l < c.NLayers; l++ {
			dequantizeRow(krow, c.kq[l][i*c.KVDim:(i+1)*c.KVDim], c.kScale[l][i])
			dequantizeRow(vrow, c.vq[l][i*c.KVDim:(i+1)*c.KVDim], c.vScale[l][i])
			kv.AppendToken(l, krow, vrow)
		}
		kv.AppendPos(c.Pos[i])
	}
	return kv
}

func dequantizeRow(dst []float32, src []int8, scale float32) {
	for i, q := range src {
		dst[i] = float32(q) * scale
	}
}

// MaxError returns the largest elementwise reconstruction error between
// the original cache and its compress→decompress round trip.
func MaxError(orig *kvcache.Cache) (float32, error) {
	if orig.Len() == 0 {
		return 0, fmt.Errorf("quant: empty cache")
	}
	rec := Compress(orig).Decompress()
	var maxErr float32
	for l := 0; l < orig.NLayers; l++ {
		for i := range orig.K[l] {
			d := orig.K[l][i] - rec.K[l][i]
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
			d = orig.V[l][i] - rec.V[l][i]
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	return maxErr, nil
}

// Ratio returns original bytes / compressed bytes at the engine's fp32
// width.
func Ratio(orig *kvcache.Cache) float64 {
	c := Compress(orig)
	if c.Bytes() == 0 {
		return 0
	}
	return float64(orig.Bytes(4)) / float64(c.Bytes())
}
