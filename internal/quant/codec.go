package quant

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/kvcache"
)

// Codec selects the storage precision of a serialized KV payload — the
// knob the disk tier turns to trade blob size against reconstruction
// fidelity. CodecFP32 is the bit-exact passthrough for deployments that
// cannot tolerate quantization error; CodecInt8 and CodecInt4 reuse the
// in-memory compression schemes (per-row scales) at ~3.9× and ~7×
// reduction respectively.
type Codec int

const (
	// CodecFP32 stores full-precision states (lossless, largest).
	CodecFP32 Codec = iota
	// CodecInt8 stores per-row-scaled int8 states (~3.9× smaller,
	// error bounded by scale/2 per element).
	CodecInt8
	// CodecInt4 stores packed per-row-scaled int4 states (~7× smaller,
	// coarser error bound).
	CodecInt4
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecFP32:
		return "fp32"
	case CodecInt8:
		return "int8"
	case CodecInt4:
		return "int4"
	}
	return fmt.Sprintf("codec(%d)", int(c))
}

// ParseCodec maps a codec name ("fp32", "int8", "int4") to its Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "fp32":
		return CodecFP32, nil
	case "int8":
		return CodecInt8, nil
	case "int4":
		return CodecInt4, nil
	}
	return 0, fmt.Errorf("quant: unknown codec %q (want fp32, int8 or int4)", s)
}

// Serialized spill format (little-endian):
//
//	magic   uint32  'P''C''Q''S'
//	version uint32  1
//	codec   uint32  0=fp32 1=int8 2=int4
//	payload
//
// The fp32 payload is the kvcache serialization stream (its own magic
// doubles as an integrity check). Quantized payloads are:
//
//	nLayers uint32
//	kvDim   uint32
//	tokens  uint32
//	pos     tokens × int64
//	layers  nLayers × (kScale tokens×f32, K rows, vScale tokens×f32, V rows)
//
// where a row is kvDim int8 bytes (int8) or ceil(kvDim/2) packed bytes
// (int4). Decoding validates the header bounds and fails with an error —
// never a panic — on truncated or corrupt input.
const (
	codecMagic   = 0x50435153 // "PCQS"
	codecVersion = 1
)

// maxCodecTokens bounds decoding against corrupt headers, mirroring the
// kvcache deserializer.
const maxCodecTokens = 1 << 24

// maxCodecLayers/maxCodecDim bound the shape fields so a corrupt header
// cannot trigger a huge allocation before the payload read fails.
const (
	maxCodecLayers = 1 << 12
	maxCodecDim    = 1 << 20
	// maxCodecElements caps layers×dim×tokens (per K or V): 2^30 fp32
	// elements is a 4 GiB tensor set, beyond any real spill. The encoder
	// enforces the same bound, so the system can never write a blob it
	// would later classify as corrupt. The per-field caps above keep the
	// three-way product ≤ 2^56, so the check cannot wrap int64.
	maxCodecElements = 1 << 30
)

// checkEncodeShape rejects payloads the decoder would refuse to read
// back: spilling something unreadable is strictly worse than failing
// the spill.
func checkEncodeShape(kv *kvcache.Cache) error {
	if kv.NLayers > maxCodecLayers || kv.KVDim > maxCodecDim || kv.Len() > maxCodecTokens ||
		int64(kv.NLayers)*int64(kv.KVDim)*int64(kv.Len()) > maxCodecElements {
		return fmt.Errorf("quant: payload %d×%d×%d exceeds the serializable bounds",
			kv.NLayers, kv.KVDim, kv.Len())
	}
	return nil
}

// EncodeKV serializes kv under the given codec. It returns the number of
// bytes written.
func EncodeKV(w io.Writer, kv *kvcache.Cache, codec Codec) (int64, error) {
	if err := checkEncodeShape(kv); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	var n int64
	writeU32 := func(vs ...uint32) error {
		for _, v := range vs {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
			n += 4
		}
		return nil
	}
	if err := writeU32(codecMagic, codecVersion, uint32(codec)); err != nil {
		return n, err
	}
	switch codec {
	case CodecFP32:
		m, err := kv.WriteTo(bw)
		n += m
		if err != nil {
			return n, err
		}
	case CodecInt8:
		c := Compress(kv)
		if err := writeU32(uint32(c.NLayers), uint32(c.KVDim), uint32(c.Len())); err != nil {
			return n, err
		}
		if err := writePos(bw, c.Pos, &n); err != nil {
			return n, err
		}
		for l := 0; l < c.NLayers; l++ {
			if err := writeScaledRows(bw, c.kScale[l], int8ToBytes(c.kq[l]), &n); err != nil {
				return n, err
			}
			if err := writeScaledRows(bw, c.vScale[l], int8ToBytes(c.vq[l]), &n); err != nil {
				return n, err
			}
		}
	case CodecInt4:
		c := CompressInt4(kv)
		if err := writeU32(uint32(c.NLayers), uint32(c.KVDim), uint32(c.Len())); err != nil {
			return n, err
		}
		if err := writePos(bw, c.Pos, &n); err != nil {
			return n, err
		}
		for l := 0; l < c.NLayers; l++ {
			if err := writeScaledRows(bw, c.kScale[l], c.kq[l], &n); err != nil {
				return n, err
			}
			if err := writeScaledRows(bw, c.vScale[l], c.vq[l], &n); err != nil {
				return n, err
			}
		}
	default:
		return n, fmt.Errorf("quant: cannot encode with unknown codec %d", codec)
	}
	return n, bw.Flush()
}

// DecodeKV deserializes a payload written by EncodeKV, reconstructing the
// full-precision cache (dequantizing as needed) and reporting which codec
// produced it. Corrupt or truncated input returns an error.
func DecodeKV(r io.Reader) (*kvcache.Cache, Codec, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, 0, fmt.Errorf("quant: reading spill header: %w", err)
		}
	}
	if hdr[0] != codecMagic {
		return nil, 0, fmt.Errorf("quant: bad spill magic %#x", hdr[0])
	}
	if hdr[1] != codecVersion {
		return nil, 0, fmt.Errorf("quant: unsupported spill version %d", hdr[1])
	}
	codec := Codec(hdr[2])
	switch codec {
	case CodecFP32:
		kv, err := kvcache.ReadFrom(br)
		if err != nil {
			return nil, codec, err
		}
		return kv, codec, nil
	case CodecInt8, CodecInt4:
		kv, err := decodeQuantized(br, codec)
		if err != nil {
			return nil, codec, err
		}
		return kv, codec, nil
	}
	return nil, codec, fmt.Errorf("quant: unknown spill codec %d", hdr[2])
}

// decodeQuantized reads a quantized payload into its compressed form and
// dequantizes.
func decodeQuantized(br io.Reader, codec Codec) (*kvcache.Cache, error) {
	var shape [3]uint32
	for i := range shape {
		if err := binary.Read(br, binary.LittleEndian, &shape[i]); err != nil {
			return nil, fmt.Errorf("quant: reading spill shape: %w", err)
		}
	}
	nLayers, kvDim, tokens := int(shape[0]), int(shape[1]), int(shape[2])
	if nLayers <= 0 || nLayers > maxCodecLayers || kvDim <= 0 || kvDim > maxCodecDim ||
		tokens < 0 || tokens > maxCodecTokens {
		return nil, fmt.Errorf("quant: implausible spill shape layers=%d kvDim=%d tokens=%d", nLayers, kvDim, tokens)
	}
	// Bound the total payload too: the per-field limits still admit
	// shapes whose buffers a corrupt header should not get allocated
	// before the (doomed) payload read fails.
	if int64(nLayers)*int64(kvDim)*int64(tokens) > maxCodecElements {
		return nil, fmt.Errorf("quant: implausible spill payload %d×%d×%d", nLayers, kvDim, tokens)
	}
	pos, err := readPos(br, tokens)
	if err != nil {
		return nil, err
	}
	rowBytes := kvDim
	if codec == CodecInt4 {
		rowBytes = (kvDim + 1) / 2
	}
	readLayer := func() ([]float32, []byte, error) {
		scales, err := readFloat32s(br, tokens)
		if err != nil {
			return nil, nil, err
		}
		rows := make([]byte, tokens*rowBytes)
		if _, err := io.ReadFull(br, rows); err != nil {
			return nil, nil, err
		}
		return scales, rows, nil
	}
	if codec == CodecInt8 {
		c := &Compressed{
			NLayers: nLayers, KVDim: kvDim, Pos: pos,
			kq: make([][]int8, nLayers), vq: make([][]int8, nLayers),
			kScale: make([][]float32, nLayers), vScale: make([][]float32, nLayers),
		}
		for l := 0; l < nLayers; l++ {
			var krows, vrows []byte
			if c.kScale[l], krows, err = readLayer(); err != nil {
				return nil, fmt.Errorf("quant: spill layer %d keys: %w", l, err)
			}
			if c.vScale[l], vrows, err = readLayer(); err != nil {
				return nil, fmt.Errorf("quant: spill layer %d values: %w", l, err)
			}
			c.kq[l] = bytesToInt8(krows)
			c.vq[l] = bytesToInt8(vrows)
		}
		return c.Decompress(), nil
	}
	c := &Compressed4{
		NLayers: nLayers, KVDim: kvDim, Pos: pos,
		kq: make([][]byte, nLayers), vq: make([][]byte, nLayers),
		kScale: make([][]float32, nLayers), vScale: make([][]float32, nLayers),
	}
	for l := 0; l < nLayers; l++ {
		if c.kScale[l], c.kq[l], err = readLayer(); err != nil {
			return nil, fmt.Errorf("quant: spill layer %d keys: %w", l, err)
		}
		if c.vScale[l], c.vq[l], err = readLayer(); err != nil {
			return nil, fmt.Errorf("quant: spill layer %d values: %w", l, err)
		}
	}
	return c.Decompress(), nil
}

func writePos(w io.Writer, pos []int, n *int64) error {
	buf := make([]byte, 8*len(pos))
	for i, p := range pos {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(int64(p)))
	}
	m, err := w.Write(buf)
	*n += int64(m)
	return err
}

func readPos(r io.Reader, tokens int) ([]int, error) {
	buf := make([]byte, 8*tokens)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("quant: reading spill positions: %w", err)
	}
	pos := make([]int, tokens)
	for i := range pos {
		pos[i] = int(int64(binary.LittleEndian.Uint64(buf[8*i:])))
	}
	return pos, nil
}

func writeScaledRows(w io.Writer, scales []float32, rows []byte, n *int64) error {
	if err := writeFloat32s(w, scales, n); err != nil {
		return err
	}
	m, err := w.Write(rows)
	*n += int64(m)
	return err
}

func writeFloat32s(w io.Writer, xs []float32, n *int64) error {
	buf := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	m, err := w.Write(buf)
	*n += int64(m)
	return err
}

func readFloat32s(r io.Reader, n int) ([]float32, error) {
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// int8ToBytes reinterprets an int8 slice as bytes for bulk writing. The
// copy keeps the codec free of unsafe; spill encoding is not on the serve
// hot path.
func int8ToBytes(xs []int8) []byte {
	out := make([]byte, len(xs))
	for i, x := range xs {
		out[i] = byte(x)
	}
	return out
}

func bytesToInt8(bs []byte) []int8 {
	out := make([]int8, len(bs))
	for i, b := range bs {
		out[i] = int8(b)
	}
	return out
}

// MaxErrorInt4 returns the largest elementwise reconstruction error of
// the int4 compress→decompress round trip — the int4 counterpart of
// MaxError, so callers can verify the codec they picked against its
// actual error on their states.
func MaxErrorInt4(orig *kvcache.Cache) (float32, error) {
	if orig.Len() == 0 {
		return 0, fmt.Errorf("quant: empty cache")
	}
	rec := CompressInt4(orig).Decompress()
	var maxErr float32
	for l := 0; l < orig.NLayers; l++ {
		for i := range orig.K[l] {
			if d := absDiff(orig.K[l][i], rec.K[l][i]); d > maxErr {
				maxErr = d
			}
			if d := absDiff(orig.V[l][i], rec.V[l][i]); d > maxErr {
				maxErr = d
			}
		}
	}
	return maxErr, nil
}

func absDiff(a, b float32) float32 {
	d := a - b
	if d < 0 {
		return -d
	}
	return d
}
