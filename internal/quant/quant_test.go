package quant

import (
	"testing"
	"testing/quick"

	"repro/internal/kvcache"
	"repro/internal/rng"
)

func randKV(nLayers, kvDim, tokens int, seed uint64) *kvcache.Cache {
	r := rng.New(seed)
	kv := kvcache.New(nLayers, kvDim, tokens)
	k := make([]float32, kvDim)
	v := make([]float32, kvDim)
	for i := 0; i < tokens; i++ {
		for l := 0; l < nLayers; l++ {
			r.FillNormal(k, 1)
			r.FillNormal(v, 1)
			kv.AppendToken(l, k, v)
		}
		kv.AppendPos(i * 3) // gapped positions survive compression
	}
	return kv
}

func TestRoundTripErrorBounded(t *testing.T) {
	kv := randKV(4, 32, 50, 1)
	maxErr, err := MaxError(kv)
	if err != nil {
		t.Fatal(err)
	}
	// Per-row symmetric int8: error ≤ scale/2 = max|row|/254. With unit
	// normals, |row| rarely exceeds ~5.
	if maxErr > 0.03 {
		t.Fatalf("round-trip error %v too large", maxErr)
	}
	if maxErr == 0 {
		t.Fatal("suspiciously exact round trip")
	}
}

func TestErrorBoundProperty(t *testing.T) {
	// Per-row guarantee: |x - q·s| ≤ s/2 where s = max|row|/127.
	check := func(seed uint16) bool {
		r := rng.New(uint64(seed) + 7)
		row := make([]float32, 24)
		r.FillUniform(row, -10, 10)
		q := make([]int8, len(row))
		scale := quantizeRow(q, row)
		for i, v := range row {
			rec := float32(q[i]) * scale
			d := v - rec
			if d < 0 {
				d = -d
			}
			if d > scale/2+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPositionsPreserved(t *testing.T) {
	kv := randKV(2, 8, 10, 2)
	rec := Compress(kv).Decompress()
	if rec.Len() != kv.Len() {
		t.Fatalf("len %d != %d", rec.Len(), kv.Len())
	}
	for i := range kv.Pos {
		if rec.Pos[i] != kv.Pos[i] {
			t.Fatal("positions corrupted")
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	kv := randKV(4, 64, 100, 3)
	ratio := Ratio(kv)
	// fp32 (4 B) → int8 (1 B) + 1 scale per 64-wide row: 8/(2+8/64·4)≈3.76
	if ratio < 3.5 || ratio > 4.0 {
		t.Fatalf("compression ratio %.2f, want ~3.8", ratio)
	}
}

func TestBytesAccounting(t *testing.T) {
	kv := randKV(2, 16, 5, 4)
	c := Compress(kv)
	want := int64(5*2*16*2) + int64(5*2*2*4)
	if c.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", c.Bytes(), want)
	}
	empty := &Compressed{NLayers: 2, KVDim: 16}
	if empty.Bytes() != 0 {
		t.Fatal("empty should be 0 bytes")
	}
}

func TestZeroRow(t *testing.T) {
	kv := kvcache.New(1, 4, 1)
	kv.AppendToken(0, []float32{0, 0, 0, 0}, []float32{0, 0, 0, 0})
	kv.AppendPos(0)
	rec := Compress(kv).Decompress()
	for _, v := range rec.K[0] {
		if v != 0 {
			t.Fatal("zero row must survive exactly")
		}
	}
}

func TestExtremeValuesClamped(t *testing.T) {
	row := []float32{1e30, -1e30, 0.5, -0.5}
	q := make([]int8, 4)
	scale := quantizeRow(q, row)
	if q[0] != 127 || q[1] != -127 {
		t.Fatalf("extremes not at rails: %v", q)
	}
	if scale <= 0 {
		t.Fatal("scale must be positive")
	}
}

func TestMaxErrorEmptyCache(t *testing.T) {
	if _, err := MaxError(kvcache.New(1, 2, 0)); err == nil {
		t.Fatal("expected error for empty cache")
	}
}

func TestDeterministic(t *testing.T) {
	kv := randKV(2, 8, 6, 9)
	a := Compress(kv)
	b := Compress(kv)
	for l := 0; l < 2; l++ {
		for i := range a.kq[l] {
			if a.kq[l][i] != b.kq[l][i] {
				t.Fatal("compression nondeterministic")
			}
		}
	}
}

func BenchmarkCompress(b *testing.B) {
	kv := randKV(4, 64, 256, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compress(kv)
	}
}

func BenchmarkDecompress(b *testing.B) {
	c := Compress(randKV(4, 64, 256, 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decompress()
	}
}
