package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/evict"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/tensor"
)

// TestConcurrentServes: the cache must serve many goroutines at once
// (the serving-system use) with every result identical to a solo serve.
// Run with -race to catch synchronization bugs.
func TestConcurrentServes(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	prompts := []string{
		`<prompt schema="travel"><miami/>First question.</prompt>`,
		`<prompt schema="travel"><tokyo/>Second question.</prompt>`,
		`<prompt schema="travel"><trip-plan duration="two days"/><miami/>Third.</prompt>`,
	}
	want := make([][]float32, len(prompts))
	for i, p := range prompts {
		res, err := c.Serve(context.Background(), p, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Logits
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(prompts))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				i := (w + round) % len(prompts)
				res, err := c.Serve(context.Background(), prompts[i], ServeOpts{})
				if err != nil {
					errs <- err
					return
				}
				if d := tensor.MaxAbsDiff(res.Logits, want[i]); d != 0 {
					errs <- fmt.Errorf("worker %d: prompt %d diverged by %v", w, i, d)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentServesOverlap proves serving is genuinely parallel, not
// merely safe: the model probe holds every prefill at a barrier until
// two are in flight at once. If serves still held the cache lock across
// the prefill, the second could never start and the barrier would time
// out.
func TestConcurrentServesOverlap(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	prompts := [2]string{
		`<prompt schema="travel"><miami/>One.</prompt>`,
		`<prompt schema="travel"><tokyo/>Two.</prompt>`,
	}

	var inflight, peak atomic.Int32
	arrived := make(chan struct{}, 2)
	release := make(chan struct{})
	c.Model().PrefillProbe = func(delta int) {
		if delta < 0 {
			inflight.Add(-1)
			return
		}
		n := inflight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		arrived <- struct{}{}
		<-release
	}

	errs := make(chan error, len(prompts))
	for i := range prompts {
		go func(i int) {
			_, err := c.Serve(context.Background(), prompts[i], ServeOpts{})
			errs <- err
		}(i)
	}
	for i := 0; i < len(prompts); i++ {
		select {
		case <-arrived:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d prefill(s) entered the model after 10s: serving is still serialized", i)
		}
	}
	close(release)
	for range prompts {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak in-flight prefills = %d, want >= 2", p)
	}
}

// TestEvictionSkipsPinnedModule: while a serve is mid-prefill its
// modules are pinned; a registration that fills the pool must pick the
// unpinned module as its victim, never the pinned one, and the blocked
// serve must complete with untouched states.
func TestEvictionSkipsPinnedModule(t *testing.T) {
	const schemaA = `<schema name="a">
	  <module name="pin">alpha beta gamma delta epsilon zeta some words</module>
	  <module name="spare">one two three four five six seven eight nine</module>
	</schema>`
	const schemaB = `<schema name="b"><module name="mb">red green blue</module></schema>`

	m, err := model.New(model.LlamaStyle(coreVocab, 91))
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, schemaA)
	need := probe.PoolUsed()
	solo, err := probe.Serve(context.Background(), `<prompt schema="a"><pin/>Question.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}

	// FIFO makes "a/pin" (first inserted) the victim of choice, so only
	// pin-awareness can save it. The pool holds exactly schema a; adding
	// b forces one eviction.
	c := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need})),
		WithEvictionPolicy(evict.NewFIFO()),
	)
	mustRegister(t, c, schemaA)

	// Gate only the serve's prefill: it is the first prefill after the
	// probe is installed; the registration's encode prefills pass
	// through. (Not sync.Once — Do would block the later prefills until
	// the gated one finishes.)
	var gated atomic.Bool
	entered := make(chan struct{})
	gate := make(chan struct{})
	m.PrefillProbe = func(delta int) {
		if delta > 0 && gated.CompareAndSwap(false, true) {
			close(entered)
			<-gate
		}
	}
	defer func() { m.PrefillProbe = nil }()

	served := make(chan error, 1)
	var res *ServeResult
	go func() {
		var err error
		res, err = c.Serve(context.Background(), `<prompt schema="a"><pin/>Question.</prompt>`, ServeOpts{})
		served <- err
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("serve never reached the model")
	}

	// The serve is mid-prefill with "a/pin" pinned. Register b: the pool
	// is full, so one of a's modules must go — and it must be "spare".
	if _, err := c.RegisterSchema(schemaB); err != nil {
		t.Fatalf("registration alongside a pinned serve: %v", err)
	}
	c.mu.Lock()
	e := c.schemas["a"]
	pinState, spareState := e.modules["pin"].state, e.modules["spare"].state
	pinHeld := c.pool.Has("a/pin")
	c.mu.Unlock()
	if pinState != stateResident || !pinHeld {
		t.Fatalf("pinned module was evicted mid-serve (state %d, resident %v)", pinState, pinHeld)
	}
	if spareState == stateResident {
		t.Fatal("expected the unpinned module to be the eviction victim")
	}

	close(gate)
	if err := <-served; err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(res.Logits, solo.Logits); d != 0 {
		t.Fatalf("serve across pinned eviction diverged by %v", d)
	}
}

// TestConcurrentServePrefetchRegisterBatch hammers every mutating entry
// point at once — Serve, ServeBatch, Prefetch, RegisterSchema, Stats —
// and exists mainly for the race detector.
func TestConcurrentServePrefetchRegisterBatch(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(4)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if _, err := c.Serve(ctx, `<prompt schema="travel"><miami/>Go.</prompt>`, ServeOpts{}); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			prompts := []string{
				`<prompt schema="travel"><tokyo/>A.</prompt>`,
				`<prompt schema="travel"><miami/>B.</prompt>`,
				`<prompt schema="travel"><trip-plan duration="two days"/><miami/>C.</prompt>`,
			}
			for i := 0; i < 3; i++ {
				if _, _, err := c.ServeBatch(ctx, prompts, ServeOpts{BatchWorkers: 2}); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if err := c.Prefetch("travel", "miami", "tokyo"); err != nil {
					errs <- err
					return
				}
				c.Stats()
			}
		}()
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				src := fmt.Sprintf(`<schema name="h%d_%d"><module name="m">hammer content %d %d</module></schema>`, w, i, w, i)
				if _, err := c.RegisterSchema(src); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentRegisterAndServe: schema registration racing with serves
// of other schemas must be safe.
func TestConcurrentRegisterAndServe(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			src := fmt.Sprintf(`<schema name="aux%d"><module name="doc%d">auxiliary content number %d here</module></schema>`, w, w, w)
			if _, err := c.RegisterSchema(src); err != nil {
				errs <- err
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := c.Serve(context.Background(), `<prompt schema="travel"><miami/>Go.</prompt>`, ServeOpts{}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All aux schemas usable afterwards.
	for w := 0; w < 4; w++ {
		p := fmt.Sprintf(`<prompt schema="aux%d"><doc%d/>ok</prompt>`, w, w)
		if _, err := c.Serve(context.Background(), p, ServeOpts{}); err != nil {
			t.Fatal(err)
		}
	}
}
