package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestConcurrentServes: the cache must serve many goroutines at once
// (the serving-system use) with every result identical to a solo serve.
// Run with -race to catch synchronization bugs.
func TestConcurrentServes(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	prompts := []string{
		`<prompt schema="travel"><miami/>First question.</prompt>`,
		`<prompt schema="travel"><tokyo/>Second question.</prompt>`,
		`<prompt schema="travel"><trip-plan duration="two days"/><miami/>Third.</prompt>`,
	}
	want := make([][]float32, len(prompts))
	for i, p := range prompts {
		res, err := c.Serve(context.Background(), p, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Logits
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(prompts))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				i := (w + round) % len(prompts)
				res, err := c.Serve(context.Background(), prompts[i], ServeOpts{})
				if err != nil {
					errs <- err
					return
				}
				if d := tensor.MaxAbsDiff(res.Logits, want[i]); d != 0 {
					errs <- fmt.Errorf("worker %d: prompt %d diverged by %v", w, i, d)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentRegisterAndServe: schema registration racing with serves
// of other schemas must be safe.
func TestConcurrentRegisterAndServe(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			src := fmt.Sprintf(`<schema name="aux%d"><module name="doc%d">auxiliary content number %d here</module></schema>`, w, w, w)
			if _, err := c.RegisterSchema(src); err != nil {
				errs <- err
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := c.Serve(context.Background(), `<prompt schema="travel"><miami/>Go.</prompt>`, ServeOpts{}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All aux schemas usable afterwards.
	for w := 0; w < 4; w++ {
		p := fmt.Sprintf(`<prompt schema="aux%d"><doc%d/>ok</prompt>`, w, w)
		if _, err := c.Serve(context.Background(), p, ServeOpts{}); err != nil {
			t.Fatal(err)
		}
	}
}
