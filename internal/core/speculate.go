package core

import "repro/internal/mining"

// DraftOpts configures the speculative-decoding draft source; it is an
// alias of the mining package's draft config so promptcache can
// re-export it without leaking internals. Zero fields take the draft
// package's documented defaults.
type DraftOpts = mining.DraftConfig

// WithSpeculation enables draft-and-verify speculative decoding: retired
// generations train a per-serving-class n-gram draft source, and decode
// lanes verify its proposals in widened fused steps, accepting exactly
// the prefix solo decode would have produced — output is bit-identical
// with or without it. Speculation runs inside the decode scheduler, so
// it takes effect only together with WithDecodeScheduler; per-request
// policy (model.SpecOpts) can opt individual generations out.
func WithSpeculation(opts DraftOpts) Option {
	return func(c *Cache) { c.draft = mining.NewDraft(opts) }
}

// SpecStats is a snapshot of speculative-decoding activity: the draft
// source's table statistics plus the scheduler's verify counters.
type SpecStats struct {
	Enabled bool `json:"enabled"`
	// Observed counts accepted token streams fed to the draft source.
	Observed uint64 `json:"observed"`
	// Classes and Contexts size the n-gram table.
	Classes  int `json:"classes"`
	Contexts int `json:"contexts"`
	// SpecSteps counts fused steps that verified at least one draft
	// token; DraftProposed and DraftAccepted count draft tokens verified
	// and accepted across all lanes.
	SpecSteps     int64 `json:"spec_steps"`
	DraftProposed int64 `json:"draft_proposed"`
	DraftAccepted int64 `json:"draft_accepted"`
	// AcceptRate is DraftAccepted / DraftProposed (0 before any
	// proposal) — how often the draft source guesses the sampler's next
	// token.
	AcceptRate float64 `json:"accept_rate"`
}

// SpecEnabled reports whether speculative decoding is active: a draft
// source installed and a decode scheduler to run verify steps in.
func (c *Cache) SpecEnabled() bool { return c.draft != nil && c.sched != nil }

// SpecStats returns a snapshot of speculation activity. Without
// WithSpeculation it returns the zero snapshot (Enabled false).
func (c *Cache) SpecStats() SpecStats {
	if c.draft == nil {
		return SpecStats{}
	}
	ds := c.draft.Stats()
	st := SpecStats{
		Enabled:  true,
		Observed: ds.Observed,
		Classes:  ds.Classes,
		Contexts: ds.Contexts,
	}
	if c.sched != nil {
		ss := c.sched.Stats()
		st.SpecSteps = ss.SpecSteps
		st.DraftProposed = ss.DraftProposed
		st.DraftAccepted = ss.DraftAccepted
		if ss.DraftProposed > 0 {
			st.AcceptRate = float64(ss.DraftAccepted) / float64(ss.DraftProposed)
		}
	}
	return st
}
