package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/evict"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/tensor"
)

// specDraftOpts is the draft configuration the speculation tests share:
// MinHits 1 lets a single training pass qualify transitions, so a second
// pass over the same prompts actually speculates.
func specDraftOpts() DraftOpts { return DraftOpts{MinHits: 1} }

// TestSpeculationGoldenSpecVsSolo is the bit-identity contract of
// speculative decoding, in the style of TestSchedulerGoldenFused: a
// speculating cache must produce, per request, exactly the token and
// logit streams of a solo non-speculative run — on a cold draft (pass 1,
// where "never worse" means "identical"), and on a warmed draft (pass 2,
// where drafts are actually proposed and accepted). Heterogeneous
// samplers (greedy, temperature, top-k), concurrent mid-run joins,
// RoPE and ALiBi, both tensor backends.
func TestSpeculationGoldenSpecVsSolo(t *testing.T) {
	archs := []struct {
		name string
		cfg  model.Config
		spec tensor.Backend
	}{
		{"llama", model.LlamaStyle(coreVocab, 77), tensor.Scalar()},
		{"llama-parallel", model.LlamaStyle(coreVocab, 77), tensor.NewParallel(4)},
		{"mpt-alibi", model.MPTStyle(coreVocab, 77), tensor.Scalar()},
		{"mpt-alibi-parallel", model.MPTStyle(coreVocab, 77), tensor.NewParallel(4)},
	}
	for _, arch := range archs {
		t.Run(arch.name, func(t *testing.T) {
			ctx := context.Background()
			solo := newTestCache(t, arch.cfg)
			solo.Model().SetBackend(tensor.Scalar())
			spec := newTestCache(t, arch.cfg,
				WithDecodeScheduler(4),
				WithSpeculation(specDraftOpts()),
				WithBackend(arch.spec))
			reqs := goldenRequests()
			for _, c := range []*Cache{solo, spec} {
				mustRegister(t, c, travelSchema)
				mustRegister(t, c, multiParamSchema)
				for _, rq := range reqs {
					res, err := c.Serve(ctx, rq.prompt, ServeOpts{})
					if err != nil {
						t.Fatal(err)
					}
					res.Close()
				}
			}

			want := make([]goldenRun, len(reqs))
			for i, rq := range reqs {
				want[i] = runGolden(ctx, solo, rq)
				if want[i].err != nil {
					t.Fatalf("solo %d: %v", i, want[i].err)
				}
			}

			// Two concurrent passes over the same requests: pass 0 runs on a
			// cold draft (and trains it as lanes retire), pass 1 on a warm
			// one. Both must be stream-identical to solo.
			for pass := 0; pass < 2; pass++ {
				got := make([]goldenRun, len(reqs))
				var wg sync.WaitGroup
				for i, rq := range reqs {
					wg.Add(1)
					go func(i int, rq goldenReq) {
						defer wg.Done()
						got[i] = runGolden(ctx, spec, rq)
					}(i, rq)
				}
				wg.Wait()
				for i := range reqs {
					if got[i].err != nil {
						t.Fatalf("pass %d req %d: %v", pass, i, got[i].err)
					}
					if len(got[i].toks) != len(want[i].toks) {
						t.Fatalf("pass %d req %d: spec %d tokens, solo %d", pass, i, len(got[i].toks), len(want[i].toks))
					}
					for j := range got[i].toks {
						if got[i].toks[j] != want[i].toks[j] {
							t.Fatalf("pass %d req %d token %d: spec %d, solo %d", pass, i, j, got[i].toks[j], want[i].toks[j])
						}
					}
					if len(got[i].logits) != len(want[i].logits) {
						t.Fatalf("pass %d req %d: spec sampled %d times, solo %d", pass, i, len(got[i].logits), len(want[i].logits))
					}
					for j := range got[i].logits {
						if d := tensor.MaxAbsDiff(got[i].logits[j], want[i].logits[j]); d != 0 {
							t.Fatalf("pass %d req %d step %d: spec logits diverge from solo by %v", pass, i, j, d)
						}
					}
				}
			}

			st := spec.SpecStats()
			if !st.Enabled || st.Observed == 0 {
				t.Fatalf("draft source never trained: %+v", st)
			}
			if st.SpecSteps == 0 || st.DraftProposed == 0 || st.DraftAccepted == 0 {
				t.Fatalf("warmed pass never speculated: %+v", st)
			}
			ss := spec.SchedStats()
			if got := ss.AcceptedPerStep(); got <= 1 {
				t.Fatalf("AcceptedPerStep = %v with %d tokens / %d steps", got, ss.TokensDecoded, ss.Steps)
			}
		})
	}
}

// TestSpeculationOptOut: a request carrying SpecOff must decode through
// the flat (non-speculative) path even on a warmed cache — SpecSteps
// stays put — and still produce the solo-identical stream.
func TestSpeculationOptOut(t *testing.T) {
	ctx := context.Background()
	c := llamaCache(t, WithDecodeScheduler(4), WithSpeculation(specDraftOpts()))
	mustRegister(t, c, travelSchema)
	prompt := `<prompt schema="travel"><miami/>Plan a beach day.</prompt>`
	run := func(policy model.SpecPolicy) []int {
		res, err := c.Serve(ctx, prompt, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		ids, err := c.Generate(ctx, res, model.GenerateOpts{
			MaxTokens: 20, StopToken: -1,
			Speculation: model.SpecOpts{Policy: policy},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}
	// Train: two speculating runs (the first observes, the second accepts).
	want := run(model.SpecAuto)
	onWarm := run(model.SpecAuto)
	if c.SpecStats().SpecSteps == 0 {
		t.Fatalf("warm run never speculated: %+v", c.SpecStats())
	}
	before := c.SpecStats().SpecSteps
	optedOut := run(model.SpecOff)
	if after := c.SpecStats().SpecSteps; after != before {
		t.Fatalf("SpecOff request still speculated: %d -> %d spec steps", before, after)
	}
	for _, got := range [][]int{onWarm, optedOut} {
		if len(got) != len(want) {
			t.Fatalf("stream lengths diverge: %d vs %d", len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("token %d diverges: %d vs %d", j, got[j], want[j])
			}
		}
	}
}

// TestSpeculationCancelMidRun: cancelling one lane mid-decode on a
// warmed, speculating cache retires exactly that lane while a concurrent
// lane keeps decoding to its full solo-identical reply — speculation's
// KV truncation must not disturb cancellation bookkeeping or siblings.
func TestSpeculationCancelMidRun(t *testing.T) {
	c := llamaCache(t, WithDecodeScheduler(4), WithSpeculation(specDraftOpts()))
	mustRegister(t, c, travelSchema)
	ctx := context.Background()
	survivor := goldenReq{
		`<prompt schema="travel"><tokyo/>Keep going.</prompt>`, 24,
		func() model.Sampler { return model.GreedySampler{} },
	}
	// Warm the draft on the survivor's own stream so the surviving lane
	// really speculates while its sibling is being cancelled.
	want := runGolden(ctx, c, survivor)
	if want.err != nil {
		t.Fatal(want.err)
	}
	if again := runGolden(ctx, c, survivor); again.err != nil {
		t.Fatal(again.err)
	}

	cancelCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	resA, err := c.Serve(ctx, `<prompt schema="travel"><miami/>Cancelled one.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer resA.Close()
	aDone := make(chan goldenRun, 1)
	go func() {
		emitted := 0
		ids, err := c.GenerateStream(cancelCtx, resA, model.GenerateOpts{MaxTokens: 500, StopToken: -1}, func(string) bool {
			emitted++
			if emitted == 3 {
				cancel()
			}
			return true
		})
		aDone <- goldenRun{toks: ids, err: err}
	}()

	gotB := runGolden(ctx, c, survivor)
	if gotB.err != nil {
		t.Fatal(gotB.err)
	}
	a := <-aDone
	if !errors.Is(a.err, context.Canceled) {
		t.Fatalf("cancelled lane error = %v, want context.Canceled", a.err)
	}
	if len(gotB.toks) != len(want.toks) {
		t.Fatalf("survivor decoded %d tokens, want %d", len(gotB.toks), len(want.toks))
	}
	for j := range gotB.toks {
		if gotB.toks[j] != want.toks[j] {
			t.Fatalf("survivor token %d: %d != %d", j, gotB.toks[j], want.toks[j])
		}
	}
	if st := c.SchedStats(); st.LanesCancelled == 0 {
		t.Fatalf("cancellation not recorded: %+v", st)
	}
}

// TestSpeculationChurnHammer mixes speculative decode with every
// mutating cache entry point — Serve+Generate loops (training and then
// speculating), Prefetch promotion churn, schema registration, eviction
// under a tiny device pool with a host tier — and exists mainly for the
// race detector over the draft table and the widened verify step.
func TestSpeculationChurnHammer(t *testing.T) {
	c := llamaCache(t,
		WithDecodeScheduler(4),
		WithSpeculation(specDraftOpts()),
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: 96 << 10})),
		WithHostPool(memory.NewPool(memory.Device{Name: "host", Kind: memory.DRAM})),
		WithEvictionPolicy(evict.NewLRU()),
	)
	mustRegister(t, c, travelSchema)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(3)
		go func(w int) {
			defer wg.Done()
			prompts := []string{
				`<prompt schema="travel"><miami/>Go.</prompt>`,
				`<prompt schema="travel"><tokyo/>Go.</prompt>`,
				`<prompt schema="travel"><trip-plan duration="two days"/><miami/>Go.</prompt>`,
			}
			for i := 0; i < 6; i++ {
				res, err := c.Serve(ctx, prompts[(w+i)%len(prompts)], ServeOpts{})
				if err != nil {
					errs <- err
					return
				}
				if _, err := c.Generate(ctx, res, model.GenerateOpts{MaxTokens: 5, StopToken: -1}); err != nil {
					res.Close()
					errs <- err
					return
				}
				res.Close()
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if err := c.Prefetch("travel", "miami", "tokyo"); err != nil {
					errs <- err
					return
				}
				c.SpecStats()
			}
		}()
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				src := fmt.Sprintf(`<schema name="churn%d_%d"><module name="m">churn content %d %d plus padding words</module></schema>`, w, i, w, i)
				if _, err := c.RegisterSchema(src); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.SchedStats()
	if st.ActiveLanes != 0 || st.QueueDepth != 0 {
		t.Fatalf("scheduler not drained: %+v", st)
	}
	if st.LanesJoined != st.LanesRetired {
		t.Fatalf("lane leak: joined %d retired %d", st.LanesJoined, st.LanesRetired)
	}
	if sp := c.SpecStats(); !sp.Enabled || sp.Observed == 0 {
		t.Fatalf("draft source never observed under churn: %+v", sp)
	}
}

// TestSpeculationSchemaDropForgets: replacing a schema must clear the
// draft classes its serving traffic trained, the same hygiene the miner
// applies, so the re-registered schema starts from a cold predictor.
func TestSpeculationSchemaDropForgets(t *testing.T) {
	ctx := context.Background()
	c := llamaCache(t, WithDecodeScheduler(2), WithSpeculation(specDraftOpts()))
	mustRegister(t, c, travelSchema)
	prompt := `<prompt schema="travel"><miami/>Plan a beach day.</prompt>`
	for i := 0; i < 2; i++ {
		res, err := c.Serve(ctx, prompt, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Generate(ctx, res, model.GenerateOpts{MaxTokens: 8, StopToken: -1}); err != nil {
			t.Fatal(err)
		}
		res.Close()
	}
	if st := c.SpecStats(); st.Classes == 0 || st.Contexts == 0 {
		t.Fatalf("draft never trained: %+v", st)
	}
	mustRegister(t, c, travelSchema) // replacement drops the old entry
	if st := c.SpecStats(); st.Classes != 0 || st.Contexts != 0 {
		t.Fatalf("replaced schema's draft classes survive: %+v", st)
	}
}
