package core

import (
	"context"
	"testing"

	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/tensor"
)

// TestTieredDemotionAvoidsReEncode: with a host pool behind the tight
// primary pool, evicted modules demote instead of dropping, and reuse
// promotes them back with zero re-encoding (§4.1 two-tier).
func TestTieredDemotionAvoidsReEncode(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 501)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	tiered := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/2 + 1})),
		WithHostPool(memory.NewPool(memory.Device{Name: "dram", Kind: memory.DRAM})),
	)
	mustRegister(t, tiered, travelSchema)
	st := tiered.Stats()
	if st.ModulesDemoted == 0 {
		t.Fatalf("expected demotions, got %+v", st)
	}
	if st.ModulesReloaded != 0 {
		t.Fatalf("demotion should avoid re-encodes, got %d", st.ModulesReloaded)
	}

	// Serving everything cycles modules through promote/demote but never
	// re-encodes, and outputs match the unconstrained cache.
	prompts := []string{
		`<prompt schema="travel"><trip-plan duration="a week"/><tokyo/>Plan.</prompt>`,
		`<prompt schema="travel"><miami/>Surf?</prompt>`,
		`<prompt schema="travel"><trip-plan duration="two days"/><miami/>Plan.</prompt>`,
	}
	encodes := tiered.Stats().ModulesEncoded
	for _, p := range prompts {
		want, err := probe.Serve(context.Background(), p, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := tiered.Serve(context.Background(), p, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d != 0 {
			t.Fatalf("tiered serve differs by %v", d)
		}
	}
	st = tiered.Stats()
	if st.ModulesEncoded != encodes {
		t.Fatalf("tiered cache re-encoded: %d -> %d", encodes, st.ModulesEncoded)
	}
	if st.ModulesPromoted == 0 {
		t.Fatal("expected promotions on reuse")
	}
}

// TestTieredHostPoolCapBounded: a capped host pool falls back to dropping
// when full, and everything still serves correctly.
func TestTieredHostPoolCapBounded(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 521)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	tiered := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/3 + 1})),
		WithHostPool(memory.NewPool(memory.Device{Name: "dram", Kind: memory.DRAM, Capacity: need / 4})),
	)
	mustRegister(t, tiered, travelSchema)
	st := tiered.Stats()
	if st.ModulesEvicted == 0 {
		t.Fatal("expected evictions")
	}
	res, err := tiered.Serve(context.Background(), `<prompt schema="travel"><tokyo/>Plan.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := probe.Serve(context.Background(), `<prompt schema="travel"><tokyo/>Plan.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(res.Logits, want.Logits); d > 1e-4 {
		t.Fatalf("capped tiered serve differs by %v", d)
	}
}

// TestPrefetch: warming modules promotes demoted states ahead of use, so
// the subsequent serve performs no promotion of its own.
func TestPrefetch(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 541)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	tiered := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/2 + 1})),
		WithHostPool(memory.NewPool(memory.Device{Name: "dram", Kind: memory.DRAM})),
	)
	mustRegister(t, tiered, travelSchema)
	if tiered.Stats().ModulesDemoted == 0 {
		t.Fatal("setup needs demotions")
	}
	if err := tiered.PrefetchUnion("travel", "miami"); err != nil {
		t.Fatal(err)
	}
	if tiered.Stats().ModulesPromoted == 0 {
		t.Fatal("prefetch should promote")
	}
	// Errors surface for unknown targets.
	if err := tiered.Prefetch("travel", "ghost"); err == nil {
		t.Fatal("unknown module should fail")
	}
	if err := tiered.Prefetch("ghost", "m"); err == nil {
		t.Fatal("unknown schema should fail")
	}
	if err := tiered.PrefetchUnion("travel", "trip-plan"); err == nil {
		t.Fatal("non-union member should fail")
	}
}

// TestTieredReRegisterFreesHostPool: re-registering a schema releases
// host-pool reservations of demoted modules.
func TestTieredReRegisterFreesHostPool(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 531)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	host := memory.NewPool(memory.Device{Name: "dram", Kind: memory.DRAM})
	tiered := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/2 + 1})),
		WithHostPool(host),
	)
	mustRegister(t, tiered, travelSchema)
	used := host.Used()
	if used == 0 {
		t.Fatal("host pool should hold demoted modules")
	}
	mustRegister(t, tiered, travelSchema)
	if host.Used() > used {
		t.Fatalf("host pool grew on re-register: %d -> %d", used, host.Used())
	}
}
