package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/pml"
)

// BatchStats reports the memory effect of serving a batch with shared
// prompt modules (§3.4: "Prompt Cache can reduce the memory footprint ...
// when combined with methods like paged attention, allowing for a larger
// working batch size").
type BatchStats struct {
	Prompts int
	// LogicalBytes is what the batch's module states would occupy if
	// every prompt duplicated them; PhysicalBytes is the actual shared
	// footprint (each distinct module stored once).
	LogicalBytes, PhysicalBytes int64
	// SharedModules counts module references served from an earlier
	// prompt's blocks.
	SharedModules int
}

// Savings returns 1 - physical/logical (0 when nothing shared).
func (b BatchStats) Savings() float64 {
	if b.LogicalBytes == 0 {
		return 0
	}
	return 1 - float64(b.PhysicalBytes)/float64(b.LogicalBytes)
}

// blockRegistry guards a batch's module→blocks map behind its own small
// lock, so concurrent serves publish and share attention-state blocks
// without ever touching the cache-wide mutex.
type blockRegistry struct {
	pool *kvcache.PagedPool

	mu     sync.Mutex
	blocks map[string][]kvcache.BlockID
	shared int
}

// has reports whether the registry already holds blocks for key. Handed
// to planServeLocked so prompts after the first skip pinning (and, under
// capacity pressure, re-encoding) modules the batch has already
// materialized.
func (r *blockRegistry) has(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.blocks[key]
	return ok
}

// retainLocked shares an existing entry. Published blocks are never
// released during a batch, so refcounts only grow.
func (r *blockRegistry) retainLocked(ids []kvcache.BlockID) ([]kvcache.BlockID, error) {
	if err := r.pool.Retain(ids); err != nil {
		return nil, err
	}
	r.shared++
	return ids, nil
}

// acquire returns the shared blocks backing a part, storing its states
// on first use and retaining the existing blocks on every later one.
// The expensive step — materializing and copying the states into the
// pool — runs outside r.mu (double-checked publish), so a worker
// storing a large module never stalls the others' lookups.
func (r *blockRegistry) acquire(part servePart) ([]kvcache.BlockID, error) {
	r.mu.Lock()
	ids, have := r.blocks[part.key]
	if have {
		defer r.mu.Unlock()
		return r.retainLocked(ids)
	}
	r.mu.Unlock()

	st := part.states()
	if st == nil {
		// A key-only part (planned via has) whose entry vanished —
		// impossible while entries are append-only, kept as a guard.
		//pclint:ignore errtaxonomy unreachable internal guard: a tripped invariant is a bug, and 500 is the honest status for it
		return nil, fmt.Errorf("core: batch part %q has no states to share", part.key)
	}
	var fresh []kvcache.BlockID
	if st.Len() > 0 {
		fresh = r.pool.Store(st)
	}
	r.mu.Lock()
	if ids, have := r.blocks[part.key]; have {
		// Another worker published first: discard ours, share theirs.
		defer r.mu.Unlock()
		if fresh != nil {
			_ = r.pool.Release(fresh)
		}
		return r.retainLocked(ids)
	}
	r.blocks[part.key] = fresh
	r.mu.Unlock()
	return fresh, nil
}

// ServeBatch serves a batch of prompts derived from registered schemas,
// sharing each distinct module's attention states across the batch
// through a reference-counted paged pool instead of duplicating them per
// prompt. Prompts fan out over a bounded worker pool (ServeOpts.
// BatchWorkers; default GOMAXPROCS) and prefill concurrently — only the
// brief metadata planning and block bookkeeping serialize. Results are
// positionally parallel to prompts and identical to serving each prompt
// alone.
func (c *Cache) ServeBatch(ctx context.Context, prompts []string, opts ServeOpts) ([]*ServeResult, BatchStats, error) {
	if len(prompts) == 0 {
		return nil, BatchStats{}, fmt.Errorf("%w: empty batch", ErrBadPrompt)
	}
	stats := BatchStats{Prompts: len(prompts)}
	parsed := make([]*pml.Prompt, len(prompts))
	for i, src := range prompts {
		p, err := pml.ParsePrompt(src)
		if err != nil {
			return nil, stats, fmt.Errorf("batch[%d]: %w: %v", i, ErrBadPrompt, err)
		}
		parsed[i] = p
	}

	reg := &blockRegistry{
		pool:   kvcache.NewPagedPool(16, int64(c.m.Cfg.KVDim())*int64(c.m.Cfg.NLayers)*2*4),
		blocks: map[string][]kvcache.BlockID{},
	}
	workers := opts.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(prompts) {
		workers = len(prompts)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*ServeResult, len(prompts))
	errs := make([]error, len(prompts))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// A cancelled batch must not keep planning (which can
				// re-encode under the cache lock); bail before serving.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				res, err := c.serveShared(ctx, parsed[i], opts, reg)
				if err != nil {
					errs[i] = err
					cancel() // abort the rest of the batch promptly
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range parsed {
		work <- i
	}
	close(work)
	wg.Wait()

	// Report the lowest-indexed real failure; prompts that aborted only
	// because a sibling failed are casualties, not causes.
	var cancelErr error
	cancelIdx := -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if cancelIdx < 0 {
				cancelErr, cancelIdx = err, i
			}
			continue
		}
		return nil, stats, fmt.Errorf("batch[%d]: %w", i, err)
	}
	if cancelIdx >= 0 {
		return nil, stats, fmt.Errorf("batch[%d]: %w", cancelIdx, cancelErr)
	}
	stats.SharedModules = reg.shared
	stats.PhysicalBytes = reg.pool.PhysicalBytes()
	stats.LogicalBytes = reg.pool.LogicalBytes()
	return results, stats, nil
}

// serveShared is ServeParsed with module states shared through the
// batch's paged pool: plan and pin under the cache lock, publish or
// retain blocks under the registry's own lock, prefill under no lock at
// all. Each prompt's KV is a segmented view over the pool's block
// payloads — the per-module copy happens once at publish time and every
// prompt after that stitches views, so per-request cost stays O(1) in
// prefix length. Parameter-supplied slots still require per-prompt
// filtering, so exclusion happens as view splits over each block.
//
// Module pins release when this serve returns, not at result close: the
// result's views point into pool payloads (kept alive by the views
// themselves), never into module buffers.
func (c *Cache) serveShared(ctx context.Context, prompt *pml.Prompt, opts ServeOpts, reg *blockRegistry) (*ServeResult, error) {
	c.mu.Lock()
	plan, err := c.planServeLocked(prompt, opts, reg.has)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Resolve pending disk-tier parts before assembly (the registry needs
	// materialized states); this may append to plan.pinned, so the defer
	// must re-read the slice rather than capture it now.
	if err := c.resolveDiskParts(plan, prompt.SchemaName); err != nil {
		c.unpinModules(plan.pinned)
		return nil, err
	}
	defer func() { c.unpinModules(plan.pinned) }()

	newToks, newPos, err := c.gatherNewTokens(plan.layout, prompt, plan.bindings, plan.included)
	if err != nil {
		return nil, err
	}
	// Module mining sees batch traffic too: the mined part flows through
	// the registry like any module (keyed "schema/~mined/N"), so sibling
	// prompts hitting the same prefix share one block copy.
	fullToks, fullPos := newToks, newPos
	var class, minedName string
	if c.miner != nil || c.draft != nil {
		class = servingClass(prompt.SchemaName, plan)
	}
	if c.miner != nil {
		var n int
		minedName, n = c.spliceMined(plan, prompt.SchemaName, class, newToks, newPos)
		newToks, newPos = newToks[n:], newPos[n:]
	}

	seq := c.m.NewSeq(plan.tailCap)
	for _, part := range plan.parts {
		ids, err := reg.acquire(part)
		if err != nil {
			return nil, err
		}
		if len(ids) == 0 {
			continue
		}
		payloads, err := reg.pool.Payloads(ids)
		if err != nil {
			return nil, err
		}
		excl := plan.excluded
		if part.noExclude {
			excl = nil
		}
		for _, pay := range payloads {
			addViews(seq, pay, excl)
		}
	}
	res, err := c.finishServe(ctx, plan, seq, newToks, newPos)
	if err != nil {
		return nil, err
	}
	if minedName != "" {
		res.Modules = append(res.Modules[:len(res.Modules):len(res.Modules)], minedName)
	}
	if c.miner != nil {
		// Observe before the deferred unpin: a promotion copies rows out
		// of the still-stable views.
		c.observeServe(prompt.SchemaName, class, fullToks, fullPos, seq)
	}
	res.class = class
	return res, nil
}

// GenerateBatch continues every result greedily, returning the generated
// token ids per prompt. Decoding stays sequential: GenerateOpts carries
// one Sampler instance, and samplers may hold mutable state (RNGs,
// repetition windows) that concurrent decodes would corrupt.
func (c *Cache) GenerateBatch(ctx context.Context, results []*ServeResult, opts model.GenerateOpts) ([][]int, error) {
	out := make([][]int, len(results))
	for i, res := range results {
		gen, err := c.Generate(ctx, res, opts)
		if err != nil {
			return nil, fmt.Errorf("core: batch generate[%d]: %w", i, err)
		}
		out[i] = gen
	}
	return out, nil
}
