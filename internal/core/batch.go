package core

import (
	"context"
	"fmt"

	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/pml"
)

// BatchStats reports the memory effect of serving a batch with shared
// prompt modules (§3.4: "Prompt Cache can reduce the memory footprint ...
// when combined with methods like paged attention, allowing for a larger
// working batch size").
type BatchStats struct {
	Prompts int
	// LogicalBytes is what the batch's module states would occupy if
	// every prompt duplicated them; PhysicalBytes is the actual shared
	// footprint (each distinct module stored once).
	LogicalBytes, PhysicalBytes int64
	// SharedModules counts module references served from an earlier
	// prompt's blocks.
	SharedModules int
}

// Savings returns 1 - physical/logical (0 when nothing shared).
func (b BatchStats) Savings() float64 {
	if b.LogicalBytes == 0 {
		return 0
	}
	return 1 - float64(b.PhysicalBytes)/float64(b.LogicalBytes)
}

// ServeBatch serves a batch of prompts derived from registered schemas,
// sharing each distinct module's attention states across the batch
// through a reference-counted paged pool instead of duplicating them per
// prompt. Results are positionally parallel to prompts.
func (c *Cache) ServeBatch(ctx context.Context, prompts []string, opts ServeOpts) ([]*ServeResult, BatchStats, error) {
	if len(prompts) == 0 {
		return nil, BatchStats{}, fmt.Errorf("%w: empty batch", ErrBadPrompt)
	}
	pool := kvcache.NewPagedPool(16, int64(c.m.Cfg.KVDim())*int64(c.m.Cfg.NLayers)*2*4)
	blocks := map[string][]kvcache.BlockID{} // "schema/module" -> stored blocks

	var stats BatchStats
	stats.Prompts = len(prompts)
	results := make([]*ServeResult, len(prompts))
	for i, src := range prompts {
		prompt, err := pml.ParsePrompt(src)
		if err != nil {
			return nil, stats, fmt.Errorf("batch[%d]: %w: %v", i, ErrBadPrompt, err)
		}
		res, err := c.serveShared(ctx, prompt, opts, pool, blocks, &stats)
		if err != nil {
			return nil, stats, fmt.Errorf("batch[%d]: %w", i, err)
		}
		results[i] = res
	}
	stats.PhysicalBytes = pool.PhysicalBytes()
	stats.LogicalBytes = pool.LogicalBytes()
	return results, stats, nil
}

// serveShared is Serve with module states materialized through the shared
// paged pool. Parameter-supplied slots still require per-prompt
// filtering, so sharing happens at block granularity and exclusion during
// gather.
func (c *Cache) serveShared(ctx context.Context, prompt *pml.Prompt, opts ServeOpts, pool *kvcache.PagedPool, blocks map[string][]kvcache.BlockID, stats *BatchStats) (*ServeResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.schemas[prompt.SchemaName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSchema, prompt.SchemaName)
	}
	bindings, err := c.resolveImports(e, prompt)
	if err != nil {
		return nil, err
	}
	included := c.includedModules(e, bindings)
	seenUnion := map[int]string{}
	for _, name := range included {
		ml := e.layout.Modules[name]
		if ml.UnionID >= 0 {
			if prev, clash := seenUnion[ml.UnionID]; clash {
				return nil, fmt.Errorf("%w: modules %q and %q are exclusive union members", ErrBadPrompt, prev, name)
			}
			seenUnion[ml.UnionID] = name
		}
	}
	excluded := map[int]bool{}
	for _, b := range bindings {
		ml := e.layout.Modules[b.name]
		for pname := range b.args {
			for _, p := range ml.ParamSegment(pname).Pos {
				excluded[p] = true
			}
		}
	}

	res := &ServeResult{Modules: included}
	kv := c.m.NewCache(e.layout.TotalLen + 64)
	for _, name := range included {
		key := prompt.SchemaName + "/" + name
		ids, have := blocks[key]
		if have {
			if err := pool.Retain(ids); err != nil {
				return nil, err
			}
			stats.SharedModules++
		} else {
			em, err := c.getModuleLocked(prompt.SchemaName, e, name)
			if err != nil {
				return nil, err
			}
			st := em.States()
			if st.Len() == 0 {
				blocks[key] = nil
				continue
			}
			ids = pool.Store(st)
			blocks[key] = ids
		}
		if len(ids) == 0 {
			continue
		}
		part, err := pool.Gather(ids)
		if err != nil {
			return nil, err
		}
		appendFiltered(kv, part, excluded)
	}
	res.CachedTokens = kv.Len()
	c.stats.TokensReused += kv.Len()

	newToks, newPos, err := c.gatherNewTokens(e, prompt, bindings, included)
	if err != nil {
		return nil, err
	}
	res.NewTokens = len(newToks)
	if len(newToks) == 0 {
		return nil, fmt.Errorf("%w: prompt adds no new tokens; add instruction text or parameter arguments", ErrBadPrompt)
	}
	logits, err := c.m.PrefillCtx(ctx, newToks, newPos, kv)
	if err != nil {
		return nil, err
	}
	res.KV = kv
	res.Logits = logits
	return res, nil
}

// GenerateBatch continues every result greedily, returning the generated
// token ids per prompt.
func (c *Cache) GenerateBatch(ctx context.Context, results []*ServeResult, opts model.GenerateOpts) ([][]int, error) {
	out := make([][]int, len(results))
	for i, res := range results {
		gen, err := c.Generate(ctx, res, opts)
		if err != nil {
			return nil, fmt.Errorf("core: batch generate[%d]: %w", i, err)
		}
		out[i] = gen
	}
	return out, nil
}
