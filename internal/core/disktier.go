package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/faultinject"
	"repro/internal/kvcache"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/pml"
	"repro/internal/quant"
)

// The disk tier is the durable third level of the storage hierarchy
// (device HBM → host DRAM → disk): encoded prompt modules that would
// otherwise be dropped on eviction spill to content-addressed files,
// quantized per the tier's codec, and read back on the next serve instead
// of re-encoding. SaveAll/OpenDir extend the same blob store into a full
// warm-restart snapshot: every registered schema's layout and module
// states persist across process restarts, so a restarted server answers
// its first cached request without paying the §3.3 encoding cost again.

// Codec selects the disk tier's storage precision; it is an alias of the
// quant codec so promptcache can re-export it without leaking internals.
type Codec = quant.Codec

// Re-exported codec points: fp32 passthrough for bit-paranoid
// deployments, int8/int4 for the §6 compression trade-off.
const (
	CodecFP32 = quant.CodecFP32
	CodecInt8 = quant.CodecInt8
	CodecInt4 = quant.CodecInt4
)

// ParseCodec maps a codec name ("fp32", "int8", "int4") to its Codec.
func ParseCodec(s string) (Codec, error) { return quant.ParseCodec(s) }

// diskEntry locates one module's durable blob.
type diskEntry struct {
	hash   string // content address (sha256 of the encoded payload)
	codec  Codec
	bytes  int64 // encoded blob size
	tokens int   // cached tokens in the blob, for cheap validation
}

// diskTier is the spill store: a blob directory plus the key→blob index.
// The index and pool are guarded by Cache.mu; blob files are immutable
// once written (temp+rename), so reads need no lock.
type diskTier struct {
	dir   string
	codec Codec
	// pool tracks blob occupancy, giving the disk tier the same
	// accounting surface (Used/Peak) as the device and host tiers.
	pool  *memory.Pool
	index map[string]diskEntry
	// keepBlobs suppresses blob-file deletion while an OpenDir restore
	// is cleaning up after a failure: the files are the persisted
	// snapshot, and a cache that failed to adopt them must not destroy
	// them. Guarded by Cache.mu.
	keepBlobs bool
	// inject, when non-nil, is consulted before every blob read and
	// write (WithFaultInjection); nil costs one pointer check.
	inject *faultinject.Injector
}

// Fault-injection point names the disk tier plants on its blob IO.
const (
	// FaultPointDiskRead fires before each blob read: an ErrCorrupt
	// injection classifies as blob corruption (delete + re-encode), any
	// other error as transient IO (kept for retry), and a delay-only
	// rule models slow disk.
	FaultPointDiskRead = "disktier.read"
	// FaultPointDiskWrite fires before each blob write: an injected
	// error (ErrNoSpace for ENOSPC) fails the spill, which eviction
	// degrades to a plain drop.
	FaultPointDiskWrite = "disktier.write"
)

func newDiskTier(dir string, codec Codec) *diskTier {
	return &diskTier{
		dir:   dir,
		codec: codec,
		pool:  memory.NewPool(memory.Device{Name: "disk", Kind: memory.Disk}),
		index: make(map[string]diskEntry),
	}
}

func (d *diskTier) blobPath(hash string) string {
	return filepath.Join(d.dir, "blobs", hash+".pckv")
}

// writeBlob encodes kv under codec and stores it content-addressed,
// returning the entry. Writing is idempotent: an existing blob with the
// same hash is reused, so re-spilling unchanged states costs a hash, not
// a write. Requires no lock (pure file IO on immutable content).
func (d *diskTier) writeBlob(kv *kvcache.Cache, codec Codec) (diskEntry, error) {
	if err := d.inject.Fire(FaultPointDiskWrite); err != nil {
		return diskEntry{}, err
	}
	var buf bytes.Buffer
	if _, err := quant.EncodeKV(&buf, kv, codec); err != nil {
		return diskEntry{}, fmt.Errorf("core: encoding spill: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	entry := diskEntry{
		hash:   hex.EncodeToString(sum[:]),
		codec:  codec,
		bytes:  int64(buf.Len()),
		tokens: kv.Len(),
	}
	path := d.blobPath(entry.hash)
	if _, err := os.Stat(path); err == nil {
		return entry, nil // identical content already durable
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return diskEntry{}, err
	}
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return diskEntry{}, err
	}
	return entry, nil
}

// readBlob reads and decodes an entry's blob. Requires no lock. Decode
// failures (the file exists but its content is bad) wrap errCorruptBlob;
// open errors pass through as plain IO errors.
func (d *diskTier) readBlob(entry diskEntry) (*kvcache.Cache, error) {
	if err := d.inject.Fire(FaultPointDiskRead); err != nil {
		if errors.Is(err, faultinject.ErrCorrupt) {
			// Injected corruption classifies exactly like a real decode
			// failure: invalidate the blob, never retry it.
			return nil, fmt.Errorf("%v: %w", err, errCorruptBlob)
		}
		return nil, err // transient: the durable file may be fine
	}
	f, err := os.Open(d.blobPath(entry.hash))
	if err != nil {
		if os.IsNotExist(err) {
			// The blob is gone, not momentarily unreachable: nothing to
			// retry, so classify with the corruption class and let the
			// entry be invalidated (a later eviction re-spills fresh).
			return nil, fmt.Errorf("%v: %w", err, errCorruptBlob)
		}
		return nil, err
	}
	defer f.Close()
	kv, _, err := quant.DecodeKV(f)
	if err != nil {
		return nil, fmt.Errorf("%v: %w", err, errCorruptBlob)
	}
	return kv, nil
}

// diskReadAttempts bounds readBlobRetry: one read plus up to two
// retries covers the transient-blip shape (EIO, a flaky mount) without
// stalling a serve behind a persistently broken disk.
const diskReadAttempts = 3

// readBlobRetry is readBlob with bounded retries on transient errors:
// exponential backoff (1ms, 2ms, ...) with uniform jitter between
// attempts, never retrying proven corruption (the blob is bad, not
// busy). It returns the retry count so the caller can account recovered
// blips (Stats.DiskRetries). Off-lock only — it sleeps.
func (d *diskTier) readBlobRetry(entry diskEntry) (kv *kvcache.Cache, retries int, err error) {
	backoff := time.Millisecond
	for attempt := 0; attempt < diskReadAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff + time.Duration(rand.Int64N(int64(backoff))))
			backoff *= 2
			retries++
		}
		kv, err = d.readBlob(entry)
		if err == nil || errors.Is(err, errCorruptBlob) {
			return kv, retries, err
		}
	}
	return nil, retries, err
}

// spillLocked writes a module's states to the disk tier under key. When
// the key already has a blob (an earlier spill, or an OpenDir restore) it
// is reused: module states are immutable for the life of a registration,
// so the existing blob is still the states' durable form.
func (c *Cache) spillLocked(key string, em *EncodedModule) error {
	if _, ok := c.disk.index[key]; ok {
		return nil
	}
	codec := c.disk.codec
	if em.Mined != nil {
		// Mined modules are bit-exact by contract (splice vs cold serve
		// must produce identical logits); never quantize their spills.
		codec = CodecFP32
	}
	//pclint:ignore lockscope spill happens inside eviction, which must be atomic with residency bookkeeping; blobs are small and eviction rare
	entry, err := c.disk.writeBlob(em.States(), codec)
	if err != nil {
		return err
	}
	if err := c.disk.pool.Alloc(key, entry.bytes); err != nil {
		c.stats.TierAccountErrors++
	}
	c.disk.index[key] = entry
	return nil
}

// removeDiskLocked forgets a key's disk entry, deleting the blob when no
// other key shares its content.
func (c *Cache) removeDiskLocked(key string) {
	entry, ok := c.disk.index[key]
	if !ok {
		return
	}
	delete(c.disk.index, key)
	c.freeTracked(c.disk.pool, key)
	if c.disk.keepBlobs {
		return
	}
	//pclint:ignore maporder existence scan: returning on any match is the same decision in every iteration order
	for _, e := range c.disk.index {
		if e.hash == entry.hash {
			return
		}
	}
	_ = os.Remove(c.disk.blobPath(entry.hash))
}

// errCorruptBlob marks a blob whose *content* is proven bad — a failed
// decode or a validation mismatch — as opposed to a transient IO error
// (open failure, EIO) where the durable file may be perfectly fine.
// Only proven corruption justifies deleting durable data.
var errCorruptBlob = errors.New("corrupt blob")

// diskLoadLocked reads a disk-resident module's states back and validates
// them against the layout and model shape. Content errors wrap
// errCorruptBlob; plain IO errors do not.
func (c *Cache) diskLoadLocked(key string, em *EncodedModule) (*kvcache.Cache, error) {
	entry, ok := c.disk.index[key]
	if !ok {
		return nil, fmt.Errorf("core: module %s is on disk but has no blob entry: %w", key, errCorruptBlob)
	}
	//pclint:ignore lockscope warming path (Prefetch, snapshot restore): blob reads under the lock are the documented one-time cost; serves use the off-lock resolveDiskParts
	kv, err := c.disk.readBlob(entry)
	if err != nil {
		return nil, fmt.Errorf("core: disk tier %s: %w", key, err)
	}
	if kv.NLayers != c.m.Cfg.NLayers || kv.KVDim != c.m.Cfg.KVDim() {
		return nil, fmt.Errorf("core: disk blob %s shaped (%d,%d), model needs (%d,%d): %w",
			key, kv.NLayers, kv.KVDim, c.m.Cfg.NLayers, c.m.Cfg.KVDim(), errCorruptBlob)
	}
	if em.Layout != nil {
		toks, _ := moduleTokens(em.Layout)
		if kv.Len() != len(toks) {
			return nil, fmt.Errorf("core: disk blob %s has %d tokens, layout expects %d: %w",
				key, kv.Len(), len(toks), errCorruptBlob)
		}
	} else if em.Mined != nil && kv.Len() != len(em.Mined.Toks) {
		return nil, fmt.Errorf("core: disk blob %s has %d tokens, mined prefix expects %d: %w",
			key, kv.Len(), len(em.Mined.Toks), errCorruptBlob)
	}
	return kv, nil
}

// diskLoadFailedLocked records a blob read-back failure. Proven
// corruption deletes the blob and drops the module so nothing retries a
// bad file forever; a transient IO error keeps both — the durable copy
// may be intact and the next access retries it. Either way the caller
// re-encodes to satisfy the current request.
func (c *Cache) diskLoadFailedLocked(key string, em *EncodedModule, err error) {
	c.stats.DiskLoadErrors++
	if errors.Is(err, errCorruptBlob) {
		c.removeDiskLocked(key)
		em.state = stateDropped
	}
}

// installDiskStatesLocked stores loaded disk states as the module's
// resident form (compressing when the cache runs int8 storage), claiming
// primary-pool residency. The disk blob stays: it remains the states'
// durable form, so a later eviction re-spills for free.
func (c *Cache) installDiskStatesLocked(key string, em *EncodedModule, kv *kvcache.Cache) error {
	var q *quant.Compressed
	size := kv.Bytes(4)
	if c.compress && kv.Len() > 0 {
		q = quant.Compress(kv)
		size = q.Bytes()
	}
	if err := c.reserveLocked(key, size); err != nil {
		return err
	}
	if q != nil {
		em.Quant = q
		em.KV = nil
	} else {
		em.KV = kv
	}
	em.state = stateResident
	c.stats.DiskHits++
	return nil
}

// readThroughKV shapes loaded disk states for serving without residency:
// under int8 storage the states take the same compress/decompress round
// trip a resident module's would, so read-through serves stay
// bit-identical to promoted ones.
func (c *Cache) readThroughKV(kv *kvcache.Cache) *kvcache.Cache {
	if c.compress && kv.Len() > 0 {
		return quant.Compress(kv).Decompress()
	}
	return kv
}

// --- Warm-restart persistence (SaveAll / OpenDir) ---

const manifestVersion = 1

// diskManifest is the restart snapshot's root document: enough to
// re-register every schema (PML source) and locate every module's and
// scaffold's states in the blob store without re-encoding anything.
type diskManifest struct {
	Version int              `json:"version"`
	Codec   string           `json:"codec"`
	NLayers int              `json:"n_layers"`
	KVDim   int              `json:"kv_dim"`
	Schemas []manifestSchema `json:"schemas"`
}

type manifestSchema struct {
	Name      string           `json:"name"`
	PML       string           `json:"pml"`
	Modules   []manifestModule `json:"modules"` // in layout order
	Scaffolds []manifestModule `json:"scaffolds,omitempty"`
	// Mined persists anonymous modules promoted by the traffic observer.
	// They have no PML source, so the manifest carries the prefix itself;
	// restoring without mining enabled skips them (counted).
	Mined []manifestMined `json:"mined,omitempty"`
}

type manifestModule struct {
	Name   string `json:"name"`
	Hash   string `json:"hash"`
	Codec  string `json:"codec"`
	Bytes  int64  `json:"bytes"`
	Tokens int    `json:"tokens"`
}

// manifestMined is a mined module's manifest entry: the blob reference
// plus the class and (token, position) prefix the states reproduce.
type manifestMined struct {
	manifestModule
	Class string `json:"class"`
	Toks  []int  `json:"toks"`
	Pos   []int  `json:"pos"`
}

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }
func vocabPath(dir string) string    { return filepath.Join(dir, "vocab.json") }

// HasSnapshot reports whether dir holds a SaveAll snapshot that OpenDir
// could restore.
func HasSnapshot(dir string) bool {
	_, err := os.Stat(manifestPath(dir))
	return err == nil
}

// SaveAll persists every registered schema — layout source plus all
// module and scaffold states — into dir as a warm-restart snapshot.
// Module blobs are written with the disk tier's codec when one is
// configured (CodecFP32 otherwise); scaffold states are always fp32, as
// in memory (they exist for exactness). Modules already spilled into the
// same dir reuse their blobs. The tokenizer's learned vocabulary is saved
// alongside, so prompts tokenize identically after OpenDir.
func (c *Cache) SaveAll(dir string) error {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return err
	}
	codec := CodecFP32
	if c.disk != nil {
		codec = c.disk.codec
	}
	tier := c.disk
	if tier == nil || tier.dir != dir {
		tier = newDiskTier(dir, codec) // blob writer only; index unused
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	man := diskManifest{
		Version: manifestVersion,
		Codec:   codec.String(),
		NLayers: c.m.Cfg.NLayers,
		KVDim:   c.m.Cfg.KVDim(),
	}
	names := make([]string, 0, len(c.schemas))
	for name := range c.schemas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := c.schemas[name]
		ms := manifestSchema{Name: name, PML: e.src}
		for _, mod := range e.layout.Order {
			em := e.modules[mod]
			if em == nil {
				return fmt.Errorf("%w: schema %q missing module %q", ErrBadSnapshot, name, mod)
			}
			key := name + "/" + mod
			if em.state == stateDisk && c.disk != nil && c.disk.dir == dir {
				if entry, ok := c.disk.index[key]; ok {
					ms.Modules = append(ms.Modules, manifestEntry(mod, entry))
					continue
				}
			}
			kv, err := c.snapshotStatesLocked(name, e, mod, em, key)
			if err != nil {
				return err
			}
			//pclint:ignore lockscope SaveAll is a stop-the-world snapshot by design: the lock guarantees a consistent manifest while blobs stream out
			entry, err := tier.writeBlob(kv, codec)
			if err != nil {
				return fmt.Errorf("core: snapshot %s: %w", key, err)
			}
			ms.Modules = append(ms.Modules, manifestEntry(mod, entry))
		}
		for _, sc := range e.schema.Scaffolds {
			es := e.scaffolds[sc.Name]
			if es == nil {
				return fmt.Errorf("%w: schema %q missing scaffold %q", ErrBadSnapshot, name, sc.Name)
			}
			//pclint:ignore lockscope SaveAll is a stop-the-world snapshot by design: the lock guarantees a consistent manifest while blobs stream out
			entry, err := tier.writeBlob(es.KV, CodecFP32)
			if err != nil {
				return fmt.Errorf("core: snapshot %s/scaffold/%s: %w", name, sc.Name, err)
			}
			ms.Scaffolds = append(ms.Scaffolds, manifestEntry(sc.Name, entry))
		}
		// Mined modules persist with their prefix (always fp32); one that
		// cannot be snapshotted is skipped with a counted stat rather
		// than failing the snapshot — it will simply re-mine after the
		// restart.
		var minedNames []string
		for mod, em := range e.modules {
			if em.Mined != nil {
				minedNames = append(minedNames, mod)
			}
		}
		sort.Strings(minedNames)
		for _, mod := range minedNames {
			em := e.modules[mod]
			key := name + "/" + mod
			if em.state == stateDisk && c.disk != nil && c.disk.dir == dir {
				if entry, ok := c.disk.index[key]; ok {
					ms.Mined = append(ms.Mined, manifestMinedEntry(mod, entry, em.Mined))
					continue
				}
			}
			kv, err := c.snapshotMinedStatesLocked(key, em)
			if err != nil {
				c.stats.MinedSnapshotSkipped++
				continue
			}
			//pclint:ignore lockscope SaveAll is a stop-the-world snapshot by design: the lock guarantees a consistent manifest while blobs stream out
			entry, err := tier.writeBlob(kv, CodecFP32)
			if err != nil {
				c.stats.MinedSnapshotSkipped++
				continue
			}
			ms.Mined = append(ms.Mined, manifestMinedEntry(mod, entry, em.Mined))
		}
		man.Schemas = append(man.Schemas, ms)
	}

	var vocab bytes.Buffer
	if err := c.tok.SaveVocab(&vocab); err != nil {
		return err
	}
	if err := writeFileAtomic(vocabPath(dir), vocab.Bytes()); err != nil {
		return err
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(manifestPath(dir), data)
}

func manifestEntry(name string, entry diskEntry) manifestModule {
	return manifestModule{
		Name:   name,
		Hash:   entry.hash,
		Codec:  entry.codec.String(),
		Bytes:  entry.bytes,
		Tokens: entry.tokens,
	}
}

func manifestMinedEntry(name string, entry diskEntry, mp *MinedPrefix) manifestMined {
	return manifestMined{
		manifestModule: manifestEntry(name, entry),
		Class:          mp.Class,
		Toks:           mp.Toks,
		Pos:            mp.Pos,
	}
}

// snapshotMinedStatesLocked materializes a mined module's states for
// persistence without changing its residency. Unlike declared modules,
// a mined module cannot re-encode, so a dropped one is unsnapshotable.
func (c *Cache) snapshotMinedStatesLocked(key string, em *EncodedModule) (*kvcache.Cache, error) {
	switch em.state {
	case stateResident, stateDemoted:
		return em.States(), nil
	case stateDisk:
		return c.diskLoadLocked(key, em)
	default:
		return nil, fmt.Errorf("%w: mined module %s has no states to snapshot", ErrBadSnapshot, key)
	}
}

// snapshotStatesLocked materializes a module's states for persistence
// without changing its residency: resident and demoted modules snapshot
// in place, disk modules read their blob back, dropped modules re-encode
// transiently.
func (c *Cache) snapshotStatesLocked(schema string, e *schemaEntry, name string, em *EncodedModule, key string) (*kvcache.Cache, error) {
	switch em.state {
	case stateResident, stateDemoted:
		return em.States(), nil
	case stateDisk:
		return c.diskLoadLocked(key, em)
	default: // stateDropped
		kv, nToks, err := c.encodeStatesLocked(schema, e, name)
		if err != nil {
			return nil, err
		}
		c.stats.ModulesEncoded++
		c.stats.TokensEncoded += nToks
		return c.readThroughKV(kv), nil
	}
}

func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// OpenDir constructs a Cache from a SaveAll snapshot: every schema in the
// manifest is re-registered from its persisted source with all module
// states left on disk (stateDisk) — nothing is prefilled, so opening is
// cheap, and the first serve of each module reads its blob back and
// promotes it, a cache hit rather than a re-encode. Scaffold states are
// restored eagerly into the pool (scaffolds are never evicted). The
// returned cache keeps dir as its disk tier so later evictions spill
// into the same store: a WithDiskTier option naming the same dir keeps
// its codec (an explicit flag beats the snapshot's recorded one — each
// blob carries its own codec, so reading is unaffected); otherwise the
// tier adopts the manifest's codec.
func OpenDir(m *model.Model, dir string, opts ...Option) (*Cache, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return nil, fmt.Errorf("core: opening snapshot: %w", err)
	}
	var man diskManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("core: snapshot manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrBadSnapshot, man.Version)
	}
	codec, err := ParseCodec(man.Codec)
	if err != nil {
		return nil, err
	}
	c := NewCache(m, opts...)
	if c.disk == nil || c.disk.dir != dir {
		c.disk = newDiskTier(dir, codec)
		c.disk.inject = c.inject
	}
	if man.NLayers != m.Cfg.NLayers || man.KVDim != m.Cfg.KVDim() {
		return nil, fmt.Errorf("%w: snapshot shaped (%d,%d), model needs (%d,%d)",
			ErrBadSnapshot, man.NLayers, man.KVDim, m.Cfg.NLayers, m.Cfg.KVDim())
	}
	if f, err := os.Open(vocabPath(dir)); err == nil {
		lerr := c.tok.LoadVocab(f)
		f.Close()
		if lerr != nil {
			return nil, lerr
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// A failed restore must clean up its index without deleting blob
	// files: they are the snapshot, not this cache's property yet.
	c.disk.keepBlobs = true
	for _, ms := range man.Schemas {
		if err := c.restoreSchemaLocked(ms); err != nil {
			return nil, fmt.Errorf("core: restoring schema %q: %w", ms.Name, err)
		}
	}
	c.disk.keepBlobs = false
	return c, nil
}

// restoreSchemaLocked registers one manifest schema with all modules
// disk-resident.
func (c *Cache) restoreSchemaLocked(ms manifestSchema) error {
	schema, err := pml.ParseSchema(ms.PML)
	if err != nil {
		return err
	}
	layout, err := pml.Compile(schema, c.tok, c.tmpl)
	if err != nil {
		return err
	}
	if len(ms.Modules) != len(layout.Order) {
		return fmt.Errorf("%w: snapshot has %d modules, schema has %d", ErrBadSnapshot, len(ms.Modules), len(layout.Order))
	}
	entry := &schemaEntry{
		schema:    schema,
		layout:    layout,
		modules:   make(map[string]*EncodedModule),
		scaffolds: make(map[string]*EncodedScaffold),
		src:       ms.PML,
	}
	fail := func(err error) error {
		c.dropSchemaLocked(schema.Name, entry)
		return err
	}
	if old, ok := c.schemas[schema.Name]; ok {
		c.dropSchemaLocked(schema.Name, old)
	}
	c.schemas[schema.Name] = entry
	for i, mm := range ms.Modules {
		name := layout.Order[i]
		if mm.Name != name {
			return fail(fmt.Errorf("%w: snapshot module %q, layout expects %q", ErrBadSnapshot, mm.Name, name))
		}
		ml := layout.Modules[name]
		toks, _ := moduleTokens(ml)
		if mm.Tokens != len(toks) {
			return fail(fmt.Errorf("%w: snapshot %q has %d tokens, layout expects %d (schema text or tokenizer changed)",
				ErrBadSnapshot, name, mm.Tokens, len(toks)))
		}
		mcodec, err := ParseCodec(mm.Codec)
		if err != nil {
			return fail(err)
		}
		key := schema.Name + "/" + name
		c.disk.index[key] = diskEntry{hash: mm.Hash, codec: mcodec, bytes: mm.Bytes, tokens: mm.Tokens}
		if err := c.disk.pool.Alloc(key, mm.Bytes); err != nil {
			c.stats.TierAccountErrors++
		}
		entry.modules[name] = &EncodedModule{Name: name, Schema: schema.Name, Layout: ml, state: stateDisk}
		c.stats.ModulesRestored++
	}
	// Scaffolds restore eagerly: they are pool-pinned for exactness and
	// never evicted, so lazy disk residency has nothing to offer them.
	byName := map[string]pml.Scaffold{}
	for _, sc := range schema.Scaffolds {
		byName[sc.Name] = sc
	}
	if len(ms.Scaffolds) != len(schema.Scaffolds) {
		return fail(fmt.Errorf("%w: snapshot has %d scaffolds, schema has %d", ErrBadSnapshot, len(ms.Scaffolds), len(schema.Scaffolds)))
	}
	for _, mm := range ms.Scaffolds {
		sc, ok := byName[mm.Name]
		if !ok {
			return fail(fmt.Errorf("%w: snapshot scaffold %q not in schema", ErrBadSnapshot, mm.Name))
		}
		//pclint:ignore lockscope warm restart loads scaffolds eagerly before serving starts; nothing contends for the lock yet
		kv, err := c.disk.readBlob(diskEntry{hash: mm.Hash, codec: CodecFP32, bytes: mm.Bytes, tokens: mm.Tokens})
		if err != nil {
			return fail(fmt.Errorf("snapshot scaffold %q: %w", mm.Name, err))
		}
		if kv.NLayers != c.m.Cfg.NLayers || kv.KVDim != c.m.Cfg.KVDim() || kv.Len() != mm.Tokens {
			return fail(fmt.Errorf("%w: snapshot scaffold %q has unexpected shape", ErrBadSnapshot, mm.Name))
		}
		key := schema.Name + "/scaffold/" + sc.Name
		if err := c.reserveLocked(key, kv.Bytes(4)); err != nil {
			return fail(err)
		}
		entry.scaffolds[sc.Name] = &EncodedScaffold{Name: sc.Name, Members: sc.Modules, KV: kv}
		c.stats.ModulesRestored++
	}
	// Mined modules restore lazily like declared ones (stateDisk), and
	// the observer adopts their prefixes so lookups match immediately.
	// A cache opened without mining skips them with a counted stat —
	// the blobs stay on disk for a later mining-enabled open.
	for _, mm := range ms.Mined {
		c.adoptMinedLocked(entry, schema.Name, mm)
	}
	return nil
}

// resolveDiskParts completes a serve plan whose parts include disk-tier
// modules: each blob is read and decoded outside the cache lock (disk IO
// must never serialize serving), then a brief re-lock installs the states
// — promoting the module into the primary pool and pinning it like any
// host-tier hit, or degrading to a read-through snapshot when the pool
// cannot hold the working set. Freshly pinned modules are appended to
// plan.pinned, so they release with the serve's other pins. An unreadable
// blob degrades to a re-encode rather than failing the serve.
func (c *Cache) resolveDiskParts(plan *servePlan, schemaName string) error {
	for i := range plan.parts {
		if plan.parts[i].disk == nil {
			continue
		}
		em := plan.parts[i].disk
		key := plan.parts[i].key
		c.mu.Lock()
		entry, ok := c.disk.index[key]
		c.mu.Unlock()
		var kv *kvcache.Cache
		var loadErr error
		var retries int
		if !ok {
			loadErr = fmt.Errorf("no blob entry: %w", errCorruptBlob)
		} else {
			// Off-lock read (with transient-error retry + backoff — this
			// is the only blob path that may sleep): the entry and blob
			// file are immutable; a concurrent removal (schema drop)
			// surfaces as a read error and degrades to re-encode below.
			// Model shape is immutable too, so validation needs no lock
			// either.
			kv, retries, loadErr = c.disk.readBlobRetry(entry)
			if loadErr == nil && (kv.NLayers != c.m.Cfg.NLayers || kv.KVDim != c.m.Cfg.KVDim()) {
				loadErr = fmt.Errorf("core: disk blob %s shaped (%d,%d), model needs (%d,%d): %w",
					key, kv.NLayers, kv.KVDim, c.m.Cfg.NLayers, c.m.Cfg.KVDim(), errCorruptBlob)
			}
			if loadErr == nil && em.Layout != nil {
				if toks, _ := moduleTokens(em.Layout); kv.Len() != len(toks) {
					loadErr = fmt.Errorf("core: disk blob %s has %d tokens, layout expects %d: %w",
						key, kv.Len(), len(toks), errCorruptBlob)
				}
			}
		}
		c.mu.Lock()
		c.stats.DiskRetries += retries
		part, err := c.installDiskPartLocked(schemaName, key, em, kv, loadErr)
		if err == nil && part.em != nil {
			plan.pinned = append(plan.pinned, part.em)
		}
		c.mu.Unlock()
		if err != nil {
			return err
		}
		plan.parts[i] = part
	}
	return nil
}

// installDiskPartLocked turns an off-lock blob load into a serve part,
// handling the races an unlocked read window allows: another serve may
// have promoted the module first, or eviction may have cycled it. When
// the load failed, the module degrades to dropped and re-encodes.
func (c *Cache) installDiskPartLocked(schemaName, key string, em *EncodedModule, kv *kvcache.Cache, loadErr error) (servePart, error) {
	if loadErr != nil {
		switch em.state {
		case stateDisk, stateDropped:
			if em.state == stateDisk {
				c.diskLoadFailedLocked(key, em, loadErr)
			}
			// No usable copy anywhere: re-encode for this serve. A
			// transiently unreadable blob survives for the next access;
			// a corrupt one was just deleted.
			e, ok := c.schemas[schemaName]
			if !ok {
				return servePart{}, fmt.Errorf("%w: %q", ErrUnknownSchema, schemaName)
			}
			return c.reencodeForServeLocked(schemaName, e, em.Name, key)
		}
		// Resident or demoted: another serve rescued the states while we
		// failed to read; the branches below never touch kv.
	}
	switch em.state {
	case stateResident:
		// Another serve promoted it while we read; share its states.
		c.policy.Touch(key, em.Bytes())
		c.stats.ModulesReused++
		em.pins++
		return servePart{key: key, em: em}, nil
	case stateDemoted:
		if err := c.promoteLocked(key, em); err != nil {
			if !errors.Is(err, ErrCapacity) {
				return servePart{}, err
			}
			c.stats.ModulesReused++
			return servePart{key: key, kv: em.States()}, nil
		}
		c.policy.Touch(key, em.Bytes())
		c.stats.ModulesReused++
		em.pins++
		return servePart{key: key, em: em}, nil
	case stateDropped:
		// The blob (and states) vanished under us but our copy is good:
		// serve it transiently, like a host-tier read-through.
		c.stats.DiskHits++
		c.stats.ModulesReused++
		return servePart{key: key, kv: c.readThroughKV(kv)}, nil
	default: // stateDisk
		if err := c.installDiskStatesLocked(key, em, kv); err != nil {
			if !errors.Is(err, ErrCapacity) {
				return servePart{}, err
			}
			// Pool cannot hold the working set: serve the loaded copy
			// without residency.
			c.stats.DiskHits++
			c.stats.ModulesReused++
			return servePart{key: key, kv: c.readThroughKV(kv)}, nil
		}
		c.policy.Touch(key, em.Bytes())
		c.stats.ModulesReused++
		em.pins++
		return servePart{key: key, em: em}, nil
	}
}
