package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/rng"
)

// TestServeAccountingProperty: for randomized schemas and random valid
// import subsets, CachedTokens + NewTokens always equals the served
// cache's length, every included module's own tokens appear (minus
// supplied parameter buffers), and serving is error-free.
func TestServeAccountingProperty(t *testing.T) {
	m, err := model.New(model.LlamaStyle(coreVocab, 801))
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"harbor", "archive", "castle", "garden", "market", "railway"}
	check := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		c := NewCache(m)

		// Random schema: 2-4 modules, optional param, maybe a union.
		nMods := r.IntRange(2, 5)
		var sb strings.Builder
		fmt.Fprintf(&sb, `<schema name="p%d">`, seed)
		names := make([]string, nMods)
		hasParam := make([]bool, nMods)
		for i := 0; i < nMods; i++ {
			names[i] = fmt.Sprintf("mod%d", i)
			fmt.Fprintf(&sb, `<module name=%q>`, names[i])
			for w := 0; w < r.IntRange(3, 10); w++ {
				sb.WriteString(rng.Choice(r, words) + " ")
			}
			if r.Intn(3) == 0 {
				hasParam[i] = true
				sb.WriteString(`<param name="arg" len="3"/>`)
			}
			sb.WriteString(`</module>`)
		}
		sb.WriteString(`</schema>`)
		if _, err := c.RegisterSchema(sb.String()); err != nil {
			t.Logf("register: %v", err)
			return false
		}

		// Random import subset (at least one).
		var imports strings.Builder
		layout, _ := c.Layout(fmt.Sprintf("p%d", seed))
		expectTokens := 0
		any := false
		for i := 0; i < nMods; i++ {
			if r.Intn(2) == 0 && any {
				continue
			}
			any = true
			ml := layout.Modules[names[i]]
			own := ml.OwnTokens()
			if hasParam[i] && r.Intn(2) == 0 {
				imports.WriteString(fmt.Sprintf(`<%s arg="one two"/>`, names[i]))
				own -= 3 // full buffer excluded; arg counts as new tokens
			} else {
				fmt.Fprintf(&imports, "<%s/>", names[i])
			}
			expectTokens += own
		}
		prompt := fmt.Sprintf(`<prompt schema="p%d">%s ask a closing question</prompt>`, seed, imports.String())
		res, err := c.Serve(context.Background(), prompt, ServeOpts{})
		if err != nil {
			t.Logf("serve: %v", err)
			return false
		}
		if res.CachedTokens+res.NewTokens != res.KV.Len() {
			t.Logf("accounting: %d + %d != %d", res.CachedTokens, res.NewTokens, res.KV.Len())
			return false
		}
		if res.CachedTokens != expectTokens {
			t.Logf("cached %d != expected %d", res.CachedTokens, expectTokens)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
