// Package core implements Prompt Cache itself (§3): schema registration
// and prompt-module encoding (§3.3), storage of encoded modules in a
// simulated memory tier with LRU eviction, scaffolding, and cached
// inference (§3.4) that splices precomputed attention states into new
// prompts, computing attention only for uncached text.
package core

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/evict"
	"repro/internal/faultinject"
	"repro/internal/kvcache"
	"repro/internal/memory"
	"repro/internal/mining"
	"repro/internal/model"
	"repro/internal/pml"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

// EncodedModule is one prompt module's precomputed attention states.
type EncodedModule struct {
	Name   string
	Schema string
	// KV holds the module's own tokens' attention states (text and
	// parameter <unk> buffers; nested children are cached separately).
	// Positions are absolute per the schema layout. When the cache runs
	// with int8 storage, KV is nil and Quant holds the states.
	KV *kvcache.Cache
	// Quant is the compressed form (§6 compression direction); non-nil
	// only under WithInt8Modules.
	Quant *quant.Compressed
	// Layout is the module's compiled layout entry; nil for mined
	// (anonymous) modules, which have no PML source.
	Layout *pml.ModuleLayout
	// Mined marks an anonymous module promoted by the traffic observer
	// (WithModuleMining): it records the serving class and the
	// (token, position) stream prefix the states reproduce. Mined states
	// are always fp32 (they exist for exactness) and cannot re-encode —
	// eviction past the last tier removes the module instead.
	Mined *MinedPrefix
	state moduleState
	// pins counts open serves whose KV views read this module's states
	// outside the cache lock. Guarded by Cache.mu; evictOneLocked never
	// selects a pinned module as a victim, so the viewed buffers stay
	// intact from planning until every ServeResult holding a view is
	// closed (or materialized).
	pins int
}

// moduleState tracks where a module's states live.
type moduleState int

const (
	// stateResident: states are in the primary (GPU) pool.
	stateResident moduleState = iota
	// stateDemoted: states were evicted from the primary pool but kept
	// in the host pool (§4.1's two-tier configuration); reuse promotes
	// them back without re-encoding.
	stateDemoted
	// stateDropped: states are gone; reuse must re-encode.
	stateDropped
	// stateDisk: states were evicted to the durable disk tier (quantized
	// per the tier's codec); reuse reads them back and promotes without
	// re-encoding.
	stateDisk
)

// Bytes returns the storage footprint: compressed size under int8
// storage, fp32 otherwise.
func (m *EncodedModule) Bytes() int64 {
	if m.Quant != nil {
		return m.Quant.Bytes()
	}
	return m.KV.Bytes(4)
}

// States materializes the module's attention states (decompressing if
// stored quantized).
func (m *EncodedModule) States() *kvcache.Cache {
	if m.Quant != nil {
		return m.Quant.Decompress()
	}
	return m.KV
}

// EncodedScaffold is a set of modules co-encoded with a shared attention
// span (§3.3). When all members are imported, it overrides their
// individual states.
type EncodedScaffold struct {
	Name    string
	Members []string
	KV      *kvcache.Cache
}

// schemaEntry is one registered schema with its compiled layout and
// encoded modules.
type schemaEntry struct {
	schema    *pml.Schema
	layout    *pml.Layout
	modules   map[string]*EncodedModule
	scaffolds map[string]*EncodedScaffold
	// src is the schema's PML source, kept so SaveAll can persist a
	// restartable snapshot (OpenDir re-compiles the layout from it).
	src string
}

// Stats counts cache activity.
type Stats struct {
	ModulesEncoded  int // prompt module encodings performed (incl. re-encodes)
	ModulesReused   int // cache hits at serve time
	ModulesEvicted  int // evictions from the primary pool
	ModulesReloaded int // re-encodes forced by earlier eviction
	ModulesRestored int // modules loaded from a schema snapshot
	ModulesDemoted  int // evictions that kept states in the host pool
	ModulesPromoted int // demoted modules pulled back on reuse
	TokensEncoded   int // tokens run through prefill during encoding
	TokensReused    int // cached tokens spliced into served prompts

	ModulesSpilled    int // evictions that wrote states to the disk tier
	DiskHits          int // module states read back from the disk tier
	DiskLoadErrors    int // unreadable disk blobs (fell back to re-encode)
	DiskRetries       int // transient blob-read failures recovered by backoff retry
	TierAccountErrors int // tier bookkeeping failures; nonzero means occupancy counters drifted

	MinedPromotions      int // hot prefixes promoted to anonymous modules (WithModuleMining)
	MinedDemotions       int // mined modules garbage-collected (cold, evicted, or schema dropped)
	MinedHits            int // serves that spliced a mined module's states
	MinedHitTokens       int // prefill tokens skipped by mined splices
	MinedSnapshotSkipped int // mined modules not round-tripped through SaveAll/OpenDir
}

// Cache is the Prompt Cache: it owns a model, a tokenizer, a chat
// template, registered schemas, and the memory pool module states live in.
//
// It is safe for concurrent use, and serving is genuinely parallel: mu
// guards only metadata (schema registry, module residency, eviction
// policy, stats). A serve holds it just long enough to validate the
// prompt and pin the modules it needs, then stitches zero-copy views
// over their states and runs the prefill outside the lock; pinned
// modules are immune to eviction until the serve's result closes (views
// read module memory in place). Encoding always happens under the
// lock — it is the deliberate one-time cost (§3.3) — whether triggered
// by RegisterSchema/Prefetch or by a serve restoring a dropped module,
// so a planning phase can stall behind an in-progress encode; serves
// past planning (prefilling) never stall and never stall each other.
type Cache struct {
	m    *model.Model
	tok  *tokenizer.Tokenizer
	tmpl *pml.Template
	pool *memory.Pool
	// hostPool, when set, receives evicted module states instead of
	// dropping them (two-tier §4.1); nil disables demotion.
	hostPool *memory.Pool
	// disk, when set, is the durable third tier below the host pool:
	// modules that would otherwise drop spill to content-addressed files
	// (quantized per the tier's codec) and read back on reuse instead of
	// re-encoding. nil disables spilling.
	disk *diskTier

	compress bool

	// sched, when non-nil, fuses concurrent decode loops into shared
	// model steps (continuous batching); Generate/GenerateStream route
	// through it. It synchronizes itself and never takes mu.
	sched *Scheduler

	// miner, when non-nil, observes serve-time token streams and
	// promotes hot shared prefixes to anonymous modules
	// (WithModuleMining). It synchronizes itself and never calls back
	// into the cache, so it may be used both under and outside mu.
	miner *mining.Miner

	// draft, when non-nil, is the speculative-decoding draft source
	// (WithSpeculation): retired generations train it, decode lanes
	// propose from it. Like the miner it synchronizes itself and never
	// calls back into the cache. NewCache hands it to the scheduler;
	// without a scheduler it is inert.
	draft *mining.Draft

	// adm, when non-nil, bounds concurrent serving (WithAdmission):
	// requests acquire a slot before any engine work and excess load is
	// shed with ErrOverloaded. It synchronizes itself and never takes mu.
	adm *admission

	// inject, when non-nil, is the fault-injection hook layer
	// (WithFaultInjection): the disk tier consults it before blob IO so
	// tests drive slow-IO, corruption, ENOSPC and transient-error paths
	// deterministically. Nil in production; Fire on nil is a no-op.
	inject *faultinject.Injector

	mu      sync.Mutex
	schemas map[string]*schemaEntry
	// minedSeq names promoted modules ~mined/0, ~mined/1, ... within
	// this cache's lifetime (warm restarts advance it past restored ids).
	minedSeq int
	// policy ranks module keys ("schema/module") for eviction when the
	// pool fills (§6's cache-replacement direction; default LRU).
	// Scaffold states are pinned: they exist for output exactness.
	policy evict.Policy
	stats  Stats
}

// Option configures a Cache.
type Option func(*Cache)

// WithTemplate sets the chat template (§3.2.3); default is the template
// for the model's architecture family.
func WithTemplate(t *pml.Template) Option { return func(c *Cache) { c.tmpl = t } }

// WithPool stores module states in the given memory pool, enabling
// capacity limits and LRU eviction (§4.1's GPU-memory configuration).
func WithPool(p *memory.Pool) Option { return func(c *Cache) { c.pool = p } }

// WithHostPool enables two-tier storage (§4.1): modules evicted from the
// primary pool demote into this host pool with their states intact, and
// promote back on reuse without re-encoding. Pass an uncapped pool to
// model terabyte-scale host DRAM.
func WithHostPool(p *memory.Pool) Option { return func(c *Cache) { c.hostPool = p } }

// WithEvictionPolicy selects the cache-replacement policy for module
// states under a capacity-limited pool (default: evict.NewLRU()).
func WithEvictionPolicy(p evict.Policy) Option { return func(c *Cache) { c.policy = p } }

// WithDiskTier adds a durable disk tier below the host pool (or directly
// below the device pool when no host tier is configured): a module whose
// eviction would otherwise drop its states spills them to a
// content-addressed file under dir, quantized per codec (CodecFP32 for
// bit-exact spills), and the next serve that needs it reads the file back
// and promotes it like any host-tier hit — no re-encode. The same dir is
// what SaveAll/OpenDir persist warm-restart snapshots into.
func WithDiskTier(dir string, codec Codec) Option {
	return func(c *Cache) { c.disk = newDiskTier(dir, codec) }
}

// WithInt8Modules stores module states quantized to int8 with per-row
// scales (§6's compression direction): ~3.8× less storage and copy
// volume, at a bounded reconstruction error paid on each use.
// Scaffold states stay full precision (they exist for exactness).
func WithInt8Modules() Option { return func(c *Cache) { c.compress = true } }

// WithDecodeScheduler enables continuous-batching decode: concurrent
// Generate/GenerateStream calls (and everything built on them — Infer,
// sessions, streaming, batches) fuse into shared model steps, so N
// active generations cost one layer walk per token instead of N.
// maxBatch bounds the fused-step width (non-positive selects
// DefaultMaxDecodeBatch); requests beyond it queue and join as lanes
// retire. Per-request output is bit-identical to solo decoding.
func WithDecodeScheduler(maxBatch int) Option {
	return func(c *Cache) { c.sched = newScheduler(c.m, maxBatch) }
}

// WithFaultInjection installs a fault injector consulted by the disk
// tier before blob reads and writes, so robustness tests drive the
// degrade paths (retry, re-encode, spill fallthrough) deterministically.
// Production caches run without one at zero cost.
func WithFaultInjection(in *faultinject.Injector) Option {
	return func(c *Cache) { c.inject = in }
}

// WithBackend pins the model's kernel backend (default: tensor.Auto()'s
// hardware-based choice). Backends are bit-identical by contract — the
// choice affects core utilization and latency, never outputs — so cached
// module states encoded under one backend are valid under any other.
// Applies at construction; like model.SetBackend it must not change
// after serving begins.
func WithBackend(b tensor.Backend) Option {
	return func(c *Cache) {
		if b != nil {
			c.m.SetBackend(b)
		}
	}
}

// NewCache builds a Prompt Cache around a model.
func NewCache(m *model.Model, opts ...Option) *Cache {
	c := &Cache{
		m:       m,
		tok:     tokenizer.New(m.Cfg.VocabSize),
		tmpl:    pml.TemplateFor(m.Cfg.Name),
		schemas: make(map[string]*schemaEntry),
	}
	for _, o := range opts {
		o(c)
	}
	if c.pool == nil {
		c.pool = memory.NewPool(memory.Device{Name: "unbounded", Kind: memory.DRAM})
	}
	if c.policy == nil {
		c.policy = evict.NewLRU()
	}
	// Option order must not matter: wire the injector into the disk tier
	// and the draft source into the scheduler after all options ran,
	// whichever order they came in.
	if c.disk != nil {
		c.disk.inject = c.inject
	}
	if c.sched != nil {
		c.sched.draft = c.draft
	}
	return c
}

// Model returns the underlying model.
func (c *Cache) Model() *model.Model { return c.m }

// Tokenizer returns the cache's tokenizer.
func (c *Cache) Tokenizer() *tokenizer.Tokenizer { return c.tok }

// Stats returns a snapshot of cache activity counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// PoolUsed returns the bytes of module states currently resident.
func (c *Cache) PoolUsed() int64 { return c.pool.Used() }

// HostUsed returns the bytes of module states currently demoted to the
// host tier (0 when no host pool is configured).
func (c *Cache) HostUsed() int64 {
	if c.hostPool == nil {
		return 0
	}
	return c.hostPool.Used()
}

// DiskTierEnabled reports whether a disk tier is configured.
func (c *Cache) DiskTierEnabled() bool { return c.disk != nil }

// DiskUsed returns the bytes of module blobs tracked by the disk tier
// (0 when no disk tier is configured).
func (c *Cache) DiskUsed() int64 {
	if c.disk == nil {
		return 0
	}
	return c.disk.pool.Used()
}

// DiskModules returns the number of modules with a durable blob in the
// disk tier.
func (c *Cache) DiskModules() int {
	if c.disk == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.disk.index)
}

// SchedEnabled reports whether a decode scheduler is configured — the
// cheap check for callers that branch on it per request (no lock, no
// stats snapshot).
func (c *Cache) SchedEnabled() bool { return c.sched != nil }

// SchedStats returns a snapshot of decode-scheduler activity. With no
// scheduler configured it returns the zero snapshot (Enabled false).
func (c *Cache) SchedStats() SchedStats {
	if c.sched == nil {
		return SchedStats{}
	}
	return c.sched.Stats()
}

// SchemaNames returns the registered schema names, sorted. It is the
// authoritative registry; transports list schemas by querying it rather
// than tracking their own copy.
func (c *Cache) SchemaNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.schemas))
	for name := range c.schemas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RegisterSchema parses a PML schema, compiles its position layout, and
// eagerly encodes every prompt module and scaffold (§3.3: "Prompt Cache
// populates its cache when a schema is loaded"). Re-registering a schema
// name replaces the old entry.
func (c *Cache) RegisterSchema(src string) (*pml.Layout, error) {
	schema, err := pml.ParseSchema(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSchema, err)
	}
	layout, err := pml.Compile(schema, c.tok, c.tmpl)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSchema, err)
	}
	if layout.TotalLen > c.m.Cfg.MaxSeq {
		return nil, fmt.Errorf("%w: schema %q needs %d positions, model max is %d",
			ErrPromptTooLong, schema.Name, layout.TotalLen, c.m.Cfg.MaxSeq)
	}
	entry := &schemaEntry{
		schema:    schema,
		layout:    layout,
		modules:   make(map[string]*EncodedModule),
		scaffolds: make(map[string]*EncodedScaffold),
		src:       src,
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.schemas[schema.Name]; ok {
		c.dropSchemaLocked(schema.Name, old)
	}
	c.schemas[schema.Name] = entry
	for _, name := range layout.Order {
		if _, err := c.encodeModuleLocked(schema.Name, entry, name); err != nil {
			c.dropSchemaLocked(schema.Name, entry)
			return nil, err
		}
	}
	for _, sc := range schema.Scaffolds {
		if err := c.encodeScaffoldLocked(schema.Name, entry, sc); err != nil {
			c.dropSchemaLocked(schema.Name, entry)
			return nil, err
		}
	}
	return layout, nil
}

// freeTracked releases a pool reservation, counting (rather than
// silently discarding) bookkeeping failures: a failed Free means the
// tier's occupancy counter no longer reflects reality, and
// TierAccountErrors is how that drift surfaces in /v1/stats instead of
// going unnoticed.
func (c *Cache) freeTracked(p *memory.Pool, key string) {
	if err := p.Free(key); err != nil {
		c.stats.TierAccountErrors++
	}
}

// dropSchemaLocked releases all pool reservations of a schema.
func (c *Cache) dropSchemaLocked(name string, e *schemaEntry) {
	if c.draft != nil {
		// The draft source's learned phrasing dies with the schema too.
		c.draft.DropClassPrefix(classPrefix(name))
	}
	if c.miner != nil {
		// Forget the schema's observed traffic; mined modules counted
		// here are also in e.modules and release their tiers below.
		for range c.miner.DropClassPrefix(classPrefix(name)) {
			c.stats.MinedDemotions++
		}
	}
	for mod := range e.modules {
		key := name + "/" + mod
		if c.pool.Has(key) {
			c.freeTracked(c.pool, key)
		}
		if c.hostPool != nil && c.hostPool.Has(key) {
			c.freeTracked(c.hostPool, key)
		}
		if c.disk != nil {
			c.removeDiskLocked(key)
		}
		c.policy.Remove(key)
	}
	for sc := range e.scaffolds {
		key := name + "/scaffold/" + sc
		if c.pool.Has(key) {
			c.freeTracked(c.pool, key)
		}
	}
	delete(c.schemas, name)
}

// moduleTokens gathers a module's own token/position streams (text plus
// <unk> parameter buffers, excluding nested children).
func moduleTokens(ml *pml.ModuleLayout) (toks, pos []int) {
	for _, seg := range ml.Segments {
		if seg.Kind == pml.SegChild {
			continue
		}
		toks = append(toks, seg.Tokens...)
		pos = append(pos, seg.Pos...)
	}
	return toks, pos
}

// encodeStatesLocked runs a module's encoding prefill — the module's own
// tokens into an empty cache, which confines attention to the module
// span (the §3.3 masking effect) — and returns the states plus the token
// count. Storage and stats are the caller's: the resident and transient
// encode paths share this body so they cannot drift.
func (c *Cache) encodeStatesLocked(schema string, e *schemaEntry, name string) (*kvcache.Cache, int, error) {
	ml, ok := e.layout.Modules[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: schema %q has no module %q", ErrBadPrompt, schema, name)
	}
	toks, pos := moduleTokens(ml)
	kv := c.m.NewCache(len(toks))
	if len(toks) > 0 {
		//pclint:ignore lockscope registration-time encode is the documented one-time cost under the lock (§3.3); serves never reach this
		if _, err := c.m.Prefill(toks, pos, kv); err != nil {
			return nil, 0, fmt.Errorf("core: encoding %s/%s: %w", schema, name, err)
		}
	}
	return kv, len(toks), nil
}

// encodeModuleLocked computes and stores one module's attention states.
func (c *Cache) encodeModuleLocked(schema string, e *schemaEntry, name string) (*EncodedModule, error) {
	kv, nToks, err := c.encodeStatesLocked(schema, e, name)
	if err != nil {
		return nil, err
	}
	em := &EncodedModule{Name: name, Schema: schema, Layout: e.layout.Modules[name]}
	if c.compress && kv.Len() > 0 {
		em.Quant = quant.Compress(kv)
	} else {
		em.KV = kv
	}
	key := schema + "/" + name
	if err := c.reserveLocked(key, em.Bytes()); err != nil {
		return nil, err
	}
	e.modules[name] = em
	c.policy.Touch(key, em.Bytes())
	c.stats.ModulesEncoded++
	c.stats.TokensEncoded += nToks
	return em, nil
}

// encodeScaffoldLocked co-encodes a scaffold's members with a shared
// attention span: one prefill over the concatenation of all member
// tokens, in schema order, at their absolute positions.
func (c *Cache) encodeScaffoldLocked(schema string, e *schemaEntry, sc pml.Scaffold) error {
	var toks, pos []int
	for _, name := range e.layout.Order { // schema order
		if !slices.Contains(sc.Modules, name) {
			continue
		}
		t, p := moduleTokens(e.layout.Modules[name])
		toks = append(toks, t...)
		pos = append(pos, p...)
	}
	if len(toks) == 0 {
		return fmt.Errorf("%w: scaffold %q has no tokens", ErrBadSchema, sc.Name)
	}
	kv := c.m.NewCache(len(toks))
	//pclint:ignore lockscope scaffolds co-encode at registration, the documented one-time cost under the lock
	if _, err := c.m.Prefill(toks, pos, kv); err != nil {
		return fmt.Errorf("core: encoding scaffold %s/%s: %w", schema, sc.Name, err)
	}
	es := &EncodedScaffold{Name: sc.Name, Members: sc.Modules, KV: kv}
	key := schema + "/scaffold/" + sc.Name
	if err := c.reserveLocked(key, kv.Bytes(4)); err != nil {
		return err
	}
	e.scaffolds[sc.Name] = es
	c.stats.ModulesEncoded++
	c.stats.TokensEncoded += len(toks)
	return nil
}

// reserveLocked reserves pool space, evicting least-recently-used modules
// until the reservation fits (§4.1: "a caching mechanism that leverages
// both CPU and GPU memory... cache replacement").
func (c *Cache) reserveLocked(key string, size int64) error {
	for {
		err := c.pool.Alloc(key, size)
		if err == nil {
			return nil
		}
		if !errors.Is(err, memory.ErrOutOfMemory) {
			return err
		}
		if !c.evictOneLocked(key) {
			return fmt.Errorf("%w: module %s (%d bytes) cannot fit even after eviction: %v", ErrCapacity, key, size, err)
		}
	}
}

// moduleForKeyLocked resolves a policy key back to its encoded module,
// or nil when the key does not name a live module.
func (c *Cache) moduleForKeyLocked(key string) *EncodedModule {
	schema, mod, ok := splitKey(key)
	if !ok {
		return nil
	}
	e := c.schemas[schema]
	if e == nil {
		return nil
	}
	return e.modules[mod]
}

// evictOneLocked drops the policy's next victim (never the module being
// loaded, which is not yet tracked, and never a pinned module — its
// states are being read by an in-flight prefill outside the lock).
// Returns false if nothing can be evicted.
func (c *Cache) evictOneLocked(loading string) bool {
	excluded := func(key string) bool {
		if key == loading {
			return true
		}
		em := c.moduleForKeyLocked(key)
		return em != nil && em.pins > 0
	}
	for {
		key, ok := c.policy.VictimExcluding(excluded)
		if !ok {
			return false
		}
		c.policy.Remove(key)
		if !c.pool.Has(key) {
			continue // stale policy entry; clean up and retry
		}
		em := c.moduleForKeyLocked(key)
		if em != nil {
			// Prefer demotion to the host tier; below it, spill to the
			// disk tier; drop only when both are absent or full.
			switch {
			case c.hostPool != nil && c.hostPool.Alloc(key, em.Bytes()) == nil:
				em.state = stateDemoted
				c.stats.ModulesDemoted++
			case c.disk != nil && c.spillLocked(key, em) == nil:
				em.KV = nil
				em.Quant = nil
				em.state = stateDisk
				c.stats.ModulesSpilled++
			default:
				em.KV = nil
				em.Quant = nil
				em.state = stateDropped
			}
		}
		c.freeTracked(c.pool, key)
		c.stats.ModulesEvicted++
		if em != nil && em.Mined != nil && em.state == stateDropped {
			// A mined module cannot re-encode, so a drop past the last
			// tier is terminal: remove it and tell the observer.
			if schema, _, ok := splitKey(key); ok {
				c.dropMinedLocked(key, schema, em)
			}
		}
		return true
	}
}

func splitKey(key string) (schema, mod string, ok bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i], key[i+1:], true
		}
	}
	return "", "", false
}

// promoteLocked moves a demoted module back into the primary pool
// (evicting others if needed) and releases its host reservation. A
// failed host-pool release is counted in TierAccountErrors rather than
// discarded, so the host occupancy counter cannot drift silently.
func (c *Cache) promoteLocked(key string, em *EncodedModule) error {
	if err := c.reserveLocked(key, em.Bytes()); err != nil {
		return err
	}
	c.freeTracked(c.hostPool, key)
	em.state = stateResident
	c.stats.ModulesPromoted++
	return nil
}

// getModuleLocked returns a module's states, re-encoding if it was
// evicted.
func (c *Cache) getModuleLocked(schemaName string, e *schemaEntry, name string) (*EncodedModule, error) {
	em := e.modules[name]
	if em == nil {
		return nil, fmt.Errorf("%w: schema %q has no module %q", ErrBadPrompt, schemaName, name)
	}
	key := schemaName + "/" + name
	switch em.state {
	case stateDropped:
		c.stats.ModulesReloaded++
		return c.encodeModuleLocked(schemaName, e, name)
	case stateDemoted:
		if err := c.promoteLocked(key, em); err != nil {
			return nil, err
		}
	case stateDisk:
		// Warming path (Prefetch, snapshots): the blob read happens under
		// the lock, like encoding. Serves use the off-lock resolve in
		// engine.go instead.
		kv, lerr := c.diskLoadLocked(key, em)
		if lerr != nil {
			// Unreadable blob: degrade to a re-encode. Corruption also
			// deletes the blob; a transient IO error keeps it for retry.
			c.diskLoadFailedLocked(key, em, lerr)
			c.stats.ModulesReloaded++
			return c.encodeModuleLocked(schemaName, e, name)
		}
		if err := c.installDiskStatesLocked(key, em, kv); err != nil {
			return nil, err
		}
	}
	c.policy.Touch(key, em.Bytes())
	c.stats.ModulesReused++
	return em, nil
}

// acquireModuleLocked is getModuleLocked for the serve planning phase:
// it returns the module's states as a servePart safe to read outside the
// lock. The happy path promotes or re-encodes into the primary pool and
// pins the module, making it immune to eviction until unpinModules runs.
// When the pool cannot hold the serve's whole working set at once — the
// remaining eviction victims are all pinned, typically by this very
// serve — it degrades to a read-through: demoted states are snapshotted
// straight from the host tier and dropped ones are re-encoded
// transiently, without claiming primary-pool residency, so a working set
// larger than the pool still serves.
func (c *Cache) acquireModuleLocked(schemaName string, e *schemaEntry, name string) (servePart, error) {
	em := e.modules[name]
	if em == nil {
		return servePart{}, fmt.Errorf("%w: schema %q has no module %q", ErrBadPrompt, schemaName, name)
	}
	key := schemaName + "/" + name
	switch em.state {
	case stateDropped:
		return c.reencodeForServeLocked(schemaName, e, name, key)
	case stateDemoted:
		if err := c.promoteLocked(key, em); err != nil {
			if !errors.Is(err, ErrCapacity) {
				return servePart{}, err
			}
			// Host-tier read-through without promotion. The snapshot
			// reference stays valid even if the module is later dropped:
			// eviction only clears the module's fields, never the
			// underlying states.
			c.stats.ModulesReused++
			return servePart{key: key, kv: em.States()}, nil
		}
	case stateDisk:
		// The blob read is disk IO and must not run under the cache-wide
		// lock: return a pending part; the serve resolves it off-lock
		// (resolveDiskParts) and re-locks briefly to promote and pin.
		return servePart{key: key, disk: em}, nil
	}
	c.policy.Touch(key, em.Bytes())
	c.stats.ModulesReused++
	em.pins++
	return servePart{key: key, em: em}, nil
}

// reencodeForServeLocked serves a module whose states are unavailable
// (dropped, or a disk blob that failed to read) by re-encoding: pinned
// and resident when the pool holds it, transient otherwise.
func (c *Cache) reencodeForServeLocked(schemaName string, e *schemaEntry, name, key string) (servePart, error) {
	c.stats.ModulesReloaded++
	em2, err := c.encodeModuleLocked(schemaName, e, name)
	if err == nil {
		em2.pins++
		return servePart{key: key, em: em2}, nil
	}
	if !errors.Is(err, ErrCapacity) {
		return servePart{}, err
	}
	kv, terr := c.encodeTransientLocked(schemaName, e, name)
	if terr != nil {
		return servePart{}, terr
	}
	return servePart{key: key, kv: kv}, nil
}

// encodeTransientLocked re-encodes a dropped module without storing it:
// the states go straight into the serve that needs them and no pool
// residency is claimed. Under int8 storage the states take a
// compress/decompress round trip so transient serves stay bit-identical
// to resident ones.
func (c *Cache) encodeTransientLocked(schema string, e *schemaEntry, name string) (*kvcache.Cache, error) {
	kv, nToks, err := c.encodeStatesLocked(schema, e, name)
	if err != nil {
		return nil, err
	}
	c.stats.ModulesEncoded++
	c.stats.TokensEncoded += nToks
	if c.compress && kv.Len() > 0 {
		kv = quant.Compress(kv).Decompress()
	}
	return kv, nil
}

// unpinModules releases serve pins taken during planning, making the
// modules evictable again.
func (c *Cache) unpinModules(ems []*EncodedModule) {
	if len(ems) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, em := range ems {
		em.pins--
	}
}

// Prefetch warms the named modules — promoting demoted states back into
// the primary pool and re-encoding dropped ones — before a prompt needs
// them. §3.2.3 notes unions enable exactly this: once one member of a
// union is known to be in play, its siblings (or the chosen member) can
// be staged ahead of the request.
func (c *Cache) Prefetch(schema string, names ...string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.schemas[schema]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSchema, schema)
	}
	for _, name := range names {
		if _, err := c.getModuleLocked(schema, e, name); err != nil {
			return err
		}
	}
	return nil
}

// PrefetchUnion warms every member of the union containing member.
func (c *Cache) PrefetchUnion(schema, member string) error {
	c.mu.Lock()
	e, ok := c.schemas[schema]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownSchema, schema)
	}
	members := e.layout.UnionOf(member)
	c.mu.Unlock()
	if members == nil {
		return fmt.Errorf("%w: module %q is not a union member", ErrBadPrompt, member)
	}
	return c.Prefetch(schema, members...)
}

// Layout returns the compiled layout of a registered schema.
func (c *Cache) Layout(schema string) (*pml.Layout, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.schemas[schema]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSchema, schema)
	}
	return e.layout, nil
}
