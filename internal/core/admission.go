package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Admission control: a bounded queue in front of serving that sheds
// load instead of collapsing under it. Every request Admits before the
// engine does any work; at capacity it waits in a per-SLO-class FIFO,
// and when the queue itself is full it is shed immediately with a typed
// OverloadError carrying a retry-after estimate (queue depth × observed
// service rate). Interactive requests are always granted slots before
// batch requests, mirroring the decode scheduler's lane priority.

// SLOClass classifies a request's latency objective. It rides the
// request context (WithSLOClass) from the transport down to the
// admission queue and the decode scheduler, both of which serve
// interactive traffic before batch backfill.
type SLOClass int

const (
	// SLOInteractive is the default class: user-facing requests whose
	// TTFT matters. Admitted and scheduled ahead of batch traffic.
	SLOInteractive SLOClass = iota
	// SLOBatch marks throughput-oriented backfill traffic: it yields
	// admission slots and decode-scheduler lanes to interactive load.
	SLOBatch
	// numSLOClasses sizes per-class arrays; keep it last.
	numSLOClasses
)

// String returns the class's wire name ("interactive", "batch").
func (c SLOClass) String() string {
	switch c {
	case SLOInteractive:
		return "interactive"
	case SLOBatch:
		return "batch"
	default:
		return fmt.Sprintf("slo(%d)", int(c))
	}
}

// ParseSLOClass maps a wire name to its SLOClass; the empty string is
// the interactive default.
func ParseSLOClass(s string) (SLOClass, error) {
	switch s {
	case "", "interactive":
		return SLOInteractive, nil
	case "batch":
		return SLOBatch, nil
	default:
		return SLOInteractive, fmt.Errorf("%w: unknown SLO class %q (want interactive or batch)", ErrBadPrompt, s)
	}
}

// MarshalJSON writes the class's wire name, so structs embedding an
// SLOClass serialize "interactive"/"batch" instead of a bare int.
func (c SLOClass) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON accepts the wire names ParseSLOClass does (with "" and
// absent meaning interactive), making SLOClass usable directly in
// request JSON shapes.
func (c *SLOClass) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("%w: SLO class must be a JSON string", ErrBadPrompt)
	}
	parsed, err := ParseSLOClass(s)
	if err != nil {
		return err
	}
	*c = parsed
	return nil
}

// sloKey carries a request's SLOClass through its context.
type sloKey struct{}

// WithSLOClass tags ctx with the request's SLO class, readable anywhere
// downstream via SLOFromContext (the decode scheduler uses it to order
// lane admission).
func WithSLOClass(ctx context.Context, class SLOClass) context.Context {
	return context.WithValue(ctx, sloKey{}, class)
}

// SLOFromContext returns the context's SLO class, defaulting to
// SLOInteractive for untagged requests.
func SLOFromContext(ctx context.Context) SLOClass {
	if c, ok := ctx.Value(sloKey{}).(SLOClass); ok {
		return c
	}
	return SLOInteractive
}

// Default admission bounds used when AdmissionConfig fields are
// non-positive.
const (
	DefaultAdmitConcurrent = 8
	DefaultAdmitQueue      = 64
)

// AdmissionConfig bounds concurrent serving (WithAdmission).
type AdmissionConfig struct {
	// MaxConcurrent is the number of requests served at once
	// (non-positive selects DefaultAdmitConcurrent).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; arrivals beyond it
	// are shed with ErrOverloaded (non-positive selects
	// DefaultAdmitQueue).
	MaxQueue int
	// InteractiveDeadline / BatchDeadline, when positive, are the
	// per-class deadlines AdmissionContext applies to each request's
	// context — covering queueing, prefill and decode. An expired
	// deadline surfaces as ErrDeadline (HTTP 504).
	InteractiveDeadline time.Duration
	BatchDeadline       time.Duration
}

// OverloadError is the payload of a shed request: the typed carrier of
// the computed Retry-After estimate. errors.Is(err, ErrOverloaded)
// holds; transports recover the estimate with errors.As.
type OverloadError struct {
	// RetryAfter estimates when a retry might be admitted: queue depth
	// ahead of the caller × the observed per-slot service time.
	RetryAfter time.Duration
	// QueueDepth is the admission queue's depth at shed time.
	QueueDepth int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v: queue full at depth %d, retry after %v", ErrOverloaded, e.QueueDepth, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// admitWaiter is one queued request: its class and the channel its
// grant closes.
type admitWaiter struct {
	class SLOClass
	ready chan struct{}
}

// admission is the bounded queue. All fields are guarded by mu; grants
// close waiter channels under it, so acquire's cancellation path can
// distinguish "granted concurrently" from "still queued" atomically.
type admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	inflight int
	waiting  int
	queues   [numSLOClasses][]*admitWaiter

	// grants is the FIFO of grant timestamps. Releases pop the front
	// and feed (now − front) into the service-time EWMA: re-pairing
	// grants with releases preserves the sum of residencies, so the
	// mean stays exact under arbitrary overlap.
	grants []time.Time
	ewmaNs float64

	admitted, shed, canceled, completed [numSLOClasses]int64
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultAdmitConcurrent
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = DefaultAdmitQueue
	}
	return &admission{cfg: cfg}
}

// grantLocked records a slot grant for class (counter + grant
// timestamp for the service-rate estimate). The caller adjusts
// inflight: +1 on a fresh slot, unchanged on a release-side handoff.
func (a *admission) grantLocked(class SLOClass) {
	a.admitted[class]++
	a.grants = append(a.grants, time.Now())
}

// acquire blocks until the request holds an admission slot, is shed
// (queue full → *OverloadError), or its context ends while queued
// (→ ErrDeadline-wrapped ctx error). Every nil return holds exactly one
// slot that release must return — including the race where the grant
// and the cancellation fire together: the grant stands, and the serve
// fails fast on its dead context through the normal release path, so
// admitted and completed counts always reconcile.
func (a *admission) acquire(ctx context.Context, class SLOClass) error {
	a.mu.Lock()
	if a.inflight < a.cfg.MaxConcurrent && a.waiting == 0 {
		a.inflight++
		a.grantLocked(class)
		a.mu.Unlock()
		return nil
	}
	if a.waiting >= a.cfg.MaxQueue {
		a.shed[class]++
		err := &OverloadError{RetryAfter: a.retryAfterLocked(), QueueDepth: a.waiting}
		a.mu.Unlock()
		return err
	}
	w := &admitWaiter{class: class, ready: make(chan struct{})}
	a.queues[class] = append(a.queues[class], w)
	a.waiting++
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: keep the slot.
			a.mu.Unlock()
			return nil
		default:
		}
		q := a.queues[class]
		for i, qw := range q {
			if qw == w {
				a.queues[class] = append(q[:i], q[i+1:]...)
				break
			}
		}
		a.waiting--
		a.canceled[class]++
		a.mu.Unlock()
		return wrapDeadline(ctx.Err())
	}
}

// release returns a slot: update the service-time estimate, then hand
// the slot to the longest-waiting interactive request, falling back to
// batch — priority lives here, not in queue insertion, so within a
// class admission stays strictly FIFO.
func (a *admission) release(class SLOClass) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.completed[class]++
	if len(a.grants) > 0 {
		d := float64(time.Since(a.grants[0]).Nanoseconds())
		a.grants = a.grants[1:]
		if a.ewmaNs == 0 {
			a.ewmaNs = d
		} else {
			a.ewmaNs = 0.8*a.ewmaNs + 0.2*d
		}
	}
	for cl := SLOClass(0); cl < numSLOClasses; cl++ {
		if len(a.queues[cl]) == 0 {
			continue
		}
		w := a.queues[cl][0]
		a.queues[cl] = a.queues[cl][1:]
		a.waiting--
		a.grantLocked(w.class)
		close(w.ready) // slot transfers; inflight unchanged
		return
	}
	a.inflight--
}

// retryAfterLocked estimates when a shed caller could be admitted:
// everyone already queued (plus the caller) must drain through
// MaxConcurrent slots at the observed per-slot service time.
func (a *admission) retryAfterLocked() time.Duration {
	svc := time.Duration(a.ewmaNs)
	if svc <= 0 {
		svc = 50 * time.Millisecond // nothing measured yet
	}
	est := svc * time.Duration(a.waiting+1) / time.Duration(a.cfg.MaxConcurrent)
	if est < time.Millisecond {
		est = time.Millisecond
	}
	return est
}

// AdmissionClassStats is one SLO class's slice of admission activity.
type AdmissionClassStats struct {
	// Admitted counts slot grants; Shed counts queue-full rejections;
	// Canceled counts waiters whose context ended while queued;
	// Completed counts released slots. At quiescence
	// Admitted == Completed and every arrival is exactly one of
	// Admitted, Shed or Canceled.
	Admitted, Shed, Canceled, Completed int64
	// QueueDepth is the class's instantaneous waiter count.
	QueueDepth int
}

// AdmissionStats is a snapshot of admission-control activity, the
// observability surface behind /v1/stats's admission block.
type AdmissionStats struct {
	// Enabled reports whether the cache admission-controls at all.
	Enabled bool
	// MaxConcurrent / MaxQueue echo the configured bounds.
	MaxConcurrent, MaxQueue int
	// Inflight is the number of slots currently held; QueueDepth is the
	// total waiter count across classes.
	Inflight, QueueDepth int
	// RetryAfterEstimate is what a request shed right now would be told.
	RetryAfterEstimate time.Duration
	// Interactive and Batch are the per-class histograms.
	Interactive, Batch AdmissionClassStats
}

func (a *admission) stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	cls := func(c SLOClass) AdmissionClassStats {
		return AdmissionClassStats{
			Admitted:   a.admitted[c],
			Shed:       a.shed[c],
			Canceled:   a.canceled[c],
			Completed:  a.completed[c],
			QueueDepth: len(a.queues[c]),
		}
	}
	return AdmissionStats{
		Enabled:            true,
		MaxConcurrent:      a.cfg.MaxConcurrent,
		MaxQueue:           a.cfg.MaxQueue,
		Inflight:           a.inflight,
		QueueDepth:         a.waiting,
		RetryAfterEstimate: a.retryAfterLocked(),
		Interactive:        cls(SLOInteractive),
		Batch:              cls(SLOBatch),
	}
}

// WithAdmission bounds concurrent serving: cfg.MaxConcurrent requests
// serve at once, cfg.MaxQueue more wait (interactive ahead of batch),
// and arrivals beyond both are shed immediately with ErrOverloaded
// carrying a Retry-After estimate — graceful degradation instead of
// collapse. Per-class deadlines, when set, bound each request
// end to end via AdmissionContext.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(c *Cache) { c.adm = newAdmission(cfg) }
}

// AdmissionEnabled reports whether admission control is configured.
func (c *Cache) AdmissionEnabled() bool { return c.adm != nil }

// AdmissionStats returns a snapshot of admission activity. Without
// WithAdmission it returns the zero snapshot (Enabled false).
func (c *Cache) AdmissionStats() AdmissionStats {
	if c.adm == nil {
		return AdmissionStats{}
	}
	return c.adm.stats()
}

// Admit acquires an admission slot for one request (no-op without
// WithAdmission). A nil return holds a slot the caller must return with
// AdmitRelease once the request finishes — success or failure. Non-nil
// returns hold nothing: the request was shed (ErrOverloaded) or its
// context ended while queued (ErrDeadline / context.Canceled).
func (c *Cache) Admit(ctx context.Context, class SLOClass) error {
	if c.adm == nil {
		return nil
	}
	return c.adm.acquire(ctx, class)
}

// AdmitRelease returns the slot a successful Admit acquired, waking the
// next queued request (interactive before batch).
func (c *Cache) AdmitRelease(class SLOClass) {
	if c.adm == nil {
		return
	}
	c.adm.release(class)
}

// AdmissionContext applies the class's configured deadline to ctx (a
// passthrough when admission is off or the class has no deadline). The
// returned cancel must be called to release the timer.
func (c *Cache) AdmissionContext(ctx context.Context, class SLOClass) (context.Context, context.CancelFunc) {
	if c.adm == nil {
		return ctx, func() {}
	}
	d := c.adm.cfg.InteractiveDeadline
	if class == SLOBatch {
		d = c.adm.cfg.BatchDeadline
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// wrapDeadline tags deadline-expiry errors with the taxonomy sentinel:
// a context.DeadlineExceeded anywhere in the chain gains ErrDeadline
// (so transports map it to 504 by sentinel, not by raw context error),
// applied exactly once. Other errors pass through untouched.
func wrapDeadline(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrDeadline) {
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	}
	return err
}
