package core

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/pml"
)

// ServeOpts controls cached inference.
type ServeOpts struct {
	// DisableScaffolds skips scaffold override even when every member of
	// a scaffold is imported (for the §3.3 masking-effect ablation).
	DisableScaffolds bool
	// BatchWorkers bounds the worker pool ServeBatch fans prompts out
	// over (0 = GOMAXPROCS). Single serves ignore it.
	BatchWorkers int
}

// ServeResult is the outcome of assembling a prompt's attention states.
type ServeResult struct {
	// KV is the prompt's attention-state sequence, ready for decoding.
	// Cached serves hold a *kvcache.Seq — zero-copy segment views into
	// the pinned modules' buffers plus a private tail for the serve's own
	// tokens; baseline serves hold a flat *kvcache.Cache.
	KV kvcache.KV
	// Logits are the final-token logits (feed to Generate).
	Logits []float32
	// CachedTokens counts tokens whose states were reused from the cache;
	// NewTokens counts tokens computed at serve time (arguments + new
	// text). TTFT saving is the story of this ratio (§3.4).
	CachedTokens, NewTokens int
	// Modules lists imported modules (including anonymous ones) in
	// position order; Scaffolds lists scaffold overrides applied.
	Modules   []string
	Scaffolds []string

	// pins, when non-nil, holds the modules this result's KV views point
	// into, pinned against eviction until Close (or Materialize).
	pins *pinSet

	// class is the serve's serving-class key (see servingClass), set when
	// mining or speculation is active. Generate hands it to the decode
	// scheduler so draft-source lookups stay scoped to streams whose
	// attention context matches.
	class string
}

// pinSet ties a serve's module pins to the lifetime of the results
// reading them. Continue shares it between the old and new result, so
// releasing is idempotent and closing either releases exactly once.
type pinSet struct {
	cache *Cache
	pins  []*EncodedModule
	once  sync.Once
}

func (p *pinSet) release() {
	if p == nil {
		return
	}
	p.once.Do(func() { p.cache.unpinModules(p.pins) })
}

// Close releases the module pins backing this result's KV views, making
// the modules evictable again. Call it when done decoding from the
// result; a Session does so when it closes. Closing is idempotent, safe
// on results without pins (baselines, batch members), and must not race
// with reads of the result's KV.
func (r *ServeResult) Close() {
	if r != nil {
		r.pins.release()
	}
}

// Materialize replaces the result's segmented view with a flat, owned
// copy of the full sequence and releases the module pins. It is the
// escape hatch from view lifetime rules — use it before snapshotting a
// result or parking a session for so long that pinning its modules
// against eviction would be rude. Costs the O(prefix) copy that ordinary
// serves no longer pay.
func (r *ServeResult) Materialize() {
	if seq, ok := r.KV.(*kvcache.Seq); ok {
		r.KV = seq.Materialize()
	}
	r.pins.release()
}

// importBinding is one resolved module import with validated arguments.
type importBinding struct {
	name string
	args map[string]string // param name -> value text
}

// Serve performs cached inference for a PML prompt (§3.4): it validates
// the prompt against its schema, stitches zero-copy views over the
// cached module states, computes attention states only for uncached
// tokens (parameter arguments and new text), and returns a result ready
// for token generation. Cancelling ctx aborts the prefill mid-flight.
//
// The result views pinned module memory: callers must Close (or
// Materialize) it when done decoding, or the viewed modules stay
// unevictable for the life of the cache. The promptcache layer does
// this automatically.
func (c *Cache) Serve(ctx context.Context, promptSrc string, opts ServeOpts) (*ServeResult, error) {
	prompt, err := pml.ParsePrompt(promptSrc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPrompt, err)
	}
	return c.ServeParsed(ctx, prompt, opts)
}

// ServeParsed is Serve for an already-parsed prompt. It holds the cache
// lock only for the metadata phase (validation, module lookup, pinning);
// the view stitching and the prefill run outside it, so serves overlap
// freely.
//
// The cached prefix is never copied: the result's KV is a segmented view
// into the pinned modules' buffers, and the pins stay held until the
// result is Closed (a Session closes its result when it closes; Infer
// closes after generation). Materialize converts to an owned copy when a
// result must outlive its pins.
func (c *Cache) ServeParsed(ctx context.Context, prompt *pml.Prompt, opts ServeOpts) (*ServeResult, error) {
	c.mu.Lock()
	plan, err := c.planServeLocked(prompt, opts, nil)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// Disk-tier modules were planned as pending parts; read their blobs
	// back outside the lock and promote (pinning) or read through.
	if err := c.resolveDiskParts(plan, prompt.SchemaName); err != nil {
		c.unpinModules(plan.pinned)
		return nil, err
	}
	newToks, newPos, err := c.gatherNewTokens(plan.layout, prompt, plan.bindings, plan.included)
	if err != nil {
		c.unpinModules(plan.pinned)
		return nil, err
	}

	// Module mining: the uncached stream may start with a previously
	// promoted prefix; splice its states like a schema hit and prefill
	// only the remainder. The untrimmed stream feeds the observer after
	// the serve. The pin set is built after the splice — a resident
	// mined hit appends its own pin.
	fullToks, fullPos := newToks, newPos
	var class, minedName string
	if c.miner != nil || c.draft != nil {
		class = servingClass(prompt.SchemaName, plan)
	}
	if c.miner != nil {
		var n int
		minedName, n = c.spliceMined(plan, prompt.SchemaName, class, newToks, newPos)
		newToks, newPos = newToks[n:], newPos[n:]
	}
	ps := &pinSet{cache: c, pins: plan.pinned}

	// Stitch the cached prefix outside the lock: O(#segments) slice
	// headers, not O(prefix) rows. The pins guarantee every part's
	// states stay intact while the views are readable.
	seq := c.m.NewSeq(plan.tailCap)
	for _, part := range plan.parts {
		excl := plan.excluded
		if part.noExclude {
			excl = nil
		}
		addViews(seq, part.states(), excl)
	}
	res, err := c.finishServe(ctx, plan, seq, newToks, newPos)
	if err != nil {
		ps.release()
		return nil, err
	}
	if minedName != "" {
		// Copy-on-append: res.Modules aliases plan.included.
		res.Modules = append(res.Modules[:len(res.Modules):len(res.Modules)], minedName)
	}
	if c.miner != nil {
		// Observe while the pins are held, so a promotion can copy its
		// rows out of the still-stable views.
		c.observeServe(prompt.SchemaName, class, fullToks, fullPos, seq)
	}
	res.class = class
	res.pins = ps
	return res, nil
}

// servePart is one stretch of precomputed attention states to splice
// into a served prompt, in emission order.
type servePart struct {
	// key identifies the states for cross-prompt sharing
	// ("schema/module" or "schema/scaffold/name").
	key string
	// em is a pinned resident module; its States() may be read outside
	// the cache lock until the pin is released.
	em *EncodedModule
	// kv is an immutable snapshot — scaffold states, or module states
	// read through from the host tier, the disk tier or a transient
	// re-encode — used when em is nil.
	kv *kvcache.Cache
	// disk marks a pending disk-tier load: the module's states live only
	// in its blob, which resolveDiskParts reads outside the cache lock
	// before assembly. A resolved plan has no disk parts left.
	disk *EncodedModule
	// noExclude marks a part whose rows must not be filtered against the
	// plan's excluded positions: a mined prefix already contains the
	// serve-computed states at those positions.
	noExclude bool
}

// states materializes the part's attention states. Safe outside the
// cache lock: em is pinned against eviction, kv is immutable.
func (p servePart) states() *kvcache.Cache {
	if p.em != nil {
		return p.em.States()
	}
	return p.kv
}

// servePlan is the product of the metadata-only planning phase: every
// decision that needed the cache lock, captured so state assembly and
// the prefill can run without it.
type servePlan struct {
	layout    *pml.Layout
	bindings  []importBinding
	included  []string
	scaffolds []string // scaffold overrides applied, in schema order
	excluded  map[int]bool
	parts     []servePart
	pinned    []*EncodedModule // unpin when the serve's result closes
	tailCap   int              // tail reservation for the serve's own tokens
}

// planServeLocked validates the prompt, selects scaffold overrides, and
// pins every module the serve needs. Callers hold c.mu; the returned
// plan is read entirely outside it. On error no pins are retained.
//
// shared, when non-nil, reports keys whose states are already
// materialized elsewhere (a batch's block registry): those modules are
// planned as key-only parts — no pin, no promotion, no re-encode — and
// resolved against the registry at assembly time.
func (c *Cache) planServeLocked(prompt *pml.Prompt, opts ServeOpts, shared func(key string) bool) (*servePlan, error) {
	e, ok := c.schemas[prompt.SchemaName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSchema, prompt.SchemaName)
	}

	bindings, err := c.resolveImports(e, prompt)
	if err != nil {
		return nil, err
	}
	included := c.includedModules(e, bindings)

	// Union exclusivity (§3.2.3).
	seenUnion := map[int]string{}
	for _, name := range included {
		ml := e.layout.Modules[name]
		if ml.UnionID >= 0 {
			if prev, clash := seenUnion[ml.UnionID]; clash {
				return nil, fmt.Errorf("%w: modules %q and %q are exclusive union members", ErrBadPrompt, prev, name)
			}
			seenUnion[ml.UnionID] = name
		}
	}

	// Positions of supplied parameter slots must be excluded from the
	// cached states: the argument's freshly computed states replace the
	// <unk> buffer rows (§3.3).
	excluded := map[int]bool{}
	for _, b := range bindings {
		ml := e.layout.Modules[b.name]
		for pname := range b.args {
			seg := ml.ParamSegment(pname)
			for _, p := range seg.Pos {
				excluded[p] = true
			}
		}
	}

	plan := &servePlan{
		layout:   e.layout,
		bindings: bindings,
		included: included,
		excluded: excluded,
		// The tail holds only serve-time tokens (arguments, new text,
		// decoded reply) — the cached prefix lives in views. Argument
		// slots bound the argument volume; 64 covers typical new text
		// and the tail doubles beyond it.
		tailCap: 64 + len(excluded),
	}

	// Scaffold override (§3.3): if every member of a scaffold is
	// imported, its co-encoded states replace the members' individual
	// states.
	covered := map[string]bool{}
	var scaffolds []*EncodedScaffold
	if !opts.DisableScaffolds {
		for _, sc := range e.schema.Scaffolds {
			es := e.scaffolds[sc.Name]
			if es == nil || !allIncluded(sc.Modules, included) {
				continue
			}
			overlap := false
			for _, m := range sc.Modules {
				if covered[m] {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			scaffolds = append(scaffolds, es)
			for _, m := range sc.Modules {
				covered[m] = true
			}
			plan.scaffolds = append(plan.scaffolds, sc.Name)
		}
	}

	// Pin the parts: modules in schema position order; scaffold states
	// splice in at their first covered member. Scaffold states are
	// immutable once encoded (never evicted), so a snapshot reference
	// is as good as a pin.
	emittedScaffold := map[string]bool{}
	for _, name := range included {
		if covered[name] {
			for _, es := range scaffolds {
				if slices.Contains(es.Members, name) && !emittedScaffold[es.Name] {
					plan.parts = append(plan.parts, servePart{
						key: prompt.SchemaName + "/scaffold/" + es.Name,
						kv:  es.KV,
					})
					emittedScaffold[es.Name] = true
				}
			}
			continue
		}
		if key := prompt.SchemaName + "/" + name; shared != nil && shared(key) {
			plan.parts = append(plan.parts, servePart{key: key})
			continue
		}
		part, err := c.acquireModuleLocked(prompt.SchemaName, e, name)
		if err != nil {
			for _, em := range plan.pinned {
				em.pins--
			}
			return nil, err
		}
		if part.em != nil {
			plan.pinned = append(plan.pinned, part.em)
		}
		plan.parts = append(plan.parts, part)
	}
	return plan, nil
}

// finishServe completes a planned serve outside the cache lock: run the
// already-gathered uncached stream (parameter arguments at their slot
// positions, new text per §3.4; minus any mined prefix the caller
// spliced) through the prefill into the view's tail, and fold the reuse
// stats back in under a brief re-lock.
func (c *Cache) finishServe(ctx context.Context, plan *servePlan, kv kvcache.KV, newToks, newPos []int) (*ServeResult, error) {
	res := &ServeResult{
		Modules:      plan.included,
		Scaffolds:    plan.scaffolds,
		CachedTokens: kv.Len(),
		NewTokens:    len(newToks),
	}
	if len(newToks) == 0 {
		return nil, fmt.Errorf("%w: prompt adds no new tokens; add instruction text or parameter arguments", ErrBadPrompt)
	}
	logits, err := c.m.PrefillCtx(ctx, newToks, newPos, kv)
	if err != nil {
		return nil, wrapDeadline(err)
	}
	c.mu.Lock()
	c.stats.TokensReused += res.CachedTokens
	c.mu.Unlock()
	res.KV = kv
	res.Logits = logits
	return res, nil
}

// resolveImports validates the prompt's import tree against the schema
// and flattens it to bindings.
func (c *Cache) resolveImports(e *schemaEntry, prompt *pml.Prompt) ([]importBinding, error) {
	var out []importBinding
	var walk func(items []pml.PromptItem, parent string) error
	walk = func(items []pml.PromptItem, parent string) error {
		for _, it := range items {
			imp, ok := it.(*pml.Import)
			if !ok {
				if parent != "" {
					return fmt.Errorf("%w: module %q may contain only nested imports, not text", ErrBadPrompt, parent)
				}
				continue
			}
			ml, ok := e.layout.Modules[imp.Name]
			if !ok {
				return fmt.Errorf("%w: schema %q has no module %q", ErrBadPrompt, e.schema.Name, imp.Name)
			}
			if ml.Parent != parent {
				if parent == "" {
					return fmt.Errorf("%w: module %q is nested inside %q; import it within its parent", ErrBadPrompt, imp.Name, ml.Parent)
				}
				return fmt.Errorf("%w: module %q is not a child of %q", ErrBadPrompt, imp.Name, parent)
			}
			// Validate in sorted key order: with two bad arguments, which
			// error a caller sees must not depend on map iteration order.
			keys := make([]string, 0, len(imp.Args))
			for k := range imp.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			args := map[string]string{}
			for _, k := range keys {
				v := imp.Args[k]
				p := ml.Param(k)
				if p == nil {
					return fmt.Errorf("%w: module %q has no parameter %q", ErrBadPrompt, imp.Name, k)
				}
				n := len(c.tok.Encode(v))
				if n > p.Len {
					return fmt.Errorf("%w: argument %q of %s is %d tokens, exceeding len=%d",
						ErrArgTooLong, k, imp.Name, n, p.Len)
				}
				args[k] = v
			}
			out = append(out, importBinding{name: imp.Name, args: args})
			if err := walk(imp.Children, imp.Name); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(prompt.Items, ""); err != nil {
		return nil, err
	}
	return out, nil
}

// includedModules returns anonymous modules plus imported ones, sorted by
// layout start (ties broken by schema order).
func (c *Cache) includedModules(e *schemaEntry, bindings []importBinding) []string {
	pick := map[string]bool{}
	for _, name := range e.layout.AnonymousModules() {
		pick[name] = true
	}
	for _, b := range bindings {
		pick[b.name] = true
	}
	orderIdx := map[string]int{}
	for i, n := range e.layout.Order {
		orderIdx[n] = i
	}
	out := make([]string, 0, len(pick))
	for n := range pick {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := e.layout.Modules[out[i]], e.layout.Modules[out[j]]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return orderIdx[out[i]] < orderIdx[out[j]]
	})
	return out
}

// gatherNewTokens collects the uncached token/position streams in prompt
// order: parameter arguments adopt their slot positions (§3.3); new text
// takes positions after the preceding module, falling back past the
// global maximum when the natural slot is occupied (§3.4). It reads only
// the immutable layout and the tokenizer, so it needs no lock.
func (c *Cache) gatherNewTokens(layout *pml.Layout, prompt *pml.Prompt, bindings []importBinding, included []string) ([]int, []int, error) {
	// Occupied ranges: included modules' spans.
	type span struct{ lo, hi int }
	var occupied []span
	maxEnd := 0
	for _, name := range included {
		ml := layout.Modules[name]
		occupied = append(occupied, span{ml.Start, ml.Start + ml.Len})
		if ml.Start+ml.Len > maxEnd {
			maxEnd = ml.Start + ml.Len
		}
	}
	overlaps := func(lo, hi int) bool {
		for _, s := range occupied {
			if lo < s.hi && s.lo < hi && lo != hi {
				return true
			}
		}
		return false
	}

	bind := map[string]map[string]string{}
	for _, b := range bindings {
		bind[b.name] = b.args
	}

	var toks, pos []int
	cursor := 0
	var walk func(items []pml.PromptItem) error
	walk = func(items []pml.PromptItem) error {
		for _, it := range items {
			switch v := it.(type) {
			case *pml.Import:
				ml := layout.Modules[v.Name]
				// Supplied arguments: tokens at the slot's positions,
				// emitted in the module's segment order. (A map-order walk
				// here once made the token stream nondeterministic for
				// imports with two or more supplied parameters.)
				args := bind[v.Name]
				for _, seg := range ml.Segments {
					if seg.Kind != pml.SegParam {
						continue
					}
					value, supplied := args[seg.Param]
					if !supplied {
						continue
					}
					if _, here := v.Args[seg.Param]; !here {
						continue
					}
					argToks := c.tok.Encode(value)
					for i, at := range argToks {
						toks = append(toks, at)
						pos = append(pos, seg.Pos[i])
					}
				}
				if ml.Start+ml.Len > cursor {
					cursor = ml.Start + ml.Len
				}
				if err := walk(v.Children); err != nil {
					return err
				}
			case *pml.PromptText:
				t := c.tmpl.Wrap(v.Role, c.tok.Encode(v.Content))
				if len(t) == 0 {
					continue
				}
				start := cursor
				if overlaps(start, start+len(t)) {
					start = maxEnd
				}
				if start+len(t) > c.m.Cfg.MaxSeq {
					return fmt.Errorf("%w: prompt text exceeds model max positions (%d)", ErrPromptTooLong, c.m.Cfg.MaxSeq)
				}
				for i, tt := range t {
					toks = append(toks, tt)
					pos = append(pos, start+i)
				}
				occupied = append(occupied, span{start, start + len(t)})
				if start+len(t) > maxEnd {
					maxEnd = start + len(t)
				}
				cursor = start + len(t)
			}
		}
		return nil
	}
	if err := walk(prompt.Items); err != nil {
		return nil, nil, err
	}
	return toks, pos, nil
}

// addViews appends src's rows to seq as zero-copy segment views,
// splitting around excluded positions (supplied parameter buffers): an
// excluded row costs a segment boundary, not a row-by-row copy of
// everything around it.
func addViews(seq *kvcache.Seq, src *kvcache.Cache, excluded map[int]bool) {
	if len(excluded) == 0 {
		seq.AddView(src, 0, src.Len())
		return
	}
	lo := -1
	for i, p := range src.Pos {
		if excluded[p] {
			if lo >= 0 {
				seq.AddView(src, lo, i)
				lo = -1
			}
			continue
		}
		if lo < 0 {
			lo = i
		}
	}
	if lo >= 0 {
		seq.AddView(src, lo, src.Len())
	}
}

// appendFiltered appends src's rows to dst, skipping rows whose position
// is excluded (supplied parameter buffers) — the materializing
// counterpart of addViews, kept for snapshot/test paths that need owned
// storage.
func appendFiltered(dst, src *kvcache.Cache, excluded map[int]bool) {
	if len(excluded) == 0 {
		dst.AppendCache(src)
		return
	}
	for i, p := range src.Pos {
		if excluded[p] {
			continue
		}
		for l := 0; l < src.NLayers; l++ {
			dst.AppendToken(l, src.KeyRow(l, i), src.ValueRow(l, i))
		}
		dst.AppendPos(p)
	}
}

func allIncluded(members, included []string) bool {
	for _, m := range members {
		if !slices.Contains(included, m) {
			return false
		}
	}
	return true
}

// BaselineServe computes the same prompt with ordinary full prefill (the
// paper's KV-Cache baseline): the identical token/position sequence —
// module tokens with arguments substituted inline, then new text — run
// through one full-attention prefill with no reuse. Comparing its output
// against Serve's isolates the §3.3 masking effect.
func (c *Cache) BaselineServe(ctx context.Context, promptSrc string) (*ServeResult, error) {
	prompt, err := pml.ParsePrompt(promptSrc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPrompt, err)
	}
	return c.BaselineServeParsed(ctx, prompt)
}

// BaselineServeParsed is BaselineServe for an already-parsed prompt.
// The baseline touches no cached states at all — it reads only the
// immutable layout and the tokenizer — so the lock is held just long
// enough to resolve the schema; the full prefill runs outside it.
func (c *Cache) BaselineServeParsed(ctx context.Context, prompt *pml.Prompt) (*ServeResult, error) {
	c.mu.Lock()
	e, ok := c.schemas[prompt.SchemaName]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownSchema, prompt.SchemaName)
	}
	bindings, err := c.resolveImports(e, prompt)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	included := c.includedModules(e, bindings)
	layout := e.layout
	c.mu.Unlock()

	bind := map[string]map[string]string{}
	for _, b := range bindings {
		bind[b.name] = b.args
	}

	var toks, pos []int
	for _, name := range included {
		ml := layout.Modules[name]
		for _, seg := range ml.Segments {
			switch seg.Kind {
			case pml.SegText:
				toks = append(toks, seg.Tokens...)
				pos = append(pos, seg.Pos...)
			case pml.SegParam:
				if value, ok := bind[name][seg.Param]; ok {
					argToks := c.tok.Encode(value)
					for i, at := range argToks {
						toks = append(toks, at)
						pos = append(pos, seg.Pos[i])
					}
				} else {
					// Unsupplied parameter: the <unk> buffer stands in
					// for whitespace, as at encode time.
					toks = append(toks, seg.Tokens...)
					pos = append(pos, seg.Pos...)
				}
			}
		}
	}
	// New text only: arguments were already inlined at their slots above,
	// so gather with no bindings.
	textToks, textPos, err := c.gatherNewTokens(layout, prompt, nil, included)
	if err != nil {
		return nil, err
	}
	toks = append(toks, textToks...)
	pos = append(pos, textPos...)
	if len(toks) == 0 {
		return nil, fmt.Errorf("%w: baseline prompt is empty", ErrBadPrompt)
	}
	kv := c.m.NewCache(len(toks) + 64)
	logits, err := c.m.PrefillCtx(ctx, toks, pos, kv)
	if err != nil {
		return nil, wrapDeadline(err)
	}
	return &ServeResult{
		KV:        kv,
		Logits:    logits,
		NewTokens: len(toks),
		Modules:   included,
	}, nil
}

// Generate continues autoregressively from a Serve or BaselineServe
// result. Cancelling ctx aborts between decode steps. Under a decode
// scheduler (WithDecodeScheduler) the request decodes as one lane of the
// shared fused batch, with identical output.
func (c *Cache) Generate(ctx context.Context, res *ServeResult, opts model.GenerateOpts) ([]int, error) {
	var (
		ids []int
		err error
	)
	if c.sched != nil {
		ids, err = c.sched.Generate(ctx, res.class, res.KV, res.Logits, opts, nil)
	} else {
		ids, err = c.m.Generate(ctx, res.KV, res.Logits, opts)
	}
	return ids, wrapDeadline(err)
}

// Continue appends a follow-up user turn to an already-served session and
// returns an updated result ready for Generate — multi-turn conversation
// over one KV cache, the standard decode-phase reuse (§2.2) composed with
// Prompt Cache's prefill reuse. The new turn takes consecutive positions
// after the session's maximum position ID. On error — including ctx
// cancellation mid-prefill — the session's KV cache is rolled back to its
// pre-call state, so the session stays usable.
func (c *Cache) Continue(ctx context.Context, res *ServeResult, userText string) (*ServeResult, error) {
	if res == nil || res.KV == nil {
		return nil, fmt.Errorf("%w: Continue on an unserved result", ErrBadPrompt)
	}
	content := c.tok.Encode(userText)
	if len(content) == 0 {
		return nil, fmt.Errorf("%w: Continue with empty text", ErrBadPrompt)
	}
	toks := c.tmpl.Wrap(pml.RoleUser, content)
	start := res.KV.MaxPos() + 1
	if start+len(toks) > c.m.Cfg.MaxSeq {
		return nil, fmt.Errorf("%w: session exceeds model max positions (%d)", ErrPromptTooLong, c.m.Cfg.MaxSeq)
	}
	pos := make([]int, len(toks))
	for i := range pos {
		pos[i] = start + i
	}
	mark := res.KV.Len()
	logits, err := c.m.PrefillCtx(ctx, toks, pos, res.KV)
	if err != nil {
		res.KV.Truncate(mark)
		return nil, wrapDeadline(err)
	}
	// Per-turn reuse accounting: everything already in the session's KV
	// cache was reused; only this turn's text was computed. The pin set
	// is shared, not duplicated: the old and new result wrap the same
	// views, and closing either releases exactly once.
	return &ServeResult{
		KV:           res.KV,
		Logits:       logits,
		CachedTokens: mark,
		NewTokens:    len(toks),
		Modules:      res.Modules,
		Scaffolds:    res.Scaffolds,
		pins:         res.pins,
		class:        res.class,
	}, nil
}

// GenerateStream generates token by token, calling emit with each
// token's decoded text as soon as it is sampled; returning false stops.
// Under a decode scheduler the stream decodes as one lane of the shared
// fused batch; emit runs on the scheduler goroutine, so a sink that
// blocks stalls every lane — transports should drop the lane (return
// false) rather than block when their client stops reading.
func (c *Cache) GenerateStream(ctx context.Context, res *ServeResult, opts model.GenerateOpts, emit func(text string) bool) ([]int, error) {
	detok := func(tok int) bool { return emit(c.tok.Decode([]int{tok})) }
	var (
		ids []int
		err error
	)
	if c.sched != nil {
		ids, err = c.sched.Generate(ctx, res.class, res.KV, res.Logits, opts, detok)
	} else {
		ids, err = c.m.GenerateStream(ctx, res.KV, res.Logits, opts, detok)
	}
	return ids, wrapDeadline(err)
}

// GenerateText is Generate plus detokenization.
func (c *Cache) GenerateText(ctx context.Context, res *ServeResult, opts model.GenerateOpts) (string, error) {
	ids, err := c.Generate(ctx, res, opts)
	if err != nil {
		return "", err
	}
	return c.tok.Decode(ids), nil
}
