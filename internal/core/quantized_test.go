package core

import (
	"context"
	"testing"

	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/tensor"
)

// TestInt8ModulesCloseToFullPrecision: quantized module storage (§6
// compression direction) must produce logits close to full-precision
// cached inference — far closer than to an unrelated prompt — while
// using ~3.8x less pool memory.
func TestInt8ModulesCloseToFullPrecision(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 171)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := NewCache(m)
	mustRegister(t, full, travelSchema)
	quantized := NewCache(m, WithInt8Modules())
	mustRegister(t, quantized, travelSchema)

	// Pool accounting reflects compression.
	ratio := float64(full.PoolUsed()) / float64(quantized.PoolUsed())
	if ratio < 3.0 || ratio > 4.2 {
		t.Fatalf("pool compression ratio %.2f, want ~3.8", ratio)
	}

	prompt := `<prompt schema="travel"><trip-plan duration="four days"/><tokyo/>Plan the meals.</prompt>`
	fres, err := full.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	qres, err := quantized.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if qres.CachedTokens != fres.CachedTokens || qres.NewTokens != fres.NewTokens {
		t.Fatal("token accounting should match")
	}
	cos := tensor.CosineSimilarity(fres.Logits, qres.Logits)
	if cos < 0.99 {
		t.Fatalf("quantized/full logit cosine %.4f, want >= 0.99", cos)
	}
	other, err := full.Serve(context.Background(), `<prompt schema="travel"><miami/>Different question entirely here.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if unrelated := tensor.CosineSimilarity(fres.Logits, other.Logits); cos <= unrelated {
		t.Fatalf("quantized cosine %.4f should beat unrelated %.4f", cos, unrelated)
	}
}

// TestInt8EvictionReload: eviction and transparent re-encode work under
// quantized storage too.
func TestInt8EvictionReload(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 181)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m, WithInt8Modules())
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	small := NewCache(m, WithInt8Modules(), WithPool(memory.NewPool(memory.Device{
		Name: "tiny", Kind: memory.HBM, Capacity: need/2 + 1,
	})))
	mustRegister(t, small, travelSchema)
	if small.Stats().ModulesEvicted == 0 {
		t.Fatal("expected evictions")
	}
	prompt := `<prompt schema="travel"><miami/>Surf?</prompt>`
	a, err := probe.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := small.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(a.Logits, b.Logits); d > 1e-4 {
		t.Fatalf("evicted+reloaded quantized cache differs by %v", d)
	}
	if small.Stats().ModulesReloaded == 0 {
		t.Fatal("expected reloads")
	}
}

// TestInt8ScaffoldStaysExact: scaffold states remain full precision, so
// scaffolded serving still matches the baseline bit-close even under
// int8 module storage.
func TestInt8ScaffoldStaysExact(t *testing.T) {
	schema := `<schema name="s">
	  <module name="alpha">First clause about payments and deposits made monthly.</module>
	  <module name="beta">Second clause depending on the first clause terms.</module>
	  <scaffold name="both" modules="alpha beta"/>
	</schema>`
	prompt := `<prompt schema="s"><alpha/><beta/>Explain the link.</prompt>`
	cfg := model.LlamaStyle(coreVocab, 191)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(m, WithInt8Modules())
	mustRegister(t, c, schema)
	res, err := c.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaffolds) != 1 {
		t.Fatalf("scaffold not used: %v", res.Scaffolds)
	}
	base, err := c.BaselineServe(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(res.Logits, base.Logits); d > 1e-4 {
		t.Fatalf("scaffold under int8 storage differs by %v", d)
	}
}
