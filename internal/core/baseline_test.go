package core

import (
	"context"
	"testing"

	"repro/internal/tensor"
)

// TestBaselineUnsuppliedParamMatchesEncoding: the baseline path keeps
// <unk> buffers for unsupplied parameters, exactly as encoding does, so
// cached and baseline token/position multisets stay comparable.
func TestBaselineUnsuppliedParamMatchesEncoding(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	prompt := `<prompt schema="travel"><trip-plan/><miami/>Go.</prompt>`
	base, err := c.BaselineServe(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := c.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if base.NewTokens != cached.KV.Len() {
		t.Fatalf("baseline %d tokens vs cached cache %d", base.NewTokens, cached.KV.Len())
	}
	// Same position multiset.
	count := map[int]int{}
	for _, p := range base.KV.Positions() {
		count[p]++
	}
	for _, p := range cached.KV.Positions() {
		count[p]--
	}
	for pos, n := range count {
		if n != 0 {
			t.Fatalf("position %d multiplicity differs by %d", pos, n)
		}
	}
}

// TestBaselineErrorsMirrorServe: validation failures are identical
// between the two paths.
func TestBaselineErrorsMirrorServe(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	for _, p := range []string{
		`<prompt schema="ghost">x</prompt>`,
		`<prompt schema="travel"><atlantis/>x</prompt>`,
		`<prompt schema="travel"><trip-plan speed="x"/>ok</prompt>`,
		`<prompt schema="travel"><trip-plan duration="one two three four five six seven"/>ok</prompt>`,
	} {
		if _, err := c.BaselineServe(context.Background(), p); err == nil {
			t.Fatalf("baseline accepted invalid prompt %q", p)
		}
		if _, err := c.Serve(context.Background(), p, ServeOpts{}); err == nil {
			t.Fatalf("serve accepted invalid prompt %q", p)
		}
	}
}

// TestBaselineDeterministic: repeat baselines agree exactly.
func TestBaselineDeterministic(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	prompt := `<prompt schema="travel"><tokyo/>What to eat?</prompt>`
	a, err := c.BaselineServe(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.BaselineServe(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(a.Logits, b.Logits); d != 0 {
		t.Fatalf("baseline nondeterministic by %v", d)
	}
}

// TestBaselineOnlyAnonymous: a prompt with no imports still includes
// anonymous modules plus its text.
func TestBaselineOnlyAnonymous(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	res, err := c.BaselineServe(context.Background(), `<prompt schema="travel">Just a question with no imports.</prompt>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modules) != 1 || res.Modules[0] != "_anon0" {
		t.Fatalf("modules = %v", res.Modules)
	}
	cached, err := c.Serve(context.Background(), `<prompt schema="travel">Just a question with no imports.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(res.Logits, cached.Logits); d > 1e-4 {
		// Single (anonymous) module ⇒ exact equivalence again.
		t.Fatalf("anon-only prompt differs by %v", d)
	}
}
