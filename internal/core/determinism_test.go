package core

import (
	"context"
	"slices"
	"testing"

	"repro/internal/pml"
)

// multiParamSchema has a module with three parameters — the shape that
// exposed the map-order bug in gatherNewTokens.
const multiParamSchema = `
<schema name="form">
  <module name="letter">
    Dear <param name="name" len="3"/> your order of <param name="item" len="4"/> arrives on <param name="date" len="3"/> thanks.
  </module>
</schema>`

const multiParamPrompt = `<prompt schema="form"><letter name="Ada Lovelace" item="two red kites" date="next tuesday"/>Confirm the delivery.</prompt>`

// TestServeDeterministicMultiParam is the regression test for the
// nondeterministic argument emission: gatherNewTokens used to range over
// the binding map, so a 3-parameter import produced a different
// token/position stream (and therefore different logits) run to run.
// Twenty repeated serves must be byte-identical.
func TestServeDeterministicMultiParam(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, multiParamSchema)

	prompt, err := pml.ParsePrompt(multiParamPrompt)
	if err != nil {
		t.Fatal(err)
	}

	var wantToks, wantPos []int
	var wantKVPos []int
	var wantLogits []float32
	for i := 0; i < 20; i++ {
		// The raw uncached streams, straight from the gatherer.
		c.mu.Lock()
		plan, err := c.planServeLocked(prompt, ServeOpts{}, nil)
		c.mu.Unlock()
		if err != nil {
			t.Fatal(err)
		}
		toks, pos, err := c.gatherNewTokens(plan.layout, prompt, plan.bindings, plan.included)
		c.unpinModules(plan.pinned)
		if err != nil {
			t.Fatal(err)
		}

		// The full serve: the KV position stream records the exact
		// emission order of every row, cached and new.
		res, err := c.ServeParsed(context.Background(), prompt, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}

		if i == 0 {
			wantToks, wantPos = toks, pos
			wantKVPos = append([]int(nil), res.KV.Positions()...)
			wantLogits = res.Logits
			continue
		}
		if !slices.Equal(toks, wantToks) || !slices.Equal(pos, wantPos) {
			t.Fatalf("run %d: new-token stream diverged\n toks %v vs %v\n pos %v vs %v", i, toks, wantToks, pos, wantPos)
		}
		if !slices.Equal(res.KV.Positions(), wantKVPos) {
			t.Fatalf("run %d: KV position stream diverged", i)
		}
		if len(res.Logits) != len(wantLogits) {
			t.Fatalf("run %d: logits width %d vs %d", i, len(res.Logits), len(wantLogits))
		}
		for j := range res.Logits {
			if res.Logits[j] != wantLogits[j] {
				t.Fatalf("run %d: logits[%d] = %v, want %v (not byte-identical)", i, j, res.Logits[j], wantLogits[j])
			}
		}
	}
	// Sanity: all three arguments actually contributed new tokens.
	if len(wantToks) < 6 {
		t.Fatalf("expected several argument tokens, got %d", len(wantToks))
	}
}
