package core

import "errors"

// The error taxonomy of the serving surface. Every failure a caller can
// act on is wrapped in exactly one of these sentinels, so transports
// (the HTTP server, future RPC layers) classify with errors.Is instead
// of string matching.
var (
	// ErrUnknownSchema: a prompt names a schema that was never registered.
	ErrUnknownSchema = errors.New("core: unknown schema")
	// ErrBadSchema: a schema failed to parse or compile.
	ErrBadSchema = errors.New("core: bad schema")
	// ErrBadPrompt: a prompt failed to parse or violates its schema
	// (unknown module, union clash, illegal nesting, no new tokens).
	ErrBadPrompt = errors.New("core: bad prompt")
	// ErrArgTooLong: a parameter argument exceeds the slot's declared len.
	ErrArgTooLong = errors.New("core: argument too long")
	// ErrPromptTooLong: a prompt, schema layout, or session would exceed
	// the model's maximum position IDs.
	ErrPromptTooLong = errors.New("core: prompt too long")
	// ErrCapacity: module states cannot fit the memory pool even after
	// evicting everything evictable.
	ErrCapacity = errors.New("core: cache capacity exhausted")
	// ErrBadSnapshot: a warm-restart snapshot or disk-tier manifest is
	// malformed, truncated, or does not match the live model/schema
	// (wrong magic, version, module roster, token counts, or shape).
	ErrBadSnapshot = errors.New("core: bad snapshot")
	// ErrOverloaded: admission control shed the request — the server is
	// at capacity and the admission queue is full. Shed errors carry an
	// *OverloadError with a computed retry-after estimate; transports map
	// this to 429 + Retry-After.
	ErrOverloaded = errors.New("core: server overloaded")
	// ErrDeadline: a per-request deadline expired — while queued for
	// admission or mid-serve/decode. Wraps context.DeadlineExceeded, so
	// both errors.Is checks hold; transports map this to 504.
	ErrDeadline = errors.New("core: deadline exceeded")
)
