package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

func TestServeBatchMatchesIndividualServes(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	prompts := []string{
		`<prompt schema="travel"><trip-plan duration="two days"/><miami/>Plan it.</prompt>`,
		`<prompt schema="travel"><trip-plan duration="one week"/><tokyo/>Plan it.</prompt>`,
		`<prompt schema="travel"><miami/>Just the beaches please.</prompt>`,
	}
	batch, stats, err := c.ServeBatch(context.Background(), prompts, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 || stats.Prompts != 3 {
		t.Fatalf("batch size %d stats %+v", len(batch), stats)
	}
	for i, p := range prompts {
		solo, err := c.Serve(context.Background(), p, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(batch[i].Logits, solo.Logits); d > 1e-4 {
			t.Fatalf("prompt %d: batch vs solo logits differ by %v", i, d)
		}
		if batch[i].CachedTokens != solo.CachedTokens {
			t.Fatalf("prompt %d: cached token mismatch", i)
		}
	}
}

func TestServeBatchSharesModules(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	// All prompts share _anon0 and miami.
	var prompts []string
	for i := 0; i < 10; i++ {
		prompts = append(prompts, fmt.Sprintf(
			`<prompt schema="travel"><miami/>Question number %d about surfing.</prompt>`, i))
	}
	_, stats, err := c.ServeBatch(context.Background(), prompts, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SharedModules == 0 {
		t.Fatal("no sharing recorded")
	}
	// 10 prompts × 2 modules logically, 2 modules physically → ~90%.
	if s := stats.Savings(); s < 0.85 {
		t.Fatalf("savings %.2f, want ~0.9 for 10-way sharing", s)
	}
	if stats.PhysicalBytes >= stats.LogicalBytes {
		t.Fatal("physical must be below logical under sharing")
	}
}

func TestServeBatchHalvesPaperScenario(t *testing.T) {
	// §3.4's worked example: prompts of 2K tokens sharing a 1K module →
	// ~50% footprint reduction. Scaled down: a shared module and a
	// per-prompt unique module of equal size.
	schema := `<schema name="b">
	  <module name="shared">` + repeatWords("shared context words", 30) + `</module>
	  <module name="u0">` + repeatWords("unique zero text", 30) + `</module>
	  <module name="u1">` + repeatWords("unique one text", 30) + `</module>
	  <module name="u2">` + repeatWords("unique two text", 30) + `</module>
	</schema>`
	c := llamaCache(t)
	mustRegister(t, c, schema)
	prompts := []string{
		`<prompt schema="b"><shared/><u0/>go</prompt>`,
		`<prompt schema="b"><shared/><u1/>go</prompt>`,
		`<prompt schema="b"><shared/><u2/>go</prompt>`,
	}
	_, stats, err := c.ServeBatch(context.Background(), prompts, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Logical: 3×(shared+unique); physical: shared + 3 uniques →
	// savings ≈ 1/3 for equal sizes (plus the tiny anon-free schema).
	if s := stats.Savings(); s < 0.25 || s > 0.45 {
		t.Fatalf("savings %.2f, want ~0.33", s)
	}
}

func repeatWords(s string, n int) string {
	out := s
	for i := 0; i < n; i++ {
		out += " " + s
	}
	return out
}

func TestServeBatchErrors(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	if _, _, err := c.ServeBatch(context.Background(), nil, ServeOpts{}); err == nil {
		t.Fatal("empty batch should error")
	}
	_, _, err := c.ServeBatch(context.Background(), []string{`<prompt schema="travel"><ghost/>x</prompt>`}, ServeOpts{})
	if err == nil {
		t.Fatal("bad prompt should error")
	}
	_, _, err = c.ServeBatch(context.Background(), []string{`<prompt schema="travel"><tokyo/><miami/>x</prompt>`}, ServeOpts{})
	if err == nil {
		t.Fatal("union clash should error in batch too")
	}
}

func TestGenerateBatch(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	prompts := []string{
		`<prompt schema="travel"><miami/>Ask one.</prompt>`,
		`<prompt schema="travel"><tokyo/>Ask two.</prompt>`,
	}
	batch, _, err := c.ServeBatch(context.Background(), prompts, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	gens, err := c.GenerateBatch(context.Background(), batch, model.GenerateOpts{MaxTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 {
		t.Fatalf("gens = %d", len(gens))
	}
	// Batch generation must match solo generation per prompt.
	for i, p := range prompts {
		solo, err := c.Serve(context.Background(), p, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		soloGen, err := c.Generate(context.Background(), solo, model.GenerateOpts{MaxTokens: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(soloGen) != len(gens[i]) {
			t.Fatalf("prompt %d: lengths differ", i)
		}
		for j := range soloGen {
			if soloGen[j] != gens[i][j] {
				t.Fatalf("prompt %d: generation diverges", i)
			}
		}
	}
}
