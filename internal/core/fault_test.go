package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Fault-injection acceptance for the disk tier: injected slow IO,
// transient read errors, corruption and write failures must degrade
// serving gracefully — retried, re-encoded or dropped — never fail a
// request or change its logits.

// spillingPair builds a probe cache (unconstrained, the bit-exact
// reference) and a faulty cache whose device pool holds only half the
// schema, forcing spills to a disk tier wired to the given injector.
func spillingPair(t *testing.T, seed uint64, inj *faultinject.Injector) (probe, faulty *Cache) {
	t.Helper()
	cfg := model.LlamaStyle(coreVocab, seed)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe = NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()
	faulty = NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/2 + 1})),
		WithDiskTier(t.TempDir(), CodecFP32),
		WithFaultInjection(inj),
	)
	mustRegister(t, faulty, travelSchema)
	if faulty.Stats().ModulesSpilled == 0 {
		t.Fatal("setup needs disk spills")
	}
	return probe, faulty
}

// allModulePrompts covers every schema module, so at least one serve is
// guaranteed to read back a spilled blob.
var allModulePrompts = []string{
	`<prompt schema="travel"><trip-plan duration="a week"/><tokyo/>Plan.</prompt>`,
	`<prompt schema="travel"><miami/>Surf?</prompt>`,
}

// serveBoth runs prompt on both caches and fails unless the faulty
// cache's logits are bit-identical to the probe's.
func serveBoth(t *testing.T, probe, faulty *Cache, prompt string) {
	t.Helper()
	want, err := probe.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	got, err := faulty.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatalf("serve under injected faults must not fail: %v", err)
	}
	defer got.Close()
	if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d != 0 {
		t.Fatalf("faulted serve differs from reference by %v", d)
	}
}

// TestFaultTransientReadRetried: a single injected transient read error
// is absorbed by the backoff retry — the serve succeeds bit-identically,
// the recovery is counted as a retry, and nothing is recorded as a load
// error or re-encoded.
func TestFaultTransientReadRetried(t *testing.T) {
	inj := faultinject.New(1)
	probe, faulty := spillingPair(t, 643, inj)
	encodes := faulty.Stats().ModulesEncoded
	inj.Set(FaultPointDiskRead, faultinject.Rule{Err: faultinject.ErrTransient, Times: 1})
	for _, p := range allModulePrompts {
		serveBoth(t, probe, faulty, p)
	}
	st := faulty.Stats()
	if inj.Fired(FaultPointDiskRead) == 0 {
		t.Fatal("injected fault never fired — the serves did not read disk")
	}
	if st.DiskRetries == 0 {
		t.Fatalf("recovered blip not counted as retry: %+v", st)
	}
	if st.DiskLoadErrors != 0 {
		t.Fatalf("a recovered transient must not count as a load error: %+v", st)
	}
	if st.ModulesEncoded != encodes {
		t.Fatalf("transient blip caused re-encode: %d -> %d", encodes, st.ModulesEncoded)
	}
}

// TestFaultTransientOutageDegrades: a transient error that outlasts
// every retry degrades that serve to a re-encode — counted as a load
// error — but the blob survives on disk (it was busy, not bad).
func TestFaultTransientOutageDegrades(t *testing.T) {
	inj := faultinject.New(2)
	probe, faulty := spillingPair(t, 647, inj)
	blobs := faulty.DiskModules()
	// Outlast the retry budget for exactly one module's read.
	inj.Set(FaultPointDiskRead, faultinject.Rule{Err: faultinject.ErrTransient, Times: diskReadAttempts})
	for _, p := range allModulePrompts {
		serveBoth(t, probe, faulty, p)
	}
	st := faulty.Stats()
	if st.DiskLoadErrors == 0 {
		t.Fatalf("exhausted retries must count as a load error: %+v", st)
	}
	if st.DiskRetries != diskReadAttempts-1 {
		t.Fatalf("retries = %d, want %d (full backoff budget)", st.DiskRetries, diskReadAttempts-1)
	}
	// The unread blob was busy, not bad: it must survive (serving churn
	// may spill additional modules, so the count can only grow).
	if faulty.DiskModules() < blobs {
		t.Fatalf("transient outage deleted blobs: %d -> %d", blobs, faulty.DiskModules())
	}
}

// TestFaultCorruptBlobReEncodes: injected corruption invalidates the
// blob — deleted, never retried — and the serve transparently re-encodes
// the module with bit-identical logits.
func TestFaultCorruptBlobReEncodes(t *testing.T) {
	inj := faultinject.New(3)
	probe, faulty := spillingPair(t, 653, inj)
	encodes := faulty.Stats().ModulesEncoded
	inj.Set(FaultPointDiskRead, faultinject.Rule{Err: faultinject.ErrCorrupt, Times: 1})
	for _, p := range allModulePrompts {
		serveBoth(t, probe, faulty, p)
	}
	st := faulty.Stats()
	if st.DiskLoadErrors == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	if st.DiskRetries != 0 {
		t.Fatalf("proven corruption must never be retried, got %d retries", st.DiskRetries)
	}
	if st.ModulesEncoded <= encodes {
		t.Fatal("corrupt module was not re-encoded")
	}
	// Blob deletion itself is pinned by TestCorruptDiskBlobFallsBack
	// (real on-disk corruption); eviction churn during these serves makes
	// the raw entry count uninformative here.
}

// TestFaultWriteFailureFallsToDrop: when every spill write fails
// (injected ENOSPC), eviction falls through to dropping states — serves
// still succeed via re-encode and the books stay clean.
func TestFaultWriteFailureFallsToDrop(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 659)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	inj := faultinject.New(4)
	inj.Set(FaultPointDiskWrite, faultinject.Rule{Err: faultinject.ErrNoSpace})
	faulty := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/2 + 1})),
		WithDiskTier(t.TempDir(), CodecFP32),
		WithFaultInjection(inj),
	)
	mustRegister(t, faulty, travelSchema)
	st := faulty.Stats()
	if inj.Fired(FaultPointDiskWrite) == 0 {
		t.Fatal("write fault never fired — no spill was attempted")
	}
	if st.ModulesSpilled != 0 {
		t.Fatalf("spills succeeded under full-disk injection: %+v", st)
	}
	if st.ModulesEvicted == 0 {
		t.Fatalf("setup needs evictions: %+v", st)
	}
	for _, p := range allModulePrompts {
		serveBoth(t, probe, faulty, p)
	}
	if st := faulty.Stats(); st.TierAccountErrors != 0 {
		t.Fatalf("tier accounting drifted under write faults: %+v", st)
	}
}

// TestFaultSlowReadDelaysNotFails: a delay-only rule models slow IO —
// the serve blocks for the injected latency and then succeeds normally.
func TestFaultSlowReadDelaysNotFails(t *testing.T) {
	inj := faultinject.New(5)
	probe, faulty := spillingPair(t, 661, inj)
	const stall = 30 * time.Millisecond
	inj.Set(FaultPointDiskRead, faultinject.Rule{Delay: stall, Times: 1})
	start := time.Now()
	for _, p := range allModulePrompts {
		serveBoth(t, probe, faulty, p)
	}
	if inj.Fired(FaultPointDiskRead) == 0 {
		t.Fatal("delay rule never fired")
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("injected %v stall not observed: serves took %v", stall, elapsed)
	}
	st := faulty.Stats()
	if st.DiskLoadErrors != 0 || st.DiskRetries != 0 {
		t.Fatalf("pure delay must not count as error or retry: %+v", st)
	}
}
