package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 301)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewCache(m)
	mustRegister(t, orig, travelSchema)

	var buf bytes.Buffer
	if err := orig.SaveSchemaStates("travel", &buf); err != nil {
		t.Fatal(err)
	}

	restored := NewCache(m)
	if _, err := restored.RegisterSchemaFromSnapshot(travelSchema, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Stats().ModulesRestored != 4 {
		t.Fatalf("restored = %d", restored.Stats().ModulesRestored)
	}
	// Restoring skips encoding entirely (scaffolds aside; travel has none).
	if restored.Stats().ModulesEncoded != 0 {
		t.Fatalf("encoded = %d, want 0 on restore", restored.Stats().ModulesEncoded)
	}

	prompt := `<prompt schema="travel"><trip-plan duration="six days"/><tokyo/>Plan it.</prompt>`
	want, err := orig.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d != 0 {
		t.Fatalf("snapshot-restored serve differs by %v", d)
	}
}

func TestSnapshotIntoQuantizedCache(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 307)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewCache(m)
	mustRegister(t, orig, travelSchema)
	var buf bytes.Buffer
	if err := orig.SaveSchemaStates("travel", &buf); err != nil {
		t.Fatal(err)
	}
	q := NewCache(m, WithInt8Modules())
	if _, err := q.RegisterSchemaFromSnapshot(travelSchema, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Pool reflects quantized storage even from a full-precision snapshot.
	if q.PoolUsed() >= orig.PoolUsed() {
		t.Fatalf("quantized restore used %d >= %d", q.PoolUsed(), orig.PoolUsed())
	}
	if _, err := q.Serve(context.Background(), `<prompt schema="travel"><miami/>Surf?</prompt>`, ServeOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSchemaMismatch(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 311)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewCache(m)
	mustRegister(t, orig, travelSchema)
	var buf bytes.Buffer
	if err := orig.SaveSchemaStates("travel", &buf); err != nil {
		t.Fatal(err)
	}
	// Different schema text (changed module content) must be rejected.
	altered := strings.Replace(travelSchema, "superb food", "superb food and also trains", 1)
	fresh := NewCache(m)
	if _, err := fresh.RegisterSchemaFromSnapshot(altered, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("altered schema should reject stale snapshot")
	}
}

func TestSnapshotCorruptHeader(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 313)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(m)
	if _, err := c.RegisterSchemaFromSnapshot(travelSchema, strings.NewReader("garbage bytes")); err == nil {
		t.Fatal("garbage snapshot should fail")
	}
}

func TestSnapshotUnknownSchema(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 317)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(m)
	var buf bytes.Buffer
	if err := c.SaveSchemaStates("ghost", &buf); err == nil {
		t.Fatal("saving unknown schema should fail")
	}
}

func TestSnapshotWithScaffoldRebuilds(t *testing.T) {
	schema := `<schema name="s">
	  <module name="a">first clause words here</module>
	  <module name="b">second clause words there</module>
	  <scaffold name="ab" modules="a b"/>
	</schema>`
	cfg := model.LlamaStyle(coreVocab, 331)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewCache(m)
	mustRegister(t, orig, schema)
	var buf bytes.Buffer
	if err := orig.SaveSchemaStates("s", &buf); err != nil {
		t.Fatal(err)
	}
	restored := NewCache(m)
	if _, err := restored.RegisterSchemaFromSnapshot(schema, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	prompt := `<prompt schema="s"><a/><b/>Relate them.</prompt>`
	want, err := orig.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Scaffolds) != 1 {
		t.Fatal("scaffold not rebuilt on restore")
	}
	if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d > 1e-5 {
		t.Fatalf("scaffolded restore differs by %v", d)
	}
}
