package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/tensor"
)

// minedPrompt is a prompt whose instruction text is long enough for the
// default-free mining thresholds used in these tests, and which supplies
// a parameter argument so the mined prefix covers excluded-position rows
// too (the trickiest part of the splice).
const minedPrompt = `<prompt schema="travel"><trip-plan duration="three days"/><miami/>List the best surf spots and beach towns to visit on a relaxed coastal trip.</prompt>`

func miningCache(t *testing.T, cfg model.Config, extra ...Option) *Cache {
	t.Helper()
	opts := append([]Option{WithModuleMining(MiningOpts{MinHits: 2, MinTokens: 4})}, extra...)
	c := newTestCache(t, cfg, opts...)
	mustRegister(t, c, travelSchema)
	return c
}

// serveMined serves minedPrompt and returns the closed-over result;
// the caller owns Close.
func serveMined(t *testing.T, c *Cache) *ServeResult {
	t.Helper()
	res, err := c.Serve(context.Background(), minedPrompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMinedServeBitIdentical is the golden test: serves of an identical
// prompt before and after a mined-prefix hit must produce bit-identical
// logits and token streams, on both the RoPE and ALiBi (explicit
// position gap) architectures.
func TestMinedServeBitIdentical(t *testing.T) {
	for _, cfg := range []model.Config{
		model.LlamaStyle(coreVocab, 77),
		model.MPTStyle(coreVocab, 77), // ALiBi: distances from explicit position IDs
	} {
		t.Run(cfg.Name, func(t *testing.T) {
			c := miningCache(t, cfg)
			cold := serveMined(t, c) // observation 1: no mined state exists yet
			defer cold.Close()
			warm := serveMined(t, c) // observation 2: nominates + promotes
			warm.Close()
			if got := c.MiningStats().Promotions; got < 1 {
				t.Fatalf("promotions = %d after two identical serves", got)
			}

			hit := serveMined(t, c) // must splice the mined prefix
			defer hit.Close()
			st := c.MiningStats()
			if st.Hits < 1 || st.HitTokens < 1 {
				t.Fatalf("mined stats after third serve: hits=%d hitTokens=%d", st.Hits, st.HitTokens)
			}
			if hit.NewTokens >= cold.NewTokens {
				t.Fatalf("mined hit prefilled %d tokens, cold serve %d", hit.NewTokens, cold.NewTokens)
			}
			if !strings.Contains(strings.Join(hit.Modules, ","), minedPrefixTag) {
				t.Fatalf("mined hit did not report the module: %v", hit.Modules)
			}

			if d := tensor.MaxAbsDiff(cold.Logits, hit.Logits); d != 0 {
				t.Fatalf("mined-hit logits differ from cold serve by %v", d)
			}
			gCold, err := c.Generate(context.Background(), cold, model.GenerateOpts{MaxTokens: 8})
			if err != nil {
				t.Fatal(err)
			}
			gHit, err := c.Generate(context.Background(), hit, model.GenerateOpts{MaxTokens: 8})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(gCold) != fmt.Sprint(gHit) {
				t.Fatalf("mined generation %v != cold %v", gHit, gCold)
			}
		})
	}
}

func TestMiningStatsSnapshot(t *testing.T) {
	c := llamaCache(t)
	if c.MiningEnabled() {
		t.Fatal("mining enabled without the option")
	}
	if st := c.MiningStats(); st.Enabled {
		t.Fatalf("zero snapshot reports enabled: %+v", st)
	}

	mc := miningCache(t, model.LlamaStyle(coreVocab, 77))
	for i := 0; i < 3; i++ {
		serveMined(t, mc).Close()
	}
	st := mc.MiningStats()
	if !st.Enabled || st.Observed != 3 || st.Promotions < 1 || st.LiveModules < 1 || st.Hits < 1 {
		t.Fatalf("mining stats = %+v", st)
	}
}

// TestMinedPrefixDiffersByArguments: the serving class captures excluded
// positions, so prompts differing only in a supplied argument must not
// share a mined prefix (their streams differ anyway), while the mined
// module stays class-correct.
func TestMinedPrefixDiffersByArguments(t *testing.T) {
	c := miningCache(t, model.LlamaStyle(coreVocab, 77))
	other := `<prompt schema="travel"><trip-plan duration="two weeks"/><miami/>List the best surf spots and beach towns to visit on a relaxed coastal trip.</prompt>`
	for i := 0; i < 3; i++ {
		serveMined(t, c).Close()
	}
	if st := c.MiningStats(); st.Hits < 1 {
		t.Fatalf("no mined hit on repeated identical prompt: %+v", st)
	}
	before := c.MiningStats().Hits
	res, err := c.Serve(context.Background(), other, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if after := c.MiningStats().Hits; after != before {
		t.Fatalf("different-argument prompt hit a mined prefix (%d -> %d)", before, after)
	}
}

// TestMinedBatchServe: serveShared observes and splices too, and the
// mined part flows through the batch block registry.
func TestMinedBatchServe(t *testing.T) {
	c := miningCache(t, model.LlamaStyle(coreVocab, 77))
	solo := serveMined(t, c)
	defer solo.Close()

	prompts := []string{minedPrompt, minedPrompt, minedPrompt, minedPrompt}
	results, _, err := c.ServeBatch(context.Background(), prompts, ServeOpts{BatchWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if d := tensor.MaxAbsDiff(solo.Logits, res.Logits); d != 0 {
			t.Fatalf("batch[%d] logits differ from solo serve by %v", i, d)
		}
		res.Close()
	}
	if st := c.MiningStats(); st.Promotions < 1 || st.Hits < 1 {
		t.Fatalf("batch traffic not mined: %+v", st)
	}
}

// TestMinedModuleEvictionWaterfall: a mined module under memory pressure
// demotes to the host tier, spills to disk, and reads back on a hit —
// with logits still bit-identical.
func TestMinedModuleEvictionWaterfall(t *testing.T) {
	m, err := model.New(model.LlamaStyle(coreVocab, 77))
	if err != nil {
		t.Fatal(err)
	}
	// Size the pool from an unbounded twin so the mined module plus the
	// schema's working set cannot all stay resident.
	probe := NewCache(m, WithModuleMining(MiningOpts{MinHits: 2, MinTokens: 4}))
	if _, err := probe.RegisterSchema(travelSchema); err != nil {
		t.Fatal(err)
	}
	need := probe.PoolUsed()

	c := NewCache(m,
		WithModuleMining(MiningOpts{MinHits: 2, MinTokens: 4}),
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need + need/4})),
		WithDiskTier(t.TempDir(), CodecFP32),
	)
	mustRegister(t, c, travelSchema)

	cold := serveMined(t, c)
	defer cold.Close()
	serveMined(t, c).Close() // promotes
	if c.MiningStats().Promotions < 1 {
		t.Fatal("no promotion under memory pressure")
	}
	// Churn the cache so the mined module is evicted (spilling to disk).
	if err := c.Prefetch("travel", "trip-plan", "tokyo", "miami"); err != nil {
		t.Fatal(err)
	}
	hit := serveMined(t, c)
	defer hit.Close()
	st := c.MiningStats()
	if st.Hits < 1 {
		t.Fatalf("no mined hit after eviction churn: %+v", st)
	}
	if d := tensor.MaxAbsDiff(cold.Logits, hit.Logits); d != 0 {
		t.Fatalf("post-eviction mined hit differs from cold serve by %v", d)
	}
}

// TestMinedDemotionGC: with a short half-life, a mined module that stops
// matching traffic is garbage-collected and stops being reported live.
func TestMinedDemotionGC(t *testing.T) {
	c := newTestCache(t, model.LlamaStyle(coreVocab, 77),
		WithModuleMining(MiningOpts{MinHits: 2, MinTokens: 4, HalfLife: 4}))
	mustRegister(t, c, travelSchema)
	serveMined(t, c).Close()
	serveMined(t, c).Close()
	if c.MiningStats().Promotions < 1 {
		t.Fatal("no promotion")
	}
	// Unrelated traffic decays the promoted node cold.
	for i := 0; i < 64 && c.MiningStats().Demotions == 0; i++ {
		src := fmt.Sprintf(`<prompt schema="travel"><tokyo/>Unrelated question number %d about temples and food markets.</prompt>`, i)
		res, err := c.Serve(context.Background(), src, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
	}
	st := c.MiningStats()
	if st.Demotions < 1 {
		t.Fatalf("cold mined module never GC'd: %+v", st)
	}
	if st.LiveModules != int(st.Promotions)-st.Demotions {
		t.Fatalf("live %d != promotions %d - demotions %d", st.LiveModules, st.Promotions, st.Demotions)
	}
}

// TestMinedSaveAllRoundTrip: SaveAll persists mined modules with their
// prefix; OpenDir with mining adopts them (first serve is a mined hit,
// bit-identical); OpenDir without mining skips them with a counted stat.
func TestMinedSaveAllRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := model.New(model.LlamaStyle(coreVocab, 77))
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(m, WithModuleMining(MiningOpts{MinHits: 2, MinTokens: 4}))
	if _, err := c.RegisterSchema(travelSchema); err != nil {
		t.Fatal(err)
	}
	cold := serveMined(t, c)
	serveMined(t, c).Close()
	if c.MiningStats().Promotions < 1 {
		t.Fatal("no promotion before snapshot")
	}
	if err := c.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	coldLogits := append([]float32(nil), cold.Logits...)
	cold.Close()

	restored, err := OpenDir(m, dir, WithModuleMining(MiningOpts{MinHits: 2, MinTokens: 4}))
	if err != nil {
		t.Fatal(err)
	}
	hit := serveMined(t, restored)
	defer hit.Close()
	st := restored.MiningStats()
	if st.Hits < 1 || st.LiveModules < 1 {
		t.Fatalf("restored cache did not hit the persisted mined module: %+v", st)
	}
	if d := tensor.MaxAbsDiff(coldLogits, hit.Logits); d != 0 {
		t.Fatalf("restored mined hit differs from pre-snapshot serve by %v", d)
	}

	plain, err := OpenDir(m, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.Stats().MinedSnapshotSkipped; got < 1 {
		t.Fatalf("mining-disabled restore did not count skipped mined modules: %d", got)
	}
	res := serveMined(t, plain)
	defer res.Close()
	if d := tensor.MaxAbsDiff(coldLogits, res.Logits); d != 0 {
		t.Fatalf("mining-disabled restore serves differently by %v", d)
	}
}

// TestMinedReRegisterSchemaDropsModules: replacing a schema forgets its
// observed traffic and its mined modules.
func TestMinedReRegisterSchemaDropsModules(t *testing.T) {
	c := miningCache(t, model.LlamaStyle(coreVocab, 77))
	serveMined(t, c).Close()
	serveMined(t, c).Close()
	if c.MiningStats().LiveModules < 1 {
		t.Fatal("no live mined module")
	}
	mustRegister(t, c, travelSchema)
	st := c.MiningStats()
	if st.LiveModules != 0 || st.Classes != 0 {
		t.Fatalf("re-register left mined state behind: %+v", st)
	}
	// Traffic after the re-register mines from scratch, without error.
	serveMined(t, c).Close()
	serveMined(t, c).Close()
	if c.MiningStats().Promotions < 2 {
		t.Fatalf("re-mining after re-register failed: %+v", c.MiningStats())
	}
}

// TestMinedConcurrentServes hammers mining with concurrent identical and
// divergent serves plus eviction churn; run under -race this is the
// issue's race-cleanliness gate. Every result must stay bit-identical to
// the cold serve of its prompt.
func TestMinedConcurrentServes(t *testing.T) {
	m, err := model.New(model.LlamaStyle(coreVocab, 77))
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	if _, err := probe.RegisterSchema(travelSchema); err != nil {
		t.Fatal(err)
	}
	need := probe.PoolUsed()
	c := NewCache(m,
		WithModuleMining(MiningOpts{MinHits: 2, MinTokens: 4}),
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need + need/3})),
		WithHostPool(memory.NewPool(memory.Device{Name: "dram", Kind: memory.DRAM, Capacity: need})),
		WithDiskTier(t.TempDir(), CodecFP32),
	)
	mustRegister(t, c, travelSchema)

	prompts := []string{
		minedPrompt,
		`<prompt schema="travel"><tokyo/>Plan three days of temples, markets and quiet gardens for a first visit.</prompt>`,
	}
	golden := make([][]float32, len(prompts))
	for i, src := range prompts {
		res, err := c.Serve(context.Background(), src, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		golden[i] = append([]float32(nil), res.Logits...)
		res.Close()
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				idx := (w + i) % len(prompts)
				res, err := c.Serve(context.Background(), prompts[idx], ServeOpts{})
				if err != nil {
					errs <- err
					return
				}
				if d := tensor.MaxAbsDiff(golden[idx], res.Logits); d != 0 {
					errs <- fmt.Errorf("worker %d serve %d: logits drift %v", w, i, d)
					res.Close()
					return
				}
				res.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := c.MiningStats(); st.Promotions < 1 || st.Hits < 1 {
		t.Fatalf("concurrent traffic not mined: %+v", st)
	}
}
