package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/rng"
)

// Admission-control unit tests: the bounded queue itself (grant, shed,
// cancel, priority, exact count reconciliation) plus the deadline
// taxonomy wrapping and the decode scheduler's SLO-ordered lane pull.

func TestParseSLOClass(t *testing.T) {
	cases := []struct {
		in   string
		want SLOClass
		ok   bool
	}{
		{"", SLOInteractive, true},
		{"interactive", SLOInteractive, true},
		{"batch", SLOBatch, true},
		{"Batch", SLOInteractive, false},
		{"bulk", SLOInteractive, false},
	}
	for _, c := range cases {
		got, err := ParseSLOClass(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseSLOClass(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && !errors.Is(err, ErrBadPrompt) {
			t.Fatalf("ParseSLOClass(%q) err = %v, want errors.Is ErrBadPrompt", c.in, err)
		}
	}
	if SLOInteractive.String() != "interactive" || SLOBatch.String() != "batch" {
		t.Fatalf("String() = %q, %q", SLOInteractive, SLOBatch)
	}
}

func TestSLOContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := SLOFromContext(ctx); got != SLOInteractive {
		t.Fatalf("untagged context class = %v, want interactive default", got)
	}
	if got := SLOFromContext(WithSLOClass(ctx, SLOBatch)); got != SLOBatch {
		t.Fatalf("tagged context class = %v, want batch", got)
	}
}

func TestWrapDeadline(t *testing.T) {
	if wrapDeadline(nil) != nil {
		t.Fatal("wrapDeadline(nil) != nil")
	}
	plain := errors.New("boom")
	if wrapDeadline(plain) != plain {
		t.Fatal("plain errors must pass through untouched")
	}
	if got := wrapDeadline(context.Canceled); got != context.Canceled {
		t.Fatalf("Canceled must pass through, got %v", got)
	}
	wrapped := wrapDeadline(context.DeadlineExceeded)
	if !errors.Is(wrapped, ErrDeadline) || !errors.Is(wrapped, context.DeadlineExceeded) {
		t.Fatalf("wrapped = %v, want both ErrDeadline and DeadlineExceeded", wrapped)
	}
	// Idempotent: an already-tagged chain is not tagged again.
	if again := wrapDeadline(wrapped); again != wrapped {
		t.Fatalf("double wrap: %v", again)
	}
}

func TestAdmitWithoutAdmissionIsNoop(t *testing.T) {
	c := llamaCache(t)
	if c.AdmissionEnabled() {
		t.Fatal("admission enabled without WithAdmission")
	}
	if st := c.AdmissionStats(); st.Enabled {
		t.Fatalf("stats enabled without WithAdmission: %+v", st)
	}
	for i := 0; i < 100; i++ {
		if err := c.Admit(context.Background(), SLOInteractive); err != nil {
			t.Fatal(err)
		}
	}
	// No releases needed: nothing was bounded.
}

func TestAdmitFastPathGrantAndRelease(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 2, MaxQueue: 2})
	ctx := context.Background()
	if err := a.acquire(ctx, SLOInteractive); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx, SLOBatch); err != nil {
		t.Fatal(err)
	}
	st := a.stats()
	if st.Inflight != 2 || st.QueueDepth != 0 {
		t.Fatalf("inflight=%d depth=%d, want 2/0", st.Inflight, st.QueueDepth)
	}
	a.release(SLOInteractive)
	a.release(SLOBatch)
	st = a.stats()
	if st.Inflight != 0 || st.Interactive.Completed != 1 || st.Batch.Completed != 1 {
		t.Fatalf("after release: %+v", st)
	}
}

// fillSlots occupies every concurrent slot and returns a func that
// releases them all.
func fillSlots(t *testing.T, a *admission) func() {
	t.Helper()
	for i := 0; i < a.cfg.MaxConcurrent; i++ {
		if err := a.acquire(context.Background(), SLOInteractive); err != nil {
			t.Fatal(err)
		}
	}
	return func() {
		for i := 0; i < a.cfg.MaxConcurrent; i++ {
			a.release(SLOInteractive)
		}
	}
}

func TestAdmitShedsWhenQueueFull(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1})
	drain := fillSlots(t, a)

	// One waiter fills the queue.
	waiterCtx, stopWaiter := context.WithCancel(context.Background())
	defer stopWaiter()
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(waiterCtx, SLOInteractive) }()
	waitFor(t, func() bool { return a.stats().QueueDepth == 1 })

	// The next arrival is shed immediately with the typed error.
	err := a.acquire(context.Background(), SLOBatch)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want errors.Is ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("no *OverloadError in chain: %v", err)
	}
	if oe.RetryAfter <= 0 || oe.QueueDepth != 1 {
		t.Fatalf("hint = %+v, want positive RetryAfter and depth 1", oe)
	}
	st := a.stats()
	if st.Batch.Shed != 1 {
		t.Fatalf("shed count: %+v", st)
	}

	// Releasing the slot admits the queued waiter (slot handoff).
	drain()
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
	a.release(SLOInteractive)
}

func TestAdmitDeadlineWhileQueuedIsErrDeadline(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4})
	drain := fillSlots(t, a)
	defer drain()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := a.acquire(ctx, SLOInteractive)
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadline wrapping DeadlineExceeded", err)
	}
	st := a.stats()
	if st.Interactive.Canceled != 1 || st.QueueDepth != 0 {
		t.Fatalf("canceled waiter not removed: %+v", st)
	}
}

func TestAdmitCancelWhileQueuedIsCanceledNotDeadline(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4})
	drain := fillSlots(t, a)
	defer drain()

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- a.acquire(ctx, SLOBatch) }()
	waitFor(t, func() bool { return a.stats().QueueDepth == 1 })
	cancel()
	err := <-got
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Fatalf("a cancel is not a deadline: %v", err)
	}
}

// TestAdmitInteractiveBeforeBatch: with a batch request queued first and
// an interactive one second, the freed slot goes to the interactive
// request — priority lives in the release path, not arrival order.
func TestAdmitInteractiveBeforeBatch(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 4})
	drain := fillSlots(t, a)

	order := make(chan SLOClass, 2)
	enqueue := func(class SLOClass) {
		go func() {
			if err := a.acquire(context.Background(), class); err == nil {
				order <- class
			}
		}()
	}
	enqueue(SLOBatch)
	waitFor(t, func() bool { return a.stats().Batch.QueueDepth == 1 })
	enqueue(SLOInteractive)
	waitFor(t, func() bool { return a.stats().Interactive.QueueDepth == 1 })

	drain() // hand the slot to the queue, interactive first
	if first := <-order; first != SLOInteractive {
		t.Fatalf("first grant went to %v, want interactive", first)
	}
	a.release(SLOInteractive)
	if second := <-order; second != SLOBatch {
		t.Fatalf("second grant went to %v, want batch", second)
	}
	a.release(SLOBatch)
	if st := a.stats(); st.Inflight != 0 || st.QueueDepth != 0 {
		t.Fatalf("not quiescent: %+v", st)
	}
}

// TestAdmissionReconciliation hammers the queue from many goroutines
// with mixed classes, random hold times and random cancellation, then
// checks the books balance exactly: every arrival is exactly one of
// admitted, shed or canceled; every admit has a matching completion;
// nothing is left inflight or queued.
func TestAdmissionReconciliation(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 3, MaxQueue: 5})
	const workers = 16
	const perWorker = 40

	var admitted, shed, canceled int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < perWorker; i++ {
				class := SLOClass(r.Intn(int(numSLOClasses)))
				ctx, cancel := context.WithCancel(context.Background())
				if r.Intn(4) == 0 {
					// A quarter of arrivals cancel at a random point —
					// before, during or after the queue wait. The delay is
					// drawn here: the worker's RNG is not goroutine-safe.
					delay := time.Duration(r.Intn(300)) * time.Microsecond
					go func() {
						time.Sleep(delay)
						cancel()
					}()
				}
				err := a.acquire(ctx, class)
				switch {
				case err == nil:
					atomic.AddInt64(&admitted, 1)
					time.Sleep(time.Duration(r.Intn(200)) * time.Microsecond)
					a.release(class)
				case errors.Is(err, ErrOverloaded):
					atomic.AddInt64(&shed, 1)
				case errors.Is(err, context.Canceled):
					atomic.AddInt64(&canceled, 1)
				default:
					t.Errorf("unexpected acquire error: %v", err)
				}
				cancel()
			}
		}(uint64(w) + 1)
	}
	wg.Wait()

	st := a.stats()
	total := func(f func(AdmissionClassStats) int64) int64 {
		return f(st.Interactive) + f(st.Batch)
	}
	if got := admitted + shed + canceled; got != workers*perWorker {
		t.Fatalf("arrivals unaccounted: %d of %d", got, workers*perWorker)
	}
	if got := total(func(c AdmissionClassStats) int64 { return c.Admitted }); got != admitted {
		t.Fatalf("stats admitted %d, callers saw %d", got, admitted)
	}
	if got := total(func(c AdmissionClassStats) int64 { return c.Shed }); got != shed {
		t.Fatalf("stats shed %d, callers saw %d", got, shed)
	}
	if got := total(func(c AdmissionClassStats) int64 { return c.Canceled }); got != canceled {
		t.Fatalf("stats canceled %d, callers saw %d", got, canceled)
	}
	adm := total(func(c AdmissionClassStats) int64 { return c.Admitted })
	comp := total(func(c AdmissionClassStats) int64 { return c.Completed })
	if adm != comp {
		t.Fatalf("admitted %d != completed %d at quiescence", adm, comp)
	}
	if st.Inflight != 0 || st.QueueDepth != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
}

func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 2, MaxQueue: 100})
	a.mu.Lock()
	a.ewmaNs = float64(100 * time.Millisecond)
	a.waiting = 4
	shallow := a.retryAfterLocked()
	a.waiting = 40
	deep := a.retryAfterLocked()
	a.mu.Unlock()
	// (waiting+1) × svc / slots: 5×100ms/2 and 41×100ms/2.
	if shallow != 250*time.Millisecond || deep != 2050*time.Millisecond {
		t.Fatalf("retry-after = %v / %v, want 250ms / 2.05s", shallow, deep)
	}
}

// TestAdmissionContextDeadline: the per-class deadline is applied to the
// request context and expiry surfaces through the engine as ErrDeadline.
func TestAdmissionContextDeadline(t *testing.T) {
	c := llamaCache(t, WithAdmission(AdmissionConfig{
		MaxConcurrent:       2,
		InteractiveDeadline: time.Nanosecond, // expires before any work
		BatchDeadline:       time.Hour,
	}))
	mustRegister(t, c, travelSchema)

	ctx, cancel := c.AdmissionContext(context.Background(), SLOInteractive)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("interactive context has no deadline")
	}
	time.Sleep(time.Millisecond) // let the nanosecond deadline lapse
	_, err := c.Serve(ctx, `<prompt schema="travel"><miami/>Hi.</prompt>`, ServeOpts{})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired serve: got %v, want errors.Is ErrDeadline", err)
	}

	bctx, bcancel := c.AdmissionContext(context.Background(), SLOBatch)
	defer bcancel()
	dl, ok := bctx.Deadline()
	if !ok || time.Until(dl) < 30*time.Minute {
		t.Fatalf("batch deadline = %v %v, want ~1h out", dl, ok)
	}
}

// TestSchedulerInteractiveLaneBeforeBatch: with a single-lane scheduler
// saturated by a streaming request, a batch generation queued FIRST must
// still decode AFTER an interactive generation queued second — the
// scheduler pulls pending lanes interactive-first.
func TestSchedulerInteractiveLaneBeforeBatch(t *testing.T) {
	c := llamaCache(t, WithDecodeScheduler(1))
	mustRegister(t, c, travelSchema)
	ctx := context.Background()

	serve := func(text string) *ServeResult {
		res, err := c.Serve(ctx, fmt.Sprintf(`<prompt schema="travel"><miami/>%s</prompt>`, text), ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	resA, resB, resC := serve("Blocker."), serve("Batch job."), serve("Interactive.")
	defer resA.Close()
	defer resB.Close()
	defer resC.Close()

	// First-token emissions run on the single scheduler goroutine, so
	// their order IS the lane-admission order — unlike completion
	// notifications, which race through separate waiter goroutines.
	order := make(chan SLOClass, 2)
	var wg sync.WaitGroup
	launch := func(res *ServeResult, class SLOClass, start chan struct{}) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			gctx := WithSLOClass(ctx, class)
			first := true
			_, err := c.GenerateStream(gctx, res, model.GenerateOpts{MaxTokens: 4, StopToken: -1}, func(string) bool {
				if first {
					first = false
					order <- class
				}
				return true
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	startB, startC := make(chan struct{}), make(chan struct{})
	launch(resB, SLOBatch, startB)
	launch(resC, SLOInteractive, startC)

	// The blocker holds the only lane; from inside its stream callback
	// (the run loop is parked there) release batch first, then
	// interactive, and wait until each is visibly queued — so both are
	// pending, in batch-first arrival order, before the lane frees.
	released := false
	_, err := c.GenerateStream(ctx, resA, model.GenerateOpts{MaxTokens: 6, StopToken: -1}, func(string) bool {
		if !released {
			released = true
			close(startB)
			waitFor(t, func() bool { return c.SchedStats().QueueDepth >= 1 })
			close(startC)
			waitFor(t, func() bool { return c.SchedStats().QueueDepth >= 2 })
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if first := <-order; first != SLOInteractive {
		t.Fatalf("first admitted lane was %v, want interactive despite batch arriving first", first)
	}
	if second := <-order; second != SLOBatch {
		t.Fatalf("second admitted lane was %v, want batch", second)
	}
}

// waitFor polls cond with a deadline; admission grants travel through
// goroutine handoffs, so tests observe them with bounded polling rather
// than sleeps.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
