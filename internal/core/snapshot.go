package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/kvcache"
	"repro/internal/pml"
	"repro/internal/quant"
)

// Schema-state snapshots: prompt module encoding (§3.3) is the one-time
// cost Prompt Cache pays per schema. A serving system restarting should
// not re-run it; SaveSchemaStates/RegisterSchemaFromSnapshot persist and
// restore every encoded module's attention states.

const (
	snapMagic   = 0x50435353 // "PCSS"
	snapVersion = 1
)

// SaveSchemaStates writes all encoded module states of a registered
// schema. Evicted modules are re-encoded first so the snapshot is
// complete; quantized storage is materialized to full precision.
func (c *Cache) SaveSchemaStates(schema string, w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.schemas[schema]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSchema, schema)
	}
	bw := bufio.NewWriter(w)
	for _, v := range []uint32{snapMagic, snapVersion, uint32(len(e.layout.Order))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, name := range e.layout.Order {
		em, err := c.getModuleLocked(schema, e, name)
		if err != nil {
			return err
		}
		if err := writeString(bw, name); err != nil {
			return err
		}
		if _, err := em.States().WriteTo(bw); err != nil {
			return fmt.Errorf("core: snapshot %s/%s: %w", schema, name, err)
		}
	}
	return bw.Flush()
}

// RegisterSchemaFromSnapshot registers a schema using previously saved
// module states instead of re-encoding. The snapshot must match the
// schema's layout (module roster and token counts) or an error is
// returned.
func (c *Cache) RegisterSchemaFromSnapshot(src string, r io.Reader) (*pml.Layout, error) {
	schema, err := pml.ParseSchema(src)
	if err != nil {
		return nil, err
	}
	layout, err := pml.Compile(schema, c.tok, c.tmpl)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(r)
	var hdr [3]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("core: snapshot header: %w", err)
		}
	}
	if hdr[0] != snapMagic {
		return nil, fmt.Errorf("%w: not a schema snapshot (magic %#x)", ErrBadSnapshot, hdr[0])
	}
	if hdr[1] != snapVersion {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrBadSnapshot, hdr[1])
	}
	if int(hdr[2]) != len(layout.Order) {
		return nil, fmt.Errorf("%w: snapshot has %d modules, schema %q has %d", ErrBadSnapshot, hdr[2], schema.Name, len(layout.Order))
	}

	entry := &schemaEntry{
		schema:    schema,
		layout:    layout,
		modules:   make(map[string]*EncodedModule),
		scaffolds: make(map[string]*EncodedScaffold),
		src:       src,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.schemas[schema.Name]; ok {
		c.dropSchemaLocked(schema.Name, old)
	}
	c.schemas[schema.Name] = entry
	// A failed restore must not leave a half-populated schema behind for
	// concurrent serves to trip over.
	fail := func(err error) (*pml.Layout, error) {
		c.dropSchemaLocked(schema.Name, entry)
		return nil, err
	}
	for i := 0; i < int(hdr[2]); i++ {
		name, err := readString(br)
		if err != nil {
			return fail(fmt.Errorf("core: snapshot module %d: %w", i, err))
		}
		ml, ok := layout.Modules[name]
		if !ok {
			return fail(fmt.Errorf("%w: snapshot module %q not in schema %q", ErrBadSnapshot, name, schema.Name))
		}
		kv, err := kvcache.ReadFrom(br)
		if err != nil {
			return fail(fmt.Errorf("core: snapshot states for %q: %w", name, err))
		}
		toks, _ := moduleTokens(ml)
		if kv.Len() != len(toks) {
			return fail(fmt.Errorf("%w: snapshot %q has %d tokens, layout expects %d (schema text or tokenizer changed)",
				ErrBadSnapshot, name, kv.Len(), len(toks)))
		}
		if kv.NLayers != c.m.Cfg.NLayers || kv.KVDim != c.m.Cfg.KVDim() {
			return fail(fmt.Errorf("%w: snapshot %q shaped (%d,%d), model needs (%d,%d)",
				ErrBadSnapshot, name, kv.NLayers, kv.KVDim, c.m.Cfg.NLayers, c.m.Cfg.KVDim()))
		}
		em := &EncodedModule{Name: name, Schema: schema.Name, Layout: ml}
		if c.compress && kv.Len() > 0 {
			em.Quant = quant.Compress(kv)
		} else {
			em.KV = kv
		}
		key := schema.Name + "/" + name
		if err := c.reserveLocked(key, em.Bytes()); err != nil {
			return fail(err)
		}
		entry.modules[name] = em
		c.policy.Touch(key, em.Bytes())
		c.stats.ModulesRestored++
	}
	// Scaffolds are cheap relative to modules and depend on co-encoding;
	// rebuild them rather than snapshotting.
	for _, sc := range schema.Scaffolds {
		if err := c.encodeScaffoldLocked(schema.Name, entry, sc); err != nil {
			return fail(err)
		}
	}
	return layout, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

const maxNameLen = 1 << 16

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", fmt.Errorf("%w: implausible name length %d", ErrBadSnapshot, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
