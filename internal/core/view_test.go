package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/kvcache"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/pml"
	"repro/internal/tensor"
)

// TestServeZeroCopyAliasing is the acceptance check for the zero-copy
// serve path: a cached serve's KV must be a segmented view whose K/V
// buffers alias the encoded modules' own storage — pointer-identical,
// not copied rows.
func TestServeZeroCopyAliasing(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	res, err := c.Serve(context.Background(), `<prompt schema="travel"><miami/>Surf?</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	seq, ok := res.KV.(*kvcache.Seq)
	if !ok {
		t.Fatalf("cached serve KV is %T, want *kvcache.Seq", res.KV)
	}
	if seq.ViewLen() != res.CachedTokens {
		t.Fatalf("view rows %d != cached tokens %d", seq.ViewLen(), res.CachedTokens)
	}
	if seq.Segments() != 2 { // _anon0, miami
		t.Fatalf("segments = %d, want 2", seq.Segments())
	}

	c.mu.Lock()
	anon := c.schemas["travel"].modules["_anon0"].KV
	miami := c.schemas["travel"].modules["miami"].KV
	c.mu.Unlock()

	for l := 0; l < anon.NLayers; l++ {
		segs := seq.AppendSegments(nil, l, seq.ViewLen())
		if len(segs) != 2 {
			t.Fatalf("layer %d: %d segments", l, len(segs))
		}
		if &segs[0].K[0] != &anon.K[l][0] || &segs[0].V[0] != &anon.V[l][0] {
			t.Fatalf("layer %d: segment 0 does not alias _anon0 module storage", l)
		}
		if &segs[1].K[0] != &miami.K[l][0] || &segs[1].V[0] != &miami.V[l][0] {
			t.Fatalf("layer %d: segment 1 does not alias miami module storage", l)
		}
	}
}

// TestSuppliedParamsSplitSegments: supplied parameters must become
// segment splits around the excluded <unk> rows, still aliasing the
// module buffer on both sides — never a row-by-row copy.
func TestSuppliedParamsSplitSegments(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	res, err := c.Serve(context.Background(),
		`<prompt schema="travel"><trip-plan duration="three days"/><miami/>Surf?</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	seq := res.KV.(*kvcache.Seq)
	// _anon0 (1) + trip-plan split around the duration slot (2) + miami (1).
	if seq.Segments() != 4 {
		t.Fatalf("segments = %d, want 4", seq.Segments())
	}
	c.mu.Lock()
	trip := c.schemas["travel"].modules["trip-plan"]
	c.mu.Unlock()
	segs := seq.AppendSegments(nil, 0, seq.ViewLen())
	// Segment 1 is trip-plan's head: starts at the module's first row.
	if &segs[1].K[0] != &trip.KV.K[0][0] {
		t.Fatal("trip-plan head segment does not alias module storage")
	}
	// The excluded duration rows must be absent from the view.
	excluded := map[int]bool{}
	for _, p := range trip.Layout.ParamSegment("duration").Pos {
		excluded[p] = true
	}
	for _, p := range res.KV.Positions()[:seq.ViewLen()] {
		if excluded[p] {
			t.Fatalf("excluded position %d leaked into the view", p)
		}
	}
}

// TestSeqServeBitIdenticalToMaterialized: the zero-copy view path must
// produce bit-identical logits and generations to the old materializing
// path (appendFiltered into a flat cache), including excluded-parameter
// splits and, on the ALiBi architecture, position gaps from skipped
// modules.
func TestSeqServeBitIdenticalToMaterialized(t *testing.T) {
	for _, cfg := range []model.Config{
		model.LlamaStyle(coreVocab, 77),
		model.MPTStyle(coreVocab, 77), // ALiBi: distances from explicit position IDs
	} {
		t.Run(cfg.Name, func(t *testing.T) {
			c := newTestCache(t, cfg)
			mustRegister(t, c, travelSchema)
			// Supplied param (excluded rows) + skipped union member
			// (position gap between trip-plan and miami).
			src := `<prompt schema="travel"><trip-plan duration="three days"/><miami/>Surf spots?</prompt>`
			prompt, err := pml.ParsePrompt(src)
			if err != nil {
				t.Fatal(err)
			}

			viaSeq, err := c.ServeParsed(context.Background(), prompt, ServeOpts{})
			if err != nil {
				t.Fatal(err)
			}
			defer viaSeq.Close()

			// Reference: the pre-refactor path — copy every module row
			// through appendFiltered into one flat cache, then prefill.
			c.mu.Lock()
			plan, err := c.planServeLocked(prompt, ServeOpts{}, nil)
			c.mu.Unlock()
			if err != nil {
				t.Fatal(err)
			}
			flat := c.m.NewCache(plan.layout.TotalLen + 64)
			for _, part := range plan.parts {
				appendFiltered(flat, part.states(), plan.excluded)
			}
			newToks, newPos, err := c.gatherNewTokens(plan.layout, prompt, plan.bindings, plan.included)
			if err != nil {
				t.Fatal(err)
			}
			viaFlat, err := c.finishServe(context.Background(), plan, flat, newToks, newPos)
			c.unpinModules(plan.pinned)
			if err != nil {
				t.Fatal(err)
			}

			if d := tensor.MaxAbsDiff(viaSeq.Logits, viaFlat.Logits); d != 0 {
				t.Fatalf("view vs materialized logits differ by %v", d)
			}
			gSeq, err := c.Generate(context.Background(), viaSeq, model.GenerateOpts{MaxTokens: 8})
			if err != nil {
				t.Fatal(err)
			}
			gFlat, err := c.Generate(context.Background(), viaFlat, model.GenerateOpts{MaxTokens: 8})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(gSeq) != fmt.Sprint(gFlat) {
				t.Fatalf("view generation %v != materialized %v", gSeq, gFlat)
			}
		})
	}
}

// TestSeqPermutationInvariance: §3.4's order independence holds for
// segmented views exactly as it does for flat concatenation — stitching
// the same modules' views in reversed order moves the suffix logits by
// at most float noise.
func TestSeqPermutationInvariance(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	e := c.schemas["travel"]

	names := []string{"_anon0", "trip-plan", "miami"}
	forward := c.m.NewSeq(32)
	for _, n := range names {
		addViews(forward, e.modules[n].KV, nil)
	}
	reverse := c.m.NewSeq(32)
	for i := len(names) - 1; i >= 0; i-- {
		addViews(reverse, e.modules[names[i]].KV, nil)
	}
	suffix := c.Tokenizer().Encode("tell me about the beaches")
	pos := make([]int, len(suffix))
	for i := range pos {
		pos[i] = e.layout.TotalLen + i
	}
	lf, err := c.Model().Prefill(suffix, pos, forward)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := c.Model().Prefill(suffix, pos, reverse)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(lf, lr); d > 1e-4 {
		t.Fatalf("segment order changed logits by %v", d)
	}
}

// TestCloseReleasesPins: pins now live until result close, not prefill
// end — a served module must be pin-protected while the result is open
// and evictable after Close.
func TestCloseReleasesPins(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	res, err := c.Serve(context.Background(), `<prompt schema="travel"><miami/>Surf?</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	pinsOf := func(name string) int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.schemas["travel"].modules[name].pins
	}
	if pinsOf("miami") != 1 {
		t.Fatalf("miami pins = %d while result open, want 1", pinsOf("miami"))
	}
	res.Close()
	res.Close() // idempotent
	if pinsOf("miami") != 0 {
		t.Fatalf("miami pins = %d after Close, want 0", pinsOf("miami"))
	}
}

// TestMaterializeDetachesFromModules: Materialize must hand back an
// owned flat cache (usable after the modules are evicted) and release
// the pins immediately.
func TestMaterializeDetachesFromModules(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	res, err := c.Serve(context.Background(), `<prompt schema="travel"><miami/>Surf?</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), res.Logits...)
	res.Materialize()
	if _, ok := res.KV.(*kvcache.Cache); !ok {
		t.Fatalf("materialized KV is %T, want *kvcache.Cache", res.KV)
	}
	c.mu.Lock()
	if p := c.schemas["travel"].modules["miami"].pins; p != 0 {
		c.mu.Unlock()
		t.Fatalf("pins = %d after Materialize, want 0", p)
	}
	// Simulate eviction wiping the module's states out from under us.
	c.schemas["travel"].modules["miami"].KV = nil
	c.mu.Unlock()

	// The materialized result must keep decoding correctly.
	got, err := c.Continue(context.Background(), res, "and the food?")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Logits) != len(want) {
		t.Fatalf("continue after materialize returned %d logits", len(got.Logits))
	}
}

// TestConcurrentSeqReadersUnderEviction shares one schema's pinned
// modules across ≥4 concurrent zero-copy readers — each serving,
// checking bit-exactness against a reference, decoding a few tokens and
// closing — while a churn goroutine keeps eviction pressure on a pool
// sized for a fraction of the working set. Run under -race in CI.
func TestConcurrentSeqReadersUnderEviction(t *testing.T) {
	m, err := model.New(model.LlamaStyle(coreVocab, 55))
	if err != nil {
		t.Fatal(err)
	}
	mkSchema := func(name, word string) string {
		return fmt.Sprintf("<schema name=%q><module name=\"doc\">%s</module></schema>",
			name, strings.Repeat(word+" ", 40))
	}
	// Room for roughly three 40-token modules: the pinned reader schema
	// plus two churn schemas, so churn registrations always evict.
	modBytes := 40 * m.Cfg.BytesPerCachedToken(4)
	pool := memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: 3*modBytes + modBytes/2})
	c := NewCache(m, WithPool(pool))

	mustRegister(t, c, mkSchema("ra", "harbor"))
	churnSchemas := []string{mkSchema("rb", "castle"), mkSchema("rc", "garden"), mkSchema("rd", "bridge")}
	for _, s := range churnSchemas {
		mustRegister(t, c, s)
	}

	const prompt = `<prompt schema="ra"><doc/>summarize</prompt>`
	ref, err := c.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	refLogits := append([]float32(nil), ref.Logits...)
	ref.Close()

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			name := []string{"rb", "rc", "rd"}[i%3]
			if _, err := c.Serve(context.Background(),
				fmt.Sprintf(`<prompt schema=%q><doc/>churn</prompt>`, name), ServeOpts{}); err != nil {
				t.Errorf("churn serve: %v", err)
				return
			}
			mustRegister(t, c, churnSchemas[i%3])
			i++
		}
	}()

	const readers = 4
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := c.Serve(context.Background(), prompt, ServeOpts{})
				if err != nil {
					t.Errorf("reader serve: %v", err)
					return
				}
				if d := tensor.MaxAbsDiff(res.Logits, refLogits); d != 0 {
					t.Errorf("reader logits differ by %v under eviction pressure", d)
				}
				if _, err := c.Generate(context.Background(), res, model.GenerateOpts{MaxTokens: 3}); err != nil {
					t.Errorf("reader generate: %v", err)
				}
				res.Close()
			}
		}()
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()
}
