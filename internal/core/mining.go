package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/kvcache"
	"repro/internal/mining"
)

// Module mining (automatic prefix promotion) glues the observer in
// internal/mining into the serve path. The paper's reuse is explicit —
// a PML schema declares what is shared — but live traffic is full of
// undeclared shared prefixes. With WithModuleMining, every cached
// serve's uncached (token, position) stream feeds a radix-tree
// observer; prefixes hot enough to clear the configured thresholds are
// promoted into *anonymous modules* — EncodedModules named "~mined/N",
// registered into the owning schema's entry so they flow through the
// existing pin/refcount, eviction, host-demotion, disk-spill and
// warm-restart machinery unchanged. A later serve whose stream starts
// with a mined prefix splices the module's pinned states exactly like a
// schema hit and prefills only the remainder.
//
// Correctness: a serve's uncached-token states depend on everything the
// tail attends to, so streams are only compared within a *class* —
// schema plus included modules, applied scaffolds and excluded
// positions — and keyed by (token, position) pairs. Within a class the
// spliced rows are bit-identical to what the serve would have computed,
// so mined hits change latency, never output. To keep that guarantee
// absolute, mined states are always stored and spilled fp32, even under
// WithInt8Modules (like scaffolds, they exist for exactness).

// minedPrefixTag prefixes every anonymous mined module's name. PML tag
// names cannot contain '~' or '/', so mined names never collide with a
// schema's declared modules.
const minedPrefixTag = "~mined/"

// classFieldSep/classGroupSep build class keys. Neither byte can appear
// in schema or module names (PML tags are letters, digits, '-', '_',
// '.'), so keys cannot collide across field boundaries.
const (
	classFieldSep = "\x1f"
	classGroupSep = "\x1e"
)

// MiningOpts configures automatic module mining; it is an alias of the
// observer's config so promptcache can re-export it without leaking
// internals. Zero fields take the mining package's documented defaults.
type MiningOpts = mining.Config

// WithModuleMining enables automatic module mining: cached serves feed
// a radix-tree traffic observer, and prefixes that clear opts'
// thresholds are promoted to anonymous modules spliced into later
// matching serves. See MiningOpts for the knobs.
func WithModuleMining(opts MiningOpts) Option {
	return func(c *Cache) { c.miner = mining.New(opts) }
}

// MinedPrefix records what an anonymous mined module caches: the class
// it is valid in and the (token, position) stream prefix its states
// reproduce. It is the mined counterpart of Layout.
type MinedPrefix struct {
	Class string
	Toks  []int
	Pos   []int
}

// MiningStats is a snapshot of mining activity: the observer's tree
// statistics plus the engine's mined-serving counters.
type MiningStats struct {
	Enabled bool `json:"enabled"`
	// Observed counts streams fed to the observer.
	Observed uint64 `json:"observed"`
	// Classes and Nodes size the radix tree.
	Classes int `json:"classes"`
	Nodes   int `json:"nodes"`
	// Candidates counts tree nodes past the promotion threshold but not
	// yet promoted.
	Candidates int `json:"candidates"`
	// LiveModules is the number of mined modules currently registered.
	LiveModules int `json:"live_modules"`
	// Promotions and Demotions are lifetime counts of mined modules
	// created and garbage-collected.
	Promotions int `json:"promotions"`
	Demotions  int `json:"demotions"`
	// Hits counts serves that spliced a mined module; HitTokens is the
	// prefill tokens those splices skipped (the saving).
	Hits      int `json:"hits"`
	HitTokens int `json:"hit_tokens_saved"`
	// SnapshotSkipped counts mined modules dropped at SaveAll/OpenDir
	// boundaries (no states to persist, or restoring without mining).
	SnapshotSkipped int `json:"snapshot_skipped"`
}

// MiningEnabled reports whether this cache mines modules from traffic.
func (c *Cache) MiningEnabled() bool { return c.miner != nil }

// MiningStats returns a snapshot of mining activity. Without
// WithModuleMining it returns the zero snapshot (Enabled false).
func (c *Cache) MiningStats() MiningStats {
	if c.miner == nil {
		return MiningStats{}
	}
	ts := c.miner.Stats()
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	return MiningStats{
		Enabled:         true,
		Observed:        ts.Observed,
		Classes:         ts.Classes,
		Nodes:           ts.Nodes,
		Candidates:      ts.Candidates,
		LiveModules:     ts.Promoted,
		Promotions:      s.MinedPromotions,
		Demotions:       s.MinedDemotions,
		Hits:            s.MinedHits,
		HitTokens:       s.MinedHitTokens,
		SnapshotSkipped: s.MinedSnapshotSkipped,
	}
}

// servingClass derives the stream-comparison class of a planned serve:
// everything that determines the attention context the uncached tokens
// see. Two serves in the same class with the same (token, position)
// stream prefix compute bit-identical states for that prefix — the
// precondition for splicing mined states.
func servingClass(schemaName string, plan *servePlan) string {
	var b strings.Builder
	b.WriteString(schemaName)
	b.WriteString(classFieldSep)
	for _, m := range plan.included {
		b.WriteString(m)
		b.WriteString(classFieldSep)
	}
	b.WriteString(classGroupSep)
	for _, s := range plan.scaffolds {
		b.WriteString(s)
		b.WriteString(classFieldSep)
	}
	b.WriteString(classGroupSep)
	ex := make([]int, 0, len(plan.excluded))
	for p := range plan.excluded {
		ex = append(ex, p)
	}
	sort.Ints(ex)
	for _, p := range ex {
		b.WriteString(strconv.Itoa(p))
		b.WriteString(classFieldSep)
	}
	return b.String()
}

// classPrefix is the class-key prefix shared by every class of one
// schema — what dropSchemaLocked hands the observer to forget a
// schema's traffic.
func classPrefix(schemaName string) string { return schemaName + classFieldSep }

// spliceMined finds the longest promoted mined prefix of the serve's
// uncached stream and appends its module to the plan as a no-exclusion
// part (mined rows include computed argument states at excluded
// positions and must not be filtered). It returns the module name and
// matched token count; the caller trims the stream by n and prefills
// the rest. A mined splice never fails a serve: any trouble — module
// vanished, blob unreadable, pool full — degrades to a miss (n = 0).
func (c *Cache) spliceMined(plan *servePlan, schemaName, class string, toks, pos []int) (string, int) {
	if len(toks) < 2 {
		return "", 0 // the serve must keep at least one uncached token
	}
	name, n, ok := c.miner.Lookup(class, toks, pos, len(toks)-1)
	if !ok || n <= 0 {
		return "", 0
	}
	key := schemaName + "/" + name

	c.mu.Lock()
	em := c.minedModuleLocked(schemaName, name)
	if em == nil || len(em.Mined.Toks) != n {
		c.mu.Unlock()
		// The cache no longer holds what the observer promised (schema
		// replaced, module GC'd mid-lookup): stop matching it.
		c.miner.Demoted(name)
		return "", 0
	}
	switch em.state {
	case stateResident:
		c.policy.Touch(key, em.Bytes())
		em.pins++
		c.recordMinedHitLocked(n)
		plan.pinned = append(plan.pinned, em)
		plan.parts = append(plan.parts, servePart{key: key, em: em, noExclude: true})
		c.mu.Unlock()
		return name, n
	case stateDemoted:
		if err := c.promoteLocked(key, em); err != nil {
			if !errors.Is(err, ErrCapacity) {
				c.mu.Unlock()
				return "", 0
			}
			// Host-tier read-through without promotion.
			c.recordMinedHitLocked(n)
			plan.parts = append(plan.parts, servePart{key: key, kv: em.States(), noExclude: true})
			c.mu.Unlock()
			return name, n
		}
		c.policy.Touch(key, em.Bytes())
		em.pins++
		c.recordMinedHitLocked(n)
		plan.pinned = append(plan.pinned, em)
		plan.parts = append(plan.parts, servePart{key: key, em: em, noExclude: true})
		c.mu.Unlock()
		return name, n
	case stateDisk:
		entry, ok := c.disk.index[key]
		c.mu.Unlock()
		if !ok {
			return "", 0
		}
		return c.spliceMinedFromDisk(plan, schemaName, key, name, n, em, entry)
	default: // stateDropped: mined states cannot re-encode; GC and miss
		c.dropMinedLocked(key, schemaName, em)
		c.mu.Unlock()
		return "", 0
	}
}

// spliceMinedFromDisk completes a mined splice whose states live in a
// disk blob: the read happens off-lock (disk IO must never serialize
// planning), then a brief re-lock installs the states, handling the
// same races resolveDiskParts does — another serve may have promoted
// the module first, or eviction may have cycled it.
func (c *Cache) spliceMinedFromDisk(plan *servePlan, schemaName, key, name string, n int, em *EncodedModule, entry diskEntry) (string, int) {
	kv, loadErr := c.disk.readBlob(entry)
	if loadErr == nil && (kv.NLayers != c.m.Cfg.NLayers || kv.KVDim != c.m.Cfg.KVDim() || kv.Len() != n) {
		loadErr = fmt.Errorf("core: mined blob %s has unexpected shape: %w", key, errCorruptBlob)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.minedModuleLocked(schemaName, name) != em {
		return "", 0 // GC'd or schema replaced while we read
	}
	if loadErr != nil {
		if em.state == stateDisk {
			c.diskLoadFailedLocked(key, em, loadErr)
		}
		if em.state == stateDropped {
			c.dropMinedLocked(key, schemaName, em)
		}
		return "", 0
	}
	switch em.state {
	case stateResident:
		// Another serve promoted it while we read; share its states.
		c.policy.Touch(key, em.Bytes())
		em.pins++
		c.recordMinedHitLocked(n)
		plan.pinned = append(plan.pinned, em)
		plan.parts = append(plan.parts, servePart{key: key, em: em, noExclude: true})
		return name, n
	case stateDemoted:
		if err := c.promoteLocked(key, em); err != nil {
			if !errors.Is(err, ErrCapacity) {
				return "", 0
			}
			c.recordMinedHitLocked(n)
			plan.parts = append(plan.parts, servePart{key: key, kv: em.States(), noExclude: true})
			return name, n
		}
		c.policy.Touch(key, em.Bytes())
		em.pins++
		c.recordMinedHitLocked(n)
		plan.pinned = append(plan.pinned, em)
		plan.parts = append(plan.parts, servePart{key: key, em: em, noExclude: true})
		return name, n
	case stateDisk:
		if err := c.installDiskStatesLocked(key, em, kv); err != nil {
			if !errors.Is(err, ErrCapacity) {
				return "", 0
			}
			// Pool cannot hold the working set: serve the loaded copy
			// without residency. Mined states are fp32; no codec round
			// trip needed for exactness.
			c.stats.DiskHits++
			c.recordMinedHitLocked(n)
			plan.parts = append(plan.parts, servePart{key: key, kv: kv, noExclude: true})
			return name, n
		}
		c.policy.Touch(key, em.Bytes())
		em.pins++
		c.recordMinedHitLocked(n)
		plan.pinned = append(plan.pinned, em)
		plan.parts = append(plan.parts, servePart{key: key, em: em, noExclude: true})
		return name, n
	default: // stateDropped: our blob copy is good, serve it transiently
		c.stats.DiskHits++
		c.recordMinedHitLocked(n)
		plan.parts = append(plan.parts, servePart{key: key, kv: kv, noExclude: true})
		return name, n
	}
}

// minedModuleLocked resolves a mined module by schema and name, nil
// when it (or its schema) is gone.
func (c *Cache) minedModuleLocked(schemaName, name string) *EncodedModule {
	e := c.schemas[schemaName]
	if e == nil {
		return nil
	}
	em := e.modules[name]
	if em == nil || em.Mined == nil {
		return nil
	}
	return em
}

// recordMinedHitLocked folds one mined splice into the stats. The
// spliced rows also land in TokensReused via CachedTokens, like any
// cached prefix; MinedHitTokens isolates the mined share.
func (c *Cache) recordMinedHitLocked(n int) {
	c.stats.MinedHits++
	c.stats.MinedHitTokens += n
	c.stats.ModulesReused++
}

// observeServe feeds one successful cached serve to the observer and
// acts on its verdicts: promoting a nominated prefix by copying its
// rows out of this serve's assembled KV (zero extra prefill) and
// garbage-collecting mined modules that went cold. Runs off the cache
// lock, after the prefill, while the serve's pins are still held (so
// the KV's view rows are stable). toks/pos are the full uncached
// stream, before any mined trim.
func (c *Cache) observeServe(schemaName, class string, toks, pos []int, kv kvcache.KV) {
	res := c.miner.Observe(class, toks, pos)
	if res.Promote != nil {
		c.promoteMined(schemaName, res.Promote, toks, kv)
	}
	for _, name := range res.Demote {
		c.demoteMined(schemaName, name)
	}
}

// promoteMined turns a nomination into a registered anonymous module by
// copying the candidate prefix's attention states out of the serve's
// KV. Row j of the observed stream is row kv.Len()-len(toks)+j: the
// uncached stream lands contiguously at the end of the sequence (a
// mined view, when one was spliced, sits immediately before the tail),
// so the copy is uniform whether a prefix row came from this serve's
// prefill or from an earlier mined splice.
func (c *Cache) promoteMined(schemaName string, cand *mining.Candidate, toks []int, kv kvcache.KV) {
	d := len(cand.Toks)
	if d == 0 || d > len(toks) || d > kv.Len() {
		cand.PromoteFailed()
		return
	}
	base := kv.Len() - len(toks)
	states := kvcache.New(c.m.Cfg.NLayers, c.m.Cfg.KVDim(), d)
	for j := 0; j < d; j++ {
		for l := 0; l < c.m.Cfg.NLayers; l++ {
			states.AppendToken(l, kv.KeyRow(l, base+j), kv.ValueRow(l, base+j))
		}
		states.AppendPos(cand.Pos[j])
	}

	c.mu.Lock()
	e := c.schemas[schemaName]
	if e == nil {
		c.mu.Unlock()
		cand.PromoteFailed()
		return
	}
	name := minedPrefixTag + strconv.Itoa(c.minedSeq)
	key := schemaName + "/" + name
	em := &EncodedModule{
		Name:   name,
		Schema: schemaName,
		KV:     states, // fp32 always: mined states exist for exactness
		Mined:  &MinedPrefix{Class: cand.Class, Toks: cand.Toks, Pos: cand.Pos},
	}
	if err := c.reserveLocked(key, em.Bytes()); err != nil {
		c.mu.Unlock()
		cand.PromoteFailed()
		return
	}
	c.minedSeq++
	e.modules[name] = em
	c.policy.Touch(key, em.Bytes())
	c.stats.MinedPromotions++
	c.mu.Unlock()
	cand.Promoted(name)
}

// demoteMined garbage-collects one cold mined module. A pinned module
// (an open serve still views its states) is left alone; the observer
// re-offers it on a later observation.
func (c *Cache) demoteMined(schemaName, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	em := c.minedModuleLocked(schemaName, name)
	if em == nil {
		// Already gone from the cache; make sure the observer agrees.
		c.miner.Demoted(name)
		return
	}
	if em.pins > 0 {
		return
	}
	c.dropMinedLocked(schemaName+"/"+name, schemaName, em)
}

// dropMinedLocked removes a mined module from every tier and confirms
// the removal to the observer. Unlike declared modules, a mined module
// cannot re-encode (its states came from a live serve), so removal is
// its terminal state.
func (c *Cache) dropMinedLocked(key, schemaName string, em *EncodedModule) {
	if c.pool.Has(key) {
		c.freeTracked(c.pool, key)
	}
	if c.hostPool != nil && c.hostPool.Has(key) {
		c.freeTracked(c.hostPool, key)
	}
	if c.disk != nil {
		c.removeDiskLocked(key)
	}
	c.policy.Remove(key)
	if e := c.schemas[schemaName]; e != nil {
		delete(e.modules, em.Name)
	}
	em.KV = nil
	em.Quant = nil
	em.state = stateDropped
	if c.miner != nil {
		c.miner.Demoted(em.Name)
	}
	c.stats.MinedDemotions++
}

// adoptMinedLocked re-registers one persisted mined module from a
// snapshot manifest: states stay on disk (like declared modules) and
// the observer adopts the prefix so lookups match again. Returns false
// (with the skip counted) when the entry cannot be adopted.
func (c *Cache) adoptMinedLocked(e *schemaEntry, schemaName string, mm manifestMined) bool {
	if c.miner == nil {
		c.stats.MinedSnapshotSkipped++
		return false
	}
	if !strings.HasPrefix(mm.Name, minedPrefixTag) ||
		len(mm.Toks) != len(mm.Pos) || len(mm.Toks) != mm.Tokens || mm.Tokens == 0 {
		c.stats.MinedSnapshotSkipped++
		return false
	}
	if err := c.miner.Adopt(mm.Class, mm.Toks, mm.Pos, mm.Name); err != nil {
		c.stats.MinedSnapshotSkipped++
		return false
	}
	mcodec, err := ParseCodec(mm.Codec)
	if err != nil {
		c.stats.MinedSnapshotSkipped++
		return false
	}
	key := schemaName + "/" + mm.Name
	c.disk.index[key] = diskEntry{hash: mm.Hash, codec: mcodec, bytes: mm.Bytes, tokens: mm.Tokens}
	if err := c.disk.pool.Alloc(key, mm.Bytes); err != nil {
		c.stats.TierAccountErrors++
	}
	e.modules[mm.Name] = &EncodedModule{
		Name:   mm.Name,
		Schema: schemaName,
		Mined:  &MinedPrefix{Class: mm.Class, Toks: mm.Toks, Pos: mm.Pos},
		state:  stateDisk,
	}
	// Keep the name sequence past every restored id so new promotions
	// cannot collide.
	if id, err := strconv.Atoi(strings.TrimPrefix(mm.Name, minedPrefixTag)); err == nil && id >= c.minedSeq {
		c.minedSeq = id + 1
	}
	c.stats.ModulesRestored++
	return true
}
