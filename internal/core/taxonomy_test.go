package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/model"
)

// These tests lock in the error-taxonomy wrapping that rode along with
// pclint's errtaxonomy analyzer: engine failures must be routable with
// errors.Is (the HTTP layer maps them to statuses that way), never by
// string matching.

func TestPrefetchUnknownModuleIsBadPrompt(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	err := c.Prefetch("travel", "ghost")
	if !errors.Is(err, ErrBadPrompt) {
		t.Fatalf("Prefetch unknown module: got %v, want errors.Is ErrBadPrompt", err)
	}
}

func TestPrefetchUnionNonMemberIsBadPrompt(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	err := c.PrefetchUnion("travel", "trip-plan")
	if !errors.Is(err, ErrBadPrompt) {
		t.Fatalf("PrefetchUnion non-member: got %v, want errors.Is ErrBadPrompt", err)
	}
}

func TestSnapshotGarbageIsBadSnapshot(t *testing.T) {
	c := llamaCache(t)
	_, err := c.RegisterSchemaFromSnapshot(travelSchema, strings.NewReader("garbage bytes"))
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("garbage snapshot: got %v, want errors.Is ErrBadSnapshot", err)
	}
}

func TestSnapshotAlteredSchemaIsBadSnapshot(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 401)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewCache(m)
	mustRegister(t, orig, travelSchema)
	var buf bytes.Buffer
	if err := orig.SaveSchemaStates("travel", &buf); err != nil {
		t.Fatal(err)
	}
	altered := strings.Replace(travelSchema, "superb food", "superb food and also trains", 1)
	fresh := NewCache(m)
	_, err = fresh.RegisterSchemaFromSnapshot(altered, bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("stale snapshot: got %v, want errors.Is ErrBadSnapshot", err)
	}
}

// TestResolveImportsDeterministicError locks in the maporder fix in
// resolveImports: with two bad arguments on one import, the reported
// error must name the alphabetically-first key on every run, not
// whichever one map iteration surfaced.
func TestResolveImportsDeterministicError(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	prompt := `<prompt schema="travel"><trip-plan zebra="x" alpha="y"/>Go.</prompt>`
	var first string
	for i := 0; i < 30; i++ {
		_, err := c.Serve(context.Background(), prompt, ServeOpts{})
		if !errors.Is(err, ErrBadPrompt) {
			t.Fatalf("got %v, want errors.Is ErrBadPrompt", err)
		}
		if !strings.Contains(err.Error(), `"alpha"`) {
			t.Fatalf("error should name the first bad key %q, got: %v", "alpha", err)
		}
		if i == 0 {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("error changed between runs:\n  %s\n  %s", first, err)
		}
	}
}
