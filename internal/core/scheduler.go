package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/kvcache"
	"repro/internal/mining"
	"repro/internal/model"
)

// DefaultMaxDecodeBatch is the fused-step width the decode scheduler uses
// when WithDecodeScheduler is given a non-positive bound.
const DefaultMaxDecodeBatch = 8

// SchedStats is a snapshot of decode-scheduler activity, the
// observability surface behind /v1/stats: instantaneous queue/lane
// gauges, lifetime lane and step counters, and the batch-size histogram
// that shows whether traffic actually fuses.
type SchedStats struct {
	// Enabled reports whether the cache runs a decode scheduler at all.
	Enabled bool
	// MaxBatch is the fused-step width bound.
	MaxBatch int
	// QueueDepth is the number of requests waiting to join the batch.
	QueueDepth int
	// ActiveLanes is the number of sequences currently decoding fused.
	ActiveLanes int
	// LanesJoined / LanesRetired / LanesCancelled count lane lifecycle
	// events; Cancelled is the subset of Retired evicted by their context.
	LanesJoined, LanesRetired, LanesCancelled int64
	// Steps counts fused model steps executed; TokensDecoded counts
	// tokens produced across all lanes (one per lane per step sampled).
	Steps, TokensDecoded int64
	// BatchHist[i] counts fused steps that ran with i+1 lanes; its tail
	// filling up is continuous batching working.
	BatchHist []int64
	// DecodeNs is total wall time spent inside fused model steps.
	DecodeNs int64
	// SpecSteps counts fused steps that verified at least one draft
	// token; DraftProposed and DraftAccepted count draft tokens verified
	// and accepted across all lanes. Accepted drafts are tokens produced
	// without their own fused step — the speculation win.
	SpecSteps, DraftProposed, DraftAccepted int64
}

// TokensPerSec is the decode-phase throughput: tokens produced per second
// of fused-step wall time. Zero before any step runs.
func (s SchedStats) TokensPerSec() float64 {
	if s.DecodeNs == 0 {
		return 0
	}
	return float64(s.TokensDecoded) / (float64(s.DecodeNs) / 1e9)
}

// AcceptedPerStep is the mean tokens a lane produces per fused step it
// participates in — exactly 1 without speculation (each lane samples one
// token per step regardless of batch width), above 1 when drafts are
// being accepted. Zero before any step runs.
func (s SchedStats) AcceptedPerStep() float64 {
	var laneSteps int64
	for i, n := range s.BatchHist {
		laneSteps += n * int64(i+1)
	}
	if laneSteps == 0 {
		return 0
	}
	return float64(s.TokensDecoded) / float64(laneSteps)
}

// schedLane is one request's sequence inside the scheduler: its KV state,
// sampler and stop conditions, the emit sink for streaming, and the
// model-side DecodeLane holding its scratch.
type schedLane struct {
	ctx    context.Context
	kv     kvcache.KV
	logits []float32 // next-token logits (serve result, then lane scratch)
	opts   model.GenerateOpts
	emit   func(tok int) bool // nil for non-streaming requests
	class  SLOClass           // admission priority while queued

	dl   *model.DecodeLane
	pos  int
	next int // token sampled this iteration, fed to the fused step
	out  []int
	err  error
	done chan struct{}

	// speculation state: specOn resolves the request's policy against
	// the engine's draft source; specClass keys draft lookups (the serve's
	// serving class, possibly empty); spec and specPos are the step's
	// token/position runs — spec[0] is the sampled token, the rest draft
	// proposals; ready marks a lane whose pre-step sequence already ran
	// inside settle, so the next iteration steps it without re-sampling.
	specOn    bool
	specClass string
	spec      []int
	specPos   []int
	ready     bool
}

// Scheduler fuses concurrent decode loops into shared model steps
// (continuous batching). Requests join mid-flight after their prefill:
// each run-loop iteration samples every active lane with its own sampler,
// retires lanes whose stop condition fired (stop token, MaxTokens,
// context cancellation, emit refusal), admits waiting lanes up to
// MaxBatch, and then executes ONE fused model step for all survivors —
// so N concurrent generations cost one layer walk per token, not N.
//
// Determinism: a lane's arithmetic runs on its own scratch in solo order
// inside the fused step, and sampling uses the request's own sampler
// state, so a request's token and logit streams are bit-identical whether
// it decoded alone or fused with any mix of neighbors joining and
// retiring around it.
//
// With a draft source (WithSpeculation) the fused step speculates: each
// lane proposes up to draftBudget tokens from its class's n-gram table,
// one widened verify step scores all proposed positions, and settle
// accepts exactly the prefix solo decode would have sampled, truncating
// the rest — several tokens per step when the draft is right, the same
// bit-identical stream always. Retiring lanes feed their accepted tokens
// back into the draft source, which is how it trains.
//
// The run loop starts on demand and exits when no lanes are active or
// waiting, so an idle scheduler costs nothing and needs no Close.
type Scheduler struct {
	m        *model.Model
	maxBatch int
	// draft, when non-nil, is the n-gram draft source speculative decode
	// proposes from (WithSpeculation). It synchronizes itself; the run
	// loop calls it without holding mu.
	draft *mining.Draft

	mu sync.Mutex
	// pending holds queued lanes per SLO class: the admission sweep
	// drains interactive before batch, FIFO within a class — so batch
	// backfill never starves a user-facing lane of a slot, and
	// all-interactive traffic (the default) keeps the original order.
	pending [numSLOClasses][]*schedLane
	active  int // lanes inside the run loop (gauge; loop owns the slice)
	running bool

	joined, retired, cancelled int64
	steps, tokens              int64
	decodeNs                   int64
	hist                       []int64

	specSteps, draftProposed, draftAccepted int64
}

// newScheduler builds a scheduler over m with the given fused-step width
// (non-positive means DefaultMaxDecodeBatch).
func newScheduler(m *model.Model, maxBatch int) *Scheduler {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxDecodeBatch
	}
	return &Scheduler{m: m, maxBatch: maxBatch, hist: make([]int64, maxBatch)}
}

// pendingLocked sums queued lanes across SLO classes. Callers hold s.mu.
func (s *Scheduler) pendingLocked() int {
	n := 0
	for cl := range s.pending {
		n += len(s.pending[cl])
	}
	return n
}

// Stats returns a snapshot of scheduler activity.
func (s *Scheduler) Stats() SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedStats{
		Enabled:        true,
		MaxBatch:       s.maxBatch,
		QueueDepth:     s.pendingLocked(),
		ActiveLanes:    s.active,
		LanesJoined:    s.joined,
		LanesRetired:   s.retired,
		LanesCancelled: s.cancelled,
		Steps:          s.steps,
		TokensDecoded:  s.tokens,
		BatchHist:      append([]int64(nil), s.hist...),
		DecodeNs:       s.decodeNs,
		SpecSteps:      s.specSteps,
		DraftProposed:  s.draftProposed,
		DraftAccepted:  s.draftAccepted,
	}
}

// Generate submits one sequence to the scheduler and blocks until it
// retires, returning the generated ids (semantics identical to
// model.Generate / model.GenerateStream, including error returns). The
// caller keeps ownership of kv after return; while the lane is live the
// scheduler is the one goroutine appending to it. class is the serve's
// serving-class key, which scopes draft-source lookups when speculation
// is enabled; the empty string is a valid (shared) class.
func (s *Scheduler) Generate(ctx context.Context, class string, kv kvcache.KV, lastLogits []float32, opts model.GenerateOpts, emit func(tok int) bool) ([]int, error) {
	opts.Defaults()
	if kv.Len() == 0 {
		//pclint:ignore errtaxonomy mirrors model.Generate's guard verbatim so fused and solo decode return identical errors
		return nil, fmt.Errorf("model: Generate on empty cache")
	}
	if len(lastLogits) != s.m.Cfg.VocabSize {
		//pclint:ignore errtaxonomy mirrors model.Generate's guard verbatim so fused and solo decode return identical errors
		return nil, fmt.Errorf("model: logits width %d != vocab %d", len(lastLogits), s.m.Cfg.VocabSize)
	}
	ln := &schedLane{
		ctx:       ctx,
		kv:        kv,
		logits:    lastLogits,
		opts:      opts,
		emit:      emit,
		class:     SLOFromContext(ctx),
		pos:       kv.MaxPos(),
		done:      make(chan struct{}),
		specOn:    s.draft != nil && opts.Speculation.Policy != model.SpecOff,
		specClass: class,
	}
	s.mu.Lock()
	s.pending[ln.class] = append(s.pending[ln.class], ln)
	s.joined++
	if !s.running {
		s.running = true
		go s.run()
	}
	s.mu.Unlock()
	// The run loop checks ln.ctx every iteration — active lanes in their
	// sample phase, queued lanes in the admission sweep — so cancellation
	// closes done within one fused step; no second wakeup path is needed,
	// and no goroutine may touch the lane after done closes.
	<-ln.done
	return ln.out, ln.err
}

// run is the scheduler's decode loop. It owns every admitted lane
// outright — samplers, KV tails, scratch — and takes s.mu only for
// admission and stats, never across model work or emit callbacks.
func (s *Scheduler) run() {
	var active, keep []*schedLane
	var lanes []*model.DecodeLane
	var tokens, positions []int
	var kvs []kvcache.KV
	var expired []*schedLane
	for {
		// Admission: sweep cancelled waiters (a queued request whose
		// client vanished must not wait for a batch slot to learn it),
		// then pull survivors into free slots. Joining is cheap (a
		// DecodeLane from the scratch pool), so requests join the very
		// next iteration after their prefill finishes.
		expired = expired[:0]
		s.mu.Lock()
		for cl := range s.pending {
			live := s.pending[cl][:0]
			for _, ln := range s.pending[cl] {
				if ln.ctx.Err() != nil {
					expired = append(expired, ln)
					continue
				}
				live = append(live, ln)
			}
			s.pending[cl] = live
		}
		// Fill free slots interactive-first: batch lanes join only when
		// no interactive lane is waiting (FIFO within each class).
		for cl := range s.pending {
			for len(active) < s.maxBatch && len(s.pending[cl]) > 0 {
				ln := s.pending[cl][0]
				s.pending[cl] = s.pending[cl][1:]
				ln.dl = s.m.NewDecodeLane()
				active = append(active, ln)
			}
		}
		if len(active) == 0 {
			// len(pending) is 0 too (admission above drained it), so the
			// loop parks by exiting; the next Generate restarts it.
			s.running = false
			s.active = 0
			s.mu.Unlock()
			for _, ln := range expired {
				s.retire(ln, ln.ctx.Err())
			}
			return
		}
		s.active = len(active)
		s.mu.Unlock()
		for _, ln := range expired {
			s.retire(ln, ln.ctx.Err())
		}

		// Sample-and-retire phase: per lane, the exact pre-step sequence
		// of the solo loop (MaxTokens, ctx, sample, stop token, emit,
		// MaxSeq), so retirement decisions match solo decoding bit for
		// bit. A ready lane ran that sequence inside settle against the
		// verify step's logits and skips it here. With a draft source,
		// each surviving lane then proposes draft tokens to verify
		// alongside its sampled one.
		keep = keep[:0]
		lanes, kvs = lanes[:0], kvs[:0]
		spec := false
		for _, ln := range active {
			if ln.ready {
				ln.ready = false
			} else if stop, err := s.advance(ln); stop {
				s.retire(ln, err)
				continue
			}
			ln.spec = append(ln.spec[:0], ln.next)
			if ln.specOn {
				if budget := s.draftBudget(ln); budget > 0 {
					ln.spec = append(ln.spec, s.draft.Propose(ln.specClass, ln.out, budget)...)
				}
			}
			if len(ln.spec) > 1 {
				spec = true
			}
			keep = append(keep, ln)
			lanes = append(lanes, ln.dl)
			kvs = append(kvs, ln.kv)
		}
		active = active[:0]
		active = append(active, keep...)
		if len(lanes) == 0 {
			continue
		}

		if spec {
			s.stepSpec(&active, lanes, kvs)
			continue
		}

		// One fused model step for every surviving lane. With no drafts
		// anywhere in the batch (speculation off, or every draft cold)
		// this is exactly the pre-speculation hot path.
		tokens, positions = tokens[:0], positions[:0]
		for _, ln := range active {
			tokens = append(tokens, ln.next)
			positions = append(positions, ln.pos)
		}
		start := time.Now()
		err := s.m.DecodeStepBatch(lanes, tokens, positions, kvs)
		elapsed := time.Since(start)
		if err != nil {
			// Malformed batch call: a scheduler bug, not a lane's fault.
			// Fail every lane rather than decode from corrupt state.
			for _, ln := range active {
				s.retire(ln, err)
			}
			active = active[:0]
			continue
		}
		keep = keep[:0]
		for _, ln := range active {
			if lerr := ln.dl.Err(); lerr != nil {
				s.retire(ln, lerr)
				continue
			}
			ln.logits = ln.dl.Logits()
			keep = append(keep, ln)
		}
		active = active[:0]
		active = append(active, keep...)

		s.mu.Lock()
		s.steps++
		s.tokens += int64(len(lanes))
		s.hist[len(lanes)-1]++
		s.decodeNs += elapsed.Nanoseconds()
		s.mu.Unlock()
	}
}

// stepSpec runs one fused verify step for a batch in which at least one
// lane carries draft tokens, then settles every lane's acceptance.
// active is rewritten in place to the lanes that survived.
func (s *Scheduler) stepSpec(active *[]*schedLane, lanes []*model.DecodeLane, kvs []kvcache.KV) {
	mtoks := make([][]int, 0, len(lanes))
	mpos := make([][]int, 0, len(lanes))
	for _, ln := range *active {
		ln.specPos = ln.specPos[:0]
		for j := range ln.spec {
			ln.specPos = append(ln.specPos, ln.pos+j)
		}
		mtoks = append(mtoks, ln.spec)
		mpos = append(mpos, ln.specPos)
	}

	start := time.Now()
	err := s.m.DecodeStepBatchMulti(lanes, mtoks, mpos, kvs)
	elapsed := time.Since(start)
	if err != nil {
		for _, ln := range *active {
			s.retire(ln, err)
		}
		*active = (*active)[:0]
		return
	}

	var produced, proposed, accepted int64
	keep := (*active)[:0]
	for _, ln := range *active {
		if lerr := ln.dl.Err(); lerr != nil {
			// The failed lane appended nothing; solo decode would fail the
			// same step with the same error.
			s.retire(ln, lerr)
			continue
		}
		proposed += int64(len(ln.spec) - 1)
		p, a, retired := s.settle(ln)
		produced += int64(p)
		accepted += int64(a)
		if retired {
			continue
		}
		keep = append(keep, ln)
	}
	*active = keep

	s.mu.Lock()
	s.steps++
	s.specSteps++
	s.tokens += produced
	s.hist[len(lanes)-1]++
	s.decodeNs += elapsed.Nanoseconds()
	s.draftProposed += proposed
	s.draftAccepted += accepted
	s.mu.Unlock()
}

// settle replays the solo post-step sequence over a lane's verify
// logits: position j's logits feed the exact advance() the solo loop
// would run next, and the draft token at j+1 is accepted only when the
// lane's own sampler picked precisely it. On divergence — or any
// retirement — the speculative tail rows are truncated away, so the
// lane's KV, sampler state, token stream and emitted output are
// bit-identical to never having speculated. A surviving lane leaves
// settle step-ready: its next token is sampled and emitted, awaiting the
// next fused step.
func (s *Scheduler) settle(ln *schedLane) (produced, accepted int, retired bool) {
	n := len(ln.spec)
	base := ln.kv.Len() - n
	for j := 0; j < n; j++ {
		ln.logits = ln.dl.LogitsAt(j)
		if stop, err := s.advance(ln); stop {
			ln.kv.Truncate(base + j + 1)
			s.retire(ln, err)
			return produced, accepted, true
		}
		produced++
		if j+1 < n {
			if ln.next == ln.spec[j+1] {
				accepted++
				continue
			}
			ln.kv.Truncate(base + j + 1)
		}
		ln.ready = true
		return produced, accepted, false
	}
	return produced, accepted, false // unreachable: the loop exits via ready
}

// draftBudget bounds a lane's draft width: the request's MaxDraft, the
// remaining token budget (a draft past MaxTokens can never be accepted),
// and the remaining position headroom.
func (s *Scheduler) draftBudget(ln *schedLane) int {
	b := ln.opts.Speculation.MaxDraft
	if r := ln.opts.MaxTokens - len(ln.out); r < b {
		b = r
	}
	if r := s.m.Cfg.MaxSeq - 1 - ln.pos; r < b {
		b = r
	}
	if b < 0 {
		b = 0
	}
	return b
}

// advance runs one lane's pre-step phase — the head of the solo decode
// loop — and reports whether the lane retires instead of stepping.
func (s *Scheduler) advance(ln *schedLane) (stop bool, err error) {
	if len(ln.out) >= ln.opts.MaxTokens {
		return true, nil
	}
	if cerr := ln.ctx.Err(); cerr != nil {
		return true, cerr
	}
	next := ln.opts.Sampler.Sample(ln.logits)
	if next == ln.opts.StopToken {
		return true, nil
	}
	ln.out = append(ln.out, next)
	if ln.emit != nil && !ln.emit(next) {
		return true, nil
	}
	ln.pos++
	if ln.pos >= s.m.Cfg.MaxSeq {
		return true, nil
	}
	ln.next = next
	return false, nil
}

// retire removes a lane from the batch: release its scratch, record the
// outcome, and wake its Generate caller. Lanes cancelled while still
// queued retire without ever having acquired a DecodeLane. After done
// closes the scheduler never touches the lane or its KV again.
func (s *Scheduler) retire(ln *schedLane, err error) {
	ln.err = err
	if ln.dl != nil {
		ln.dl.Close()
	}
	if s.draft != nil && len(ln.out) >= 2 {
		// Feed the accepted stream to the draft source — only tokens
		// decode actually produced, never rejected proposals, so the
		// predictor cannot reinforce its own mistakes. Streams train the
		// draft even when the request itself declined speculation.
		s.draft.Observe(ln.specClass, ln.out)
	}
	s.mu.Lock()
	s.retired++
	if err != nil && ln.ctx.Err() != nil {
		s.cancelled++
	}
	s.mu.Unlock()
	close(ln.done)
}
