package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/evict"
	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// recordingSampler snapshots the logits of every Sample call before
// delegating, so tests can compare fused and solo logit streams bit for
// bit, not just the sampled tokens.
type recordingSampler struct {
	inner  model.Sampler
	logits [][]float32
}

func (r *recordingSampler) Sample(l []float32) int {
	r.logits = append(r.logits, append([]float32(nil), l...))
	return r.inner.Sample(l)
}

// goldenReq is one heterogeneous request of the golden fused-vs-solo
// comparison: its own schema/prompt, its own sampler family, its own
// reply length (so lanes retire at different steps).
type goldenReq struct {
	prompt    string
	maxTokens int
	sampler   func() model.Sampler
}

func goldenRequests() []goldenReq {
	greedy := func() model.Sampler { return model.GreedySampler{} }
	temp := func(seed uint64) func() model.Sampler {
		return func() model.Sampler { return &model.TemperatureSampler{Temperature: 0.8, RNG: rng.New(seed)} }
	}
	topk := func(seed uint64) func() model.Sampler {
		return func() model.Sampler { return &model.TopKSampler{K: 12, Temperature: 0.9, RNG: rng.New(seed)} }
	}
	return []goldenReq{
		{`<prompt schema="travel"><miami/>Plan a beach day.</prompt>`, 24, greedy},
		{`<prompt schema="travel"><trip-plan duration="two days"/><tokyo/>Plan it.</prompt>`, 9, temp(5)},
		{`<prompt schema="form"><letter name="Ada Lovelace" item="two red kites" date="next tuesday"/>Confirm the delivery.</prompt>`, 17, topk(21)},
		{`<prompt schema="travel"><trip-plan duration="one week"/>Give an outline.</prompt>`, 31, temp(11)},
		{`<prompt schema="form"><letter name="Alan Turing" item="one blue boat" date="this friday"/>Confirm it.</prompt>`, 6, greedy},
		{`<prompt schema="travel"><tokyo/>List three temples to visit.</prompt>`, 40, topk(77)},
	}
}

type goldenRun struct {
	toks   []int
	logits [][]float32
	err    error
}

// runGolden serves and decodes one request on c, recording every logits
// vector its sampler saw. StopToken -1 keeps untrained-model EOS argmax
// from shortening replies, so retirement happens exactly at maxTokens.
func runGolden(ctx context.Context, c *Cache, rq goldenReq) goldenRun {
	res, err := c.Serve(ctx, rq.prompt, ServeOpts{})
	if err != nil {
		return goldenRun{err: err}
	}
	defer res.Close()
	rec := &recordingSampler{inner: rq.sampler()}
	ids, err := c.Generate(ctx, res, model.GenerateOpts{MaxTokens: rq.maxTokens, Sampler: rec, StopToken: -1})
	return goldenRun{toks: ids, logits: rec.logits, err: err}
}

// TestSchedulerGoldenFused is the bit-identity contract of continuous
// batching: a fused batch of heterogeneous requests — different schemas,
// samplers, reply lengths, joining and retiring mid-run, through a batch
// bound smaller than the request count so admission also churns — must
// produce, per request, exactly the token and logit streams of a solo
// run. Covered on RoPE and on ALiBi (whose position gaps between modules
// exercise the §4.2 "white space" path during decode attention).
func TestSchedulerGoldenFused(t *testing.T) {
	// The backend dimension makes this also the cross-backend golden: the
	// solo reference always runs the scalar backend, while the fused cache
	// runs the backend under test — so a "parallel" pass proves scheduler
	// fusion AND kernel parallelism together reproduce the sequential
	// scalar streams bit for bit.
	archs := []struct {
		name  string
		cfg   model.Config
		fused tensor.Backend
	}{
		{"llama", model.LlamaStyle(coreVocab, 77), tensor.Scalar()},
		{"llama-parallel", model.LlamaStyle(coreVocab, 77), tensor.NewParallel(4)},
		{"mpt-alibi", model.MPTStyle(coreVocab, 77), tensor.Scalar()},
		{"mpt-alibi-parallel", model.MPTStyle(coreVocab, 77), tensor.NewParallel(4)},
	}
	for _, arch := range archs {
		t.Run(arch.name, func(t *testing.T) {
			ctx := context.Background()
			solo := newTestCache(t, arch.cfg)
			solo.Model().SetBackend(tensor.Scalar())
			fused := newTestCache(t, arch.cfg, WithDecodeScheduler(4), WithBackend(arch.fused))
			reqs := goldenRequests()
			for _, c := range []*Cache{solo, fused} {
				mustRegister(t, c, travelSchema)
				mustRegister(t, c, multiParamSchema)
				// Warm the learned vocabulary in a fixed order on both
				// caches, so concurrent serving later cannot perturb word-id
				// assignment between them.
				for _, rq := range reqs {
					res, err := c.Serve(ctx, rq.prompt, ServeOpts{})
					if err != nil {
						t.Fatal(err)
					}
					res.Close()
				}
			}

			want := make([]goldenRun, len(reqs))
			for i, rq := range reqs {
				want[i] = runGolden(ctx, solo, rq)
				if want[i].err != nil {
					t.Fatalf("solo %d: %v", i, want[i].err)
				}
			}

			got := make([]goldenRun, len(reqs))
			var wg sync.WaitGroup
			for i, rq := range reqs {
				wg.Add(1)
				go func(i int, rq goldenReq) {
					defer wg.Done()
					got[i] = runGolden(ctx, fused, rq)
				}(i, rq)
			}
			wg.Wait()

			for i := range reqs {
				if got[i].err != nil {
					t.Fatalf("fused %d: %v", i, got[i].err)
				}
				if len(got[i].toks) != len(want[i].toks) {
					t.Fatalf("req %d: fused %d tokens, solo %d", i, len(got[i].toks), len(want[i].toks))
				}
				for j := range got[i].toks {
					if got[i].toks[j] != want[i].toks[j] {
						t.Fatalf("req %d token %d: fused %d, solo %d", i, j, got[i].toks[j], want[i].toks[j])
					}
				}
				if len(got[i].logits) != len(want[i].logits) {
					t.Fatalf("req %d: fused sampled %d times, solo %d", i, len(got[i].logits), len(want[i].logits))
				}
				for j := range got[i].logits {
					if d := tensor.MaxAbsDiff(got[i].logits[j], want[i].logits[j]); d != 0 {
						t.Fatalf("req %d step %d: fused logits diverge from solo by %v", i, j, d)
					}
				}
			}

			st := fused.SchedStats()
			if !st.Enabled || st.MaxBatch != 4 {
				t.Fatalf("scheduler stats: %+v", st)
			}
			if st.LanesJoined < int64(len(reqs)) || st.LanesRetired != st.LanesJoined {
				t.Fatalf("joined %d retired %d, want %d lifecycle-balanced", st.LanesJoined, st.LanesRetired, len(reqs))
			}
			if st.TokensDecoded == 0 || st.Steps == 0 {
				t.Fatalf("no fused work recorded: %+v", st)
			}
		})
	}
}

// TestSchedulerFusesLanes proves two concurrent generations actually
// share fused steps (the batch-size histogram moves past 1): request A's
// stream callback gates until B is visible to the scheduler, so the join
// is deterministic, not a timing accident.
func TestSchedulerFusesLanes(t *testing.T) {
	c := llamaCache(t, WithDecodeScheduler(4))
	mustRegister(t, c, travelSchema)
	ctx := context.Background()
	resA, err := c.Serve(ctx, `<prompt schema="travel"><miami/>First.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer resA.Close()
	resB, err := c.Serve(ctx, `<prompt schema="travel"><tokyo/>Second.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer resB.Close()

	startB := make(chan struct{})
	bDone := make(chan error, 1)
	go func() {
		<-startB
		_, err := c.Generate(ctx, resB, model.GenerateOpts{MaxTokens: 8, StopToken: -1})
		bDone <- err
	}()

	gated := false
	_, err = c.GenerateStream(ctx, resA, model.GenerateOpts{MaxTokens: 40, StopToken: -1}, func(string) bool {
		if !gated {
			gated = true
			close(startB)
			// Wait (bounded) until B is enqueued or admitted; the run loop
			// is parked in this callback, so B cannot be missed afterwards.
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				st := c.SchedStats()
				if st.QueueDepth+st.ActiveLanes >= 2 {
					return true
				}
				time.Sleep(time.Millisecond)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-bDone; err != nil {
		t.Fatal(err)
	}
	st := c.SchedStats()
	var fusedSteps int64
	for i, n := range st.BatchHist {
		if i >= 1 {
			fusedSteps += n
		}
	}
	if fusedSteps == 0 {
		t.Fatalf("no fused steps recorded: hist=%v", st.BatchHist)
	}
}

// TestSchedulerCancelEvictsLane: cancelling one request's context must
// retire exactly that lane (with the context error) while a concurrent
// lane keeps decoding to its full solo-identical reply.
func TestSchedulerCancelEvictsLane(t *testing.T) {
	c := llamaCache(t, WithDecodeScheduler(4))
	mustRegister(t, c, travelSchema)
	ctx := context.Background()

	// Expected survivor output, decoded through the same scheduler while
	// idle (fused ≡ solo, so a quiet pass is a valid reference).
	wantB := runGolden(ctx, c, goldenReq{
		`<prompt schema="travel"><tokyo/>Keep going.</prompt>`, 24,
		func() model.Sampler { return model.GreedySampler{} },
	})
	if wantB.err != nil {
		t.Fatal(wantB.err)
	}

	cancelCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	resA, err := c.Serve(ctx, `<prompt schema="travel"><miami/>Cancelled one.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer resA.Close()

	aDone := make(chan goldenRun, 1)
	go func() {
		emitted := 0
		ids, err := c.GenerateStream(cancelCtx, resA, model.GenerateOpts{MaxTokens: 500, StopToken: -1}, func(string) bool {
			emitted++
			if emitted == 3 {
				cancel()
			}
			return true
		})
		aDone <- goldenRun{toks: ids, err: err}
	}()

	gotB := runGolden(ctx, c, goldenReq{
		`<prompt schema="travel"><tokyo/>Keep going.</prompt>`, 24,
		func() model.Sampler { return model.GreedySampler{} },
	})
	if gotB.err != nil {
		t.Fatal(gotB.err)
	}
	a := <-aDone
	if !errors.Is(a.err, context.Canceled) {
		t.Fatalf("cancelled lane error = %v, want context.Canceled", a.err)
	}
	if len(a.toks) >= 500 || len(a.toks) < 3 {
		t.Fatalf("cancelled lane decoded %d tokens, want a handful", len(a.toks))
	}
	if len(gotB.toks) != len(wantB.toks) {
		t.Fatalf("survivor decoded %d tokens, want %d", len(gotB.toks), len(wantB.toks))
	}
	for j := range gotB.toks {
		if gotB.toks[j] != wantB.toks[j] {
			t.Fatalf("survivor token %d: %d != %d", j, gotB.toks[j], wantB.toks[j])
		}
	}
	if st := c.SchedStats(); st.LanesCancelled == 0 {
		t.Fatalf("cancellation not recorded: %+v", st)
	}
}

// TestSchedulerChurnHammer mixes scheduler decode with every mutating
// cache entry point — Serve+Generate loops, Prefetch promotion churn,
// schema registration, eviction under a deliberately tiny device pool
// with a host tier — and exists mainly for the race detector.
func TestSchedulerChurnHammer(t *testing.T) {
	c := llamaCache(t,
		WithDecodeScheduler(4),
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: 96 << 10})),
		WithHostPool(memory.NewPool(memory.Device{Name: "host", Kind: memory.DRAM})),
		WithEvictionPolicy(evict.NewLRU()),
	)
	mustRegister(t, c, travelSchema)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(3)
		go func(w int) {
			defer wg.Done()
			prompts := []string{
				`<prompt schema="travel"><miami/>Go.</prompt>`,
				`<prompt schema="travel"><tokyo/>Go.</prompt>`,
				`<prompt schema="travel"><trip-plan duration="two days"/><miami/>Go.</prompt>`,
			}
			for i := 0; i < 6; i++ {
				res, err := c.Serve(ctx, prompts[(w+i)%len(prompts)], ServeOpts{})
				if err != nil {
					errs <- err
					return
				}
				if _, err := c.Generate(ctx, res, model.GenerateOpts{MaxTokens: 5, StopToken: -1}); err != nil {
					res.Close()
					errs <- err
					return
				}
				res.Close()
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if err := c.Prefetch("travel", "miami", "tokyo"); err != nil {
					errs <- err
					return
				}
				c.SchedStats()
			}
		}()
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				src := fmt.Sprintf(`<schema name="churn%d_%d"><module name="m">churn content %d %d plus padding words</module></schema>`, w, i, w, i)
				if _, err := c.RegisterSchema(src); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.SchedStats()
	if st.ActiveLanes != 0 || st.QueueDepth != 0 {
		t.Fatalf("scheduler not drained: %+v", st)
	}
	if st.LanesJoined != st.LanesRetired {
		t.Fatalf("lane leak: joined %d retired %d", st.LanesJoined, st.LanesRetired)
	}
}

// TestSchedulerCancelQueuedLane: a request cancelled while still waiting
// in the admission queue (batch full) must retire promptly — the sweep
// at the top of each iteration — not wait for a batch slot to free.
func TestSchedulerCancelQueuedLane(t *testing.T) {
	c := llamaCache(t, WithDecodeScheduler(1)) // one slot: B must queue behind A
	mustRegister(t, c, travelSchema)
	ctx := context.Background()
	resA, err := c.Serve(ctx, `<prompt schema="travel"><miami/>Long one.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer resA.Close()
	resB, err := c.Serve(ctx, `<prompt schema="travel"><tokyo/>Queued one.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer resB.Close()

	aStarted := make(chan struct{})
	var once sync.Once
	var stopA atomic.Bool
	aDone := make(chan error, 1)
	go func() {
		_, err := c.GenerateStream(ctx, resA, model.GenerateOpts{MaxTokens: 100000, StopToken: -1}, func(string) bool {
			once.Do(func() { close(aStarted) })
			return !stopA.Load()
		})
		aDone <- err
	}()
	<-aStarted

	bCtx, cancelB := context.WithCancel(ctx)
	bDone := make(chan error, 1)
	go func() {
		_, err := c.Generate(bCtx, resB, model.GenerateOpts{MaxTokens: 100000, StopToken: -1})
		bDone <- err
	}()
	// Let B reach the queue behind A's full batch, then cancel it.
	deadline := time.Now().Add(10 * time.Second)
	for c.SchedStats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("B never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancelB()
	select {
	case err := <-bDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued lane error = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled queued lane did not retire while the batch stayed full")
	}
	stopA.Store(true)
	if err := <-aDone; err != nil {
		t.Fatal(err)
	}
}
