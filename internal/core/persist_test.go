package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/tensor"
)

// TestWarmRestartFP32 is the restart acceptance path: register, serve,
// SaveAll, construct a fresh Cache via OpenDir, and the first serve is a
// cache hit — no module encoding at all — with bit-identical logits under
// the fp32 codec.
func TestWarmRestartFP32(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 601)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewCache(m)
	mustRegister(t, orig, travelSchema)
	prompt := `<prompt schema="travel"><trip-plan duration="five days"/><tokyo/>Plan the trip.</prompt>`
	want, err := orig.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want.Close()

	dir := t.TempDir()
	if err := orig.SaveAll(dir); err != nil {
		t.Fatal(err)
	}

	restored, err := OpenDir(m, dir)
	if err != nil {
		t.Fatal(err)
	}
	st := restored.Stats()
	if st.ModulesRestored != 4 {
		t.Fatalf("restored = %d, want 4", st.ModulesRestored)
	}
	if st.ModulesEncoded != 0 || st.TokensEncoded != 0 {
		t.Fatalf("OpenDir must not encode: %+v", st)
	}
	got, err := restored.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got.Close()
	if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d != 0 {
		t.Fatalf("fp32 warm-restart serve differs by %v", d)
	}
	st = restored.Stats()
	if st.ModulesEncoded != 0 {
		t.Fatalf("first serve after restart re-encoded: %+v", st)
	}
	if st.DiskHits == 0 {
		t.Fatal("first serve should read modules back from disk")
	}
	if got.CachedTokens != want.CachedTokens || got.NewTokens != want.NewTokens {
		t.Fatalf("reuse accounting differs: got %d/%d want %d/%d",
			got.CachedTokens, got.NewTokens, want.CachedTokens, want.NewTokens)
	}
}

// TestWarmRestartQuantizedCodecs: int8 and int4 snapshots restore with
// logits inside the codec's reconstruction bound (checked as closeness to
// the full-precision serve, same thresholds the in-memory quantization
// tests use).
func TestWarmRestartQuantizedCodecs(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 607)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewCache(m)
	mustRegister(t, orig, travelSchema)
	prompt := `<prompt schema="travel"><miami/>Surfing conditions?</prompt>`
	want, err := orig.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want.Close()

	for _, codec := range []Codec{CodecInt8, CodecInt4} {
		t.Run(codec.String(), func(t *testing.T) {
			dir := t.TempDir()
			saver := NewCache(m, WithDiskTier(dir, codec))
			mustRegister(t, saver, travelSchema)
			if err := saver.SaveAll(dir); err != nil {
				t.Fatal(err)
			}
			restored, err := OpenDir(m, dir)
			if err != nil {
				t.Fatal(err)
			}
			got, err := restored.Serve(context.Background(), prompt, ServeOpts{})
			if err != nil {
				t.Fatal(err)
			}
			got.Close()
			if restored.Stats().ModulesEncoded != 0 {
				t.Fatal("quantized restore should not encode")
			}
			cos := tensor.CosineSimilarity(want.Logits, got.Logits)
			min := 0.99
			if codec == CodecInt4 {
				min = 0.95 // coarser grid, looser bound
			}
			if cos < min {
				t.Fatalf("%s warm-restart cosine %.4f, want >= %.2f", codec, cos, min)
			}
		})
	}
}

// TestWarmRestartScaffold: scaffold states persist too (always fp32), so
// a restarted cache applies the scaffold override without any encoding.
func TestWarmRestartScaffold(t *testing.T) {
	schema := `<schema name="s">
	  <module name="a">first clause words here</module>
	  <module name="b">second clause words there</module>
	  <scaffold name="ab" modules="a b"/>
	</schema>`
	cfg := model.LlamaStyle(coreVocab, 613)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewCache(m)
	mustRegister(t, orig, schema)
	prompt := `<prompt schema="s"><a/><b/>Relate them.</prompt>`
	want, err := orig.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want.Close()

	dir := t.TempDir()
	if err := orig.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenDir(m, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := restored.Stats(); st.ModulesEncoded != 0 {
		t.Fatalf("scaffold restore encoded: %+v", st)
	}
	got, err := restored.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got.Close()
	if len(got.Scaffolds) != 1 {
		t.Fatalf("scaffold not applied after restart: %v", got.Scaffolds)
	}
	if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d != 0 {
		t.Fatalf("scaffolded warm-restart serve differs by %v", d)
	}
}

// TestEvictionSpillsToDisk is the eviction acceptance path: with no host
// tier and a device pool too small for the schema, dropped modules land
// on disk instead, and a later serve promotes them back — no ErrCapacity,
// no re-encode — bit-identically under the fp32 codec.
func TestEvictionSpillsToDisk(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 617)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	dir := t.TempDir()
	spilling := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/2 + 1})),
		WithDiskTier(dir, CodecFP32),
	)
	mustRegister(t, spilling, travelSchema)
	st := spilling.Stats()
	if st.ModulesSpilled == 0 {
		t.Fatalf("expected disk spills, got %+v", st)
	}
	if spilling.DiskUsed() == 0 || spilling.DiskModules() == 0 {
		t.Fatal("disk tier occupancy should be nonzero after spills")
	}

	// Serving cycles every module through the disk tier without a single
	// re-encode, matching the unconstrained cache exactly.
	prompts := []string{
		`<prompt schema="travel"><trip-plan duration="a week"/><tokyo/>Plan.</prompt>`,
		`<prompt schema="travel"><miami/>Surf?</prompt>`,
		`<prompt schema="travel"><trip-plan duration="two days"/><miami/>Plan.</prompt>`,
	}
	encodes := spilling.Stats().ModulesEncoded
	for _, p := range prompts {
		want, err := probe.Serve(context.Background(), p, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := spilling.Serve(context.Background(), p, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d != 0 {
			t.Fatalf("disk-tier serve differs by %v", d)
		}
		want.Close()
		got.Close()
	}
	st = spilling.Stats()
	if st.ModulesEncoded != encodes {
		t.Fatalf("disk tier re-encoded: %d -> %d", encodes, st.ModulesEncoded)
	}
	if st.DiskHits == 0 {
		t.Fatal("expected disk hits on reuse")
	}
	if st.ModulesReloaded != 0 {
		t.Fatalf("spilled modules must not reload via encode, got %d", st.ModulesReloaded)
	}
	if st.TierAccountErrors != 0 {
		t.Fatalf("tier accounting drifted: %+v", st)
	}
}

// TestDiskSpillBelowHostTier: with all three tiers, the host pool fills
// first, the overflow spills to disk, and everything still serves.
func TestDiskSpillBelowHostTier(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 619)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	dir := t.TempDir()
	tiered := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/3 + 1})),
		WithHostPool(memory.NewPool(memory.Device{Name: "dram", Kind: memory.DRAM, Capacity: need / 4})),
		WithDiskTier(dir, CodecFP32),
	)
	mustRegister(t, tiered, travelSchema)
	st := tiered.Stats()
	if st.ModulesDemoted == 0 || st.ModulesSpilled == 0 {
		t.Fatalf("expected both demotions and spills, got %+v", st)
	}
	res, err := tiered.Serve(context.Background(), `<prompt schema="travel"><tokyo/>Plan.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	want, err := probe.Serve(context.Background(), `<prompt schema="travel"><tokyo/>Plan.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want.Close()
	if d := tensor.MaxAbsDiff(res.Logits, want.Logits); d != 0 {
		t.Fatalf("three-tier serve differs by %v", d)
	}
}

// TestCorruptDiskBlobFallsBack: an unreadable blob degrades to a
// transparent re-encode — the serve succeeds, the corruption is counted.
func TestCorruptDiskBlobFallsBack(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 631)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	dir := t.TempDir()
	spilling := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/2 + 1})),
		WithDiskTier(dir, CodecFP32),
	)
	mustRegister(t, spilling, travelSchema)
	if spilling.Stats().ModulesSpilled == 0 {
		t.Fatal("setup needs spills")
	}
	blobs, err := filepath.Glob(filepath.Join(dir, "blobs", "*.pckv"))
	if err != nil || len(blobs) == 0 {
		t.Fatalf("no blobs on disk: %v", err)
	}
	for _, b := range blobs {
		if err := os.WriteFile(b, []byte("corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	prompt := `<prompt schema="travel"><trip-plan duration="a week"/><tokyo/>Plan.</prompt>`
	got, err := spilling.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got.Close()
	want, err := probe.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want.Close()
	if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d != 0 {
		t.Fatalf("fallback serve differs by %v", d)
	}
	st := spilling.Stats()
	if st.DiskLoadErrors == 0 {
		t.Fatalf("corruption should be counted, got %+v", st)
	}
}

// TestOpenDirRejectsDrift: a snapshot does not restore into a different
// world — wrong model shape or missing manifest must fail cleanly.
func TestOpenDirRejectsDrift(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 641)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewCache(m)
	mustRegister(t, orig, travelSchema)
	dir := t.TempDir()
	if err := orig.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	if !HasSnapshot(dir) {
		t.Fatal("HasSnapshot should see the manifest")
	}

	other := model.LlamaStyleLarge(coreVocab, 641)
	m2, err := model.New(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(m2, dir); err == nil {
		t.Fatal("mismatched model shape should fail")
	}

	empty := t.TempDir()
	if HasSnapshot(empty) {
		t.Fatal("empty dir has no snapshot")
	}
	if _, err := OpenDir(m, empty); err == nil {
		t.Fatal("missing manifest should fail")
	}

	// A corrupted manifest is an error, not a panic.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(m, dir); err == nil {
		t.Fatal("corrupt manifest should fail")
	}
}

// TestSaveAllReRegisterInvalidatesBlobs: re-registering a schema drops
// its disk entries so a stale blob can never serve a new registration.
func TestSaveAllReRegisterInvalidatesBlobs(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 643)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	dir := t.TempDir()
	c := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/2 + 1})),
		WithDiskTier(dir, CodecFP32),
	)
	mustRegister(t, c, travelSchema)
	if c.DiskModules() == 0 {
		t.Fatal("setup needs spilled modules")
	}
	altered := strings.Replace(travelSchema, "superb food", "superb food and trains", 1)
	mustRegister(t, c, altered)
	// The old registration's entries are gone; whatever spilled since
	// belongs to the new one.
	prompt := `<prompt schema="travel"><tokyo/>Plan.</prompt>`
	fresh := NewCache(m)
	mustRegister(t, fresh, altered)
	want, err := fresh.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want.Close()
	got, err := c.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got.Close()
	if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d != 0 {
		t.Fatalf("re-registered disk-tier serve differs by %v", d)
	}
}

// TestDiskTierConcurrentServes: many goroutines serving over a pool that
// fits only part of the working set, so modules cycle device→disk→device
// while blob reads happen off-lock. Run under -race; logits must match
// the unconstrained cache on every serve.
func TestDiskTierConcurrentServes(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 653)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	dir := t.TempDir()
	c := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/2 + 1})),
		WithDiskTier(dir, CodecFP32),
	)
	mustRegister(t, c, travelSchema)

	prompts := []string{
		`<prompt schema="travel"><trip-plan duration="a week"/><tokyo/>Plan.</prompt>`,
		`<prompt schema="travel"><miami/>Surf?</prompt>`,
		`<prompt schema="travel"><trip-plan duration="two days"/><miami/>Plan.</prompt>`,
		`<prompt schema="travel"><tokyo/>Eat.</prompt>`,
	}
	want := make([]*ServeResult, len(prompts))
	for i, p := range prompts {
		w, err := probe.Serve(context.Background(), p, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		want[i] = w
	}

	const workers = 8
	const iters = 6
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < iters; i++ {
				idx := (w + i) % len(prompts)
				res, err := c.Serve(context.Background(), prompts[idx], ServeOpts{})
				if err != nil {
					errc <- err
					return
				}
				d := tensor.MaxAbsDiff(res.Logits, want[idx].Logits)
				res.Close()
				if d != 0 {
					errc <- fmt.Errorf("worker %d prompt %d differs by %v", w, idx, d)
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.ModulesSpilled == 0 || st.DiskHits == 0 {
		t.Fatalf("hammer never exercised the disk tier: %+v", st)
	}
	if st.TierAccountErrors != 0 {
		t.Fatalf("tier accounting drifted: %+v", st)
	}
}

// TestFailedOpenDirPreservesSnapshot: OpenDir against a model whose
// tokenizer produces different token counts fails — and must leave the
// snapshot on disk intact, so the right configuration can still open it.
func TestFailedOpenDirPreservesSnapshot(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 659)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewCache(m)
	mustRegister(t, orig, travelSchema)
	dir := t.TempDir()
	if err := orig.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	blobs, _ := filepath.Glob(filepath.Join(dir, "blobs", "*.pckv"))
	if len(blobs) == 0 {
		t.Fatal("snapshot wrote no blobs")
	}

	// Drift one module's recorded token count: the restore validates it
	// against the re-compiled layout and fails partway through.
	manPath := filepath.Join(dir, "manifest.json")
	man, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	drifted := strings.Replace(string(man), `"tokens": `, `"tokens": 1`, 1)
	if drifted == string(man) {
		t.Fatal("manifest has no tokens field to drift")
	}
	if err := os.WriteFile(manPath, []byte(drifted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(m, dir); err == nil {
		t.Fatal("drifted token count should fail the restore")
	}
	after, _ := filepath.Glob(filepath.Join(dir, "blobs", "*.pckv"))
	if len(after) != len(blobs) {
		t.Fatalf("failed restore deleted blobs: %d -> %d", len(blobs), len(after))
	}
	// With the original manifest back, the snapshot still opens: the
	// failed attempt destroyed nothing.
	if err := os.WriteFile(manPath, man, 0o644); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenDir(m, dir)
	if err != nil {
		t.Fatalf("snapshot no longer opens: %v", err)
	}
	res, err := restored.Serve(context.Background(), `<prompt schema="travel"><miami/>Surf?</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
}

// TestOpenDirHonorsExplicitCodec: an explicit WithDiskTier on the same
// dir keeps its codec across a warm restart (the -cache-codec flag must
// win over the snapshot's recorded codec); without one, the manifest's
// codec is adopted.
func TestOpenDirHonorsExplicitCodec(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 661)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	orig := NewCache(m, WithDiskTier(dir, CodecInt8))
	mustRegister(t, orig, travelSchema)
	if err := orig.SaveAll(dir); err != nil {
		t.Fatal(err)
	}

	flagged, err := OpenDir(m, dir, WithDiskTier(dir, CodecFP32))
	if err != nil {
		t.Fatal(err)
	}
	if flagged.disk.codec != CodecFP32 {
		t.Fatalf("explicit codec lost: %v", flagged.disk.codec)
	}
	if flagged.DiskModules() == 0 {
		t.Fatal("explicit tier still restores the snapshot index")
	}
	defaulted, err := OpenDir(m, dir)
	if err != nil {
		t.Fatal(err)
	}
	if defaulted.disk.codec != CodecInt8 {
		t.Fatalf("manifest codec not adopted: %v", defaulted.disk.codec)
	}
}

// TestMissingDiskBlobFallsBack: a deleted blob file re-encodes
// transparently, invalidates the stale index entry, and a later eviction
// spills fresh — the tier self-heals.
func TestMissingDiskBlobFallsBack(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 673)
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := NewCache(m)
	mustRegister(t, probe, travelSchema)
	need := probe.PoolUsed()

	dir := t.TempDir()
	c := NewCache(m,
		WithPool(memory.NewPool(memory.Device{Name: "hbm", Kind: memory.HBM, Capacity: need/2 + 1})),
		WithDiskTier(dir, CodecFP32),
	)
	mustRegister(t, c, travelSchema)
	if c.Stats().ModulesSpilled == 0 {
		t.Fatal("setup needs spills")
	}
	if err := os.RemoveAll(filepath.Join(dir, "blobs")); err != nil {
		t.Fatal(err)
	}
	prompt := `<prompt schema="travel"><trip-plan duration="a week"/><tokyo/>Plan.</prompt>`
	got, err := c.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got.Close()
	want, err := probe.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want.Close()
	if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d != 0 {
		t.Fatalf("fallback serve differs by %v", d)
	}
	if c.Stats().DiskLoadErrors == 0 {
		t.Fatal("missing blobs should be counted")
	}
	// Cycling the other modules back in evicts the re-encoded ones:
	// with the stale entries invalidated, they spill fresh and the new
	// blobs read back fine.
	for _, p := range []string{
		`<prompt schema="travel"><miami/>Surf?</prompt>`,
		prompt,
	} {
		res, err := c.Serve(context.Background(), p, ServeOpts{})
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
	}
	blobs, _ := filepath.Glob(filepath.Join(dir, "blobs", "*.pckv"))
	if len(blobs) == 0 {
		t.Fatal("re-spill after invalidation wrote no fresh blobs")
	}
}
