package core

import (
	"testing"

	"repro/internal/model"
)

func TestContinueMultiTurn(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	res, err := c.Serve(`<prompt schema="travel"><miami/><user>Plan a beach day.</user></prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	gen1, err := c.Generate(res, model.GenerateOpts{MaxTokens: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Commit the generated turn into the session cache before the next
	// user turn (Generate already appended the tokens' states).
	lenAfterGen := res.KV.Len()
	res2, err := c.Continue(res, "Now add an evening plan.")
	if err != nil {
		t.Fatal(err)
	}
	if res2.KV.Len() <= lenAfterGen {
		t.Fatal("Continue did not extend the session cache")
	}
	if res2.NewTokens <= res.NewTokens {
		t.Fatal("NewTokens accounting did not grow")
	}
	gen2, err := c.Generate(res2, model.GenerateOpts{MaxTokens: 6})
	if err != nil {
		t.Fatal(err)
	}
	_ = gen1
	_ = gen2
	// Positions stay strictly increasing across turns.
	last := -1
	for _, p := range res2.KV.Pos {
		if p < last {
			// Module layout positions are sorted by assembly; generated
			// and continued tokens must extend past the maximum.
			continue
		}
		last = p
	}
	if res2.KV.MaxPos() <= res.CachedTokens {
		t.Fatalf("session positions did not advance: max=%d", res2.KV.MaxPos())
	}
}

func TestContinueValidation(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	if _, err := c.Continue(nil, "hi"); err == nil {
		t.Fatal("nil result should fail")
	}
	res, err := c.Serve(`<prompt schema="travel"><miami/>Go.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Continue(res, "   "); err == nil {
		t.Fatal("empty text should fail")
	}
}

func TestContinueHitsMaxSeq(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 41)
	cfg.MaxSeq = 64
	c := newTestCache(t, cfg)
	mustRegister(t, c, `<schema name="tiny"><module name="m">short module text</module></schema>`)
	res, err := c.Serve(`<prompt schema="tiny"><m/>first question</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 20; i++ {
		res2, err := c.Continue(res, "another fairly long follow up question with many words")
		if err != nil {
			lastErr = err
			break
		}
		res = res2
	}
	if lastErr == nil {
		t.Fatal("expected max-seq exhaustion")
	}
}
