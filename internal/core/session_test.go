package core

import (
	"context"
	"testing"

	"repro/internal/model"
)

func TestContinueMultiTurn(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	res, err := c.Serve(context.Background(), `<prompt schema="travel"><miami/><user>Plan a beach day.</user></prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	gen1, err := c.Generate(context.Background(), res, model.GenerateOpts{MaxTokens: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Commit the generated turn into the session cache before the next
	// user turn (Generate already appended the tokens' states).
	lenAfterGen := res.KV.Len()
	res2, err := c.Continue(context.Background(), res, "Now add an evening plan.")
	if err != nil {
		t.Fatal(err)
	}
	if res2.KV.Len() <= lenAfterGen {
		t.Fatal("Continue did not extend the session cache")
	}
	// Per-turn accounting: the whole prior session state counts as
	// reused, only the new turn's text as computed.
	if res2.CachedTokens != lenAfterGen {
		t.Fatalf("CachedTokens = %d, want the pre-turn session length %d", res2.CachedTokens, lenAfterGen)
	}
	if res2.NewTokens != res2.KV.Len()-lenAfterGen {
		t.Fatalf("NewTokens = %d, want the turn's own %d tokens", res2.NewTokens, res2.KV.Len()-lenAfterGen)
	}
	gen2, err := c.Generate(context.Background(), res2, model.GenerateOpts{MaxTokens: 6})
	if err != nil {
		t.Fatal(err)
	}
	_ = gen1
	_ = gen2
	// Positions stay strictly increasing across turns.
	last := -1
	for _, p := range res2.KV.Positions() {
		if p < last {
			// Module layout positions are sorted by assembly; generated
			// and continued tokens must extend past the maximum.
			continue
		}
		last = p
	}
	if res2.KV.MaxPos() <= res.CachedTokens {
		t.Fatalf("session positions did not advance: max=%d", res2.KV.MaxPos())
	}
}

func TestContinueValidation(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	if _, err := c.Continue(context.Background(), nil, "hi"); err == nil {
		t.Fatal("nil result should fail")
	}
	res, err := c.Serve(context.Background(), `<prompt schema="travel"><miami/>Go.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Continue(context.Background(), res, "   "); err == nil {
		t.Fatal("empty text should fail")
	}
}

func TestContinueHitsMaxSeq(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 41)
	cfg.MaxSeq = 64
	c := newTestCache(t, cfg)
	mustRegister(t, c, `<schema name="tiny"><module name="m">short module text</module></schema>`)
	res, err := c.Serve(context.Background(), `<prompt schema="tiny"><m/>first question</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 20; i++ {
		res2, err := c.Continue(context.Background(), res, "another fairly long follow up question with many words")
		if err != nil {
			lastErr = err
			break
		}
		res = res2
	}
	if lastErr == nil {
		t.Fatal("expected max-seq exhaustion")
	}
}
