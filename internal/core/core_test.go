package core

import (
	"context"
	"slices"
	"strings"
	"testing"

	"repro/internal/memory"
	"repro/internal/model"
	"repro/internal/pml"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

const coreVocab = tokenizer.WordBase + 1024

func newTestCache(t *testing.T, cfg model.Config, opts ...Option) *Cache {
	t.Helper()
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewCache(m, opts...)
}

func llamaCache(t *testing.T, opts ...Option) *Cache {
	return newTestCache(t, model.LlamaStyle(coreVocab, 77), opts...)
}

const travelSchema = `
<schema name="travel">
  You are a helpful travel planner.
  <module name="trip-plan">
    Plan a trip of duration <param name="duration" len="4"/> at a relaxed pace.
  </module>
  <union>
    <module name="tokyo">Tokyo is the capital of Japan with superb food and temples.</module>
    <module name="miami">Miami is a coastal city in Florida with beaches and surf.</module>
  </union>
</schema>`

func TestRegisterSchemaEncodesAllModules(t *testing.T) {
	c := llamaCache(t)
	ly, err := c.RegisterSchema(travelSchema)
	if err != nil {
		t.Fatal(err)
	}
	if len(ly.Order) != 4 { // _anon0, trip-plan, tokyo, miami
		t.Fatalf("order = %v", ly.Order)
	}
	st := c.Stats()
	if st.ModulesEncoded != 4 {
		t.Fatalf("encoded = %d", st.ModulesEncoded)
	}
	if c.PoolUsed() == 0 {
		t.Fatal("pool should hold module states")
	}
}

func TestRegisterSchemaTooLong(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 1)
	cfg.MaxSeq = 8
	c := newTestCache(t, cfg)
	if _, err := c.RegisterSchema(travelSchema); err == nil {
		t.Fatal("expected max-seq error")
	}
}

func TestServeBasic(t *testing.T) {
	c := llamaCache(t)
	if _, err := c.RegisterSchema(travelSchema); err != nil {
		t.Fatal(err)
	}
	res, err := c.Serve(context.Background(), `<prompt schema="travel">
	  <trip-plan duration="three days"/>
	  <miami/>
	  Highlight the surf spots.
	</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedTokens == 0 || res.NewTokens == 0 {
		t.Fatalf("cached=%d new=%d", res.CachedTokens, res.NewTokens)
	}
	// anon + trip-plan + miami included; tokyo excluded.
	want := []string{"_anon0", "trip-plan", "miami"}
	if len(res.Modules) != len(want) {
		t.Fatalf("modules = %v", res.Modules)
	}
	for i, m := range want {
		if res.Modules[i] != m {
			t.Fatalf("modules = %v", res.Modules)
		}
	}
	// The cache must be far larger than the new text: reuse happened.
	if res.CachedTokens < 3*res.NewTokens {
		t.Fatalf("too little reuse: cached=%d new=%d", res.CachedTokens, res.NewTokens)
	}
	if len(res.Logits) != coreVocab {
		t.Fatalf("logits width %d", len(res.Logits))
	}
}

func TestServeSchemaUnknown(t *testing.T) {
	c := llamaCache(t)
	if _, err := c.Serve(context.Background(), `<prompt schema="ghost">x</prompt>`, ServeOpts{}); err == nil {
		t.Fatal("expected unknown schema error")
	}
}

func TestServeUnknownModule(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	if _, err := c.Serve(context.Background(), `<prompt schema="travel"><atlantis/>x</prompt>`, ServeOpts{}); err == nil {
		t.Fatal("expected unknown module error")
	}
}

func TestServeUnionExclusivity(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	_, err := c.Serve(context.Background(), `<prompt schema="travel"><tokyo/><miami/>go</prompt>`, ServeOpts{})
	if err == nil || !strings.Contains(err.Error(), "union") {
		t.Fatalf("want union error, got %v", err)
	}
}

func TestServeArgTooLong(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	_, err := c.Serve(context.Background(), `<prompt schema="travel">
	  <trip-plan duration="one two three four five six seven"/>ok</prompt>`, ServeOpts{})
	if err == nil || !strings.Contains(err.Error(), "exceeding") {
		t.Fatalf("want length error, got %v", err)
	}
}

func TestServeUnknownParam(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	_, err := c.Serve(context.Background(), `<prompt schema="travel"><trip-plan speed="fast"/>ok</prompt>`, ServeOpts{})
	if err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Fatalf("want param error, got %v", err)
	}
}

func TestServeNoNewTokensRejected(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	if _, err := c.Serve(context.Background(), `<prompt schema="travel"><miami/></prompt>`, ServeOpts{}); err == nil {
		t.Fatal("expected no-new-tokens error")
	}
}

func mustRegister(t *testing.T, c *Cache, src string) {
	t.Helper()
	if _, err := c.RegisterSchema(src); err != nil {
		t.Fatal(err)
	}
}

// TestSingleModuleExactEquivalence is the core correctness theorem: when
// a prompt consists of one module spanning the schema from position 0
// plus a trailing suffix, cached inference is *numerically equivalent* to
// the full-prefill baseline (it degenerates to prefix sharing, §2.2).
func TestSingleModuleExactEquivalence(t *testing.T) {
	schema := `<schema name="doc">
	  <module name="contract">The tenant shall pay rent monthly and keep the garden tidy at all times.</module>
	</schema>`
	prompt := `<prompt schema="doc"><contract/>Summarize the obligations.</prompt>`
	for _, cfg := range []model.Config{
		model.LlamaStyle(coreVocab, 5),
		model.MPTStyle(coreVocab, 5),
		model.FalconStyle(coreVocab, 5),
		model.GPT2Style(coreVocab, 5),
	} {
		c := newTestCache(t, cfg)
		mustRegister(t, c, schema)
		cached, err := c.Serve(context.Background(), prompt, ServeOpts{})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		base, err := c.BaselineServe(context.Background(), prompt)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if d := tensor.MaxAbsDiff(cached.Logits, base.Logits); d > 1e-4 {
			t.Fatalf("%s: cached vs baseline logits differ by %v", cfg.Name, d)
		}
		// Greedy generations agree token for token.
		gc, err := c.Generate(context.Background(), cached, model.GenerateOpts{MaxTokens: 8})
		if err != nil {
			t.Fatal(err)
		}
		gb, err := c.Generate(context.Background(), base, model.GenerateOpts{MaxTokens: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(gc) != len(gb) {
			t.Fatalf("%s: generation lengths differ", cfg.Name)
		}
		for i := range gc {
			if gc[i] != gb[i] {
				t.Fatalf("%s: generations diverge at %d", cfg.Name, i)
			}
		}
	}
}

// TestMultiModuleOutputsComparable: with several independently encoded
// modules, cached inference applies the §3.3 attention-mask approximation;
// outputs should stay close to baseline (high logit cosine similarity)
// though not necessarily identical.
func TestMultiModuleOutputsComparable(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	prompt := `<prompt schema="travel"><trip-plan duration="two weeks"/><tokyo/>What should we eat?</prompt>`
	cached, err := c.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.BaselineServe(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	cs := tensor.CosineSimilarity(cached.Logits, base.Logits)
	// An untrained model has no inductive bias toward semantic locality,
	// so the §3.3 masking approximation perturbs logits more than it
	// would for a trained LLM. The meaningful claim: cached output stays
	// much closer to its own baseline than to an unrelated prompt's.
	other, err := c.BaselineServe(context.Background(), `<prompt schema="travel"><miami/>Completely different question about surfing gear rentals.</prompt>`)
	if err != nil {
		t.Fatal(err)
	}
	unrelated := tensor.CosineSimilarity(base.Logits, other.Logits)
	if cs < 0.5 {
		t.Fatalf("cached/baseline logit cosine = %v, want >= 0.5", cs)
	}
	if cs <= unrelated {
		t.Fatalf("cached/baseline cosine %v should exceed unrelated-prompt cosine %v", cs, unrelated)
	}
}

// TestScaffoldRestoresBaseline: co-encoding all modules as a scaffold
// removes the masking approximation entirely, so a prompt importing every
// scaffold member must match the baseline exactly (§3.3 scaffolding).
func TestScaffoldRestoresBaseline(t *testing.T) {
	schema := `<schema name="s">
	  <module name="alpha">The first clause concerns payment terms and schedules.</module>
	  <module name="beta">The second clause depends on the first clause entirely.</module>
	  <scaffold name="both" modules="alpha beta"/>
	</schema>`
	prompt := `<prompt schema="s"><alpha/><beta/>Explain the dependency.</prompt>`
	c := llamaCache(t)
	mustRegister(t, c, schema)

	withScaffold, err := c.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(withScaffold.Scaffolds) != 1 || withScaffold.Scaffolds[0] != "both" {
		t.Fatalf("scaffolds used = %v", withScaffold.Scaffolds)
	}
	base, err := c.BaselineServe(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(withScaffold.Logits, base.Logits); d > 1e-4 {
		t.Fatalf("scaffold vs baseline differ by %v", d)
	}

	// Ablation: disabling the scaffold reintroduces the approximation.
	masked, err := c.Serve(context.Background(), prompt, ServeOpts{DisableScaffolds: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(masked.Scaffolds) != 0 {
		t.Fatal("scaffold should be disabled")
	}
	if d := tensor.MaxAbsDiff(masked.Logits, base.Logits); d < 1e-6 {
		t.Fatal("independent encoding should differ from co-encoding for dependent modules")
	}
}

// TestScaffoldRequiresAllMembers: importing only part of a scaffold keeps
// individual module states.
func TestScaffoldRequiresAllMembers(t *testing.T) {
	schema := `<schema name="s">
	  <module name="alpha">First part of the context text.</module>
	  <module name="beta">Second part of the context text.</module>
	  <scaffold name="both" modules="alpha beta"/>
	</schema>`
	c := llamaCache(t)
	mustRegister(t, c, schema)
	res, err := c.Serve(context.Background(), `<prompt schema="s"><alpha/>go on</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scaffolds) != 0 {
		t.Fatalf("partial import must not use scaffold, got %v", res.Scaffolds)
	}
}

// TestParameterSubstitution: a supplied argument replaces the <unk>
// buffer rows; the served cache must contain the argument tokens at the
// slot positions and no <unk> rows there.
func TestParameterSubstitution(t *testing.T) {
	c := llamaCache(t)
	ly, err := c.RegisterSchema(travelSchema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Serve(context.Background(), `<prompt schema="travel"><trip-plan duration="five days"/><miami/>Go.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	seg := ly.Modules["trip-plan"].ParamSegment("duration")
	argLen := len(c.Tokenizer().Encode("five days"))
	// Count rows at slot positions.
	slotRows := 0
	for _, p := range res.KV.Positions() {
		for _, sp := range seg.Pos {
			if p == sp {
				slotRows++
			}
		}
	}
	if slotRows != argLen {
		t.Fatalf("slot rows = %d, want %d (arg tokens only)", slotRows, argLen)
	}
}

// TestUnsuppliedParamKeepsBuffer: without an argument the <unk> buffer
// rows stay (whitespace semantics, §3.3).
func TestUnsuppliedParamKeepsBuffer(t *testing.T) {
	c := llamaCache(t)
	ly, _ := c.RegisterSchema(travelSchema)
	res, err := c.Serve(context.Background(), `<prompt schema="travel"><trip-plan/><miami/>Go.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	seg := ly.Modules["trip-plan"].ParamSegment("duration")
	slotRows := 0
	for _, p := range res.KV.Positions() {
		for _, sp := range seg.Pos {
			if p == sp {
				slotRows++
			}
		}
	}
	if slotRows != seg.MaxLen {
		t.Fatalf("slot rows = %d, want full buffer %d", slotRows, seg.MaxLen)
	}
}

// TestNewTextPositionAfterPrecedingModule: uncached text between imports
// takes positions right after the preceding module (§3.4).
func TestNewTextPositions(t *testing.T) {
	schema := `<schema name="s">
	  <module name="a">alpha content words here</module>
	  <module name="b">beta content words here too</module>
	</schema>`
	c := llamaCache(t)
	ly, err := c.RegisterSchema(schema)
	if err != nil {
		t.Fatal(err)
	}
	// Import only a; text should take positions right after a — i.e. in
	// the hole left by excluded b ("in place of excluded modules").
	res, err := c.Serve(context.Background(), `<prompt schema="s"><a/>fresh text</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	a := ly.Modules["a"]
	wantStart := a.Start + a.Len
	// The last NewTokens rows are the fresh text.
	firstNew := res.KV.Positions()[res.KV.Len()-res.NewTokens]
	if firstNew != wantStart {
		t.Fatalf("new text starts at %d, want %d", firstNew, wantStart)
	}

	// With both modules imported, the same text must relocate past the
	// global end instead of overlapping b.
	res2, err := c.Serve(context.Background(), `<prompt schema="s"><a/>fresh text<b/></prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b := ly.Modules["b"]
	firstNew2 := res2.KV.Positions()[res2.KV.Len()-res2.NewTokens]
	if firstNew2 < b.Start+b.Len {
		t.Fatalf("text at %d overlaps included module b [%d,%d)", firstNew2, b.Start, b.Start+b.Len)
	}
}

// TestNestedImports: children import inside their parent; importing a
// nested module at top level is rejected.
func TestNestedImports(t *testing.T) {
	schema := `<schema name="s">
	  <module name="outer">
	    framing text
	    <module name="inner">inner details</module>
	  </module>
	</schema>`
	c := llamaCache(t)
	mustRegister(t, c, schema)
	res, err := c.Serve(context.Background(), `<prompt schema="s"><outer><inner/></outer>Continue.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(res.Modules, "outer") || !slices.Contains(res.Modules, "inner") {
		t.Fatalf("modules = %v", res.Modules)
	}
	if _, err := c.Serve(context.Background(), `<prompt schema="s"><inner/>x</prompt>`, ServeOpts{}); err == nil {
		t.Fatal("top-level import of nested module should fail")
	}
	if _, err := c.Serve(context.Background(), `<prompt schema="s"><outer>loose text</outer>x</prompt>`, ServeOpts{}); err == nil {
		t.Fatal("text inside an import should fail")
	}
}

// TestParentWithoutChild: importing the parent alone excludes the child.
func TestParentWithoutChild(t *testing.T) {
	schema := `<schema name="s">
	  <module name="outer">framing <module name="inner">inner bits</module> closing</module>
	</schema>`
	c := llamaCache(t)
	mustRegister(t, c, schema)
	res, err := c.Serve(context.Background(), `<prompt schema="s"><outer/>Continue.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if slices.Contains(res.Modules, "inner") {
		t.Fatal("child should not be auto-included")
	}
}

// TestEvictionAndReload: a pool too small for all modules evicts LRU
// entries; a later Serve transparently re-encodes and produces the same
// output as an unconstrained cache.
func TestEvictionAndReload(t *testing.T) {
	cfg := model.LlamaStyle(coreVocab, 99)
	// Budget: enough for roughly half the travel schema's states.
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := NewCache(m)
	mustRegister(t, full, travelSchema)
	need := full.PoolUsed()

	small := NewCache(m, WithPool(memory.NewPool(memory.Device{
		Name: "tiny-hbm", Kind: memory.HBM, Capacity: need/2 + 1,
	})))
	mustRegister(t, small, travelSchema)
	if small.Stats().ModulesEvicted == 0 {
		t.Fatal("expected evictions under tight capacity")
	}

	prompt := `<prompt schema="travel"><trip-plan duration="two days"/><tokyo/>Plan it.</prompt>`
	want, err := full.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := small.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want.Logits, got.Logits); d > 1e-4 {
		t.Fatalf("evicting cache changed output by %v", d)
	}
	if small.Stats().ModulesReloaded == 0 {
		t.Fatal("expected re-encodes after eviction")
	}
}

// TestServeDeterministic: serving the same prompt twice yields identical
// logits (cache reuse is exact, not approximate).
func TestServeDeterministic(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	prompt := `<prompt schema="travel"><miami/>Surf?</prompt>`
	a, err := c.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Serve(context.Background(), prompt, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(a.Logits, b.Logits); d != 0 {
		t.Fatalf("repeat serve differs by %v", d)
	}
	if c.Stats().ModulesReused == 0 {
		t.Fatal("second serve should hit the cache")
	}
}

// TestConcatPermutationInvariance: §3.4 claims module concatenation order
// does not matter. Build the cached prefix with modules in reversed order
// and verify the suffix logits match.
func TestConcatPermutationInvariance(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	e := c.schemas["travel"]

	forward := c.Model().NewCache(256)
	reverse := c.Model().NewCache(256)
	names := []string{"_anon0", "trip-plan", "miami"}
	for _, n := range names {
		appendFiltered(forward, e.modules[n].KV, nil)
	}
	for i := len(names) - 1; i >= 0; i-- {
		appendFiltered(reverse, e.modules[names[i]].KV, nil)
	}
	suffix := c.Tokenizer().Encode("tell me about the beaches")
	pos := make([]int, len(suffix))
	for i := range pos {
		pos[i] = e.layout.TotalLen + i
	}
	lf, err := c.Model().Prefill(suffix, pos, forward)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := c.Model().Prefill(suffix, pos, reverse)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(lf, lr); d > 1e-4 {
		t.Fatalf("concat order changed logits by %v", d)
	}
}

// TestGenerateText produces a decodable string.
func TestGenerateText(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	res, err := c.Serve(context.Background(), `<prompt schema="travel"><tokyo/>Recommend food.</prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GenerateText(context.Background(), res, model.GenerateOpts{MaxTokens: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestReRegisterReplacesSchema frees the old states.
func TestReRegisterReplacesSchema(t *testing.T) {
	c := llamaCache(t)
	mustRegister(t, c, travelSchema)
	used1 := c.PoolUsed()
	mustRegister(t, c, travelSchema)
	if c.PoolUsed() != used1 {
		t.Fatalf("pool leaked on re-register: %d -> %d", used1, c.PoolUsed())
	}
}

// TestChatTemplateAppliedToPromptText: role-tagged prompt text is wrapped
// in the model's template tokens.
func TestChatTemplateAppliedToPromptText(t *testing.T) {
	c := llamaCache(t) // llama-style → [INST] wrapping
	mustRegister(t, c, travelSchema)
	res, err := c.Serve(context.Background(), `<prompt schema="travel"><miami/><user>plan it</user></prompt>`, ServeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantNew := len(pml.LlamaTemplate().Wrap(pml.RoleUser, c.Tokenizer().Encode("plan it")))
	if res.NewTokens != wantNew {
		t.Fatalf("new tokens = %d, want %d (template-wrapped)", res.NewTokens, wantNew)
	}
}
