// Package longbench generates synthetic stand-ins for the LongBench suite
// (Bai et al. 2023) the paper evaluates on (§5.1): 21 datasets across 6
// categories, 4–10K-token contexts built from document pools that recur
// across samples — exactly the sharing structure Prompt Cache exploits —
// plus task-specific uncached directives.
//
// Real LongBench data is unavailable offline; what the experiments need
// from it is (a) the cached/uncached token-count distributions per dataset
// (for the latency figures, which use the analytic hardware model) and
// (b) paired prompts with references so baseline and cached inference can
// be scored with the same metrics (for Table 1). Both are preserved:
// documents are deterministic pseudo-text with embedded facts, questions
// target those facts, and references are the fact statements.
package longbench

import (
	"fmt"
	"strings"

	"repro/internal/rng"
)

// Category mirrors LongBench's six task families.
type Category int

const (
	// SingleDocQA asks one question about one document.
	SingleDocQA Category = iota
	// MultiDocQA reasons over several documents.
	MultiDocQA
	// Summarization condenses one or more documents.
	Summarization
	// FewShot prepends in-context examples (TriviaQA-style).
	FewShot
	// Synthetic covers retrieval/counting probes.
	Synthetic
	// Code covers repository-level code completion.
	Code
)

func (c Category) String() string {
	switch c {
	case SingleDocQA:
		return "single-doc QA"
	case MultiDocQA:
		return "multi-doc QA"
	case Summarization:
		return "summarization"
	case FewShot:
		return "few-shot"
	case Synthetic:
		return "synthetic"
	case Code:
		return "code"
	}
	return "unknown"
}

// Dataset describes one LongBench dataset: its task family, Table-1
// metric, and the paper-scale token statistics the latency model consumes
// (ContextTokens ≈ cached document tokens, TaskTokens ≈ uncached
// directive tokens; §5.1 keeps documents cached and directives uncached).
type Dataset struct {
	Name          string
	Category      Category
	Metric        string // "F1", "Rouge L", or "Acc"
	ContextTokens int
	TaskTokens    int
}

// All21 returns the full LongBench roster (§5.1, appendix).
func All21() []Dataset {
	return []Dataset{
		{"NarrativeQA", SingleDocQA, "F1", 6000, 150},
		{"Qasper", SingleDocQA, "F1", 4200, 140},
		{"MultiFieldQA-en", SingleDocQA, "F1", 4800, 120},
		{"MultiFieldQA-zh", SingleDocQA, "F1", 4400, 120},
		{"HotpotQA", MultiDocQA, "F1", 5200, 130},
		{"2 Wiki Multi-Hop QA", MultiDocQA, "F1", 4900, 130},
		{"MuSiQue", MultiDocQA, "F1", 5600, 140},
		{"DuReader", MultiDocQA, "Rouge L", 5100, 160},
		{"GovReport", Summarization, "Rouge L", 6200, 90},
		{"QMSum", Summarization, "Rouge L", 5400, 180},
		{"MultiNews", Summarization, "Rouge L", 4600, 90},
		{"VCSUM", Summarization, "Rouge L", 5800, 100},
		{"TREC", FewShot, "Acc", 4100, 220},
		{"TriviaQA", FewShot, "F1", 5500, 600},
		{"SAMSum", FewShot, "Rouge L", 4300, 240},
		{"LSHT", FewShot, "Acc", 4500, 230},
		{"PassageCount", Synthetic, "Acc", 5000, 80},
		{"Passage Retrieval", Synthetic, "Acc", 5300, 60},
		{"PassageRetrieval-zh", Synthetic, "Acc", 4900, 60},
		{"LCC", Code, "EditSim", 4700, 110},
		{"RepoBench-P", Code, "EditSim", 5200, 130},
	}
}

// Figure8 returns the eight datasets of Figs. 3–4 and Table 1.
func Figure8() []Dataset {
	want := map[string]bool{
		"NarrativeQA": true, "2 Wiki Multi-Hop QA": true, "MuSiQue": true,
		"GovReport": true, "QMSum": true, "MultiNews": true,
		"TriviaQA": true, "Passage Retrieval": true,
	}
	var out []Dataset
	for _, d := range All21() {
		if want[d.Name] {
			out = append(out, d)
		}
	}
	return out
}

// ByName returns the dataset with the given name.
func ByName(name string) (Dataset, bool) {
	for _, d := range All21() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Sample is one evaluation prompt paired with its reference answer.
type Sample struct {
	Prompt    string   // PML prompt importing document modules + question
	Question  string   // raw question text
	Reference string   // ground-truth answer for scoring
	Docs      []string // imported module names
}

// Workload is a dataset instantiated at some scale: one PML schema whose
// modules are the document pool, plus samples that import pool subsets.
type Workload struct {
	Dataset Dataset
	Schema  string
	Samples []Sample
}

// GenConfig controls workload synthesis. The zero value is usable; Scale
// shrinks documents for engine-speed tests while keeping structure.
type GenConfig struct {
	Seed          uint64
	NumSamples    int // prompts to generate (default 8)
	PoolDocs      int // documents in the schema pool (default 6)
	DocsPerSample int // documents each prompt imports (default 2)
	DocSentences  int // sentences per document (default 12)
}

func (g *GenConfig) defaults() {
	if g.NumSamples <= 0 {
		g.NumSamples = 8
	}
	if g.PoolDocs <= 0 {
		g.PoolDocs = 6
	}
	if g.DocsPerSample <= 0 {
		g.DocsPerSample = 2
	}
	if g.DocsPerSample > g.PoolDocs {
		g.DocsPerSample = g.PoolDocs
	}
	if g.DocSentences <= 0 {
		g.DocSentences = 12
	}
}

// vocabulary pools for pseudo-text. Small pools give generations and
// references a realistic token overlap under an untrained model.
var (
	subjects = []string{"river", "archive", "council", "harbor", "garden",
		"observatory", "market", "bridge", "library", "festival", "mine",
		"railway", "castle", "valley", "workshop"}
	attributes = []string{"founder", "height", "color", "age", "keeper",
		"origin", "neighbor", "motto", "season", "patron"}
	values = []string{"amber", "basalt", "cedar", "dorian", "ember",
		"fennel", "garnet", "heather", "indigo", "juniper", "krypton",
		"laurel", "meridian", "nimbus", "ochre"}
	fillers = []string{"the", "records", "show", "that", "many", "visitors",
		"described", "its", "long", "history", "with", "great", "detail",
		"while", "others", "noted", "seasonal", "changes", "and", "trade"}
)

// fact is one retrievable statement planted in a document.
type fact struct {
	subject, attribute, value string
}

func (f fact) statement() string {
	return fmt.Sprintf("the %s of the %s is %s", f.attribute, f.subject, f.value)
}

func (f fact) question() string {
	return fmt.Sprintf("what is the %s of the %s", f.attribute, f.subject)
}

// docContent builds one document's text and returns its planted facts.
func docContent(r *rng.RNG, sentences int) (string, []fact) {
	var sb strings.Builder
	var facts []fact
	for s := 0; s < sentences; s++ {
		if s%3 == 1 { // every third sentence carries a fact
			f := fact{
				subject:   rng.Choice(r, subjects),
				attribute: rng.Choice(r, attributes),
				value:     rng.Choice(r, values),
			}
			facts = append(facts, f)
			sb.WriteString(f.statement())
		} else {
			n := r.IntRange(6, 14)
			words := make([]string, n)
			for i := range words {
				words[i] = rng.Choice(r, fillers)
			}
			sb.WriteString(strings.Join(words, " "))
		}
		sb.WriteString(". ")
	}
	return strings.TrimSpace(sb.String()), facts
}

// Generate synthesizes a workload for dataset d.
func Generate(d Dataset, cfg GenConfig) *Workload {
	cfg.defaults()
	r := rng.New(cfg.Seed ^ rng.NewString(d.Name).Uint64())

	type doc struct {
		name  string
		text  string
		facts []fact
	}
	docs := make([]doc, cfg.PoolDocs)
	var schema strings.Builder
	fmt.Fprintf(&schema, "<schema name=%q>\n", schemaName(d))
	schema.WriteString("  You are a careful assistant answering from the provided documents.\n")
	for i := range docs {
		text, facts := docContent(r.Split(), cfg.DocSentences)
		docs[i] = doc{name: fmt.Sprintf("doc%d", i), text: text, facts: facts}
		fmt.Fprintf(&schema, "  <module name=%q>%s</module>\n", docs[i].name, text)
	}
	schema.WriteString("</schema>\n")

	w := &Workload{Dataset: d, Schema: schema.String()}
	for s := 0; s < cfg.NumSamples; s++ {
		picked := rng.Sample(r, docs, cfg.DocsPerSample)
		names := make([]string, len(picked))
		var imports strings.Builder
		for i, dd := range picked {
			names[i] = dd.name
			fmt.Fprintf(&imports, "<%s/>", dd.name)
		}
		q, ref := taskFor(d, r, picked[0].facts, names)
		prompt := fmt.Sprintf("<prompt schema=%q>%s\n<user>%s</user>\n</prompt>",
			schemaName(d), imports.String(), q)
		w.Samples = append(w.Samples, Sample{
			Prompt: prompt, Question: q, Reference: ref, Docs: names,
		})
	}
	return w
}

func schemaName(d Dataset) string {
	return "lb-" + strings.ToLower(strings.ReplaceAll(d.Name, " ", "-"))
}

// taskFor builds the question and reference appropriate to the dataset's
// category.
func taskFor(d Dataset, r *rng.RNG, facts []fact, docNames []string) (q, ref string) {
	switch d.Category {
	case Summarization:
		q = "summarize the key facts stated in the documents"
		parts := make([]string, 0, len(facts))
		for _, f := range facts {
			parts = append(parts, f.statement())
		}
		return q, strings.Join(parts, ". ")
	case Synthetic:
		f := rng.Choice(r, facts)
		q = fmt.Sprintf("which document states the %s of the %s", f.attribute, f.subject)
		return q, docNames[0]
	case FewShot:
		// Few-shot directives carry worked examples, inflating the
		// uncached portion (the paper calls out TriviaQA for this).
		f := rng.Choice(r, facts)
		example := fact{subject: rng.Choice(r, subjects), attribute: rng.Choice(r, attributes), value: rng.Choice(r, values)}
		q = fmt.Sprintf("for example when asked %s one answers %s. now %s",
			example.question(), example.value, f.question())
		return q, f.value
	case Code:
		f := rng.Choice(r, facts)
		q = fmt.Sprintf("complete the accessor returning the %s of the %s", f.attribute, f.subject)
		return q, f.value
	default: // single- and multi-doc QA
		f := rng.Choice(r, facts)
		return f.question(), f.statement()
	}
}
