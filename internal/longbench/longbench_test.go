package longbench

import (
	"strings"
	"testing"

	"repro/internal/pml"
	"repro/internal/tokenizer"
)

func TestAll21Roster(t *testing.T) {
	ds := All21()
	if len(ds) != 21 {
		t.Fatalf("got %d datasets, LongBench has 21", len(ds))
	}
	seen := map[string]bool{}
	cats := map[Category]int{}
	for _, d := range ds {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
		cats[d.Category]++
		if d.ContextTokens < 4000 || d.ContextTokens > 10000 {
			t.Errorf("%s: context %d outside LongBench's 4-10K", d.Name, d.ContextTokens)
		}
		if d.TaskTokens <= 0 {
			t.Errorf("%s: non-positive task tokens", d.Name)
		}
	}
	if len(cats) != 6 {
		t.Fatalf("got %d categories, want 6", len(cats))
	}
}

func TestFigure8Roster(t *testing.T) {
	ds := Figure8()
	if len(ds) != 8 {
		t.Fatalf("Figure8 has %d datasets, want 8", len(ds))
	}
	want := []string{"NarrativeQA", "2 Wiki Multi-Hop QA", "MuSiQue",
		"GovReport", "QMSum", "MultiNews", "TriviaQA", "Passage Retrieval"}
	for i, d := range ds {
		if d.Name != want[i] {
			t.Fatalf("Figure8[%d] = %q, want %q", i, d.Name, want[i])
		}
	}
}

func TestTriviaQAHasLargestUncached(t *testing.T) {
	// §5.2.2 calls out TriviaQA for its large uncached portion.
	tq, ok := ByName("TriviaQA")
	if !ok {
		t.Fatal("TriviaQA missing")
	}
	for _, d := range Figure8() {
		if d.Name != "TriviaQA" && d.TaskTokens >= tq.TaskTokens {
			t.Fatalf("%s task tokens %d >= TriviaQA's %d", d.Name, d.TaskTokens, tq.TaskTokens)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("GovReport"); !ok {
		t.Fatal("GovReport should resolve")
	}
	if _, ok := ByName("Nonexistent"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d, _ := ByName("NarrativeQA")
	a := Generate(d, GenConfig{Seed: 1})
	b := Generate(d, GenConfig{Seed: 1})
	if a.Schema != b.Schema {
		t.Fatal("schema not deterministic")
	}
	for i := range a.Samples {
		if a.Samples[i].Prompt != b.Samples[i].Prompt || a.Samples[i].Reference != b.Samples[i].Reference {
			t.Fatal("samples not deterministic")
		}
	}
	c := Generate(d, GenConfig{Seed: 2})
	if a.Schema == c.Schema {
		t.Fatal("different seeds should differ")
	}
}

func TestGeneratedSchemaParses(t *testing.T) {
	for _, d := range Figure8() {
		w := Generate(d, GenConfig{Seed: 3, PoolDocs: 4, NumSamples: 3})
		s, err := pml.ParseSchema(w.Schema)
		if err != nil {
			t.Fatalf("%s schema: %v", d.Name, err)
		}
		// Pool docs present as modules.
		mods := 0
		for _, n := range s.Nodes {
			if _, ok := n.(*pml.Module); ok {
				mods++
			}
		}
		if mods != 4 {
			t.Fatalf("%s: %d modules, want 4", d.Name, mods)
		}
	}
}

func TestGeneratedPromptsParseAndResolve(t *testing.T) {
	for _, d := range Figure8() {
		w := Generate(d, GenConfig{Seed: 5, PoolDocs: 5, DocsPerSample: 2, NumSamples: 4})
		for _, s := range w.Samples {
			p, err := pml.ParsePrompt(s.Prompt)
			if err != nil {
				t.Fatalf("%s prompt: %v", d.Name, err)
			}
			if p.SchemaName != schemaName(d) {
				t.Fatalf("%s: schema ref %q", d.Name, p.SchemaName)
			}
			imports := 0
			hasUser := false
			for _, it := range p.Items {
				switch v := it.(type) {
				case *pml.Import:
					imports++
					if !strings.HasPrefix(v.Name, "doc") {
						t.Fatalf("unexpected import %q", v.Name)
					}
				case *pml.PromptText:
					if v.Role == pml.RoleUser {
						hasUser = true
					}
				}
			}
			if imports != 2 || !hasUser {
				t.Fatalf("%s: imports=%d user=%v", d.Name, imports, hasUser)
			}
		}
	}
}

func TestReferencesNonEmpty(t *testing.T) {
	for _, d := range All21() {
		w := Generate(d, GenConfig{Seed: 7, NumSamples: 3})
		for i, s := range w.Samples {
			if strings.TrimSpace(s.Reference) == "" {
				t.Fatalf("%s sample %d: empty reference", d.Name, i)
			}
			if strings.TrimSpace(s.Question) == "" {
				t.Fatalf("%s sample %d: empty question", d.Name, i)
			}
			if len(s.Docs) == 0 {
				t.Fatalf("%s sample %d: no docs", d.Name, i)
			}
		}
	}
}

func TestQAReferenceAnswerable(t *testing.T) {
	// For QA datasets the reference fact statement must literally appear
	// in one of the imported documents.
	d, _ := ByName("NarrativeQA")
	w := Generate(d, GenConfig{Seed: 11, NumSamples: 5})
	for i, s := range w.Samples {
		if !strings.Contains(w.Schema, s.Reference) {
			t.Fatalf("sample %d: reference %q not planted in any document", i, s.Reference)
		}
	}
}

func TestDocSizesScaleWithConfig(t *testing.T) {
	d, _ := ByName("GovReport")
	small := Generate(d, GenConfig{Seed: 13, DocSentences: 4})
	big := Generate(d, GenConfig{Seed: 13, DocSentences: 40})
	tk := tokenizer.New(tokenizer.WordBase + 4096)
	if len(tk.Encode(big.Schema)) < 3*len(tk.Encode(small.Schema)) {
		t.Fatal("DocSentences should scale document size")
	}
}

func TestFewShotDirectiveLonger(t *testing.T) {
	// Few-shot questions carry worked examples → longer task text than
	// plain QA questions, mirroring the dataset metadata.
	qa, _ := ByName("NarrativeQA")
	fs, _ := ByName("TriviaQA")
	wqa := Generate(qa, GenConfig{Seed: 17, NumSamples: 6})
	wfs := Generate(fs, GenConfig{Seed: 17, NumSamples: 6})
	avg := func(w *Workload) int {
		n := 0
		for _, s := range w.Samples {
			n += len(strings.Fields(s.Question))
		}
		return n / len(w.Samples)
	}
	if avg(wfs) <= avg(wqa) {
		t.Fatalf("few-shot questions (%d words) should exceed QA questions (%d words)", avg(wfs), avg(wqa))
	}
}

// TestPaperScaleTokenCounts: generating a workload at paper scale
// (large documents) actually produces schemas whose tokenized size is in
// the 4-10K LongBench band the latency model assumes, reconciling the
// generator with the Dataset.ContextTokens metadata.
func TestPaperScaleTokenCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation")
	}
	d, _ := ByName("QMSum")
	// ~9 tokens per sentence; ContextTokens/PoolDocs sentences per doc
	// puts the pool near the advertised context size.
	sentences := d.ContextTokens / 4 / 9
	w := Generate(d, GenConfig{Seed: 23, PoolDocs: 4, DocSentences: sentences, NumSamples: 1})
	tk := tokenizer.New(tokenizer.WordBase + 65536)
	s, err := pml.ParseSchema(w.Schema)
	if err != nil {
		t.Fatal(err)
	}
	ly, err := pml.Compile(s, tk, pml.PlainTemplate())
	if err != nil {
		t.Fatal(err)
	}
	if ly.TotalLen < 4000 || ly.TotalLen > 10000 {
		t.Fatalf("paper-scale schema is %d tokens, want within LongBench's 4-10K", ly.TotalLen)
	}
}

func TestCategoryString(t *testing.T) {
	for c, want := range map[Category]string{
		SingleDocQA: "single-doc QA", MultiDocQA: "multi-doc QA",
		Summarization: "summarization", FewShot: "few-shot",
		Synthetic: "synthetic", Code: "code",
	} {
		if c.String() != want {
			t.Fatalf("Category(%d) = %q", c, c.String())
		}
	}
}

func TestGenConfigDefaults(t *testing.T) {
	d, _ := ByName("QMSum")
	w := Generate(d, GenConfig{Seed: 19})
	if len(w.Samples) != 8 {
		t.Fatalf("default samples = %d", len(w.Samples))
	}
	// DocsPerSample capped at pool size.
	w2 := Generate(d, GenConfig{Seed: 19, PoolDocs: 2, DocsPerSample: 10})
	for _, s := range w2.Samples {
		if len(s.Docs) != 2 {
			t.Fatalf("docs per sample = %d, want capped 2", len(s.Docs))
		}
	}
}
