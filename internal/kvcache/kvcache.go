// Package kvcache implements the key/value attention-state containers the
// engine and Prompt Cache share: a growable per-layer KV cache that tracks
// the position ID of every cached token, a segmented zero-copy view (Seq)
// that splices cached module states into a serve without copying a row —
// one step past the paper's buffered concatenation (§4.2), whose
// materializing operators (AppendCache/Concat) remain for snapshots and
// owned storage — and a paged block pool with reference counting for
// sharing module states across concurrent requests in a batch (§3.4).
// The KV interface is the read/append surface the model works against;
// both *Cache and *Seq satisfy it.
package kvcache

import (
	"fmt"
)

// Cache holds the key and value attention states for every layer of a
// model, together with the position ID assigned to each cached token.
// Rows are tokens; columns are the flattened (kvHeads × headDim) state.
//
// The Pos slice is what makes Prompt Cache possible: unlike a vanilla KV
// cache whose positions are implicitly 0..n-1, cached prompt modules carry
// explicit, possibly discontinuous position IDs (§3.3).
//
// A Cache is not synchronized: one goroutine appends at a time. Any
// number of goroutines may read a cache concurrently once no more writes
// occur — this is how encoded module states are spliced into many serves
// at once; appends never mutate existing rows, only extend the buffers.
type Cache struct {
	NLayers int
	KVDim   int // kvHeads * headDim

	// K[l] and V[l] are flattened [len × KVDim] buffers for layer l.
	// They grow with amortized doubling so that appending decode steps
	// and concatenating modules does not reallocate per token.
	K, V [][]float32

	Pos []int // position ID per cached token, shared by all layers
}

// New returns an empty cache for a model with nLayers layers and kvDim
// key/value width, pre-reserving capacity for capTokens tokens.
func New(nLayers, kvDim, capTokens int) *Cache {
	if nLayers <= 0 || kvDim <= 0 {
		panic(fmt.Sprintf("kvcache: invalid dims layers=%d kvDim=%d", nLayers, kvDim))
	}
	c := &Cache{
		NLayers: nLayers,
		KVDim:   kvDim,
		K:       make([][]float32, nLayers),
		V:       make([][]float32, nLayers),
		Pos:     make([]int, 0, capTokens),
	}
	for l := 0; l < nLayers; l++ {
		c.K[l] = make([]float32, 0, capTokens*kvDim)
		c.V[l] = make([]float32, 0, capTokens*kvDim)
	}
	return c
}

// Len returns the number of cached tokens.
func (c *Cache) Len() int { return len(c.Pos) }

// Bytes returns the memory footprint of the cached states, assuming
// bytesPerScalar bytes per element (2 for the paper's fp16 accounting,
// 4 for this engine's fp32).
func (c *Cache) Bytes(bytesPerScalar int) int64 {
	return int64(c.Len()) * int64(c.NLayers) * int64(c.KVDim) * 2 * int64(bytesPerScalar)
}

// KeyRow returns a view of layer l's key state for cached token i.
func (c *Cache) KeyRow(l, i int) []float32 {
	return c.K[l][i*c.KVDim : (i+1)*c.KVDim]
}

// ValueRow returns a view of layer l's value state for cached token i.
func (c *Cache) ValueRow(l, i int) []float32 {
	return c.V[l][i*c.KVDim : (i+1)*c.KVDim]
}

// AppendToken appends one token's K/V rows for layer l. The caller must
// append the same token to every layer and then record its position with
// AppendPos exactly once.
func (c *Cache) AppendToken(l int, k, v []float32) {
	if len(k) != c.KVDim || len(v) != c.KVDim {
		panic(fmt.Sprintf("kvcache: AppendToken width %d/%d, want %d", len(k), len(v), c.KVDim))
	}
	c.K[l] = append(c.K[l], k...)
	c.V[l] = append(c.V[l], v...)
}

// AppendPos records the position ID of the token whose per-layer states
// were just appended.
func (c *Cache) AppendPos(pos int) { c.Pos = append(c.Pos, pos) }

// Clone returns a deep copy of the cache.
func (c *Cache) Clone() *Cache {
	out := New(c.NLayers, c.KVDim, c.Len())
	out.Pos = append(out.Pos, c.Pos...)
	for l := 0; l < c.NLayers; l++ {
		out.K[l] = append(out.K[l], c.K[l]...)
		out.V[l] = append(out.V[l], c.V[l]...)
	}
	return out
}

// Slice returns a deep copy of tokens [lo, hi).
func (c *Cache) Slice(lo, hi int) *Cache {
	if lo < 0 || hi > c.Len() || lo > hi {
		panic(fmt.Sprintf("kvcache: Slice[%d:%d) of %d tokens", lo, hi, c.Len()))
	}
	out := New(c.NLayers, c.KVDim, hi-lo)
	out.Pos = append(out.Pos, c.Pos[lo:hi]...)
	for l := 0; l < c.NLayers; l++ {
		out.K[l] = append(out.K[l], c.K[l][lo*c.KVDim:hi*c.KVDim]...)
		out.V[l] = append(out.V[l], c.V[l][lo*c.KVDim:hi*c.KVDim]...)
	}
	return out
}

// AppendCache appends all of src's tokens to c. This is the buffered
// concatenation operator of §4.2: c's buffers grow amortized-doubling, so
// concatenating k module states performs O(total) copying and no
// per-module reallocation once capacity is reached, unlike a naive
// concat-into-fresh-tensor which reallocates the full prefix each time.
func (c *Cache) AppendCache(src *Cache) {
	if src.NLayers != c.NLayers || src.KVDim != c.KVDim {
		panic(fmt.Sprintf("kvcache: AppendCache shape mismatch (%d,%d) vs (%d,%d)",
			src.NLayers, src.KVDim, c.NLayers, c.KVDim))
	}
	c.Pos = append(c.Pos, src.Pos...)
	for l := 0; l < c.NLayers; l++ {
		c.K[l] = append(c.K[l], src.K[l]...)
		c.V[l] = append(c.V[l], src.V[l]...)
	}
}

// Concat builds a new cache containing the tokens of all parts in order,
// sized exactly once up front. Per §3.4 the semantic result is order
// independent (transformer permutation invariance over position-tagged
// states); tests verify that model output is unchanged under permutation.
func Concat(parts ...*Cache) *Cache {
	if len(parts) == 0 {
		panic("kvcache: Concat of nothing")
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	out := New(parts[0].NLayers, parts[0].KVDim, total)
	for _, p := range parts {
		out.AppendCache(p)
	}
	return out
}

// Truncate discards all cached tokens from index n onward.
func (c *Cache) Truncate(n int) {
	if n < 0 || n > c.Len() {
		panic(fmt.Sprintf("kvcache: Truncate(%d) of %d tokens", n, c.Len()))
	}
	c.Pos = c.Pos[:n]
	for l := 0; l < c.NLayers; l++ {
		c.K[l] = c.K[l][:n*c.KVDim]
		c.V[l] = c.V[l][:n*c.KVDim]
	}
}

// MaxPos returns the largest position ID in the cache, or -1 if empty.
func (c *Cache) MaxPos() int {
	max := -1
	for _, p := range c.Pos {
		if p > max {
			max = p
		}
	}
	return max
}
