package kvcache

import (
	"testing"
)

func TestSeqViewsAndTail(t *testing.T) {
	a := New(2, 4, 8)
	fill(a, 5, 0, 100)
	b := New(2, 4, 8)
	fill(b, 3, 10, 200)

	s := NewSeq(2, 4, 4)
	s.AddView(a, 0, 5)
	s.AddView(b, 1, 3) // rows at positions 11, 12
	if s.Len() != 7 || s.ViewLen() != 7 || s.Segments() != 2 {
		t.Fatalf("len=%d viewLen=%d segs=%d", s.Len(), s.ViewLen(), s.Segments())
	}
	if s.PosAt(0) != 0 || s.PosAt(4) != 4 || s.PosAt(5) != 11 || s.PosAt(6) != 12 {
		t.Fatalf("positions: %v", s.Positions())
	}
	if s.MaxPos() != 12 {
		t.Fatalf("MaxPos = %d", s.MaxPos())
	}
	// Views must alias, not copy.
	if &s.KeyRow(1, 0)[0] != &a.KeyRow(1, 0)[0] {
		t.Fatal("KeyRow does not alias the source cache")
	}
	if &s.KeyRow(0, 5)[0] != &b.KeyRow(0, 1)[0] {
		t.Fatal("windowed KeyRow offset wrong")
	}

	// Tail appends extend past the views.
	row := []float32{1, 2, 3, 4}
	for l := 0; l < 2; l++ {
		s.AppendToken(l, row, row)
	}
	s.AppendPos(20)
	if s.Len() != 8 || s.MaxPos() != 20 || s.PosAt(7) != 20 {
		t.Fatalf("after tail append: len=%d maxPos=%d", s.Len(), s.MaxPos())
	}

	// Segment walk covers views then tail, clamped by the row bound.
	segs := s.AppendSegments(nil, 0, 8)
	if len(segs) != 3 || segs[0].Rows() != 5 || segs[1].Rows() != 2 || segs[2].Rows() != 1 {
		t.Fatalf("segments: %d", len(segs))
	}
	segs = s.AppendSegments(nil, 0, 6)
	if len(segs) != 2 || segs[1].Rows() != 1 {
		t.Fatalf("bounded segments wrong: %d", len(segs))
	}

	// Truncate within the tail works; into the views panics.
	s.Truncate(7)
	if s.Len() != 7 {
		t.Fatalf("len after truncate = %d", s.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Truncate into views did not panic")
		}
	}()
	s.Truncate(3)
}

func TestSeqMergesAdjacentWindows(t *testing.T) {
	a := New(1, 2, 8)
	fill(a, 6, 0, 0)
	s := NewSeq(1, 2, 2)
	s.AddView(a, 0, 2)
	s.AddView(a, 2, 5) // contiguous in the same source: one segment
	if s.Segments() != 1 || s.ViewLen() != 5 {
		t.Fatalf("segs=%d viewLen=%d, want merged 1/5", s.Segments(), s.ViewLen())
	}
	s.AddView(a, 5, 5) // empty: dropped
	if s.Segments() != 1 {
		t.Fatalf("empty window created a segment")
	}
}

func TestSeqMaterializeMatches(t *testing.T) {
	a := New(2, 4, 8)
	fill(a, 4, 0, 10)
	b := New(2, 4, 8)
	fill(b, 4, 7, 50)

	s := NewSeq(2, 4, 4)
	s.AddView(a, 1, 4)
	s.AddView(b, 0, 2)
	row := []float32{9, 9, 9, 9}
	for l := 0; l < 2; l++ {
		s.AppendToken(l, row, row)
	}
	s.AppendPos(30)

	flat := s.Materialize()
	if flat.Len() != s.Len() {
		t.Fatalf("materialized len %d != %d", flat.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if flat.Pos[i] != s.PosAt(i) {
			t.Fatalf("pos[%d]: %d != %d", i, flat.Pos[i], s.PosAt(i))
		}
		for l := 0; l < 2; l++ {
			kc, ks := flat.KeyRow(l, i), s.KeyRow(l, i)
			for j := range kc {
				if kc[j] != ks[j] {
					t.Fatalf("key[%d][%d] differs", l, i)
				}
			}
			// Materialize owns its storage.
			if &kc[0] == &ks[0] {
				t.Fatal("materialized cache aliases the view")
			}
		}
	}
	// The flat copy supports arbitrary truncation.
	flat.Truncate(1)
}
