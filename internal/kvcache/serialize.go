package kvcache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization for KV caches, so a serving system can persist
// encoded prompt modules across restarts instead of re-running prompt
// module encoding (§3.3's one-time cost) on every boot.
//
// Format (little-endian):
//
//	magic   uint32  'P''C''K''V'
//	version uint32  1
//	nLayers uint32
//	kvDim   uint32
//	tokens  uint32
//	pos     tokens × int64
//	layers  nLayers × (K payload, V payload), each tokens×kvDim float32

const (
	kvMagic   = 0x504b4356 // "PKCV"
	kvVersion = 1
)

// WriteTo serializes the cache. It returns the number of bytes written.
func (c *Cache) WriteTo(w io.Writer) (int64, error) {
	if c.NLayers > maxSerializedLayers || c.KVDim > maxSerializedDim || c.Len() > maxSerializedTokens ||
		int64(c.NLayers)*int64(c.KVDim)*int64(c.Len()) > maxSerializedElements {
		return 0, fmt.Errorf("kvcache: payload %d×%d×%d exceeds the serializable bounds",
			c.NLayers, c.KVDim, c.Len())
	}
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	hdr := []uint32{kvMagic, kvVersion, uint32(c.NLayers), uint32(c.KVDim), uint32(c.Len())}
	for _, h := range hdr {
		if err := write(h); err != nil {
			return n, err
		}
	}
	for _, p := range c.Pos {
		if err := write(int64(p)); err != nil {
			return n, err
		}
	}
	for l := 0; l < c.NLayers; l++ {
		if err := writeFloats(bw, c.K[l], &n); err != nil {
			return n, err
		}
		if err := writeFloats(bw, c.V[l], &n); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

func writeFloats(w io.Writer, xs []float32, n *int64) error {
	buf := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	m, err := w.Write(buf)
	*n += int64(m)
	return err
}

// maxSerializedTokens bounds deserialization against corrupt headers.
const maxSerializedTokens = 1 << 24

// Per-field shape caps. They exist for overflow safety as much as
// plausibility: with layers ≤ 2^12, kvDim ≤ 2^20 and tokens ≤ 2^24 the
// three-way product below stays ≤ 2^56, so it cannot wrap int64 and
// sneak a huge allocation past the total bound.
const (
	maxSerializedLayers = 1 << 12
	maxSerializedDim    = 1 << 20
)

// maxSerializedElements bounds the total payload (layers × kvDim ×
// tokens), so a corrupt header cannot demand a multi-gigabyte
// allocation before its payload read fails. WriteTo enforces the same
// bounds, so serialization never produces a stream it would refuse to
// read back.
const maxSerializedElements = 1 << 30

// ReadFrom deserializes a cache produced by WriteTo.
func ReadFrom(r io.Reader) (*Cache, error) {
	br := bufio.NewReader(r)
	var hdr [5]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("kvcache: reading header: %w", err)
		}
	}
	if hdr[0] != kvMagic {
		return nil, fmt.Errorf("kvcache: bad magic %#x", hdr[0])
	}
	if hdr[1] != kvVersion {
		return nil, fmt.Errorf("kvcache: unsupported version %d", hdr[1])
	}
	nLayers, kvDim, tokens := int(hdr[2]), int(hdr[3]), int(hdr[4])
	if nLayers <= 0 || nLayers > maxSerializedLayers || kvDim <= 0 || kvDim > maxSerializedDim ||
		tokens < 0 || tokens > maxSerializedTokens {
		return nil, fmt.Errorf("kvcache: implausible header layers=%d kvDim=%d tokens=%d", nLayers, kvDim, tokens)
	}
	if int64(nLayers)*int64(kvDim)*int64(tokens) > maxSerializedElements {
		return nil, fmt.Errorf("kvcache: implausible payload %d×%d×%d", nLayers, kvDim, tokens)
	}
	c := New(nLayers, kvDim, tokens)
	for i := 0; i < tokens; i++ {
		var p int64
		if err := binary.Read(br, binary.LittleEndian, &p); err != nil {
			return nil, fmt.Errorf("kvcache: reading positions: %w", err)
		}
		c.Pos = append(c.Pos, int(p))
	}
	for l := 0; l < nLayers; l++ {
		k, err := readFloats(br, tokens*kvDim)
		if err != nil {
			return nil, fmt.Errorf("kvcache: layer %d keys: %w", l, err)
		}
		v, err := readFloats(br, tokens*kvDim)
		if err != nil {
			return nil, fmt.Errorf("kvcache: layer %d values: %w", l, err)
		}
		c.K[l] = k
		c.V[l] = v
	}
	return c, nil
}

func readFloats(r io.Reader, n int) ([]float32, error) {
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}
