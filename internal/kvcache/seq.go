package kvcache

import (
	"fmt"
)

// Segment is one contiguous run of cached rows at a single layer: K and V
// are flattened [rows × width] buffers and Pos carries the matching
// position IDs. Attention loops walk segments instead of calling a
// per-row accessor through an interface, so the zero-copy view path is
// as tight as the flat-cache path.
type Segment struct {
	K, V []float32
	Pos  []int
}

// Rows returns the number of token rows in the segment.
func (s Segment) Rows() int { return len(s.Pos) }

// KV is the attention-state surface the model reads and extends during
// prefill and decode. Two implementations exist:
//
//   - *Cache: a flat, owned buffer (encoding, baselines, materialized
//     states).
//   - *Seq: an ordered list of immutable segment views into pinned module
//     caches plus one private mutable tail — the zero-copy serve path
//     (§3.4 without the memcpy).
//
// Appends always go to memory the implementation owns; views are never
// written through.
type KV interface {
	// Len returns the number of cached tokens.
	Len() int
	// NumLayers returns the layer count.
	NumLayers() int
	// Width returns the flattened K/V row width (kvHeads × headDim).
	Width() int
	// PosAt returns the position ID of cached token i.
	PosAt(i int) int
	// MaxPos returns the largest position ID, or -1 when empty.
	MaxPos() int
	// Positions returns all position IDs in row order. The slice may
	// alias internal state; callers must not modify it.
	Positions() []int
	// KeyRow and ValueRow return views of one token's layer-l state.
	KeyRow(l, i int) []float32
	ValueRow(l, i int) []float32
	// AppendToken appends one token's K/V rows for layer l; the caller
	// appends the same token to every layer and then records its
	// position with AppendPos exactly once.
	AppendToken(l int, k, v []float32)
	// AppendPos records the position ID of the token just appended.
	AppendPos(pos int)
	// Truncate discards cached tokens from index n onward. A Seq can
	// only truncate within its mutable tail.
	Truncate(n int)
	// AppendSegments appends the contiguous segments covering rows
	// [0, rows) of layer l to dst and returns it. Segment boundaries are
	// stable for a given view; the returned buffers alias live state.
	AppendSegments(dst []Segment, l, rows int) []Segment
}

// Compile-time interface checks.
var (
	_ KV = (*Cache)(nil)
	_ KV = (*Seq)(nil)
)

// window is one immutable [lo,hi) token view into a source cache.
type window struct {
	src    *Cache
	lo, hi int
	start  int // global row index of lo
}

// Seq is a segmented, read-only view over precomputed attention states
// plus a private mutable tail. Serving builds one per request: each
// pinned module's cache contributes windows (excluded parameter rows
// become window splits, not copies), and the request's own prefill and
// decode tokens land in the tail. The cached prefix costs O(#segments)
// stitching instead of O(prefix × layers × width) memcpy.
//
// A Seq is not synchronized: one goroutine appends at a time, any number
// may read concurrently once writes stop. The viewed caches must stay
// immutable (and alive — see the engine's pin accounting) for the Seq's
// lifetime.
type Seq struct {
	nLayers int
	width   int

	wins    []window
	base    int // total rows across wins
	basePos int // max position ID across wins, -1 when none

	tail *Cache
}

// NewSeq returns an empty segmented view shaped for nLayers layers and
// width-wide K/V rows, reserving tail capacity for tailCap tokens.
func NewSeq(nLayers, width, tailCap int) *Seq {
	if nLayers <= 0 || width <= 0 {
		panic(fmt.Sprintf("kvcache: invalid Seq dims layers=%d width=%d", nLayers, width))
	}
	return &Seq{
		nLayers: nLayers,
		width:   width,
		basePos: -1,
		tail:    New(nLayers, width, tailCap),
	}
}

// AddView appends tokens [lo,hi) of src as an immutable segment view.
// Views must all be added before the first tail append; src must not be
// mutated for the Seq's lifetime. Empty windows are dropped.
func (s *Seq) AddView(src *Cache, lo, hi int) {
	if src.NLayers != s.nLayers || src.KVDim != s.width {
		panic(fmt.Sprintf("kvcache: AddView shape mismatch (%d,%d) vs (%d,%d)",
			src.NLayers, src.KVDim, s.nLayers, s.width))
	}
	if lo < 0 || hi > src.Len() || lo > hi {
		panic(fmt.Sprintf("kvcache: AddView[%d:%d) of %d tokens", lo, hi, src.Len()))
	}
	if s.tail.Len() > 0 {
		panic("kvcache: AddView after tail appends")
	}
	if lo == hi {
		return
	}
	// Merge with the previous window when the views are contiguous in the
	// same source: exclusion splits that turn out adjacent, or modules
	// stored back to back, collapse into one segment.
	if n := len(s.wins); n > 0 {
		if w := &s.wins[n-1]; w.src == src && w.hi == lo {
			w.hi = hi
			s.extendBase(src, lo, hi)
			return
		}
	}
	s.wins = append(s.wins, window{src: src, lo: lo, hi: hi, start: s.base})
	s.extendBase(src, lo, hi)
}

func (s *Seq) extendBase(src *Cache, lo, hi int) {
	s.base += hi - lo
	for _, p := range src.Pos[lo:hi] {
		if p > s.basePos {
			s.basePos = p
		}
	}
}

// ViewLen returns the number of tokens held by immutable views (the
// cached prefix); Len() - ViewLen() tokens live in the mutable tail.
func (s *Seq) ViewLen() int { return s.base }

// Segments returns the number of immutable view segments.
func (s *Seq) Segments() int { return len(s.wins) }

// Len returns the number of cached tokens (views + tail).
func (s *Seq) Len() int { return s.base + s.tail.Len() }

// NumLayers returns the layer count.
func (s *Seq) NumLayers() int { return s.nLayers }

// Width returns the flattened K/V row width.
func (s *Seq) Width() int { return s.width }

// find locates the window containing global row i. Callers guarantee
// i < s.base.
func (s *Seq) find(i int) *window {
	// Serving Seqs hold a handful of windows (one per module, plus
	// exclusion splits); linear scan beats binary search at that size,
	// and the hot paths walk segments instead of calling this at all.
	for w := range s.wins {
		if i < s.wins[w].start+(s.wins[w].hi-s.wins[w].lo) {
			return &s.wins[w]
		}
	}
	panic(fmt.Sprintf("kvcache: row %d out of %d view rows", i, s.base))
}

// PosAt returns the position ID of cached token i.
func (s *Seq) PosAt(i int) int {
	if i >= s.base {
		return s.tail.Pos[i-s.base]
	}
	w := s.find(i)
	return w.src.Pos[w.lo+i-w.start]
}

// MaxPos returns the largest position ID in the view, or -1 when empty.
func (s *Seq) MaxPos() int {
	if t := s.tail.MaxPos(); t > s.basePos {
		return t
	}
	return s.basePos
}

// Positions returns all position IDs in row order (freshly allocated).
func (s *Seq) Positions() []int {
	out := make([]int, 0, s.Len())
	for _, w := range s.wins {
		out = append(out, w.src.Pos[w.lo:w.hi]...)
	}
	return append(out, s.tail.Pos...)
}

// KeyRow returns a view of layer l's key state for cached token i.
func (s *Seq) KeyRow(l, i int) []float32 {
	if i >= s.base {
		return s.tail.KeyRow(l, i-s.base)
	}
	w := s.find(i)
	return w.src.KeyRow(l, w.lo+i-w.start)
}

// ValueRow returns a view of layer l's value state for cached token i.
func (s *Seq) ValueRow(l, i int) []float32 {
	if i >= s.base {
		return s.tail.ValueRow(l, i-s.base)
	}
	w := s.find(i)
	return w.src.ValueRow(l, w.lo+i-w.start)
}

// AppendToken appends one token's K/V rows for layer l to the tail.
func (s *Seq) AppendToken(l int, k, v []float32) { s.tail.AppendToken(l, k, v) }

// AppendPos records the position of the token just appended to the tail.
func (s *Seq) AppendPos(pos int) { s.tail.AppendPos(pos) }

// Truncate discards cached tokens from index n onward. Truncating into
// the immutable views panics: they are shared, pinned state — Materialize
// first if a shorter prefix is really needed.
func (s *Seq) Truncate(n int) {
	if n < s.base {
		panic(fmt.Sprintf("kvcache: Truncate(%d) into immutable views (%d rows); Materialize first", n, s.base))
	}
	s.tail.Truncate(n - s.base)
}

// AppendSegments appends the contiguous layer-l segments covering rows
// [0, rows) to dst and returns it.
func (s *Seq) AppendSegments(dst []Segment, l, rows int) []Segment {
	for _, w := range s.wins {
		if rows <= 0 {
			return dst
		}
		n := w.hi - w.lo
		if n > rows {
			n = rows
		}
		dst = append(dst, Segment{
			K:   w.src.K[l][w.lo*s.width : (w.lo+n)*s.width],
			V:   w.src.V[l][w.lo*s.width : (w.lo+n)*s.width],
			Pos: w.src.Pos[w.lo : w.lo+n],
		})
		rows -= n
	}
	if rows > 0 {
		dst = append(dst, Segment{
			K:   s.tail.K[l][:rows*s.width],
			V:   s.tail.V[l][:rows*s.width],
			Pos: s.tail.Pos[:rows],
		})
	}
	return dst
}

// Materialize copies the full sequence — views and tail — into one flat,
// owned Cache. It is the escape hatch from view lifetime rules: the
// result outlives the viewed modules (pins can be released) and supports
// arbitrary Truncate. Snapshots and very long-lived sessions want this;
// ordinary serves never need it.
func (s *Seq) Materialize() *Cache {
	out := New(s.nLayers, s.width, s.Len())
	for _, w := range s.wins {
		out.Pos = append(out.Pos, w.src.Pos[w.lo:w.hi]...)
		for l := 0; l < s.nLayers; l++ {
			out.K[l] = append(out.K[l], w.src.K[l][w.lo*s.width:w.hi*s.width]...)
			out.V[l] = append(out.V[l], w.src.V[l][w.lo*s.width:w.hi*s.width]...)
		}
	}
	out.AppendCache(s.tail)
	return out
}

// Bytes returns the footprint the sequence's tokens would occupy at
// bytesPerScalar bytes per element. Viewed rows are counted even though
// they are shared: this is the logical size, matching Cache.Bytes.
func (s *Seq) Bytes(bytesPerScalar int) int64 {
	return int64(s.Len()) * int64(s.nLayers) * int64(s.width) * 2 * int64(bytesPerScalar)
}

// Cache-side implementations of the KV surface that the flat type did
// not already have.

// NumLayers returns the layer count.
func (c *Cache) NumLayers() int { return c.NLayers }

// Width returns the flattened K/V row width.
func (c *Cache) Width() int { return c.KVDim }

// PosAt returns the position ID of cached token i.
func (c *Cache) PosAt(i int) int { return c.Pos[i] }

// Positions returns the position IDs in row order. The slice aliases the
// cache's own storage; callers must not modify it.
func (c *Cache) Positions() []int { return c.Pos }

// AppendSegments appends the single contiguous segment covering rows
// [0, rows) of layer l to dst and returns it.
func (c *Cache) AppendSegments(dst []Segment, l, rows int) []Segment {
	if rows <= 0 {
		return dst
	}
	return append(dst, Segment{
		K:   c.K[l][:rows*c.KVDim],
		V:   c.V[l][:rows*c.KVDim],
		Pos: c.Pos[:rows],
	})
}
