package kvcache

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSerializeRoundTripProperty: WriteTo→ReadFrom is the identity over a
// spread of random shapes, including empty caches and discontinuous
// position streams.
func TestSerializeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		layers := 1 + rng.Intn(4)
		dim := 1 + rng.Intn(12)
		tokens := rng.Intn(40)
		kv := New(layers, dim, tokens)
		k := make([]float32, dim)
		v := make([]float32, dim)
		pos := 0
		for i := 0; i < tokens; i++ {
			for l := 0; l < layers; l++ {
				for j := range k {
					k[j] = float32(rng.NormFloat64())
					v[j] = float32(rng.NormFloat64())
				}
				kv.AppendToken(l, k, v)
			}
			pos += 1 + rng.Intn(5)
			kv.AppendPos(pos)
		}
		var buf bytes.Buffer
		n, err := kv.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("trial %d: reported %d bytes, wrote %d", trial, n, buf.Len())
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.NLayers != layers || got.KVDim != dim || got.Len() != tokens {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for i, p := range kv.Pos {
			if got.Pos[i] != p {
				t.Fatalf("trial %d: pos[%d] differs", trial, i)
			}
		}
		for l := 0; l < layers; l++ {
			for i := range kv.K[l] {
				if got.K[l][i] != kv.K[l][i] || got.V[l][i] != kv.V[l][i] {
					t.Fatalf("trial %d: payload differs at layer %d elem %d", trial, l, i)
				}
			}
		}
	}
}

// FuzzReadFrom: arbitrary bytes must never panic the deserializer —
// corrupt and truncated input returns an error or a structurally valid
// cache.
func FuzzReadFrom(f *testing.F) {
	kv := New(2, 3, 4)
	k := []float32{1, 2, 3}
	v := []float32{4, 5, 6}
	for i := 0; i < 4; i++ {
		for l := 0; l < 2; l++ {
			kv.AppendToken(l, k, v)
		}
		kv.AppendPos(i * 7)
	}
	var buf bytes.Buffer
	if _, err := kv.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:11])
	f.Add([]byte{})
	f.Add([]byte("VCKP not quite the magic"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("nil cache without error")
		}
		if c.Len() != len(c.Pos) {
			t.Fatal("inconsistent decoded cache")
		}
		for l := 0; l < c.NLayers; l++ {
			if len(c.K[l]) != c.Len()*c.KVDim || len(c.V[l]) != c.Len()*c.KVDim {
				t.Fatalf("layer %d buffers inconsistent with token count", l)
			}
		}
	})
}
