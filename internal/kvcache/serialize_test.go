package kvcache

import (
	"bytes"
	"strings"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	c := New(3, 8, 12)
	fill(c, 12, 100, 77)
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NLayers != c.NLayers || got.KVDim != c.KVDim || got.Len() != c.Len() {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i := range c.Pos {
		if got.Pos[i] != c.Pos[i] {
			t.Fatal("positions corrupted")
		}
	}
	for l := 0; l < c.NLayers; l++ {
		for i := range c.K[l] {
			if got.K[l][i] != c.K[l][i] || got.V[l][i] != c.V[l][i] {
				t.Fatal("payload corrupted")
			}
		}
	}
}

func TestSerializeEmptyCache(t *testing.T) {
	c := New(2, 4, 0)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("len = %d", got.Len())
	}
}

func TestReadFromBadMagic(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("not a kv cache at all, sorry")); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestReadFromTruncated(t *testing.T) {
	c := New(2, 4, 6)
	fill(c, 6, 0, 5)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 10, 20, len(full) / 2, len(full) - 1} {
		if _, err := ReadFrom(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestReadFromImplausibleHeader(t *testing.T) {
	c := New(1, 1, 1)
	fill(c, 1, 0, 1)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt token count to a huge value.
	b[16], b[17], b[18], b[19] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadFrom(bytes.NewReader(b)); err == nil {
		t.Fatal("expected implausible-header error")
	}
}

func TestSerializeVersioned(t *testing.T) {
	c := New(1, 2, 1)
	fill(c, 1, 0, 3)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // bump version
	if _, err := ReadFrom(bytes.NewReader(b)); err == nil {
		t.Fatal("expected version error")
	}
}
