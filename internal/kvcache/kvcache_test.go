package kvcache

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// fill appends n tokens with recognizable values to a cache.
func fill(c *Cache, n, posBase int, seed uint64) {
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		for l := 0; l < c.NLayers; l++ {
			k := make([]float32, c.KVDim)
			v := make([]float32, c.KVDim)
			r.FillNormal(k, 1)
			r.FillNormal(v, 1)
			c.AppendToken(l, k, v)
		}
		c.AppendPos(posBase + i)
	}
}

func TestAppendAndLen(t *testing.T) {
	c := New(2, 4, 8)
	fill(c, 3, 0, 1)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if len(c.K[0]) != 3*4 || len(c.V[1]) != 3*4 {
		t.Fatal("layer buffers wrong size")
	}
}

func TestPositionsTracked(t *testing.T) {
	c := New(1, 2, 4)
	fill(c, 3, 100, 2)
	want := []int{100, 101, 102}
	for i, p := range c.Pos {
		if p != want[i] {
			t.Fatalf("Pos[%d] = %d, want %d", i, p, want[i])
		}
	}
	if c.MaxPos() != 102 {
		t.Fatalf("MaxPos = %d", c.MaxPos())
	}
}

func TestMaxPosEmpty(t *testing.T) {
	if New(1, 2, 0).MaxPos() != -1 {
		t.Fatal("empty MaxPos should be -1")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New(2, 4, 4)
	fill(c, 2, 0, 3)
	cl := c.Clone()
	cl.K[0][0] = 999
	cl.Pos[0] = 999
	if c.K[0][0] == 999 || c.Pos[0] == 999 {
		t.Fatal("Clone aliases original")
	}
}

func TestSliceCopies(t *testing.T) {
	c := New(1, 2, 8)
	fill(c, 5, 10, 4)
	s := c.Slice(1, 4)
	if s.Len() != 3 {
		t.Fatalf("slice len = %d", s.Len())
	}
	if s.Pos[0] != 11 || s.Pos[2] != 13 {
		t.Fatalf("slice pos = %v", s.Pos)
	}
	if s.KeyRow(0, 0)[0] != c.KeyRow(0, 1)[0] {
		t.Fatal("slice row mismatch")
	}
	s.K[0][0] = 777
	if c.K[0][2] == 777 {
		t.Fatal("Slice must deep-copy")
	}
}

func TestSliceBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := New(1, 2, 2)
	fill(c, 2, 0, 5)
	c.Slice(1, 5)
}

func TestConcatOrderAndContent(t *testing.T) {
	a := New(2, 3, 4)
	b := New(2, 3, 4)
	fill(a, 2, 0, 6)
	fill(b, 3, 50, 7)
	out := Concat(a, b)
	if out.Len() != 5 {
		t.Fatalf("concat len = %d", out.Len())
	}
	wantPos := []int{0, 1, 50, 51, 52}
	for i, p := range out.Pos {
		if p != wantPos[i] {
			t.Fatalf("concat pos[%d] = %d", i, p)
		}
	}
	// Content preserved per layer.
	for l := 0; l < 2; l++ {
		if out.KeyRow(l, 0)[0] != a.KeyRow(l, 0)[0] {
			t.Fatal("concat lost a's content")
		}
		if out.ValueRow(l, 2)[1] != b.ValueRow(l, 0)[1] {
			t.Fatal("concat lost b's content")
		}
	}
}

func TestAppendCacheGrowsWithoutRealloc(t *testing.T) {
	// With sufficient pre-reserved capacity, AppendCache must not move
	// the underlying buffer (buffered concat, §4.2).
	base := New(1, 4, 100)
	fill(base, 10, 0, 8)
	ptrBefore := &base.K[0][0]
	add := New(1, 4, 10)
	fill(add, 10, 10, 9)
	base.AppendCache(add)
	if &base.K[0][0] != ptrBefore {
		t.Fatal("AppendCache reallocated despite spare capacity")
	}
	if base.Len() != 20 {
		t.Fatalf("len = %d", base.Len())
	}
}

func TestAppendCacheShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := New(1, 4, 1)
	b := New(2, 4, 1)
	a.AppendCache(b)
}

func TestTruncate(t *testing.T) {
	c := New(2, 2, 8)
	fill(c, 5, 0, 10)
	c.Truncate(2)
	if c.Len() != 2 || len(c.K[1]) != 2*2 {
		t.Fatal("Truncate failed")
	}
}

func TestBytes(t *testing.T) {
	c := New(4, 8, 4)
	fill(c, 3, 0, 11)
	// 3 tokens * 4 layers * 8 kvdim * 2 (K and V) * 2 bytes
	if got := c.Bytes(2); got != 3*4*8*2*2 {
		t.Fatalf("Bytes = %d", got)
	}
}

func TestConcatPreservesTotalProperty(t *testing.T) {
	check := func(n1, n2 uint8) bool {
		a := New(1, 2, int(n1))
		b := New(1, 2, int(n2))
		fill(a, int(n1%32), 0, uint64(n1)+1)
		fill(b, int(n2%32), 1000, uint64(n2)+2)
		if a.Len() == 0 && b.Len() == 0 {
			return Concat(a, b).Len() == 0
		}
		return Concat(a, b).Len() == a.Len()+b.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// ---- PagedPool ----

func makeKV(tokens int) *Cache {
	c := New(2, 4, tokens)
	fill(c, tokens, 0, uint64(tokens)+100)
	return c
}

func TestPagedStoreGatherRoundTrip(t *testing.T) {
	p := NewPagedPool(4, 64)
	kv := makeKV(10)
	ids := p.Store(kv)
	if len(ids) != 3 { // ceil(10/4)
		t.Fatalf("blocks = %d", len(ids))
	}
	got, err := p.Gather(ids)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != kv.Len() {
		t.Fatalf("gather len = %d", got.Len())
	}
	for i := range kv.Pos {
		if got.Pos[i] != kv.Pos[i] {
			t.Fatal("gather positions differ")
		}
	}
	for l := 0; l < 2; l++ {
		for i := 0; i < kv.Len()*kv.KVDim; i++ {
			if got.K[l][i] != kv.K[l][i] {
				t.Fatal("gather keys differ")
			}
		}
	}
}

func TestPagedSharingSavesPhysicalMemory(t *testing.T) {
	p := NewPagedPool(4, 100)
	ids := p.Store(makeKV(8)) // 2 blocks, 800 physical bytes
	if err := p.Retain(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Retain(ids); err != nil {
		t.Fatal(err)
	}
	// 3 logical references, 1 physical copy.
	if p.PhysicalBytes() != 800 {
		t.Fatalf("physical = %d", p.PhysicalBytes())
	}
	if p.LogicalBytes() != 2400 {
		t.Fatalf("logical = %d", p.LogicalBytes())
	}
}

func TestPagedReleaseFreesAtZero(t *testing.T) {
	p := NewPagedPool(4, 1)
	ids := p.Store(makeKV(8))
	if err := p.Retain(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(ids); err != nil {
		t.Fatal(err)
	}
	if p.LiveBlocks() != 2 {
		t.Fatalf("live = %d after partial release", p.LiveBlocks())
	}
	if err := p.Release(ids); err != nil {
		t.Fatal(err)
	}
	if p.LiveBlocks() != 0 {
		t.Fatalf("live = %d after full release", p.LiveBlocks())
	}
}

func TestPagedDoubleFree(t *testing.T) {
	p := NewPagedPool(4, 1)
	ids := p.Store(makeKV(4))
	if err := p.Release(ids); err != nil {
		t.Fatal(err)
	}
	err := p.Release(ids)
	if !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("want ErrDoubleFree, got %v", err)
	}
}

func TestPagedRetainDeadBlock(t *testing.T) {
	p := NewPagedPool(4, 1)
	ids := p.Store(makeKV(4))
	if err := p.Release(ids); err != nil {
		t.Fatal(err)
	}
	if err := p.Retain(ids); err == nil {
		t.Fatal("Retain of dead block should fail")
	}
}

func TestPagedGatherDeadBlock(t *testing.T) {
	p := NewPagedPool(4, 1)
	ids := p.Store(makeKV(4))
	if err := p.Release(ids); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Gather(ids); err == nil {
		t.Fatal("Gather of dead block should fail")
	}
}

func TestPagedIDRecycling(t *testing.T) {
	p := NewPagedPool(4, 1)
	ids1 := p.Store(makeKV(4))
	if err := p.Release(ids1); err != nil {
		t.Fatal(err)
	}
	ids2 := p.Store(makeKV(4))
	if ids2[0] != ids1[0] {
		t.Fatalf("expected id recycling, got %v then %v", ids1, ids2)
	}
}

func TestPagedPeakTracksHighWater(t *testing.T) {
	p := NewPagedPool(4, 10)
	a := p.Store(makeKV(8))
	_ = p.Store(makeKV(8))
	if err := p.Release(a); err != nil {
		t.Fatal(err)
	}
	if p.PhysicalBytes() != 80 {
		t.Fatalf("physical = %d", p.PhysicalBytes())
	}
	if p.PeakPhysicalBytes() != 160 {
		t.Fatalf("peak = %d", p.PeakPhysicalBytes())
	}
}

func TestPagedRefCountsBalanced(t *testing.T) {
	// Property: after r retains and r+1 releases, pool is empty.
	check := func(r uint8) bool {
		p := NewPagedPool(4, 1)
		ids := p.Store(makeKV(8))
		n := int(r % 5)
		for i := 0; i < n; i++ {
			if p.Retain(ids) != nil {
				return false
			}
		}
		for i := 0; i < n+1; i++ {
			if p.Release(ids) != nil {
				return false
			}
		}
		return p.LiveBlocks() == 0 && p.PhysicalBytes() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPagedConcurrentRetainRelease(t *testing.T) {
	p := NewPagedPool(4, 1)
	ids := p.Store(makeKV(16))
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < 100; i++ {
				if err := p.Retain(ids); err != nil {
					done <- err
					return
				}
				if err := p.Release(ids); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := p.RefCounts(); len(got) != 4 {
		t.Fatalf("blocks = %d", len(got))
	}
	for _, rc := range p.RefCounts() {
		if rc != 1 {
			t.Fatalf("refcount = %d, want 1", rc)
		}
	}
}
