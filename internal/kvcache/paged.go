package kvcache

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrDoubleFree is returned when a sequence or block is released more
// times than it was acquired.
var ErrDoubleFree = errors.New("kvcache: double free")

// BlockID identifies a block in a PagedPool.
type BlockID int

// PagedPool is a reference-counted block pool for KV states, modelling
// the paged-attention sharing optimization the paper leans on for batch
// inference (§3.4): prompts in a batch that import the same prompt module
// point at the same physical blocks instead of duplicating them.
//
// The pool tracks logical token blocks; the actual KV payload lives in
// the *Cache objects the blocks reference. What the pool gives the system
// is exact accounting of physical vs logical memory so the Fig-5/§5.4
// batch-footprint claims can be measured.
type PagedPool struct {
	blockTokens int // tokens per block
	bytesPerTok int64

	mu       sync.Mutex
	refs     map[BlockID]int
	sizes    map[BlockID]int // tokens actually used in the block
	payload  map[BlockID]*Cache
	nextID   BlockID
	freed    []BlockID // recycled ids
	physPeak int64
}

// NewPagedPool returns a pool with the given block granularity (tokens per
// block) and per-token physical size in bytes.
func NewPagedPool(blockTokens int, bytesPerToken int64) *PagedPool {
	if blockTokens <= 0 {
		panic("kvcache: blockTokens must be positive")
	}
	return &PagedPool{
		blockTokens: blockTokens,
		bytesPerTok: bytesPerToken,
		refs:        make(map[BlockID]int),
		sizes:       make(map[BlockID]int),
		payload:     make(map[BlockID]*Cache),
	}
}

// BlockTokens returns the tokens-per-block granularity.
func (p *PagedPool) BlockTokens() int { return p.blockTokens }

// Store splits kv into blocks, stores them with refcount 1 and returns
// their ids. The returned blocks can subsequently be shared with Retain.
func (p *PagedPool) Store(kv *Cache) []BlockID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var ids []BlockID
	for lo := 0; lo < kv.Len(); lo += p.blockTokens {
		hi := lo + p.blockTokens
		if hi > kv.Len() {
			hi = kv.Len()
		}
		id := p.alloc()
		p.refs[id] = 1
		p.sizes[id] = hi - lo
		p.payload[id] = kv.Slice(lo, hi)
		ids = append(ids, id)
	}
	p.physPeak = maxI64(p.physPeak, p.physicalBytesLocked())
	return ids
}

func (p *PagedPool) alloc() BlockID {
	if n := len(p.freed); n > 0 {
		id := p.freed[n-1]
		p.freed = p.freed[:n-1]
		return id
	}
	id := p.nextID
	p.nextID++
	return id
}

// Retain increments the refcount of every block in ids, sharing them with
// another sequence. It returns an error if any id is not live.
func (p *PagedPool) Retain(ids []BlockID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		if p.refs[id] <= 0 {
			return fmt.Errorf("kvcache: Retain of dead block %d", id)
		}
	}
	for _, id := range ids {
		p.refs[id]++
	}
	return nil
}

// Release decrements refcounts, freeing blocks that reach zero. Releasing
// a dead block returns ErrDoubleFree and leaves the pool unchanged.
func (p *PagedPool) Release(ids []BlockID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range ids {
		if p.refs[id] <= 0 {
			return fmt.Errorf("%w: block %d", ErrDoubleFree, id)
		}
	}
	for _, id := range ids {
		p.refs[id]--
		if p.refs[id] == 0 {
			delete(p.refs, id)
			delete(p.sizes, id)
			delete(p.payload, id)
			p.freed = append(p.freed, id)
		}
	}
	return nil
}

// Gather materializes the blocks in ids, in order, into a single Cache.
func (p *PagedPool) Gather(ids []BlockID) (*Cache, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var parts []*Cache
	for _, id := range ids {
		pay, ok := p.payload[id]
		if !ok {
			return nil, fmt.Errorf("kvcache: Gather of dead block %d", id)
		}
		parts = append(parts, pay)
	}
	if len(parts) == 0 {
		return nil, errors.New("kvcache: Gather of no blocks")
	}
	return Concat(parts...), nil
}

// Payloads returns the blocks' backing caches, in order, without
// copying. The payloads are immutable once stored, so callers may build
// segment views over them; the views keep the payload memory alive even
// if the blocks are later released.
func (p *PagedPool) Payloads(ids []BlockID) ([]*Cache, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Cache, len(ids))
	for i, id := range ids {
		pay, ok := p.payload[id]
		if !ok {
			return nil, fmt.Errorf("kvcache: Payloads of dead block %d", id)
		}
		out[i] = pay
	}
	return out, nil
}

// LiveBlocks returns the number of live (refcount > 0) blocks.
func (p *PagedPool) LiveBlocks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.refs)
}

// PhysicalBytes returns the bytes held by live blocks (each block counted
// once regardless of sharing).
func (p *PagedPool) PhysicalBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.physicalBytesLocked()
}

func (p *PagedPool) physicalBytesLocked() int64 {
	var b int64
	for _, n := range p.sizes {
		b += int64(n) * p.bytesPerTok
	}
	return b
}

// LogicalBytes returns the bytes the blocks would occupy without sharing
// (each block counted once per reference). The gap between LogicalBytes
// and PhysicalBytes is exactly the saving §3.4 describes.
func (p *PagedPool) LogicalBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b int64
	for id, n := range p.sizes {
		b += int64(n) * p.bytesPerTok * int64(p.refs[id])
	}
	return b
}

// PeakPhysicalBytes returns the high-water mark of physical usage.
func (p *PagedPool) PeakPhysicalBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.physPeak
}

// RefCounts returns a sorted snapshot of live block refcounts, for tests.
func (p *PagedPool) RefCounts() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]int, 0, len(p.refs))
	for id := range p.refs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = p.refs[BlockID(id)]
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
