package evict

// Access is one cache reference in a trace.
type Access struct {
	Key  string
	Size int64
}

// SimResult summarizes a trace-driven cache simulation.
type SimResult struct {
	Policy    string
	Hits      int
	Misses    int
	Evictions int
	BytesIn   int64 // bytes loaded on misses (re-encode / upload volume)
}

// HitRate returns hits / (hits+misses).
func (r SimResult) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// Simulate replays a trace against a capacity-limited cache governed by
// the policy. Entries larger than the capacity bypass the cache (counted
// as misses, no evictions).
func Simulate(p Policy, capacity int64, trace []Access) SimResult {
	res := SimResult{Policy: p.Name()}
	resident := map[string]int64{}
	var used int64
	for _, a := range trace {
		if _, ok := resident[a.Key]; ok {
			res.Hits++
			p.Touch(a.Key, a.Size)
			continue
		}
		res.Misses++
		res.BytesIn += a.Size
		if a.Size > capacity {
			continue // cannot ever fit
		}
		for used+a.Size > capacity {
			victim, ok := p.Victim()
			if !ok {
				break
			}
			used -= resident[victim]
			delete(resident, victim)
			p.Remove(victim)
			res.Evictions++
		}
		resident[a.Key] = a.Size
		used += a.Size
		p.Touch(a.Key, a.Size)
	}
	return res
}
