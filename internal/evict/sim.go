package evict

// Access is one cache reference in a trace.
type Access struct {
	Key  string
	Size int64
}

// SimResult summarizes a trace-driven cache simulation.
type SimResult struct {
	Policy    string
	Hits      int
	Misses    int
	Evictions int
	BytesIn   int64 // bytes loaded on misses (re-encode / upload volume)
}

// HitRate returns hits / (hits+misses).
func (r SimResult) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// TieredResult summarizes a trace-driven simulation of the full storage
// hierarchy: device (capacity-limited, policy-governed), host
// (capacity-limited, FIFO overflow to disk) and disk (unbounded,
// durable). It answers the planning question the three-tier design
// raises: how much traffic lands in each tier, and how many bytes move
// between them.
type TieredResult struct {
	Policy string
	// DeviceHits served straight from the device tier; HostHits and
	// DiskHits found the entry demoted and promoted it back; ColdMisses
	// found it nowhere and paid the full re-encode.
	DeviceHits, HostHits, DiskHits, ColdMisses int
	Demotions                                  int   // device → host movements
	Spills                                     int   // movements onto disk (host overflow or direct)
	BytesPromoted                              int64 // host/disk → device upload volume
	BytesSpilled                               int64 // bytes written to disk
}

// HitRate returns the fraction of accesses served without re-encoding.
func (r TieredResult) HitRate() float64 {
	total := r.DeviceHits + r.HostHits + r.DiskHits + r.ColdMisses
	if total == 0 {
		return 0
	}
	return float64(r.DeviceHits+r.HostHits+r.DiskHits) / float64(total)
}

// SimulateTiered replays a trace against the device→host→disk waterfall:
// device evictions (per the policy) demote to the host tier, host
// overflow spills to disk (oldest demoted first), and disk holds
// everything durably. hostCap <= 0 disables the host tier (evictions
// spill straight to disk); entries larger than devCap always miss, as in
// Simulate.
func SimulateTiered(p Policy, devCap, hostCap int64, trace []Access) TieredResult {
	res := TieredResult{Policy: p.Name()}
	device := map[string]int64{}
	host := map[string]int64{}
	disk := map[string]int64{}
	var hostOrder []string // FIFO spill order for host overflow
	var devUsed, hostUsed int64

	demote := func(key string, size int64) {
		// Host first; spill to disk when the host tier is absent or the
		// entry cannot fit even after pushing older residents to disk.
		if hostCap > 0 && size <= hostCap {
			for hostUsed+size > hostCap && len(hostOrder) > 0 {
				old := hostOrder[0]
				hostOrder = hostOrder[1:]
				sz, ok := host[old]
				if !ok {
					continue
				}
				delete(host, old)
				hostUsed -= sz
				if _, dup := disk[old]; !dup {
					disk[old] = sz
					res.Spills++
					res.BytesSpilled += sz
				}
			}
			if hostUsed+size <= hostCap {
				host[key] = size
				hostUsed += size
				hostOrder = append(hostOrder, key)
				res.Demotions++
				return
			}
		}
		if _, dup := disk[key]; !dup {
			disk[key] = size
			res.Spills++
			res.BytesSpilled += size
		}
	}

	for _, a := range trace {
		if _, ok := device[a.Key]; ok {
			res.DeviceHits++
			p.Touch(a.Key, a.Size)
			continue
		}
		fromHost, inHost := host[a.Key]
		fromDisk, inDisk := disk[a.Key]
		switch {
		case inHost:
			res.HostHits++
			res.BytesPromoted += fromHost
		case inDisk:
			res.DiskHits++
			res.BytesPromoted += fromDisk
		default:
			res.ColdMisses++
		}
		if a.Size > devCap {
			continue // cannot ever reside on device
		}
		for devUsed+a.Size > devCap {
			victim, ok := p.Victim()
			if !ok {
				break
			}
			sz := device[victim]
			delete(device, victim)
			devUsed -= sz
			p.Remove(victim)
			demote(victim, sz)
		}
		if inHost {
			delete(host, a.Key)
			hostUsed -= fromHost
			// Drop the key's FIFO slot too: a later re-demotion must
			// re-enter the order as newest, not inherit this stale slot
			// and spill ahead of genuinely older residents.
			for i, k := range hostOrder {
				if k == a.Key {
					hostOrder = append(hostOrder[:i], hostOrder[i+1:]...)
					break
				}
			}
			// The disk copy, if any, stays: it is durable and re-spilling
			// is free (content addressing), matching the engine.
		}
		device[a.Key] = a.Size
		devUsed += a.Size
		p.Touch(a.Key, a.Size)
	}
	return res
}

// Simulate replays a trace against a capacity-limited cache governed by
// the policy. Entries larger than the capacity bypass the cache (counted
// as misses, no evictions).
func Simulate(p Policy, capacity int64, trace []Access) SimResult {
	res := SimResult{Policy: p.Name()}
	resident := map[string]int64{}
	var used int64
	for _, a := range trace {
		if _, ok := resident[a.Key]; ok {
			res.Hits++
			p.Touch(a.Key, a.Size)
			continue
		}
		res.Misses++
		res.BytesIn += a.Size
		if a.Size > capacity {
			continue // cannot ever fit
		}
		for used+a.Size > capacity {
			victim, ok := p.Victim()
			if !ok {
				break
			}
			used -= resident[victim]
			delete(resident, victim)
			p.Remove(victim)
			res.Evictions++
		}
		resident[a.Key] = a.Size
		used += a.Size
		p.Touch(a.Key, a.Size)
	}
	return res
}
