package evict

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestLRUOrder(t *testing.T) {
	p := NewLRU()
	p.Touch("a", 1)
	p.Touch("b", 1)
	p.Touch("c", 1)
	p.Touch("a", 1) // a becomes most recent
	if v, _ := p.Victim(); v != "b" {
		t.Fatalf("victim = %q, want b", v)
	}
	p.Remove("b")
	if v, _ := p.Victim(); v != "c" {
		t.Fatalf("victim = %q, want c", v)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestFIFOIgnoresReuse(t *testing.T) {
	p := NewFIFO()
	p.Touch("a", 1)
	p.Touch("b", 1)
	p.Touch("a", 1) // does not refresh insertion order
	if v, _ := p.Victim(); v != "a" {
		t.Fatalf("victim = %q, want a (oldest insert)", v)
	}
}

func TestLFUFrequency(t *testing.T) {
	p := NewLFU()
	p.Touch("hot", 1)
	p.Touch("hot", 1)
	p.Touch("hot", 1)
	p.Touch("cold", 1)
	if v, _ := p.Victim(); v != "cold" {
		t.Fatalf("victim = %q, want cold", v)
	}
	// Tie → older access evicted first.
	q := NewLFU()
	q.Touch("x", 1)
	q.Touch("y", 1)
	if v, _ := q.Victim(); v != "x" {
		t.Fatalf("tie victim = %q, want x", v)
	}
}

func TestGDSFPrefersEvictingLargeCold(t *testing.T) {
	p := NewGDSF()
	p.Touch("small-hot", 10)
	p.Touch("small-hot", 10)
	p.Touch("large-cold", 10000)
	if v, _ := p.Victim(); v != "large-cold" {
		t.Fatalf("victim = %q, want large-cold", v)
	}
}

func TestGDSFAging(t *testing.T) {
	p := NewGDSF()
	p.Touch("old", 10)
	for i := 0; i < 50; i++ {
		p.Touch("old", 10) // very hot early
	}
	// Evict something to raise the floor, then add a new entry.
	p.Touch("filler", 10)
	v, _ := p.Victim()
	if v != "filler" {
		t.Fatalf("victim = %q, want filler (cold)", v)
	}
	p.Remove(v)
	p.Touch("new", 10)
	// The aging floor means "new" isn't immediately doomed by "old"'s
	// historical frequency: one more eviction round must pick between
	// them by priority, not raw count.
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestEmptyVictim(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := p.Victim(); ok {
			t.Fatalf("%s: victim on empty policy", name)
		}
		p.Remove("ghost") // must not panic
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("belady"); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestSimulateBasics(t *testing.T) {
	trace := []Access{{"a", 50}, {"b", 50}, {"a", 50}, {"c", 50}, {"a", 50}}
	res := Simulate(NewLRU(), 100, trace)
	// a miss, b miss, a hit, c miss (evict b), a hit.
	if res.Hits != 2 || res.Misses != 3 || res.Evictions != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.HitRate() < 0.39 || res.HitRate() > 0.41 {
		t.Fatalf("hit rate = %v", res.HitRate())
	}
	if res.BytesIn != 150 {
		t.Fatalf("bytes in = %d", res.BytesIn)
	}
}

func TestSimulateOversizedEntryBypasses(t *testing.T) {
	res := Simulate(NewLRU(), 100, []Access{{"huge", 500}, {"huge", 500}})
	if res.Hits != 0 || res.Misses != 2 || res.Evictions != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestSimulateEmptyTrace(t *testing.T) {
	res := Simulate(NewLFU(), 100, nil)
	if res.HitRate() != 0 {
		t.Fatal("empty trace hit rate should be 0")
	}
}

// zipfTrace builds a skewed module-access trace: popularity rank r is
// accessed proportionally to 1/r^s.
func zipfTrace(r *rng.RNG, modules int, accesses int, s float64, size func(i int) int64) []Access {
	weights := make([]float64, modules)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s)
		total += weights[i]
	}
	var trace []Access
	for a := 0; a < accesses; a++ {
		u := r.Float64() * total
		acc := 0.0
		pick := modules - 1
		for i, w := range weights {
			acc += w
			if u < acc {
				pick = i
				break
			}
		}
		trace = append(trace, Access{Key: fmt.Sprintf("m%d", pick), Size: size(pick)})
	}
	return trace
}

func TestPoliciesOnZipfTrace(t *testing.T) {
	r := rng.New(99)
	uniform := func(int) int64 { return 10 }
	trace := zipfTrace(r, 50, 4000, 1.1, uniform)
	results := map[string]float64{}
	for _, name := range Names() {
		p, _ := New(name)
		res := Simulate(p, 200, trace) // room for 20 of 50 modules
		results[name] = res.HitRate()
		if res.HitRate() <= 0.2 {
			t.Errorf("%s: hit rate %.2f implausibly low", name, res.HitRate())
		}
	}
	// On a skewed, uniform-size trace, LFU and GDSF (frequency-aware)
	// should not lose badly to FIFO.
	if results["lfu"] < results["fifo"]-0.05 {
		t.Errorf("lfu %.3f far below fifo %.3f", results["lfu"], results["fifo"])
	}
	t.Logf("hit rates: %v", results)
}

func TestGDSFBeatsLRUOnSkewedSizes(t *testing.T) {
	// Hot small modules + cold huge ones: size-aware GDSF should keep
	// the small hot set resident and beat LRU.
	r := rng.New(7)
	size := func(i int) int64 {
		if i < 10 {
			return 10 // hot ranks are small
		}
		return 500
	}
	trace := zipfTrace(r, 60, 6000, 1.0, size)
	lru := Simulate(NewLRU(), 1000, trace)
	gdsf := Simulate(NewGDSF(), 1000, trace)
	t.Logf("lru=%.3f gdsf=%.3f", lru.HitRate(), gdsf.HitRate())
	if gdsf.HitRate() <= lru.HitRate() {
		t.Fatalf("gdsf %.3f should beat lru %.3f under skewed sizes", gdsf.HitRate(), lru.HitRate())
	}
}

// TestFIFOReTouchUpdatesSize: FIFO keeps insertion order on re-touch but
// must still refresh the stored size — a re-encoded module's footprint
// changes, and the policy reporting a stale one corrupts accounting.
func TestFIFOReTouchUpdatesSize(t *testing.T) {
	p := NewFIFO()
	p.Touch("a", 10)
	p.Touch("b", 20)
	p.Touch("a", 99) // re-encode with a different footprint
	if v, ok := p.Victim(); !ok || v != "a" {
		t.Fatalf("victim = %q, want a (insertion order must not refresh)", v)
	}
	if got := p.idx["a"].Value.(*lruEntry).size; got != 99 {
		t.Fatalf("stored size = %d, want 99 after re-touch", got)
	}
}

// TestVictimExcluding: every policy must skip excluded (pinned) entries
// without disturbing its ranking, and report no victim when everything
// is excluded.
func TestVictimExcluding(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		p.Touch("a", 1)
		p.Touch("b", 2)
		p.Touch("c", 3)

		pinned := map[string]bool{}
		excluded := func(k string) bool { return pinned[k] }
		first, ok := p.Victim()
		if !ok {
			t.Fatalf("%s: no victim", name)
		}
		var order []string
		for len(pinned) < 3 {
			v, ok := p.VictimExcluding(excluded)
			if !ok {
				t.Fatalf("%s: no victim with %d/3 pinned", name, len(pinned))
			}
			if pinned[v] {
				t.Fatalf("%s: proposed pinned victim %q", name, v)
			}
			order = append(order, v)
			pinned[v] = true
		}
		if order[0] != first {
			t.Fatalf("%s: VictimExcluding(nil-equivalent) = %q, Victim = %q", name, order[0], first)
		}
		if _, ok := p.VictimExcluding(excluded); ok {
			t.Fatalf("%s: victim proposed with everything pinned", name)
		}
		// Skipping must not reorder: with pins lifted, the original
		// victim stands.
		clear(pinned)
		if v, _ := p.Victim(); v != first {
			t.Fatalf("%s: ranking disturbed by exclusion scans (%q -> %q)", name, first, v)
		}
	}
}

// TestSimulateTieredWaterfall: a working set larger than device+host
// cascades into the disk tier, later reuse promotes from the right tier,
// and nothing is ever a cold miss twice.
func TestSimulateTieredWaterfall(t *testing.T) {
	trace := []Access{
		{Key: "a", Size: 4}, {Key: "b", Size: 4}, {Key: "c", Size: 4},
		// a was demoted to host by c; b spilled to disk when c demoted... exercise reuse:
		{Key: "a", Size: 4}, {Key: "b", Size: 4}, {Key: "c", Size: 4},
		{Key: "a", Size: 4},
	}
	res := SimulateTiered(NewLRU(), 4, 4, trace)
	if res.ColdMisses != 3 {
		t.Fatalf("every key cold-misses exactly once: %+v", res)
	}
	if res.HostHits+res.DiskHits != 4 {
		t.Fatalf("all reuse should hit a lower tier: %+v", res)
	}
	if res.DiskHits == 0 {
		t.Fatalf("working set 3x device+host must reach disk: %+v", res)
	}
	if res.Demotions == 0 || res.Spills == 0 {
		t.Fatalf("expected demotions and spills: %+v", res)
	}
	if res.BytesSpilled == 0 || res.BytesPromoted == 0 {
		t.Fatalf("byte accounting should be nonzero: %+v", res)
	}
	if hr := res.HitRate(); hr <= 0.5 {
		t.Fatalf("hit rate %.2f, want > 0.5", hr)
	}
}

// TestSimulateTieredNoHost: hostCap <= 0 spills straight to disk, so
// reuse still never re-encodes.
func TestSimulateTieredNoHost(t *testing.T) {
	trace := []Access{
		{Key: "a", Size: 4}, {Key: "b", Size: 4},
		{Key: "a", Size: 4}, {Key: "b", Size: 4},
	}
	res := SimulateTiered(NewLRU(), 4, 0, trace)
	if res.ColdMisses != 2 || res.DiskHits != 2 || res.HostHits != 0 {
		t.Fatalf("disk-only demotion accounting wrong: %+v", res)
	}
	if res.Demotions != 0 {
		t.Fatalf("no host tier, no demotions: %+v", res)
	}
}

// TestSimulateTieredDurableDisk: a disk copy outlives promotion — the
// second spill of the same key adds no bytes (content addressing).
func TestSimulateTieredDurableDisk(t *testing.T) {
	trace := []Access{
		{Key: "a", Size: 4}, {Key: "b", Size: 4}, // a → disk
		{Key: "a", Size: 4}, // disk hit, promote (b → disk)
		{Key: "b", Size: 4}, // disk hit, promote (a evicted again: already on disk)
		{Key: "a", Size: 4},
	}
	res := SimulateTiered(NewLRU(), 4, 0, trace)
	if res.Spills != 2 || res.BytesSpilled != 8 {
		t.Fatalf("re-spilling a durable key should be free: %+v", res)
	}
	if res.DiskHits != 3 {
		t.Fatalf("expected 3 disk hits: %+v", res)
	}
}

// TestSimulateTieredPromotionResetsFIFO: promoting a key out of the host
// tier must drop its FIFO slot — after re-demotion it is the newest
// resident, so an older key spills to disk first.
func TestSimulateTieredPromotionResetsFIFO(t *testing.T) {
	trace := []Access{
		{Key: "a", Size: 4}, {Key: "b", Size: 4}, {Key: "c", Size: 4},
		// host (cap 8) now holds a,b in demotion order [a b]; promote a:
		{Key: "a", Size: 4}, // c demoted; host [b c]
		// Demote a again via d, overflowing the host: b (oldest) must
		// spill, not a.
		{Key: "d", Size: 4},
	}
	res := SimulateTiered(NewLRU(), 4, 8, trace)
	if res.Spills == 0 {
		t.Fatalf("expected a spill: %+v", res)
	}
	// a was promoted once from host; if its stale FIFO slot survived,
	// the overflow would have spilled a (newest) instead of b and the
	// final access pattern would shift hits between tiers.
	if res.HostHits != 1 {
		t.Fatalf("expected exactly one host hit (a), got %+v", res)
	}
	if res.DiskHits != 0 {
		t.Fatalf("no disk reuse in this trace: %+v", res)
	}
}
