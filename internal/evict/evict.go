// Package evict provides cache-replacement policies for prompt-module
// storage, the §6 future-work direction ("GPU cache replacement
// strategies optimized to achieve the latency lower bound made possible
// by Prompt Cache"). Policies rank resident modules for eviction when a
// capacity-limited tier (GPU HBM) fills; internal/core plugs them in via
// WithEvictionPolicy, and internal/serving compares them under
// trace-driven workloads.
package evict

import (
	"container/list"
	"fmt"
)

// Policy ranks cached entries for eviction. Implementations are not
// thread-safe; callers serialize access (core holds its own lock).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Touch records an access to key (inserting it if new) with its
	// storage size. Re-touching an existing key updates the stored size
	// (a re-encoded module may have a different footprint) even in
	// policies whose ranking ignores recency.
	Touch(key string, size int64)
	// Victim proposes the entry to evict next, without removing it.
	// ok is false when the policy tracks nothing.
	Victim() (key string, ok bool)
	// VictimExcluding proposes the best victim for which excluded
	// returns false, without removing it and without disturbing the
	// ranking of skipped entries. Serving pins in-use modules and
	// passes the pin check here so eviction never frees states a
	// concurrent prefill is reading. A nil excluded behaves like
	// Victim; ok is false when every tracked entry is excluded.
	VictimExcluding(excluded func(key string) bool) (key string, ok bool)
	// Remove forgets an entry (after eviction or explicit free).
	Remove(key string)
	// Len returns the number of tracked entries.
	Len() int
}

// --- LRU ---

type lruEntry struct {
	key  string
	size int64
}

// LRU evicts the least recently used entry — the paper's implicit
// default.
type LRU struct {
	ll  *list.List // front = most recent
	idx map[string]*list.Element
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{ll: list.New(), idx: map[string]*list.Element{}}
}

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Touch implements Policy.
func (p *LRU) Touch(key string, size int64) {
	if el, ok := p.idx[key]; ok {
		el.Value.(*lruEntry).size = size
		p.ll.MoveToFront(el)
		return
	}
	p.idx[key] = p.ll.PushFront(&lruEntry{key: key, size: size})
}

// victimFromList walks a back-to-front ranked list (back = next victim)
// and returns the first key not excluded — the shared exclusion walk of
// the list-backed policies (LRU, FIFO).
func victimFromList(ll *list.List, excluded func(string) bool) (string, bool) {
	for el := ll.Back(); el != nil; el = el.Prev() {
		key := el.Value.(*lruEntry).key
		if excluded == nil || !excluded(key) {
			return key, true
		}
	}
	return "", false
}

// Victim implements Policy.
func (p *LRU) Victim() (string, bool) { return p.VictimExcluding(nil) }

// VictimExcluding implements Policy: least recent entry not excluded.
func (p *LRU) VictimExcluding(excluded func(string) bool) (string, bool) {
	return victimFromList(p.ll, excluded)
}

// Remove implements Policy.
func (p *LRU) Remove(key string) {
	if el, ok := p.idx[key]; ok {
		p.ll.Remove(el)
		delete(p.idx, key)
	}
}

// Len implements Policy.
func (p *LRU) Len() int { return p.ll.Len() }

// --- FIFO ---

// FIFO evicts the oldest-inserted entry regardless of use.
type FIFO struct {
	ll  *list.List
	idx map[string]*list.Element
}

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO {
	return &FIFO{ll: list.New(), idx: map[string]*list.Element{}}
}

// Name implements Policy.
func (p *FIFO) Name() string { return "fifo" }

// Touch implements Policy. Re-touching keeps the insertion order fixed
// but still refreshes the stored size: a re-encoded module's footprint
// may have changed, and the policy must not keep reporting a stale one.
func (p *FIFO) Touch(key string, size int64) {
	if el, ok := p.idx[key]; ok {
		el.Value.(*lruEntry).size = size
		return
	}
	p.idx[key] = p.ll.PushFront(&lruEntry{key: key, size: size})
}

// Victim implements Policy.
func (p *FIFO) Victim() (string, bool) { return p.VictimExcluding(nil) }

// VictimExcluding implements Policy: oldest insertion not excluded.
func (p *FIFO) VictimExcluding(excluded func(string) bool) (string, bool) {
	return victimFromList(p.ll, excluded)
}

// Remove implements Policy.
func (p *FIFO) Remove(key string) {
	if el, ok := p.idx[key]; ok {
		p.ll.Remove(el)
		delete(p.idx, key)
	}
}

// Len implements Policy.
func (p *FIFO) Len() int { return p.ll.Len() }

// --- LFU ---

type lfuEntry struct {
	key   string
	size  int64
	count int64
	seq   int64 // recency tiebreak
}

// LFU evicts the least frequently used entry (ties broken by recency).
type LFU struct {
	entries map[string]*lfuEntry
	clock   int64
}

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU { return &LFU{entries: map[string]*lfuEntry{}} }

// Name implements Policy.
func (p *LFU) Name() string { return "lfu" }

// Touch implements Policy.
func (p *LFU) Touch(key string, size int64) {
	p.clock++
	if e, ok := p.entries[key]; ok {
		e.count++
		e.seq = p.clock
		e.size = size
		return
	}
	p.entries[key] = &lfuEntry{key: key, size: size, count: 1, seq: p.clock}
}

// Victim implements Policy.
func (p *LFU) Victim() (string, bool) { return p.VictimExcluding(nil) }

// VictimExcluding implements Policy: least frequent entry not excluded.
func (p *LFU) VictimExcluding(excluded func(string) bool) (string, bool) {
	var best *lfuEntry
	for _, e := range p.entries {
		if excluded != nil && excluded(e.key) {
			continue
		}
		if best == nil || e.count < best.count || (e.count == best.count && e.seq < best.seq) {
			best = e
		}
	}
	if best == nil {
		return "", false
	}
	return best.key, true
}

// Remove implements Policy.
func (p *LFU) Remove(key string) { delete(p.entries, key) }

// Len implements Policy.
func (p *LFU) Len() int { return len(p.entries) }

// --- GDSF ---

type gdsfEntry struct {
	key      string
	size     int64
	count    int64
	priority float64
	seq      int64
}

// GDSF is Greedy-Dual-Size-Frequency: priority = L + frequency/size, so
// small, hot modules survive while large, cold ones go first — the right
// bias for prompt modules whose sizes span orders of magnitude (a system
// message vs a 5K-token document).
type GDSF struct {
	entries map[string]*gdsfEntry
	l       float64 // aging floor: priority of the last victim
	clock   int64
}

// NewGDSF returns an empty GDSF policy.
func NewGDSF() *GDSF { return &GDSF{entries: map[string]*gdsfEntry{}} }

// Name implements Policy.
func (p *GDSF) Name() string { return "gdsf" }

// Touch implements Policy.
func (p *GDSF) Touch(key string, size int64) {
	p.clock++
	if size <= 0 {
		size = 1
	}
	e, ok := p.entries[key]
	if !ok {
		e = &gdsfEntry{key: key, size: size}
		p.entries[key] = e
	}
	e.count++
	e.size = size
	e.seq = p.clock
	e.priority = p.l + float64(e.count)/float64(e.size)
}

// Victim implements Policy.
func (p *GDSF) Victim() (string, bool) { return p.VictimExcluding(nil) }

// VictimExcluding implements Policy: lowest priority entry not excluded.
func (p *GDSF) VictimExcluding(excluded func(string) bool) (string, bool) {
	var best *gdsfEntry
	for _, e := range p.entries {
		if excluded != nil && excluded(e.key) {
			continue
		}
		if best == nil || e.priority < best.priority ||
			(e.priority == best.priority && e.seq < best.seq) {
			best = e
		}
	}
	if best == nil {
		return "", false
	}
	return best.key, true
}

// Remove implements Policy. Removing the current victim advances the
// aging floor so long-resident entries eventually become evictable.
func (p *GDSF) Remove(key string) {
	if e, ok := p.entries[key]; ok {
		if e.priority > p.l {
			p.l = e.priority
		}
		delete(p.entries, key)
	}
}

// Len implements Policy.
func (p *GDSF) Len() int { return len(p.entries) }

// New constructs a policy by name: "lru", "fifo", "lfu" or "gdsf".
func New(name string) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "fifo":
		return NewFIFO(), nil
	case "lfu":
		return NewLFU(), nil
	case "gdsf":
		return NewGDSF(), nil
	}
	return nil, fmt.Errorf("evict: unknown policy %q", name)
}

// Names lists the available policies.
func Names() []string { return []string{"lru", "fifo", "lfu", "gdsf"} }
