package mining

import (
	"reflect"
	"testing"
)

func TestDraftColdProposesNothing(t *testing.T) {
	d := NewDraft(DraftConfig{})
	if got := d.Propose("c", []int{1, 2, 3}, 4); got != nil {
		t.Fatalf("cold tree proposed %v", got)
	}
	// One observation leaves every transition at hits=1, below the
	// default MinHits=2 threshold: still nothing — a single fluke reply
	// must not steer the verify step.
	d.Observe("c", []int{1, 2, 3, 4, 5})
	if got := d.Propose("c", []int{1, 2, 3}, 4); got != nil {
		t.Fatalf("single observation at default MinHits proposed %v", got)
	}
	// Wrong class: trained elsewhere, cold here.
	d2 := NewDraft(DraftConfig{MinHits: 1})
	d2.Observe("a", []int{1, 2, 3, 4})
	d2.Observe("a", []int{1, 2, 3, 4})
	if got := d2.Propose("b", []int{1, 2}, 4); got != nil {
		t.Fatalf("unobserved class proposed %v", got)
	}
}

func TestDraftProposesAfterTraining(t *testing.T) {
	d := NewDraft(DraftConfig{MinHits: 1})
	d.Observe("c", []int{1, 2, 3, 4, 5, 6})
	// Greedy extension: from context [2,3] the predictor should walk the
	// observed continuation 4, 5, 6.
	if got, want := d.Propose("c", []int{1, 2, 3}, 3), []int{4, 5, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Propose = %v, want %v", got, want)
	}
	// max caps the proposal even when more is known.
	if got, want := d.Propose("c", []int{1, 2, 3}, 2), []int{4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Propose(max=2) = %v, want %v", got, want)
	}
	// max<=0 falls back to the configured MaxDraft (default 4).
	if got := d.Propose("c", []int{1, 2, 3}, 0); len(got) != 3 {
		t.Fatalf("Propose(max=0) = %v, want the full known continuation", got)
	}
}

func TestDraftBacksOffToShorterContext(t *testing.T) {
	d := NewDraft(DraftConfig{MinHits: 1})
	d.Observe("c", []int{1, 3, 1, 5})
	// Context [9, 1] was never observed, but its suffix [1] was: back-off
	// must find it. [1] was followed by 3 and by 5, both at hits 1; the
	// deterministic tie-break picks the lowest token id.
	if got, want := d.Propose("c", []int{9, 1}, 1), []int{3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Propose = %v, want %v (lowest-token-id tie-break)", got, want)
	}
	// A later observation breaking the tie flips the winner.
	d.Observe("c", []int{1, 5, 2, 2})
	if got, want := d.Propose("c", []int{9, 1}, 1), []int{5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after reinforcing 1->5: Propose = %v, want %v", got, want)
	}
}

func TestDraftDecayedEntriesExpire(t *testing.T) {
	// MinHits 1.5 sets the skip threshold at decayed hits <= 0.5, which a
	// single observation (hits=1) crosses after one half-life. HalfLife 1
	// makes every Observe a full half-life, so one unrelated observation
	// is enough to age the transition out.
	d := NewDraft(DraftConfig{MinHits: 1.5, HalfLife: 1})
	d.Observe("c", []int{1, 2, 3})
	d.Observe("c", []int{1, 2, 3}) // hits ~1.5 now: proposes
	if got := d.Propose("c", []int{1, 2}, 1); len(got) == 0 {
		t.Fatal("fresh transition did not propose")
	}
	// Two unrelated observations decay 1.5 -> 0.375, under the threshold.
	d.Observe("other", []int{7, 8, 9})
	d.Observe("other", []int{7, 8, 9})
	if got := d.Propose("c", []int{1, 2}, 1); got != nil {
		t.Fatalf("decayed transition still proposed %v", got)
	}
}

func TestDraftDropClassPrefix(t *testing.T) {
	d := NewDraft(DraftConfig{MinHits: 1})
	d.Observe("travel/a", []int{1, 2, 3})
	d.Observe("travel/b", []int{4, 5, 6})
	d.Observe("docs/a", []int{7, 8, 9})
	if st := d.Stats(); st.Classes != 3 || st.Contexts == 0 {
		t.Fatalf("setup stats: %+v", st)
	}
	d.DropClassPrefix("travel/")
	st := d.Stats()
	if st.Classes != 1 {
		t.Fatalf("after drop: %d classes, want 1", st.Classes)
	}
	if got := d.Propose("travel/a", []int{1, 2}, 1); got != nil {
		t.Fatalf("dropped class still proposed %v", got)
	}
	if got := d.Propose("docs/a", []int{7, 8}, 1); len(got) == 0 {
		t.Fatal("unrelated class lost its entries")
	}
	// Contexts bookkeeping must shrink with the drop, or MaxEntries would
	// fill with ghosts.
	if st.Contexts >= 3*st.Classes*2 {
		t.Fatalf("entries not released: %+v", st)
	}
}

func TestDraftMaxEntriesBounds(t *testing.T) {
	d := NewDraft(DraftConfig{MinHits: 1, MaxEntries: 4})
	// Each 3-token stream creates up to 3 contexts; after the cap fills,
	// new contexts are refused but the table stays functional.
	d.Observe("c", []int{1, 2, 3})
	d.Observe("c", []int{10, 11, 12})
	d.Observe("c", []int{20, 21, 22})
	if st := d.Stats(); st.Contexts > 4 {
		t.Fatalf("MaxEntries exceeded: %+v", st)
	}
	// The earliest transitions still work.
	if got := d.Propose("c", []int{1, 2}, 1); len(got) == 0 {
		t.Fatal("pre-cap transition lost")
	}
}

func TestDraftStats(t *testing.T) {
	d := NewDraft(DraftConfig{})
	if st := d.Stats(); !st.Enabled || st.Observed != 0 || st.Classes != 0 {
		t.Fatalf("zero stats: %+v", st)
	}
	d.Observe("c", []int{1, 2, 3})
	d.Observe("c", []int{1, 2, 3})
	st := d.Stats()
	if st.Observed != 2 || st.Classes != 1 || st.Contexts == 0 {
		t.Fatalf("stats after two observations: %+v", st)
	}
}
