// Package mining discovers undeclared shared prefixes in live serving
// traffic and promotes the hot ones to anonymous cached modules.
//
// The paper's reuse model is explicit: someone authors a PML schema
// before any KV state is shared. Production traffic is full of shared
// prefixes nobody declared — system prompts, RAG boilerplate, few-shot
// headers — that re-encode on every request. This package is the
// discovery layer: a concurrency-safe radix tree observes the
// (token, position) streams the engine computes at serve time, scores
// nodes by reuse rate × prefix length (the re-encode cost a hit saves)
// with exponential time decay, and nominates prefixes above a
// configurable threshold for promotion. The engine registers each
// promoted prefix as an anonymous module that flows through the
// existing pin/eviction/disk-spill/warm-restart machinery unchanged;
// when a promoted prefix goes cold, the tree nominates it for demotion
// and the engine garbage-collects it.
//
// Streams are keyed within a class — an opaque string capturing
// everything that determines the attention states of a token run
// (schema, included modules, scaffold overrides, excluded positions) —
// so a mined prefix is only ever spliced into serves whose states it
// reproduces bit-for-bit. Within a class, tree edges are keyed by
// (token, position) pairs: a prefix only matches when both the token
// ids and their position ids agree, which is exactly the condition for
// KV-state equality.
//
// The tree uses a logical clock (one tick per observation) rather than
// wall time, so scoring is deterministic and replayable offline.
package mining

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Config bounds the observer and sets the promotion policy.
type Config struct {
	// MinHits is the observation count a node needs before its prefix
	// qualifies for promotion: a node qualifies once its decayed hit
	// count exceeds MinHits-1, so MinHits tightly clustered
	// observations are enough even though each tick decays a little
	// (default 3).
	MinHits float64
	// MinTokens is the shortest prefix worth promoting: below it the
	// splice saves less than its bookkeeping costs (default 16).
	MinTokens int
	// MaxModules caps live promoted prefixes; promoting past the cap
	// demotes the coldest existing one first (default 64).
	MaxModules int
	// HalfLife is the decay half-life in observations (logical ticks):
	// a node untouched for HalfLife observations counts half as hot.
	// Non-positive selects the default (256).
	HalfLife float64
	// MaxNodes bounds the tree; once reached, new branches are not
	// created (existing paths still update), so memory stays bounded
	// under adversarial traffic (default 4096).
	MaxNodes int
	// MaxStreamTokens truncates observed streams: prefixes longer than
	// this are never candidates, keeping per-observe work O(bounded)
	// (default 512).
	MaxStreamTokens int
}

// Defaults for unset Config fields.
const (
	DefaultMinHits         = 3
	DefaultMinTokens       = 16
	DefaultMaxModules      = 64
	DefaultHalfLife        = 256
	DefaultMaxNodes        = 4096
	DefaultMaxStreamTokens = 512
)

func (c Config) withDefaults() Config {
	if c.MinHits <= 0 {
		c.MinHits = DefaultMinHits
	}
	if c.MinTokens <= 0 {
		c.MinTokens = DefaultMinTokens
	}
	if c.MaxModules <= 0 {
		c.MaxModules = DefaultMaxModules
	}
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultHalfLife
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = DefaultMaxNodes
	}
	if c.MaxStreamTokens <= 0 {
		c.MaxStreamTokens = DefaultMaxStreamTokens
	}
	return c
}

// tokpos is one stream element: a token id at a position id. Both must
// match for two streams to share attention states.
type tokpos struct{ tok, pos int }

// node is one radix-tree node: a compressed run of stream elements.
// Its depth (root-path token count through the end of its edge) is the
// length of the prefix it represents.
type node struct {
	edge     []tokpos
	children map[tokpos]*node
	parent   *node

	// hits is the decayed observation count, valid as of lastTick.
	hits     float64
	lastTick uint64
	depth    int // tokens from the root through this node's edge

	// promoted is the anonymous module name this node's prefix was
	// promoted under ("" when not promoted). pending marks a promotion
	// offered to the engine but not yet confirmed, so concurrent
	// observes do not double-nominate.
	promoted string
	pending  bool
}

// classTree is one class's radix tree.
type classTree struct {
	root *node
}

// Candidate is a prefix nominated for promotion. The engine owns the
// expensive half (capturing the prefix's attention states) and reports
// back with Promoted or PromoteFailed.
type Candidate struct {
	Class string
	// Toks and Pos are the prefix's token and position ids, the
	// concatenation of edge labels along the nominated node's root path.
	Toks, Pos []int

	miner *Miner
	node  *node
}

// Result is what one observation produced: at most one promotion
// nomination, plus any promoted prefixes that have gone cold and should
// be demoted (garbage-collected) by the engine.
type Result struct {
	Promote *Candidate
	// Demote lists anonymous module names whose prefixes went cold.
	// The engine confirms each removal with Demoted; unconfirmed names
	// are re-offered on later observations.
	Demote []string
}

// Stats is a snapshot of observer activity.
type Stats struct {
	Enabled bool `json:"enabled"`
	// Observed counts Observe calls (logical ticks).
	Observed uint64 `json:"observed"`
	// Classes and Nodes size the tree.
	Classes int `json:"classes"`
	Nodes   int `json:"nodes"`
	// Candidates counts nodes currently past the promotion threshold
	// but not (yet) promoted.
	Candidates int `json:"candidates"`
	// Promoted is the number of live promoted prefixes.
	Promoted int `json:"promoted"`
	// Promotions/Demotions are lifetime confirmation counts.
	Promotions uint64 `json:"promotions"`
	Demotions  uint64 `json:"demotions"`
}

// Miner is the traffic observer. It synchronizes itself: Observe,
// Lookup and the confirmation calls may run from any goroutine. All
// methods are leaf calls — the miner never calls back into the engine —
// so callers may hold their own locks across it.
type Miner struct {
	cfg Config

	mu      sync.Mutex
	classes map[string]*classTree
	// promoted indexes live promoted nodes by module name, for
	// demotion confirmations and adoption bookkeeping.
	promoted map[string]*node
	nodes    int
	tick     uint64

	promotions uint64
	demotions  uint64
}

// New builds a Miner; zero Config fields take the documented defaults.
func New(cfg Config) *Miner {
	return &Miner{
		cfg:      cfg.withDefaults(),
		classes:  make(map[string]*classTree),
		promoted: make(map[string]*node),
	}
}

// Config returns the miner's effective (defaulted) configuration.
func (m *Miner) Config() Config { return m.cfg }

// qualifies reports whether a decayed hit count clears the promotion
// bar (and, symmetrically, whether a promoted node is still warm).
func (m *Miner) qualifies(hits float64) bool { return hits > m.cfg.MinHits-1 }

// decayedHits returns n's hit count decayed to the current tick.
func (m *Miner) decayedHits(n *node) float64 {
	if n.lastTick == m.tick {
		return n.hits
	}
	dt := float64(m.tick - n.lastTick)
	return n.hits * math.Exp2(-dt/m.cfg.HalfLife)
}

// touch decays n to the current tick and adds one hit.
func (m *Miner) touch(n *node) {
	n.hits = m.decayedHits(n) + 1
	n.lastTick = m.tick
}

// Observe records one serve's uncached (token, position) stream and
// returns any promotion nomination and pending demotions it produced.
// Streams longer than MaxStreamTokens are truncated. len(pos) must
// equal len(toks); extra positions are ignored, missing ones truncate.
func (m *Miner) Observe(class string, toks, pos []int) Result {
	if len(pos) < len(toks) {
		toks = toks[:len(pos)]
	}
	// A serve matching a mined prefix must keep at least one uncached
	// token (the engine needs something to prefill), so a full-stream
	// prefix is useless to promote: cap nominations one short of the
	// stream — unless the stream was truncated, in which case the real
	// stream extends past everything we saw anyway.
	budget := len(toks)
	if len(toks) > m.cfg.MaxStreamTokens {
		toks = toks[:m.cfg.MaxStreamTokens]
		pos = pos[:m.cfg.MaxStreamTokens]
	} else {
		budget--
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	var res Result
	if len(toks) > 0 {
		path := m.insertLocked(class, toks, pos)
		if cand := m.nominateLocked(class, path, budget); cand != nil {
			res.Promote = cand
		}
	}
	res.Demote = m.coldPromotedLocked()
	return res
}

// insertLocked threads the stream through class's tree, splitting edges
// at divergence points and counting a hit on every fully matched node.
// It returns the matched path (root excluded), deepest last.
func (m *Miner) insertLocked(class string, toks, pos []int) []*node {
	ct := m.classes[class]
	if ct == nil {
		ct = &classTree{root: &node{children: make(map[tokpos]*node)}}
		m.classes[class] = ct
		m.nodes++ // the root counts toward the budget
	}
	var path []*node
	cur := ct.root
	i := 0
	for i < len(toks) {
		key := tokpos{toks[i], pos[i]}
		child := cur.children[key]
		if child == nil {
			if m.nodes >= m.cfg.MaxNodes {
				return path // budget exhausted: count what matched, grow nothing
			}
			child = &node{
				edge:     streamElems(toks[i:], pos[i:]),
				children: make(map[tokpos]*node),
				parent:   cur,
				depth:    cur.depth + len(toks) - i,
			}
			cur.children[key] = child
			m.nodes++
			m.touch(child)
			return append(path, child)
		}
		// Walk the child's edge as far as it matches.
		n := 0
		for n < len(child.edge) && i+n < len(toks) &&
			child.edge[n] == (tokpos{toks[i+n], pos[i+n]}) {
			n++
		}
		if n < len(child.edge) {
			// Partial match: split the edge at n so hit counts attach to
			// an exact boundary.
			if m.nodes >= m.cfg.MaxNodes {
				return path
			}
			child = m.splitAt(child, n)
		}
		m.touch(child)
		path = append(path, child)
		i += len(child.edge)
		cur = child
	}
	return path
}

// splitAt splits child's edge after n elements (0 < n < len(edge)),
// inserting a new upper node that inherits the child's statistics:
// every stream that passed through the child also passed through its
// first n elements. Returns the upper node. Caller checks MaxNodes.
func (m *Miner) splitAt(child *node, n int) *node {
	upper := &node{
		edge:     child.edge[:n:n],
		children: map[tokpos]*node{child.edge[n]: child},
		parent:   child.parent,
		depth:    child.depth - (len(child.edge) - n),
		hits:     child.hits,
		lastTick: child.lastTick,
	}
	child.parent.children[upper.edge[0]] = upper
	child.edge = child.edge[n:]
	child.parent = upper
	m.nodes++
	return upper
}

func streamElems(toks, pos []int) []tokpos {
	out := make([]tokpos, len(toks))
	for i := range toks {
		out[i] = tokpos{toks[i], pos[i]}
	}
	return out
}

// nominateLocked picks the deepest node on the just-observed path, at
// most budget tokens deep, that qualifies for promotion and is not
// already promoted (or pending). Returning the deepest maximizes
// spliced tokens per hit; shallower qualifying ancestors stay
// candidates and can promote on later observations if the deep branch
// cools off. A qualifying node deeper than the budget has its edge
// split at the budget boundary so a usable prefix exists — this is how
// a stream observed repeatedly verbatim still yields a promotable
// (length-1) prefix.
func (m *Miner) nominateLocked(class string, path []*node, budget int) *Candidate {
	if budget < m.cfg.MinTokens {
		return nil
	}
	if len(m.promoted) >= m.cfg.MaxModules && !m.canEvictColdestLocked() {
		return nil
	}
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if n.depth > budget {
			if n.depth-len(n.edge) >= budget {
				continue // the whole edge is past the budget
			}
			if n.promoted != "" || n.pending || !m.qualifies(m.decayedHits(n)) {
				continue
			}
			if m.nodes >= m.cfg.MaxNodes {
				continue
			}
			n = m.splitAt(n, budget-(n.depth-len(n.edge)))
		} else {
			if n.promoted != "" || n.pending {
				return nil // a promoted/pending ancestor covers this path
			}
			if !m.qualifies(m.decayedHits(n)) {
				continue
			}
		}
		if n.depth < m.cfg.MinTokens {
			return nil // everything shallower is shorter still
		}
		n.pending = true
		toks, pos := rootPath(n)
		return &Candidate{Class: class, Toks: toks, Pos: pos, miner: m, node: n}
	}
	return nil
}

// canEvictColdestLocked reports whether the cap can make room: true when
// some promoted node is colder than MinHits (it will be in the next
// demote sweep).
func (m *Miner) canEvictColdestLocked() bool {
	for _, n := range m.promoted {
		if !m.qualifies(m.decayedHits(n)) {
			return true
		}
	}
	return false
}

// rootPath reconstructs the token/position prefix a node represents:
// the concatenation of edge labels from the root down to (and
// including) the node. This is the invariant the fuzzer checks: a
// promoted prefix always equals this concatenation.
func rootPath(n *node) (toks, pos []int) {
	var chain []*node
	for ; n != nil && n.parent != nil; n = n.parent {
		chain = append(chain, n)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		for _, e := range chain[i].edge {
			toks = append(toks, e.tok)
			pos = append(pos, e.pos)
		}
	}
	return toks, pos
}

// coldPromotedLocked returns promoted module names whose decayed hits
// fell below MinHits — the demotion nominations. Names are returned
// sorted so demotion order is deterministic.
func (m *Miner) coldPromotedLocked() []string {
	var out []string
	for name, n := range m.promoted {
		if !m.qualifies(m.decayedHits(n)) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Promoted confirms a candidate: the engine captured its states and
// registered module name for it. The node starts its promoted life as
// hot as the threshold demands, so it is not instantly re-demoted.
func (c *Candidate) Promoted(name string) {
	m := c.miner
	m.mu.Lock()
	defer m.mu.Unlock()
	c.node.pending = false
	c.node.promoted = name
	if !m.qualifies(m.decayedHits(c.node)) {
		c.node.hits = m.cfg.MinHits
		c.node.lastTick = m.tick
	}
	m.promoted[name] = c.node
	m.promotions++
}

// PromoteFailed releases a nomination the engine could not act on
// (capacity pressure, racing schema drop); the node may be nominated
// again later.
func (c *Candidate) PromoteFailed() {
	m := c.miner
	m.mu.Lock()
	defer m.mu.Unlock()
	c.node.pending = false
}

// Demoted confirms the engine garbage-collected a promoted prefix. The
// node's statistics reset so an immediate re-promotion needs fresh
// evidence.
func (m *Miner) Demoted(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.promoted[name]
	if !ok {
		return
	}
	delete(m.promoted, name)
	n.promoted = ""
	n.hits = 0
	n.lastTick = m.tick
	m.demotions++
}

// Lookup finds the longest promoted prefix of the stream, at most
// maxTokens long, and returns its module name and token length. It does
// not count as an observation (the caller observes the full stream
// separately) but it refreshes the matched node's heat so serving
// traffic keeps its mined modules warm.
func (m *Miner) Lookup(class string, toks, pos []int, maxTokens int) (name string, n int, ok bool) {
	if len(pos) < len(toks) {
		toks = toks[:len(pos)]
	}
	if maxTokens < len(toks) {
		toks = toks[:maxTokens]
		pos = pos[:maxTokens]
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ct := m.classes[class]
	if ct == nil {
		return "", 0, false
	}
	cur := ct.root
	i := 0
	var best *node
	for i < len(toks) {
		child := cur.children[tokpos{toks[i], pos[i]}]
		if child == nil {
			break
		}
		k := 0
		for k < len(child.edge) && i+k < len(toks) &&
			child.edge[k] == (tokpos{toks[i+k], pos[i+k]}) {
			k++
		}
		if k < len(child.edge) {
			break // stream ends or diverges mid-edge: child's prefix not covered
		}
		if child.promoted != "" {
			best = child
		}
		i += k
		cur = child
	}
	if best == nil {
		return "", 0, false
	}
	m.touch(best)
	return best.promoted, best.depth, true
}

// Adopt registers an externally restored prefix (a warm-restarted mined
// module) as promoted, recreating its path in the tree. It is the
// restore-side counterpart of Promoted.
func (m *Miner) Adopt(class string, toks, pos []int, name string) error {
	if len(toks) == 0 || len(toks) != len(pos) {
		return fmt.Errorf("mining: adopt %q: bad stream (%d toks, %d pos)", name, len(toks), len(pos))
	}
	if len(toks) > m.cfg.MaxStreamTokens {
		return fmt.Errorf("mining: adopt %q: %d tokens exceeds MaxStreamTokens %d", name, len(toks), m.cfg.MaxStreamTokens)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	path := m.insertLocked(class, toks, pos)
	if len(path) == 0 || path[len(path)-1].depth != len(toks) {
		return fmt.Errorf("mining: adopt %q: tree budget exhausted", name)
	}
	n := path[len(path)-1]
	if n.promoted != "" && n.promoted != name {
		return fmt.Errorf("mining: adopt %q: prefix already promoted as %q", name, n.promoted)
	}
	n.promoted = name
	if n.hits < m.cfg.MinHits {
		n.hits = m.cfg.MinHits
		n.lastTick = m.tick
	}
	m.promoted[name] = n
	return nil
}

// DropClassPrefix removes every class whose key starts with prefix —
// the engine calls it when a schema is dropped or replaced, with the
// schema's class-key prefix — and returns the names of promoted
// prefixes that vanished with them (already gone from the cache; no
// Demoted confirmation needed).
func (m *Miner) DropClassPrefix(prefix string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var dropped []string
	for class, ct := range m.classes {
		if !strings.HasPrefix(class, prefix) {
			continue
		}
		m.nodes -= countNodes(ct.root)
		delete(m.classes, class)
		for name, n := range m.promoted {
			if treeContains(ct.root, n) {
				delete(m.promoted, name)
				dropped = append(dropped, name)
			}
		}
	}
	sort.Strings(dropped)
	return dropped
}

func countNodes(n *node) int {
	total := 1
	for _, c := range n.children {
		total += countNodes(c)
	}
	return total
}

func treeContains(root, n *node) bool {
	for ; n != nil; n = n.parent {
		if n == root {
			return true
		}
	}
	return false
}

// Stats snapshots observer activity. Candidate counting walks the tree;
// the node budget bounds the walk.
func (m *Miner) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Enabled:    true,
		Observed:   m.tick,
		Classes:    len(m.classes),
		Nodes:      m.nodes,
		Promoted:   len(m.promoted),
		Promotions: m.promotions,
		Demotions:  m.demotions,
	}
	for _, ct := range m.classes {
		st.Candidates += m.countCandidates(ct.root)
	}
	return st
}

func (m *Miner) countCandidates(n *node) int {
	total := 0
	if n.parent != nil && n.promoted == "" && !n.pending &&
		n.depth >= m.cfg.MinTokens && m.qualifies(m.decayedHits(n)) {
		total++
	}
	for _, c := range n.children {
		total += m.countCandidates(c)
	}
	return total
}
