package mining

import (
	"fmt"
	"testing"
)

// FuzzMiner drives insert/lookup/decay/promote/demote on arbitrary
// token streams. Invariants:
//
//   - no operation panics, whatever the stream shape;
//   - every promotion candidate's (Toks, Pos) is exactly a prefix of
//     the stream whose observation nominated it — i.e. the
//     concatenation of edge labels along the nominated node's root
//     path reproduces observed traffic;
//   - a Lookup hit never exceeds its token budget and always reports
//     a name that was actually promoted.
func FuzzMiner(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4}, uint8(2), uint8(2))
	f.Add([]byte{0xff, 0, 0xff, 0, 7, 7, 7}, uint8(1), uint8(3))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 8, 8, 8, 8, 8, 8, 8, 8}, uint8(3), uint8(4))

	f.Fuzz(func(t *testing.T, data []byte, minHits, minTokens uint8) {
		m := New(Config{
			MinHits:         float64(minHits%8) + 1,
			MinTokens:       int(minTokens%8) + 1,
			MaxModules:      8,
			HalfLife:        16,
			MaxNodes:        128,
			MaxStreamTokens: 32,
		})
		promoted := map[string]bool{}
		seq := 0

		// Interpret data as a series of streams: each byte is a token,
		// a zero byte ends the current stream. Low bit of the stream
		// index picks one of two classes; every third stream is looked
		// up instead of observed; positions are sequential from a small
		// offset so the tree sees both matching and drifting positions.
		var toks, pos []int
		stream := 0
		flush := func() {
			if len(toks) == 0 {
				return
			}
			class := fmt.Sprintf("class-%d", stream&1)
			switch stream % 3 {
			case 0, 1:
				res := m.Observe(class, toks, pos)
				if c := res.Promote; c != nil {
					if len(c.Toks) == 0 || len(c.Toks) != len(c.Pos) {
						t.Fatalf("malformed candidate: %d toks, %d pos", len(c.Toks), len(c.Pos))
					}
					if len(c.Toks) > len(toks) {
						t.Fatalf("candidate longer (%d) than observed stream (%d)", len(c.Toks), len(toks))
					}
					for j := range c.Toks {
						if c.Toks[j] != toks[j] || c.Pos[j] != pos[j] {
							t.Fatalf("candidate[%d] = (%d,%d), stream has (%d,%d)",
								j, c.Toks[j], c.Pos[j], toks[j], pos[j])
						}
					}
					if stream%2 == 0 {
						name := fmt.Sprintf("~mined/%d", seq)
						seq++
						c.Promoted(name)
						promoted[name] = true
					} else {
						c.PromoteFailed()
					}
				}
				for _, name := range res.Demote {
					if !promoted[name] {
						t.Fatalf("demote nominated unknown module %q", name)
					}
					if stream%2 == 0 {
						m.Demoted(name)
						delete(promoted, name)
					}
				}
			case 2:
				budget := len(toks)
				if stream%5 == 0 && budget > 1 {
					budget /= 2
				}
				if name, n, ok := m.Lookup(class, toks, pos, budget); ok {
					if n > budget {
						t.Fatalf("lookup hit %d tokens past budget %d", n, budget)
					}
					if !promoted[name] {
						t.Fatalf("lookup returned unknown module %q", name)
					}
				}
			}
			stream++
			toks, pos = nil, nil
		}
		for _, b := range data {
			if b == 0 {
				flush()
				continue
			}
			toks = append(toks, int(b))
			pos = append(pos, len(pos)+stream%2) // occasional position offset
		}
		flush()

		st := m.Stats()
		if st.Nodes > 128 {
			t.Fatalf("tree grew to %d nodes past MaxNodes", st.Nodes)
		}
		if st.Promoted != len(promoted) {
			t.Fatalf("stats.Promoted = %d, tracked %d", st.Promoted, len(promoted))
		}
	})
}
