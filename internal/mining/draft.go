package mining

import (
	"math"
	"strconv"
	"strings"
	"sync"
)

// Draft is the speculative-decoding draft source: a back-off n-gram
// predictor over the token streams decode actually produced, keyed by
// the same serving-class strings as the module-mining radix tree. It is
// not a second model — proposals come from counting which token followed
// which context in earlier replies of the same class, with the miner's
// exponential logical-clock decay so stale phrasing ages out.
//
// The predictor only ever *proposes*; the engine's verify step scores
// every proposal with the real model and accepts exactly the prefix solo
// decode would have produced. A wrong draft therefore costs wasted
// verify width, never a wrong token, which is why a statistics table
// this cheap is a sound draft source.
//
// Like Miner, a Draft synchronizes itself and all methods are leaf
// calls, so callers may hold their own locks across it.
type Draft struct {
	cfg DraftConfig

	mu      sync.Mutex
	classes map[string]*draftClass
	entries int
	tick    uint64
}

// DraftConfig bounds the predictor and sets the proposal policy.
type DraftConfig struct {
	// Context is the maximum n-gram context length: predictions condition
	// on up to this many preceding tokens, backing off to shorter
	// contexts when a long one was never observed (default 3).
	Context int
	// MaxDraft caps tokens proposed per call when the caller does not
	// pass a tighter bound (default 4).
	MaxDraft int
	// MinHits is the decayed observation count a (context, token)
	// transition needs before it is proposed; colder transitions — and a
	// cold tree — propose nothing (default 2).
	MinHits float64
	// HalfLife is the decay half-life in observations (logical ticks),
	// matching the miner's clock semantics (default 512).
	HalfLife float64
	// MaxEntries bounds distinct contexts across all classes; once
	// reached, new contexts are not created (existing ones still update),
	// so memory stays bounded under adversarial traffic (default 65536).
	MaxEntries int
	// MaxStreamTokens truncates observed streams (default 512).
	MaxStreamTokens int
}

// Defaults for unset DraftConfig fields.
const (
	DefaultDraftContext    = 3
	DefaultDraftMaxDraft   = 4
	DefaultDraftMinHits    = 2
	DefaultDraftHalfLife   = 512
	DefaultDraftMaxEntries = 65536
)

func (c DraftConfig) withDefaults() DraftConfig {
	if c.Context <= 0 {
		c.Context = DefaultDraftContext
	}
	if c.MaxDraft <= 0 {
		c.MaxDraft = DefaultDraftMaxDraft
	}
	if c.MinHits <= 0 {
		c.MinHits = DefaultDraftMinHits
	}
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultDraftHalfLife
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = DefaultDraftMaxEntries
	}
	if c.MaxStreamTokens <= 0 {
		c.MaxStreamTokens = DefaultMaxStreamTokens
	}
	return c
}

// draftClass is one serving class's context table.
type draftClass struct {
	ctxs map[string]*draftEntry
}

// draftEntry is the successor statistics of one observed context.
type draftEntry struct {
	succ map[int]*draftSucc
}

// draftSucc is a decayed count for one (context, next-token) transition.
type draftSucc struct {
	hits     float64
	lastTick uint64
}

// DraftStats is a snapshot of draft-source activity.
type DraftStats struct {
	Enabled bool `json:"enabled"`
	// Observed counts Observe calls (logical ticks).
	Observed uint64 `json:"observed"`
	// Classes and Contexts size the table.
	Classes  int `json:"classes"`
	Contexts int `json:"contexts"`
}

// NewDraft builds a Draft; zero DraftConfig fields take the documented
// defaults.
func NewDraft(cfg DraftConfig) *Draft {
	return &Draft{
		cfg:     cfg.withDefaults(),
		classes: make(map[string]*draftClass),
	}
}

// Config returns the draft's effective (defaulted) configuration.
func (d *Draft) Config() DraftConfig { return d.cfg }

// ctxKey encodes a context token run as a map key.
func ctxKey(toks []int) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(t))
	}
	return b.String()
}

// decayed returns s's hit count decayed to the current tick.
func (d *Draft) decayed(s *draftSucc) float64 {
	if s.lastTick == d.tick {
		return s.hits
	}
	dt := float64(d.tick - s.lastTick)
	return s.hits * math.Exp2(-dt/d.cfg.HalfLife)
}

// Observe records one accepted decode stream: for every token it counts
// a hit on each (suffix context of length 1..Context, token) transition,
// so the predictor learns all back-off orders at once. Call it with the
// tokens a generation actually emitted (draft proposals that were
// rejected must not be fed back, or the predictor would reinforce its
// own mistakes).
func (d *Draft) Observe(class string, toks []int) {
	if len(toks) < 2 {
		return
	}
	if len(toks) > d.cfg.MaxStreamTokens {
		toks = toks[:d.cfg.MaxStreamTokens]
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++
	dc := d.classes[class]
	if dc == nil {
		dc = &draftClass{ctxs: make(map[string]*draftEntry)}
		d.classes[class] = dc
	}
	for i := 1; i < len(toks); i++ {
		for c := 1; c <= d.cfg.Context && c <= i; c++ {
			key := ctxKey(toks[i-c : i])
			e := dc.ctxs[key]
			if e == nil {
				if d.entries >= d.cfg.MaxEntries {
					continue
				}
				e = &draftEntry{succ: make(map[int]*draftSucc)}
				dc.ctxs[key] = e
				d.entries++
			}
			s := e.succ[toks[i]]
			if s == nil {
				s = &draftSucc{}
				e.succ[toks[i]] = s
			}
			s.hits = d.decayed(s) + 1
			s.lastTick = d.tick
		}
	}
}

// Propose predicts up to max tokens that will follow ctx in the given
// class, longest-context-first with back-off, greedily extending its own
// prediction. It returns nil when the class was never observed or no
// transition clears MinHits — a cold or decayed tree proposes nothing,
// which keeps the verify step exactly a single-token decode step.
//
// The selection is deterministic: among successors with the same decayed
// count the lowest token id wins, so map iteration order cannot leak
// into proposals (and therefore cannot leak into which prefix the verify
// step accepts — not that it could change output, but determinism keeps
// benchmarks and golden tests replayable).
func (d *Draft) Propose(class string, ctx []int, max int) []int {
	if max <= 0 || max > d.cfg.MaxDraft {
		max = d.cfg.MaxDraft
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	dc := d.classes[class]
	if dc == nil || len(ctx) == 0 {
		return nil
	}
	// cur holds the rolling context window: the tail of ctx, extended by
	// each accepted proposal.
	start := len(ctx) - d.cfg.Context
	if start < 0 {
		start = 0
	}
	cur := append([]int(nil), ctx[start:]...)
	var out []int
	for len(out) < max {
		tok, ok := d.bestLocked(dc, cur)
		if !ok {
			break
		}
		out = append(out, tok)
		cur = append(cur, tok)
		if len(cur) > d.cfg.Context {
			cur = cur[1:]
		}
	}
	return out
}

// bestLocked finds the hottest qualifying successor of the longest
// observed suffix of cur, backing off to shorter contexts when a longer
// one has no qualifying successor.
func (d *Draft) bestLocked(dc *draftClass, cur []int) (int, bool) {
	for c := len(cur); c >= 1; c-- {
		if c > d.cfg.Context {
			continue
		}
		e := dc.ctxs[ctxKey(cur[len(cur)-c:])]
		if e == nil {
			continue
		}
		bestTok, bestHits, found := 0, 0.0, false
		//pclint:ignore maporder max-with-lowest-token-id tie-break: the selected successor is the same in every iteration order
		for tok, s := range e.succ {
			h := d.decayed(s)
			if h <= d.cfg.MinHits-1 {
				continue
			}
			if !found || h > bestHits || (h == bestHits && tok < bestTok) {
				bestTok, bestHits, found = tok, h, true
			}
		}
		if found {
			return bestTok, true
		}
	}
	return 0, false
}

// DropClassPrefix removes every class whose key starts with prefix — the
// draft-side counterpart of Miner.DropClassPrefix, called when a schema
// is dropped or replaced so its learned phrasing dies with it.
func (d *Draft) DropClassPrefix(prefix string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for class, dc := range d.classes {
		if !strings.HasPrefix(class, prefix) {
			continue
		}
		d.entries -= len(dc.ctxs)
		delete(d.classes, class)
	}
}

// Stats snapshots draft-source activity.
func (d *Draft) Stats() DraftStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DraftStats{
		Enabled:  true,
		Observed: d.tick,
		Classes:  len(d.classes),
		Contexts: d.entries,
	}
}
