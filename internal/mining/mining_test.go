package mining

import (
	"fmt"
	"testing"
)

// seqStream builds a stream of n tokens tok0..tok0+n-1 at sequential
// positions starting at base.
func seqStream(tok0, base, n int) (toks, pos []int) {
	for i := 0; i < n; i++ {
		toks = append(toks, tok0+i)
		pos = append(pos, base+i)
	}
	return toks, pos
}

func TestPromoteAfterMinHits(t *testing.T) {
	m := New(Config{MinHits: 3, MinTokens: 4})
	toks, pos := seqStream(100, 0, 8)

	for i := 1; i <= 2; i++ {
		if res := m.Observe("c", toks, pos); res.Promote != nil {
			t.Fatalf("observation %d nominated prematurely", i)
		}
	}
	res := m.Observe("c", toks, pos)
	if res.Promote == nil {
		t.Fatal("third observation did not nominate")
	}
	c := res.Promote
	if c.Class != "c" {
		t.Fatalf("candidate class = %q", c.Class)
	}
	// Nominations cap one short of the observed stream: a serve matching
	// the full stream would have nothing left to prefill.
	if len(c.Toks) != 7 || c.Toks[0] != 100 || c.Pos[6] != 6 {
		t.Fatalf("candidate stream = %v @ %v", c.Toks, c.Pos)
	}

	// Pending: re-observing must not double-nominate.
	if res := m.Observe("c", toks, pos); res.Promote != nil {
		t.Fatal("nominated while a candidate was pending")
	}
	c.Promoted("~mined/0")

	name, n, ok := m.Lookup("c", toks, pos, len(toks))
	if !ok || name != "~mined/0" || n != 7 {
		t.Fatalf("Lookup = %q, %d, %v", name, n, ok)
	}
	st := m.Stats()
	if st.Promotions != 1 || st.Promoted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPromoteFailedAllowsRetry(t *testing.T) {
	m := New(Config{MinHits: 2, MinTokens: 2})
	toks, pos := seqStream(5, 0, 4)
	m.Observe("c", toks, pos)
	res := m.Observe("c", toks, pos)
	if res.Promote == nil {
		t.Fatal("no nomination")
	}
	res.Promote.PromoteFailed()
	res = m.Observe("c", toks, pos)
	if res.Promote == nil {
		t.Fatal("no re-nomination after PromoteFailed")
	}
}

func TestClassIsolation(t *testing.T) {
	m := New(Config{MinHits: 2, MinTokens: 2})
	toks, pos := seqStream(5, 0, 4)
	m.Observe("a", toks, pos)
	res := m.Observe("a", toks, pos)
	if res.Promote == nil {
		t.Fatal("no nomination in class a")
	}
	res.Promote.Promoted("~mined/0")
	if _, _, ok := m.Lookup("b", toks, pos, len(toks)); ok {
		t.Fatal("class b saw class a's promotion")
	}
}

func TestPositionMismatchIsDifferentPrefix(t *testing.T) {
	m := New(Config{MinHits: 2, MinTokens: 2})
	toks, pos := seqStream(5, 0, 4)
	m.Observe("c", toks, pos)
	res := m.Observe("c", toks, pos)
	res.Promote.Promoted("~mined/0")

	_, shifted := seqStream(5, 10, 4) // same tokens, positions 10..13
	if _, _, ok := m.Lookup("c", toks, shifted, len(toks)); ok {
		t.Fatal("Lookup matched despite position drift")
	}
}

func TestEdgeSplitPromotesSharedPrefix(t *testing.T) {
	m := New(Config{MinHits: 3, MinTokens: 4})
	// Streams share 6 tokens then diverge; the shared node (created by
	// an edge split) accumulates all hits and must be the nominee.
	aT, aP := seqStream(100, 0, 10)
	bT := append(append([]int{}, aT[:6]...), 900, 901, 902, 903)
	m.Observe("c", aT, aP)
	m.Observe("c", bT, aP)
	res := m.Observe("c", aT, aP)
	if res.Promote == nil {
		t.Fatal("shared prefix not nominated")
	}
	if len(res.Promote.Toks) != 6 {
		t.Fatalf("nominated %d tokens, want the 6 shared", len(res.Promote.Toks))
	}
}

func TestDeepestQualifyingNodeWins(t *testing.T) {
	m := New(Config{MinHits: 2, MinTokens: 2})
	short, shortPos := seqStream(5, 0, 4)
	long, longPos := seqStream(5, 0, 8) // extends short
	m.Observe("c", short, shortPos)
	m.Observe("c", long, longPos)
	res := m.Observe("c", long, longPos)
	if res.Promote == nil {
		t.Fatal("no nomination")
	}
	// The 4-token node has 3 hits, the 8-token extension 2: both
	// qualify, the deeper one must win (capped at stream length - 1).
	if len(res.Promote.Toks) != 7 {
		t.Fatalf("nominated %d tokens, want 7 (deepest qualifying)", len(res.Promote.Toks))
	}
}

func TestDecayDemotesCold(t *testing.T) {
	m := New(Config{MinHits: 2, MinTokens: 2, HalfLife: 4})
	toks, pos := seqStream(5, 0, 4)
	m.Observe("c", toks, pos)
	res := m.Observe("c", toks, pos)
	res.Promote.Promoted("~mined/0")

	// Unrelated traffic advances the clock; the promoted node decays
	// below MinHits and must be nominated for demotion.
	var demoted bool
	for i := 0; i < 64 && !demoted; i++ {
		oT, oP := seqStream(1000+i*10, 0, 3)
		r := m.Observe("c", oT, oP)
		for _, name := range r.Demote {
			if name == "~mined/0" {
				demoted = true
			}
		}
	}
	if !demoted {
		t.Fatal("cold promoted prefix never nominated for demotion")
	}

	m.Demoted("~mined/0")
	if _, _, ok := m.Lookup("c", toks, pos, len(toks)); ok {
		t.Fatal("Lookup still matches after Demoted")
	}
	if st := m.Stats(); st.Demotions != 1 || st.Promoted != 0 {
		t.Fatalf("stats after demotion = %+v", st)
	}
}

func TestLookupKeepsPromotedWarm(t *testing.T) {
	m := New(Config{MinHits: 2, MinTokens: 2, HalfLife: 8})
	toks, pos := seqStream(5, 0, 4)
	m.Observe("c", toks, pos)
	res := m.Observe("c", toks, pos)
	res.Promote.Promoted("~mined/0")

	// Interleave lookups with unrelated traffic: the promoted node must
	// stay warm (no demotion nomination) because lookups touch it.
	for i := 0; i < 64; i++ {
		if _, _, ok := m.Lookup("c", toks, pos, len(toks)); !ok {
			t.Fatalf("lookup %d missed", i)
		}
		oT, oP := seqStream(1000+i*10, 0, 3)
		if r := m.Observe("c", oT, oP); len(r.Demote) != 0 {
			t.Fatalf("hot module nominated for demotion at %d", i)
		}
	}
}

func TestLookupMaxTokens(t *testing.T) {
	m := New(Config{MinHits: 2, MinTokens: 2})
	toks, pos := seqStream(5, 0, 8)
	m.Observe("c", toks, pos)
	res := m.Observe("c", toks, pos)
	res.Promote.Promoted("~mined/0")

	// A budget shorter than the promoted depth must not match (the
	// serve cannot afford the full splice). The promoted prefix is 7
	// tokens (one short of the observed 8-token stream).
	if _, _, ok := m.Lookup("c", toks, pos, 4); ok {
		t.Fatal("Lookup matched past its token budget")
	}
	if _, n, ok := m.Lookup("c", toks, pos, 7); !ok || n != 7 {
		t.Fatalf("Lookup with exact budget = %d, %v", n, ok)
	}
}

func TestMaxModulesCap(t *testing.T) {
	m := New(Config{MinHits: 2, MinTokens: 2, MaxModules: 1, HalfLife: 1 << 20})
	aT, aP := seqStream(5, 0, 4)
	m.Observe("c", aT, aP)
	res := m.Observe("c", aT, aP)
	res.Promote.Promoted("~mined/0")

	// A second hot prefix must not be nominated while the cap is full
	// and the incumbent is warm.
	bT, bP := seqStream(500, 0, 4)
	m.Observe("c", bT, bP)
	if res := m.Observe("c", bT, bP); res.Promote != nil {
		t.Fatal("nominated past MaxModules with a warm incumbent")
	}
}

func TestMaxNodesBoundsTree(t *testing.T) {
	m := New(Config{MaxNodes: 16, MaxStreamTokens: 8})
	for i := 0; i < 1000; i++ {
		toks, pos := seqStream(i*100, 0, 8)
		m.Observe("c", toks, pos)
	}
	if st := m.Stats(); st.Nodes > 16 {
		t.Fatalf("tree grew to %d nodes past MaxNodes 16", st.Nodes)
	}
}

func TestAdoptRestoresLookup(t *testing.T) {
	m := New(Config{MinHits: 2, MinTokens: 2})
	toks, pos := seqStream(5, 0, 6)
	if err := m.Adopt("c", toks, pos, "~mined/7"); err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	name, n, ok := m.Lookup("c", toks, pos, len(toks))
	if !ok || name != "~mined/7" || n != 6 {
		t.Fatalf("Lookup after Adopt = %q, %d, %v", name, n, ok)
	}
	// Adopt of a conflicting name on the same prefix must fail.
	if err := m.Adopt("c", toks, pos, "~mined/8"); err == nil {
		t.Fatal("conflicting Adopt succeeded")
	}
}

func TestDropClassPrefix(t *testing.T) {
	m := New(Config{MinHits: 2, MinTokens: 2})
	toks, pos := seqStream(5, 0, 4)
	m.Observe("s1\x1fx", toks, pos)
	res := m.Observe("s1\x1fx", toks, pos)
	res.Promote.Promoted("~mined/0")
	m.Observe("s2\x1fx", toks, pos)

	dropped := m.DropClassPrefix("s1\x1f")
	if len(dropped) != 1 || dropped[0] != "~mined/0" {
		t.Fatalf("dropped = %v", dropped)
	}
	if _, _, ok := m.Lookup("s1\x1fx", toks, pos, len(toks)); ok {
		t.Fatal("dropped class still matches")
	}
	st := m.Stats()
	if st.Classes != 1 || st.Promoted != 0 {
		t.Fatalf("stats after drop = %+v", st)
	}
}

func TestPromotedPrefixEqualsRootPath(t *testing.T) {
	// Mixed streams force edge splits; every nomination must still
	// reproduce exactly a prefix of some observed stream.
	m := New(Config{MinHits: 2, MinTokens: 2})
	streams := [][]int{}
	for i := 0; i < 8; i++ {
		s, _ := seqStream(i%3*50, 0, 6+i%4)
		streams = append(streams, s)
	}
	seq := 0
	for round := 0; round < 4; round++ {
		for _, s := range streams {
			pos := make([]int, len(s))
			for j := range pos {
				pos[j] = j
			}
			res := m.Observe("c", s, pos)
			if res.Promote == nil {
				continue
			}
			c := res.Promote
			if len(c.Toks) > len(s) {
				t.Fatalf("candidate longer than observed stream")
			}
			for j := range c.Toks {
				if c.Toks[j] != s[j] || c.Pos[j] != j {
					t.Fatalf("candidate diverges from stream at %d: (%d,%d) vs (%d,%d)",
						j, c.Toks[j], c.Pos[j], s[j], j)
				}
			}
			c.Promoted(fmt.Sprintf("~mined/%d", seq))
			seq++
		}
	}
}

func TestObserveEmptyAndMismatched(t *testing.T) {
	m := New(Config{})
	m.Observe("c", nil, nil)
	m.Observe("c", []int{1, 2, 3}, []int{0}) // pos shorter than toks
	if st := m.Stats(); st.Observed != 2 {
		t.Fatalf("observed = %d", st.Observed)
	}
}
