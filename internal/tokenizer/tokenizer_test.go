package tokenizer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDeterministicEncoding(t *testing.T) {
	tk := New(4096)
	a := tk.Encode("the quick brown fox")
	b := tk.Encode("the quick brown fox")
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("identical text produced different tokens")
		}
	}
}

func TestSameTextSameTokensAcrossInstances(t *testing.T) {
	// Prompt Cache requires that schema text tokenized at encode time
	// matches prompt text tokenized at serve time, even across processes.
	a := New(4096).Encode("system message: be helpful")
	b := New(4096).Encode("system message: be helpful")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("token assignment not stable across instances")
		}
	}
}

func TestWhitespaceInsensitivity(t *testing.T) {
	tk := New(4096)
	a := tk.Encode("hello   world")
	b := tk.Encode("hello world")
	c := tk.Encode(" hello\nworld\t")
	if len(a) != 2 || len(b) != 2 || len(c) != 2 {
		t.Fatalf("unexpected lengths %d %d %d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] || b[i] != c[i] {
			t.Fatal("whitespace changed token ids")
		}
	}
}

func TestCaseFolding(t *testing.T) {
	tk := New(4096)
	if tk.Encode("Hello")[0] != tk.Encode("hello")[0] {
		t.Fatal("case should fold")
	}
}

func TestPunctuationByteFallback(t *testing.T) {
	tk := New(4096)
	ids := tk.Encode("a,b")
	if len(ids) != 3 {
		t.Fatalf("want 3 tokens, got %d", len(ids))
	}
	if ids[1] != ByteBase+int(',') {
		t.Fatalf("comma should be byte token, got %d", ids[1])
	}
}

func TestUnicodeByteFallback(t *testing.T) {
	tk := New(4096)
	ids := tk.Encode("…") // U+2026, 3 UTF-8 bytes
	if len(ids) != 3 {
		t.Fatalf("ellipsis should be 3 byte tokens, got %d", len(ids))
	}
	for _, id := range ids {
		if id < ByteBase || id >= WordBase {
			t.Fatalf("id %d outside byte range", id)
		}
	}
}

func TestIDsInRange(t *testing.T) {
	tk := New(600)
	check := func(s string) bool {
		for _, id := range tk.Encode(s) {
			if id < 0 || id >= tk.VocabSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRoundTripWords(t *testing.T) {
	tk := New(65536)
	text := "the quick brown fox jumps over the lazy dog"
	got := tk.Decode(tk.Encode(text))
	if got != text {
		t.Fatalf("round trip: %q -> %q", text, got)
	}
}

func TestDecodePunctuationAttaches(t *testing.T) {
	tk := New(65536)
	got := tk.Decode(tk.Encode("hello, world"))
	if got != "hello, world" {
		t.Fatalf("got %q", got)
	}
}

func TestDecodeSpecials(t *testing.T) {
	tk := New(4096)
	got := tk.Decode([]int{BosID, InstOpenID, InstCloseID, EosID})
	want := "<s> [INST] [/INST] </s>"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestDecodeUnknownWordID(t *testing.T) {
	tk := New(4096)
	got := tk.Decode([]int{WordBase + 5})
	if got == "" || strings.ContainsAny(got, "⟨⟩ ") {
		t.Fatalf("unknown id should render one pseudo-word, got %q", got)
	}
	// Deterministic and id-dependent.
	if tk.Decode([]int{WordBase + 5}) != got {
		t.Fatal("pseudo-word not deterministic")
	}
	if tk.Decode([]int{WordBase + 6}) == got {
		t.Fatal("distinct ids should differ")
	}
}

func TestDecodeBadID(t *testing.T) {
	tk := New(4096)
	got := tk.Decode([]int{-1, 1 << 20})
	if !strings.Contains(got, "bad") {
		t.Fatalf("out-of-range ids should render bad placeholder, got %q", got)
	}
}

func TestUnkRun(t *testing.T) {
	ids := UnkRun(4)
	if len(ids) != 4 {
		t.Fatalf("len = %d", len(ids))
	}
	for _, id := range ids {
		if id != UnkID {
			t.Fatalf("id = %d, want UnkID", id)
		}
	}
}

func TestIsSpecial(t *testing.T) {
	if !IsSpecial(UnkID) || !IsSpecial(BosID) {
		t.Fatal("specials misclassified")
	}
	if IsSpecial(WordBase) || IsSpecial(-1) {
		t.Fatal("non-specials misclassified")
	}
	if SpecialName(UnkID) != "<unk>" {
		t.Fatalf("SpecialName(UnkID) = %q", SpecialName(UnkID))
	}
	if SpecialName(-1) != "" {
		t.Fatal("SpecialName(-1) should be empty")
	}
}

func TestSmallVocabPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tiny vocab")
		}
	}()
	New(10)
}

func TestEmptyText(t *testing.T) {
	tk := New(4096)
	if got := tk.Encode(""); len(got) != 0 {
		t.Fatalf("empty text should produce no tokens, got %v", got)
	}
	if got := tk.Decode(nil); got != "" {
		t.Fatalf("decoding nothing should be empty, got %q", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	tk := New(4096)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				ids := tk.Encode("concurrent stress test words alpha beta gamma")
				_ = tk.Decode(ids)
				_ = w
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}

func TestVocabSaveLoad(t *testing.T) {
	a := New(65536)
	text := "the archive keeps railway records"
	ids := a.Encode(text)
	var buf strings.Builder
	if err := a.SaveVocab(&buf); err != nil {
		t.Fatal(err)
	}
	// A fresh tokenizer that never Encoded the text decodes it correctly
	// after loading the vocab.
	b := New(65536)
	if err := b.LoadVocab(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if got := b.Decode(ids); got != text {
		t.Fatalf("decoded %q, want %q", got, text)
	}
}

func TestVocabLoadSkipsBadEntries(t *testing.T) {
	tk := New(WordBase + 16)
	payload := `{"1": "special-range", "99999999": "out-of-range", "` +
		// a valid in-range id
		`` + "262" + `": ""}`
	if err := tk.LoadVocab(strings.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	// Special-range entry ignored: id 1 still decodes as <unk>.
	if got := tk.Decode([]int{1}); got != "<unk>" {
		t.Fatalf("special id decoded as %q", got)
	}
}

func TestVocabLoadBadJSON(t *testing.T) {
	tk := New(4096)
	if err := tk.LoadVocab(strings.NewReader("{broken")); err == nil {
		t.Fatal("bad JSON should fail")
	}
}

func TestVocabFirstObservationWins(t *testing.T) {
	tk := New(65536)
	ids := tk.Encode("harbor")
	var buf strings.Builder
	if err := tk.SaveVocab(&buf); err != nil {
		t.Fatal(err)
	}
	// Craft a vocab mapping the same id to another word; load must not
	// override the learned one.
	other := strings.Replace(buf.String(), "harbor", "castle", 1)
	if err := tk.LoadVocab(strings.NewReader(other)); err != nil {
		t.Fatal(err)
	}
	if got := tk.Decode(ids); got != "harbor" {
		t.Fatalf("decode = %q, want harbor", got)
	}
}

func BenchmarkEncode(b *testing.B) {
	tk := New(65536)
	text := strings.Repeat("the quick brown fox jumps over the lazy dog. ", 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Encode(text)
	}
}
