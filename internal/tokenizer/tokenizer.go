// Package tokenizer implements a deterministic word-level tokenizer with
// byte fallback, mirroring the role SentencePiece plays for Llama-family
// models in the paper's prototype.
//
// Design: the token id space is laid out as
//
//	[0, NumSpecial)            special tokens (<pad>, <unk>, <s>, </s>, chat markers)
//	[NumSpecial, NumSpecial+256)  byte-fallback tokens, one per byte value
//	[NumSpecial+256, VocabSize)   word tokens, assigned by a deterministic hash
//
// Word tokens are assigned by hashing the word into the word-id range.
// Collisions are allowed (two words may share an id, exactly like a real
// sub-word vocabulary maps many strings onto shared pieces); what matters
// for the reproduction is that tokenization is deterministic, reversible
// enough for round-trip tests via an id->string table populated on first
// use, and that identical text always yields identical token sequences —
// the property Prompt Cache depends on to reuse module states.
package tokenizer

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"unicode"
)

// Special token ids. These occupy the bottom of the id space.
const (
	PadID       = iota // <pad>
	UnkID              // <unk> — also used as the parameter buffer token (§3.3)
	BosID              // <s>
	EosID              // </s>
	InstOpenID         // [INST]
	InstCloseID        // [/INST]
	SysOpenID          // <<SYS>>
	SysCloseID         // <</SYS>>
	NumSpecial
)

// specialNames maps special ids to their display forms.
var specialNames = [NumSpecial]string{
	"<pad>", "<unk>", "<s>", "</s>", "[INST]", "[/INST]", "<<SYS>>", "<</SYS>>",
}

// ByteBase is the first byte-fallback token id.
const ByteBase = NumSpecial

// WordBase is the first word-token id.
const WordBase = ByteBase + 256

// Tokenizer converts text to token ids and back. It is safe for
// concurrent use.
type Tokenizer struct {
	vocabSize int

	mu    sync.RWMutex
	names map[int]string // word id -> first word seen with that id
}

// New returns a tokenizer with the given vocabulary size. vocabSize must
// leave room for specials, bytes and at least one word token.
func New(vocabSize int) *Tokenizer {
	if vocabSize < WordBase+1 {
		panic(fmt.Sprintf("tokenizer: vocab size %d too small (min %d)", vocabSize, WordBase+1))
	}
	return &Tokenizer{vocabSize: vocabSize, names: make(map[int]string)}
}

// VocabSize returns the total number of token ids.
func (t *Tokenizer) VocabSize() int { return t.vocabSize }

// wordRange returns the number of word-token ids.
func (t *Tokenizer) wordRange() int { return t.vocabSize - WordBase }

// hashWord maps a word into [WordBase, vocabSize) deterministically.
func (t *Tokenizer) hashWord(w string) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(w); i++ {
		h ^= uint64(w[i])
		h *= prime
	}
	return WordBase + int(h%uint64(t.wordRange()))
}

// isWordRune reports whether r belongs in a word token.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

// Encode tokenizes text. Words (letter/digit/underscore runs, lowercased)
// become word tokens; every other non-space rune is emitted as its UTF-8
// bytes via byte-fallback tokens. Whitespace separates tokens and is not
// itself encoded, matching the paper's observation that whitespace does
// not alter the meaning of precomputed text (§3.3).
func (t *Tokenizer) Encode(text string) []int {
	var ids []int
	var word strings.Builder
	flush := func() {
		if word.Len() == 0 {
			return
		}
		w := strings.ToLower(word.String())
		id := t.hashWord(w)
		t.remember(id, w)
		ids = append(ids, id)
		word.Reset()
	}
	for _, r := range text {
		switch {
		case isWordRune(r):
			word.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			var buf [4]byte
			n := copy(buf[:], string(r))
			for _, b := range buf[:n] {
				ids = append(ids, ByteBase+int(b))
			}
		}
	}
	flush()
	return ids
}

func (t *Tokenizer) remember(id int, w string) {
	t.mu.RLock()
	_, ok := t.names[id]
	t.mu.RUnlock()
	if ok {
		return
	}
	t.mu.Lock()
	if _, ok := t.names[id]; !ok {
		t.names[id] = w
	}
	t.mu.Unlock()
}

// Decode renders token ids back to a human-readable string. Word tokens
// decode to the first word observed with that id (or "⟨id⟩" if the id was
// never produced by this tokenizer); byte tokens decode to their byte.
// Words are joined with single spaces; byte tokens attach to the
// preceding token without a space, mirroring typical detokenizers.
func (t *Tokenizer) Decode(ids []int) string {
	var sb strings.Builder
	needSpace := false
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, id := range ids {
		switch {
		case id >= 0 && id < NumSpecial:
			if needSpace {
				sb.WriteByte(' ')
			}
			sb.WriteString(specialNames[id])
			needSpace = true
		case id >= ByteBase && id < WordBase:
			b := byte(id - ByteBase)
			sb.WriteByte(b)
			// A complete ASCII byte (e.g. punctuation) permits a space
			// before the following word; UTF-8 lead/continuation bytes
			// must stay glued to their rune.
			needSpace = b < 0x80
		case id >= WordBase && id < t.vocabSize:
			if needSpace {
				sb.WriteByte(' ')
			}
			if w, ok := t.names[id]; ok {
				sb.WriteString(w)
			} else {
				// An id this tokenizer never produced (e.g. sampled by a
				// model): render a deterministic pronounceable
				// pseudo-word so generations read as text.
				sb.WriteString(pseudoWord(id))
			}
			needSpace = true
		default:
			if needSpace {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "⟨bad:%d⟩", id)
			needSpace = true
		}
	}
	return sb.String()
}

// SaveVocab writes the learned id→word table as JSON, so decodes stay
// human-readable across processes (e.g. a server restarted from a schema
// snapshot has never Encoded the schema text).
func (t *Tokenizer) SaveVocab(w io.Writer) error {
	t.mu.RLock()
	snapshot := make(map[int]string, len(t.names))
	for id, word := range t.names {
		snapshot[id] = word
	}
	t.mu.RUnlock()
	return json.NewEncoder(w).Encode(snapshot)
}

// LoadVocab merges a previously saved id→word table. Entries outside the
// word-id range or conflicting with already-learned words are skipped
// (first observation wins, matching Encode's behaviour).
func (t *Tokenizer) LoadVocab(r io.Reader) error {
	var snapshot map[int]string
	if err := json.NewDecoder(r).Decode(&snapshot); err != nil {
		return fmt.Errorf("tokenizer: loading vocab: %w", err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, word := range snapshot {
		if id < WordBase || id >= t.vocabSize || word == "" {
			continue
		}
		if _, taken := t.names[id]; !taken {
			t.names[id] = word
		}
	}
	return nil
}

// pseudoWord maps a token id to a stable pronounceable string built from
// alternating consonant-vowel syllables.
func pseudoWord(id int) string {
	const cons = "bdfgklmnprstvz"
	const vows = "aeiou"
	n := uint64(id)
	var sb strings.Builder
	syllables := 2 + int(n%3)
	for i := 0; i < syllables; i++ {
		sb.WriteByte(cons[n%uint64(len(cons))])
		n /= uint64(len(cons))
		sb.WriteByte(vows[n%uint64(len(vows))])
		n /= uint64(len(vows))
	}
	return sb.String()
}

// IsSpecial reports whether id is a special token.
func IsSpecial(id int) bool { return id >= 0 && id < NumSpecial }

// SpecialName returns the display form of a special token id.
func SpecialName(id int) string {
	if !IsSpecial(id) {
		return ""
	}
	return specialNames[id]
}

// UnkRun returns n copies of the <unk> token, the parameter placeholder
// sequence used when encoding parameterized prompt modules (§3.3).
func UnkRun(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = UnkID
	}
	return ids
}
