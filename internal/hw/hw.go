// Package hw provides analytic hardware and model profiles used to
// regenerate the paper's latency tables and figures at the silicon scale
// the authors measured (Llama2-7B-class models on NVIDIA GPUs and x86
// CPUs), which this pure-Go environment cannot run directly.
//
// The model is first-order and matches the paper's own analysis (§2.2,
// §5.4): prefill cost is compute-bound with FLOPs ≈ 2·P·n + 4·L·n²·d
// (weights term + quadratic attention term), Prompt Cache's cost is a
// linear memory copy plus the compute for uncached tokens, and decode is
// memory-bandwidth-bound. Device efficiency factors and fixed software
// overheads are calibrated once against anchor numbers the paper reports
// (RTX 4090 + Llama2-7B @3K: 900 ms baseline vs 90 ms cached, 32 ms/token
// decode; Fig. 6 CPU: 75,976 ms vs 861 ms) and then held fixed for every
// experiment. EXPERIMENTS.md records paper-vs-model deltas.
package hw

import (
	"fmt"
	"time"

	"repro/internal/memory"
)

// DeviceClass distinguishes GPU from CPU execution.
type DeviceClass int

const (
	// GPU executes fp16 with HBM-resident weights.
	GPU DeviceClass = iota
	// CPU executes from host DRAM.
	CPU
)

func (c DeviceClass) String() string {
	if c == CPU {
		return "CPU"
	}
	return "GPU"
}

// Device is an analytic profile of one evaluation machine (§5.1).
type Device struct {
	Name  string
	Class DeviceClass

	// PeakFLOPs is the marketing peak (fp16 tensor for GPUs, fp32 SIMD
	// for CPUs); Efficiency is the calibrated fraction achieved by the
	// HuggingFace-stack prefill the paper measures.
	PeakFLOPs  float64
	Efficiency float64

	// MemBW is device memory bandwidth in bytes/s (decode is bound by
	// streaming the weights); MemEff its achieved fraction.
	MemBW  float64
	MemEff float64

	// Overhead is the fixed per-inference software cost (tokenization,
	// Python dispatch, kernel launch trains).
	Overhead time.Duration

	// Upload is the link modules travel over when stored in host DRAM:
	// host-to-device for GPUs, host-to-host for CPUs. Local is the link
	// when modules are already resident (device-to-device for GPUs; for
	// CPUs Local == Upload since there is only one memory).
	Upload memory.Link
	Local  memory.Link

	// HBMCapacity bounds module storage in local memory (0 = unbounded).
	HBMCapacity int64
}

// EffFLOPs returns the achieved FLOP rate.
func (d *Device) EffFLOPs() float64 { return d.PeakFLOPs * d.Efficiency }

// EffMemBW returns the achieved memory bandwidth.
func (d *Device) EffMemBW() float64 { return d.MemBW * d.MemEff }

// Evaluation devices (§5.1). Efficiency/overhead values are calibration
// constants — see the package comment.
func RTX4090() *Device {
	return &Device{
		Name: "NVIDIA RTX 4090", Class: GPU,
		PeakFLOPs: 165e12, Efficiency: 0.34,
		MemBW: 1008e9, MemEff: 0.50,
		Overhead: 45 * time.Millisecond,
		// Pinned-PCIe anchor scaled to the unpinned, per-module pageable
		// copies the serving path actually performs (~6 GB/s end to end).
		Upload:      memory.ScaledLink(memory.HostToDevice(), 0.40),
		Local:       memory.DeviceToDevice(),
		HBMCapacity: 24 << 30,
	}
}

// A40 returns the NCSA Delta A40 node profile.
func A40() *Device {
	return &Device{
		Name: "NVIDIA A40", Class: GPU,
		PeakFLOPs: 150e12, Efficiency: 0.20,
		MemBW: 696e9, MemEff: 0.50,
		Overhead:    50 * time.Millisecond,
		Upload:      memory.ScaledLink(memory.HostToDevice(), 0.35),
		Local:       memory.ScaledLink(memory.DeviceToDevice(), 0.70),
		HBMCapacity: 48 << 30,
	}
}

// A100 returns the NCSA Delta A100 node profile.
func A100() *Device {
	return &Device{
		Name: "NVIDIA A100", Class: GPU,
		PeakFLOPs: 312e12, Efficiency: 0.22,
		MemBW: 1555e9, MemEff: 0.55,
		Overhead:    45 * time.Millisecond,
		Upload:      memory.ScaledLink(memory.HostToDevice(), 0.45),
		Local:       memory.ScaledLink(memory.DeviceToDevice(), 1.50),
		HBMCapacity: 40 << 30,
	}
}

// IntelI9 returns the i9-13900K + DDR5-5600 profile.
func IntelI9() *Device {
	return &Device{
		Name: "Intel i9-13900K", Class: CPU,
		PeakFLOPs: 1.8e12, Efficiency: 0.30,
		MemBW: 89.6e9, MemEff: 0.60,
		Overhead: 350 * time.Millisecond,
		Upload:   memory.HostToHost(),
		Local:    memory.HostToHost(),
	}
}

// AMDRyzen9 returns the Ryzen 9 7950X + DDR4-3600 profile. The paper
// attributes its much smaller Prompt Cache gains (20× vs Intel's 70×,
// §5.2.2) to memory bandwidth; reproducing that split requires the AMD
// box's *effective* attention-state copy rate to sit near 0.6 GB/s — far
// below the DDR4 pin rate, i.e. pageable, NUMA-unfriendly single-thread
// copies — so that the linear copy term dominates its cached TTFT. We
// adopt that as a calibration constant and record the reasoning here and
// in EXPERIMENTS.md.
func AMDRyzen9() *Device {
	return &Device{
		Name: "AMD Ryzen 9 7950X", Class: CPU,
		PeakFLOPs: 2.0e12, Efficiency: 0.25,
		MemBW: 57.6e9, MemEff: 0.60,
		Overhead: 400 * time.Millisecond,
		Upload:   memory.ScaledLink(memory.HostToHost(), 0.03),
		Local:    memory.ScaledLink(memory.HostToHost(), 0.03),
	}
}

// AllGPUs returns the GPU fleet of Fig. 3.
func AllGPUs() []*Device { return []*Device{RTX4090(), A40(), A100()} }

// AllCPUs returns the CPU fleet of Fig. 4.
func AllCPUs() []*Device { return []*Device{IntelI9(), AMDRyzen9()} }

// Model is an analytic profile of one published LLM.
type Model struct {
	Name   string
	Params float64 // total parameters
	Layers int
	Dim    int // hidden dimension
	KVDim  int // key/value width per layer (== Dim for MHA accounting)
	Vocab  int
}

// Published model profiles. KVDim follows the paper's Table 2 accounting
// (MHA-equivalent), which reproduces its MB/token column exactly.
func BERTBase() Model {
	return Model{Name: "BERT", Params: 0.11e9, Layers: 12, Dim: 768, KVDim: 768, Vocab: 30522}
}

// Falcon1B profiles tiiuae/falcon-rw-1b.
func Falcon1B() Model {
	return Model{Name: "Falcon 1B", Params: 1.3e9, Layers: 24, Dim: 2048, KVDim: 2048, Vocab: 50304}
}

// Llama7B profiles Llama2-7B.
func Llama7B() Model {
	return Model{Name: "Llama 7B", Params: 6.74e9, Layers: 32, Dim: 4096, KVDim: 4096, Vocab: 32000}
}

// CodeLlama7B profiles CodeLlama-7B (same shape as Llama2-7B, 16K vocab
// difference immaterial at this fidelity).
func CodeLlama7B() Model {
	m := Llama7B()
	m.Name = "CodeLlama 7B"
	return m
}

// Llama13B profiles Llama2-13B.
func Llama13B() Model {
	return Model{Name: "Llama 13B", Params: 13.0e9, Layers: 40, Dim: 5120, KVDim: 5120, Vocab: 32000}
}

// MPT7B profiles mosaicml/mpt-7b.
func MPT7B() Model {
	return Model{Name: "MPT 7B", Params: 6.7e9, Layers: 32, Dim: 4096, KVDim: 4096, Vocab: 50432}
}

// Falcon7B profiles tiiuae/falcon-7b.
func Falcon7B() Model {
	return Model{Name: "Falcon 7B", Params: 7.2e9, Layers: 32, Dim: 4544, KVDim: 4544, Vocab: 65024}
}

// MPT30B profiles mosaicml/mpt-30b.
func MPT30B() Model {
	return Model{Name: "MPT 30B", Params: 30e9, Layers: 48, Dim: 7168, KVDim: 7168, Vocab: 50432}
}

// Falcon40B profiles tiiuae/falcon-40b.
func Falcon40B() Model {
	return Model{Name: "Falcon 40B", Params: 41e9, Layers: 60, Dim: 8192, KVDim: 8192, Vocab: 65024}
}

// Llama70B profiles Llama2-70B (MHA-equivalent KV accounting, per Table 2).
func Llama70B() Model {
	return Model{Name: "Llama 70B", Params: 69e9, Layers: 80, Dim: 8192, KVDim: 8192, Vocab: 32000}
}

// Falcon180B profiles tiiuae/falcon-180B.
func Falcon180B() Model {
	return Model{Name: "Falcon 180B", Params: 180e9, Layers: 80, Dim: 14848, KVDim: 14848, Vocab: 65024}
}

// Table2Models returns the eight models of Table 2 in paper order.
func Table2Models() []Model {
	return []Model{
		BERTBase(), Falcon1B(), Llama7B(), Llama13B(),
		MPT30B(), Falcon40B(), Llama70B(), Falcon180B(),
	}
}

// BytesPerToken returns the KV-cache bytes for one cached token at fp16:
// 2 scalars (K and V) × Layers × KVDim × 2 bytes. This reproduces
// Table 2's MB/token column.
func (m Model) BytesPerToken() int64 {
	return 2 * int64(m.Layers) * int64(m.KVDim) * 2
}

// MBPerToken returns BytesPerToken in MiB, Table 2's unit.
func (m Model) MBPerToken() float64 {
	return float64(m.BytesPerToken()) / (1 << 20)
}

// WeightBytes returns the fp16 weight footprint.
func (m Model) WeightBytes() int64 { return int64(2 * m.Params) }

// PrefillFLOPs returns the forward-pass cost of a full n-token prefill:
// the 2·P·n weights term plus the paper's 4·n²·d quadratic attention term
// per layer (§2.2).
func (m Model) PrefillFLOPs(n int) float64 {
	return 2*m.Params*float64(n) + 4*float64(m.Layers)*float64(n)*float64(n)*float64(m.Dim)
}

// SuffixFLOPs returns the cost of prefilling just mNew new tokens whose
// attention spans nTotal total positions (cached prefix + themselves):
// 2·P·m weights term plus 4·L·m·n·d cross attention.
func (m Model) SuffixFLOPs(mNew, nTotal int) float64 {
	return 2*m.Params*float64(mNew) +
		4*float64(m.Layers)*float64(mNew)*float64(nTotal)*float64(m.Dim)
}

// DecodeFLOPs returns the per-token decode cost at context length n.
func (m Model) DecodeFLOPs(n int) float64 {
	return 2*m.Params + 4*float64(m.Layers)*float64(n)*float64(m.Dim)
}

// ModuleSource says where prompt modules are stored for a cached
// inference (§4.1/§5.2: the paper's two memory setups).
type ModuleSource int

const (
	// FromLocal serves modules already resident in the compute device's
	// memory (GPU: HBM; CPU: DRAM).
	FromLocal ModuleSource = iota
	// FromHost serves modules from host DRAM, paying the upload link
	// (GPU: PCIe host-to-device; CPU: identical to FromLocal).
	FromHost
)

func (s ModuleSource) String() string {
	if s == FromHost {
		return "CPU memory"
	}
	return "GPU memory"
}

// BaselineTTFT returns the modelled time-to-first-token of a full
// KV-cache prefill of n tokens (the paper's baseline).
func BaselineTTFT(d *Device, m Model, n int) time.Duration {
	compute := m.PrefillFLOPs(n) / d.EffFLOPs()
	return d.Overhead + time.Duration(compute*float64(time.Second))
}

// CachedTTFT returns the modelled TTFT under Prompt Cache: copy the
// cached module states (linear), then compute attention only for uncached
// tokens (§3.4). nCached+nUncached is the full prompt length.
func CachedTTFT(d *Device, m Model, nCached, nUncached int, src ModuleSource) time.Duration {
	link := d.Local
	if src == FromHost {
		link = d.Upload
	}
	copyT := link.TransferTime(int64(nCached) * m.BytesPerToken())
	t := d.Overhead + copyT
	if nUncached > 0 {
		compute := m.SuffixFLOPs(nUncached, nCached+nUncached) / d.EffFLOPs()
		t += time.Duration(compute * float64(time.Second))
	}
	return t
}

// DecodeTime returns the modelled per-token decode latency (TTST in
// §5.4), the max of the compute and weight-streaming bounds.
func DecodeTime(d *Device, m Model, n int) time.Duration {
	compute := m.DecodeFLOPs(n) / d.EffFLOPs()
	stream := float64(m.WeightBytes()) / d.EffMemBW()
	t := compute
	if stream > t {
		t = stream
	}
	// Decode steps carry a small fixed cost (single kernel train /
	// Python step), well under the prefill overhead.
	return time.Duration(t*float64(time.Second)) + d.Overhead/8
}

// Speedup returns baseline/cached as a factor.
func Speedup(baseline, cached time.Duration) float64 {
	if cached <= 0 {
		return 0
	}
	return float64(baseline) / float64(cached)
}

// String renders a device name with class for table headers.
func (d *Device) String() string {
	return fmt.Sprintf("%s (%s)", d.Name, d.Class)
}
