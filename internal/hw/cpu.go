package hw

import (
	"fmt"
	"runtime"
)

// CPUInfo describes the host CPU as far as a pure-Go, cgo-free build can
// see it: architecture, core counts, and the baseline vector ISA the Go
// compiler targets on that architecture. It feeds backend auto-selection
// (internal/tensor) and the pcserve startup/stats reporting, so an
// operator can tell which kernels a deployment actually ran on.
type CPUInfo struct {
	// Arch is runtime.GOARCH ("amd64", "arm64", ...).
	Arch string
	// Cores is the number of logical CPUs usable by the process.
	Cores int
	// MaxProcs is the GOMAXPROCS ceiling on simultaneously executing
	// goroutines — the fan-out the parallel backend can actually use.
	MaxProcs int
	// Vector names the baseline vector ISA the compiler may assume for
	// Arch ("sse2" on amd64, "neon" on arm64, ...). Without cgo or
	// per-model cpuid this is the guaranteed floor, not the best the
	// silicon offers; it is reported so regressions across machines can
	// be attributed.
	Vector string
}

// DetectCPU reports the host CPU as seen by the Go runtime. It is cheap
// enough to call per request, but callers normally capture it once at
// startup next to the backend choice.
func DetectCPU() CPUInfo {
	return CPUInfo{
		Arch:     runtime.GOARCH,
		Cores:    runtime.NumCPU(),
		MaxProcs: runtime.GOMAXPROCS(0),
		Vector:   vectorBaseline(runtime.GOARCH),
	}
}

// vectorBaseline maps an architecture to the vector ISA the Go compiler
// is guaranteed to be able to emit for it.
func vectorBaseline(arch string) string {
	switch arch {
	case "amd64":
		return "sse2"
	case "arm64":
		return "neon"
	case "ppc64", "ppc64le":
		return "vsx"
	case "s390x":
		return "vector"
	}
	return "scalar"
}

// String renders the info on one line, e.g. "amd64 (sse2), 8 cores, GOMAXPROCS=8".
func (c CPUInfo) String() string {
	return fmt.Sprintf("%s (%s), %d cores, GOMAXPROCS=%d", c.Arch, c.Vector, c.Cores, c.MaxProcs)
}
