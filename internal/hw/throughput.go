package hw

import "time"

// ThroughputPoint models §3.4/§5.4's batch-size argument: KV memory per
// request bounds the working batch, and sharing prompt-module states
// across a batch shrinks per-request memory, admitting a larger batch and
// hence higher decode throughput.
type ThroughputPoint struct {
	ShareFraction float64 // fraction of each prompt's tokens shared batch-wide
	BatchSize     int
	TokensPerSec  float64
}

// ThroughputModel computes decode throughput for a batch of identical
// requests with promptTokens context each, of which shareFraction is a
// module shared by the whole batch (stored once). hbmBudget is the memory
// available for KV states after weights.
//
// Batch decode time per step is modelled as the weight-stream time (one
// pass serves the whole batch) plus per-request KV reads.
func ThroughputModel(d *Device, m Model, promptTokens int, shareFraction float64, hbmBudget int64) ThroughputPoint {
	perReq := float64(promptTokens) * (1 - shareFraction) * float64(m.BytesPerToken())
	shared := float64(promptTokens) * shareFraction * float64(m.BytesPerToken())
	if perReq <= 0 {
		perReq = float64(m.BytesPerToken()) // at least the generated token
	}
	batch := int((float64(hbmBudget) - shared) / perReq)
	if batch < 1 {
		batch = 1
	}
	// Per decode step: stream weights once, read each request's KV.
	weightT := float64(m.WeightBytes()) / d.EffMemBW()
	kvT := (shared + float64(batch)*perReq) / d.EffMemBW()
	stepT := weightT + kvT + (time.Duration(d.Overhead) / 8).Seconds()
	return ThroughputPoint{
		ShareFraction: shareFraction,
		BatchSize:     batch,
		TokensPerSec:  float64(batch) / stepT,
	}
}
