package hw

import (
	"math"
	"testing"
	"time"
)

// TestTable2MemoryPerToken pins the Table 2 MB/token column. The paper's
// published values are matched to within rounding.
func TestTable2MemoryPerToken(t *testing.T) {
	want := map[string]float64{
		"BERT":        0.03,
		"Falcon 1B":   0.18,
		"Llama 7B":    0.50,
		"Llama 13B":   0.78,
		"MPT 30B":     1.31,
		"Falcon 40B":  1.87,
		"Llama 70B":   2.50,
		"Falcon 180B": 4.53,
	}
	for _, m := range Table2Models() {
		w, ok := want[m.Name]
		if !ok {
			t.Fatalf("unexpected model %q", m.Name)
		}
		got := m.MBPerToken()
		// Within 10% or the paper's own two-decimal rounding grain.
		if math.Abs(got-w)/w > 0.10 && math.Abs(got-w) > 0.006 {
			t.Errorf("%s: %.3f MB/token, paper %.2f", m.Name, got, w)
		}
	}
}

// TestAnchor4090Llama pins the §5.4 end-to-end anchor: Llama2-7B at 3K
// context on the RTX 4090 has ~900 ms baseline TTFT and ~32 ms/token
// decode; cached TTFT drops to the ~90 ms scale.
func TestAnchor4090Llama(t *testing.T) {
	d := RTX4090()
	m := Llama7B()
	base := BaselineTTFT(d, m, 3000).Seconds() * 1e3
	if base < 600 || base > 1200 {
		t.Errorf("baseline TTFT @3K = %.0f ms, paper ~900 ms", base)
	}
	dec := DecodeTime(d, m, 3000).Seconds() * 1e3
	if dec < 22 || dec > 45 {
		t.Errorf("decode = %.1f ms/token, paper ~32 ms", dec)
	}
	cached := CachedTTFT(d, m, 3000, 30, FromLocal).Seconds() * 1e3
	if cached < 40 || cached > 140 {
		t.Errorf("cached TTFT @3K = %.0f ms, paper ~90 ms", cached)
	}
}

// TestGPUSpeedupBands checks Fig-3's headline bands on a representative
// 5K-token LongBench-scale prompt (~300 uncached tokens): 5–10× with
// modules in GPU memory, 1.5–3× from CPU memory (§5.2.1, allowing the
// "up to" ends a little headroom).
func TestGPUSpeedupBands(t *testing.T) {
	m := Llama7B()
	for _, d := range AllGPUs() {
		base := BaselineTTFT(d, m, 5300)
		local := CachedTTFT(d, m, 5000, 300, FromLocal)
		host := CachedTTFT(d, m, 5000, 300, FromHost)
		sLocal := Speedup(base, local)
		sHost := Speedup(base, host)
		t.Logf("%s: base=%v local=%v (%.1fx) host=%v (%.1fx)", d.Name, base, local, sLocal, host, sHost)
		if sLocal < 4 || sLocal > 22 {
			t.Errorf("%s: GPU-memory speedup %.1fx outside 5-10x band (±)", d.Name, sLocal)
		}
		if sHost < 1.3 || sHost > 5.5 {
			t.Errorf("%s: CPU-memory speedup %.1fx outside 1.5-3x band (±)", d.Name, sHost)
		}
		if local >= host {
			t.Errorf("%s: local cache should beat host cache", d.Name)
		}
	}
}

// TestCPUSpeedupBands checks Fig-4's headline: up to ~70× on the Intel
// DDR5 box and ~20× on the AMD DDR4 box for a small-suffix dataset.
func TestCPUSpeedupBands(t *testing.T) {
	m := Llama7B()
	intel, amd := IntelI9(), AMDRyzen9()
	base := BaselineTTFT(intel, m, 5060)
	cached := CachedTTFT(intel, m, 5000, 60, FromLocal)
	sIntel := Speedup(base, cached)
	t.Logf("Intel: base=%v cached=%v (%.0fx)", base, cached, sIntel)
	if sIntel < 45 || sIntel > 95 {
		t.Errorf("Intel speedup %.0fx, paper up to ~70x", sIntel)
	}
	baseA := BaselineTTFT(amd, m, 5060)
	cachedA := CachedTTFT(amd, m, 5000, 60, FromLocal)
	sAMD := Speedup(baseA, cachedA)
	t.Logf("AMD: base=%v cached=%v (%.0fx)", baseA, cachedA, sAMD)
	if sAMD < 12 || sAMD > 32 {
		t.Errorf("AMD speedup %.0fx, paper up to ~20x", sAMD)
	}
	if sAMD >= sIntel {
		t.Error("Intel must benefit more than AMD (§5.2.2)")
	}
}

// TestQuadraticVsLinear is Fig-5's claim: baseline TTFT grows
// quadratically with sequence length while Prompt Cache's cost grows
// linearly, so the advantage widens with n.
func TestQuadraticVsLinear(t *testing.T) {
	m := Llama7B()
	for _, d := range []*Device{RTX4090(), IntelI9()} {
		adv2k := Speedup(BaselineTTFT(d, m, 2048), CachedTTFT(d, m, 2048, 0, FromHost))
		adv8k := Speedup(BaselineTTFT(d, m, 8192), CachedTTFT(d, m, 8192, 0, FromHost))
		if adv8k <= adv2k {
			t.Errorf("%s: advantage must widen with n (2K: %.1fx, 8K: %.1fx)", d.Name, adv2k, adv8k)
		}
		// The copy cost itself is linear: doubling n roughly doubles it.
		c4 := CachedTTFT(d, m, 4096, 0, FromHost) - d.Overhead
		c8 := CachedTTFT(d, m, 8192, 0, FromHost) - d.Overhead
		ratio := float64(c8) / float64(c4)
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("%s: copy cost ratio %.2f, want ~2 (linear)", d.Name, ratio)
		}
		// Baseline is superlinear.
		b4 := BaselineTTFT(d, m, 4096) - d.Overhead
		b8 := BaselineTTFT(d, m, 8192) - d.Overhead
		if float64(b8)/float64(b4) <= 2.0 {
			t.Errorf("%s: baseline should grow superlinearly", d.Name)
		}
	}
}

// TestModelSizeEffect is §5.4's second claim: moving 7B→13B at 3K tokens
// adds a lot of baseline latency but little cached latency (paper: +220 ms
// vs +30 ms). Note the paper's +220 ms is not consistent with its own
// 900 ms@3K 7B anchor under any fixed MFU (the 13B prefill is ~1.9× the
// FLOPs), so we assert the qualitative claim — the baseline delta is large
// and the cached delta is several times smaller — with a wide band;
// EXPERIMENTS.md records the deviation.
func TestModelSizeEffect(t *testing.T) {
	d := RTX4090()
	dBase := BaselineTTFT(d, Llama13B(), 3000) - BaselineTTFT(d, Llama7B(), 3000)
	dCached := CachedTTFT(d, Llama13B(), 3000, 0, FromHost) - CachedTTFT(d, Llama7B(), 3000, 0, FromHost)
	t.Logf("7B->13B @3K: baseline +%v, cached +%v", dBase, dCached)
	if dBase < 150*time.Millisecond || dBase > 900*time.Millisecond {
		t.Errorf("baseline delta %v, paper ~+220 ms", dBase)
	}
	if dCached > dBase/3 {
		t.Errorf("cached delta %v should be far below baseline delta %v", dCached, dBase)
	}
}

// TestFig6CodeGenScale: the code-generation example (Fig. 6) reports GPU
// 924→93 ms and CPU 75,976→861 ms with CodeLlama-7B. Matching the CPU
// numbers implies roughly a 3K-token prompt with a small uncached suffix;
// verify our model lands on those scales.
func TestFig6CodeGenScale(t *testing.T) {
	const cachedTok, newTok = 3000, 40
	g := RTX4090()
	m := CodeLlama7B()
	gb := BaselineTTFT(g, m, cachedTok+newTok).Seconds() * 1e3
	gc := CachedTTFT(g, m, cachedTok, newTok, FromLocal).Seconds() * 1e3
	t.Logf("fig6 GPU: base=%.0fms cached=%.0fms", gb, gc)
	if gb < 500 || gb > 1500 {
		t.Errorf("fig6 GPU baseline %.0f ms, paper 924 ms", gb)
	}
	if gc < 40 || gc > 180 {
		t.Errorf("fig6 GPU cached %.0f ms, paper 93 ms", gc)
	}
	c := IntelI9()
	cb := BaselineTTFT(c, m, cachedTok+newTok).Seconds() * 1e3
	cc := CachedTTFT(c, m, cachedTok, newTok, FromLocal).Seconds() * 1e3
	t.Logf("fig6 CPU: base=%.0fms cached=%.0fms", cb, cc)
	if cb < 40000 || cb > 120000 {
		t.Errorf("fig6 CPU baseline %.0f ms, paper 75,976 ms", cb)
	}
	if cc < 400 || cc > 3000 {
		t.Errorf("fig6 CPU cached %.0f ms, paper 861 ms", cc)
	}
}

func TestDecodeIsMemoryBoundOnGPU(t *testing.T) {
	d := RTX4090()
	m := Llama7B()
	// Weight streaming should dominate decode for a 7B model.
	stream := float64(m.WeightBytes()) / d.EffMemBW()
	compute := m.DecodeFLOPs(3000) / d.EffFLOPs()
	if stream <= compute {
		t.Fatalf("expected memory-bound decode (stream %.4fs vs compute %.4fs)", stream, compute)
	}
}

func TestSuffixFLOPsLessThanPrefill(t *testing.T) {
	m := Llama7B()
	if m.SuffixFLOPs(100, 5100) >= m.PrefillFLOPs(5100) {
		t.Fatal("suffix compute must be far below full prefill")
	}
	// Suffix of everything == full prefill's weights term + attention.
	full := m.PrefillFLOPs(5000)
	suffixAll := m.SuffixFLOPs(5000, 5000)
	if math.Abs(full-suffixAll)/full > 1e-9 {
		t.Fatalf("SuffixFLOPs(n,n) = %g, PrefillFLOPs(n) = %g", suffixAll, full)
	}
}

func TestSpeedupEdgeCases(t *testing.T) {
	if Speedup(time.Second, 0) != 0 {
		t.Fatal("zero cached should yield 0 sentinel")
	}
	if got := Speedup(2*time.Second, time.Second); got != 2 {
		t.Fatalf("Speedup = %v", got)
	}
}

func TestDeviceClassString(t *testing.T) {
	if GPU.String() != "GPU" || CPU.String() != "CPU" {
		t.Fatal("class strings")
	}
	if ModuleSource(FromHost).String() != "CPU memory" || FromLocal.String() != "GPU memory" {
		t.Fatal("source strings")
	}
}

// TestThroughputModelSharingHelps reproduces §3.4's worked example: with
// 2K-token prompts sharing a 1K-token module, the halved per-request
// footprint roughly doubles the admissible batch and lifts throughput.
func TestThroughputModelSharingHelps(t *testing.T) {
	d := A100()
	m := Llama7B()
	budget := int64(20) << 30 // HBM left after weights
	none := ThroughputModel(d, m, 2000, 0, budget)
	half := ThroughputModel(d, m, 2000, 0.5, budget)
	if half.BatchSize < int(1.8*float64(none.BatchSize)) {
		t.Fatalf("sharing 50%% should ~double batch: %d -> %d", none.BatchSize, half.BatchSize)
	}
	if half.TokensPerSec <= none.TokensPerSec {
		t.Fatalf("sharing should raise throughput: %.0f -> %.0f tok/s", none.TokensPerSec, half.TokensPerSec)
	}
	// Monotone in share fraction.
	prev := 0.0
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		p := ThroughputModel(d, m, 2000, f, budget)
		if p.TokensPerSec < prev {
			t.Fatalf("throughput fell at share=%.2f", f)
		}
		prev = p.TokensPerSec
	}
	// Degenerate budget still yields a sane batch of 1.
	tiny := ThroughputModel(d, m, 2000, 0, 1<<20)
	if tiny.BatchSize != 1 {
		t.Fatalf("tiny budget batch = %d", tiny.BatchSize)
	}
}

func TestAllDeviceListsPopulated(t *testing.T) {
	if len(AllGPUs()) != 3 || len(AllCPUs()) != 2 {
		t.Fatal("device fleets wrong size")
	}
	for _, d := range append(AllGPUs(), AllCPUs()...) {
		if d.EffFLOPs() <= 0 || d.EffMemBW() <= 0 {
			t.Fatalf("%s: non-positive rates", d.Name)
		}
		if d.Upload.BW <= 0 || d.Local.BW <= 0 {
			t.Fatalf("%s: non-positive link bandwidth", d.Name)
		}
	}
}
