package serving

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/promptcache"
)

// ReplayLoad is the bridge from the analytic trace machinery to a real
// server: it offers prompts to an in-process promptcache.Client on an
// open-loop arrival schedule (arrivals do not wait for completions — an
// overloaded server sees the full offered rate, exactly the regime
// admission control exists for) and reports tail latency and shedding.

// LoadOpts configures one ReplayLoad run.
type LoadOpts struct {
	// MaxTokens bounds each request's decode (default 4: enough that
	// TTFT and decode throughput are both exercised, short enough that
	// slots turn over quickly).
	MaxTokens int
	// SLO classifies every offered request (default interactive).
	SLO promptcache.SLOClass
	// QueueSampleEvery sets the admission queue-depth sampling period
	// (default 1ms). Sampling needs AdmissionEnabled on the client;
	// otherwise MaxQueueDepth stays 0.
	QueueSampleEvery time.Duration
}

// LoadStats is the measured outcome of one ReplayLoad run.
type LoadStats struct {
	// Offered = Completed + Shed + Failed, always — every request is
	// accounted exactly once.
	Offered   int
	Completed int
	// Shed counts admission rejections (errors.Is ErrOverloaded).
	Shed int
	// Failed counts any other error — zero in a healthy run.
	Failed int
	// TTFT percentiles over completed requests, measured from the
	// request's dispatch (its arrival offset) to its first sampled
	// token — queueing delay included, which is the point.
	P50TTFT, P95TTFT, P99TTFT time.Duration
	// TokensOut is the total decoded tokens; TokensPerSec divides it by
	// the wall-clock Duration of the whole replay.
	TokensOut    int
	TokensPerSec float64
	Duration     time.Duration
	// ShedRate = Shed / Offered.
	ShedRate float64
	// MaxQueueDepth is the deepest admission queue observed during the
	// run: the periodic sampler's maximum, folded with the depth each
	// shed's OverloadError reports (a shed only happens against a full
	// queue, so overloaded runs record the depth even when a busy CPU
	// starves the sampler).
	MaxQueueDepth int
}

// ReplayLoad offers prompts[i] at start+arrivals[i] and waits for every
// request to finish (admitted requests run to completion; shed ones
// return immediately). Arrivals must be non-decreasing — as produced by
// GenerateArrivals. The client should have admission enabled; without
// it an overloaded replay piles up unboundedly instead of shedding.
func ReplayLoad(ctx context.Context, client *promptcache.Client, prompts []string, arrivals []time.Duration, opts LoadOpts) (LoadStats, error) {
	if len(prompts) == 0 {
		return LoadStats{}, fmt.Errorf("serving: load replay needs prompts")
	}
	if len(prompts) != len(arrivals) {
		return LoadStats{}, fmt.Errorf("serving: %d prompts but %d arrivals", len(prompts), len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			return LoadStats{}, fmt.Errorf("serving: arrivals must be non-decreasing (offset %d)", i)
		}
	}
	maxTokens := opts.MaxTokens
	if maxTokens <= 0 {
		maxTokens = 4
	}
	sampleEvery := opts.QueueSampleEvery
	if sampleEvery <= 0 {
		sampleEvery = time.Millisecond
	}

	// Queue-depth sampler: the queue only exists while the run is
	// overloaded, so poll it for the run's duration and keep the max.
	var (
		samplerDone = make(chan struct{})
		samplerStop = make(chan struct{})
		maxQueue    int
	)
	go func() {
		defer close(samplerDone)
		ticker := time.NewTicker(sampleEvery)
		defer ticker.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-ticker.C:
				if d := client.AdmissionStats().QueueDepth; d > maxQueue {
					maxQueue = d
				}
			}
		}
	}()

	type outcome struct {
		ttft   time.Duration
		tokens int
		err    error
	}
	outcomes := make([]outcome, len(prompts))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range prompts {
		// Open loop: pace by the schedule, never by completions.
		if d := time.Until(start.Add(arrivals[i])); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dispatched := time.Now()
			var firstTok time.Time
			resp, err := client.Infer(ctx, promptcache.Request{
				Prompt:    prompts[i],
				MaxTokens: maxTokens,
				SLO:       opts.SLO,
				Stream: func(string) bool {
					if firstTok.IsZero() {
						firstTok = time.Now()
					}
					return true
				},
			})
			o := outcome{err: err}
			if err == nil {
				o.tokens = len(resp.Tokens)
				if firstTok.IsZero() {
					firstTok = time.Now() // no decode: count completion as first token
				}
				o.ttft = firstTok.Sub(dispatched)
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(samplerStop)
	<-samplerDone

	st := LoadStats{Offered: len(prompts), Duration: elapsed, MaxQueueDepth: maxQueue}
	ttfts := make([]time.Duration, 0, len(prompts))
	for _, o := range outcomes {
		switch {
		case o.err == nil:
			st.Completed++
			st.TokensOut += o.tokens
			ttfts = append(ttfts, o.ttft)
		case errors.Is(o.err, promptcache.ErrOverloaded):
			st.Shed++
			var oe *promptcache.OverloadError
			if errors.As(o.err, &oe) && oe.QueueDepth > st.MaxQueueDepth {
				st.MaxQueueDepth = oe.QueueDepth
			}
		default:
			st.Failed++
		}
	}
	st.ShedRate = float64(st.Shed) / float64(st.Offered)
	if elapsed > 0 {
		st.TokensPerSec = float64(st.TokensOut) / elapsed.Seconds()
	}
	if len(ttfts) > 0 {
		sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
		st.P50TTFT = ttfts[len(ttfts)/2]
		st.P95TTFT = ttfts[len(ttfts)*95/100]
		st.P99TTFT = ttfts[len(ttfts)*99/100]
	}
	return st, nil
}
