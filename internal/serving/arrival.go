package serving

import (
	"fmt"
	"math"
	"time"

	"repro/internal/rng"
)

// Arrival-time distributions for load replay. A trace on its own fixes
// *what* arrives; an arrival process fixes *when*. Attaching seeded
// arrival offsets to a trace turns the analytic replay machinery into a
// load harness: the same request stream can be offered gently (uniform),
// realistically (Poisson), or adversarially (bursty) and replayed
// against a real in-process server (see ReplayLoad).
const (
	ArrivalUniform = "uniform" // evenly spaced at exactly the offered rate
	ArrivalPoisson = "poisson" // exponential inter-arrivals (memoryless)
	ArrivalBursty  = "bursty"  // on/off modulated Poisson: bursts + lulls
)

// ArrivalDists lists the supported distribution names.
var ArrivalDists = []string{ArrivalUniform, ArrivalPoisson, ArrivalBursty}

// Bursty arrivals are a two-phase modulated Poisson process: "on" phases
// arrive at burstFactor× the offered rate, separated by "off" lulls with
// no arrivals. Phase durations are exponential and sized so the
// long-run mean rate still equals ratePerSec — the burst factor shifts
// variance, not load.
const (
	burstFactor   = 4.0 // on-phase rate multiplier
	burstMeanSize = 8.0 // mean arrivals per on-phase
)

// GenerateArrivals returns n monotonically non-decreasing arrival
// offsets (relative to replay start) drawn from the named distribution
// at a long-run mean of ratePerSec. The stream is fully determined by
// (dist, n, ratePerSec, seed).
func GenerateArrivals(dist string, n int, ratePerSec float64, seed uint64) ([]time.Duration, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serving: arrivals need n > 0 (got %d)", n)
	}
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("serving: arrivals need rate > 0 (got %g)", ratePerSec)
	}
	r := rng.New(seed)
	// Exponential with the given mean; 1-U keeps the argument in (0,1].
	exp := func(mean float64) float64 { return -math.Log(1-r.Float64()) * mean }
	out := make([]time.Duration, n)
	t := 0.0 // seconds since replay start
	switch dist {
	case ArrivalUniform:
		gap := 1 / ratePerSec
		for i := range out {
			out[i] = time.Duration(t * float64(time.Second))
			t += gap
		}
	case ArrivalPoisson:
		for i := range out {
			t += exp(1 / ratePerSec)
			out[i] = time.Duration(t * float64(time.Second))
		}
	case ArrivalBursty:
		// On-phase at burstFactor×rate for ~burstMeanSize arrivals, then
		// an off lull long enough that the cycle's mean rate is
		// ratePerSec: offDur = onDur × (burstFactor - 1).
		onRate := ratePerSec * burstFactor
		left := 0 // arrivals remaining in the current on-phase
		for i := range out {
			if left == 0 {
				burst := 1 + int(exp(burstMeanSize-1))
				onDur := float64(burst) / onRate
				t += exp(onDur * (burstFactor - 1))
				left = burst
			}
			t += exp(1 / onRate)
			left--
			out[i] = time.Duration(t * float64(time.Second))
		}
	default:
		return nil, fmt.Errorf("serving: unknown arrival distribution %q (want %v)", dist, ArrivalDists)
	}
	return out, nil
}

// AssignArrivals stamps a trace with the given offsets so the schedule
// persists through WriteTrace/ReadTrace alongside the requests.
func AssignArrivals(trace []Request, arrivals []time.Duration) error {
	if len(trace) != len(arrivals) {
		return fmt.Errorf("serving: %d requests but %d arrivals", len(trace), len(arrivals))
	}
	for i := range trace {
		trace[i].ArrivalMS = float64(arrivals[i]) / float64(time.Millisecond)
	}
	return nil
}
