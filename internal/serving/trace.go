package serving

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/evict"
	"repro/internal/hw"
	"repro/internal/rng"
)

// Request is one serving-trace record: the modules a prompt imports and
// its uncached suffix length. Traces can be recorded, persisted as JSONL
// and replayed, so policy comparisons run over identical streams and
// production-like traces can be studied offline.
type Request struct {
	Modules []string `json:"modules"`
	Suffix  int      `json:"suffix"`
	// SuffixToks, when present, is the suffix's actual token stream —
	// what MineTrace needs to discover undeclared shared prefixes.
	// Legacy traces without it replay normally but cannot be mined.
	SuffixToks []int `json:"suffix_toks,omitempty"`
	// ArrivalMS, when present, is the request's arrival offset in
	// milliseconds since replay start (see GenerateArrivals /
	// AssignArrivals). The analytic RunTrace ignores it; the real-server
	// load harness (ReplayLoad) paces dispatch by it. Legacy traces
	// without it replay back-to-back.
	ArrivalMS float64 `json:"arrival_ms,omitempty"`
}

// GenerateTrace materializes cfg's Zipf stream as an explicit trace.
func GenerateTrace(cfg Config) ([]Request, error) {
	if len(cfg.Modules) == 0 {
		return nil, fmt.Errorf("serving: modules required")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.ModulesPerRequest <= 0 {
		cfg.ModulesPerRequest = 2
	}
	if cfg.ModulesPerRequest > len(cfg.Modules) {
		cfg.ModulesPerRequest = len(cfg.Modules)
	}
	if cfg.SuffixTokens <= 0 {
		cfg.SuffixTokens = 120
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 1.0
	}
	r := rng.New(cfg.Seed)
	weights := make([]float64, len(cfg.Modules))
	var totalW float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
		totalW += weights[i]
	}
	pick := func() int {
		u := r.Float64() * totalW
		acc := 0.0
		for i, w := range weights {
			acc += w
			if u < acc {
				return i
			}
		}
		return len(weights) - 1
	}
	// With SharedPrefixes > 0, suffixes carry explicit token streams
	// drawn from a pool of undeclared shared prefixes — the traffic
	// shape module mining exists to exploit. Prefix popularity follows
	// the same Zipf skew as module popularity; the rest of each suffix
	// is unique filler, so only the pooled prefixes are minable.
	var prefixes [][]int
	prefixLen := cfg.SharedPrefixTokens
	if cfg.SharedPrefixes > 0 {
		if prefixLen <= 0 || prefixLen > cfg.SuffixTokens {
			prefixLen = cfg.SuffixTokens / 2
		}
		prefixes = make([][]int, cfg.SharedPrefixes)
		for i := range prefixes {
			p := make([]int, prefixLen)
			for j := range p {
				p[j] = 1 + int(r.Float64()*30000)
			}
			prefixes[i] = p
		}
	}
	pickPrefix := func() []int {
		u := r.Float64()
		var totalPW float64
		for i := range prefixes {
			totalPW += 1 / math.Pow(float64(i+1), cfg.ZipfS)
		}
		u *= totalPW
		acc := 0.0
		for i := range prefixes {
			acc += 1 / math.Pow(float64(i+1), cfg.ZipfS)
			if u < acc {
				return prefixes[i]
			}
		}
		return prefixes[len(prefixes)-1]
	}
	filler := 1 << 20 // unique-token counter, disjoint from prefix tokens

	trace := make([]Request, cfg.Requests)
	for q := range trace {
		chosen := map[int]bool{}
		for len(chosen) < cfg.ModulesPerRequest {
			chosen[pick()] = true
		}
		idxs := make([]int, 0, len(chosen))
		for i := range chosen {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		req := Request{Suffix: cfg.SuffixTokens}
		for _, i := range idxs {
			req.Modules = append(req.Modules, cfg.Modules[i].Name)
		}
		if prefixes != nil {
			req.SuffixToks = append([]int(nil), pickPrefix()...)
			for len(req.SuffixToks) < cfg.SuffixTokens {
				req.SuffixToks = append(req.SuffixToks, filler)
				filler++
			}
		}
		trace[q] = req
	}
	return trace, nil
}

// WriteTrace persists a trace as JSON lines.
func WriteTrace(w io.Writer, trace []Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, req := range trace {
		if err := enc.Encode(req); err != nil {
			return fmt.Errorf("serving: writing trace line %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace loads a JSONL trace.
func ReadTrace(r io.Reader) ([]Request, error) {
	var trace []Request
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if err == io.EOF {
				return trace, nil
			}
			return nil, fmt.Errorf("serving: reading trace line %d: %w", len(trace), err)
		}
		if len(req.Modules) == 0 {
			return nil, fmt.Errorf("serving: trace line %d has no modules", len(trace))
		}
		trace = append(trace, req)
	}
}

func evictDefault() evict.Policy { return evict.NewLRU() }

func baselineFor(cfg Config, totalTokens int) time.Duration {
	return hw.BaselineTTFT(cfg.Device, cfg.Model, totalTokens)
}

// RunTrace replays an explicit trace against cfg's device, model, tier
// and policy (cfg's stream-generation fields are ignored). Module names
// in the trace must exist in cfg.Modules.
func RunTrace(cfg Config, trace []Request) (Stats, error) {
	if cfg.Device == nil || len(cfg.Modules) == 0 {
		return Stats{}, fmt.Errorf("serving: device and modules required")
	}
	if len(trace) == 0 {
		return Stats{}, fmt.Errorf("serving: empty trace")
	}
	byName := make(map[string]ModuleSpec, len(cfg.Modules))
	for _, m := range cfg.Modules {
		byName[m.Name] = m
	}
	policy := cfg.Policy
	if policy == nil {
		policy = evictDefault()
	}
	resident := map[string]int64{}
	var hbmUsed int64
	var st Stats
	ttfts := make([]time.Duration, 0, len(trace))
	var baselineSum time.Duration

	for qi, req := range trace {
		var copyTime time.Duration
		suffix := req.Suffix
		if suffix <= 0 {
			suffix = 120
		}
		totalTokens := suffix
		for _, name := range req.Modules {
			m, ok := byName[name]
			if !ok {
				return Stats{}, fmt.Errorf("serving: trace request %d names unknown module %q", qi, name)
			}
			totalTokens += m.Tokens
			b := int64(m.Tokens) * cfg.Model.BytesPerToken()
			st.ModuleLookups++
			if _, hit := resident[m.Name]; hit && cfg.GPUCapacity > 0 {
				st.HBMHits++
				copyTime += cfg.Device.Local.TransferTime(b)
				policy.Touch(m.Name, b)
				continue
			}
			copyTime += cfg.Device.Upload.TransferTime(b)
			st.BytesUploaded += b
			if cfg.GPUCapacity <= 0 || b > cfg.GPUCapacity {
				continue
			}
			for hbmUsed+b > cfg.GPUCapacity {
				victim, ok := policy.Victim()
				if !ok {
					break
				}
				policy.Remove(victim)
				hbmUsed -= resident[victim]
				delete(resident, victim)
				st.Evictions++
			}
			resident[m.Name] = b
			hbmUsed += b
			policy.Touch(m.Name, b)
		}
		compute := time.Duration(cfg.Model.SuffixFLOPs(suffix, totalTokens) / cfg.Device.EffFLOPs() * float64(time.Second))
		ttft := cfg.Device.Overhead
		if cfg.OverlapTransfers {
			if copyTime > compute {
				ttft += copyTime
			} else {
				ttft += compute
			}
		} else {
			ttft += copyTime + compute
		}
		ttfts = append(ttfts, ttft)
		baselineSum += baselineFor(cfg, totalTokens)
	}
	st.Requests = len(trace)
	sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
	var sum time.Duration
	for _, t := range ttfts {
		sum += t
	}
	st.MeanTTFT = sum / time.Duration(len(ttfts))
	st.P50TTFT = ttfts[len(ttfts)/2]
	st.P99TTFT = ttfts[len(ttfts)*99/100]
	st.BaselineMeanTTFT = baselineSum / time.Duration(len(trace))
	return st, nil
}
