package serving

import (
	"fmt"
	"strings"

	"repro/internal/mining"
)

// MineStats summarizes an offline mining replay over a recorded trace:
// how many suffix streams the observer saw, what it would have promoted,
// and how many tokens later requests would have spliced instead of
// re-prefilling had mining been live when the trace was served.
type MineStats struct {
	Requests int
	// Streams counts requests whose record carries a suffix token stream
	// (legacy traces without suffix_toks are replayed but not mined).
	Streams    int
	Promotions int
	Demotions  int
	// Hits and HitTokens count requests whose suffix matched an
	// already-promoted prefix, and the total tokens those matches cover.
	Hits      int
	HitTokens int
	// SuffixTokens is the total token volume of all mined streams —
	// the denominator for TokensSavedFrac.
	SuffixTokens int
	// Tree mirrors the observer's final state.
	Nodes, Candidates, LiveModules int
}

// HitRate returns the fraction of mined streams that opened with an
// already-promoted prefix.
func (s MineStats) HitRate() float64 {
	if s.Streams == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Streams)
}

// TokensSavedFrac returns the fraction of suffix tokens a live miner
// would have served from cache instead of re-prefilling.
func (s MineStats) TokensSavedFrac() float64 {
	if s.SuffixTokens == 0 {
		return 0
	}
	return float64(s.HitTokens) / float64(s.SuffixTokens)
}

// MineTrace replays a recorded trace through a module-mining observer
// and reports the would-be win: each request's suffix token stream is
// first looked up against prefixes already promoted (a live engine would
// splice those states), then observed, with promotions granted the
// moment a prefix clears cfg's thresholds — the same order the engine
// uses, so the replayed hit counts are what serving the trace with
// mining enabled would have produced. Requests sharing a module-import
// set share a serving class; suffixes never match across classes, since
// a spliced prefix is only bit-exact over an identical attention
// context.
func MineTrace(cfg mining.Config, trace []Request) (MineStats, error) {
	if len(trace) == 0 {
		return MineStats{}, fmt.Errorf("serving: empty trace")
	}
	m := mining.New(cfg)
	var st MineStats
	seq := 0
	for _, req := range trace {
		st.Requests++
		if len(req.SuffixToks) == 0 {
			continue
		}
		st.Streams++
		st.SuffixTokens += len(req.SuffixToks)
		class := strings.Join(req.Modules, "\x1f")
		toks := req.SuffixToks
		pos := make([]int, len(toks))
		for i := range pos {
			pos[i] = i
		}
		if len(toks) > 1 {
			if _, n, ok := m.Lookup(class, toks, pos, len(toks)-1); ok {
				st.Hits++
				st.HitTokens += n
			}
		}
		res := m.Observe(class, toks, pos)
		if res.Promote != nil {
			res.Promote.Promoted(fmt.Sprintf("~mined/%d", seq))
			seq++
		}
		for _, name := range res.Demote {
			m.Demoted(name)
		}
	}
	ms := m.Stats()
	st.Promotions = int(ms.Promotions)
	st.Demotions = int(ms.Demotions)
	st.Nodes = ms.Nodes
	st.Candidates = ms.Candidates
	st.LiveModules = ms.Promoted
	return st, nil
}
