package serving

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

func TestGenerateArrivalsDeterministicAndSorted(t *testing.T) {
	for _, dist := range ArrivalDists {
		a, err := GenerateArrivals(dist, 500, 200, 42)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		b, err := GenerateArrivals(dist, 500, 200, 42)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if len(a) != 500 {
			t.Fatalf("%s: got %d arrivals", dist, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at %d: %v vs %v", dist, i, a[i], b[i])
			}
			if a[i] < 0 || (i > 0 && a[i] < a[i-1]) {
				t.Fatalf("%s: arrivals not non-decreasing at %d: %v", dist, i, a[:i+1])
			}
		}
	}
}

// TestGenerateArrivalsMeanRate: every distribution must offer the same
// long-run rate — burstiness reshapes variance, not load.
func TestGenerateArrivalsMeanRate(t *testing.T) {
	const n, rate = 4000, 100.0
	want := float64(n) / rate // seconds
	for _, dist := range ArrivalDists {
		a, err := GenerateArrivals(dist, n, rate, 7)
		if err != nil {
			t.Fatal(err)
		}
		got := a[n-1].Seconds()
		if math.Abs(got-want)/want > 0.25 {
			t.Errorf("%s: %d arrivals at %g/s span %.1fs, want ~%.1fs", dist, n, rate, got, want)
		}
	}
}

// TestGenerateArrivalsBurstiness orders the distributions by
// inter-arrival coefficient of variation: uniform (0) < poisson (~1) <
// bursty — the property that makes the bursty schedule an overload
// stressor at the same mean rate.
func TestGenerateArrivalsBurstiness(t *testing.T) {
	cv := func(dist string) float64 {
		a, err := GenerateArrivals(dist, 4000, 100, 99)
		if err != nil {
			t.Fatal(err)
		}
		gaps := make([]float64, len(a)-1)
		var mean float64
		for i := 1; i < len(a); i++ {
			gaps[i-1] = (a[i] - a[i-1]).Seconds()
			mean += gaps[i-1]
		}
		mean /= float64(len(gaps))
		var varsum float64
		for _, g := range gaps {
			varsum += (g - mean) * (g - mean)
		}
		return math.Sqrt(varsum/float64(len(gaps))) / mean
	}
	u, p, b := cv(ArrivalUniform), cv(ArrivalPoisson), cv(ArrivalBursty)
	if u > 0.01 {
		t.Errorf("uniform arrivals should have ~0 CV, got %.3f", u)
	}
	if p < 0.8 || p > 1.2 {
		t.Errorf("poisson CV should be ~1, got %.3f", p)
	}
	if b <= p*1.2 {
		t.Errorf("bursty CV (%.3f) should clearly exceed poisson (%.3f)", b, p)
	}
}

func TestGenerateArrivalsRejectsBadArgs(t *testing.T) {
	if _, err := GenerateArrivals("zipf", 10, 1, 0); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := GenerateArrivals(ArrivalPoisson, 0, 1, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GenerateArrivals(ArrivalPoisson, 10, 0, 0); err == nil {
		t.Error("rate=0 accepted")
	}
}

// TestAssignArrivalsRoundTrip: arrival offsets stamped onto a trace
// survive the JSONL round trip, so a load schedule can be checked in
// and replayed bit-identically.
func TestAssignArrivalsRoundTrip(t *testing.T) {
	trace := []Request{{Modules: []string{"a"}, Suffix: 8}, {Modules: []string{"b"}, Suffix: 9}}
	arrivals, err := GenerateArrivals(ArrivalPoisson, len(trace), 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := AssignArrivals(trace, arrivals); err != nil {
		t.Fatal(err)
	}
	if err := AssignArrivals(trace, arrivals[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trace {
		if got[i].ArrivalMS != trace[i].ArrivalMS {
			t.Fatalf("arrival %d lost in round trip: %v vs %v", i, got[i].ArrivalMS, trace[i].ArrivalMS)
		}
		if got[i].ArrivalMS != float64(arrivals[i])/float64(time.Millisecond) {
			t.Fatalf("arrival %d mis-stamped: %v", i, got[i].ArrivalMS)
		}
	}
}

const loadSchema = `<schema name="load"><module name="doc">harbor archive council garden bridge records visitors seasonal trade history</module></schema>`

func newLoadClient(t *testing.T, slots, queue int) *promptcache.Client {
	t.Helper()
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 17))
	if err != nil {
		t.Fatal(err)
	}
	client := promptcache.New(m, promptcache.WithAdmission(promptcache.AdmissionConfig{
		MaxConcurrent: slots, MaxQueue: queue,
	}))
	if _, err := client.RegisterSchema(loadSchema); err != nil {
		t.Fatal(err)
	}
	return client
}

// TestReplayLoadOverloadSheds: an open-loop burst far beyond capacity
// must shed (never fail) and account every request exactly once. The
// decode is long enough (64 tokens, tens of milliseconds) that the
// whole burst is in flight while the first request still holds the
// only slot — shedding is guaranteed, not a scheduling race.
func TestReplayLoadOverloadSheds(t *testing.T) {
	client := newLoadClient(t, 1, 1)
	const n = 24
	prompts := make([]string, n)
	for i := range prompts {
		prompts[i] = `<prompt schema="load"><doc/>Summarize the town records.</prompt>`
	}
	arrivals := make([]time.Duration, n) // all at t=0: a maximal burst
	st, err := ReplayLoad(context.Background(), client, prompts, arrivals, LoadOpts{MaxTokens: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed+st.Shed+st.Failed != st.Offered {
		t.Fatalf("requests not reconciled: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("overload must shed, not fail: %+v", st)
	}
	if st.Shed == 0 || st.ShedRate <= 0 {
		t.Fatalf("a %d-wide burst into 1 slot + 1 queue never shed: %+v", n, st)
	}
	if st.Completed == 0 {
		t.Fatalf("shedding collapsed into serving nothing: %+v", st)
	}
	if st.P50TTFT <= 0 || st.P99TTFT < st.P50TTFT || st.P95TTFT > st.P99TTFT {
		t.Fatalf("TTFT percentiles inconsistent: %+v", st)
	}
	if st.TokensOut == 0 || st.TokensPerSec <= 0 {
		t.Fatalf("no decode throughput recorded: %+v", st)
	}
	// The single queue seat is held for a full multi-millisecond serve,
	// so the 1ms sampler must observe it occupied at least once.
	if st.MaxQueueDepth < 1 {
		t.Fatalf("queue never observed occupied during overload: %+v", st)
	}
}

// TestReplayLoadUnderCapacityNoSheds: the same burst within admission
// bounds completes everything.
func TestReplayLoadUnderCapacityNoSheds(t *testing.T) {
	client := newLoadClient(t, 8, 8)
	const n = 6
	prompts := make([]string, n)
	for i := range prompts {
		prompts[i] = `<prompt schema="load"><doc/>List the seasonal visitors.</prompt>`
	}
	st, err := ReplayLoad(context.Background(), client, prompts, make([]time.Duration, n), LoadOpts{MaxTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != 0 || st.Failed != 0 || st.Completed != n {
		t.Fatalf("under-capacity burst did not complete cleanly: %+v", st)
	}
}

func TestReplayLoadRejectsBadInput(t *testing.T) {
	client := newLoadClient(t, 1, 1)
	if _, err := ReplayLoad(context.Background(), client, nil, nil, LoadOpts{}); err == nil {
		t.Error("empty replay accepted")
	}
	if _, err := ReplayLoad(context.Background(), client, []string{"a", "b"}, []time.Duration{0}, LoadOpts{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ReplayLoad(context.Background(), client, []string{"a", "b"}, []time.Duration{time.Second, 0}, LoadOpts{}); err == nil {
		t.Error("unsorted arrivals accepted")
	}
}
