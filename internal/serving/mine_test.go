package serving

import (
	"bytes"
	"testing"

	"repro/internal/mining"
)

func minedTraceConfig() Config {
	cfg := baseConfig()
	cfg.Requests = 400
	cfg.SharedPrefixes = 4
	cfg.SharedPrefixTokens = 40
	return cfg
}

func TestGenerateTraceSharedPrefixes(t *testing.T) {
	cfg := minedTraceConfig()
	trace, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	firsts := map[int]int{}
	for _, req := range trace {
		if len(req.SuffixToks) != cfg.SuffixTokens {
			t.Fatalf("suffix stream %d tokens, want %d", len(req.SuffixToks), cfg.SuffixTokens)
		}
		firsts[req.SuffixToks[0]]++
	}
	// Every suffix opens with one of the pooled prefixes, so the first
	// token takes at most SharedPrefixes distinct values.
	if len(firsts) > cfg.SharedPrefixes {
		t.Fatalf("%d distinct opening tokens, want <= %d", len(firsts), cfg.SharedPrefixes)
	}
}

func TestTraceSuffixToksRoundTrip(t *testing.T) {
	trace, err := GenerateTrace(minedTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if len(got[i].SuffixToks) != len(trace[i].SuffixToks) {
			t.Fatalf("request %d: suffix stream lost in round trip", i)
		}
		for j, tok := range got[i].SuffixToks {
			if tok != trace[i].SuffixToks[j] {
				t.Fatalf("request %d token %d corrupted", i, j)
			}
		}
	}
}

func TestMineTraceFindsSharedPrefixes(t *testing.T) {
	trace, err := GenerateTrace(minedTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := MineTrace(mining.Config{MinHits: 3, MinTokens: 8}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != len(trace) || st.Streams != len(trace) {
		t.Fatalf("coverage: %+v", st)
	}
	if st.Promotions == 0 {
		t.Fatalf("no promotions on a shared-prefix trace: %+v", st)
	}
	if st.Hits == 0 || st.HitTokens == 0 {
		t.Fatalf("no mined hits on a shared-prefix trace: %+v", st)
	}
	if st.HitRate() <= 0 || st.HitRate() > 1 {
		t.Fatalf("hit rate %v out of range", st.HitRate())
	}
	if st.TokensSavedFrac() <= 0 || st.TokensSavedFrac() > 1 {
		t.Fatalf("tokens-saved fraction %v out of range", st.TokensSavedFrac())
	}
}

func TestMineTraceLegacyTrace(t *testing.T) {
	// Traces without suffix streams replay but mine nothing.
	trace, err := GenerateTrace(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := MineTrace(mining.Config{}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams != 0 || st.Promotions != 0 || st.Hits != 0 {
		t.Fatalf("legacy trace mined something: %+v", st)
	}
	if st.Requests != len(trace) {
		t.Fatalf("requests %d, want %d", st.Requests, len(trace))
	}
	if st.HitRate() != 0 || st.TokensSavedFrac() != 0 {
		t.Fatal("zero-stream ratios should be 0")
	}
}

func TestMineTraceClassSeparation(t *testing.T) {
	// Identical suffix streams under different module-import sets must
	// not share mined prefixes: different class, different attention
	// context, a splice would not be bit-exact.
	toks := []int{7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	var trace []Request
	for i := 0; i < 6; i++ {
		trace = append(trace, Request{Modules: []string{"a"}, SuffixToks: toks})
		trace = append(trace, Request{Modules: []string{"b"}, SuffixToks: toks})
	}
	st, err := MineTrace(mining.Config{MinHits: 3, MinTokens: 4}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if st.Promotions < 2 {
		t.Fatalf("each class should promote independently: %+v", st)
	}
	if st.Hits == 0 {
		t.Fatalf("repeats after promotion should hit: %+v", st)
	}
}

func TestMineTraceEmpty(t *testing.T) {
	if _, err := MineTrace(mining.Config{}, nil); err == nil {
		t.Fatal("empty trace should fail")
	}
}
