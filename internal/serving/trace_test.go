package serving

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/evict"
)

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := baseConfig()
	a, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Requests || len(a) != len(b) {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if strings.Join(a[i].Modules, ",") != strings.Join(b[i].Modules, ",") {
			t.Fatal("trace generation not deterministic")
		}
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	cfg := baseConfig()
	cfg.Requests = 50
	trace, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trace) {
		t.Fatalf("round trip %d != %d", len(got), len(trace))
	}
	for i := range got {
		if got[i].Suffix != trace[i].Suffix ||
			strings.Join(got[i].Modules, ",") != strings.Join(trace[i].Modules, ",") {
			t.Fatal("trace corrupted")
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON should fail")
	}
	if _, err := ReadTrace(strings.NewReader(`{"modules":[],"suffix":5}` + "\n")); err == nil {
		t.Fatal("empty modules should fail")
	}
	got, err := ReadTrace(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty file: %v %d", err, len(got))
	}
}

// TestRunTraceMatchesRun: replaying the generated trace must reproduce
// the stream-mode run exactly (same hits, same mean TTFT).
func TestRunTraceMatchesRun(t *testing.T) {
	cfg := baseConfig()
	cfg.GPUCapacity = 4 << 30
	cfg.Policy = evict.NewLRU()
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	replayCfg := baseConfig()
	replayCfg.GPUCapacity = 4 << 30
	replayCfg.Policy = evict.NewLRU()
	replayed, err := RunTrace(replayCfg, trace)
	if err != nil {
		t.Fatal(err)
	}
	if direct.HBMHits != replayed.HBMHits || direct.MeanTTFT != replayed.MeanTTFT ||
		direct.BytesUploaded != replayed.BytesUploaded {
		t.Fatalf("replay diverges: %+v vs %+v", direct, replayed)
	}
}

func TestRunTraceValidation(t *testing.T) {
	cfg := baseConfig()
	if _, err := RunTrace(cfg, nil); err == nil {
		t.Fatal("empty trace should fail")
	}
	if _, err := RunTrace(cfg, []Request{{Modules: []string{"ghost"}, Suffix: 10}}); err == nil {
		t.Fatal("unknown module should fail")
	}
	if _, err := RunTrace(Config{}, []Request{{Modules: []string{"m"}}}); err == nil {
		t.Fatal("missing device should fail")
	}
}

func TestRunTraceDefaultSuffix(t *testing.T) {
	cfg := baseConfig()
	st, err := RunTrace(cfg, []Request{{Modules: []string{cfg.Modules[0].Name}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.MeanTTFT <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}
