package serving

import (
	"testing"

	"repro/internal/evict"
	"repro/internal/hw"
)

func baseConfig() Config {
	return Config{
		Device:            hw.RTX4090(),
		Model:             hw.Llama7B(),
		Modules:           DefaultUniverse(60, 200, 4000, 5),
		Requests:          800,
		ModulesPerRequest: 2,
		SuffixTokens:      100,
		ZipfS:             1.1,
		Seed:              42,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("expected error without device/modules")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.GPUCapacity = 8 << 30
	cfg.Policy = evict.NewLRU()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = evict.NewLRU()
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanTTFT != b.MeanTTFT || a.HBMHits != b.HBMHits {
		t.Fatal("simulation not deterministic")
	}
}

func TestCachedBeatsBaseline(t *testing.T) {
	cfg := baseConfig()
	cfg.GPUCapacity = 8 << 30
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Speedup() <= 1.5 {
		t.Fatalf("speedup %.2f too small", st.Speedup())
	}
	if st.MeanTTFT > st.P99TTFT || st.P50TTFT > st.P99TTFT {
		t.Fatal("percentile ordering broken")
	}
}

func TestHostOnlyStillBeatsBaseline(t *testing.T) {
	// The paper's CPU-memory configuration: no HBM tier, every module
	// ships over PCIe — still far faster than recomputing (§5.2.1).
	cfg := baseConfig()
	cfg.GPUCapacity = 0
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.HBMHits != 0 {
		t.Fatal("host-only must have no HBM hits")
	}
	if st.Speedup() <= 1.2 {
		t.Fatalf("host-only speedup %.2f too small", st.Speedup())
	}
}

func TestCapacityMonotonicity(t *testing.T) {
	// More HBM → higher hit rate → lower mean TTFT.
	cfg := baseConfig()
	var prevHit float64 = -1
	var prevTTFT float64 = 1e18
	for _, gib := range []int64{1, 8, 64} {
		c := cfg
		c.GPUCapacity = gib << 30
		c.Policy = evict.NewLRU()
		st, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if st.HitRate() < prevHit-0.02 {
			t.Fatalf("hit rate fell with more capacity: %.3f after %.3f", st.HitRate(), prevHit)
		}
		if float64(st.MeanTTFT) > prevTTFT*1.02 {
			t.Fatalf("mean TTFT rose with more capacity")
		}
		prevHit = st.HitRate()
		prevTTFT = float64(st.MeanTTFT)
	}
}

func TestUnboundedIsLowerBound(t *testing.T) {
	results, err := ComparePolicies(baseConfig(), 4<<30)
	if err != nil {
		t.Fatal(err)
	}
	lower := results["unbounded-hbm"]
	upper := results["host-only"]
	for _, name := range evict.Names() {
		st := results[name]
		if st.MeanTTFT < lower.MeanTTFT {
			t.Fatalf("%s beat the unbounded lower bound", name)
		}
		if st.MeanTTFT > upper.MeanTTFT {
			t.Fatalf("%s (%v) worse than host-only (%v)", name, st.MeanTTFT, upper.MeanTTFT)
		}
	}
	if lower.HitRate() < 0.9 {
		t.Fatalf("unbounded hit rate %.2f should approach 1 after warmup", lower.HitRate())
	}
}

func TestPolicyDifferentiation(t *testing.T) {
	// Under a tight HBM budget with skewed sizes and popularity, the
	// frequency/size-aware policies should not lose to FIFO, and results
	// must differ somewhere (policies actually engage).
	results, err := ComparePolicies(baseConfig(), 2<<30)
	if err != nil {
		t.Fatal(err)
	}
	if results["gdsf"].HitRate()+0.03 < results["fifo"].HitRate() {
		t.Fatalf("gdsf %.3f far below fifo %.3f", results["gdsf"].HitRate(), results["fifo"].HitRate())
	}
	allEqual := true
	first := results["lru"].HBMHits
	for _, name := range evict.Names() {
		if results[name].HBMHits != first {
			allEqual = false
		}
		if results[name].Evictions == 0 {
			t.Fatalf("%s: no evictions under tight capacity", name)
		}
	}
	if allEqual {
		t.Fatal("all policies identical — replacement never mattered")
	}
	for name, st := range results {
		t.Logf("%-14s hit=%.3f mean=%v p99=%v speedup=%.1fx uploads=%dMiB",
			name, st.HitRate(), st.MeanTTFT, st.P99TTFT, st.Speedup(), st.BytesUploaded>>20)
	}
}

func TestOverlapTransfersNeverSlower(t *testing.T) {
	cfg := baseConfig()
	cfg.GPUCapacity = 0 // host-only maximizes copy time → overlap matters
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OverlapTransfers = true
	ovl, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ovl.MeanTTFT > seq.MeanTTFT {
		t.Fatalf("overlap mean %v worse than sequential %v", ovl.MeanTTFT, seq.MeanTTFT)
	}
	// With uploads of multi-hundred-MiB module states against a ~100
	// token suffix, overlap should hide a visible fraction.
	if float64(ovl.MeanTTFT) > 0.95*float64(seq.MeanTTFT) {
		t.Fatalf("overlap saved <5%%: %v vs %v", ovl.MeanTTFT, seq.MeanTTFT)
	}
	// Hit accounting must be identical — overlap changes timing only.
	if ovl.HBMHits != seq.HBMHits || ovl.BytesUploaded != seq.BytesUploaded {
		t.Fatal("overlap changed cache behaviour")
	}
}

func TestDefaultUniverse(t *testing.T) {
	mods := DefaultUniverse(100, 100, 5000, 9)
	if len(mods) != 100 {
		t.Fatalf("len = %d", len(mods))
	}
	seen := map[string]bool{}
	for _, m := range mods {
		if m.Tokens < 100 || m.Tokens > 5000 {
			t.Fatalf("module %s tokens %d out of range", m.Name, m.Tokens)
		}
		if seen[m.Name] {
			t.Fatal("duplicate module name")
		}
		seen[m.Name] = true
	}
	// Log-uniform: spread should cover more than a 4x range.
	min, max := mods[0].Tokens, mods[0].Tokens
	for _, m := range mods {
		if m.Tokens < min {
			min = m.Tokens
		}
		if m.Tokens > max {
			max = m.Tokens
		}
	}
	if max < 4*min {
		t.Fatalf("sizes not spread: [%d, %d]", min, max)
	}
}
