// Package serving simulates the LLM serving system the paper sketches as
// future work (§6): Prompt Cache as a building block under a two-tier
// memory hierarchy — scarce GPU HBM in front of abundant host DRAM — with
// pluggable cache-replacement policies deciding which prompt modules stay
// device-resident.
//
// The simulator replays a skewed (Zipf) request stream over a module
// universe. Every request imports k modules and adds an uncached suffix;
// its TTFT is assembled from the calibrated hardware model
// (internal/hw): device-to-device copies for HBM-resident modules,
// host-to-device uploads (plus promotion and possible evictions) for the
// rest, and suffix attention compute. Comparing policies and capacities
// against the no-reuse baseline quantifies how far a replacement policy
// gets toward the "latency lower bound made possible by Prompt Cache".
package serving

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/evict"
	"repro/internal/hw"
	"repro/internal/rng"
)

// ModuleSpec is one cacheable prompt module in the universe.
type ModuleSpec struct {
	Name   string
	Tokens int
}

// Config parameterizes a simulation run.
type Config struct {
	Device *hw.Device
	Model  hw.Model

	Modules []ModuleSpec
	// Requests is the stream length; each request imports
	// ModulesPerRequest distinct modules chosen by Zipf(ZipfS) popularity
	// and appends SuffixTokens of uncached text.
	Requests          int
	ModulesPerRequest int
	SuffixTokens      int
	ZipfS             float64
	Seed              uint64

	// GPUCapacity bounds the HBM tier in bytes (0 = no GPU tier: every
	// module ships from host DRAM, the paper's "CPU memory" setup).
	GPUCapacity int64
	// Policy governs HBM replacement; nil defaults to LRU.
	Policy evict.Policy
	// OverlapTransfers pipelines module copies with the uncached-suffix
	// computation (the prefetch direction §3.2.3 hints at): per request,
	// TTFT pays max(copy, compute) instead of copy + compute.
	OverlapTransfers bool

	// SharedPrefixes > 0 makes GenerateTrace emit explicit suffix token
	// streams: each request's suffix starts with one of SharedPrefixes
	// pooled prefixes (Zipf-picked, SharedPrefixTokens long) followed by
	// unique filler — undeclared shared structure for MineTrace to find.
	SharedPrefixes     int
	SharedPrefixTokens int
}

// Stats summarizes a run.
type Stats struct {
	Requests      int
	ModuleLookups int
	HBMHits       int
	Evictions     int
	BytesUploaded int64

	MeanTTFT, P50TTFT, P99TTFT time.Duration
	// BaselineMeanTTFT is the same stream served with no attention reuse
	// (full prefill per request).
	BaselineMeanTTFT time.Duration
}

// HitRate returns the HBM hit fraction over module lookups.
func (s Stats) HitRate() float64 {
	if s.ModuleLookups == 0 {
		return 0
	}
	return float64(s.HBMHits) / float64(s.ModuleLookups)
}

// Speedup returns baseline mean TTFT / cached mean TTFT.
func (s Stats) Speedup() float64 {
	if s.MeanTTFT == 0 {
		return 0
	}
	return float64(s.BaselineMeanTTFT) / float64(s.MeanTTFT)
}

// DefaultUniverse builds a module universe of n documents whose sizes are
// drawn log-uniformly between minTok and maxTok — spanning the system
// message / template / long-document range real schemas mix.
func DefaultUniverse(n, minTok, maxTok int, seed uint64) []ModuleSpec {
	r := rng.New(seed)
	out := make([]ModuleSpec, n)
	lnMin, lnMax := math.Log(float64(minTok)), math.Log(float64(maxTok))
	for i := range out {
		t := int(math.Exp(lnMin + r.Float64()*(lnMax-lnMin)))
		out[i] = ModuleSpec{Name: fmt.Sprintf("mod%03d", i), Tokens: t}
	}
	return out
}

// Run replays the stream and returns aggregate statistics.
func Run(cfg Config) (Stats, error) {
	if cfg.Device == nil || len(cfg.Modules) == 0 {
		return Stats{}, fmt.Errorf("serving: device and modules required")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.ModulesPerRequest <= 0 {
		cfg.ModulesPerRequest = 2
	}
	if cfg.ModulesPerRequest > len(cfg.Modules) {
		cfg.ModulesPerRequest = len(cfg.Modules)
	}
	if cfg.SuffixTokens <= 0 {
		cfg.SuffixTokens = 120
	}
	if cfg.ZipfS <= 0 {
		cfg.ZipfS = 1.0
	}
	policy := cfg.Policy
	if policy == nil {
		policy = evict.NewLRU()
	}

	r := rng.New(cfg.Seed)
	weights := make([]float64, len(cfg.Modules))
	var totalW float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
		totalW += weights[i]
	}
	pick := func() int {
		u := r.Float64() * totalW
		acc := 0.0
		for i, w := range weights {
			acc += w
			if u < acc {
				return i
			}
		}
		return len(weights) - 1
	}

	bytesOf := func(m ModuleSpec) int64 {
		return int64(m.Tokens) * cfg.Model.BytesPerToken()
	}

	resident := map[string]int64{}
	var hbmUsed int64
	var st Stats
	ttfts := make([]time.Duration, 0, cfg.Requests)
	var baselineSum time.Duration

	for q := 0; q < cfg.Requests; q++ {
		// Distinct module picks, processed in a deterministic order.
		chosenSet := map[int]bool{}
		for len(chosenSet) < cfg.ModulesPerRequest {
			chosenSet[pick()] = true
		}
		chosen := make([]int, 0, len(chosenSet))
		for idx := range chosenSet {
			chosen = append(chosen, idx)
		}
		sort.Ints(chosen)
		var copyTime time.Duration
		totalTokens := cfg.SuffixTokens
		for _, idx := range chosen {
			m := cfg.Modules[idx]
			totalTokens += m.Tokens
			b := bytesOf(m)
			st.ModuleLookups++
			if _, hit := resident[m.Name]; hit && cfg.GPUCapacity > 0 {
				st.HBMHits++
				copyTime += cfg.Device.Local.TransferTime(b)
				policy.Touch(m.Name, b)
				continue
			}
			// Miss: ship from host DRAM...
			copyTime += cfg.Device.Upload.TransferTime(b)
			st.BytesUploaded += b
			// ...and promote into HBM if it can ever fit.
			if cfg.GPUCapacity <= 0 || b > cfg.GPUCapacity {
				continue
			}
			for hbmUsed+b > cfg.GPUCapacity {
				victim, ok := policy.Victim()
				if !ok {
					break
				}
				policy.Remove(victim)
				hbmUsed -= resident[victim]
				delete(resident, victim)
				st.Evictions++
			}
			resident[m.Name] = b
			hbmUsed += b
			policy.Touch(m.Name, b)
		}
		compute := time.Duration(cfg.Model.SuffixFLOPs(cfg.SuffixTokens, totalTokens) / cfg.Device.EffFLOPs() * float64(time.Second))
		ttft := cfg.Device.Overhead
		if cfg.OverlapTransfers {
			// Copies ride alongside the suffix computation; the longer
			// of the two gates the first token.
			if copyTime > compute {
				ttft += copyTime
			} else {
				ttft += compute
			}
		} else {
			ttft += copyTime + compute
		}
		ttfts = append(ttfts, ttft)
		baselineSum += hw.BaselineTTFT(cfg.Device, cfg.Model, totalTokens)
	}

	st.Requests = cfg.Requests
	sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
	var sum time.Duration
	for _, t := range ttfts {
		sum += t
	}
	st.MeanTTFT = sum / time.Duration(len(ttfts))
	st.P50TTFT = ttfts[len(ttfts)/2]
	st.P99TTFT = ttfts[len(ttfts)*99/100]
	st.BaselineMeanTTFT = baselineSum / time.Duration(cfg.Requests)
	return st, nil
}

// ComparePolicies runs the same stream under each named policy at the
// given HBM capacity and returns stats per policy name, plus the
// host-only ("CPU memory") and unbounded-HBM reference points.
func ComparePolicies(base Config, capacity int64) (map[string]Stats, error) {
	out := map[string]Stats{}
	for _, name := range evict.Names() {
		p, err := evict.New(name)
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.GPUCapacity = capacity
		cfg.Policy = p
		st, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out[name] = st
	}
	hostOnly := base
	hostOnly.GPUCapacity = 0
	st, err := Run(hostOnly)
	if err != nil {
		return nil, err
	}
	out["host-only"] = st

	unbounded := base
	unbounded.GPUCapacity = 1 << 60
	st, err = Run(unbounded)
	if err != nil {
		return nil, err
	}
	out["unbounded-hbm"] = st
	return out, nil
}
