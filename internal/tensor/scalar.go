package tensor

// scalarBackend is the reference implementation: every kernel runs
// sequentially on the calling goroutine, in the canonical accumulation
// order all other backends must reproduce bit-for-bit. The bodies are
// the package-level routines this engine has always run on — kept
// single-threaded here even where the package-level entry points shard
// (MatMul), so "scalar" genuinely means one core.
type scalarBackend struct{}

func (*scalarBackend) Name() string { return "scalar" }

func (*scalarBackend) Workers() int { return 1 }

func (*scalarBackend) MatMul(dst, a, b *Matrix) {
	checkMatMul(dst, a, b)
	matMulRange(dst, a, b, 0, a.Rows)
}

func (*scalarBackend) MatVec(dst []float32, m *Matrix, v []float32) {
	MatVec(dst, m, v)
}

func (*scalarBackend) MatVecT(dst []float32, w *Matrix, h []float32) {
	checkMatVecT(dst, w, h)
	matVecTRange(dst, w, h, 0, w.Cols)
}

func (*scalarBackend) Dot(a, b []float32) float32 { return Dot(a, b) }

func (*scalarBackend) Dot2(a, b0, b1 []float32) (float32, float32) { return Dot2(a, b0, b1) }

func (*scalarBackend) Dot4(a, b0, b1, b2, b3 []float32) (float32, float32, float32, float32) {
	return Dot4(a, b0, b1, b2, b3)
}

func (*scalarBackend) AttendRowBlock(a *AttendArgs) {
	checkAttendArgs(a)
	attendPairs(a, a.Scores, 0, a.Q.Rows*a.NHeads)
}

func (*scalarBackend) OutputHead(dsts [][]float32, emb *Matrix, hs [][]float32) {
	if len(hs) == 0 {
		return
	}
	checkOutputHead(dsts, emb, hs)
	outputHeadRange(dsts, emb, hs, 0, emb.Rows)
}

func (*scalarBackend) Softmax(x []float32) { Softmax(x) }

func (*scalarBackend) RMSNorm(dst, x, weight []float32, eps float32) { RMSNorm(dst, x, weight, eps) }

func (*scalarBackend) LayerNorm(dst, x, gamma, beta []float32, eps float32) {
	LayerNorm(dst, x, gamma, beta, eps)
}

func (*scalarBackend) SiLU(x []float32) { SiLU(x) }

func (*scalarBackend) GELU(x []float32) { GELU(x) }
