package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	dst := NewMatrix(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(dst.Data[i], w, 1e-5) {
			t.Fatalf("MatMul[%d] = %v, want %v", i, dst.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(5)
	const n = 17
	a := NewMatrix(n, n)
	r.FillNormal(a.Data, 1)
	id := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	dst := NewMatrix(n, n)
	MatMul(dst, a, id)
	if MaxAbsDiff(dst.Data, a.Data) > 1e-6 {
		t.Fatal("A*I != A")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Above the parallel threshold, the result must be identical to the
	// serial path (same summation order per row).
	r := rng.New(6)
	a := NewMatrix(80, 96)
	b := NewMatrix(96, 80)
	r.FillNormal(a.Data, 1)
	r.FillNormal(b.Data, 1)
	par := NewMatrix(80, 80)
	ser := NewMatrix(80, 80)
	MatMul(par, a, b) // 80*80 = 6400 >= threshold
	matMulRange(ser, a, b, 0, a.Rows)
	if MaxAbsDiff(par.Data, ser.Data) != 0 {
		t.Fatal("parallel and serial matmul differ")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A·B)·C ≈ A·(B·C) for random small matrices.
	r := rng.New(7)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		n := rr.IntRange(1, 8)
		k := rr.IntRange(1, 8)
		m := rr.IntRange(1, 8)
		p := rr.IntRange(1, 8)
		a := NewMatrix(n, k)
		b := NewMatrix(k, m)
		c := NewMatrix(m, p)
		r.FillNormal(a.Data, 1)
		r.FillNormal(b.Data, 1)
		r.FillNormal(c.Data, 1)
		ab := NewMatrix(n, m)
		MatMul(ab, a, b)
		abc1 := NewMatrix(n, p)
		MatMul(abc1, ab, c)
		bc := NewMatrix(k, p)
		MatMul(bc, b, c)
		abc2 := NewMatrix(n, p)
		MatMul(abc2, a, bc)
		return MaxAbsDiff(abc1.Data, abc2.Data) < 1e-3
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	r := rng.New(8)
	m := NewMatrix(13, 7)
	r.FillNormal(m.Data, 1)
	v := make([]float32, 7)
	r.FillNormal(v, 1)
	got := make([]float32, 13)
	MatVec(got, m, v)
	vm := FromSlice(7, 1, v)
	want := NewMatrix(13, 1)
	MatMul(want, m, vm)
	if MaxAbsDiff(got, want.Data) > 1e-5 {
		t.Fatal("MatVec != MatMul with column vector")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	check := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := r.IntRange(1, 64)
		x := make([]float32, n)
		r.FillUniform(x, -20, 20)
		Softmax(x)
		var sum float32
		for _, v := range x {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return almostEq(sum, 1, 1e-4)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{101, 102, 103, 104}
	Softmax(a)
	Softmax(b)
	if MaxAbsDiff(a, b) > 1e-5 {
		t.Fatal("softmax not shift invariant")
	}
}

func TestSoftmaxLargeValuesStable(t *testing.T) {
	x := []float32{1000, 1000, 1000}
	Softmax(x)
	for _, v := range x {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed on large inputs")
		}
		if !almostEq(v, 1.0/3.0, 1e-5) {
			t.Fatalf("expected uniform, got %v", v)
		}
	}
}

func TestSoftmaxEmpty(t *testing.T) {
	Softmax(nil) // must not panic
}

func TestRMSNorm(t *testing.T) {
	x := []float32{3, 4}
	w := []float32{1, 1}
	dst := make([]float32, 2)
	RMSNorm(dst, x, w, 0)
	// rms = sqrt((9+16)/2) = sqrt(12.5)
	rms := float32(math.Sqrt(12.5))
	if !almostEq(dst[0], 3/rms, 1e-5) || !almostEq(dst[1], 4/rms, 1e-5) {
		t.Fatalf("RMSNorm = %v", dst)
	}
}

func TestRMSNormUnitOutputRMS(t *testing.T) {
	check := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := r.IntRange(2, 128)
		x := make([]float32, n)
		r.FillNormal(x, 3)
		w := make([]float32, n)
		for i := range w {
			w[i] = 1
		}
		dst := make([]float32, n)
		RMSNorm(dst, x, w, 1e-6)
		var ss float64
		for _, v := range dst {
			ss += float64(v) * float64(v)
		}
		out := math.Sqrt(ss / float64(n))
		return math.Abs(out-1) < 1e-2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLayerNormZeroMeanUnitVar(t *testing.T) {
	r := rng.New(10)
	n := 64
	x := make([]float32, n)
	r.FillNormal(x, 5)
	gamma := make([]float32, n)
	beta := make([]float32, n)
	for i := range gamma {
		gamma[i] = 1
	}
	dst := make([]float32, n)
	LayerNorm(dst, x, gamma, beta, 1e-6)
	var mean, variance float64
	for _, v := range dst {
		mean += float64(v)
	}
	mean /= float64(n)
	for _, v := range dst {
		d := float64(v) - mean
		variance += d * d
	}
	variance /= float64(n)
	if math.Abs(mean) > 1e-4 {
		t.Fatalf("LayerNorm mean %v != 0", mean)
	}
	if math.Abs(variance-1) > 1e-3 {
		t.Fatalf("LayerNorm variance %v != 1", variance)
	}
}

func TestSiLU(t *testing.T) {
	x := []float32{0, 1, -1}
	SiLU(x)
	if !almostEq(x[0], 0, 1e-6) {
		t.Fatalf("SiLU(0) = %v", x[0])
	}
	if !almostEq(x[1], 0.731058, 1e-4) {
		t.Fatalf("SiLU(1) = %v", x[1])
	}
	if !almostEq(x[2], -0.268941, 1e-4) {
		t.Fatalf("SiLU(-1) = %v", x[2])
	}
}

func TestGELU(t *testing.T) {
	x := []float32{0, 1, -1, 3}
	GELU(x)
	if !almostEq(x[0], 0, 1e-6) {
		t.Fatalf("GELU(0) = %v", x[0])
	}
	if !almostEq(x[1], 0.841192, 1e-3) {
		t.Fatalf("GELU(1) = %v", x[1])
	}
	if !almostEq(x[2], -0.158808, 1e-3) {
		t.Fatalf("GELU(-1) = %v", x[2])
	}
	if !almostEq(x[3], 2.9964, 1e-3) {
		t.Fatalf("GELU(3) = %v", x[3])
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float32{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d", got)
	}
	// Tie breaks low.
	if got := ArgMax([]float32{2, 7, 7}); got != 1 {
		t.Fatalf("ArgMax tie = %d", got)
	}
	if got := ArgMax([]float32{-3}); got != 0 {
		t.Fatalf("ArgMax single = %d", got)
	}
}

func TestAddMulScale(t *testing.T) {
	a := []float32{1, 2, 3}
	Add(a, []float32{10, 20, 30})
	if a[2] != 33 {
		t.Fatalf("Add = %v", a)
	}
	Mul(a, []float32{2, 2, 2})
	if a[0] != 22 {
		t.Fatalf("Mul = %v", a)
	}
	Scale(a, 0.5)
	if a[0] != 11 {
		t.Fatalf("Scale = %v", a)
	}
}

func TestDotOrthogonal(t *testing.T) {
	if Dot([]float32{1, 0}, []float32{0, 1}) != 0 {
		t.Fatal("orthogonal dot != 0")
	}
}

func TestSliceRowsView(t *testing.T) {
	m := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	v := m.SliceRows(1, 3)
	if v.Rows != 2 || v.At(0, 0) != 3 {
		t.Fatalf("SliceRows bad view: %+v", v)
	}
	v.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("SliceRows must alias parent storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Fatal("Clone aliases parent")
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float32{1, 0}, []float32{1, 0}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("cos same = %v", got)
	}
	if got := CosineSimilarity([]float32{1, 0}, []float32{0, 1}); math.Abs(got) > 1e-9 {
		t.Fatalf("cos orth = %v", got)
	}
	if got := CosineSimilarity([]float32{0, 0}, []float32{1, 1}); got != 0 {
		t.Fatalf("cos zero = %v", got)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float32{1, 2}, []float32{1, 5}); got != 3 {
		t.Fatalf("MaxAbsDiff = %v", got)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := rng.New(1)
	a := NewMatrix(128, 128)
	c := NewMatrix(128, 128)
	dst := NewMatrix(128, 128)
	r.FillNormal(a.Data, 1)
	r.FillNormal(c.Data, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, a, c)
	}
}

func BenchmarkSoftmax1K(b *testing.B) {
	r := rng.New(2)
	x := make([]float32, 1024)
	r.FillNormal(x, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(x)
	}
}
