package tensor

import (
	"testing"

	"repro/internal/rng"
)

// Kernel microbenchmarks per backend, mirroring the shapes pcbench's
// kernels experiment records into BENCH_kernels.json. Run with
// `go test -bench 'MatMul|MatVec|OutputHead|AttendRowBlock' ./internal/tensor/`.

func benchBackends(b *testing.B, run func(b *testing.B, bk Backend)) {
	for _, name := range Backends() {
		bk, err := Select(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) { run(b, bk) })
	}
}

func BenchmarkMatMul(b *testing.B) {
	r := rng.NewString("bench/matmul")
	a, m := NewMatrix(128, 256), NewMatrix(256, 256)
	r.FillNormal(a.Data, 1)
	r.FillNormal(m.Data, 1)
	dst := NewMatrix(128, 256)
	benchBackends(b, func(b *testing.B, bk Backend) {
		for i := 0; i < b.N; i++ {
			bk.MatMul(dst, a, m)
		}
	})
}

func BenchmarkMatVec(b *testing.B) {
	r := rng.NewString("bench/matvect")
	w := NewMatrix(2048, 512)
	r.FillNormal(w.Data, 1)
	h := make([]float32, 2048)
	r.FillNormal(h, 1)
	dst := make([]float32, 512)
	benchBackends(b, func(b *testing.B, bk Backend) {
		for i := 0; i < b.N; i++ {
			bk.MatVecT(dst, w, h)
		}
	})
}

func BenchmarkOutputHead(b *testing.B) {
	r := rng.NewString("bench/outputhead")
	const vocab, dim, lanes = 8192, 64, 4
	emb := NewMatrix(vocab, dim)
	r.FillNormal(emb.Data, 1)
	hs := make([][]float32, lanes)
	dsts := make([][]float32, lanes)
	for k := range hs {
		hs[k] = make([]float32, dim)
		r.FillNormal(hs[k], 1)
		dsts[k] = make([]float32, vocab)
	}
	benchBackends(b, func(b *testing.B, bk Backend) {
		for i := 0; i < b.N; i++ {
			bk.OutputHead(dsts, emb, hs)
		}
	})
}

func BenchmarkAttendRowBlock(b *testing.B) {
	r := rng.NewString("bench/attend")
	a := buildAttend(r, 32, 256, 4, 1, 16, false)
	benchBackends(b, func(b *testing.B, bk Backend) {
		for i := 0; i < b.N; i++ {
			bk.AttendRowBlock(a)
		}
	})
}
