package tensor

import (
	"fmt"
	"os"
	"runtime"
	"strings"
)

// Backend is the kernel dispatch surface the transformer engine runs on.
// Every hot loop in internal/model bottoms out in one of these methods,
// so a Backend is the unit of hardware specialization: the scalar
// backend is the single-threaded reference implementation, the parallel
// backend tiles the same arithmetic across goroutines, and a future
// accelerator backend would slot in behind the same interface.
//
// The contract every implementation must honor is bit-identity: for any
// input, every output element must be bit-for-bit equal to what the
// scalar reference produces (compare with math.Float32bits, not a
// tolerance). The only freedom a backend has is scheduling — which
// worker computes which independent output element, and in what order
// whole elements complete. Inside a reduction (a dot product, a softmax
// sum, a norm accumulator) the reference accumulation order is part of
// the contract and must not change, because float addition does not
// commute in rounding. This is what lets golden-logits tests, the fused
// ≡ solo decode guarantee and cross-machine cache reuse hold regardless
// of which backend served a request.
type Backend interface {
	// Name identifies the backend ("scalar", "parallel").
	Name() string
	// Workers reports the goroutine fan-out the backend may use; 1 means
	// strictly sequential execution on the calling goroutine.
	Workers() int

	// MatMul computes dst = a × b (a: n×k, b: k×m, dst: n×m, no aliasing).
	MatMul(dst, a, b *Matrix)
	// MatVec computes dst = m × v (row-major dot products).
	MatVec(dst []float32, m *Matrix, v []float32)
	// MatVecT computes dst = Wᵀ·h for W stored (in × out):
	// dst[j] = Σ_i W[i][j]·h[i], accumulated over i ascending.
	MatVecT(dst []float32, w *Matrix, h []float32)

	// Dot/Dot2/Dot4 are the row-block reduction kernels (one pass over a,
	// 1/2/4 bit-identical sums). Reductions are never parallelized.
	Dot(a, b []float32) float32
	Dot2(a, b0, b1 []float32) (float32, float32)
	Dot4(a, b0, b1, b2, b3 []float32) (float32, float32, float32, float32)

	// AttendRowBlock computes causal multi-head attention for a block of
	// query rows over segmented KV spans; see AttendArgs.
	AttendRowBlock(a *AttendArgs)
	// OutputHead computes the tied output head for a batch of normed
	// hidden states: dsts[k][t] = emb.Row(t) · hs[k] for every vocab row
	// t and lane k, reading each embedding row once per lane group.
	OutputHead(dsts [][]float32, emb *Matrix, hs [][]float32)

	// Elementwise kernels; identical scalar code in every backend, on the
	// interface so a device backend can keep the whole pass resident.
	Softmax(x []float32)
	RMSNorm(dst, x, weight []float32, eps float32)
	LayerNorm(dst, x, gamma, beta []float32, eps float32)
	SiLU(x []float32)
	GELU(x []float32)
}

// Span is one contiguous run of cached KV rows, mirroring
// kvcache.Segment without importing it (kvcache sits above tensor).
// K and V hold len(Pos) rows of the owning cache's KV width; Pos holds
// the explicit position IDs those rows were recorded at.
type Span struct {
	K, V []float32
	Pos  []int
}

// AttendArgs describes one AttendRowBlock call: causal multi-head
// attention for n = Q.Rows query tokens over the KV rows in Spans.
// Query token i (cache row Past+i, position Positions[i]) attends over
// rows [0, Past+i+1) — the chunk-prefill causal clamp; a single decode
// step is the n=1, Past=rows-1 special case.
//
// Every (token, head) pair is an independent output: backends may
// compute pairs in any order or concurrently, but within a pair the
// score pass, softmax and weighted-V combine follow the reference
// order (spans in order, rows ascending, the w == 0 skip preserved).
type AttendArgs struct {
	Q, Out *Matrix // n × (NHeads·HeadDim); Out rows are overwritten
	Spans  []Span
	// Past counts cache rows preceding this block's first token.
	Past      int
	Positions []int // query position IDs, len n

	NHeads  int
	Group   int // query heads per KV head (GQA); 1 for MHA
	HeadDim int
	Width   int     // KV row width = NKVHeads·HeadDim
	InvSqrt float32 // 1/sqrt(HeadDim), the score scale

	// AlibiSlopes, when non-nil, enables the ALiBi bias
	// -slope[h]·max(0, qPos-p) computed from explicit position IDs.
	AlibiSlopes []float32

	// Scores is caller scratch with len >= Past+Q.Rows, used by
	// sequential execution; parallel workers substitute pooled buffers.
	Scores []float32
}

// attendPairs computes the flattened (token, head) pairs [lo, hi) of an
// attention row block, pair idx = token*NHeads + head. This is the one
// shared reference body: both backends run exactly this code, differing
// only in how pairs are distributed.
func attendPairs(a *AttendArgs, scores []float32, lo, hi int) {
	hd, width := a.HeadDim, a.Width
	for idx := lo; idx < hi; idx++ {
		i, h := idx/a.NHeads, idx%a.NHeads
		rows := a.Past + i + 1
		qPos := a.Positions[i]
		base := (h / a.Group) * hd
		qh := a.Q.Row(i)[h*hd : (h+1)*hd]
		s := scores[:rows]
		off := 0
		for _, sp := range a.Spans {
			if off >= rows {
				break
			}
			lim := len(sp.Pos)
			if off+lim > rows {
				lim = rows - off
			}
			for j := 0; j < lim; j++ {
				row := j * width
				sc := Dot(qh, sp.K[row+base:row+base+hd]) * a.InvSqrt
				if a.AlibiSlopes != nil {
					// Bias from explicit position IDs (§4.2): the classic
					// -slope·distance, where distance uses the recorded
					// positions, not array indices, so module gaps behave
					// like the paper's "white space".
					dist := qPos - sp.Pos[j]
					if dist < 0 {
						dist = 0
					}
					sc -= a.AlibiSlopes[h] * float32(dist)
				}
				s[off+j] = sc
			}
			off += lim
		}
		Softmax(s)
		oh := a.Out.Row(i)[h*hd : (h+1)*hd]
		for t := range oh {
			oh[t] = 0
		}
		off = 0
		for _, sp := range a.Spans {
			if off >= rows {
				break
			}
			lim := len(sp.Pos)
			if off+lim > rows {
				lim = rows - off
			}
			for j := 0; j < lim; j++ {
				w := s[off+j]
				if w == 0 {
					continue
				}
				row := j * width
				vh := sp.V[row+base : row+base+hd]
				for t := range oh {
					oh[t] += w * vh[t]
				}
			}
			off += lim
		}
	}
}

func checkAttendArgs(a *AttendArgs) {
	if a.Q.Rows != a.Out.Rows || len(a.Positions) != a.Q.Rows {
		panic(fmt.Sprintf("tensor: AttendRowBlock q=%d out=%d positions=%d rows",
			a.Q.Rows, a.Out.Rows, len(a.Positions)))
	}
}

// outputHeadRange computes dsts[k][t] for vocab rows t in [lo, hi) and
// every lane k, reading each embedding row exactly once per lane group.
// Lanes go through the widest batched dot kernel that fits (4/2/1): per
// element the row loads and index arithmetic amortize over the group,
// which is where a fused decode step beats N solo steps even when every
// matrix is cache-resident. Per-lane sums are bit-identical to solo Dot
// calls, so grouping is invisible in the logits.
func outputHeadRange(dsts [][]float32, emb *Matrix, hs [][]float32, lo, hi int) {
	k := 0
	for ; k+4 <= len(hs); k += 4 {
		d0, d1, d2, d3 := dsts[k], dsts[k+1], dsts[k+2], dsts[k+3]
		h0, h1, h2, h3 := hs[k], hs[k+1], hs[k+2], hs[k+3]
		for t := lo; t < hi; t++ {
			row := emb.Row(t)
			d0[t], d1[t], d2[t], d3[t] = Dot4(row, h0, h1, h2, h3)
		}
	}
	if k+2 <= len(hs) {
		d0, d1 := dsts[k], dsts[k+1]
		h0, h1 := hs[k], hs[k+1]
		for t := lo; t < hi; t++ {
			row := emb.Row(t)
			d0[t], d1[t] = Dot2(row, h0, h1)
		}
		k += 2
	}
	if k < len(hs) {
		d, h := dsts[k], hs[k]
		for t := lo; t < hi; t++ {
			d[t] = Dot(emb.Row(t), h)
		}
	}
}

func checkOutputHead(dsts [][]float32, emb *Matrix, hs [][]float32) {
	if len(dsts) != len(hs) {
		panic(fmt.Sprintf("tensor: OutputHead %d dsts for %d lanes", len(dsts), len(hs)))
	}
	for k := range hs {
		if len(hs[k]) != emb.Cols || len(dsts[k]) != emb.Rows {
			panic(fmt.Sprintf("tensor: OutputHead lane %d shapes h=%d dst=%d emb=%dx%d",
				k, len(hs[k]), len(dsts[k]), emb.Rows, emb.Cols))
		}
	}
}

// Backends lists the selectable backend names.
func Backends() []string { return []string{"scalar", "parallel"} }

var scalarInstance Backend = &scalarBackend{}

// Scalar returns the single-threaded reference backend. Every kernel
// runs on the calling goroutine in the canonical accumulation order;
// the other backends are verified bit-for-bit against it.
func Scalar() Backend { return scalarInstance }

// NewParallel returns the goroutine-tiled backend with the given worker
// fan-out (non-positive selects GOMAXPROCS). With one worker it degrades
// to the scalar execution schedule while keeping its own name, which is
// what 1-CPU CI runs under when "parallel" is pinned.
func NewParallel(workers int) Backend {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &parallelBackend{workers: workers}
}

// Select maps a backend name to an instance: "scalar", "parallel", or
// ""/"auto" for Auto's choice.
func Select(name string) (Backend, error) {
	switch name {
	case "", "auto":
		return Auto(), nil
	case "scalar":
		return Scalar(), nil
	case "parallel":
		return NewParallel(0), nil
	}
	return nil, fmt.Errorf("tensor: unknown backend %q (have auto, %s)", name, strings.Join(Backends(), ", "))
}

// Auto picks the startup default: the PC_BACKEND environment variable
// when it names a backend, else parallel when more than one CPU is
// available to the process, else scalar. The choice affects scheduling
// only — outputs are bit-identical either way — so Auto never needs to
// be pinned for correctness, only for benchmarking.
func Auto() Backend {
	switch os.Getenv("PC_BACKEND") {
	case "scalar":
		return Scalar()
	case "parallel":
		return NewParallel(0)
	}
	if runtime.GOMAXPROCS(0) > 1 {
		return NewParallel(0)
	}
	return Scalar()
}
